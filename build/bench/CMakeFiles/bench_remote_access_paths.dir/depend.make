# Empty dependencies file for bench_remote_access_paths.
# This may be replaced when dependencies are built.
