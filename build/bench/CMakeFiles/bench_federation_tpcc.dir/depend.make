# Empty dependencies file for bench_federation_tpcc.
# This may be replaced when dependencies are built.
