file(REMOVE_RECURSE
  "CMakeFiles/bench_federation_tpcc.dir/bench_federation_tpcc.cc.o"
  "CMakeFiles/bench_federation_tpcc.dir/bench_federation_tpcc.cc.o.d"
  "bench_federation_tpcc"
  "bench_federation_tpcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_federation_tpcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
