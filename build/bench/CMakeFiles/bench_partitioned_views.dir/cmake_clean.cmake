file(REMOVE_RECURSE
  "CMakeFiles/bench_partitioned_views.dir/bench_partitioned_views.cc.o"
  "CMakeFiles/bench_partitioned_views.dir/bench_partitioned_views.cc.o.d"
  "bench_partitioned_views"
  "bench_partitioned_views.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_partitioned_views.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
