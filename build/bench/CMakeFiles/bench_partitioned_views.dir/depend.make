# Empty dependencies file for bench_partitioned_views.
# This may be replaced when dependencies are built.
