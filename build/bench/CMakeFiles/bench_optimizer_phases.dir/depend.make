# Empty dependencies file for bench_optimizer_phases.
# This may be replaced when dependencies are built.
