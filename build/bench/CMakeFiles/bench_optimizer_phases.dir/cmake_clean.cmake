file(REMOVE_RECURSE
  "CMakeFiles/bench_optimizer_phases.dir/bench_optimizer_phases.cc.o"
  "CMakeFiles/bench_optimizer_phases.dir/bench_optimizer_phases.cc.o.d"
  "bench_optimizer_phases"
  "bench_optimizer_phases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_optimizer_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
