file(REMOVE_RECURSE
  "CMakeFiles/bench_fulltext.dir/bench_fulltext.cc.o"
  "CMakeFiles/bench_fulltext.dir/bench_fulltext.cc.o.d"
  "bench_fulltext"
  "bench_fulltext.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fulltext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
