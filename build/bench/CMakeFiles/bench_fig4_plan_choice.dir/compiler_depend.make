# Empty compiler generated dependencies file for bench_fig4_plan_choice.
# This may be replaced when dependencies are built.
