file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_plan_choice.dir/bench_fig4_plan_choice.cc.o"
  "CMakeFiles/bench_fig4_plan_choice.dir/bench_fig4_plan_choice.cc.o.d"
  "bench_fig4_plan_choice"
  "bench_fig4_plan_choice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_plan_choice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
