file(REMOVE_RECURSE
  "CMakeFiles/bench_spool.dir/bench_spool.cc.o"
  "CMakeFiles/bench_spool.dir/bench_spool.cc.o.d"
  "bench_spool"
  "bench_spool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
