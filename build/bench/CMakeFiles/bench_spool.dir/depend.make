# Empty dependencies file for bench_spool.
# This may be replaced when dependencies are built.
