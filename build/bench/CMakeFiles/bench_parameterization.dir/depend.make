# Empty dependencies file for bench_parameterization.
# This may be replaced when dependencies are built.
