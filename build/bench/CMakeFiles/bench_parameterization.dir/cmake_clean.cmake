file(REMOVE_RECURSE
  "CMakeFiles/bench_parameterization.dir/bench_parameterization.cc.o"
  "CMakeFiles/bench_parameterization.dir/bench_parameterization.cc.o.d"
  "bench_parameterization"
  "bench_parameterization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parameterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
