file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_interfaces.dir/bench_table2_interfaces.cc.o"
  "CMakeFiles/bench_table2_interfaces.dir/bench_table2_interfaces.cc.o.d"
  "bench_table2_interfaces"
  "bench_table2_interfaces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_interfaces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
