file(REMOVE_RECURSE
  "CMakeFiles/federated_tpch.dir/federated_tpch.cc.o"
  "CMakeFiles/federated_tpch.dir/federated_tpch.cc.o.d"
  "federated_tpch"
  "federated_tpch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/federated_tpch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
