# Empty dependencies file for federated_tpch.
# This may be replaced when dependencies are built.
