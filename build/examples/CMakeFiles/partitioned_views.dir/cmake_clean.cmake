file(REMOVE_RECURSE
  "CMakeFiles/partitioned_views.dir/partitioned_views.cc.o"
  "CMakeFiles/partitioned_views.dir/partitioned_views.cc.o.d"
  "partitioned_views"
  "partitioned_views.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partitioned_views.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
