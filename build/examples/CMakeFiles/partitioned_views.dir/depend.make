# Empty dependencies file for partitioned_views.
# This may be replaced when dependencies are built.
