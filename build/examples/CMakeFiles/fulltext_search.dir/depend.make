# Empty dependencies file for fulltext_search.
# This may be replaced when dependencies are built.
