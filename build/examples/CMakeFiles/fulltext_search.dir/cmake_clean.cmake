file(REMOVE_RECURSE
  "CMakeFiles/fulltext_search.dir/fulltext_search.cc.o"
  "CMakeFiles/fulltext_search.dir/fulltext_search.cc.o.d"
  "fulltext_search"
  "fulltext_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fulltext_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
