# Empty dependencies file for mail_query.
# This may be replaced when dependencies are built.
