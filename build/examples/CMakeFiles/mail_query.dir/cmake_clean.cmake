file(REMOVE_RECURSE
  "CMakeFiles/mail_query.dir/mail_query.cc.o"
  "CMakeFiles/mail_query.dir/mail_query.cc.o.d"
  "mail_query"
  "mail_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mail_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
