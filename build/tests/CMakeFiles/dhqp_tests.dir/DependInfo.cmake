
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/binder_edge_test.cc" "tests/CMakeFiles/dhqp_tests.dir/binder_edge_test.cc.o" "gcc" "tests/CMakeFiles/dhqp_tests.dir/binder_edge_test.cc.o.d"
  "/root/repo/tests/btree_test.cc" "tests/CMakeFiles/dhqp_tests.dir/btree_test.cc.o" "gcc" "tests/CMakeFiles/dhqp_tests.dir/btree_test.cc.o.d"
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/dhqp_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/dhqp_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/connectors_test.cc" "tests/CMakeFiles/dhqp_tests.dir/connectors_test.cc.o" "gcc" "tests/CMakeFiles/dhqp_tests.dir/connectors_test.cc.o.d"
  "/root/repo/tests/constraint_test.cc" "tests/CMakeFiles/dhqp_tests.dir/constraint_test.cc.o" "gcc" "tests/CMakeFiles/dhqp_tests.dir/constraint_test.cc.o.d"
  "/root/repo/tests/decoder_test.cc" "tests/CMakeFiles/dhqp_tests.dir/decoder_test.cc.o" "gcc" "tests/CMakeFiles/dhqp_tests.dir/decoder_test.cc.o.d"
  "/root/repo/tests/differential_test.cc" "tests/CMakeFiles/dhqp_tests.dir/differential_test.cc.o" "gcc" "tests/CMakeFiles/dhqp_tests.dir/differential_test.cc.o.d"
  "/root/repo/tests/distributed_test.cc" "tests/CMakeFiles/dhqp_tests.dir/distributed_test.cc.o" "gcc" "tests/CMakeFiles/dhqp_tests.dir/distributed_test.cc.o.d"
  "/root/repo/tests/dml_test.cc" "tests/CMakeFiles/dhqp_tests.dir/dml_test.cc.o" "gcc" "tests/CMakeFiles/dhqp_tests.dir/dml_test.cc.o.d"
  "/root/repo/tests/dtc_test.cc" "tests/CMakeFiles/dhqp_tests.dir/dtc_test.cc.o" "gcc" "tests/CMakeFiles/dhqp_tests.dir/dtc_test.cc.o.d"
  "/root/repo/tests/engine_smoke_test.cc" "tests/CMakeFiles/dhqp_tests.dir/engine_smoke_test.cc.o" "gcc" "tests/CMakeFiles/dhqp_tests.dir/engine_smoke_test.cc.o.d"
  "/root/repo/tests/exec_nodes_test.cc" "tests/CMakeFiles/dhqp_tests.dir/exec_nodes_test.cc.o" "gcc" "tests/CMakeFiles/dhqp_tests.dir/exec_nodes_test.cc.o.d"
  "/root/repo/tests/exec_semantics_test.cc" "tests/CMakeFiles/dhqp_tests.dir/exec_semantics_test.cc.o" "gcc" "tests/CMakeFiles/dhqp_tests.dir/exec_semantics_test.cc.o.d"
  "/root/repo/tests/fulltext_test.cc" "tests/CMakeFiles/dhqp_tests.dir/fulltext_test.cc.o" "gcc" "tests/CMakeFiles/dhqp_tests.dir/fulltext_test.cc.o.d"
  "/root/repo/tests/heterogeneous_integration_test.cc" "tests/CMakeFiles/dhqp_tests.dir/heterogeneous_integration_test.cc.o" "gcc" "tests/CMakeFiles/dhqp_tests.dir/heterogeneous_integration_test.cc.o.d"
  "/root/repo/tests/histogram_test.cc" "tests/CMakeFiles/dhqp_tests.dir/histogram_test.cc.o" "gcc" "tests/CMakeFiles/dhqp_tests.dir/histogram_test.cc.o.d"
  "/root/repo/tests/interval_test.cc" "tests/CMakeFiles/dhqp_tests.dir/interval_test.cc.o" "gcc" "tests/CMakeFiles/dhqp_tests.dir/interval_test.cc.o.d"
  "/root/repo/tests/memo_test.cc" "tests/CMakeFiles/dhqp_tests.dir/memo_test.cc.o" "gcc" "tests/CMakeFiles/dhqp_tests.dir/memo_test.cc.o.d"
  "/root/repo/tests/network_test.cc" "tests/CMakeFiles/dhqp_tests.dir/network_test.cc.o" "gcc" "tests/CMakeFiles/dhqp_tests.dir/network_test.cc.o.d"
  "/root/repo/tests/normalize_test.cc" "tests/CMakeFiles/dhqp_tests.dir/normalize_test.cc.o" "gcc" "tests/CMakeFiles/dhqp_tests.dir/normalize_test.cc.o.d"
  "/root/repo/tests/optimizer_features_test.cc" "tests/CMakeFiles/dhqp_tests.dir/optimizer_features_test.cc.o" "gcc" "tests/CMakeFiles/dhqp_tests.dir/optimizer_features_test.cc.o.d"
  "/root/repo/tests/partitioned_view_test.cc" "tests/CMakeFiles/dhqp_tests.dir/partitioned_view_test.cc.o" "gcc" "tests/CMakeFiles/dhqp_tests.dir/partitioned_view_test.cc.o.d"
  "/root/repo/tests/plan_cache_test.cc" "tests/CMakeFiles/dhqp_tests.dir/plan_cache_test.cc.o" "gcc" "tests/CMakeFiles/dhqp_tests.dir/plan_cache_test.cc.o.d"
  "/root/repo/tests/sql_frontend_test.cc" "tests/CMakeFiles/dhqp_tests.dir/sql_frontend_test.cc.o" "gcc" "tests/CMakeFiles/dhqp_tests.dir/sql_frontend_test.cc.o.d"
  "/root/repo/tests/storage_test.cc" "tests/CMakeFiles/dhqp_tests.dir/storage_test.cc.o" "gcc" "tests/CMakeFiles/dhqp_tests.dir/storage_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dhqp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
