# Empty compiler generated dependencies file for dhqp_tests.
# This may be replaced when dependencies are built.
