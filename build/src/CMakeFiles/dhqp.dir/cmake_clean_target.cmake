file(REMOVE_RECURSE
  "libdhqp.a"
)
