# Empty compiler generated dependencies file for dhqp.
# This may be replaced when dependencies are built.
