
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/catalog/catalog.cc" "src/CMakeFiles/dhqp.dir/catalog/catalog.cc.o" "gcc" "src/CMakeFiles/dhqp.dir/catalog/catalog.cc.o.d"
  "/root/repo/src/common/date.cc" "src/CMakeFiles/dhqp.dir/common/date.cc.o" "gcc" "src/CMakeFiles/dhqp.dir/common/date.cc.o.d"
  "/root/repo/src/common/interval.cc" "src/CMakeFiles/dhqp.dir/common/interval.cc.o" "gcc" "src/CMakeFiles/dhqp.dir/common/interval.cc.o.d"
  "/root/repo/src/common/schema.cc" "src/CMakeFiles/dhqp.dir/common/schema.cc.o" "gcc" "src/CMakeFiles/dhqp.dir/common/schema.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/dhqp.dir/common/status.cc.o" "gcc" "src/CMakeFiles/dhqp.dir/common/status.cc.o.d"
  "/root/repo/src/common/value.cc" "src/CMakeFiles/dhqp.dir/common/value.cc.o" "gcc" "src/CMakeFiles/dhqp.dir/common/value.cc.o.d"
  "/root/repo/src/connectors/csv_provider.cc" "src/CMakeFiles/dhqp.dir/connectors/csv_provider.cc.o" "gcc" "src/CMakeFiles/dhqp.dir/connectors/csv_provider.cc.o.d"
  "/root/repo/src/connectors/engine_provider.cc" "src/CMakeFiles/dhqp.dir/connectors/engine_provider.cc.o" "gcc" "src/CMakeFiles/dhqp.dir/connectors/engine_provider.cc.o.d"
  "/root/repo/src/connectors/linked_provider.cc" "src/CMakeFiles/dhqp.dir/connectors/linked_provider.cc.o" "gcc" "src/CMakeFiles/dhqp.dir/connectors/linked_provider.cc.o.d"
  "/root/repo/src/connectors/mail_provider.cc" "src/CMakeFiles/dhqp.dir/connectors/mail_provider.cc.o" "gcc" "src/CMakeFiles/dhqp.dir/connectors/mail_provider.cc.o.d"
  "/root/repo/src/connectors/sheet_provider.cc" "src/CMakeFiles/dhqp.dir/connectors/sheet_provider.cc.o" "gcc" "src/CMakeFiles/dhqp.dir/connectors/sheet_provider.cc.o.d"
  "/root/repo/src/core/engine.cc" "src/CMakeFiles/dhqp.dir/core/engine.cc.o" "gcc" "src/CMakeFiles/dhqp.dir/core/engine.cc.o.d"
  "/root/repo/src/executor/eval.cc" "src/CMakeFiles/dhqp.dir/executor/eval.cc.o" "gcc" "src/CMakeFiles/dhqp.dir/executor/eval.cc.o.d"
  "/root/repo/src/executor/exec.cc" "src/CMakeFiles/dhqp.dir/executor/exec.cc.o" "gcc" "src/CMakeFiles/dhqp.dir/executor/exec.cc.o.d"
  "/root/repo/src/fulltext/contains_query.cc" "src/CMakeFiles/dhqp.dir/fulltext/contains_query.cc.o" "gcc" "src/CMakeFiles/dhqp.dir/fulltext/contains_query.cc.o.d"
  "/root/repo/src/fulltext/ifilter.cc" "src/CMakeFiles/dhqp.dir/fulltext/ifilter.cc.o" "gcc" "src/CMakeFiles/dhqp.dir/fulltext/ifilter.cc.o.d"
  "/root/repo/src/fulltext/inverted_index.cc" "src/CMakeFiles/dhqp.dir/fulltext/inverted_index.cc.o" "gcc" "src/CMakeFiles/dhqp.dir/fulltext/inverted_index.cc.o.d"
  "/root/repo/src/fulltext/service.cc" "src/CMakeFiles/dhqp.dir/fulltext/service.cc.o" "gcc" "src/CMakeFiles/dhqp.dir/fulltext/service.cc.o.d"
  "/root/repo/src/fulltext/stemmer.cc" "src/CMakeFiles/dhqp.dir/fulltext/stemmer.cc.o" "gcc" "src/CMakeFiles/dhqp.dir/fulltext/stemmer.cc.o.d"
  "/root/repo/src/net/network.cc" "src/CMakeFiles/dhqp.dir/net/network.cc.o" "gcc" "src/CMakeFiles/dhqp.dir/net/network.cc.o.d"
  "/root/repo/src/optimizer/cardinality.cc" "src/CMakeFiles/dhqp.dir/optimizer/cardinality.cc.o" "gcc" "src/CMakeFiles/dhqp.dir/optimizer/cardinality.cc.o.d"
  "/root/repo/src/optimizer/constraint.cc" "src/CMakeFiles/dhqp.dir/optimizer/constraint.cc.o" "gcc" "src/CMakeFiles/dhqp.dir/optimizer/constraint.cc.o.d"
  "/root/repo/src/optimizer/context.cc" "src/CMakeFiles/dhqp.dir/optimizer/context.cc.o" "gcc" "src/CMakeFiles/dhqp.dir/optimizer/context.cc.o.d"
  "/root/repo/src/optimizer/cost.cc" "src/CMakeFiles/dhqp.dir/optimizer/cost.cc.o" "gcc" "src/CMakeFiles/dhqp.dir/optimizer/cost.cc.o.d"
  "/root/repo/src/optimizer/decoder.cc" "src/CMakeFiles/dhqp.dir/optimizer/decoder.cc.o" "gcc" "src/CMakeFiles/dhqp.dir/optimizer/decoder.cc.o.d"
  "/root/repo/src/optimizer/logical.cc" "src/CMakeFiles/dhqp.dir/optimizer/logical.cc.o" "gcc" "src/CMakeFiles/dhqp.dir/optimizer/logical.cc.o.d"
  "/root/repo/src/optimizer/memo.cc" "src/CMakeFiles/dhqp.dir/optimizer/memo.cc.o" "gcc" "src/CMakeFiles/dhqp.dir/optimizer/memo.cc.o.d"
  "/root/repo/src/optimizer/normalize.cc" "src/CMakeFiles/dhqp.dir/optimizer/normalize.cc.o" "gcc" "src/CMakeFiles/dhqp.dir/optimizer/normalize.cc.o.d"
  "/root/repo/src/optimizer/optimizer.cc" "src/CMakeFiles/dhqp.dir/optimizer/optimizer.cc.o" "gcc" "src/CMakeFiles/dhqp.dir/optimizer/optimizer.cc.o.d"
  "/root/repo/src/optimizer/physical.cc" "src/CMakeFiles/dhqp.dir/optimizer/physical.cc.o" "gcc" "src/CMakeFiles/dhqp.dir/optimizer/physical.cc.o.d"
  "/root/repo/src/optimizer/rules.cc" "src/CMakeFiles/dhqp.dir/optimizer/rules.cc.o" "gcc" "src/CMakeFiles/dhqp.dir/optimizer/rules.cc.o.d"
  "/root/repo/src/provider/capabilities.cc" "src/CMakeFiles/dhqp.dir/provider/capabilities.cc.o" "gcc" "src/CMakeFiles/dhqp.dir/provider/capabilities.cc.o.d"
  "/root/repo/src/provider/metadata.cc" "src/CMakeFiles/dhqp.dir/provider/metadata.cc.o" "gcc" "src/CMakeFiles/dhqp.dir/provider/metadata.cc.o.d"
  "/root/repo/src/provider/provider.cc" "src/CMakeFiles/dhqp.dir/provider/provider.cc.o" "gcc" "src/CMakeFiles/dhqp.dir/provider/provider.cc.o.d"
  "/root/repo/src/sql/ast.cc" "src/CMakeFiles/dhqp.dir/sql/ast.cc.o" "gcc" "src/CMakeFiles/dhqp.dir/sql/ast.cc.o.d"
  "/root/repo/src/sql/binder.cc" "src/CMakeFiles/dhqp.dir/sql/binder.cc.o" "gcc" "src/CMakeFiles/dhqp.dir/sql/binder.cc.o.d"
  "/root/repo/src/sql/bound_expr.cc" "src/CMakeFiles/dhqp.dir/sql/bound_expr.cc.o" "gcc" "src/CMakeFiles/dhqp.dir/sql/bound_expr.cc.o.d"
  "/root/repo/src/sql/lexer.cc" "src/CMakeFiles/dhqp.dir/sql/lexer.cc.o" "gcc" "src/CMakeFiles/dhqp.dir/sql/lexer.cc.o.d"
  "/root/repo/src/sql/parser.cc" "src/CMakeFiles/dhqp.dir/sql/parser.cc.o" "gcc" "src/CMakeFiles/dhqp.dir/sql/parser.cc.o.d"
  "/root/repo/src/storage/btree.cc" "src/CMakeFiles/dhqp.dir/storage/btree.cc.o" "gcc" "src/CMakeFiles/dhqp.dir/storage/btree.cc.o.d"
  "/root/repo/src/storage/histogram.cc" "src/CMakeFiles/dhqp.dir/storage/histogram.cc.o" "gcc" "src/CMakeFiles/dhqp.dir/storage/histogram.cc.o.d"
  "/root/repo/src/storage/storage_engine.cc" "src/CMakeFiles/dhqp.dir/storage/storage_engine.cc.o" "gcc" "src/CMakeFiles/dhqp.dir/storage/storage_engine.cc.o.d"
  "/root/repo/src/storage/table.cc" "src/CMakeFiles/dhqp.dir/storage/table.cc.o" "gcc" "src/CMakeFiles/dhqp.dir/storage/table.cc.o.d"
  "/root/repo/src/txn/dtc.cc" "src/CMakeFiles/dhqp.dir/txn/dtc.cc.o" "gcc" "src/CMakeFiles/dhqp.dir/txn/dtc.cc.o.d"
  "/root/repo/src/workloads/documents.cc" "src/CMakeFiles/dhqp.dir/workloads/documents.cc.o" "gcc" "src/CMakeFiles/dhqp.dir/workloads/documents.cc.o.d"
  "/root/repo/src/workloads/tpcc.cc" "src/CMakeFiles/dhqp.dir/workloads/tpcc.cc.o" "gcc" "src/CMakeFiles/dhqp.dir/workloads/tpcc.cc.o.d"
  "/root/repo/src/workloads/tpch.cc" "src/CMakeFiles/dhqp.dir/workloads/tpch.cc.o" "gcc" "src/CMakeFiles/dhqp.dir/workloads/tpch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
