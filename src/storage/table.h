#ifndef DHQP_STORAGE_TABLE_H_
#define DHQP_STORAGE_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/interval.h"
#include "src/common/row.h"
#include "src/common/schema.h"
#include "src/common/status.h"
#include "src/provider/metadata.h"
#include "src/storage/btree.h"

namespace dhqp {

/// A secondary index over a heap table.
struct TableIndex {
  std::string name;
  std::vector<int> key_ordinals;  ///< Column positions in key order.
  bool unique = false;
  std::unique_ptr<BTree> tree;
};

/// An in-memory heap table: the unit of storage in the local storage engine.
/// Rows are addressed by stable row ids (bookmarks); deletion tombstones.
class Table {
 public:
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  const std::vector<CheckConstraint>& check_constraints() const {
    return checks_;
  }
  const std::vector<std::unique_ptr<TableIndex>>& indexes() const {
    return indexes_;
  }

  /// Number of live (non-deleted) rows.
  size_t live_row_count() const { return live_count_; }
  /// Total slots including tombstones; row ids range over [0, num_slots).
  size_t num_slots() const { return rows_.size(); }

  /// Adds a CHECK constraint. Existing rows are validated.
  Status AddCheckConstraint(CheckConstraint check);

  /// Builds a secondary index over the named columns; existing rows are
  /// indexed. Fails on duplicate key if `unique`.
  Status CreateIndex(const std::string& index_name,
                     const std::vector<std::string>& key_columns, bool unique);

  TableIndex* FindIndex(const std::string& index_name);

  /// Validates (arity, types with implicit casts, NOT NULL, CHECKs, unique
  /// indexes), assigns a row id, and maintains all indexes.
  Result<int64_t> Insert(const Row& row);

  /// Tombstones a row and unlinks it from indexes.
  Status Delete(int64_t row_id);

  /// Returns the row at `row_id`, or nullptr if out of range / deleted.
  const Row* GetRow(int64_t row_id) const;

  /// Appends all live rows (with their ids) to `out`.
  void ScanLive(std::vector<std::pair<int64_t, Row>>* out) const;

  /// Provider-facing description: schema + cardinality + index metadata.
  TableMetadata Metadata() const;

  /// Extracts the index key of `row` for the given index.
  static IndexKey MakeKey(const TableIndex& index, const Row& row);

 private:
  /// Validates and coerces `row` against the schema and constraints; fills
  /// `normalized` with the insert-ready row.
  Status ValidateRow(const Row& row, Row* normalized) const;

  std::string name_;
  Schema schema_;
  std::vector<Row> rows_;
  std::vector<bool> deleted_;
  size_t live_count_ = 0;
  std::vector<CheckConstraint> checks_;
  std::vector<std::unique_ptr<TableIndex>> indexes_;
};

}  // namespace dhqp

#endif  // DHQP_STORAGE_TABLE_H_
