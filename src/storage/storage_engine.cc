#include "src/storage/storage_engine.h"

#include "src/storage/histogram.h"

namespace dhqp {

Result<Table*> StorageEngine::CreateTable(const std::string& name,
                                          Schema schema) {
  std::string key = ToLowerCopy(name);
  if (tables_.count(key) > 0) {
    return Status::AlreadyExists("table '" + name + "' already exists");
  }
  auto table = std::make_unique<Table>(name, std::move(schema));
  Table* ptr = table.get();
  tables_[key] = std::move(table);
  return ptr;
}

Result<Table*> StorageEngine::GetTable(const std::string& name) const {
  auto it = tables_.find(ToLowerCopy(name));
  if (it == tables_.end()) {
    return Status::NotFound("table '" + name + "' not found");
  }
  return it->second.get();
}

bool StorageEngine::HasTable(const std::string& name) const {
  return tables_.count(ToLowerCopy(name)) > 0;
}

Status StorageEngine::DropTable(const std::string& name) {
  if (tables_.erase(ToLowerCopy(name)) == 0) {
    return Status::NotFound("table '" + name + "' not found");
  }
  return Status::OK();
}

std::vector<std::string> StorageEngine::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [key, table] : tables_) names.push_back(table->name());
  return names;
}

Result<StorageEngine::TxnState*> StorageEngine::GetTxn(int64_t txn_id) {
  auto it = txns_.find(txn_id);
  if (it == txns_.end()) {
    return Status::NotFound("transaction " + std::to_string(txn_id) +
                            " not active");
  }
  return &it->second;
}

Result<int64_t> StorageEngine::InsertRow(int64_t txn_id,
                                         const std::string& table,
                                         const Row& row) {
  DHQP_ASSIGN_OR_RETURN(Table * t, GetTable(table));
  DHQP_ASSIGN_OR_RETURN(int64_t row_id, t->Insert(row));
  if (txn_id >= 0) {
    DHQP_ASSIGN_OR_RETURN(TxnState * txn, GetTxn(txn_id));
    txn->undo.push_back(
        UndoAction{UndoAction::kUndoInsert, t->name(), row_id, {}});
  }
  return row_id;
}

Status StorageEngine::DeleteRow(int64_t txn_id, const std::string& table,
                                int64_t row_id) {
  DHQP_ASSIGN_OR_RETURN(Table * t, GetTable(table));
  const Row* row = t->GetRow(row_id);
  if (row == nullptr) {
    return Status::NotFound("row " + std::to_string(row_id) + " not found");
  }
  Row saved = *row;
  DHQP_RETURN_NOT_OK(t->Delete(row_id));
  if (txn_id >= 0) {
    DHQP_ASSIGN_OR_RETURN(TxnState * txn, GetTxn(txn_id));
    txn->undo.push_back(UndoAction{UndoAction::kUndoDelete, t->name(), row_id,
                                   std::move(saved)});
  }
  return Status::OK();
}

Status StorageEngine::Begin(int64_t txn_id) {
  if (txns_.count(txn_id) > 0) {
    return Status::AlreadyExists("transaction " + std::to_string(txn_id) +
                                 " already active");
  }
  txns_[txn_id] = TxnState{};
  return Status::OK();
}

Status StorageEngine::Prepare(int64_t txn_id) {
  DHQP_ASSIGN_OR_RETURN(TxnState * txn, GetTxn(txn_id));
  if (failure_.fail_on_prepare) {
    return Status::TransactionAborted("participant voted no at prepare");
  }
  txn->prepared = true;
  return Status::OK();
}

Status StorageEngine::Commit(int64_t txn_id) {
  DHQP_ASSIGN_OR_RETURN(TxnState * txn, GetTxn(txn_id));
  (void)txn;
  if (failure_.fail_on_commit) {
    return Status::NetworkError("participant unreachable at commit");
  }
  txns_.erase(txn_id);  // Writes are already applied; drop the undo log.
  return Status::OK();
}

Status StorageEngine::Abort(int64_t txn_id) {
  DHQP_ASSIGN_OR_RETURN(TxnState * txn, GetTxn(txn_id));
  // Undo in reverse order.
  for (auto it = txn->undo.rbegin(); it != txn->undo.rend(); ++it) {
    Table* t = GetTable(it->table).value();
    if (it->kind == UndoAction::kUndoInsert) {
      // Row may have been deleted later in the same txn; ignore NotFound.
      (void)t->Delete(it->row_id);
    } else {
      // Re-insert the saved image (gets a fresh row id).
      (void)t->Insert(it->row);
    }
  }
  txns_.erase(txn_id);
  return Status::OK();
}

Result<ColumnStatistics> StorageEngine::GetStatistics(
    const std::string& table, const std::string& column) {
  DHQP_ASSIGN_OR_RETURN(Table * t, GetTable(table));
  std::string key = ToLowerCopy(table) + '\0' + ToLowerCopy(column);
  auto it = stats_cache_.find(key);
  if (it != stats_cache_.end() &&
      it->second.live_count == t->live_row_count()) {
    return it->second.stats;
  }
  DHQP_ASSIGN_OR_RETURN(ColumnStatistics stats,
                        BuildColumnStatistics(*t, column));
  stats_cache_[key] = StatsCacheEntry{t->live_row_count(), stats};
  return stats;
}

// ---------------------------------------------------------------------------
// Provider surface.
// ---------------------------------------------------------------------------

StorageDataSource::StorageDataSource(StorageEngine* engine) : engine_(engine) {
  caps_.provider_name = "DHQP.Storage";
  caps_.source_type = "Local storage engine";
  caps_.query_language = "none (rowset navigation)";
  caps_.sql_support = SqlSupportLevel::kNone;
  caps_.supports_command = false;
  caps_.supports_indexes = true;
  caps_.supports_bookmarks = true;
  caps_.supports_histograms = true;
  caps_.supports_schema_rowset = true;
  caps_.supports_transactions = true;
}

Result<std::unique_ptr<Session>> StorageDataSource::CreateSession() {
  return std::unique_ptr<Session>(new StorageSession(engine_));
}

Result<std::unique_ptr<Rowset>> StorageSession::OpenRowset(
    const std::string& table) {
  DHQP_ASSIGN_OR_RETURN(Table * t, engine_->GetTable(table));
  std::vector<std::pair<int64_t, Row>> live;
  t->ScanLive(&live);
  std::vector<Row> rows;
  rows.reserve(live.size());
  for (auto& [id, row] : live) rows.push_back(std::move(row));
  return std::unique_ptr<Rowset>(
      new VectorRowset(t->schema(), std::move(rows)));
}

Result<std::vector<TableMetadata>> StorageSession::ListTables() {
  std::vector<TableMetadata> out;
  for (const std::string& name : engine_->TableNames()) {
    DHQP_ASSIGN_OR_RETURN(Table * t, engine_->GetTable(name));
    out.push_back(t->Metadata());
  }
  return out;
}

Result<ColumnStatistics> StorageSession::GetStatistics(
    const std::string& table, const std::string& column) {
  return engine_->GetStatistics(table, column);
}

namespace {

// Converts an IndexRange (prefix + bounds on the next column) to B+-tree
// scan bounds.
void RangeToKeys(const IndexRange& range, IndexKey* lo, bool* lo_inc,
                 IndexKey* hi, bool* hi_inc, bool* has_lo, bool* has_hi) {
  *lo = range.eq_prefix;
  *hi = range.eq_prefix;
  *has_lo = true;
  *has_hi = true;
  *lo_inc = true;
  *hi_inc = true;
  if (range.lo.has_value()) {
    lo->push_back(*range.lo);
    *lo_inc = range.lo_inclusive;
  }
  if (range.hi.has_value()) {
    hi->push_back(*range.hi);
    *hi_inc = range.hi_inclusive;
  }
  if (lo->empty()) *has_lo = false;
  if (hi->empty()) *has_hi = false;
}

}  // namespace

Result<std::unique_ptr<Rowset>> StorageSession::OpenIndexRange(
    const std::string& table, const std::string& index,
    const IndexRange& range) {
  DHQP_ASSIGN_OR_RETURN(Table * t, engine_->GetTable(table));
  TableIndex* idx = t->FindIndex(index);
  if (idx == nullptr) {
    return Status::NotFound("index '" + index + "' not found on " + table);
  }
  IndexKey lo, hi;
  bool lo_inc, hi_inc, has_lo, has_hi;
  RangeToKeys(range, &lo, &lo_inc, &hi, &hi_inc, &has_lo, &has_hi);
  std::vector<int64_t> row_ids;
  idx->tree->Scan(has_lo ? &lo : nullptr, lo_inc, has_hi ? &hi : nullptr,
                  hi_inc, &row_ids);
  std::vector<Row> rows;
  rows.reserve(row_ids.size());
  for (int64_t id : row_ids) {
    const Row* row = t->GetRow(id);
    if (row != nullptr) rows.push_back(*row);
  }
  return std::unique_ptr<Rowset>(
      new VectorRowset(t->schema(), std::move(rows)));
}

Result<std::unique_ptr<Rowset>> StorageSession::OpenIndexKeys(
    const std::string& table, const std::string& index,
    const IndexRange& range) {
  DHQP_ASSIGN_OR_RETURN(Table * t, engine_->GetTable(table));
  TableIndex* idx = t->FindIndex(index);
  if (idx == nullptr) {
    return Status::NotFound("index '" + index + "' not found on " + table);
  }
  IndexKey lo, hi;
  bool lo_inc, hi_inc, has_lo, has_hi;
  RangeToKeys(range, &lo, &lo_inc, &hi, &hi_inc, &has_lo, &has_hi);
  std::vector<std::pair<IndexKey, int64_t>> entries;
  idx->tree->ScanEntries(has_lo ? &lo : nullptr, lo_inc,
                         has_hi ? &hi : nullptr, hi_inc, &entries);
  Schema schema;
  for (int ord : idx->key_ordinals) {
    schema.AddColumn(t->schema().column(static_cast<size_t>(ord)));
  }
  schema.AddColumn(ColumnDef{"__bookmark", DataType::kInt64, false});
  std::vector<Row> rows;
  rows.reserve(entries.size());
  for (auto& [key, id] : entries) {
    Row row = key;
    row.push_back(Value::Int64(id));
    rows.push_back(std::move(row));
  }
  return std::unique_ptr<Rowset>(new VectorRowset(schema, std::move(rows)));
}

Result<std::optional<Row>> StorageSession::FetchByBookmark(
    const std::string& table, const Value& bookmark) {
  DHQP_ASSIGN_OR_RETURN(Table * t, engine_->GetTable(table));
  if (bookmark.is_null() || bookmark.type() != DataType::kInt64) {
    return Status::InvalidArgument("bookmark must be a non-null int64");
  }
  const Row* row = t->GetRow(bookmark.int64_value());
  if (row == nullptr) return std::optional<Row>();
  return std::optional<Row>(*row);
}

Result<int64_t> StorageSession::InsertRows(const std::string& table,
                                           const std::vector<Row>& rows) {
  int64_t count = 0;
  for (const Row& row : rows) {
    DHQP_ASSIGN_OR_RETURN(int64_t id, engine_->InsertRow(active_txn_, table, row));
    (void)id;
    ++count;
  }
  return count;
}

Status StorageSession::BeginTransaction(int64_t txn_id) {
  DHQP_RETURN_NOT_OK(engine_->Begin(txn_id));
  active_txn_ = txn_id;
  return Status::OK();
}

Status StorageSession::PrepareTransaction(int64_t txn_id) {
  return engine_->Prepare(txn_id);
}

Status StorageSession::CommitTransaction(int64_t txn_id) {
  Status st = engine_->Commit(txn_id);
  if (st.ok() && active_txn_ == txn_id) active_txn_ = -1;
  return st;
}

Status StorageSession::AbortTransaction(int64_t txn_id) {
  Status st = engine_->Abort(txn_id);
  if (active_txn_ == txn_id) active_txn_ = -1;
  return st;
}

}  // namespace dhqp
