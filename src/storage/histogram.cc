#include "src/storage/histogram.h"

#include <algorithm>

namespace dhqp {

Result<ColumnStatistics> BuildColumnStatistics(const Table& table,
                                               const std::string& column,
                                               int max_buckets) {
  int ord = table.schema().FindColumn(column);
  if (ord < 0) {
    return Status::NotFound("statistics column '" + column +
                            "' not found on table " + table.name());
  }
  ColumnStatistics stats;
  stats.column = column;

  std::vector<std::pair<int64_t, Row>> rows;
  table.ScanLive(&rows);
  std::vector<Value> values;
  values.reserve(rows.size());
  for (auto& [id, row] : rows) {
    const Value& v = row[static_cast<size_t>(ord)];
    if (v.is_null()) {
      stats.null_count += 1;
    } else {
      values.push_back(v);
    }
  }
  stats.row_count = static_cast<double>(rows.size());
  std::sort(values.begin(), values.end(),
            [](const Value& a, const Value& b) { return a.Compare(b) < 0; });

  // Count distinct values.
  for (size_t i = 0; i < values.size(); ++i) {
    if (i == 0 || values[i].Compare(values[i - 1]) != 0) {
      stats.distinct_count += 1;
    }
  }
  if (values.empty()) return stats;

  // Equi-depth bucketing: target ~n/max_buckets rows per bucket, but never
  // split a run of equal values across a boundary (the boundary value's
  // exact frequency is recorded in upper_row_count, as in SQL Server's
  // histogram format).
  size_t target = std::max<size_t>(1, values.size() / static_cast<size_t>(
                                          std::max(max_buckets, 1)));
  size_t i = 0;
  while (i < values.size()) {
    size_t end = std::min(values.size(), i + target);
    // Extend to cover the whole run of the boundary value.
    while (end < values.size() &&
           values[end].Compare(values[end - 1]) == 0) {
      ++end;
    }
    HistogramBucket bucket;
    bucket.upper = values[end - 1];
    bucket.row_count = static_cast<double>(end - i);
    for (size_t j = i; j < end; ++j) {
      if (j == i || values[j].Compare(values[j - 1]) != 0) {
        bucket.distinct_count += 1;
      }
      if (values[j].Compare(bucket.upper) == 0) bucket.upper_row_count += 1;
    }
    stats.buckets.push_back(std::move(bucket));
    i = end;
  }
  return stats;
}

}  // namespace dhqp
