#include "src/storage/table.h"

namespace dhqp {

Status Table::AddCheckConstraint(CheckConstraint check) {
  int ord = schema_.FindColumn(check.column);
  if (ord < 0) {
    return Status::NotFound("CHECK references unknown column '" +
                            check.column + "' on table " + name_);
  }
  for (size_t id = 0; id < rows_.size(); ++id) {
    if (deleted_[id]) continue;
    const Value& v = rows_[id][static_cast<size_t>(ord)];
    if (!v.is_null() && !check.domain.Contains(v)) {
      return Status::ConstraintViolation(
          "existing row violates CHECK '" + check.definition + "' on table " +
          name_);
    }
  }
  checks_.push_back(std::move(check));
  return Status::OK();
}

Status Table::CreateIndex(const std::string& index_name,
                          const std::vector<std::string>& key_columns,
                          bool unique) {
  if (FindIndex(index_name) != nullptr) {
    return Status::AlreadyExists("index '" + index_name + "' already exists");
  }
  auto index = std::make_unique<TableIndex>();
  index->name = index_name;
  index->unique = unique;
  for (const std::string& col : key_columns) {
    int ord = schema_.FindColumn(col);
    if (ord < 0) {
      return Status::NotFound("index key column '" + col +
                              "' not found on table " + name_);
    }
    index->key_ordinals.push_back(ord);
  }
  index->tree = std::make_unique<BTree>();
  for (size_t id = 0; id < rows_.size(); ++id) {
    if (deleted_[id]) continue;
    IndexKey key = MakeKey(*index, rows_[id]);
    if (unique && index->tree->Contains(key)) {
      return Status::ConstraintViolation("duplicate key building unique index '" +
                                         index_name + "'");
    }
    index->tree->Insert(key, static_cast<int64_t>(id));
  }
  indexes_.push_back(std::move(index));
  return Status::OK();
}

TableIndex* Table::FindIndex(const std::string& index_name) {
  for (auto& idx : indexes_) {
    if (EqualsIgnoreCase(idx->name, index_name)) return idx.get();
  }
  return nullptr;
}

IndexKey Table::MakeKey(const TableIndex& index, const Row& row) {
  IndexKey key;
  key.reserve(index.key_ordinals.size());
  for (int ord : index.key_ordinals) key.push_back(row[static_cast<size_t>(ord)]);
  return key;
}

Status Table::ValidateRow(const Row& row, Row* normalized) const {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != schema arity " +
        std::to_string(schema_.num_columns()) + " for table " + name_);
  }
  normalized->clear();
  normalized->reserve(row.size());
  for (size_t i = 0; i < row.size(); ++i) {
    const ColumnDef& col = schema_.column(i);
    if (row[i].is_null()) {
      if (!col.nullable) {
        return Status::ConstraintViolation("column '" + col.name +
                                           "' is NOT NULL");
      }
      normalized->push_back(Value::Null(col.type));
      continue;
    }
    DHQP_ASSIGN_OR_RETURN(Value v, row[i].CastTo(col.type));
    normalized->push_back(std::move(v));
  }
  for (const CheckConstraint& check : checks_) {
    int ord = schema_.FindColumn(check.column);
    const Value& v = (*normalized)[static_cast<size_t>(ord)];
    if (!v.is_null() && !check.domain.Contains(v)) {
      return Status::ConstraintViolation("CHECK '" + check.definition +
                                         "' violated on table " + name_);
    }
  }
  return Status::OK();
}

Result<int64_t> Table::Insert(const Row& row) {
  Row normalized;
  DHQP_RETURN_NOT_OK(ValidateRow(row, &normalized));
  for (auto& idx : indexes_) {
    if (!idx->unique) continue;
    IndexKey key = MakeKey(*idx, normalized);
    if (idx->tree->Contains(key)) {
      return Status::ConstraintViolation("duplicate key in unique index '" +
                                         idx->name + "' on table " + name_);
    }
  }
  int64_t row_id = static_cast<int64_t>(rows_.size());
  for (auto& idx : indexes_) {
    idx->tree->Insert(MakeKey(*idx, normalized), row_id);
  }
  rows_.push_back(std::move(normalized));
  deleted_.push_back(false);
  ++live_count_;
  return row_id;
}

Status Table::Delete(int64_t row_id) {
  if (row_id < 0 || static_cast<size_t>(row_id) >= rows_.size() ||
      deleted_[static_cast<size_t>(row_id)]) {
    return Status::NotFound("row id " + std::to_string(row_id) +
                            " not found in table " + name_);
  }
  const Row& row = rows_[static_cast<size_t>(row_id)];
  for (auto& idx : indexes_) {
    idx->tree->Erase(MakeKey(*idx, row), row_id);
  }
  deleted_[static_cast<size_t>(row_id)] = true;
  --live_count_;
  return Status::OK();
}

const Row* Table::GetRow(int64_t row_id) const {
  if (row_id < 0 || static_cast<size_t>(row_id) >= rows_.size() ||
      deleted_[static_cast<size_t>(row_id)]) {
    return nullptr;
  }
  return &rows_[static_cast<size_t>(row_id)];
}

void Table::ScanLive(std::vector<std::pair<int64_t, Row>>* out) const {
  out->reserve(out->size() + live_count_);
  for (size_t id = 0; id < rows_.size(); ++id) {
    if (!deleted_[id]) out->emplace_back(static_cast<int64_t>(id), rows_[id]);
  }
}

TableMetadata Table::Metadata() const {
  TableMetadata meta;
  meta.name = name_;
  meta.schema = schema_;
  meta.cardinality = static_cast<double>(live_count_);
  for (const auto& idx : indexes_) {
    IndexMetadata im;
    im.name = idx->name;
    im.unique = idx->unique;
    for (int ord : idx->key_ordinals) {
      im.key_columns.push_back(schema_.column(static_cast<size_t>(ord)).name);
    }
    meta.indexes.push_back(std::move(im));
  }
  meta.checks = checks_;
  return meta;
}

}  // namespace dhqp
