#ifndef DHQP_STORAGE_HISTOGRAM_H_
#define DHQP_STORAGE_HISTOGRAM_H_

#include <string>

#include "src/common/status.h"
#include "src/provider/metadata.h"
#include "src/storage/table.h"

namespace dhqp {

/// Builds equi-depth column statistics (histogram + summary counts) from a
/// table's live rows. This is what a provider exposes through its histogram
/// rowset extension (§3.2.4) and what the local optimizer uses for
/// cardinality estimation. `max_buckets` bounds the histogram resolution.
Result<ColumnStatistics> BuildColumnStatistics(const Table& table,
                                               const std::string& column,
                                               int max_buckets = 64);

}  // namespace dhqp

#endif  // DHQP_STORAGE_HISTOGRAM_H_
