#include "src/storage/btree.h"

#include <algorithm>
#include <cassert>

namespace dhqp {

int CompareKeys(const IndexKey& a, const IndexKey& b) {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    int c = a[i].Compare(b[i]);
    if (c != 0) return c;
  }
  if (a.size() == b.size()) return 0;
  return a.size() < b.size() ? -1 : 1;
}

namespace {

// Compares `key` against a (possibly shorter) bound, looking only at the
// bound's components. Equal prefix counts as equal, which is what gives
// IndexRange its prefix-match semantics.
int ComparePrefix(const IndexKey& key, const IndexKey& bound) {
  size_t n = std::min(key.size(), bound.size());
  for (size_t i = 0; i < n; ++i) {
    int c = key[i].Compare(bound[i]);
    if (c != 0) return c;
  }
  return 0;
}

}  // namespace

struct BTree::Node {
  bool leaf = true;
  Node* parent = nullptr;
  // Internal nodes: keys are separators, children.size() == keys.size()+1.
  // Leaves: keys/row_ids are parallel entry arrays.
  std::vector<IndexKey> keys;
  std::vector<Node*> children;
  std::vector<int64_t> row_ids;
  Node* next = nullptr;  // Leaf chain for range scans.
};

BTree::BTree(int order) : order_(std::max(order, 4)), root_(new Node()) {}

BTree::~BTree() { FreeTree(root_); }

void BTree::FreeTree(Node* node) {
  if (!node->leaf) {
    for (Node* c : node->children) FreeTree(c);
  }
  delete node;
}

BTree::Node* BTree::FindLeaf(const IndexKey& key, bool leftmost) const {
  Node* node = root_;
  while (!node->leaf) {
    size_t i = 0;
    if (leftmost) {
      // Duplicates of `key` may span leaves; branch left of an equal
      // separator so scans start at the first occurrence.
      while (i < node->keys.size() && CompareKeys(key, node->keys[i]) > 0) ++i;
    } else {
      // Insertion goes after existing duplicates: right of equal separators.
      while (i < node->keys.size() && CompareKeys(key, node->keys[i]) >= 0) {
        ++i;
      }
    }
    node = node->children[i];
  }
  return node;
}

void BTree::Insert(const IndexKey& key, int64_t row_id) {
  Node* leaf = FindLeaf(key, /*leftmost=*/false);
  InsertIntoLeaf(leaf, key, row_id);
  ++size_;
  if (static_cast<int>(leaf->keys.size()) >= order_) SplitLeaf(leaf);
}

void BTree::InsertIntoLeaf(Node* leaf, const IndexKey& key, int64_t row_id) {
  // upper_bound keeps duplicates in insertion order.
  auto it = std::upper_bound(
      leaf->keys.begin(), leaf->keys.end(), key,
      [](const IndexKey& a, const IndexKey& b) { return CompareKeys(a, b) < 0; });
  size_t pos = static_cast<size_t>(it - leaf->keys.begin());
  leaf->keys.insert(it, key);
  leaf->row_ids.insert(leaf->row_ids.begin() + static_cast<long>(pos), row_id);
}

void BTree::SplitLeaf(Node* leaf) {
  size_t mid = leaf->keys.size() / 2;
  Node* right = new Node();
  right->leaf = true;
  right->keys.assign(leaf->keys.begin() + static_cast<long>(mid), leaf->keys.end());
  right->row_ids.assign(leaf->row_ids.begin() + static_cast<long>(mid),
                        leaf->row_ids.end());
  leaf->keys.resize(mid);
  leaf->row_ids.resize(mid);
  right->next = leaf->next;
  leaf->next = right;
  InsertIntoParent(leaf, right->keys.front(), right);
}

void BTree::SplitInternal(Node* node) {
  size_t mid = node->keys.size() / 2;
  IndexKey sep = node->keys[mid];
  Node* right = new Node();
  right->leaf = false;
  right->keys.assign(node->keys.begin() + static_cast<long>(mid) + 1,
                     node->keys.end());
  right->children.assign(node->children.begin() + static_cast<long>(mid) + 1,
                         node->children.end());
  for (Node* c : right->children) c->parent = right;
  node->keys.resize(mid);
  node->children.resize(mid + 1);
  InsertIntoParent(node, std::move(sep), right);
}

void BTree::InsertIntoParent(Node* left, IndexKey sep, Node* right) {
  Node* parent = left->parent;
  if (parent == nullptr) {
    Node* new_root = new Node();
    new_root->leaf = false;
    new_root->keys.push_back(std::move(sep));
    new_root->children = {left, right};
    left->parent = new_root;
    right->parent = new_root;
    root_ = new_root;
    return;
  }
  right->parent = parent;
  // Find left's position among the children.
  size_t pos = 0;
  while (pos < parent->children.size() && parent->children[pos] != left) ++pos;
  assert(pos < parent->children.size());
  parent->keys.insert(parent->keys.begin() + static_cast<long>(pos),
                      std::move(sep));
  parent->children.insert(parent->children.begin() + static_cast<long>(pos) + 1,
                          right);
  if (static_cast<int>(parent->keys.size()) >= order_) SplitInternal(parent);
}

bool BTree::Erase(const IndexKey& key, int64_t row_id) {
  // Duplicates of a key may span leaves; walk the chain from the first
  // candidate. Deletion does not rebalance (acceptable for this workload:
  // ordering and leaf-chain invariants are preserved; nodes may be
  // under-filled after heavy deletes).
  Node* leaf = FindLeaf(key, /*leftmost=*/true);
  while (leaf != nullptr) {
    bool past = false;
    for (size_t i = 0; i < leaf->keys.size(); ++i) {
      int c = CompareKeys(leaf->keys[i], key);
      if (c > 0) {
        past = true;
        break;
      }
      if (c == 0 && leaf->row_ids[i] == row_id) {
        leaf->keys.erase(leaf->keys.begin() + static_cast<long>(i));
        leaf->row_ids.erase(leaf->row_ids.begin() + static_cast<long>(i));
        --size_;
        return true;
      }
    }
    if (past) break;
    leaf = leaf->next;
  }
  return false;
}

bool BTree::Contains(const IndexKey& key) const {
  Node* leaf = FindLeaf(key, /*leftmost=*/true);
  while (leaf != nullptr) {
    for (size_t i = 0; i < leaf->keys.size(); ++i) {
      int c = CompareKeys(leaf->keys[i], key);
      if (c == 0) return true;
      if (c > 0) return false;
    }
    leaf = leaf->next;
  }
  return false;
}

void BTree::Scan(const IndexKey* lo, bool lo_inclusive, const IndexKey* hi,
                 bool hi_inclusive, std::vector<int64_t>* out) const {
  std::vector<std::pair<IndexKey, int64_t>> entries;
  ScanEntries(lo, lo_inclusive, hi, hi_inclusive, &entries);
  out->reserve(out->size() + entries.size());
  for (auto& e : entries) out->push_back(e.second);
}

void BTree::ScanEntries(
    const IndexKey* lo, bool lo_inclusive, const IndexKey* hi,
    bool hi_inclusive,
    std::vector<std::pair<IndexKey, int64_t>>* out) const {
  Node* leaf;
  if (lo != nullptr) {
    leaf = FindLeaf(*lo, /*leftmost=*/true);
  } else {
    leaf = root_;
    while (!leaf->leaf) leaf = leaf->children.front();
  }
  for (; leaf != nullptr; leaf = leaf->next) {
    for (size_t i = 0; i < leaf->keys.size(); ++i) {
      if (lo != nullptr) {
        int c = ComparePrefix(leaf->keys[i], *lo);
        if (c < 0 || (c == 0 && !lo_inclusive)) continue;
      }
      if (hi != nullptr) {
        int c = ComparePrefix(leaf->keys[i], *hi);
        if (c > 0 || (c == 0 && !hi_inclusive)) return;
      }
      out->emplace_back(leaf->keys[i], leaf->row_ids[i]);
    }
  }
}

bool BTree::CheckInvariants() const {
  // 1. Leaf chain is globally sorted.
  Node* leaf = root_;
  while (!leaf->leaf) leaf = leaf->children.front();
  const IndexKey* prev = nullptr;
  size_t counted = 0;
  for (; leaf != nullptr; leaf = leaf->next) {
    for (const IndexKey& k : leaf->keys) {
      if (prev != nullptr && CompareKeys(*prev, k) > 0) return false;
      prev = &k;
      ++counted;
    }
  }
  if (counted != size_) return false;
  // 2. Internal separators bracket their children (checked recursively).
  struct Checker {
    const BTree* tree;
    bool Check(Node* node, const IndexKey* lo, const IndexKey* hi) {
      for (const IndexKey& k : node->keys) {
        if (lo != nullptr && CompareKeys(k, *lo) < 0) return false;
        if (hi != nullptr && CompareKeys(k, *hi) > 0) return false;
      }
      if (node->leaf) return true;
      if (node->children.size() != node->keys.size() + 1) return false;
      for (size_t i = 0; i < node->children.size(); ++i) {
        const IndexKey* clo = i == 0 ? lo : &node->keys[i - 1];
        const IndexKey* chi = i == node->keys.size() ? hi : &node->keys[i];
        if (node->children[i]->parent != node) return false;
        if (!Check(node->children[i], clo, chi)) return false;
      }
      return true;
    }
  };
  Checker checker{this};
  return checker.Check(root_, nullptr, nullptr);
}

}  // namespace dhqp
