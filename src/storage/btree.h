#ifndef DHQP_STORAGE_BTREE_H_
#define DHQP_STORAGE_BTREE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/status.h"
#include "src/common/value.h"

namespace dhqp {

/// Composite index key: values of the key columns in index order.
using IndexKey = std::vector<Value>;

/// Lexicographic comparison of composite keys. A shorter key that is a
/// prefix of a longer one compares equal-on-prefix then shorter-first; this
/// is what makes prefix seeks work.
int CompareKeys(const IndexKey& a, const IndexKey& b);

/// In-memory B+-tree mapping composite keys to row ids (bookmarks).
/// Non-unique by default: duplicate keys are allowed and returned in
/// insertion order. This is the index structure behind both local indexes
/// and index-provider remote sources ("ISAM navigation", §3.2.2).
class BTree {
 public:
  /// `order` = max children per internal node (fan-out).
  explicit BTree(int order = 64);
  ~BTree();

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;

  /// Inserts a (key, row id) pair. If `unique` was requested by the caller,
  /// uniqueness must be checked with Contains() first; the tree itself is a
  /// multimap.
  void Insert(const IndexKey& key, int64_t row_id);

  /// Removes one (key, row_id) pair; returns true if found.
  bool Erase(const IndexKey& key, int64_t row_id);

  /// True if at least one entry has exactly this key.
  bool Contains(const IndexKey& key) const;

  size_t size() const { return size_; }

  /// Collects row ids for all entries with keys in [lo, hi] under the given
  /// inclusivity, in key order. Null lo/hi mean unbounded. Prefix semantics:
  /// pass a shorter key to match all keys starting with it (with
  /// lo_inclusive/hi_inclusive=true).
  void Scan(const IndexKey* lo, bool lo_inclusive, const IndexKey* hi,
            bool hi_inclusive, std::vector<int64_t>* out) const;

  /// Scans full entries (key + row id) in order, for index-only access.
  void ScanEntries(const IndexKey* lo, bool lo_inclusive, const IndexKey* hi,
                   bool hi_inclusive,
                   std::vector<std::pair<IndexKey, int64_t>>* out) const;

  /// Validates B+-tree structural invariants (ordering, fill, linked
  /// leaves); used by property tests. Returns false on violation.
  bool CheckInvariants() const;

 private:
  struct Node;
  struct LeafEntry {
    IndexKey key;
    int64_t row_id;
  };

  /// `leftmost` selects the leaf holding the first occurrence of `key`
  /// (scans/lookups); otherwise the leaf where a new duplicate belongs
  /// (insertion).
  Node* FindLeaf(const IndexKey& key, bool leftmost) const;
  void InsertIntoLeaf(Node* leaf, const IndexKey& key, int64_t row_id);
  void SplitLeaf(Node* leaf);
  void SplitInternal(Node* node);
  void InsertIntoParent(Node* left, IndexKey sep, Node* right);
  void FreeTree(Node* node);

  int order_;
  size_t size_ = 0;
  Node* root_;
};

}  // namespace dhqp

#endif  // DHQP_STORAGE_BTREE_H_
