#ifndef DHQP_STORAGE_STORAGE_ENGINE_H_
#define DHQP_STORAGE_STORAGE_ENGINE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/provider/provider.h"
#include "src/storage/table.h"

namespace dhqp {

/// Injectable failure points for distributed-transaction testing: a
/// participant can be made to vote "no" at prepare or to fail at commit,
/// exercising the DTC's abort and retry paths.
struct FailureInjection {
  bool fail_on_prepare = false;
  bool fail_on_commit = false;
};

/// The local storage engine (Fig 1): a collection of heap tables with
/// B+-tree indexes, CHECK constraints and statistics. SQL Server accesses
/// its own storage engine "through OLE DB" — here, through the same
/// provider interfaces every external source implements (see
/// StorageDataSource below), so "the code patterns to access data from
/// local and external sources are almost identical" (§2).
class StorageEngine {
 public:
  StorageEngine() = default;
  StorageEngine(const StorageEngine&) = delete;
  StorageEngine& operator=(const StorageEngine&) = delete;

  Result<Table*> CreateTable(const std::string& name, Schema schema);
  Result<Table*> GetTable(const std::string& name) const;
  bool HasTable(const std::string& name) const;
  Status DropTable(const std::string& name);
  std::vector<std::string> TableNames() const;

  /// Transactional write surface used by sessions. Writes performed under a
  /// transaction id are undone if the transaction aborts.
  Result<int64_t> InsertRow(int64_t txn_id, const std::string& table,
                            const Row& row);
  Status DeleteRow(int64_t txn_id, const std::string& table, int64_t row_id);

  /// @name Two-phase commit participant protocol.
  ///@{
  Status Begin(int64_t txn_id);
  Status Prepare(int64_t txn_id);
  Status Commit(int64_t txn_id);
  Status Abort(int64_t txn_id);
  ///@}

  FailureInjection& failure_injection() { return failure_; }

  /// Column statistics with a simple freshness cache (rebuilt when the
  /// table's live row count changes).
  Result<ColumnStatistics> GetStatistics(const std::string& table,
                                         const std::string& column);

 private:
  struct UndoAction {
    enum Kind { kUndoInsert, kUndoDelete } kind;
    std::string table;
    int64_t row_id;
    Row row;  ///< Saved image for kUndoDelete.
  };
  struct TxnState {
    bool prepared = false;
    std::vector<UndoAction> undo;
  };
  struct StatsCacheEntry {
    size_t live_count = 0;
    ColumnStatistics stats;
  };

  Result<TxnState*> GetTxn(int64_t txn_id);

  std::map<std::string, std::unique_ptr<Table>> tables_;  // Keyed lower-case.
  std::map<int64_t, TxnState> txns_;
  std::map<std::string, StatsCacheEntry> stats_cache_;  // "table\0column".
  FailureInjection failure_;
};

/// Provider (Data Source Object) over a StorageEngine. This is the
/// "index provider" category of §3.3: no ICommand, but scans, index
/// seek/range, bookmarks, schema rowsets, histograms, and transaction
/// enlistment. The full SQL-capable provider (wrapping a complete engine
/// with optimizer) lives in src/connectors/engine_provider.h.
class StorageDataSource : public DataSource {
 public:
  explicit StorageDataSource(StorageEngine* engine);

  const ProviderCapabilities& capabilities() const override { return caps_; }
  Result<std::unique_ptr<Session>> CreateSession() override;

  StorageEngine* engine() const { return engine_; }

 private:
  StorageEngine* engine_;
  ProviderCapabilities caps_;
};

/// Session over the local storage engine.
class StorageSession : public Session {
 public:
  explicit StorageSession(StorageEngine* engine) : engine_(engine) {}

  Result<std::unique_ptr<Rowset>> OpenRowset(const std::string& table) override;
  Result<std::vector<TableMetadata>> ListTables() override;
  Result<ColumnStatistics> GetStatistics(const std::string& table,
                                         const std::string& column) override;
  Result<std::unique_ptr<Rowset>> OpenIndexRange(const std::string& table,
                                                 const std::string& index,
                                                 const IndexRange& range) override;
  Result<std::unique_ptr<Rowset>> OpenIndexKeys(const std::string& table,
                                                const std::string& index,
                                                const IndexRange& range) override;
  Result<std::optional<Row>> FetchByBookmark(const std::string& table,
                                             const Value& bookmark) override;
  Result<int64_t> InsertRows(const std::string& table,
                             const std::vector<Row>& rows) override;

  Status BeginTransaction(int64_t txn_id) override;
  Status PrepareTransaction(int64_t txn_id) override;
  Status CommitTransaction(int64_t txn_id) override;
  Status AbortTransaction(int64_t txn_id) override;

 private:
  StorageEngine* engine_;
  int64_t active_txn_ = -1;  ///< -1 == autocommit.
};

}  // namespace dhqp

#endif  // DHQP_STORAGE_STORAGE_ENGINE_H_
