#ifndef DHQP_CORE_ENGINE_H_
#define DHQP_CORE_ENGINE_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/catalog/catalog.h"
#include "src/common/date.h"
#include "src/common/waits.h"
#include "src/executor/exec.h"
#include "src/fulltext/service.h"
#include "src/optimizer/context.h"
#include "src/optimizer/physical.h"
#include "src/sql/ast.h"
#include "src/storage/storage_engine.h"
#include "src/sysview/query_store.h"

namespace dhqp {

/// Per-instance configuration.
struct EngineOptions {
  std::string name = "local";
  /// Deterministic TODAY(): the paper's era by default.
  int64_t current_date = 0;  ///< 0 = use kDefaultCurrentDate.
  OptimizerOptions optimizer;
  /// Delayed schema validation (§4.1.5): remote schemas are checked at
  /// execution, not at bind time; on mismatch the statement is recompiled
  /// once against fresh metadata.
  bool delayed_schema_validation = true;
  /// Plan cache: compiled SELECT plans are reused across executions of the
  /// same statement text. Startup filters (§4.1.5) are what make cached
  /// parameterized plans correct for every parameter value.
  bool enable_plan_cache = true;
  size_t plan_cache_capacity = 256;
  /// Query Store: every completed statement is recorded (per-execution ring
  /// + per-fingerprint aggregates) and exposed through the sys DMVs.
  /// Queries against the DMVs themselves are never recorded.
  bool enable_query_store = true;
  size_t query_store_capacity = 256;
  /// Slow-query log threshold: a statement whose end-to-end time reaches
  /// this gets a warning appended to its QueryResult (with the
  /// estimated-vs-actual operator profile when collected) and counts toward
  /// exec.slow_queries. 0 disables.
  int64_t slow_query_ns = 0;
  /// Workload governor: memory-grant admission control. A statement's grant
  /// is estimated from optimizer cardinalities between optimize and execute;
  /// it runs only once the grant fits under `max_server_memory_bytes`
  /// (0 disables the governor — unlimited memory, no queueing, no spills).
  /// While waiting it sits in the `queued` phase accumulating
  /// RESOURCE_SEMAPHORE waits; once admitted, buffering operators that
  /// breach the grant spill to disk instead of growing.
  int64_t max_server_memory_bytes = 0;
  /// Cap on any single statement's grant (0 = the whole budget). Large
  /// estimates are clamped here, forcing them to spill rather than starve
  /// the rest of the workload.
  int64_t max_grant_per_query_bytes = 0;
  /// Cap on concurrently admitted statements (0 = unlimited).
  int max_concurrent_grants = 0;
  /// How long a statement waits for its full grant before degrading to
  /// `min_grant_bytes` (spilling heavily, but running).
  int64_t grant_timeout_ms = 1000;
  /// The floor every statement is guaranteed after a grant timeout.
  int64_t min_grant_bytes = 64 * 1024;
  /// Where spill files go; empty = the platform temp directory.
  std::string spill_directory;
  /// Remote data-movement knobs (block fetch size, prefetch, Concat DOP).
  ExecOptions execution;
};

/// Result of one query execution.
struct QueryResult {
  std::unique_ptr<VectorRowset> rowset;  ///< Null for DDL/DML.
  int64_t rows_affected = 0;             ///< For INSERT.
  PhysicalOpPtr plan;                    ///< Null for DDL/DML.
  ExecStats exec_stats;
  OptimizerRunStats opt_stats;
  /// True when this execution reused a compiled plan from the plan cache.
  bool plan_cache_hit = false;
  /// Non-fatal notices (e.g. partitioned-view members skipped under
  /// ExecOptions::skip_unreachable_members, or the slow-query log entry).
  /// Empty on a clean run.
  std::vector<std::string> warnings;
  /// Per-operator actual execution stats (the STATISTICS PROFILE analog),
  /// populated for executed SELECTs when
  /// ExecOptions::collect_operator_stats is on. Null otherwise.
  std::shared_ptr<OperatorProfile> profile;
  /// Per-query wait accounting: every blocked interval any thread spent on
  /// this statement's behalf (queue stalls, link wire time, retry backoff,
  /// engine mutexes), by type. Disjoint types — totals never double-count.
  waits::WaitTotals wait_totals;
  /// The distributed-request correlation id this statement ran under. When
  /// this engine was the coordinator it generated the id ("<engine>#<seq>");
  /// when it served another engine's command it carries the coordinator's.
  std::string activity_id;
};

/// One engine instance: "SQL Server" in miniature — local storage engine,
/// catalog with linked servers, the DHQP optimizer + executor, full-text
/// integration, and the SQL surface. Multiple Engine instances wired
/// together through providers form the distributed topologies the paper
/// describes (Fig 1) and the federations of §4.1.5.
class Engine {
 public:
  explicit Engine(EngineOptions options = {});

  const std::string& name() const { return options_.name; }
  StorageEngine* storage() { return &storage_; }
  Catalog* catalog() { return catalog_.get(); }
  fulltext::FullTextService* fulltext() { return &fulltext_; }
  EngineOptions* options() { return &options_; }
  /// This engine's Query Store (always present; empty when
  /// EngineOptions::enable_query_store is off).
  sysview::QueryStore* query_store() { return &query_store_; }

  /// Registers a linked server (§2.1): `source` becomes addressable in
  /// four-part names as server.catalog.schema.table.
  Status AddLinkedServer(const std::string& server_name,
                         std::shared_ptr<DataSource> source);

  /// Creates a full-text catalog over a table's text column and indexes its
  /// current rows (§2.3). The optimizer will use it for CONTAINS.
  Status CreateFullTextIndex(const std::string& catalog_name,
                             const std::string& table,
                             const std::string& key_column,
                             const std::string& text_column);

  /// Executes one SQL statement (SELECT / CREATE TABLE / CREATE INDEX /
  /// CREATE VIEW / INSERT). INSERT into a (distributed) partitioned view is
  /// routed to the owning member by the partitioning column's CHECK domain.
  Result<QueryResult> Execute(const std::string& sql,
                              const std::map<std::string, Value>& params = {});

  /// Compiles a SELECT and returns the chosen plan without running it.
  Result<QueryResult> Prepare(const std::string& sql,
                              const std::map<std::string, Value>& params = {});

  /// EXPLAIN-style rendering: physical plan tree + optimizer statistics.
  /// Parameters flow through the same bind path as Prepare, so a
  /// parameterized statement explains exactly as it would execute.
  Result<std::string> Explain(const std::string& sql,
                              const std::map<std::string, Value>& params = {});

  /// Pass-through execution on a linked server (the OPENQUERY path, §3.3).
  Result<std::unique_ptr<Rowset>> ExecutePassThrough(const std::string& server,
                                                     const std::string& query);

  /// Stitched distributed trace for one activity id: reads
  /// sys..dm_trace_spans locally and through every linked server's sys
  /// path (members that expose no sys source simply contribute nothing),
  /// dedupes spans engines may share through one in-process tracer, and
  /// renders a single Chrome trace with one process track per engine.
  /// Tracing must have been enabled while the query ran.
  Result<std::string> MergedChromeTrace(const std::string& activity_id);

  /// One compiled-plan-cache entry as dm_plan_cache exposes it.
  struct PlanCacheEntry {
    std::string statement;  ///< Raw statement text the plan was compiled from.
    uint64_t schema_version = 0;
    int64_t hits = 0;       ///< Executions served from this entry.
    double est_cost = 0;    ///< Optimizer's best cost at compile time.
    bool valid = false;     ///< Compiled under the current schema version.
  };
  /// Point-in-time snapshot of the plan cache, in cache-key order.
  std::vector<PlanCacheEntry> PlanCacheSnapshot() const;

 private:
  /// Bookkeeping one statement execution hands back to the Execute wrapper
  /// so it can record the query store / slow log / metrics.
  struct StatementInfo {
    std::string statement_type;  ///< "select", "insert", ... "" = no parse.
    /// DMV self-exclusion: sys-touching statements and compile-only EXPLAIN
    /// never enter the query store (or the slow log).
    bool exclude_from_store = false;
    bool plan_cacheable = false;
    bool plan_cache_hit = false;
  };

  /// Execute() minus the bookkeeping hooks: on a network error the wrapper
  /// tears down cached remote sessions (Catalog::DropRemoteSessions) so the
  /// next statement reconnects instead of reusing a session over a dead
  /// link; on every completion it records the statement (query store, slow
  /// log, metrics).
  Result<QueryResult> ExecuteInternal(const std::string& sql,
                                      const std::map<std::string, Value>& params,
                                      StatementInfo* info);

  /// Post-execution hook: slow-query warning, exec.* metrics (warnings, DML
  /// counters, DML latency), and the query-store record (stamped with the
  /// statement's activity id and wait totals). DMV-touching statements are
  /// excluded — observing the store must not grow it.
  void FinishStatement(const std::string& sql, int64_t duration_ns,
                       const StatementInfo& info,
                       const waits::WaitTotals& wait_totals,
                       const std::string& activity_id,
                       Result<QueryResult>* result);

  /// Compiles (and optionally executes) a SELECT. `cache_key` is the raw
  /// statement text for plan-cache lookup; empty disables caching. `info`
  /// (nullable) receives plan-cache bookkeeping.
  Result<QueryResult> ExecuteSelect(const SelectStatement& stmt,
                                    const std::map<std::string, Value>& params,
                                    bool execute, const std::string& cache_key,
                                    StatementInfo* info);
  Result<QueryResult> ExecuteCreateTable(const CreateTableStatement& stmt);
  Result<QueryResult> ExecuteCreateIndex(const CreateIndexStatement& stmt);
  Result<QueryResult> ExecuteCreateView(const CreateViewStatement& stmt);
  Result<QueryResult> ExecuteInsert(const InsertStatement& stmt,
                                    const std::map<std::string, Value>& params);
  Result<QueryResult> ExecuteDelete(const DeleteStatement& stmt,
                                    const std::map<std::string, Value>& params);
  Result<QueryResult> ExecuteUpdate(const UpdateStatement& stmt,
                                    const std::map<std::string, Value>& params);

  /// Rows of a local table matching a DML WHERE clause (with their ids).
  Result<std::vector<std::pair<int64_t, Row>>> MatchDmlRows(
      Table* table, const ExprPtr& where,
      const std::map<std::string, Value>& params,
      std::vector<int>* column_ids);

  /// Routes rows into a partitioned view's member tables (§4.1.5).
  Result<int64_t> InsertIntoPartitionedView(
      const ViewDef& view, const std::vector<std::string>& columns,
      const std::vector<Row>& rows);

  /// Delayed schema validation: verifies cached remote schemas used by the
  /// plan still match; returns true if everything checked out.
  Result<bool> ValidateRemoteSchemas(const PhysicalOpPtr& plan);

  /// Builds the per-query optimizer context (options, full-text catalogs).
  OptimizerContext MakeOptimizerContext(ColumnRegistry* registry);

  /// A compiled SELECT ready for repeated execution.
  struct CachedPlan {
    PhysicalOpPtr plan;
    std::vector<int> output_cols;
    std::vector<std::string> output_names;
    std::shared_ptr<ColumnRegistry> registry;
    OptimizerRunStats opt_stats;
    uint64_t schema_version = 0;
    std::string statement;  ///< Raw text, for dm_plan_cache.
    int64_t hits = 0;       ///< Guarded by plan_cache_mu_.
  };

  /// Runs a compiled plan and shapes the result rowset.
  Result<QueryResult> RunCachedPlan(const CachedPlan& cached,
                                    const std::map<std::string, Value>& params);

  EngineOptions options_;
  StorageEngine storage_;
  std::unique_ptr<Catalog> catalog_;
  fulltext::FullTextService fulltext_;
  std::vector<FullTextCatalogInfo> fulltext_catalogs_;
  /// Bumped by any DDL / linked-server / full-text change; cached plans
  /// compiled under an older version are discarded. Atomic: DMV snapshots
  /// read it concurrently with DDL on the owning thread.
  std::atomic<uint64_t> schema_version_{0};
  /// Guards plan_cache_ (and entry hit counts): executions mutate it while
  /// a concurrent DMV scan snapshots it.
  mutable std::mutex plan_cache_mu_;
  std::map<std::string, CachedPlan> plan_cache_;
  sysview::QueryStore query_store_;
};

/// Default deterministic "today" (2004-11-15, the paper's era).
int64_t DefaultCurrentDate();

}  // namespace dhqp

#endif  // DHQP_CORE_ENGINE_H_
