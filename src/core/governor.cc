#include "src/core/governor.h"

#include <algorithm>
#include <atomic>
#include <chrono>

#include "src/common/fastclock.h"
#include "src/common/metrics.h"
#include "src/common/waits.h"
#include "src/executor/profile.h"

namespace dhqp {
namespace governor {

namespace {

std::atomic<bool> g_enabled{true};

/// Statement text kept per grant is capped like the request registry's —
/// dm_exec_query_memory_grants is a monitoring surface, not a SQL archive.
constexpr size_t kMaxStatementChars = 512;

/// governor.* instruments, resolved once (registry pointers are stable).
struct Instruments {
  metrics::Counter* grants;
  metrics::Counter* queued;
  metrics::Counter* timeouts;
  metrics::Gauge* granted_bytes;
  metrics::Gauge* active;
  metrics::Gauge* queue_length;
};

Instruments& Instr() {
  static Instruments instr = [] {
    auto& reg = metrics::Registry::Global();
    Instruments i;
    i.grants = reg.GetCounter("governor.grants");
    i.queued = reg.GetCounter("governor.queued");
    i.timeouts = reg.GetCounter("governor.grant_timeouts");
    i.granted_bytes = reg.GetGauge("governor.granted_bytes");
    i.active = reg.GetGauge("governor.active_grants");
    i.queue_length = reg.GetGauge("governor.queue_length");
    return i;
  }();
  return instr;
}

/// Estimated heap bytes of one materialized row with this output shape —
/// the planning-time analog of RowMemBytes (same fixed overhead, same
/// per-value cost, a flat allowance for string payloads).
int64_t EstRowBytes(const std::vector<DataType>& types) {
  int64_t bytes = static_cast<int64_t>(sizeof(Row)) +
                  static_cast<int64_t>(types.size() * sizeof(Value));
  for (DataType t : types) {
    if (t == DataType::kString) bytes += 32;
  }
  return bytes;
}

/// Per-group accumulator footprint allowance for hash aggregation
/// (Accumulator + vector overhead; DISTINCT sets are not estimable here).
constexpr int64_t kAccumulatorBytes = 64;
/// Exchange queues buffer up to this many batches per partition stream.
constexpr int64_t kExchangeQueueDepth = 4;

void AddOpGrant(const PhysicalOp& op, const ExecOptions& exec,
                int64_t* total) {
  switch (op.kind) {
    case PhysicalOpKind::kHashJoin: {
      // Build side (the right child) is fully resident: rows plus the key
      // copies the hash table stores alongside them. Parallel instances
      // partition the same build rows, so dop does not scale the total.
      const PhysicalOp& build = *op.children[1];
      const double rows = std::max(1.0, build.estimated_rows);
      *total += static_cast<int64_t>(
          rows * static_cast<double>(EstRowBytes(build.output_types) + 48));
      break;
    }
    case PhysicalOpKind::kHashAggregate: {
      // One entry per output group; instances under a repartition exchange
      // hold disjoint groups, so again no dop scaling.
      const double groups = std::max(1.0, op.estimated_rows);
      const int64_t accs =
          kAccumulatorBytes *
          static_cast<int64_t>(std::max<size_t>(1, op.aggregates.size()));
      *total += static_cast<int64_t>(
          groups * static_cast<double>(EstRowBytes(op.output_types) + accs));
      break;
    }
    case PhysicalOpKind::kSort:
    case PhysicalOpKind::kSpool: {
      // Full input materialization.
      const PhysicalOp& child = *op.children[0];
      const double rows = std::max(1.0, child.estimated_rows);
      *total += static_cast<int64_t>(
          rows * static_cast<double>(EstRowBytes(child.output_types)));
      break;
    }
    case PhysicalOpKind::kTop: {
      const PhysicalOp& child = *op.children[0];
      const double rows = std::min(static_cast<double>(std::max<int64_t>(
                                       1, op.limit)),
                                   std::max(1.0, child.estimated_rows));
      *total += static_cast<int64_t>(
          rows * static_cast<double>(EstRowBytes(child.output_types)));
      break;
    }
    case PhysicalOpKind::kExchange: {
      // Queue stash: depth batches of exec_batch_rows rows per partition
      // stream — the one footprint that scales with dop.
      const int64_t streams = std::max(1, op.dop);
      const int64_t batch_rows = std::max(1, exec.exec_batch_rows);
      *total += streams * kExchangeQueueDepth * batch_rows *
                EstRowBytes(op.output_types);
      break;
    }
    default:
      break;
  }
  for (const auto& child : op.children) AddOpGrant(*child, exec, total);
}

}  // namespace

int64_t EstimateGrantBytes(const PhysicalOpPtr& plan,
                           const ExecOptions& exec) {
  if (plan == nullptr) return 0;
  int64_t total = 0;
  AddOpGrant(*plan, exec, &total);
  return total;
}

MemoryGrant& MemoryGrant::operator=(MemoryGrant&& other) noexcept {
  if (this != &other) {
    Release();
    governor_ = other.governor_;
    id_ = other.id_;
    requested_bytes_ = other.requested_bytes_;
    granted_bytes_ = other.granted_bytes_;
    degraded_ = other.degraded_;
    other.governor_ = nullptr;
    other.granted_bytes_ = 0;
  }
  return *this;
}

void MemoryGrant::Release() {
  if (governor_ == nullptr) return;
  governor_->Release(id_);
  governor_ = nullptr;
}

Governor& Governor::Global() {
  static Governor* governor = new Governor();  // Leaked.
  return *governor;
}

void Governor::SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
  // Wake waiters so a mid-queue disable admits them unlimited.
  Governor& g = Global();
  std::lock_guard<std::mutex> lock(g.mu_);
  g.cv_.notify_all();
}

bool Governor::Enabled() {
  return g_enabled.load(std::memory_order_relaxed);
}

uint64_t Governor::FrontTicketLocked() const {
  uint64_t front = 0;
  for (const auto& [id, e] : entries_) {
    if (e.granted_bytes > 0) continue;
    if (front == 0 || e.ticket < front) front = e.ticket;
  }
  return front;
}

void Governor::UpdateGaugesLocked() {
  Instr().granted_bytes->Set(total_granted_);
  Instr().active->Set(active_grants_);
  Instr().queue_length->Set(queued_);
}

MemoryGrant Governor::Acquire(const GovernorOptions& opts,
                              int64_t estimate_bytes,
                              const std::string& engine,
                              const std::string& activity_id,
                              const std::string& statement, int dop) {
  if (!Enabled() || opts.max_server_memory_bytes <= 0) return MemoryGrant();

  const int64_t budget = opts.max_server_memory_bytes;
  int64_t per_query = opts.max_grant_per_query_bytes > 0
                          ? std::min(opts.max_grant_per_query_bytes, budget)
                          : budget;
  int64_t min_grant =
      std::min(opts.min_grant_bytes > 0 ? opts.min_grant_bytes : 1, per_query);
  if (min_grant <= 0) min_grant = 1;
  const int64_t ask =
      std::min(per_query, std::max(min_grant, estimate_bytes));

  std::unique_lock<std::mutex> lock(mu_);
  const int64_t id = next_id_++;
  GrantEntry& e = entries_[id];
  e.id = id;
  e.ticket = next_ticket_++;
  e.engine = engine;
  e.activity_id = activity_id;
  e.statement = statement.substr(0, kMaxStatementChars);
  e.dop = dop;
  e.requested_bytes = ask;
  e.original_bytes = ask;
  e.enqueue_ns = fastclock::NowNs();

  auto fits = [&]() {
    if (!Enabled()) return true;  // Kill switch flipped mid-wait.
    if (opts.max_concurrent_grants > 0 &&
        active_grants_ >= opts.max_concurrent_grants) {
      return false;
    }
    if (total_granted_ + e.requested_bytes > budget) return false;
    return FrontTicketLocked() == e.ticket;  // Strict FIFO: no starvation.
  };

  if (!fits()) {
    Instr().queued->Increment();
    ++queued_;
    UpdateGaugesLocked();
    waits::BlockTimer timer;
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(std::max<int64_t>(0, opts.grant_timeout_ms));
    bool timed_out = false;
    while (!fits()) {
      if (!timed_out) {
        if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
          timed_out = true;
          if (min_grant < e.requested_bytes) {
            e.requested_bytes = min_grant;
            e.degraded = true;
            Instr().timeouts->Increment();
          }
        }
      } else {
        cv_.wait(lock);
      }
    }
    --queued_;
    waits::RecordWait(waits::WaitType::kResourceSemaphore, timer.Elapsed());
  }

  // Kill switch flipped while queued: admit unlimited, drop the entry.
  if (!Enabled()) {
    entries_.erase(id);
    UpdateGaugesLocked();
    cv_.notify_all();
    return MemoryGrant();
  }

  e.granted_bytes = e.requested_bytes;
  e.grant_ns = fastclock::NowNs();
  total_granted_ += e.granted_bytes;
  ++active_grants_;
  Instr().grants->Increment();
  UpdateGaugesLocked();
  // Our dequeue may unblock the next FIFO head.
  cv_.notify_all();
  return MemoryGrant(this, id, e.original_bytes, e.granted_bytes, e.degraded);
}

void Governor::Release(int64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(id);
  if (it == entries_.end()) return;
  if (it->second.granted_bytes > 0) {
    total_granted_ -= it->second.granted_bytes;
    --active_grants_;
  }
  entries_.erase(it);
  UpdateGaugesLocked();
  cv_.notify_all();
}

std::vector<GrantRow> Governor::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<uint64_t, GrantRow>> rows;
  rows.reserve(entries_.size());
  const int64_t now_ns = fastclock::NowNs();
  for (const auto& [id, e] : entries_) {
    GrantRow row;
    row.grant_id = e.id;
    row.engine = e.engine;
    row.activity_id = e.activity_id;
    row.statement = e.statement;
    row.dop = e.dop;
    row.is_queued = e.granted_bytes == 0;
    row.requested_bytes = e.original_bytes;
    row.granted_bytes = e.granted_bytes;
    row.wait_ns = (e.grant_ns > 0 ? e.grant_ns : now_ns) - e.enqueue_ns;
    row.degraded = e.degraded;
    // Queued entries sort before granted ones, each group in FIFO order.
    const uint64_t order =
        (row.is_queued ? 0 : (uint64_t{1} << 63)) | e.ticket;
    rows.emplace_back(order, std::move(row));
  }
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<GrantRow> out;
  out.reserve(rows.size());
  for (auto& [order, row] : rows) out.push_back(std::move(row));
  return out;
}

int64_t Governor::total_granted_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_granted_;
}

int64_t Governor::active_grants() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_grants_;
}

int64_t Governor::queued_statements() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_;
}

}  // namespace governor
}  // namespace dhqp
