#include "src/core/engine.h"

#include <algorithm>

#include "src/common/metrics.h"
#include "src/common/trace.h"
#include "src/connectors/linked_provider.h"
#include "src/optimizer/normalize.h"
#include "src/optimizer/optimizer.h"
#include "src/sql/binder.h"
#include "src/sql/parser.h"

namespace dhqp {

namespace {

// Evaluates one VALUES expression (constants, @params, scalar functions).
Result<Value> EvalInsertExpr(const Expr& expr, Catalog* catalog,
                             const EvalEnv& env) {
  Binder binder(catalog);
  DHQP_ASSIGN_OR_RETURN(ScalarExprPtr bound, binder.BindValueExpr(expr));
  return EvalExpr(*bound, env);
}

// Expands (column-list, rows) into full schema-ordered rows; unlisted
// columns become NULL. An empty column list means positional assignment.
Result<std::vector<Row>> ShapeRows(const Schema& schema,
                                   const std::vector<std::string>& columns,
                                   const std::vector<Row>& rows) {
  std::vector<int> ordinals;
  if (columns.empty()) {
    for (size_t i = 0; i < schema.num_columns(); ++i) {
      ordinals.push_back(static_cast<int>(i));
    }
  } else {
    for (const std::string& name : columns) {
      int ord = schema.FindColumn(name);
      if (ord < 0) {
        return Status::NotFound("INSERT column '" + name + "' not found");
      }
      ordinals.push_back(ord);
    }
  }
  std::vector<Row> out;
  out.reserve(rows.size());
  for (const Row& row : rows) {
    if (row.size() != ordinals.size()) {
      return Status::InvalidArgument(
          "INSERT row has " + std::to_string(row.size()) + " values, " +
          std::to_string(ordinals.size()) + " expected");
    }
    Row shaped(schema.num_columns());
    for (size_t i = 0; i < schema.num_columns(); ++i) {
      shaped[i] = Value::Null(schema.column(i).type);
    }
    for (size_t i = 0; i < ordinals.size(); ++i) {
      size_t ord = static_cast<size_t>(ordinals[i]);
      DHQP_ASSIGN_OR_RETURN(shaped[ord],
                            row[i].CastTo(schema.column(ord).type));
    }
    out.push_back(std::move(shaped));
  }
  return out;
}

// Sums the fault-related link counters over every linked server reachable
// through a LinkedDataSource. Links are shared across queries, so per-query
// ExecStats are computed as before/after deltas around ExecutePlan.
struct LinkFaultTotals {
  int64_t retries = 0;
  int64_t timeouts = 0;
  int64_t faults = 0;
};

LinkFaultTotals SumLinkFaults(Catalog* catalog) {
  LinkFaultTotals totals;
  const size_t n = catalog->LinkedServerNames().size();
  for (size_t i = 0; i < n; ++i) {
    auto* linked =
        dynamic_cast<LinkedDataSource*>(catalog->ServerSource(static_cast<int>(i)));
    if (linked == nullptr) continue;
    net::LinkStats stats = linked->link()->stats();
    totals.retries += stats.retries;
    totals.timeouts += stats.timeouts;
    totals.faults += stats.faults;
  }
  return totals;
}

}  // namespace

int64_t DefaultCurrentDate() { return CivilToDays(2004, 11, 15); }

Engine::Engine(EngineOptions options) : options_(std::move(options)) {
  if (options_.current_date == 0) {
    options_.current_date = DefaultCurrentDate();
  }
  catalog_ = std::make_unique<Catalog>(&storage_);
}

Status Engine::AddLinkedServer(const std::string& server_name,
                               std::shared_ptr<DataSource> source) {
  DHQP_RETURN_NOT_OK(source->Initialize({{"linked_server", server_name}}));
  ++schema_version_;
  return catalog_->AddLinkedServer(server_name, std::move(source));
}

Status Engine::CreateFullTextIndex(const std::string& catalog_name,
                                   const std::string& table,
                                   const std::string& key_column,
                                   const std::string& text_column) {
  DHQP_ASSIGN_OR_RETURN(Table * t, storage_.GetTable(table));
  int key_ord = t->schema().FindColumn(key_column);
  int text_ord = t->schema().FindColumn(text_column);
  if (key_ord < 0 || text_ord < 0) {
    return Status::NotFound("full-text key/text column not found on " + table);
  }
  DHQP_RETURN_NOT_OK(
      fulltext_.CreateCatalog(catalog_name, table, key_column, text_column));
  std::vector<std::pair<int64_t, Row>> rows;
  t->ScanLive(&rows);
  for (const auto& [id, row] : rows) {
    const Value& text = row[static_cast<size_t>(text_ord)];
    if (text.is_null()) continue;
    DHQP_RETURN_NOT_OK(fulltext_.IndexEntry(
        catalog_name, row[static_cast<size_t>(key_ord)], text.string_value()));
  }
  fulltext_catalogs_.push_back(
      FullTextCatalogInfo{table, key_column, text_column, catalog_name});
  ++schema_version_;
  return Status::OK();
}

OptimizerContext Engine::MakeOptimizerContext(ColumnRegistry* registry) {
  OptimizerContext ctx(catalog_.get(), registry, options_.optimizer);
  for (const FullTextCatalogInfo& info : fulltext_catalogs_) {
    ctx.AddFullTextCatalog(info);
  }
  return ctx;
}

Result<QueryResult> Engine::Execute(
    const std::string& sql, const std::map<std::string, Value>& params) {
  Result<QueryResult> result = ExecuteInternal(sql, params);
  if (!result.ok() && result.status().code() == StatusCode::kNetworkError) {
    // Link-down teardown (§4.2): a cached session over a dead link is
    // useless even once the link recovers — drop them all so the next
    // statement reconnects. Safe here: the executor joins every prefetch /
    // parallel-branch thread before ExecutePlan returns, so nothing still
    // holds a raw Session pointer.
    catalog_->DropRemoteSessions();
  }
  return result;
}

Result<QueryResult> Engine::ExecuteInternal(
    const std::string& sql, const std::map<std::string, Value>& params) {
  std::unique_ptr<Statement> stmt;
  {
    trace::Span span("engine.parse");
    DHQP_ASSIGN_OR_RETURN(stmt, Parser::Parse(sql));
  }
  switch (stmt->kind) {
    case Statement::Kind::kSelect: {
      if (stmt->explain_analyze) {
        // EXPLAIN ANALYZE SELECT ...: execute with operator profiling
        // forced on, then render estimated-vs-actual per operator.
        const bool saved = options_.execution.collect_operator_stats;
        options_.execution.collect_operator_stats = true;
        Result<QueryResult> executed =
            ExecuteSelect(*stmt->select, params, /*execute=*/true, sql);
        options_.execution.collect_operator_stats = saved;
        DHQP_RETURN_NOT_OK(executed.status());
        QueryResult result = std::move(executed).value();
        if (result.profile == nullptr) {
          return Status::Internal("EXPLAIN ANALYZE produced no profile");
        }
        Schema schema;
        schema.AddColumn(ColumnDef{"plan", DataType::kString, false});
        std::vector<Row> rows;
        std::string text = RenderOperatorProfile(*result.profile);
        size_t start = 0;
        while (start < text.size()) {
          size_t end = text.find('\n', start);
          if (end == std::string::npos) end = text.size();
          rows.push_back({Value::String(text.substr(start, end - start))});
          start = end + 1;
        }
        result.rowset = std::make_unique<VectorRowset>(std::move(schema),
                                                       std::move(rows));
        return std::move(result);
      }
      if (stmt->explain) {
        // EXPLAIN SELECT ...: compile only; the plan renders as text rows
        // with the same pre-order operator ids EXPLAIN ANALYZE uses.
        DHQP_ASSIGN_OR_RETURN(
            QueryResult prepared,
            ExecuteSelect(*stmt->select, params, /*execute=*/false, ""));
        Schema schema;
        schema.AddColumn(ColumnDef{"plan", DataType::kString, false});
        std::vector<Row> rows;
        int next_id = 1;
        std::string text = prepared.plan->ToStringWithIds(0, &next_id);
        size_t start = 0;
        while (start < text.size()) {
          size_t end = text.find('\n', start);
          if (end == std::string::npos) end = text.size();
          rows.push_back({Value::String(text.substr(start, end - start))});
          start = end + 1;
        }
        prepared.rowset = std::make_unique<VectorRowset>(std::move(schema),
                                                         std::move(rows));
        return std::move(prepared);
      }
      return ExecuteSelect(*stmt->select, params, /*execute=*/true, sql);
    }
    case Statement::Kind::kCreateTable:
      return ExecuteCreateTable(*stmt->create_table);
    case Statement::Kind::kCreateIndex:
      return ExecuteCreateIndex(*stmt->create_index);
    case Statement::Kind::kCreateView:
      return ExecuteCreateView(*stmt->create_view);
    case Statement::Kind::kInsert:
      return ExecuteInsert(*stmt->insert, params);
    case Statement::Kind::kDelete:
      return ExecuteDelete(*stmt->delete_stmt, params);
    case Statement::Kind::kUpdate:
      return ExecuteUpdate(*stmt->update, params);
    case Statement::Kind::kDrop: {
      ++schema_version_;
      if (stmt->drop->target == DropStatement::Target::kTable) {
        DHQP_RETURN_NOT_OK(storage_.DropTable(stmt->drop->name));
      } else {
        DHQP_RETURN_NOT_OK(catalog_->DropView(stmt->drop->name));
      }
      return QueryResult{};
    }
  }
  return Status::Internal("unknown statement kind");
}

Result<std::vector<std::pair<int64_t, Row>>> Engine::MatchDmlRows(
    Table* table, const ExprPtr& where,
    const std::map<std::string, Value>& params,
    std::vector<int>* column_ids) {
  std::vector<std::pair<int64_t, Row>> live;
  table->ScanLive(&live);
  if (where == nullptr) return live;

  Binder binder(catalog_.get());
  DHQP_ASSIGN_OR_RETURN(
      ScalarExprPtr pred,
      binder.BindSingleTableExpr(*where, table->schema(), table->name(),
                                 column_ids));
  std::map<int, int> positions;
  for (size_t i = 0; i < column_ids->size(); ++i) {
    positions[(*column_ids)[i]] = static_cast<int>(i);
  }
  EvalEnv env;
  env.col_pos = &positions;
  env.params = &params;
  env.current_date = options_.current_date;
  std::vector<std::pair<int64_t, Row>> matched;
  for (auto& [id, row] : live) {
    env.row = &row;
    DHQP_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*pred, env));
    if (pass) matched.emplace_back(id, std::move(row));
  }
  return matched;
}

Result<QueryResult> Engine::ExecuteDelete(
    const DeleteStatement& stmt, const std::map<std::string, Value>& params) {
  if (stmt.table.has_server()) {
    return Status::NotSupported(
        "DELETE against linked servers is not supported; run it on the "
        "remote engine or via pass-through");
  }
  DHQP_ASSIGN_OR_RETURN(Table * table, storage_.GetTable(stmt.table.table));
  std::vector<int> column_ids;
  DHQP_ASSIGN_OR_RETURN(auto matched,
                        MatchDmlRows(table, stmt.where, params, &column_ids));
  QueryResult result;
  for (const auto& [id, row] : matched) {
    DHQP_RETURN_NOT_OK(storage_.DeleteRow(-1, stmt.table.table, id));
    ++result.rows_affected;
  }
  return std::move(result);
}

Result<QueryResult> Engine::ExecuteUpdate(
    const UpdateStatement& stmt, const std::map<std::string, Value>& params) {
  if (stmt.table.has_server()) {
    return Status::NotSupported(
        "UPDATE against linked servers is not supported; run it on the "
        "remote engine or via pass-through");
  }
  DHQP_ASSIGN_OR_RETURN(Table * table, storage_.GetTable(stmt.table.table));
  const Schema& schema = table->schema();

  // Bind assignment targets and value expressions (old row values visible).
  std::vector<int> column_ids;
  Binder binder(catalog_.get());
  std::vector<std::pair<int, ScalarExprPtr>> assignments;
  for (const auto& [column, expr] : stmt.assignments) {
    int ord = schema.FindColumn(column);
    if (ord < 0) {
      return Status::NotFound("UPDATE column '" + column + "' not found");
    }
    DHQP_ASSIGN_OR_RETURN(
        ScalarExprPtr bound,
        binder.BindSingleTableExpr(*expr, schema, table->name(), &column_ids));
    assignments.emplace_back(ord, std::move(bound));
  }
  DHQP_ASSIGN_OR_RETURN(auto matched,
                        MatchDmlRows(table, stmt.where, params, &column_ids));

  std::map<int, int> positions;
  for (size_t i = 0; i < column_ids.size(); ++i) {
    positions[column_ids[i]] = static_cast<int>(i);
  }
  EvalEnv env;
  env.col_pos = &positions;
  env.params = &params;
  env.current_date = options_.current_date;

  // Update as delete + reinsert (constraints and indexes re-validated); on
  // a constraint violation the original row is restored.
  QueryResult result;
  for (auto& [id, row] : matched) {
    env.row = &row;
    Row updated = row;
    for (const auto& [ord, expr] : assignments) {
      DHQP_ASSIGN_OR_RETURN(Value v, EvalExpr(*expr, env));
      DHQP_ASSIGN_OR_RETURN(updated[static_cast<size_t>(ord)],
                            v.CastTo(schema.column(static_cast<size_t>(ord)).type));
    }
    DHQP_RETURN_NOT_OK(storage_.DeleteRow(-1, stmt.table.table, id));
    auto inserted = storage_.InsertRow(-1, stmt.table.table, updated);
    if (!inserted.ok()) {
      // Restore the original row, then surface the error.
      (void)storage_.InsertRow(-1, stmt.table.table, row);
      return inserted.status();
    }
    ++result.rows_affected;
  }
  return std::move(result);
}

Result<QueryResult> Engine::Prepare(
    const std::string& sql, const std::map<std::string, Value>& params) {
  DHQP_ASSIGN_OR_RETURN(auto stmt, Parser::Parse(sql));
  if (stmt->kind != Statement::Kind::kSelect) {
    return Status::InvalidArgument("Prepare supports SELECT statements");
  }
  return ExecuteSelect(*stmt->select, params, /*execute=*/false, "");
}

Result<std::string> Engine::Explain(const std::string& sql) {
  DHQP_ASSIGN_OR_RETURN(QueryResult prepared, Prepare(sql));
  int next_id = 1;
  std::string out = prepared.plan->ToStringWithIds(0, &next_id);
  out += "phases: " + std::to_string(prepared.opt_stats.phases_run) +
         " (stopped after " + prepared.opt_stats.phase_name + ")";
  out += ", groups: " + std::to_string(prepared.opt_stats.groups);
  out += ", exprs: " + std::to_string(prepared.opt_stats.group_exprs);
  out += ", rules applied: " + std::to_string(prepared.opt_stats.rules_applied);
  out += ", est cost: " + std::to_string(prepared.opt_stats.best_cost) + "\n";
  return out;
}

// Publishes one query's ExecStats deltas into the process-wide metrics
// registry ("exec.*"), plus the end-to-end latency histogram. Instrument
// pointers are resolved once (registrations are permanent).
static void PublishExecMetrics(const ExecStats& stats, int64_t query_ns) {
  struct Instruments {
    metrics::Counter* rows_output;
    metrics::Counter* rows_from_remote;
    metrics::Counter* remote_commands;
    metrics::Counter* remote_opens;
    metrics::Counter* remote_fetches;
    metrics::Counter* remote_batches;
    metrics::Counter* prefetch_stalls;
    metrics::Counter* startup_skips;
    metrics::Counter* partitions_opened;
    metrics::Counter* parallel_branches;
    metrics::Counter* spool_rescans;
    metrics::Counter* remote_retries;
    metrics::Counter* remote_timeouts;
    metrics::Counter* faults_injected;
    metrics::Counter* members_skipped;
    metrics::Histogram* query_ns;
  };
  static const Instruments in = [] {
    metrics::Registry& reg = metrics::Registry::Global();
    Instruments i;
    i.rows_output = reg.GetCounter("exec.rows_output");
    i.rows_from_remote = reg.GetCounter("exec.rows_from_remote");
    i.remote_commands = reg.GetCounter("exec.remote_commands");
    i.remote_opens = reg.GetCounter("exec.remote_opens");
    i.remote_fetches = reg.GetCounter("exec.remote_fetches");
    i.remote_batches = reg.GetCounter("exec.remote_batches");
    i.prefetch_stalls = reg.GetCounter("exec.prefetch_stalls");
    i.startup_skips = reg.GetCounter("exec.startup_skips");
    i.partitions_opened = reg.GetCounter("exec.partitions_opened");
    i.parallel_branches = reg.GetCounter("exec.parallel_branches");
    i.spool_rescans = reg.GetCounter("exec.spool_rescans");
    i.remote_retries = reg.GetCounter("exec.remote_retries");
    i.remote_timeouts = reg.GetCounter("exec.remote_timeouts");
    i.faults_injected = reg.GetCounter("exec.faults_injected");
    i.members_skipped = reg.GetCounter("exec.members_skipped");
    i.query_ns = reg.GetHistogram("engine.query_ns");
    return i;
  }();
  in.rows_output->Add(stats.rows_output);
  in.rows_from_remote->Add(stats.rows_from_remote);
  in.remote_commands->Add(stats.remote_commands);
  in.remote_opens->Add(stats.remote_opens);
  in.remote_fetches->Add(stats.remote_fetches);
  in.remote_batches->Add(stats.remote_batches);
  in.prefetch_stalls->Add(stats.prefetch_stalls);
  in.startup_skips->Add(stats.startup_skips);
  in.partitions_opened->Add(stats.partitions_opened);
  in.parallel_branches->Add(stats.parallel_branches);
  in.spool_rescans->Add(stats.spool_rescans);
  in.remote_retries->Add(stats.remote_retries);
  in.remote_timeouts->Add(stats.remote_timeouts);
  in.faults_injected->Add(stats.faults_injected);
  in.members_skipped->Add(stats.members_skipped);
  in.query_ns->Observe(query_ns);
}

Result<QueryResult> Engine::RunCachedPlan(
    const CachedPlan& cached, const std::map<std::string, Value>& params) {
  trace::Span span("engine.execute");
  const int64_t start_ns = fastclock::NowNs();
  ExecContext ectx;
  ectx.catalog = catalog_.get();
  ectx.fulltext = &fulltext_;
  ectx.params = params;
  ectx.current_date = options_.current_date;
  ectx.options = options_.execution;
  const LinkFaultTotals before = SumLinkFaults(catalog_.get());
  DHQP_ASSIGN_OR_RETURN(auto rowset, ExecutePlan(cached.plan, &ectx));
  // Per-query fault accounting: links are charged below the executor (and
  // shared across queries), so the deltas land here. Exact because
  // ExecutePlan joins all worker threads before returning; clamped in case
  // a bench reset the link counters mid-delta.
  const LinkFaultTotals after = SumLinkFaults(catalog_.get());
  ectx.stats.remote_retries = std::max<int64_t>(0, after.retries - before.retries);
  ectx.stats.remote_timeouts =
      std::max<int64_t>(0, after.timeouts - before.timeouts);
  ectx.stats.faults_injected = std::max<int64_t>(0, after.faults - before.faults);
  PublishExecMetrics(ectx.stats, fastclock::NowNs() - start_ns);

  // Align output columns with the statement's select-list order/names (the
  // plan may carry extra hidden columns or a different physical order).
  QueryResult result;
  result.plan = cached.plan;
  result.opt_stats = cached.opt_stats;
  Schema schema;
  for (size_t i = 0; i < cached.output_cols.size(); ++i) {
    schema.AddColumn(ColumnDef{cached.output_names[i],
                               cached.registry->TypeOf(cached.output_cols[i]),
                               true});
  }
  const std::vector<int>& plan_cols = cached.plan->output_cols;
  if (plan_cols == cached.output_cols) {
    result.rowset =
        std::make_unique<VectorRowset>(std::move(schema), rowset->rows());
  } else {
    std::vector<int> positions;
    for (int col : cached.output_cols) {
      auto it = std::find(plan_cols.begin(), plan_cols.end(), col);
      if (it == plan_cols.end()) {
        return Status::Internal("plan lost output column #" +
                                std::to_string(col));
      }
      positions.push_back(static_cast<int>(it - plan_cols.begin()));
    }
    std::vector<Row> rows;
    rows.reserve(rowset->rows().size());
    for (const Row& in : rowset->rows()) {
      Row out;
      out.reserve(positions.size());
      for (int p : positions) out.push_back(in[static_cast<size_t>(p)]);
      rows.push_back(std::move(out));
    }
    result.rowset =
        std::make_unique<VectorRowset>(std::move(schema), std::move(rows));
  }
  result.exec_stats = ectx.stats;
  result.warnings = std::move(ectx.warnings);
  result.profile = std::move(ectx.profile);
  return std::move(result);
}

Result<QueryResult> Engine::ExecuteSelect(
    const SelectStatement& stmt, const std::map<std::string, Value>& params,
    bool execute, const std::string& cache_key) {
  // Plan-cache hit: re-execute the compiled plan with fresh parameters.
  // Startup filters keep parameterized plans correct for any value (§4.1.5).
  // Optimizer toggles are part of the key: a plan compiled under different
  // options (the ablation benches flip them) must not be reused.
  bool use_cache = execute && options_.enable_plan_cache && !cache_key.empty();
  std::string full_key;
  if (use_cache) {
    const OptimizerOptions& oo = options_.optimizer;
    char opts_fp[16];
    std::snprintf(opts_fp, sizeof(opts_fp), "%d%d%d%d%d%d%d%d%d%d|",
                  oo.enable_join_reorder, oo.enable_remote_pushdown,
                  oo.enable_parameterization, oo.enable_spool_enforcer,
                  oo.enable_remote_statistics, oo.enable_startup_filters,
                  oo.enable_static_pruning, oo.enable_index_paths,
                  oo.enable_fulltext_index, oo.multi_phase);
    full_key = std::string(opts_fp) + cache_key;
  }
  if (use_cache) {
    auto it = plan_cache_.find(full_key);
    if (it != plan_cache_.end()) {
      if (it->second.schema_version == schema_version_) {
        metrics::Registry::Global()
            .GetCounter("engine.plan_cache.hit")
            ->Increment();
        auto result = RunCachedPlan(it->second, params);
        if (result.ok()) return result;
        // A link failure is not plan staleness: the retry policy already
        // ran at the link layer, recompiling cannot reach an unreachable
        // server, and silently re-executing could turn a mid-stream member
        // failure into a clean-looking skip. Surface it as-is.
        if (result.status().code() == StatusCode::kNetworkError) {
          return result;
        }
        // A cached plan can go stale in ways version bumps don't cover
        // (e.g. a remote server changed behind its provider): drop it and
        // recompile below.
      }
      plan_cache_.erase(it);
    }
  }
  if (use_cache) {
    metrics::Registry::Global()
        .GetCounter("engine.plan_cache.miss")
        ->Increment();
  }

  for (int attempt = 0;; ++attempt) {
    Binder binder(catalog_.get());
    BoundStatement bound;
    {
      trace::Span span("engine.bind");
      DHQP_ASSIGN_OR_RETURN(bound, binder.BindSelect(stmt));
    }
    OptimizerContext octx = MakeOptimizerContext(bound.registry.get());
    OptimizeResult optimized;
    {
      trace::Span span("engine.optimize");
      LogicalOpPtr normalized = Normalize(bound.root, &octx);
      Optimizer optimizer(&octx);
      DHQP_ASSIGN_OR_RETURN(optimized,
                            optimizer.Optimize(normalized, bound.order_by));
    }

    if (!execute) {
      QueryResult result;
      result.plan = optimized.plan;
      result.opt_stats = optimized.stats;
      return std::move(result);
    }

    // Delayed schema validation (§4.1.5): check cached remote metadata at
    // execution time; on drift, recompile once against fresh metadata.
    if (options_.delayed_schema_validation && attempt == 0) {
      DHQP_ASSIGN_OR_RETURN(bool valid, ValidateRemoteSchemas(optimized.plan));
      if (!valid) {
        catalog_->InvalidateCaches();
        continue;
      }
    }

    CachedPlan compiled;
    compiled.plan = optimized.plan;
    compiled.output_cols = bound.output_cols;
    compiled.output_names = bound.output_names;
    compiled.registry = bound.registry;
    compiled.opt_stats = optimized.stats;
    compiled.schema_version = schema_version_;
    DHQP_ASSIGN_OR_RETURN(QueryResult result,
                          RunCachedPlan(compiled, params));
    if (use_cache) {
      if (plan_cache_.size() >= options_.plan_cache_capacity) {
        plan_cache_.clear();  // Crude but bounded; capacity is generous.
      }
      plan_cache_.emplace(full_key, std::move(compiled));
    }
    return std::move(result);
  }
}

Result<bool> Engine::ValidateRemoteSchemas(const PhysicalOpPtr& plan) {
  switch (plan->kind) {
    case PhysicalOpKind::kRemoteScan:
    case PhysicalOpKind::kRemoteRange:
    case PhysicalOpKind::kRemoteFetch: {
      ObjectName name;
      name.server = plan->table.server_name;
      name.table = plan->table.metadata.name;
      DHQP_ASSIGN_OR_RETURN(ResolvedTable fresh,
                            catalog_->ResolveTable(name, /*refresh=*/true));
      if (!fresh.metadata.schema.Equals(plan->table.metadata.schema)) {
        return false;
      }
      break;
    }
    default:
      break;
  }
  for (const PhysicalOpPtr& child : plan->children) {
    DHQP_ASSIGN_OR_RETURN(bool ok, ValidateRemoteSchemas(child));
    if (!ok) return false;
  }
  return true;
}

Result<QueryResult> Engine::ExecuteCreateTable(
    const CreateTableStatement& stmt) {
  Schema schema;
  std::string pk_column;
  for (const ColumnDefAst& col : stmt.columns) {
    schema.AddColumn(ColumnDef{col.name, col.type, !col.not_null});
    if (col.primary_key) {
      if (!pk_column.empty()) {
        return Status::NotSupported("composite PRIMARY KEY via column syntax");
      }
      pk_column = col.name;
    }
  }
  ++schema_version_;
  DHQP_ASSIGN_OR_RETURN(Table * table, storage_.CreateTable(stmt.name, schema));
  for (const ExprPtr& check : stmt.checks) {
    DHQP_ASSIGN_OR_RETURN(CheckConstraint bound,
                          Binder::BindCheckConstraint(*check, schema));
    DHQP_RETURN_NOT_OK(table->AddCheckConstraint(std::move(bound)));
  }
  if (!pk_column.empty()) {
    DHQP_RETURN_NOT_OK(
        table->CreateIndex("pk_" + stmt.name, {pk_column}, /*unique=*/true));
  }
  return QueryResult{};
}

Result<QueryResult> Engine::ExecuteCreateIndex(
    const CreateIndexStatement& stmt) {
  ++schema_version_;
  DHQP_ASSIGN_OR_RETURN(Table * table, storage_.GetTable(stmt.table));
  DHQP_RETURN_NOT_OK(table->CreateIndex(stmt.name, stmt.columns, stmt.unique));
  return QueryResult{};
}

Result<QueryResult> Engine::ExecuteCreateView(
    const CreateViewStatement& stmt) {
  ++schema_version_;
  DHQP_RETURN_NOT_OK(catalog_->CreateView(stmt.name, stmt.body_sql));
  return QueryResult{};
}

Result<QueryResult> Engine::ExecuteInsert(
    const InsertStatement& stmt, const std::map<std::string, Value>& params) {
  // Evaluate the VALUES rows (constants, parameters, scalar functions).
  EvalEnv env;
  env.params = &params;
  env.current_date = options_.current_date;
  std::vector<Row> rows;
  for (const auto& exprs : stmt.rows) {
    Row row;
    for (const ExprPtr& e : exprs) {
      DHQP_ASSIGN_OR_RETURN(Value v, EvalInsertExpr(*e, catalog_.get(), env));
      row.push_back(std::move(v));
    }
    rows.push_back(std::move(row));
  }

  QueryResult result;
  // Remote table?
  if (stmt.table.has_server()) {
    DHQP_ASSIGN_OR_RETURN(ResolvedTable resolved,
                          catalog_->ResolveTable(stmt.table));
    DHQP_ASSIGN_OR_RETURN(std::vector<Row> shaped,
                          ShapeRows(resolved.metadata.schema, stmt.columns,
                                    rows));
    DHQP_ASSIGN_OR_RETURN(Session * session,
                          catalog_->GetSession(resolved.source_id));
    DHQP_ASSIGN_OR_RETURN(result.rows_affected,
                          session->InsertRows(stmt.table.table, shaped));
    return std::move(result);
  }
  // Partitioned view?
  const ViewDef* view = catalog_->FindView(stmt.table.table);
  if (view != nullptr) {
    DHQP_ASSIGN_OR_RETURN(result.rows_affected,
                          InsertIntoPartitionedView(*view, stmt.columns, rows));
    return std::move(result);
  }
  // Local table.
  DHQP_ASSIGN_OR_RETURN(Table * table, storage_.GetTable(stmt.table.table));
  DHQP_ASSIGN_OR_RETURN(std::vector<Row> shaped,
                        ShapeRows(table->schema(), stmt.columns, rows));
  for (const Row& row : shaped) {
    DHQP_ASSIGN_OR_RETURN(int64_t id,
                          storage_.InsertRow(-1, stmt.table.table, row));
    (void)id;
    ++result.rows_affected;
  }
  return std::move(result);
}

Result<int64_t> Engine::InsertIntoPartitionedView(
    const ViewDef& view, const std::vector<std::string>& columns,
    const std::vector<Row>& rows) {
  DHQP_ASSIGN_OR_RETURN(auto parsed, Parser::ParseSelect(view.sql));
  // Each branch must be a single-table SELECT; gather member tables.
  struct Member {
    ResolvedTable table;
    ObjectName name;
  };
  std::vector<Member> members;
  for (const auto& core : parsed->cores) {
    if (core->from == nullptr || core->from->kind != TableRef::Kind::kNamed) {
      return Status::NotSupported(
          "INSERT through views requires single-table UNION ALL branches");
    }
    Member member;
    member.name = core->from->name;
    DHQP_ASSIGN_OR_RETURN(member.table, catalog_->ResolveTable(member.name));
    members.push_back(std::move(member));
  }
  if (members.empty()) {
    return Status::NotSupported("view has no members");
  }
  // The partitioning column: constrained by a CHECK in every member.
  std::string part_column;
  for (const CheckConstraint& check : members[0].table.checks) {
    bool in_all = true;
    for (const Member& m : members) {
      bool found = false;
      for (const CheckConstraint& c : m.table.checks) {
        if (EqualsIgnoreCase(c.column, check.column)) found = true;
      }
      in_all &= found;
    }
    if (in_all) {
      part_column = check.column;
      break;
    }
  }
  if (part_column.empty()) {
    return Status::NotSupported(
        "view members carry no common partitioning CHECK constraint");
  }

  int64_t inserted = 0;
  for (const Row& row : rows) {
    DHQP_ASSIGN_OR_RETURN(
        std::vector<Row> shaped,
        ShapeRows(members[0].table.metadata.schema, columns, {row}));
    int part_ord = members[0].table.metadata.schema.FindColumn(part_column);
    const Value& key = shaped[0][static_cast<size_t>(part_ord)];
    const Member* target = nullptr;
    for (const Member& m : members) {
      for (const CheckConstraint& c : m.table.checks) {
        if (EqualsIgnoreCase(c.column, part_column) &&
            !key.is_null() && c.domain.Contains(key)) {
          target = &m;
          break;
        }
      }
      if (target != nullptr) break;
    }
    if (target == nullptr) {
      return Status::ConstraintViolation(
          "value " + key.ToString() +
          " fits no member partition of view " + view.name);
    }
    if (target->table.source_id == kLocalSource) {
      DHQP_ASSIGN_OR_RETURN(
          int64_t id,
          storage_.InsertRow(-1, target->table.metadata.name, shaped[0]));
      (void)id;
    } else {
      DHQP_ASSIGN_OR_RETURN(Session * session,
                            catalog_->GetSession(target->table.source_id));
      DHQP_ASSIGN_OR_RETURN(
          int64_t n,
          session->InsertRows(target->table.metadata.name, {shaped[0]}));
      (void)n;
    }
    ++inserted;
  }
  return inserted;
}

Result<std::unique_ptr<Rowset>> Engine::ExecutePassThrough(
    const std::string& server, const std::string& query) {
  DHQP_ASSIGN_OR_RETURN(int source_id, catalog_->GetLinkedServerId(server));
  DHQP_ASSIGN_OR_RETURN(Session * session, catalog_->GetSession(source_id));
  DHQP_ASSIGN_OR_RETURN(auto command, session->CreateCommand());
  DHQP_RETURN_NOT_OK(command->SetText(query));
  return command->Execute();
}

}  // namespace dhqp
