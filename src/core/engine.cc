#include "src/core/engine.h"

#include <algorithm>
#include <cstdio>
#include <set>

#include "src/common/activity.h"
#include "src/common/metrics.h"
#include "src/common/trace.h"
#include "src/common/waits.h"
#include "src/connectors/dmv_provider.h"
#include "src/connectors/linked_provider.h"
#include "src/core/governor.h"
#include "src/optimizer/normalize.h"
#include "src/optimizer/optimizer.h"
#include "src/sql/binder.h"
#include "src/sql/parser.h"
#include "src/sysview/requests.h"

namespace dhqp {

namespace {

// True if any table reference in the FROM tree names the reserved system
// source (as server part, or as catalog/schema shorthand: sys..dm_x).
bool TableRefTouchesSys(const TableRef* ref) {
  if (ref == nullptr) return false;
  switch (ref->kind) {
    case TableRef::Kind::kNamed:
      return EqualsIgnoreCase(ref->name.server, kSysServerName) ||
             EqualsIgnoreCase(ref->name.catalog, kSysServerName) ||
             EqualsIgnoreCase(ref->name.schema, kSysServerName);
    case TableRef::Kind::kJoin:
      return TableRefTouchesSys(ref->left.get()) ||
             TableRefTouchesSys(ref->right.get());
    case TableRef::Kind::kOpenQuery:
      return EqualsIgnoreCase(ref->server, kSysServerName);
  }
  return false;
}

// AST-level DMV detection: catches explicitly sys-qualified statements
// before any plan-cache counter can tick. Bare DMV names (resolved through
// the catalog's fallback) are caught later by PlanTouchesSys.
bool StatementTouchesSys(const SelectStatement& stmt) {
  for (const auto& core : stmt.cores) {
    if (TableRefTouchesSys(core->from.get())) return true;
  }
  return false;
}

// Post-bind DMV detection: authoritative — any scan in the physical plan
// resolved to the reserved system source (however the name was spelled).
bool PlanTouchesSys(const PhysicalOpPtr& plan) {
  if (plan == nullptr) return false;
  if (EqualsIgnoreCase(plan->table.server_name, kSysServerName)) return true;
  for (const PhysicalOpPtr& child : plan->children) {
    if (PlanTouchesSys(child)) return true;
  }
  return false;
}

// Evaluates one VALUES expression (constants, @params, scalar functions).
Result<Value> EvalInsertExpr(const Expr& expr, Catalog* catalog,
                             const EvalEnv& env) {
  Binder binder(catalog);
  DHQP_ASSIGN_OR_RETURN(ScalarExprPtr bound, binder.BindValueExpr(expr));
  return EvalExpr(*bound, env);
}

// Expands (column-list, rows) into full schema-ordered rows; unlisted
// columns become NULL. An empty column list means positional assignment.
Result<std::vector<Row>> ShapeRows(const Schema& schema,
                                   const std::vector<std::string>& columns,
                                   const std::vector<Row>& rows) {
  std::vector<int> ordinals;
  if (columns.empty()) {
    for (size_t i = 0; i < schema.num_columns(); ++i) {
      ordinals.push_back(static_cast<int>(i));
    }
  } else {
    for (const std::string& name : columns) {
      int ord = schema.FindColumn(name);
      if (ord < 0) {
        return Status::NotFound("INSERT column '" + name + "' not found");
      }
      ordinals.push_back(ord);
    }
  }
  std::vector<Row> out;
  out.reserve(rows.size());
  for (const Row& row : rows) {
    if (row.size() != ordinals.size()) {
      return Status::InvalidArgument(
          "INSERT row has " + std::to_string(row.size()) + " values, " +
          std::to_string(ordinals.size()) + " expected");
    }
    Row shaped(schema.num_columns());
    for (size_t i = 0; i < schema.num_columns(); ++i) {
      shaped[i] = Value::Null(schema.column(i).type);
    }
    for (size_t i = 0; i < ordinals.size(); ++i) {
      size_t ord = static_cast<size_t>(ordinals[i]);
      DHQP_ASSIGN_OR_RETURN(shaped[ord],
                            row[i].CastTo(schema.column(ord).type));
    }
    out.push_back(std::move(shaped));
  }
  return out;
}

// Sums the fault-related link counters over every linked server reachable
// through a LinkedDataSource. Links are shared across queries, so per-query
// ExecStats are computed as before/after deltas around ExecutePlan.
struct LinkFaultTotals {
  int64_t retries = 0;
  int64_t timeouts = 0;
  int64_t faults = 0;
};

// Locks `mu`, charging contention to the wait-statistics subsystem as
// `type`. Uncontended acquisition — the overwhelmingly common case — takes
// the try_lock fast path and records nothing.
std::unique_lock<std::mutex> LockRecordingWait(std::mutex& mu,
                                               waits::WaitType type) {
  std::unique_lock<std::mutex> lock(mu, std::try_to_lock);
  if (!lock.owns_lock()) {
    waits::BlockTimer timer;
    lock.lock();
    waits::RecordWait(type, timer.Elapsed());
  }
  return lock;
}

LinkFaultTotals SumLinkFaults(Catalog* catalog) {
  LinkFaultTotals totals;
  const size_t n = catalog->LinkedServerNames().size();
  for (size_t i = 0; i < n; ++i) {
    auto* linked =
        dynamic_cast<LinkedDataSource*>(catalog->ServerSource(static_cast<int>(i)));
    if (linked == nullptr) continue;
    net::LinkStats stats = linked->link()->stats();
    totals.retries += stats.retries;
    totals.timeouts += stats.timeouts;
    totals.faults += stats.faults;
  }
  return totals;
}

}  // namespace

int64_t DefaultCurrentDate() { return CivilToDays(2004, 11, 15); }

Engine::Engine(EngineOptions options)
    : options_(std::move(options)),
      query_store_(options_.query_store_capacity) {
  if (options_.current_date == 0) {
    options_.current_date = DefaultCurrentDate();
  }
  catalog_ = std::make_unique<Catalog>(&storage_);
  // Every engine carries its system views as a linked server: the DMVs are
  // just another provider, so the same SELECT machinery (and the same
  // four-part names, from a remote host) reads them.
  (void)catalog_->AddLinkedServer(kSysServerName,
                                  std::make_shared<DmvDataSource>(this),
                                  /*reserved=*/true);
}

Status Engine::AddLinkedServer(const std::string& server_name,
                               std::shared_ptr<DataSource> source) {
  DHQP_RETURN_NOT_OK(source->Initialize({{"linked_server", server_name}}));
  ++schema_version_;
  return catalog_->AddLinkedServer(server_name, std::move(source));
}

Status Engine::CreateFullTextIndex(const std::string& catalog_name,
                                   const std::string& table,
                                   const std::string& key_column,
                                   const std::string& text_column) {
  DHQP_ASSIGN_OR_RETURN(Table * t, storage_.GetTable(table));
  int key_ord = t->schema().FindColumn(key_column);
  int text_ord = t->schema().FindColumn(text_column);
  if (key_ord < 0 || text_ord < 0) {
    return Status::NotFound("full-text key/text column not found on " + table);
  }
  DHQP_RETURN_NOT_OK(
      fulltext_.CreateCatalog(catalog_name, table, key_column, text_column));
  std::vector<std::pair<int64_t, Row>> rows;
  t->ScanLive(&rows);
  for (const auto& [id, row] : rows) {
    const Value& text = row[static_cast<size_t>(text_ord)];
    if (text.is_null()) continue;
    DHQP_RETURN_NOT_OK(fulltext_.IndexEntry(
        catalog_name, row[static_cast<size_t>(key_ord)], text.string_value()));
  }
  fulltext_catalogs_.push_back(
      FullTextCatalogInfo{table, key_column, text_column, catalog_name});
  ++schema_version_;
  return Status::OK();
}

OptimizerContext Engine::MakeOptimizerContext(ColumnRegistry* registry) {
  OptimizerOptions opts = options_.optimizer;
  // dop is the one exec knob the optimizer sees: it gates the exchange
  // enforcer, so it must flow into compilation (and the plan-cache key).
  opts.max_dop = options_.execution.dop;
  OptimizerContext ctx(catalog_.get(), registry, opts);
  for (const FullTextCatalogInfo& info : fulltext_catalogs_) {
    ctx.AddFullTextCatalog(info);
  }
  return ctx;
}

Result<QueryResult> Engine::Execute(
    const std::string& sql, const std::map<std::string, Value>& params) {
  StatementInfo info;
  // Distributed-request correlation: with no id on the thread this engine
  // is the coordinator and originates one; with an incoming id (a member
  // engine serving another engine's provider command, or a worker thread
  // that re-installed its query's id) the statement runs — and is recorded
  // — under the coordinator's id.
  const std::string& incoming = activity::Current();
  activity::Scope act(incoming.empty() ? activity::Generate(options_.name)
                                       : incoming);
  // Spans recorded while this statement runs — including on an in-process
  // member engine serving a provider command on this same thread — carry
  // the executing engine's name, so stitched traces attribute each span to
  // its engine.
  trace::EngineTagScope engine_tag(options_.name);
  // Live monitoring: the statement is visible in sys..dm_exec_requests for
  // its whole lifetime. The request state owns the per-query wait tally
  // (worker threads — prefetch, exchange, Concat — capture and re-install
  // it, so every blocked interval on the statement's behalf rolls up here
  // and is readable mid-flight); when monitoring is disabled the scope
  // degrades to an inline tally and registers nothing.
  sysview::RequestScope request(options_.name, activity::Current(), sql,
                                options_.execution.dop);
  const int64_t start_ns = fastclock::NowNs();
  Result<QueryResult> result = [&]() -> Result<QueryResult> {
    waits::ScopedQueryTally tally(request.wait_tally());
    return ExecuteInternal(sql, params, &info);
  }();
  if (!result.ok() && result.status().code() == StatusCode::kNetworkError) {
    // Link-down teardown (§4.2): a cached session over a dead link is
    // useless even once the link recovers — drop them all so the next
    // statement reconnects. Safe here: the executor joins every prefetch /
    // parallel-branch thread before ExecutePlan returns, so nothing still
    // holds a raw Session pointer.
    catalog_->DropRemoteSessions();
  }
  const waits::WaitTotals wait_totals = waits::Snapshot(*request.wait_tally());
  if (result.ok()) {
    result->wait_totals = wait_totals;
    result->activity_id = activity::Current();
  }
  FinishStatement(sql, fastclock::NowNs() - start_ns, info, wait_totals,
                  activity::Current(), &result);
  return result;
}

void Engine::FinishStatement(const std::string& sql, int64_t duration_ns,
                             const StatementInfo& info,
                             const waits::WaitTotals& wait_totals,
                             const std::string& activity_id,
                             Result<QueryResult>* result) {
  struct Instruments {
    metrics::Counter* statements;
    metrics::Counter* failures;
    metrics::Counter* warnings;
    metrics::Counter* slow_queries;
    metrics::Counter* dml_statements;
    metrics::Counter* dml_rows_affected;
    metrics::Histogram* query_ns;
  };
  static const Instruments in = [] {
    metrics::Registry& reg = metrics::Registry::Global();
    Instruments i;
    i.statements = reg.GetCounter("exec.statements");
    i.failures = reg.GetCounter("exec.failed_statements");
    i.warnings = reg.GetCounter("exec.warnings");
    i.slow_queries = reg.GetCounter("exec.slow_queries");
    i.dml_statements = reg.GetCounter("exec.dml_statements");
    i.dml_rows_affected = reg.GetCounter("exec.dml_rows_affected");
    i.query_ns = reg.GetHistogram("engine.query_ns");
    return i;
  }();

  const bool ok = result->ok();
  QueryResult* qr = ok ? &result->value() : nullptr;
  // Self-exclusion: a statement that read the DMVs must not itself show up
  // in the query store, the slow log, or the statement counters — otherwise
  // observing the system grows what it observes. The AST check catches
  // sys-qualified names; the plan walk catches bare DMV names resolved
  // through the catalog fallback (the shape decoded remote scans take).
  const bool exclude = info.exclude_from_store ||
                       (qr != nullptr && PlanTouchesSys(qr->plan));
  if (exclude) return;

  in.statements->Increment();
  if (!ok) in.failures->Increment();

  const bool is_dml = info.statement_type == "insert" ||
                      info.statement_type == "update" ||
                      info.statement_type == "delete";
  if (qr != nullptr && is_dml) {
    // PR 3 only instrumented SELECT (via RunCachedPlan); DML latency and
    // volume land here so exec.* covers every statement shape.
    in.dml_statements->Increment();
    in.dml_rows_affected->Add(qr->rows_affected);
    in.query_ns->Observe(duration_ns);
  }

  if (qr != nullptr && options_.slow_query_ns > 0 &&
      duration_ns >= options_.slow_query_ns) {
    char head[96];
    std::snprintf(head, sizeof(head),
                  "slow query: %.3f ms (threshold %.3f ms)",
                  static_cast<double>(duration_ns) / 1e6,
                  static_cast<double>(options_.slow_query_ns) / 1e6);
    std::string warning(head);
    if (qr->profile != nullptr) {
      // The est-vs-actual profile is the first thing a slow-query
      // investigation wants; append it when the execution collected one.
      warning += "\n" + RenderOperatorProfile(*qr->profile);
    }
    qr->warnings.push_back(std::move(warning));
    in.slow_queries->Increment();
  }
  if (qr != nullptr) {
    in.warnings->Add(static_cast<int64_t>(qr->warnings.size()));
  }

  if (!options_.enable_query_store) return;
  sysview::ExecutionRecord rec;
  rec.fingerprint = sysview::FingerprintStatement(sql);
  rec.statement = sql.substr(0, sysview::ExecutionRecord::kMaxStatementLen);
  rec.statement_type =
      info.statement_type.empty() ? "invalid" : info.statement_type;
  rec.duration_ns = duration_ns;
  rec.ok = ok;
  if (!ok) rec.error = StatusCodeName(result->status().code());
  rec.plan_cache_hit = info.plan_cache_hit;
  rec.plan_cacheable = info.plan_cacheable;
  rec.activity_id = activity_id;
  rec.waits = wait_totals;
  if (qr != nullptr) {
    rec.rows = qr->rowset != nullptr
                   ? static_cast<int64_t>(qr->rowset->rows().size())
                   : qr->rows_affected;
    rec.retries = qr->exec_stats.remote_retries;
    rec.timeouts = qr->exec_stats.remote_timeouts;
    rec.faults = qr->exec_stats.faults_injected;
    rec.warnings = static_cast<int64_t>(qr->warnings.size());
    rec.profile = qr->profile;
  }
  query_store_.Record(std::move(rec));
}

Result<QueryResult> Engine::ExecuteInternal(
    const std::string& sql, const std::map<std::string, Value>& params,
    StatementInfo* info) {
  std::unique_ptr<Statement> stmt;
  {
    trace::Span span("engine.parse");
    DHQP_ASSIGN_OR_RETURN(stmt, Parser::Parse(sql));
  }
  switch (stmt->kind) {
    case Statement::Kind::kSelect: {
      info->statement_type = stmt->explain_analyze ? "explain analyze"
                             : stmt->explain       ? "explain"
                                                   : "select";
      // Sys-qualified statements bypass the plan cache entirely (empty
      // cache key), so DMV reads never pollute hit/miss counters or show up
      // in dm_plan_cache.
      const bool sys = StatementTouchesSys(*stmt->select);
      if (sys) {
        info->exclude_from_store = true;
        // Same two-layer gating for live monitoring: a dm_exec_requests
        // scan must not list itself. The post-bind PlanTouchesSys layer in
        // ExecuteSelect catches bare DMV names.
        sysview::MarkCurrentRequestExcluded();
      }
      const std::string cache_key = sys ? "" : sql;
      if (stmt->explain_analyze) {
        // EXPLAIN ANALYZE SELECT ...: execute with operator profiling
        // forced on, then render estimated-vs-actual per operator.
        const bool saved = options_.execution.collect_operator_stats;
        options_.execution.collect_operator_stats = true;
        Result<QueryResult> executed = ExecuteSelect(
            *stmt->select, params, /*execute=*/true, cache_key, info);
        options_.execution.collect_operator_stats = saved;
        DHQP_RETURN_NOT_OK(executed.status());
        QueryResult result = std::move(executed).value();
        if (result.profile == nullptr) {
          return Status::Internal("EXPLAIN ANALYZE produced no profile");
        }
        Schema schema;
        schema.AddColumn(ColumnDef{"plan", DataType::kString, false});
        std::vector<Row> rows;
        std::string text = RenderOperatorProfile(*result.profile);
        size_t start = 0;
        while (start < text.size()) {
          size_t end = text.find('\n', start);
          if (end == std::string::npos) end = text.size();
          rows.push_back({Value::String(text.substr(start, end - start))});
          start = end + 1;
        }
        result.rowset = std::make_unique<VectorRowset>(std::move(schema),
                                                       std::move(rows));
        return std::move(result);
      }
      if (stmt->explain) {
        // EXPLAIN SELECT ...: compile only; nothing executed, so the query
        // store skips it. The plan renders as text rows with the same
        // pre-order operator ids EXPLAIN ANALYZE uses.
        info->exclude_from_store = true;
        DHQP_ASSIGN_OR_RETURN(
            QueryResult prepared,
            ExecuteSelect(*stmt->select, params, /*execute=*/false, "", info));
        Schema schema;
        schema.AddColumn(ColumnDef{"plan", DataType::kString, false});
        std::vector<Row> rows;
        int next_id = 1;
        std::string text = prepared.plan->ToStringWithIds(0, &next_id);
        size_t start = 0;
        while (start < text.size()) {
          size_t end = text.find('\n', start);
          if (end == std::string::npos) end = text.size();
          rows.push_back({Value::String(text.substr(start, end - start))});
          start = end + 1;
        }
        prepared.rowset = std::make_unique<VectorRowset>(std::move(schema),
                                                         std::move(rows));
        return std::move(prepared);
      }
      return ExecuteSelect(*stmt->select, params, /*execute=*/true, cache_key,
                           info);
    }
    case Statement::Kind::kCreateTable:
      info->statement_type = "create table";
      return ExecuteCreateTable(*stmt->create_table);
    case Statement::Kind::kCreateIndex:
      info->statement_type = "create index";
      return ExecuteCreateIndex(*stmt->create_index);
    case Statement::Kind::kCreateView:
      info->statement_type = "create view";
      return ExecuteCreateView(*stmt->create_view);
    case Statement::Kind::kInsert:
      info->statement_type = "insert";
      return ExecuteInsert(*stmt->insert, params);
    case Statement::Kind::kDelete:
      info->statement_type = "delete";
      return ExecuteDelete(*stmt->delete_stmt, params);
    case Statement::Kind::kUpdate:
      info->statement_type = "update";
      return ExecuteUpdate(*stmt->update, params);
    case Statement::Kind::kDrop: {
      info->statement_type = "drop";
      ++schema_version_;
      if (stmt->drop->target == DropStatement::Target::kTable) {
        DHQP_RETURN_NOT_OK(storage_.DropTable(stmt->drop->name));
      } else {
        DHQP_RETURN_NOT_OK(catalog_->DropView(stmt->drop->name));
      }
      return QueryResult{};
    }
  }
  return Status::Internal("unknown statement kind");
}

Result<std::vector<std::pair<int64_t, Row>>> Engine::MatchDmlRows(
    Table* table, const ExprPtr& where,
    const std::map<std::string, Value>& params,
    std::vector<int>* column_ids) {
  std::vector<std::pair<int64_t, Row>> live;
  table->ScanLive(&live);
  if (where == nullptr) return live;

  Binder binder(catalog_.get());
  DHQP_ASSIGN_OR_RETURN(
      ScalarExprPtr pred,
      binder.BindSingleTableExpr(*where, table->schema(), table->name(),
                                 column_ids));
  std::map<int, int> positions;
  for (size_t i = 0; i < column_ids->size(); ++i) {
    positions[(*column_ids)[i]] = static_cast<int>(i);
  }
  EvalEnv env;
  env.col_pos = &positions;
  env.params = &params;
  env.current_date = options_.current_date;
  std::vector<std::pair<int64_t, Row>> matched;
  for (auto& [id, row] : live) {
    env.row = &row;
    DHQP_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*pred, env));
    if (pass) matched.emplace_back(id, std::move(row));
  }
  return matched;
}

Result<QueryResult> Engine::ExecuteDelete(
    const DeleteStatement& stmt, const std::map<std::string, Value>& params) {
  if (stmt.table.has_server()) {
    return Status::NotSupported(
        "DELETE against linked servers is not supported; run it on the "
        "remote engine or via pass-through");
  }
  DHQP_ASSIGN_OR_RETURN(Table * table, storage_.GetTable(stmt.table.table));
  std::vector<int> column_ids;
  DHQP_ASSIGN_OR_RETURN(auto matched,
                        MatchDmlRows(table, stmt.where, params, &column_ids));
  QueryResult result;
  for (const auto& [id, row] : matched) {
    DHQP_RETURN_NOT_OK(storage_.DeleteRow(-1, stmt.table.table, id));
    ++result.rows_affected;
  }
  return std::move(result);
}

Result<QueryResult> Engine::ExecuteUpdate(
    const UpdateStatement& stmt, const std::map<std::string, Value>& params) {
  if (stmt.table.has_server()) {
    return Status::NotSupported(
        "UPDATE against linked servers is not supported; run it on the "
        "remote engine or via pass-through");
  }
  DHQP_ASSIGN_OR_RETURN(Table * table, storage_.GetTable(stmt.table.table));
  const Schema& schema = table->schema();

  // Bind assignment targets and value expressions (old row values visible).
  std::vector<int> column_ids;
  Binder binder(catalog_.get());
  std::vector<std::pair<int, ScalarExprPtr>> assignments;
  for (const auto& [column, expr] : stmt.assignments) {
    int ord = schema.FindColumn(column);
    if (ord < 0) {
      return Status::NotFound("UPDATE column '" + column + "' not found");
    }
    DHQP_ASSIGN_OR_RETURN(
        ScalarExprPtr bound,
        binder.BindSingleTableExpr(*expr, schema, table->name(), &column_ids));
    assignments.emplace_back(ord, std::move(bound));
  }
  DHQP_ASSIGN_OR_RETURN(auto matched,
                        MatchDmlRows(table, stmt.where, params, &column_ids));

  std::map<int, int> positions;
  for (size_t i = 0; i < column_ids.size(); ++i) {
    positions[column_ids[i]] = static_cast<int>(i);
  }
  EvalEnv env;
  env.col_pos = &positions;
  env.params = &params;
  env.current_date = options_.current_date;

  // Update as delete + reinsert (constraints and indexes re-validated); on
  // a constraint violation the original row is restored.
  QueryResult result;
  for (auto& [id, row] : matched) {
    env.row = &row;
    Row updated = row;
    for (const auto& [ord, expr] : assignments) {
      DHQP_ASSIGN_OR_RETURN(Value v, EvalExpr(*expr, env));
      DHQP_ASSIGN_OR_RETURN(updated[static_cast<size_t>(ord)],
                            v.CastTo(schema.column(static_cast<size_t>(ord)).type));
    }
    DHQP_RETURN_NOT_OK(storage_.DeleteRow(-1, stmt.table.table, id));
    auto inserted = storage_.InsertRow(-1, stmt.table.table, updated);
    if (!inserted.ok()) {
      // Restore the original row, then surface the error.
      (void)storage_.InsertRow(-1, stmt.table.table, row);
      return inserted.status();
    }
    ++result.rows_affected;
  }
  return std::move(result);
}

Result<QueryResult> Engine::Prepare(
    const std::string& sql, const std::map<std::string, Value>& params) {
  DHQP_ASSIGN_OR_RETURN(auto stmt, Parser::Parse(sql));
  if (stmt->kind != Statement::Kind::kSelect) {
    return Status::InvalidArgument("Prepare supports SELECT statements");
  }
  return ExecuteSelect(*stmt->select, params, /*execute=*/false, "", nullptr);
}

Result<std::string> Engine::Explain(const std::string& sql,
                                    const std::map<std::string, Value>& params) {
  DHQP_ASSIGN_OR_RETURN(QueryResult prepared, Prepare(sql, params));
  int next_id = 1;
  std::string out = prepared.plan->ToStringWithIds(0, &next_id);
  out += "phases: " + std::to_string(prepared.opt_stats.phases_run) +
         " (stopped after " + prepared.opt_stats.phase_name + ")";
  out += ", groups: " + std::to_string(prepared.opt_stats.groups);
  out += ", exprs: " + std::to_string(prepared.opt_stats.group_exprs);
  out += ", rules applied: " + std::to_string(prepared.opt_stats.rules_applied);
  out += ", est cost: " + std::to_string(prepared.opt_stats.best_cost) + "\n";
  return out;
}

// Publishes one query's ExecStats deltas into the process-wide metrics
// registry ("exec.*"), plus the end-to-end latency histogram. Instrument
// pointers are resolved once (registrations are permanent).
static void PublishExecMetrics(const ExecStats& stats, int64_t query_ns) {
  struct Instruments {
    metrics::Counter* rows_output;
    metrics::Counter* rows_from_remote;
    metrics::Counter* remote_commands;
    metrics::Counter* remote_opens;
    metrics::Counter* remote_fetches;
    metrics::Counter* remote_batches;
    metrics::Counter* prefetch_stalls;
    metrics::Counter* startup_skips;
    metrics::Counter* partitions_opened;
    metrics::Counter* parallel_branches;
    metrics::Counter* exchange_batches;
    metrics::Counter* spool_rescans;
    metrics::Counter* exec_batches;
    metrics::Counter* exec_batch_rows;
    metrics::Counter* remote_retries;
    metrics::Counter* remote_timeouts;
    metrics::Counter* faults_injected;
    metrics::Counter* members_skipped;
    metrics::Counter* spills;
    metrics::Counter* spill_bytes;
    metrics::Histogram* query_ns;
  };
  static const Instruments in = [] {
    metrics::Registry& reg = metrics::Registry::Global();
    Instruments i;
    i.rows_output = reg.GetCounter("exec.rows_output");
    i.rows_from_remote = reg.GetCounter("exec.rows_from_remote");
    i.remote_commands = reg.GetCounter("exec.remote_commands");
    i.remote_opens = reg.GetCounter("exec.remote_opens");
    i.remote_fetches = reg.GetCounter("exec.remote_fetches");
    i.remote_batches = reg.GetCounter("exec.remote_batches");
    i.prefetch_stalls = reg.GetCounter("exec.prefetch_stalls");
    i.startup_skips = reg.GetCounter("exec.startup_skips");
    i.partitions_opened = reg.GetCounter("exec.partitions_opened");
    i.parallel_branches = reg.GetCounter("exec.parallel_branches");
    i.exchange_batches = reg.GetCounter("exec.exchange_batches");
    i.spool_rescans = reg.GetCounter("exec.spool_rescans");
    i.exec_batches = reg.GetCounter("exec.batches");
    i.exec_batch_rows = reg.GetCounter("exec.batch_rows");
    i.remote_retries = reg.GetCounter("exec.remote_retries");
    i.remote_timeouts = reg.GetCounter("exec.remote_timeouts");
    i.faults_injected = reg.GetCounter("exec.faults_injected");
    i.members_skipped = reg.GetCounter("exec.members_skipped");
    i.spills = reg.GetCounter("exec.spills");
    i.spill_bytes = reg.GetCounter("exec.spill_bytes");
    i.query_ns = reg.GetHistogram("engine.query_ns");
    return i;
  }();
  in.rows_output->Add(stats.rows_output);
  in.rows_from_remote->Add(stats.rows_from_remote);
  in.remote_commands->Add(stats.remote_commands);
  in.remote_opens->Add(stats.remote_opens);
  in.remote_fetches->Add(stats.remote_fetches);
  in.remote_batches->Add(stats.remote_batches);
  in.prefetch_stalls->Add(stats.prefetch_stalls);
  in.startup_skips->Add(stats.startup_skips);
  in.partitions_opened->Add(stats.partitions_opened);
  in.parallel_branches->Add(stats.parallel_branches);
  in.exchange_batches->Add(stats.exchange_batches);
  in.spool_rescans->Add(stats.spool_rescans);
  in.exec_batches->Add(stats.exec_batches);
  in.exec_batch_rows->Add(stats.exec_batch_rows);
  in.remote_retries->Add(stats.remote_retries);
  in.remote_timeouts->Add(stats.remote_timeouts);
  in.faults_injected->Add(stats.faults_injected);
  in.members_skipped->Add(stats.members_skipped);
  in.spills->Add(stats.spills);
  in.spill_bytes->Add(stats.spill_bytes);
  in.query_ns->Observe(query_ns);
}

Result<QueryResult> Engine::RunCachedPlan(
    const CachedPlan& cached, const std::map<std::string, Value>& params) {
  trace::Span span("engine.execute");
  // Workload governor: admission control sits between optimize and execute.
  // The statement queues (phase `queued`, RESOURCE_SEMAPHORE waits) until
  // its estimated grant fits the memory budget; the grant is RAII-released
  // exactly once on every exit path out of this function, including error
  // returns and fault aborts mid-execution.
  sysview::SetCurrentPhase(sysview::RequestPhase::kQueued);
  governor::GovernorOptions gopts;
  gopts.max_server_memory_bytes = options_.max_server_memory_bytes;
  gopts.max_grant_per_query_bytes = options_.max_grant_per_query_bytes;
  gopts.max_concurrent_grants = options_.max_concurrent_grants;
  gopts.grant_timeout_ms = options_.grant_timeout_ms;
  gopts.min_grant_bytes = options_.min_grant_bytes;
  // System-view scans bypass admission (like DAC in SQL Server): the
  // monitoring path must stay responsive when the semaphore is saturated
  // with queued user statements.
  governor::MemoryGrant grant;
  if (!PlanTouchesSys(cached.plan)) {
    grant = governor::Governor::Global().Acquire(
        gopts, governor::EstimateGrantBytes(cached.plan, options_.execution),
        options_.name, activity::Current(), cached.statement,
        options_.execution.dop);
  }
  // Surface the grant on dm_exec_requests while the statement runs; cleared
  // on every exit path (the row may outlive execution in the registry).
  struct GrantFields {
    sysview::RequestState* req;
    ~GrantFields() {
      if (req == nullptr) return;
      req->requested_grant_bytes.store(0, std::memory_order_relaxed);
      req->granted_bytes.store(0, std::memory_order_relaxed);
    }
  } grant_fields{sysview::CurrentRequest()};
  if (grant_fields.req != nullptr && grant.active()) {
    grant_fields.req->requested_grant_bytes.store(grant.requested_bytes(),
                                                  std::memory_order_relaxed);
    grant_fields.req->granted_bytes.store(grant.granted_bytes(),
                                          std::memory_order_relaxed);
  }
  sysview::SetCurrentPhase(sysview::RequestPhase::kExecute);
  const int64_t start_ns = fastclock::NowNs();
  ExecContext ectx;
  ectx.catalog = catalog_.get();
  ectx.fulltext = &fulltext_;
  ectx.params = params;
  ectx.current_date = options_.current_date;
  ectx.options = options_.execution;
  // Buffering operators and queue stashes charge the request's query-wide
  // tracker, so dm_exec_requests reports one live memory_bytes per query.
  ectx.memory = sysview::CurrentRequestMemory();
  // Grant enforcement reads the query tracker; when request monitoring is
  // off, a statement-local tracker stands in so the governor still bites.
  MemTracker local_mem;
  if (ectx.memory == nullptr && grant.active()) ectx.memory = &local_mem;
  ectx.grant_bytes = grant.active() ? grant.granted_bytes() : 0;
  ectx.spill_dir = options_.spill_directory;
  const LinkFaultTotals before = SumLinkFaults(catalog_.get());
  DHQP_ASSIGN_OR_RETURN(auto rowset, ExecutePlan(cached.plan, &ectx));
  // Per-query fault accounting: links are charged below the executor (and
  // shared across queries), so the deltas land here. Exact because
  // ExecutePlan joins all worker threads before returning; clamped in case
  // a bench reset the link counters mid-delta.
  const LinkFaultTotals after = SumLinkFaults(catalog_.get());
  ectx.stats.remote_retries = std::max<int64_t>(0, after.retries - before.retries);
  ectx.stats.remote_timeouts =
      std::max<int64_t>(0, after.timeouts - before.timeouts);
  ectx.stats.faults_injected = std::max<int64_t>(0, after.faults - before.faults);
  PublishExecMetrics(ectx.stats, fastclock::NowNs() - start_ns);
  // Peak query memory: visible as exec.memory_bytes after the statement
  // (the live view is dm_exec_requests). Last-writer-wins is the usual
  // gauge semantic; skipped for non-monitored statements.
  if (sysview::RequestState* req = sysview::CurrentRequest()) {
    static metrics::Gauge* mem_gauge =
        metrics::Registry::Global().GetGauge("exec.memory_bytes");
    mem_gauge->Set(req->memory.peak());
  }

  // Align output columns with the statement's select-list order/names (the
  // plan may carry extra hidden columns or a different physical order).
  QueryResult result;
  result.plan = cached.plan;
  result.opt_stats = cached.opt_stats;
  Schema schema;
  for (size_t i = 0; i < cached.output_cols.size(); ++i) {
    schema.AddColumn(ColumnDef{cached.output_names[i],
                               cached.registry->TypeOf(cached.output_cols[i]),
                               true});
  }
  const std::vector<int>& plan_cols = cached.plan->output_cols;
  if (plan_cols == cached.output_cols) {
    result.rowset =
        std::make_unique<VectorRowset>(std::move(schema), rowset->rows());
  } else {
    std::vector<int> positions;
    for (int col : cached.output_cols) {
      auto it = std::find(plan_cols.begin(), plan_cols.end(), col);
      if (it == plan_cols.end()) {
        return Status::Internal("plan lost output column #" +
                                std::to_string(col));
      }
      positions.push_back(static_cast<int>(it - plan_cols.begin()));
    }
    std::vector<Row> rows;
    rows.reserve(rowset->rows().size());
    for (const Row& in : rowset->rows()) {
      Row out;
      out.reserve(positions.size());
      for (int p : positions) out.push_back(in[static_cast<size_t>(p)]);
      rows.push_back(std::move(out));
    }
    result.rowset =
        std::make_unique<VectorRowset>(std::move(schema), std::move(rows));
  }
  result.exec_stats = ectx.stats;
  result.warnings = std::move(ectx.warnings);
  result.profile = std::move(ectx.profile);
  return std::move(result);
}

Result<QueryResult> Engine::ExecuteSelect(
    const SelectStatement& stmt, const std::map<std::string, Value>& params,
    bool execute, const std::string& cache_key, StatementInfo* info) {
  // Plan-cache hit: re-execute the compiled plan with fresh parameters.
  // Startup filters keep parameterized plans correct for any value (§4.1.5).
  // Optimizer toggles are part of the key: a plan compiled under different
  // options (the ablation benches flip them) must not be reused.
  bool use_cache = execute && options_.enable_plan_cache && !cache_key.empty();
  if (info != nullptr) info->plan_cacheable = use_cache;
  std::string full_key;
  if (use_cache) {
    const OptimizerOptions& oo = options_.optimizer;
    char opts_fp[32];
    std::snprintf(opts_fp, sizeof(opts_fp), "%d%d%d%d%d%d%d%d%d%d.%d|",
                  oo.enable_join_reorder, oo.enable_remote_pushdown,
                  oo.enable_parameterization, oo.enable_spool_enforcer,
                  oo.enable_remote_statistics, oo.enable_startup_filters,
                  oo.enable_static_pruning, oo.enable_index_paths,
                  oo.enable_fulltext_index, oo.multi_phase,
                  options_.execution.dop);
    full_key = std::string(opts_fp) + cache_key;
  }
  if (use_cache) {
    // The entry is copied out under the lock (the members are shared_ptrs
    // and small vectors) so a concurrent DMV snapshot — or a capacity
    // flush on another statement — cannot invalidate what we execute.
    bool hit = false;
    CachedPlan cached;
    {
      auto lock =
          LockRecordingWait(plan_cache_mu_, waits::WaitType::kPlanCacheMutex);
      auto it = plan_cache_.find(full_key);
      if (it != plan_cache_.end()) {
        if (it->second.schema_version ==
            schema_version_.load(std::memory_order_relaxed)) {
          ++it->second.hits;
          cached = it->second;
          hit = true;
        } else {
          plan_cache_.erase(it);
        }
      }
    }
    if (hit) {
      metrics::Registry::Global()
          .GetCounter("engine.plan_cache.hit")
          ->Increment();
      auto result = RunCachedPlan(cached, params);
      if (result.ok()) {
        if (info != nullptr) info->plan_cache_hit = true;
        result.value().plan_cache_hit = true;
        return result;
      }
      // A link failure is not plan staleness: the retry policy already
      // ran at the link layer, recompiling cannot reach an unreachable
      // server, and silently re-executing could turn a mid-stream member
      // failure into a clean-looking skip. Surface it as-is.
      if (result.status().code() == StatusCode::kNetworkError) {
        return result;
      }
      // A cached plan can go stale in ways version bumps don't cover
      // (e.g. a remote server changed behind its provider): drop it and
      // recompile below.
      auto lock =
          LockRecordingWait(plan_cache_mu_, waits::WaitType::kPlanCacheMutex);
      plan_cache_.erase(full_key);
    }
  }
  if (use_cache) {
    metrics::Registry::Global()
        .GetCounter("engine.plan_cache.miss")
        ->Increment();
  }

  for (int attempt = 0;; ++attempt) {
    Binder binder(catalog_.get());
    BoundStatement bound;
    {
      trace::Span span("engine.bind");
      sysview::SetCurrentPhase(sysview::RequestPhase::kBind);
      DHQP_ASSIGN_OR_RETURN(bound, binder.BindSelect(stmt));
    }
    OptimizerContext octx = MakeOptimizerContext(bound.registry.get());
    OptimizeResult optimized;
    {
      trace::Span span("engine.optimize");
      sysview::SetCurrentPhase(sysview::RequestPhase::kOptimize);
      LogicalOpPtr normalized = Normalize(bound.root, &octx);
      Optimizer optimizer(&octx);
      DHQP_ASSIGN_OR_RETURN(optimized,
                            optimizer.Optimize(normalized, bound.order_by));
    }
    // Post-bind self-exclusion layer: a bare DMV name resolved through the
    // catalog's sys fallback slips past the AST check; the plan walk is
    // authoritative.
    if (PlanTouchesSys(optimized.plan)) {
      sysview::MarkCurrentRequestExcluded();
    }

    if (!execute) {
      QueryResult result;
      result.plan = optimized.plan;
      result.opt_stats = optimized.stats;
      return std::move(result);
    }

    // Delayed schema validation (§4.1.5): check cached remote metadata at
    // execution time; on drift, recompile once against fresh metadata.
    if (options_.delayed_schema_validation && attempt == 0) {
      DHQP_ASSIGN_OR_RETURN(bool valid, ValidateRemoteSchemas(optimized.plan));
      if (!valid) {
        catalog_->InvalidateCaches();
        continue;
      }
    }

    CachedPlan compiled;
    compiled.plan = optimized.plan;
    compiled.output_cols = bound.output_cols;
    compiled.output_names = bound.output_names;
    compiled.registry = bound.registry;
    compiled.opt_stats = optimized.stats;
    compiled.schema_version = schema_version_.load(std::memory_order_relaxed);
    compiled.statement = cache_key;
    DHQP_ASSIGN_OR_RETURN(QueryResult result,
                          RunCachedPlan(compiled, params));
    // A plan that reads the system views is never cached: a bare DMV name
    // (resolved through the catalog's sys fallback) slips past the AST
    // check, and caching it would let observation pollute dm_plan_cache.
    if (use_cache && !PlanTouchesSys(compiled.plan)) {
      auto lock =
          LockRecordingWait(plan_cache_mu_, waits::WaitType::kPlanCacheMutex);
      if (plan_cache_.size() >= options_.plan_cache_capacity) {
        plan_cache_.clear();  // Crude but bounded; capacity is generous.
      }
      plan_cache_.emplace(full_key, std::move(compiled));
    }
    return std::move(result);
  }
}

std::vector<Engine::PlanCacheEntry> Engine::PlanCacheSnapshot() const {
  std::vector<PlanCacheEntry> out;
  const uint64_t current = schema_version_.load(std::memory_order_relaxed);
  auto lock =
      LockRecordingWait(plan_cache_mu_, waits::WaitType::kPlanCacheMutex);
  out.reserve(plan_cache_.size());
  for (const auto& [key, cached] : plan_cache_) {
    PlanCacheEntry e;
    e.statement = cached.statement;
    e.schema_version = cached.schema_version;
    e.hits = cached.hits;
    e.est_cost = cached.opt_stats.best_cost;
    e.valid = cached.schema_version == current;
    out.push_back(std::move(e));
  }
  return out;
}

Result<bool> Engine::ValidateRemoteSchemas(const PhysicalOpPtr& plan) {
  switch (plan->kind) {
    case PhysicalOpKind::kRemoteScan:
    case PhysicalOpKind::kRemoteRange:
    case PhysicalOpKind::kRemoteFetch: {
      ObjectName name;
      name.server = plan->table.server_name;
      name.table = plan->table.metadata.name;
      DHQP_ASSIGN_OR_RETURN(ResolvedTable fresh,
                            catalog_->ResolveTable(name, /*refresh=*/true));
      if (!fresh.metadata.schema.Equals(plan->table.metadata.schema)) {
        return false;
      }
      break;
    }
    default:
      break;
  }
  for (const PhysicalOpPtr& child : plan->children) {
    DHQP_ASSIGN_OR_RETURN(bool ok, ValidateRemoteSchemas(child));
    if (!ok) return false;
  }
  return true;
}

Result<QueryResult> Engine::ExecuteCreateTable(
    const CreateTableStatement& stmt) {
  Schema schema;
  std::string pk_column;
  for (const ColumnDefAst& col : stmt.columns) {
    schema.AddColumn(ColumnDef{col.name, col.type, !col.not_null});
    if (col.primary_key) {
      if (!pk_column.empty()) {
        return Status::NotSupported("composite PRIMARY KEY via column syntax");
      }
      pk_column = col.name;
    }
  }
  ++schema_version_;
  DHQP_ASSIGN_OR_RETURN(Table * table, storage_.CreateTable(stmt.name, schema));
  for (const ExprPtr& check : stmt.checks) {
    DHQP_ASSIGN_OR_RETURN(CheckConstraint bound,
                          Binder::BindCheckConstraint(*check, schema));
    DHQP_RETURN_NOT_OK(table->AddCheckConstraint(std::move(bound)));
  }
  if (!pk_column.empty()) {
    DHQP_RETURN_NOT_OK(
        table->CreateIndex("pk_" + stmt.name, {pk_column}, /*unique=*/true));
  }
  return QueryResult{};
}

Result<QueryResult> Engine::ExecuteCreateIndex(
    const CreateIndexStatement& stmt) {
  ++schema_version_;
  DHQP_ASSIGN_OR_RETURN(Table * table, storage_.GetTable(stmt.table));
  DHQP_RETURN_NOT_OK(table->CreateIndex(stmt.name, stmt.columns, stmt.unique));
  return QueryResult{};
}

Result<QueryResult> Engine::ExecuteCreateView(
    const CreateViewStatement& stmt) {
  ++schema_version_;
  DHQP_RETURN_NOT_OK(catalog_->CreateView(stmt.name, stmt.body_sql));
  return QueryResult{};
}

Result<QueryResult> Engine::ExecuteInsert(
    const InsertStatement& stmt, const std::map<std::string, Value>& params) {
  // Evaluate the VALUES rows (constants, parameters, scalar functions).
  EvalEnv env;
  env.params = &params;
  env.current_date = options_.current_date;
  std::vector<Row> rows;
  for (const auto& exprs : stmt.rows) {
    Row row;
    for (const ExprPtr& e : exprs) {
      DHQP_ASSIGN_OR_RETURN(Value v, EvalInsertExpr(*e, catalog_.get(), env));
      row.push_back(std::move(v));
    }
    rows.push_back(std::move(row));
  }

  QueryResult result;
  // Remote table?
  if (stmt.table.has_server()) {
    DHQP_ASSIGN_OR_RETURN(ResolvedTable resolved,
                          catalog_->ResolveTable(stmt.table));
    DHQP_ASSIGN_OR_RETURN(std::vector<Row> shaped,
                          ShapeRows(resolved.metadata.schema, stmt.columns,
                                    rows));
    DHQP_ASSIGN_OR_RETURN(Session * session,
                          catalog_->GetSession(resolved.source_id));
    DHQP_ASSIGN_OR_RETURN(result.rows_affected,
                          session->InsertRows(stmt.table.table, shaped));
    return std::move(result);
  }
  // Partitioned view?
  const ViewDef* view = catalog_->FindView(stmt.table.table);
  if (view != nullptr) {
    DHQP_ASSIGN_OR_RETURN(result.rows_affected,
                          InsertIntoPartitionedView(*view, stmt.columns, rows));
    return std::move(result);
  }
  // Local table.
  DHQP_ASSIGN_OR_RETURN(Table * table, storage_.GetTable(stmt.table.table));
  DHQP_ASSIGN_OR_RETURN(std::vector<Row> shaped,
                        ShapeRows(table->schema(), stmt.columns, rows));
  for (const Row& row : shaped) {
    DHQP_ASSIGN_OR_RETURN(int64_t id,
                          storage_.InsertRow(-1, stmt.table.table, row));
    (void)id;
    ++result.rows_affected;
  }
  return std::move(result);
}

Result<int64_t> Engine::InsertIntoPartitionedView(
    const ViewDef& view, const std::vector<std::string>& columns,
    const std::vector<Row>& rows) {
  DHQP_ASSIGN_OR_RETURN(auto parsed, Parser::ParseSelect(view.sql));
  // Each branch must be a single-table SELECT; gather member tables.
  struct Member {
    ResolvedTable table;
    ObjectName name;
  };
  std::vector<Member> members;
  for (const auto& core : parsed->cores) {
    if (core->from == nullptr || core->from->kind != TableRef::Kind::kNamed) {
      return Status::NotSupported(
          "INSERT through views requires single-table UNION ALL branches");
    }
    Member member;
    member.name = core->from->name;
    DHQP_ASSIGN_OR_RETURN(member.table, catalog_->ResolveTable(member.name));
    members.push_back(std::move(member));
  }
  if (members.empty()) {
    return Status::NotSupported("view has no members");
  }
  // The partitioning column: constrained by a CHECK in every member.
  std::string part_column;
  for (const CheckConstraint& check : members[0].table.checks) {
    bool in_all = true;
    for (const Member& m : members) {
      bool found = false;
      for (const CheckConstraint& c : m.table.checks) {
        if (EqualsIgnoreCase(c.column, check.column)) found = true;
      }
      in_all &= found;
    }
    if (in_all) {
      part_column = check.column;
      break;
    }
  }
  if (part_column.empty()) {
    return Status::NotSupported(
        "view members carry no common partitioning CHECK constraint");
  }

  int64_t inserted = 0;
  for (const Row& row : rows) {
    DHQP_ASSIGN_OR_RETURN(
        std::vector<Row> shaped,
        ShapeRows(members[0].table.metadata.schema, columns, {row}));
    int part_ord = members[0].table.metadata.schema.FindColumn(part_column);
    const Value& key = shaped[0][static_cast<size_t>(part_ord)];
    const Member* target = nullptr;
    for (const Member& m : members) {
      for (const CheckConstraint& c : m.table.checks) {
        if (EqualsIgnoreCase(c.column, part_column) &&
            !key.is_null() && c.domain.Contains(key)) {
          target = &m;
          break;
        }
      }
      if (target != nullptr) break;
    }
    if (target == nullptr) {
      return Status::ConstraintViolation(
          "value " + key.ToString() +
          " fits no member partition of view " + view.name);
    }
    if (target->table.source_id == kLocalSource) {
      DHQP_ASSIGN_OR_RETURN(
          int64_t id,
          storage_.InsertRow(-1, target->table.metadata.name, shaped[0]));
      (void)id;
    } else {
      DHQP_ASSIGN_OR_RETURN(Session * session,
                            catalog_->GetSession(target->table.source_id));
      DHQP_ASSIGN_OR_RETURN(
          int64_t n,
          session->InsertRows(target->table.metadata.name, {shaped[0]}));
      (void)n;
    }
    ++inserted;
  }
  return inserted;
}

Result<std::unique_ptr<Rowset>> Engine::ExecutePassThrough(
    const std::string& server, const std::string& query) {
  DHQP_ASSIGN_OR_RETURN(int source_id, catalog_->GetLinkedServerId(server));
  DHQP_ASSIGN_OR_RETURN(Session * session, catalog_->GetSession(source_id));
  DHQP_ASSIGN_OR_RETURN(auto command, session->CreateCommand());
  DHQP_RETURN_NOT_OK(command->SetText(query));
  return command->Execute();
}

Result<std::string> Engine::MergedChromeTrace(const std::string& activity_id) {
  std::vector<trace::MergedSpan> spans;
  // In-process engines share ONE global tracer, so the same span arrives
  // once from the local read and once per member whose sys path reaches
  // the same buffer — dedupe by identity fields.
  std::set<std::string> seen;
  const std::map<std::string, Value> params = {
      {"@aid", Value::String(activity_id)}};
  auto collect = [&](const std::string& prefix) -> Status {
    const std::string sql =
        "SELECT engine, activity_id, name, detail, start_ns, dur_ns, tid, "
        "depth FROM " +
        prefix + "sys..dm_trace_spans WHERE activity_id = @aid";
    DHQP_ASSIGN_OR_RETURN(QueryResult result, Execute(sql, params));
    if (result.rowset == nullptr) return Status::OK();
    for (const Row& row : result.rowset->rows()) {
      trace::MergedSpan s;
      s.engine = row[0].string_value();
      s.activity_id = row[1].string_value();
      s.name = row[2].string_value();
      s.detail = row[3].string_value();
      s.start_ns = row[4].int64_value();
      s.dur_ns = row[5].int64_value();
      s.tid = row[6].int64_value();
      s.depth = row[7].int64_value();
      std::string key = s.engine + "|" + std::to_string(s.tid) + "|" +
                        std::to_string(s.start_ns) + "|" +
                        std::to_string(s.dur_ns) + "|" + s.name;
      if (!seen.insert(std::move(key)).second) continue;
      spans.push_back(std::move(s));
    }
    return Status::OK();
  };
  // The coordinator's own spans must be readable; member pulls are
  // best-effort (a foreign provider with no sys path, or a member behind a
  // downed link, contributes nothing rather than failing the stitch).
  DHQP_RETURN_NOT_OK(collect(""));
  for (const std::string& server : catalog_->LinkedServerNames()) {
    if (EqualsIgnoreCase(server, kSysServerName)) continue;
    Status ignored = collect(server + ".");
    (void)ignored;
  }
  return trace::Tracer::DumpMergedChromeTrace(spans);
}

}  // namespace dhqp
