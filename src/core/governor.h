#ifndef DHQP_CORE_GOVERNOR_H_
#define DHQP_CORE_GOVERNOR_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/executor/exec.h"
#include "src/optimizer/physical.h"

namespace dhqp {
namespace governor {

/// Admission-control knobs, copied from the executing engine's
/// EngineOptions at the grant gate. The semaphore itself is process-wide
/// (one budget pool per process, like the resource semaphore SQL Server
/// shares across sessions); each statement is checked against the budget
/// its own engine configured.
struct GovernorOptions {
  int64_t max_server_memory_bytes = 0;   ///< 0 = governor off (unlimited).
  int64_t max_grant_per_query_bytes = 0; ///< 0 = whole budget.
  int max_concurrent_grants = 0;         ///< 0 = unlimited statement count.
  /// A queued statement that cannot be admitted within this window degrades
  /// its request to `min_grant_bytes` instead of failing, then waits until
  /// that minimum fits.
  int64_t grant_timeout_ms = 1000;
  /// The degraded floor every statement is eventually granted (clamped to
  /// the per-query cap). Execution under the floor spills instead of
  /// growing.
  int64_t min_grant_bytes = 64 * 1024;
};

/// Memory-grant estimate for one compiled plan, from optimizer
/// cardinalities: hash-join build tables, aggregate hash tables, sort and
/// spool buffers, Top heaps, and exchange queue footprints (scaled by the
/// operator's dop). Deliberately the same accounting currency as
/// RowMemBytes so estimates and MemTracker charges compare.
int64_t EstimateGrantBytes(const PhysicalOpPtr& plan, const ExecOptions& exec);

class Governor;

/// RAII memory grant. Inactive (granted_bytes() == 0 means unlimited) when
/// the governor is off; otherwise holds `granted_bytes` of the process
/// budget until released. Released exactly once: explicitly via Release()
/// or by the destructor — whichever comes first — so every exit path out of
/// execution, including fault aborts, returns the memory to the semaphore.
class MemoryGrant {
 public:
  MemoryGrant() = default;
  MemoryGrant(MemoryGrant&& other) noexcept { *this = std::move(other); }
  MemoryGrant& operator=(MemoryGrant&& other) noexcept;
  ~MemoryGrant() { Release(); }

  MemoryGrant(const MemoryGrant&) = delete;
  MemoryGrant& operator=(const MemoryGrant&) = delete;

  /// True when this grant holds budget (the governor admitted it).
  bool active() const { return governor_ != nullptr; }
  /// Bytes granted; 0 = unlimited (governor off).
  int64_t granted_bytes() const { return granted_bytes_; }
  /// Bytes originally requested (before any timeout degradation).
  int64_t requested_bytes() const { return requested_bytes_; }
  /// True when the grant timed out in the queue and was degraded to the
  /// minimum grant.
  bool degraded() const { return degraded_; }

  void Release();

 private:
  friend class Governor;
  MemoryGrant(Governor* governor, int64_t id, int64_t requested,
              int64_t granted, bool degraded)
      : governor_(governor),
        id_(id),
        requested_bytes_(requested),
        granted_bytes_(granted),
        degraded_(degraded) {}

  Governor* governor_ = nullptr;
  int64_t id_ = 0;
  int64_t requested_bytes_ = 0;
  int64_t granted_bytes_ = 0;
  bool degraded_ = false;
};

/// One dm_exec_query_memory_grants row: a statement that currently holds a
/// grant or is queued waiting for one.
struct GrantRow {
  int64_t grant_id = 0;
  std::string engine;
  std::string activity_id;
  std::string statement;
  int dop = 1;
  bool is_queued = false;     ///< Still waiting in the semaphore queue.
  int64_t requested_bytes = 0;
  int64_t granted_bytes = 0;  ///< 0 while queued.
  int64_t wait_ns = 0;        ///< Queue time so far (or until granted).
  bool degraded = false;      ///< Timed out and fell back to the minimum.
};

/// The process-wide resource semaphore: grants are admitted FIFO when they
/// fit the budget, queued otherwise under a RESOURCE_SEMAPHORE wait. FIFO
/// ordering plus timeout degradation bounds queue time for every waiter —
/// a statement at the head that cannot fit shrinks to the minimum grant
/// after `grant_timeout_ms` and proceeds as soon as anything releases, so
/// no statement starves and granted memory never exceeds the budget.
class Governor {
 public:
  static Governor& Global();

  /// Runtime kill switch (on by default). When off, Acquire returns
  /// inactive (unlimited) grants immediately and current waiters are
  /// admitted unlimited.
  static void SetEnabled(bool enabled);
  static bool Enabled();

  /// Blocks until the statement is admitted; always succeeds (timeout
  /// degrades the request, never fails it). The identity fields feed
  /// dm_exec_query_memory_grants. Returns an inactive grant when the
  /// governor is off or `opts` carries no budget.
  MemoryGrant Acquire(const GovernorOptions& opts, int64_t estimate_bytes,
                      const std::string& engine,
                      const std::string& activity_id,
                      const std::string& statement, int dop);

  /// Point-in-time view of every granted + queued statement, queued-first
  /// in arrival order, then granted in grant order.
  std::vector<GrantRow> Snapshot() const;

  /// Total bytes currently granted across the process.
  int64_t total_granted_bytes() const;
  /// Statements currently holding a grant.
  int64_t active_grants() const;
  /// Statements currently queued.
  int64_t queued_statements() const;

 private:
  friend class MemoryGrant;

  struct GrantEntry {
    int64_t id = 0;
    uint64_t ticket = 0;  ///< FIFO order among waiters.
    std::string engine;
    std::string activity_id;
    std::string statement;
    int dop = 1;
    int64_t requested_bytes = 0;  ///< Current ask (shrinks on degradation).
    int64_t original_bytes = 0;   ///< The pre-degradation request.
    int64_t granted_bytes = 0;    ///< 0 while queued.
    int64_t enqueue_ns = 0;
    int64_t grant_ns = 0;         ///< 0 while queued.
    bool degraded = false;
  };

  Governor() = default;

  void Release(int64_t id);
  /// Smallest ticket among ungranted entries (the FIFO head); 0 if none.
  uint64_t FrontTicketLocked() const;
  void UpdateGaugesLocked();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<int64_t, GrantEntry> entries_;
  int64_t next_id_ = 1;
  uint64_t next_ticket_ = 1;
  int64_t total_granted_ = 0;
  int64_t active_grants_ = 0;
  int64_t queued_ = 0;
};

}  // namespace governor
}  // namespace dhqp

#endif  // DHQP_CORE_GOVERNOR_H_
