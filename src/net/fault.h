#ifndef DHQP_NET_FAULT_H_
#define DHQP_NET_FAULT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

namespace dhqp {
namespace net {

/// What a scripted fault does to one message attempt. The taxonomy mirrors
/// the ways a real linked server misbehaves (DESIGN.md §7): transient loss
/// that an immediate resend absorbs, latency spikes that become timeouts
/// under a per-message deadline, and permanent link-down where retrying is
/// pointless and the session must be torn down.
enum class FaultKind {
  kNone = 0,
  kTransient,  ///< The message is lost; a resend may succeed.
  kLatency,    ///< Delivered late; may exceed the caller's deadline.
  kLinkDown,   ///< The link is gone; every attempt fails until cleared.
};

/// Retry/backoff/deadline configuration for one link's message sends,
/// honored by Link::SendMessage. Exponential backoff:
/// wait(i) = min(backoff_us * backoff_multiplier^(i-1), max_backoff_us)
/// after the i-th failed attempt. Backoff waits (like all link delays) are
/// only realized when the link enforces delays; counters advance either way.
struct RetryPolicy {
  int max_attempts = 3;            ///< Total attempts (1 = no retry).
  double backoff_us = 100;         ///< Backoff after the first failure.
  double backoff_multiplier = 2.0; ///< Growth factor per failure.
  double max_backoff_us = 5000;    ///< Backoff cap.
  /// Per-message deadline: an attempt whose simulated round-trip latency
  /// (link latency + injected spike) exceeds this counts as a timeout and
  /// is retried like a transient loss. 0 disables deadlines.
  double deadline_us = 0;
};

/// A scriptable fault source attached to one net::Link. Every send attempt
/// consumes one message ordinal (0-based, counted since the last Reset) and
/// receives a Decision. Scripts compose: an explicit window wins over the
/// probabilistic drop, and link-down wins over everything.
///
/// Determinism contract: decisions are a pure function of (seed, schedule,
/// ordinal). With a single-threaded consumer the ordinal sequence — and so
/// the whole fault pattern — replays exactly; with prefetch threads or
/// parallel branches the *set* of faulted ordinals is still deterministic,
/// but which logical operation draws which ordinal depends on interleaving.
/// Thread-safe; Reset/scripting calls must be quiesced (no query running).
class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed = 0) : seed_(seed) {}

  struct Decision {
    FaultKind kind = FaultKind::kNone;
    double extra_latency_us = 0;
  };

  /// Message ordinals [after, after+count) fail with `kind`.
  void FailMessages(int64_t after, int64_t count,
                    FaultKind kind = FaultKind::kTransient);

  /// The link goes down permanently at ordinal `after` (0 = immediately):
  /// shorthand for an unbounded kLinkDown window.
  void LinkDownAfter(int64_t after);

  /// Message ordinals [after, after+count) are delivered `extra_us` late.
  void AddLatencySpike(int64_t after, int64_t count, double extra_us);

  /// Every message outside an explicit window is independently dropped with
  /// probability `p`, decided by a hash of (seed, ordinal): the same seed
  /// always drops the same ordinals.
  void SetDropProbability(double p);

  /// Clears the schedule, rewinds the ordinal counter and the fault count,
  /// and reseeds the probabilistic drops. Reset(0)/default state injects
  /// nothing.
  void Reset(uint64_t seed = 0);

  /// Faulting decisions handed out (kTransient/kLatency/kLinkDown) since
  /// the last Reset.
  int64_t faults_injected() const {
    return faults_injected_.load(std::memory_order_relaxed);
  }
  /// Message ordinals consumed since the last Reset.
  int64_t messages_seen() const {
    return messages_seen_.load(std::memory_order_relaxed);
  }

  /// Consumes one message ordinal and returns the scripted outcome.
  /// Called by Link for every send attempt, including retries.
  Decision OnMessage();

 private:
  struct Window {
    int64_t after = 0;
    int64_t count = 0;
    FaultKind kind = FaultKind::kTransient;
    double extra_us = 0;
  };

  mutable std::mutex mu_;
  uint64_t seed_;
  int64_t next_ordinal_ = 0;          ///< Guarded by mu_.
  std::vector<Window> windows_;       ///< Guarded by mu_.
  double drop_probability_ = 0;       ///< Guarded by mu_.
  std::atomic<int64_t> faults_injected_{0};
  std::atomic<int64_t> messages_seen_{0};
};

}  // namespace net
}  // namespace dhqp

#endif  // DHQP_NET_FAULT_H_
