#ifndef DHQP_NET_NETWORK_H_
#define DHQP_NET_NETWORK_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "src/common/metrics.h"
#include "src/net/fault.h"
#include "src/provider/provider.h"

namespace dhqp {
namespace net {

/// Accumulated traffic counters for one link. The benches report these
/// alongside wall time: the paper's remote cost model is about minimizing
/// exactly this (§4.1.3: "finding plans with minimal network traffic").
struct LinkStats {
  int64_t messages = 0;  ///< Round trips, including failed/retried attempts.
  int64_t rows = 0;      ///< Rows shipped to the consumer.
  int64_t bytes = 0;     ///< Approximate payload bytes.
  int64_t retries = 0;   ///< Resends after a failed attempt (SendMessage).
  int64_t timeouts = 0;  ///< Attempts that exceeded RetryPolicy::deadline_us.
  int64_t faults = 0;    ///< Attempts that failed due to an injected fault.

  /// Counter-snapshot arithmetic: per-query (and per-operator) accounting
  /// works on before/after deltas of shared link counters — links outlive
  /// queries — so snapshots compose with += and difference with -.
  LinkStats& operator+=(const LinkStats& o) {
    messages += o.messages;
    rows += o.rows;
    bytes += o.bytes;
    retries += o.retries;
    timeouts += o.timeouts;
    faults += o.faults;
    return *this;
  }
  LinkStats operator-(const LinkStats& o) const {
    LinkStats d;
    d.messages = messages - o.messages;
    d.rows = rows - o.rows;
    d.bytes = bytes - o.bytes;
    d.retries = retries - o.retries;
    d.timeouts = timeouts - o.timeouts;
    d.faults = faults - o.faults;
    return d;
  }
};

/// Attribution target for link traffic: whatever sink is installed on the
/// *calling thread* when a Link charges a message/rows also receives the
/// charge. The executor installs the owning operator's sink around remote
/// operator calls (and the prefetch producer installs it for its loop), so
/// per-operator profiles see exactly the traffic — including retries,
/// timeouts, and injected faults — their subtree caused, even though links
/// are shared across operators and queries. Atomics: several threads
/// (consumer + producer) can charge the same operator's sink concurrently.
struct LinkChargeSink {
  std::atomic<int64_t> messages{0};
  std::atomic<int64_t> rows{0};
  std::atomic<int64_t> bytes{0};
  std::atomic<int64_t> retries{0};
  std::atomic<int64_t> timeouts{0};
  std::atomic<int64_t> faults{0};
};

/// RAII installer for the calling thread's LinkChargeSink. Nesting works:
/// the innermost installed sink wins (exactly the operator doing the remote
/// call), and the previous sink is restored on destruction. A null sink is
/// a no-op.
class ScopedChargeSink {
 public:
  explicit ScopedChargeSink(LinkChargeSink* sink);
  ~ScopedChargeSink();
  ScopedChargeSink(const ScopedChargeSink&) = delete;
  ScopedChargeSink& operator=(const ScopedChargeSink&) = delete;

 private:
  LinkChargeSink* prev_ = nullptr;
  bool installed_ = false;
};

/// A simulated network link between the DHQP host and one linked server.
/// Counts traffic, and optionally enforces real delays (spin-wait with
/// microsecond resolution) so wall-clock benchmarks reflect network shape at
/// laptop scale. Counters are atomic: prefetch threads and parallel
/// partitioned-view branches charge links concurrently with the consumer.
class Link {
 public:
  /// `latency_us` — per-message round-trip cost; `us_per_kb` — serialization
  /// cost per kilobyte; `enforce_delays` — when false the link only counts.
  Link(std::string name, double latency_us = 0, double us_per_kb = 0,
       bool enforce_delays = false)
      : name_(std::move(name)),
        latency_us_(latency_us),
        us_per_kb_(us_per_kb),
        enforce_(enforce_delays) {
    // Mirror the per-link counters into the process-wide metrics registry
    // ("link.<name>.*"); pointers are stable, so charging stays lock-free.
    metrics::Registry& reg = metrics::Registry::Global();
    m_messages_ = reg.GetCounter("link." + name_ + ".messages");
    m_rows_ = reg.GetCounter("link." + name_ + ".rows");
    m_bytes_ = reg.GetCounter("link." + name_ + ".bytes");
    m_retries_ = reg.GetCounter("link." + name_ + ".retries");
    m_timeouts_ = reg.GetCounter("link." + name_ + ".timeouts");
    m_faults_ = reg.GetCounter("link." + name_ + ".faults");
  }

  const std::string& name() const { return name_; }
  /// Per-counter-atomic snapshot. Each field is read atomically, but the
  /// struct is NOT a consistent cross-counter snapshot: a concurrent charger
  /// can land between the loads, so e.g. `messages` may already include a
  /// batch whose `rows` are not yet visible. Totals are exact once the query
  /// has finished (the executor joins its threads before returning).
  LinkStats stats() const {
    LinkStats s;
    s.messages = messages_.load(std::memory_order_relaxed);
    s.rows = rows_.load(std::memory_order_relaxed);
    s.bytes = bytes_.load(std::memory_order_relaxed);
    s.retries = retries_.load(std::memory_order_relaxed);
    s.timeouts = timeouts_.load(std::memory_order_relaxed);
    s.faults = faults_.load(std::memory_order_relaxed);
    return s;
  }
  /// Zeroes the counters one at a time — NOT atomically as a group. Calling
  /// this while prefetch threads or parallel branches are still charging the
  /// link interleaves the stores with their increments and yields torn,
  /// meaningless numbers. Benches and tests must only reset between queries,
  /// after the executor has returned (all worker threads joined).
  void ResetStats() {
    messages_.store(0, std::memory_order_relaxed);
    rows_.store(0, std::memory_order_relaxed);
    bytes_.store(0, std::memory_order_relaxed);
    retries_.store(0, std::memory_order_relaxed);
    timeouts_.store(0, std::memory_order_relaxed);
    faults_.store(0, std::memory_order_relaxed);
  }

  double latency_us() const { return latency_us_; }
  void set_enforce_delays(bool enforce) { enforce_ = enforce; }

  const RetryPolicy& retry_policy() const { return retry_policy_; }
  /// Set between queries only (plain struct, read by SendMessage callers on
  /// prefetch/worker threads; thread-launch ordering makes it visible).
  void set_retry_policy(const RetryPolicy& policy) { retry_policy_ = policy; }

  /// Attaches (or detaches, with nullptr) a fault injector. Not owned. Safe
  /// to flip between queries; SendMessage loads it with acquire ordering.
  void set_fault_injector(FaultInjector* injector) {
    injector_.store(injector, std::memory_order_release);
  }
  FaultInjector* fault_injector() const {
    return injector_.load(std::memory_order_acquire);
  }

  /// Sends one request/response round trip carrying `bytes` of payload,
  /// consulting the fault injector and retrying per the link's RetryPolicy.
  /// Every attempt — including failed ones — charges one message (the bytes
  /// went out on the wire either way), so retries are visible in `messages`.
  /// Exhausted retries and link-down both surface as kNetworkError with the
  /// link (= linked server) name in the message; link-down fails fast
  /// without retrying. With no injector attached this degrades to
  /// ChargeMessage plus an OK status.
  Status SendMessage(size_t bytes);

  /// Records one request/response round trip carrying `bytes` of payload.
  /// Infallible accounting path, bypasses the fault model; remote execution
  /// paths should use SendMessage instead.
  void ChargeMessage(size_t bytes);

  /// Records `n` result rows of `bytes` total shipped (as part of the
  /// current message stream; adds bandwidth delay but no latency).
  void ChargeRows(int64_t n, size_t bytes);

 private:
  void Delay(double microseconds);

  std::string name_;
  double latency_us_;
  double us_per_kb_;
  std::atomic<bool> enforce_;
  RetryPolicy retry_policy_;
  std::atomic<FaultInjector*> injector_{nullptr};
  std::atomic<int64_t> messages_{0};
  std::atomic<int64_t> rows_{0};
  std::atomic<int64_t> bytes_{0};
  std::atomic<int64_t> retries_{0};
  std::atomic<int64_t> timeouts_{0};
  std::atomic<int64_t> faults_{0};
  metrics::Counter* m_messages_ = nullptr;
  metrics::Counter* m_rows_ = nullptr;
  metrics::Counter* m_bytes_ = nullptr;
  metrics::Counter* m_retries_ = nullptr;
  metrics::Counter* m_timeouts_ = nullptr;
  metrics::Counter* m_faults_ = nullptr;
};

/// Wraps a rowset so that rows streaming through it are charged to a link
/// in batches. Used by remote providers to account (and pace) result
/// shipping.
class LinkedRowset : public Rowset {
 public:
  /// `batch_rows` models the provider's fetch batch size: every batch costs
  /// one message plus bandwidth.
  LinkedRowset(std::unique_ptr<Rowset> inner, Link* link, int batch_rows = 64)
      : inner_(std::move(inner)), link_(link), batch_rows_(batch_rows) {}

  const Schema& schema() const override { return inner_->schema(); }

  Result<bool> Next(Row* out) override;

  /// Block fetch: one batch costs exactly one round trip (ChargeMessage)
  /// plus one ChargeRows — this is where batching beats row-at-a-time
  /// streaming on a high-latency link.
  Result<bool> NextBatch(RowBatch* out, int max_rows) override;

  Status Restart() override {
    in_batch_ = 0;
    batch_bytes_ = 0;
    return inner_->Restart();
  }

 private:
  /// Charges any rows pulled incrementally through Next() as one message.
  Status SettlePending();

  std::unique_ptr<Rowset> inner_;
  Link* link_;
  int batch_rows_;
  int in_batch_ = 0;
  size_t batch_bytes_ = 0;
};

}  // namespace net
}  // namespace dhqp

#endif  // DHQP_NET_NETWORK_H_
