#include "src/net/fault.h"

#include <limits>

namespace dhqp {
namespace net {

namespace {

// splitmix64 finalizer: the per-ordinal hash behind SetDropProbability.
uint64_t Mix(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

void FaultInjector::FailMessages(int64_t after, int64_t count,
                                 FaultKind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  windows_.push_back(Window{after, count, kind, 0});
}

void FaultInjector::LinkDownAfter(int64_t after) {
  std::lock_guard<std::mutex> lock(mu_);
  windows_.push_back(
      Window{after, std::numeric_limits<int64_t>::max(), FaultKind::kLinkDown,
             0});
}

void FaultInjector::AddLatencySpike(int64_t after, int64_t count,
                                    double extra_us) {
  std::lock_guard<std::mutex> lock(mu_);
  windows_.push_back(Window{after, count, FaultKind::kLatency, extra_us});
}

void FaultInjector::SetDropProbability(double p) {
  std::lock_guard<std::mutex> lock(mu_);
  drop_probability_ = p;
}

void FaultInjector::Reset(uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  seed_ = seed;
  next_ordinal_ = 0;
  windows_.clear();
  drop_probability_ = 0;
  faults_injected_.store(0, std::memory_order_relaxed);
  messages_seen_.store(0, std::memory_order_relaxed);
}

FaultInjector::Decision FaultInjector::OnMessage() {
  Decision decision;
  {
    std::lock_guard<std::mutex> lock(mu_);
    int64_t ordinal = next_ordinal_++;
    messages_seen_.fetch_add(1, std::memory_order_relaxed);
    // Link-down wins over everything; otherwise the first matching window.
    bool in_window = false;
    for (const Window& w : windows_) {
      if (ordinal < w.after || ordinal - w.after >= w.count) continue;
      if (w.kind == FaultKind::kLinkDown) {
        decision.kind = FaultKind::kLinkDown;
        decision.extra_latency_us = 0;
        in_window = true;
        break;
      }
      if (!in_window) {
        decision.kind = w.kind;
        decision.extra_latency_us = w.extra_us;
        in_window = true;
      }
    }
    if (!in_window && drop_probability_ > 0) {
      // Pure function of (seed, ordinal): the drop set replays exactly.
      double u = static_cast<double>(
                     Mix(seed_ ^ (static_cast<uint64_t>(ordinal) *
                                  0x9e3779b97f4a7c15ULL)) >>
                     11) *
                 (1.0 / 9007199254740992.0);
      if (u < drop_probability_) decision.kind = FaultKind::kTransient;
    }
  }
  if (decision.kind != FaultKind::kNone) {
    faults_injected_.fetch_add(1, std::memory_order_relaxed);
  }
  return decision;
}

}  // namespace net
}  // namespace dhqp
