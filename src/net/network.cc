#include "src/net/network.h"

#include <thread>

#include "src/common/trace.h"
#include "src/common/waits.h"

namespace dhqp {
namespace net {

namespace {
// The calling thread's traffic-attribution target; see LinkChargeSink.
thread_local LinkChargeSink* t_charge_sink = nullptr;
}  // namespace

ScopedChargeSink::ScopedChargeSink(LinkChargeSink* sink) {
  if (sink == nullptr) return;
  prev_ = t_charge_sink;
  t_charge_sink = sink;
  installed_ = true;
}

ScopedChargeSink::~ScopedChargeSink() {
  if (installed_) t_charge_sink = prev_;
}

void Link::Delay(double microseconds) {
  if (!enforce_ || microseconds <= 0) return;
  auto until = std::chrono::steady_clock::now() +
               std::chrono::nanoseconds(static_cast<int64_t>(microseconds * 1e3));
  // Deadline-based spin with yield: sleep_for cannot hit microsecond targets
  // reliably, while a pure spin monopolizes a core — which would make link
  // waits on prefetch/parallel-branch threads block the consumer's progress
  // instead of overlapping with it. Yielding keeps the delay accurate (the
  // deadline is re-checked) and lets other runnable threads use the core.
  while (std::chrono::steady_clock::now() < until) {
    std::this_thread::yield();
  }
}

void Link::ChargeMessage(size_t bytes) {
  messages_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(static_cast<int64_t>(bytes), std::memory_order_relaxed);
  m_messages_->Increment();
  m_bytes_->Add(static_cast<int64_t>(bytes));
  if (LinkChargeSink* sink = t_charge_sink) {
    sink->messages.fetch_add(1, std::memory_order_relaxed);
    sink->bytes.fetch_add(static_cast<int64_t>(bytes),
                          std::memory_order_relaxed);
  }
  Delay(latency_us_ + us_per_kb_ * static_cast<double>(bytes) / 1024.0);
}

Status Link::SendMessage(size_t bytes) {
  FaultInjector* injector = injector_.load(std::memory_order_acquire);
  if (injector == nullptr) {
    // Happy path without a fault model: identical cost to ChargeMessage.
    trace::Span span("link.send", name_.c_str());
    waits::WaitScope wait(waits::WaitType::kLinkSend,
                          waits::CurrentOperatorTally());
    ChargeMessage(bytes);
    return Status::OK();
  }
  trace::Span send_span("link.send", name_.c_str());
  const RetryPolicy policy = retry_policy_;
  const int max_attempts = policy.max_attempts < 1 ? 1 : policy.max_attempts;
  const double wire_us =
      latency_us_ + us_per_kb_ * static_cast<double>(bytes) / 1024.0;
  double backoff_us = policy.backoff_us;
  LinkChargeSink* sink = t_charge_sink;
  Status last = Status::OK();
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    FaultInjector::Decision d = injector->OnMessage();
    // Every attempt is a round trip on the wire, delivered or not.
    messages_.fetch_add(1, std::memory_order_relaxed);
    bytes_.fetch_add(static_cast<int64_t>(bytes), std::memory_order_relaxed);
    m_messages_->Increment();
    m_bytes_->Add(static_cast<int64_t>(bytes));
    if (sink != nullptr) {
      sink->messages.fetch_add(1, std::memory_order_relaxed);
      sink->bytes.fetch_add(static_cast<int64_t>(bytes),
                            std::memory_order_relaxed);
    }
    {
      // Per-attempt span, renamed to carry the fault attribution when the
      // attempt does not deliver ("link.attempt" -> timeout/fault/down).
      // Every attempt is one LINK_SEND wait (its wire/deadline time);
      // backoff sleeps between attempts are RETRY_BACKOFF — disjoint, so
      // the two never double-count one blocked interval.
      trace::Span attempt_span("link.attempt", name_.c_str());
      waits::WaitScope attempt_wait(waits::WaitType::kLinkSend,
                                    waits::CurrentOperatorTally());
      switch (d.kind) {
        case FaultKind::kNone:
        case FaultKind::kLatency: {
          const double total_us = wire_us + d.extra_latency_us;
          if (d.kind == FaultKind::kLatency && policy.deadline_us > 0 &&
              total_us > policy.deadline_us) {
            // The response would arrive past the deadline: the consumer
            // gives up at deadline_us and treats the message as lost.
            attempt_span.set_name("link.timeout");
            Delay(policy.deadline_us);
            timeouts_.fetch_add(1, std::memory_order_relaxed);
            faults_.fetch_add(1, std::memory_order_relaxed);
            m_timeouts_->Increment();
            m_faults_->Increment();
            if (sink != nullptr) {
              sink->timeouts.fetch_add(1, std::memory_order_relaxed);
              sink->faults.fetch_add(1, std::memory_order_relaxed);
            }
            last = Status::NetworkError("linked server '" + name_ +
                                        "': message timed out");
            break;
          }
          Delay(total_us);
          return Status::OK();
        }
        case FaultKind::kTransient:
          // A dropped message still costs the full round trip before the
          // sender concludes it was lost.
          attempt_span.set_name("link.fault");
          Delay(wire_us);
          faults_.fetch_add(1, std::memory_order_relaxed);
          m_faults_->Increment();
          if (sink != nullptr) {
            sink->faults.fetch_add(1, std::memory_order_relaxed);
          }
          last = Status::NetworkError("linked server '" + name_ +
                                      "': message dropped");
          break;
        case FaultKind::kLinkDown:
          // Permanent failure: retrying cannot help, fail fast so the
          // caller can tear the session down.
          attempt_span.set_name("link.down");
          faults_.fetch_add(1, std::memory_order_relaxed);
          m_faults_->Increment();
          if (sink != nullptr) {
            sink->faults.fetch_add(1, std::memory_order_relaxed);
          }
          return Status::NetworkError("linked server '" + name_ +
                                      "' is unreachable (link down)");
      }
    }
    if (attempt < max_attempts) {
      retries_.fetch_add(1, std::memory_order_relaxed);
      m_retries_->Increment();
      if (sink != nullptr) {
        sink->retries.fetch_add(1, std::memory_order_relaxed);
      }
      trace::Span backoff_span("link.backoff", name_.c_str());
      waits::WaitScope backoff_wait(waits::WaitType::kRetryBackoff,
                                    waits::CurrentOperatorTally());
      Delay(backoff_us);
      backoff_us *= policy.backoff_multiplier;
      if (backoff_us > policy.max_backoff_us) backoff_us = policy.max_backoff_us;
    }
  }
  return Status::NetworkError(last.message() + " (" +
                              std::to_string(max_attempts) +
                              " attempts exhausted)");
}

void Link::ChargeRows(int64_t n, size_t bytes) {
  rows_.fetch_add(n, std::memory_order_relaxed);
  bytes_.fetch_add(static_cast<int64_t>(bytes), std::memory_order_relaxed);
  m_rows_->Add(n);
  m_bytes_->Add(static_cast<int64_t>(bytes));
  if (LinkChargeSink* sink = t_charge_sink) {
    sink->rows.fetch_add(n, std::memory_order_relaxed);
    sink->bytes.fetch_add(static_cast<int64_t>(bytes),
                          std::memory_order_relaxed);
  }
  Delay(us_per_kb_ * static_cast<double>(bytes) / 1024.0);
}

Status LinkedRowset::SettlePending() {
  if (in_batch_ == 0) return Status::OK();
  // Rows are charged only after the settle message succeeds: a failed
  // (retries-exhausted) settle leaves the rows pending, so a later retry or
  // Restart never double-counts them — messages per attempt, rows per
  // successful drain.
  DHQP_RETURN_NOT_OK(link_->SendMessage(batch_bytes_));
  link_->ChargeRows(in_batch_, 0);
  in_batch_ = 0;
  batch_bytes_ = 0;
  return Status::OK();
}

Result<bool> LinkedRowset::Next(Row* out) {
  DHQP_ASSIGN_OR_RETURN(bool has, inner_->Next(out));
  if (!has) {
    DHQP_RETURN_NOT_OK(SettlePending());
    return false;
  }
  batch_bytes_ += RowWireSize(*out);
  if (++in_batch_ >= batch_rows_) {
    DHQP_RETURN_NOT_OK(SettlePending());
  }
  return true;
}

Result<bool> LinkedRowset::NextBatch(RowBatch* out, int max_rows) {
  // Switching to block fetch settles any rows pulled incrementally through
  // Next() first, so every shipped row lands in exactly one message.
  DHQP_RETURN_NOT_OK(SettlePending());
  DHQP_ASSIGN_OR_RETURN(bool has, inner_->NextBatch(out, max_rows));
  if (!has) return false;
  size_t bytes = 0;
  for (const Row& row : out->rows) bytes += RowWireSize(row);
  DHQP_RETURN_NOT_OK(link_->SendMessage(bytes));
  link_->ChargeRows(static_cast<int64_t>(out->rows.size()), 0);
  return true;
}

}  // namespace net
}  // namespace dhqp
