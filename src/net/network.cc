#include "src/net/network.h"

namespace dhqp {
namespace net {

void Link::Delay(double microseconds) {
  if (!enforce_ || microseconds <= 0) return;
  auto until = std::chrono::steady_clock::now() +
               std::chrono::nanoseconds(static_cast<int64_t>(microseconds * 1e3));
  // Spin-wait: sleep_for cannot hit microsecond targets reliably and the
  // benches need stable per-message costs.
  while (std::chrono::steady_clock::now() < until) {
  }
}

void Link::ChargeMessage(size_t bytes) {
  stats_.messages += 1;
  stats_.bytes += static_cast<int64_t>(bytes);
  Delay(latency_us_ + us_per_kb_ * static_cast<double>(bytes) / 1024.0);
}

void Link::ChargeRows(int64_t n, size_t bytes) {
  stats_.rows += n;
  stats_.bytes += static_cast<int64_t>(bytes);
  Delay(us_per_kb_ * static_cast<double>(bytes) / 1024.0);
}

Result<bool> LinkedRowset::Next(Row* out) {
  DHQP_ASSIGN_OR_RETURN(bool has, inner_->Next(out));
  if (!has) {
    if (in_batch_ > 0) {
      link_->ChargeMessage(batch_bytes_);
      link_->ChargeRows(in_batch_, 0);
      in_batch_ = 0;
      batch_bytes_ = 0;
    }
    return false;
  }
  batch_bytes_ += RowWireSize(*out);
  if (++in_batch_ >= batch_rows_) {
    link_->ChargeMessage(batch_bytes_);
    link_->ChargeRows(in_batch_, 0);
    in_batch_ = 0;
    batch_bytes_ = 0;
  }
  return true;
}

}  // namespace net
}  // namespace dhqp
