#include "src/net/network.h"

#include <thread>

namespace dhqp {
namespace net {

void Link::Delay(double microseconds) {
  if (!enforce_ || microseconds <= 0) return;
  auto until = std::chrono::steady_clock::now() +
               std::chrono::nanoseconds(static_cast<int64_t>(microseconds * 1e3));
  // Deadline-based spin with yield: sleep_for cannot hit microsecond targets
  // reliably, while a pure spin monopolizes a core — which would make link
  // waits on prefetch/parallel-branch threads block the consumer's progress
  // instead of overlapping with it. Yielding keeps the delay accurate (the
  // deadline is re-checked) and lets other runnable threads use the core.
  while (std::chrono::steady_clock::now() < until) {
    std::this_thread::yield();
  }
}

void Link::ChargeMessage(size_t bytes) {
  messages_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(static_cast<int64_t>(bytes), std::memory_order_relaxed);
  Delay(latency_us_ + us_per_kb_ * static_cast<double>(bytes) / 1024.0);
}

void Link::ChargeRows(int64_t n, size_t bytes) {
  rows_.fetch_add(n, std::memory_order_relaxed);
  bytes_.fetch_add(static_cast<int64_t>(bytes), std::memory_order_relaxed);
  Delay(us_per_kb_ * static_cast<double>(bytes) / 1024.0);
}

Result<bool> LinkedRowset::Next(Row* out) {
  DHQP_ASSIGN_OR_RETURN(bool has, inner_->Next(out));
  if (!has) {
    if (in_batch_ > 0) {
      link_->ChargeMessage(batch_bytes_);
      link_->ChargeRows(in_batch_, 0);
      in_batch_ = 0;
      batch_bytes_ = 0;
    }
    return false;
  }
  batch_bytes_ += RowWireSize(*out);
  if (++in_batch_ >= batch_rows_) {
    link_->ChargeMessage(batch_bytes_);
    link_->ChargeRows(in_batch_, 0);
    in_batch_ = 0;
    batch_bytes_ = 0;
  }
  return true;
}

Result<bool> LinkedRowset::NextBatch(RowBatch* out, int max_rows) {
  // Switching to block fetch settles any rows pulled incrementally through
  // Next() first, so every shipped row lands in exactly one message.
  if (in_batch_ > 0) {
    link_->ChargeMessage(batch_bytes_);
    link_->ChargeRows(in_batch_, 0);
    in_batch_ = 0;
    batch_bytes_ = 0;
  }
  DHQP_ASSIGN_OR_RETURN(bool has, inner_->NextBatch(out, max_rows));
  if (!has) return false;
  size_t bytes = 0;
  for (const Row& row : out->rows) bytes += RowWireSize(row);
  link_->ChargeMessage(bytes);
  link_->ChargeRows(static_cast<int64_t>(out->rows.size()), 0);
  return true;
}

}  // namespace net
}  // namespace dhqp
