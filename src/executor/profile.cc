#include "src/executor/profile.h"

#include <cinttypes>
#include <cstdio>

namespace dhqp {

namespace {

void RenderInto(const OperatorProfile& p, int indent, std::string* out) {
  out->append(static_cast<size_t>(indent) * 2, ' ');
  char buf[160];
  std::snprintf(buf, sizeof(buf), "#%d ", p.id);
  out->append(buf);
  out->append(p.name);
  std::snprintf(buf, sizeof(buf),
                "  [est_rows=%.1f act_rows=%" PRId64 " time_ms=%.3f opens=%"
                PRId64,
                p.estimated_rows, p.rows_out.load(), p.total_ns() / 1e6,
                p.opens.load());
  out->append(buf);
  if (int64_t r = p.restarts.load(); r > 0) {
    std::snprintf(buf, sizeof(buf), " restarts=%" PRId64, r);
    out->append(buf);
  }
  if (int64_t eb = p.exec_batches.load(); eb > 0) {
    std::snprintf(buf, sizeof(buf), " ebatches=%" PRId64, eb);
    out->append(buf);
  }
  if (!p.link.empty()) {
    const net::LinkChargeSink& c = p.link_charges;
    std::snprintf(buf, sizeof(buf), " link=%s msgs=%" PRId64,
                  p.link.c_str(), c.messages.load());
    out->append(buf);
    if (int64_t rows = c.rows.load(); rows > 0) {
      std::snprintf(buf, sizeof(buf), " wire_rows=%" PRId64, rows);
      out->append(buf);
    }
    if (int64_t b = p.batches.load(); b > 0) {
      std::snprintf(buf, sizeof(buf), " batches=%" PRId64, b);
      out->append(buf);
    }
    if (int64_t r = c.retries.load(); r > 0) {
      std::snprintf(buf, sizeof(buf), " retries=%" PRId64, r);
      out->append(buf);
    }
    if (int64_t t = c.timeouts.load(); t > 0) {
      std::snprintf(buf, sizeof(buf), " timeouts=%" PRId64, t);
      out->append(buf);
    }
    if (int64_t f = c.faults.load(); f > 0) {
      std::snprintf(buf, sizeof(buf), " faults=%" PRId64, f);
      out->append(buf);
    }
  }
  if (int64_t m = p.mem.peak(); m > 0) {
    std::snprintf(buf, sizeof(buf), " mem=%" PRId64 "B", m);
    out->append(buf);
  }
  if (int64_t s = p.spills.load(); s > 0) {
    std::snprintf(buf, sizeof(buf), " spill=%" PRId64 "(%" PRId64 "B)", s,
                  p.spill_bytes.load());
    out->append(buf);
  }
  bool first_wait = true;
  for (int i = 0; i < waits::kNumWaitTypes; ++i) {
    const auto type = static_cast<waits::WaitType>(i);
    const int64_t n = p.wait_tally.CountFor(type);
    if (n == 0) continue;
    std::snprintf(buf, sizeof(buf), "%s%s:%.3fms(%" PRId64 ")",
                  first_wait ? " wait=" : ",", waits::Name(type),
                  p.wait_tally.NsFor(type) / 1e6, n);
    out->append(buf);
    first_wait = false;
  }
  out->append("]\n");
  for (const auto& child : p.children) {
    RenderInto(*child, indent + 1, out);
  }
}

}  // namespace

std::string RenderOperatorProfile(const OperatorProfile& profile) {
  std::string out;
  RenderInto(profile, 0, &out);
  return out;
}

namespace {

void FlattenInto(const OperatorProfile& p, int parent_id,
                 std::vector<FlatOperator>* out) {
  out->push_back(FlatOperator{&p, parent_id});
  for (const auto& child : p.children) {
    FlattenInto(*child, p.id, out);
  }
}

}  // namespace

std::vector<FlatOperator> FlattenOperatorProfile(const OperatorProfile& root) {
  std::vector<FlatOperator> out;
  FlattenInto(root, 0, &out);
  return out;
}

}  // namespace dhqp
