#include "src/executor/spill.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <filesystem>
#include <utility>

namespace dhqp {
namespace spill {

namespace {

/// Serialized value layout: one tag byte (DataType id, high bit = NULL),
/// then the payload for non-null values. Host byte order — the file never
/// leaves the process.
constexpr uint8_t kNullBit = 0x80;

void PutRaw(std::string* buf, const void* p, size_t n) {
  buf->append(static_cast<const char*>(p), n);
}

void PutU32(std::string* buf, uint32_t v) { PutRaw(buf, &v, sizeof(v)); }

void SerializeValue(const Value& v, std::string* buf) {
  uint8_t tag = static_cast<uint8_t>(v.type());
  if (v.is_null()) {
    tag |= kNullBit;
    buf->push_back(static_cast<char>(tag));
    return;
  }
  buf->push_back(static_cast<char>(tag));
  switch (v.type()) {
    case DataType::kBool: {
      const uint8_t b = v.bool_value() ? 1 : 0;
      PutRaw(buf, &b, 1);
      break;
    }
    case DataType::kInt64: {
      const int64_t i = v.int64_value();
      PutRaw(buf, &i, sizeof(i));
      break;
    }
    case DataType::kDate: {
      const int64_t d = v.date_value();
      PutRaw(buf, &d, sizeof(d));
      break;
    }
    case DataType::kDouble: {
      const double d = v.double_value();
      PutRaw(buf, &d, sizeof(d));
      break;
    }
    case DataType::kString: {
      const std::string& s = v.string_value();
      PutU32(buf, static_cast<uint32_t>(s.size()));
      PutRaw(buf, s.data(), s.size());
      break;
    }
    case DataType::kNull:
      break;
  }
}

/// Per-process spill-file sequence. The sequence alone is NOT a unique
/// name: every process counts from 1, and engine processes (or parallel
/// test runners) share one temp directory — so file names also carry the
/// pid, and creation is exclusive ('x') with a retry, never a truncating
/// open of a path some other process may be reading.
std::atomic<uint64_t> g_next_file{1};

}  // namespace

std::string DefaultSpillDir() {
  std::error_code ec;
  std::filesystem::path dir = std::filesystem::temp_directory_path(ec);
  if (ec) return ".";
  return dir.string();
}

Result<std::unique_ptr<SpillFile>> SpillFile::Create(
    const std::string& dir, waits::WaitTally* op_tally) {
  const std::string base = dir.empty() ? DefaultSpillDir() : dir;
  std::error_code ec;
  std::filesystem::create_directories(base, ec);  // Best effort.
  const std::string pid = std::to_string(static_cast<long long>(::getpid()));
  for (int attempt = 0; attempt < 1024; ++attempt) {
    const uint64_t seq = g_next_file.fetch_add(1, std::memory_order_relaxed);
    std::string path =
        (std::filesystem::path(base) /
         ("dhqp_spill_" + pid + "_" + std::to_string(seq) + ".tmp"))
            .string();
    // 'x' (C11 exclusive create): a leftover from a crashed process with a
    // recycled pid fails the open and we move to the next sequence number
    // instead of truncating a file another SpillFile may hold open.
    std::FILE* file = std::fopen(path.c_str(), "wb+x");
    if (file != nullptr) {
      return std::unique_ptr<SpillFile>(
          new SpillFile(file, std::move(path), op_tally));
    }
  }
  return Status::ExecutionError("cannot create spill file in: " + base);
}

SpillFile::~SpillFile() {
  if (file_ != nullptr) std::fclose(file_);
  std::error_code ec;
  std::filesystem::remove(path_, ec);  // Best effort.
}

Status SpillFile::FlushWriteBuffer() {
  if (wbuf_.empty()) return Status::OK();
  waits::WaitScope io(waits::WaitType::kSpillIo, op_tally_);
  const size_t written = std::fwrite(wbuf_.data(), 1, wbuf_.size(), file_);
  if (written != wbuf_.size()) {
    return Status::ExecutionError("spill write failed: " + path_);
  }
  bytes_ += static_cast<int64_t>(wbuf_.size());
  wbuf_.clear();
  return Status::OK();
}

Status SpillFile::Append(const Row& row) {
  if (finished_) return Status::Internal("spill append after FinishWrite");
  PutU32(&wbuf_, static_cast<uint32_t>(row.size()));
  for (const Value& v : row) SerializeValue(v, &wbuf_);
  ++rows_;
  if (wbuf_.size() >= kIoChunkBytes) return FlushWriteBuffer();
  return Status::OK();
}

Status SpillFile::FinishWrite() {
  if (finished_) return Status::OK();
  DHQP_RETURN_NOT_OK(FlushWriteBuffer());
  if (std::fflush(file_) != 0) {
    return Status::ExecutionError("spill flush failed: " + path_);
  }
  finished_ = true;
  return Status::OK();
}

Status SpillFile::Rewind() {
  if (!finished_) return Status::Internal("spill rewind before FinishWrite");
  if (std::fseek(file_, 0, SEEK_SET) != 0) {
    return Status::ExecutionError("spill seek failed: " + path_);
  }
  rbuf_.clear();
  rpos_ = 0;
  return Status::OK();
}

Result<bool> SpillFile::EnsureReadable(size_t n) {
  if (rbuf_.size() - rpos_ >= n) return true;
  // Compact the unread tail, then refill a chunk (at least n bytes).
  rbuf_.erase(0, rpos_);
  rpos_ = 0;
  const size_t want = std::max(n, kIoChunkBytes);
  const size_t old = rbuf_.size();
  rbuf_.resize(old + want);
  size_t got;
  {
    waits::WaitScope io(waits::WaitType::kSpillIo, op_tally_);
    got = std::fread(rbuf_.data() + old, 1, want, file_);
  }
  rbuf_.resize(old + got);
  if (rbuf_.size() >= n) return true;
  if (rbuf_.empty()) return false;  // Clean end of file.
  return Status::ExecutionError("truncated spill file: " + path_);
}

Status SpillFile::Need(size_t n) {
  DHQP_ASSIGN_OR_RETURN(bool has, EnsureReadable(n));
  if (!has) return Status::ExecutionError("truncated spill file: " + path_);
  return Status::OK();
}

Result<bool> SpillFile::Next(Row* out) {
  DHQP_ASSIGN_OR_RETURN(bool has, EnsureReadable(sizeof(uint32_t)));
  if (!has) return false;
  uint32_t count;
  std::memcpy(&count, rbuf_.data() + rpos_, sizeof(count));
  rpos_ += sizeof(count);
  out->clear();
  out->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    DHQP_RETURN_NOT_OK(Need(1));
    const uint8_t tag = static_cast<uint8_t>(rbuf_[rpos_++]);
    const DataType type = static_cast<DataType>(tag & ~kNullBit);
    if ((tag & kNullBit) != 0) {
      out->push_back(Value::Null(type));
      continue;
    }
    switch (type) {
      case DataType::kBool: {
        DHQP_RETURN_NOT_OK(Need(1));
        out->push_back(Value::Bool(rbuf_[rpos_++] != 0));
        break;
      }
      case DataType::kInt64:
      case DataType::kDate: {
        DHQP_RETURN_NOT_OK(Need(sizeof(int64_t)));
        int64_t v;
        std::memcpy(&v, rbuf_.data() + rpos_, sizeof(v));
        rpos_ += sizeof(v);
        out->push_back(type == DataType::kInt64 ? Value::Int64(v)
                                                : Value::Date(v));
        break;
      }
      case DataType::kDouble: {
        DHQP_RETURN_NOT_OK(Need(sizeof(double)));
        double v;
        std::memcpy(&v, rbuf_.data() + rpos_, sizeof(v));
        rpos_ += sizeof(v);
        out->push_back(Value::Double(v));
        break;
      }
      case DataType::kString: {
        DHQP_RETURN_NOT_OK(Need(sizeof(uint32_t)));
        uint32_t len;
        std::memcpy(&len, rbuf_.data() + rpos_, sizeof(len));
        rpos_ += sizeof(len);
        DHQP_RETURN_NOT_OK(Need(len));
        out->push_back(
            Value::String(std::string(rbuf_.data() + rpos_, len)));
        rpos_ += len;
        break;
      }
      case DataType::kNull:
        out->push_back(Value());
        break;
    }
  }
  return true;
}

}  // namespace spill
}  // namespace dhqp
