#include "src/executor/eval.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

#include "src/common/date.h"
#include "src/fulltext/contains_query.h"

namespace dhqp {

namespace {

Result<Value> LookupColumn(int col_id, const EvalEnv& env) {
  if (env.col_pos != nullptr && env.row != nullptr) {
    auto it = env.col_pos->find(col_id);
    if (it != env.col_pos->end()) {
      return (*env.row)[static_cast<size_t>(it->second)];
    }
  }
  if (env.col_pos2 != nullptr && env.row2 != nullptr) {
    auto it = env.col_pos2->find(col_id);
    if (it != env.col_pos2->end()) {
      return (*env.row2)[static_cast<size_t>(it->second)];
    }
  }
  return Status::ExecutionError("column #" + std::to_string(col_id) +
                                " not available at runtime");
}

Result<Value> EvalArithmetic(const std::string& op, const Value& a,
                             const Value& b, DataType result_type) {
  if (a.is_null() || b.is_null()) return Value::Null(result_type);
  // Date arithmetic.
  if (a.type() == DataType::kDate && b.type() == DataType::kInt64) {
    if (op == "+") return Value::Date(a.date_value() + b.int64_value());
    if (op == "-") return Value::Date(a.date_value() - b.int64_value());
  }
  if (a.type() == DataType::kDate && b.type() == DataType::kDate &&
      op == "-") {
    return Value::Int64(a.date_value() - b.date_value());
  }
  if (a.type() == DataType::kString && b.type() == DataType::kString &&
      op == "+") {
    return Value::String(a.string_value() + b.string_value());
  }
  bool use_double =
      a.type() == DataType::kDouble || b.type() == DataType::kDouble ||
      result_type == DataType::kDouble;
  if (use_double) {
    double x = a.AsDouble(), y = b.AsDouble();
    if (op == "+") return Value::Double(x + y);
    if (op == "-") return Value::Double(x - y);
    if (op == "*") return Value::Double(x * y);
    if (op == "/") {
      if (y == 0) return Status::ExecutionError("division by zero");
      return Value::Double(x / y);
    }
    if (op == "%") {
      if (y == 0) return Status::ExecutionError("division by zero");
      return Value::Double(std::fmod(x, y));
    }
  } else {
    DHQP_ASSIGN_OR_RETURN(Value ai, a.CastTo(DataType::kInt64));
    DHQP_ASSIGN_OR_RETURN(Value bi, b.CastTo(DataType::kInt64));
    int64_t x = ai.int64_value(), y = bi.int64_value();
    if (op == "+") return Value::Int64(x + y);
    if (op == "-") return Value::Int64(x - y);
    if (op == "*") return Value::Int64(x * y);
    if (op == "/") {
      if (y == 0) return Status::ExecutionError("division by zero");
      return Value::Int64(x / y);
    }
    if (op == "%") {
      if (y == 0) return Status::ExecutionError("division by zero");
      return Value::Int64(x % y);
    }
  }
  return Status::ExecutionError("unknown arithmetic operator '" + op + "'");
}

Result<Value> EvalComparison(const std::string& op, const Value& a,
                             const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null(DataType::kBool);
  int c = a.Compare(b);
  bool result;
  if (op == "=") {
    result = c == 0;
  } else if (op == "<>") {
    result = c != 0;
  } else if (op == "<") {
    result = c < 0;
  } else if (op == "<=") {
    result = c <= 0;
  } else if (op == ">") {
    result = c > 0;
  } else {
    result = c >= 0;  // >=
  }
  return Value::Bool(result);
}

Result<Value> EvalFunc(const ScalarExpr& expr, const EvalEnv& env,
                       const std::vector<Value>& args) {
  const std::string& fn = expr.op;
  auto null_if = [&](size_t i) { return args[i].is_null(); };
  if (fn == "UPPER" || fn == "LOWER") {
    if (null_if(0)) return Value::Null(DataType::kString);
    std::string s = args[0].ToString();
    for (char& c : s) {
      c = fn == "UPPER"
              ? static_cast<char>(std::toupper(static_cast<unsigned char>(c)))
              : static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    return Value::String(std::move(s));
  }
  if (fn == "LEN" || fn == "LENGTH") {
    if (null_if(0)) return Value::Null(DataType::kInt64);
    return Value::Int64(static_cast<int64_t>(args[0].ToString().size()));
  }
  if (fn == "ABS") {
    if (null_if(0)) return Value::Null(expr.type);
    if (args[0].type() == DataType::kDouble) {
      return Value::Double(std::fabs(args[0].double_value()));
    }
    return Value::Int64(std::llabs(args[0].int64_value()));
  }
  if (fn == "YEAR" || fn == "MONTH" || fn == "DAY") {
    if (null_if(0)) return Value::Null(DataType::kInt64);
    DHQP_ASSIGN_OR_RETURN(Value d, args[0].CastTo(DataType::kDate));
    int y, m, dd;
    DaysToCivil(d.date_value(), &y, &m, &dd);
    if (fn == "YEAR") return Value::Int64(y);
    if (fn == "MONTH") return Value::Int64(m);
    return Value::Int64(dd);
  }
  if (fn == "TODAY") {
    return Value::Date(env.current_date);
  }
  if (fn == "DATE" || fn == "DATEADD") {
    if (null_if(0) || null_if(1)) return Value::Null(DataType::kDate);
    DHQP_ASSIGN_OR_RETURN(Value d, args[0].CastTo(DataType::kDate));
    DHQP_ASSIGN_OR_RETURN(Value n, args[1].CastTo(DataType::kInt64));
    return Value::Date(d.date_value() + n.int64_value());
  }
  if (fn == "CONTAINS") {
    // Direct text evaluation — the naive path when no full-text index plan
    // was chosen.
    if (null_if(0)) return Value::Bool(false);
    const std::string& query = args[1].string_value();
    return Value::Bool(
        fulltext::MatchesTextQuery(args[0].ToString(), query));
  }
  return Status::ExecutionError("unknown function '" + fn + "'");
}

}  // namespace

Result<Value> EvalExpr(const ScalarExpr& expr, const EvalEnv& env) {
  switch (expr.kind) {
    case ScalarKind::kColumn:
      return LookupColumn(expr.column_id, env);
    case ScalarKind::kLiteral:
      return expr.literal;
    case ScalarKind::kParam: {
      if (env.params != nullptr) {
        auto it = env.params->find(expr.op);
        if (it != env.params->end()) {
          if (expr.type != DataType::kNull && !it->second.is_null() &&
              it->second.type() != expr.type) {
            return it->second.CastTo(expr.type);
          }
          return it->second;
        }
      }
      return Status::ExecutionError("parameter '" + expr.op + "' not bound");
    }
    case ScalarKind::kUnary: {
      DHQP_ASSIGN_OR_RETURN(Value v, EvalExpr(*expr.args[0], env));
      if (expr.op == "NOT") {
        if (v.is_null()) return Value::Null(DataType::kBool);
        return Value::Bool(!v.bool_value());
      }
      if (expr.op == "-") {
        if (v.is_null()) return Value::Null(v.type());
        if (v.type() == DataType::kDouble) {
          return Value::Double(-v.double_value());
        }
        return Value::Int64(-v.int64_value());
      }
      return Status::ExecutionError("unknown unary operator '" + expr.op + "'");
    }
    case ScalarKind::kBinary: {
      const std::string& op = expr.op;
      if (op == "AND" || op == "OR") {
        DHQP_ASSIGN_OR_RETURN(Value a, EvalExpr(*expr.args[0], env));
        // Short-circuit.
        if (op == "AND" && !a.is_null() && !a.bool_value()) {
          return Value::Bool(false);
        }
        if (op == "OR" && !a.is_null() && a.bool_value()) {
          return Value::Bool(true);
        }
        DHQP_ASSIGN_OR_RETURN(Value b, EvalExpr(*expr.args[1], env));
        if (op == "AND") {
          if (!b.is_null() && !b.bool_value()) return Value::Bool(false);
          if (a.is_null() || b.is_null()) return Value::Null(DataType::kBool);
          return Value::Bool(true);
        }
        if (!b.is_null() && b.bool_value()) return Value::Bool(true);
        if (a.is_null() || b.is_null()) return Value::Null(DataType::kBool);
        return Value::Bool(false);
      }
      DHQP_ASSIGN_OR_RETURN(Value a, EvalExpr(*expr.args[0], env));
      DHQP_ASSIGN_OR_RETURN(Value b, EvalExpr(*expr.args[1], env));
      if (op == "=" || op == "<>" || op == "<" || op == "<=" || op == ">" ||
          op == ">=") {
        return EvalComparison(op, a, b);
      }
      return EvalArithmetic(op, a, b, expr.type);
    }
    case ScalarKind::kFunc: {
      std::vector<Value> args;
      args.reserve(expr.args.size());
      for (const ScalarExprPtr& arg : expr.args) {
        DHQP_ASSIGN_OR_RETURN(Value v, EvalExpr(*arg, env));
        args.push_back(std::move(v));
      }
      return EvalFunc(expr, env, args);
    }
    case ScalarKind::kIsNull: {
      DHQP_ASSIGN_OR_RETURN(Value v, EvalExpr(*expr.args[0], env));
      return Value::Bool(expr.negated ? !v.is_null() : v.is_null());
    }
    case ScalarKind::kLike: {
      DHQP_ASSIGN_OR_RETURN(Value text, EvalExpr(*expr.args[0], env));
      DHQP_ASSIGN_OR_RETURN(Value pattern, EvalExpr(*expr.args[1], env));
      if (text.is_null() || pattern.is_null()) {
        return Value::Null(DataType::kBool);
      }
      bool m = LikeMatch(text.ToString(), pattern.ToString());
      return Value::Bool(expr.negated ? !m : m);
    }
    case ScalarKind::kInList: {
      DHQP_ASSIGN_OR_RETURN(Value probe, EvalExpr(*expr.args[0], env));
      if (probe.is_null()) return Value::Null(DataType::kBool);
      bool found = false, saw_null = false;
      for (size_t i = 1; i < expr.args.size(); ++i) {
        DHQP_ASSIGN_OR_RETURN(Value item, EvalExpr(*expr.args[i], env));
        if (item.is_null()) {
          saw_null = true;
          continue;
        }
        if (probe.Compare(item) == 0) {
          found = true;
          break;
        }
      }
      if (!found && saw_null) return Value::Null(DataType::kBool);
      return Value::Bool(expr.negated ? !found : found);
    }
    case ScalarKind::kCase: {
      size_t i = 0;
      for (; i + 1 < expr.args.size(); i += 2) {
        DHQP_ASSIGN_OR_RETURN(Value cond, EvalExpr(*expr.args[i], env));
        if (!cond.is_null() && cond.bool_value()) {
          return EvalExpr(*expr.args[i + 1], env);
        }
      }
      if (i < expr.args.size()) return EvalExpr(*expr.args[i], env);
      return Value::Null(expr.type);
    }
    case ScalarKind::kCast: {
      DHQP_ASSIGN_OR_RETURN(Value v, EvalExpr(*expr.args[0], env));
      return v.CastTo(expr.cast_type);
    }
  }
  return Status::Internal("unknown scalar expression kind");
}

Result<bool> EvalPredicate(const ScalarExpr& expr, const EvalEnv& env) {
  DHQP_ASSIGN_OR_RETURN(Value v, EvalExpr(expr, env));
  return !v.is_null() && v.type() == DataType::kBool && v.bool_value();
}

namespace {

// A conjunct of shape `column <cmp> literal`, compiled once per batch: the
// column position is resolved and the operator is an enum, so qualifying a
// row is a null check plus one Value::Compare — no tree walk, no map
// lookup, no string-keyed operator dispatch.
struct FastCmp {
  enum Op { kEq, kNe, kLt, kLe, kGt, kGe };
  size_t pos = 0;
  Op op = kEq;
  const Value* literal = nullptr;
};

bool CompileCmpOp(const std::string& op, bool flipped, FastCmp* out) {
  if (op == "=") {
    out->op = FastCmp::kEq;
  } else if (op == "<>") {
    out->op = FastCmp::kNe;
  } else if (op == "<") {
    out->op = flipped ? FastCmp::kGt : FastCmp::kLt;
  } else if (op == "<=") {
    out->op = flipped ? FastCmp::kGe : FastCmp::kLe;
  } else if (op == ">") {
    out->op = flipped ? FastCmp::kLt : FastCmp::kGt;
  } else if (op == ">=") {
    out->op = flipped ? FastCmp::kLe : FastCmp::kGe;
  } else {
    return false;
  }
  return true;
}

// Compiles `expr` into a conjunction of FastCmps when it is an AND tree of
// column-vs-literal comparisons over the primary input. Predicate truth
// (non-NULL true) decomposes over AND — the row passes iff every conjunct
// is true — so evaluating conjuncts in sequence is exactly the
// three-valued row semantics. Anything else falls back to the row loop.
bool CompileFastPredicate(const ScalarExpr& expr, const EvalEnv& env,
                          std::vector<FastCmp>* out) {
  if (expr.kind != ScalarKind::kBinary) return false;
  if (expr.op == "AND") {
    return CompileFastPredicate(*expr.args[0], env, out) &&
           CompileFastPredicate(*expr.args[1], env, out);
  }
  const ScalarExpr* col = expr.args[0].get();
  const ScalarExpr* lit = expr.args[1].get();
  bool flipped = false;
  if (col->kind == ScalarKind::kLiteral && lit->kind == ScalarKind::kColumn) {
    std::swap(col, lit);
    flipped = true;
  }
  if (col->kind != ScalarKind::kColumn || lit->kind != ScalarKind::kLiteral) {
    return false;
  }
  if (env.col_pos == nullptr) return false;
  auto it = env.col_pos->find(col->column_id);
  if (it == env.col_pos->end()) return false;
  FastCmp cmp;
  cmp.pos = static_cast<size_t>(it->second);
  cmp.literal = &lit->literal;
  if (!CompileCmpOp(expr.op, flipped, &cmp)) return false;
  out->push_back(cmp);
  return true;
}

inline bool PassesFastCmp(const Row& row, const FastCmp& cmp) {
  const Value& v = row[cmp.pos];
  if (v.is_null() || cmp.literal->is_null()) return false;  // Unknown.
  int c = v.Compare(*cmp.literal);
  switch (cmp.op) {
    case FastCmp::kEq:
      return c == 0;
    case FastCmp::kNe:
      return c != 0;
    case FastCmp::kLt:
      return c < 0;
    case FastCmp::kLe:
      return c <= 0;
    case FastCmp::kGt:
      return c > 0;
    case FastCmp::kGe:
      return c >= 0;
  }
  return false;
}

}  // namespace

Status EvalPredicateBatch(const ScalarExpr& expr, EvalEnv env,
                          const RowBatch& batch, SelectionVector* sel) {
  sel->clear();
  std::vector<FastCmp> fast;
  if (CompileFastPredicate(expr, env, &fast)) {
    for (size_t i = 0; i < batch.rows.size(); ++i) {
      const Row& row = batch.rows[i];
      bool pass = true;
      for (const FastCmp& cmp : fast) {
        if (!PassesFastCmp(row, cmp)) {
          pass = false;
          break;
        }
      }
      if (pass) sel->push_back(static_cast<int>(i));
    }
    return Status::OK();
  }
  for (size_t i = 0; i < batch.rows.size(); ++i) {
    env.row = &batch.rows[i];
    DHQP_ASSIGN_OR_RETURN(bool pass, EvalPredicate(expr, env));
    if (pass) sel->push_back(static_cast<int>(i));
  }
  return Status::OK();
}

Status EvalExprBatch(const ScalarExpr& expr, EvalEnv env,
                     const RowBatch& batch, const SelectionVector* sel,
                     std::vector<Value>* out) {
  const size_t n = sel != nullptr ? sel->size() : batch.rows.size();
  auto row_at = [&](size_t i) -> const Row& {
    return batch.rows[sel != nullptr ? static_cast<size_t>((*sel)[i])
                                     : i];
  };
  // Column reference: resolve the position once and copy values straight
  // out of the rows.
  if (expr.kind == ScalarKind::kColumn && env.col_pos != nullptr) {
    auto it = env.col_pos->find(expr.column_id);
    if (it != env.col_pos->end()) {
      const size_t pos = static_cast<size_t>(it->second);
      for (size_t i = 0; i < n; ++i) out->push_back(row_at(i)[pos]);
      return Status::OK();
    }
  }
  if (expr.kind == ScalarKind::kLiteral) {
    for (size_t i = 0; i < n; ++i) out->push_back(expr.literal);
    return Status::OK();
  }
  for (size_t i = 0; i < n; ++i) {
    env.row = &row_at(i);
    DHQP_ASSIGN_OR_RETURN(Value v, EvalExpr(expr, env));
    out->push_back(std::move(v));
  }
  return Status::OK();
}

}  // namespace dhqp
