#include "src/executor/exec.h"

#include <algorithm>
#include <atomic>
#include <deque>
#include <functional>
#include <set>
#include <thread>
#include <vector>

#include "src/common/activity.h"
#include "src/common/trace.h"
#include "src/common/waits.h"
#include "src/executor/bounded_queue.h"
#include "src/executor/exchange.h"
#include "src/executor/prefetch.h"
#include "src/executor/spill.h"
#include "src/storage/btree.h"
#include "src/sysview/requests.h"

namespace dhqp {

// Default batch pull: loops Next(). Every operator works under a batching
// consumer without modification; operators with a cheaper bulk path
// override this.
Result<bool> ExecNode::NextBatch(RowBatch* out, int max_rows) {
  out->clear();
  if (!deferred_batch_status_.ok()) {
    Status st = std::move(deferred_batch_status_);
    deferred_batch_status_ = Status::OK();
    return st;
  }
  if (max_rows <= 0) return false;
  Row row;
  for (int i = 0; i < max_rows; ++i) {
    Result<bool> has = Next(&row);
    if (!has.ok()) {
      // Defer a mid-batch error behind the rows already collected: a
      // row-at-a-time consumer would have seen those rows first, and
      // consumers above make skip/abort decisions based on what has
      // surfaced (so the decision must not depend on the batch size).
      if (out->rows.empty()) return has.status();
      deferred_batch_status_ = has.status();
      return true;
    }
    if (!*has) break;
    out->rows.push_back(std::move(row));
  }
  return !out->rows.empty();
}

namespace {

// ---------------------------------------------------------------------------
// Helpers.
// ---------------------------------------------------------------------------

// Hands out the next slice of a materialized row vector as a batch —
// the bulk path shared by every operator that buffers its output (sort,
// spool, hash aggregate, const table).
bool SliceRows(const std::vector<Row>& rows, size_t* pos, int max_rows,
               RowBatch* out) {
  out->clear();
  if (*pos >= rows.size() || max_rows <= 0) return false;
  size_t n = rows.size() - *pos;
  if (n > static_cast<size_t>(max_rows)) n = static_cast<size_t>(max_rows);
  out->rows.assign(rows.begin() + static_cast<ptrdiff_t>(*pos),
                   rows.begin() + static_cast<ptrdiff_t>(*pos + n));
  *pos += n;
  return true;
}

// Remote block-fetch granularity stays governed by remote_batch_rows no
// matter what the local executor's batch size is, so wire-message counts
// do not shift when exec_batch_rows changes.
int ClampRemoteBatch(int max_rows, const ExecOptions& options) {
  if (options.remote_batch_rows > 0 && max_rows > options.remote_batch_rows) {
    return options.remote_batch_rows;
  }
  return max_rows;
}

// Evaluates a RangeSpec's bound expressions against the current parameters.
Result<IndexRange> EvalRangeSpec(const RangeSpec& spec, ExecContext* ctx) {
  EvalEnv env;
  env.params = &ctx->params;
  env.current_date = ctx->current_date;
  IndexRange range;
  for (const ScalarExprPtr& e : spec.eq_prefix) {
    DHQP_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, env));
    range.eq_prefix.push_back(std::move(v));
  }
  if (spec.lo != nullptr) {
    DHQP_ASSIGN_OR_RETURN(Value v, EvalExpr(*spec.lo, env));
    range.lo = std::move(v);
    range.lo_inclusive = spec.lo_inclusive;
  }
  if (spec.hi != nullptr) {
    DHQP_ASSIGN_OR_RETURN(Value v, EvalExpr(*spec.hi, env));
    range.hi = std::move(v);
    range.hi_inclusive = spec.hi_inclusive;
  }
  return range;
}

// Wraps a remote result stream in the async block-fetch pipeline when the
// context enables it: the producer thread pays the link's latency while the
// consumer keeps working on earlier batches. `profile` (nullable) receives
// batch counts and — via the producer thread's charge sink — the link
// traffic the pipeline generates on behalf of the owning operator.
std::unique_ptr<Rowset> MaybePrefetch(std::unique_ptr<Rowset> rowset,
                                      ExecContext* ctx,
                                      OperatorProfile* profile) {
  if (!ctx->options.enable_remote_prefetch) return rowset;
  return std::make_unique<PrefetchingRowset>(std::move(rowset), ctx->options,
                                             &ctx->stats, profile,
                                             ctx->memory);
}

// Memory-charge bookkeeping for one buffering operator: accumulates bytes
// and flushes them in chunks to the operator's profile slot and the query
// tracker (two atomic adds per 64KB, not per row), releasing everything it
// charged on destruction or re-materialization. Bind targets must outlive
// the node — the profile tree and ExecContext both do.
class OperatorMem {
 public:
  ~OperatorMem() { ReleaseAll(); }

  void Bind(OperatorProfile* profile, MemTracker* query) {
    op_ = profile != nullptr ? &profile->mem : nullptr;
    query_ = query;
  }
  void Add(int64_t bytes) {
    pending_ += bytes;
    if (pending_ >= kFlushBytes) Flush();
  }
  void Flush() {
    if (pending_ == 0) return;
    if (op_ != nullptr) op_->Add(pending_);
    if (query_ != nullptr) query_->Add(pending_);
    held_ += pending_;
    pending_ = 0;
  }
  void ReleaseAll() {
    pending_ = 0;
    if (held_ == 0) return;
    if (op_ != nullptr) op_->Release(held_);
    if (query_ != nullptr) query_->Release(held_);
    held_ = 0;
  }
  /// Accumulated bytes not yet flushed to the trackers — grant checks add
  /// this to the query tracker's current() so chunked flushing cannot hide
  /// up to kFlushBytes of growth from the spill trigger.
  int64_t pending() const { return pending_; }

 private:
  static constexpr int64_t kFlushBytes = 64 * 1024;

  MemTracker* op_ = nullptr;
  MemTracker* query_ = nullptr;
  int64_t pending_ = 0;
  int64_t held_ = 0;
};

// ---------------------------------------------------------------------------
// Grant-enforced spilling (workload governor).
// ---------------------------------------------------------------------------

// True when charging `incoming` more bytes would push the query past its
// memory grant — the signal that flips a buffering operator into spill
// mode. Uses the query-wide tracker: whichever operator crosses the grant
// first spills, regardless of which operators are holding the memory.
bool GrantExceeded(const ExecContext* ctx, int64_t op_pending,
                   int64_t incoming) {
  return ctx->grant_bytes > 0 && ctx->memory != nullptr &&
         ctx->memory->current() + op_pending + incoming > ctx->grant_bytes;
}

// One finished spill file: rolls its volume into the query stats and the
// owning operator's profile slot. exec.spills counts files written (sort
// runs, Grace partitions, spooled results).
void RecordSpill(ExecContext* ctx, OperatorProfile* profile,
                 const spill::SpillFile& file) {
  ctx->stats.spills++;
  ctx->stats.spill_bytes += file.bytes();
  if (profile != nullptr) {
    profile->spills++;
    profile->spill_bytes += file.bytes();
  }
}

// The operator wait slot spill I/O is attributed to (null when stats
// collection is off).
waits::WaitTally* SpillTally(OperatorProfile* profile) {
  return profile != nullptr ? &profile->wait_tally : nullptr;
}

// Grace partitioning fanout per recursion level.
constexpr int kSpillFanout = 8;

// Hash of a join/group key for Grace partitioning. Numeric values hash by
// numeric value — int64 1 and double 1.0 compare equal under CompareKeys,
// so they must land in the same partition; strings hash by content; NULLs
// (possible in GROUP BY keys) get a fixed bucket.
size_t HashSpillKey(const IndexKey& key) {
  size_t h = 0x345678;
  for (const Value& v : key) {
    size_t vh;
    if (v.is_null()) {
      vh = 0x9e3779b9;
    } else if (v.type() == DataType::kString) {
      vh = std::hash<std::string>{}(v.string_value());
    } else {
      vh = std::hash<double>{}(v.AsDouble());
    }
    h = h * 1000003 ^ vh;
  }
  return h;
}

// Partition index at a recursion depth: each level consumes a disjoint bit
// range of the key hash, so recursive repartitions actually subdivide.
int SpillPartOf(const IndexKey& key, int depth) {
  return static_cast<int>((HashSpillKey(key) >> (3 * depth)) &
                          (kSpillFanout - 1));
}

// One spill file per Grace fan-out slot.
Status MakeSpillParts(ExecContext* ctx, OperatorProfile* profile,
                      std::vector<std::unique_ptr<spill::SpillFile>>* parts) {
  parts->clear();
  for (int i = 0; i < kSpillFanout; ++i) {
    DHQP_ASSIGN_OR_RETURN(
        auto f, spill::SpillFile::Create(ctx->spill_dir, SpillTally(profile)));
    parts->push_back(std::move(f));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Scans (local + remote) and leaves.
// ---------------------------------------------------------------------------

class ScanNode : public ExecNode {
 public:
  /// `partition`/`partitions`: block-cyclic slice of the table this instance
  /// reads (worker p of P owns every P-th kPartitionBlockRows-row block).
  /// The default 0/1 reads everything — the serial scan, unchanged.
  ScanNode(PhysicalOpPtr op, ExecContext* ctx, int partition = 0,
           int partitions = 1)
      : ExecNode(std::move(op)),
        ctx_(ctx),
        partition_(partition),
        partitions_(partitions) {}

  Status Open() override {
    DHQP_ASSIGN_OR_RETURN(Session * session,
                          ctx_->catalog->GetSession(op_->table.source_id));
    DHQP_ASSIGN_OR_RETURN(rowset_,
                          session->OpenRowset(op_->table.metadata.name));
    if (op_->kind == PhysicalOpKind::kRemoteScan) {
      ctx_->stats.remote_opens++;
      rowset_ = MaybePrefetch(std::move(rowset_), ctx_, profile_);
    }
    block_ = 0;
    buf_.clear();
    buf_pos_ = 0;
    return Status::OK();
  }

  Result<bool> Next(Row* out) override {
    if (partitions_ > 1) {
      DHQP_ASSIGN_OR_RETURN(bool has, FillBlock());
      if (!has) return false;
      *out = std::move(buf_.rows[buf_pos_++]);
      return true;
    }
    DHQP_ASSIGN_OR_RETURN(bool has, rowset_->Next(out));
    if (has && op_->kind == PhysicalOpKind::kRemoteScan) {
      ctx_->stats.rows_from_remote++;
    }
    return has;
  }

  Result<bool> NextBatch(RowBatch* out, int max_rows) override {
    if (partitions_ > 1) {
      out->clear();
      if (max_rows <= 0) return false;
      DHQP_ASSIGN_OR_RETURN(bool has, FillBlock());
      if (!has) return false;
      size_t n = buf_.rows.size() - buf_pos_;
      if (n > static_cast<size_t>(max_rows)) n = static_cast<size_t>(max_rows);
      out->rows.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        out->rows.push_back(std::move(buf_.rows[buf_pos_ + i]));
      }
      buf_pos_ += n;
      return true;
    }
    // Forwards the rowset's own block fetch: one virtual call per batch
    // instead of one per row, and contiguous sources hand out slices.
    if (op_->kind == PhysicalOpKind::kRemoteScan) {
      // Without the prefetch pipeline the rowset's wire granularity is the
      // provider's own settle cadence, which only row-at-a-time pulls
      // preserve — block-fetching here would merge wire messages and make
      // fault ordinals depend on the local batch size.
      if (!ctx_->options.enable_remote_prefetch) {
        return ExecNode::NextBatch(out, max_rows);
      }
      max_rows = ClampRemoteBatch(max_rows, ctx_->options);
    }
    DHQP_ASSIGN_OR_RETURN(bool has, rowset_->NextBatch(out, max_rows));
    if (has && op_->kind == PhysicalOpKind::kRemoteScan) {
      ctx_->stats.rows_from_remote += static_cast<int64_t>(out->rows.size());
    }
    return has;
  }

  Status Restart() override {
    // Rewinding a remote cursor is another round trip's worth of work on
    // the provider; account for it (the spool ablation measures this).
    if (op_->kind == PhysicalOpKind::kRemoteScan) ctx_->stats.remote_opens++;
    block_ = 0;
    buf_.clear();
    buf_pos_ = 0;
    Status st = rowset_->Restart();
    if (st.ok()) return st;
    return Open();
  }

 private:
  /// The partitioned-scan block size is a fixed constant — NOT
  /// exec_batch_rows — so each worker's row set is invariant to the
  /// batch-size knob (the DOP-differential suite crosses the two).
  static constexpr int64_t kPartitionBlockRows = 1024;

  /// Ensures buf_ holds unserved rows of an owned block, skipping unowned
  /// blocks in place (SkipRows — positional rowsets advance without
  /// copying). False at end of data.
  Result<bool> FillBlock() {
    while (buf_pos_ >= buf_.rows.size()) {
      while (block_ % partitions_ != partition_) {
        DHQP_ASSIGN_OR_RETURN(int64_t skipped,
                              rowset_->SkipRows(kPartitionBlockRows));
        ++block_;
        if (skipped < kPartitionBlockRows) return false;
      }
      buf_.clear();
      buf_pos_ = 0;
      DHQP_ASSIGN_OR_RETURN(
          bool has,
          rowset_->NextBatch(&buf_, static_cast<int>(kPartitionBlockRows)));
      ++block_;
      if (!has) return false;
    }
    return true;
  }

  ExecContext* ctx_;
  int partition_;
  int partitions_;
  std::unique_ptr<Rowset> rowset_;
  int64_t block_ = 0;   ///< Next block ordinal to consider.
  RowBatch buf_;        ///< Current owned block (partitioned mode only).
  size_t buf_pos_ = 0;  ///< Next unserved row in buf_.
};

class IndexRangeNode : public ExecNode {
 public:
  IndexRangeNode(PhysicalOpPtr op, ExecContext* ctx)
      : ExecNode(std::move(op)), ctx_(ctx) {}

  Status Open() override {
    DHQP_ASSIGN_OR_RETURN(Session * session,
                          ctx_->catalog->GetSession(op_->table.source_id));
    DHQP_ASSIGN_OR_RETURN(IndexRange range, EvalRangeSpec(op_->range, ctx_));
    DHQP_ASSIGN_OR_RETURN(
        rowset_, session->OpenIndexRange(op_->table.metadata.name,
                                         op_->index_name, range));
    if (op_->kind == PhysicalOpKind::kRemoteRange) ctx_->stats.remote_opens++;
    return Status::OK();
  }

  Result<bool> Next(Row* out) override {
    DHQP_ASSIGN_OR_RETURN(bool has, rowset_->Next(out));
    if (has && op_->kind == PhysicalOpKind::kRemoteRange) {
      ctx_->stats.rows_from_remote++;
    }
    return has;
  }

  Result<bool> NextBatch(RowBatch* out, int max_rows) override {
    // Remote ranges are never prefetched: the raw linked rowset's settle
    // cadence is the wire contract, so batch mode pulls row-at-a-time to
    // keep message ordinals identical to row mode.
    if (op_->kind == PhysicalOpKind::kRemoteRange) {
      return ExecNode::NextBatch(out, max_rows);
    }
    return rowset_->NextBatch(out, max_rows);
  }

  Status Restart() override { return Open(); }  // Bounds may be parameters.

 private:
  ExecContext* ctx_;
  std::unique_ptr<Rowset> rowset_;
};

// Remote fetch (§4.1.2 "remote fetch accesses a remote table via
// 'bookmark'"): streams (key, bookmark) pairs from the remote index, then
// fetches each base row by bookmark — one round trip per row.
class RemoteFetchNode : public ExecNode {
 public:
  RemoteFetchNode(PhysicalOpPtr op, ExecContext* ctx)
      : ExecNode(std::move(op)), ctx_(ctx) {}

  Status Open() override {
    DHQP_ASSIGN_OR_RETURN(session_,
                          ctx_->catalog->GetSession(op_->table.source_id));
    DHQP_ASSIGN_OR_RETURN(IndexRange range, EvalRangeSpec(op_->range, ctx_));
    DHQP_ASSIGN_OR_RETURN(
        keys_, session_->OpenIndexKeys(op_->table.metadata.name,
                                       op_->index_name, range));
    ctx_->stats.remote_opens++;
    return Status::OK();
  }

  Result<bool> Next(Row* out) override {
    Row key_row;
    while (true) {
      DHQP_ASSIGN_OR_RETURN(bool has, keys_->Next(&key_row));
      if (!has) return false;
      const Value& bookmark = key_row.back();
      DHQP_ASSIGN_OR_RETURN(
          std::optional<Row> row,
          session_->FetchByBookmark(op_->table.metadata.name, bookmark));
      ctx_->stats.remote_fetches++;
      if (row.has_value()) {
        ctx_->stats.rows_from_remote++;
        *out = std::move(*row);
        return true;
      }
    }
  }

  Status Restart() override { return Open(); }

 private:
  ExecContext* ctx_;
  Session* session_ = nullptr;
  std::unique_ptr<Rowset> keys_;
};

class ConstTableNode : public ExecNode {
 public:
  explicit ConstTableNode(PhysicalOpPtr op) : ExecNode(std::move(op)) {}
  Status Open() override {
    pos_ = 0;
    return Status::OK();
  }
  Result<bool> Next(Row* out) override {
    if (pos_ >= op_->const_rows.size()) return false;
    *out = op_->const_rows[pos_++];
    return true;
  }
  Result<bool> NextBatch(RowBatch* out, int max_rows) override {
    return SliceRows(op_->const_rows, &pos_, max_rows, out);
  }
  Status Restart() override {
    pos_ = 0;
    return Status::OK();
  }

 private:
  size_t pos_ = 0;
};

class EmptyNode : public ExecNode {
 public:
  explicit EmptyNode(PhysicalOpPtr op) : ExecNode(std::move(op)) {}
  Status Open() override { return Status::OK(); }
  Result<bool> Next(Row* out) override {
    (void)out;
    return false;
  }
  Status Restart() override { return Status::OK(); }
};

class FullTextLookupNode : public ExecNode {
 public:
  FullTextLookupNode(PhysicalOpPtr op, ExecContext* ctx)
      : ExecNode(std::move(op)), ctx_(ctx) {}

  Status Open() override {
    if (ctx_->fulltext == nullptr) {
      return Status::ExecutionError("no full-text service available");
    }
    DHQP_ASSIGN_OR_RETURN(matches_,
                          ctx_->fulltext->Query(op_->ft_table, op_->ft_query));
    pos_ = 0;
    return Status::OK();
  }

  Result<bool> Next(Row* out) override {
    if (pos_ >= matches_.size()) return false;
    out->clear();
    out->push_back(matches_[pos_].first);
    out->push_back(Value::Double(matches_[pos_].second));
    ++pos_;
    return true;
  }

  Status Restart() override {
    pos_ = 0;
    return Status::OK();
  }

 private:
  ExecContext* ctx_;
  std::vector<std::pair<Value, double>> matches_;
  size_t pos_ = 0;
};

// Remote query dispatch ("build remote query" at run time): creates a
// command on the provider session, binds parameters, executes, streams.
class RemoteQueryNode : public ExecNode {
 public:
  RemoteQueryNode(PhysicalOpPtr op, ExecContext* ctx)
      : ExecNode(std::move(op)), ctx_(ctx) {}

  Status Open() override {
    DHQP_ASSIGN_OR_RETURN(Session * session,
                          ctx_->catalog->GetSession(op_->source_id));
    DHQP_ASSIGN_OR_RETURN(auto command, session->CreateCommand());
    DHQP_RETURN_NOT_OK(command->SetText(op_->remote_sql));
    for (const std::string& name : op_->remote_param_names) {
      auto it = ctx_->params.find(name);
      if (it == ctx_->params.end()) {
        return Status::ExecutionError("remote parameter '" + name +
                                      "' not bound");
      }
      DHQP_RETURN_NOT_OK(command->BindParameter(name, it->second));
    }
    DHQP_ASSIGN_OR_RETURN(rowset_, command->Execute());
    ctx_->stats.remote_commands++;
    // Bulk (unparameterized) remote results flow through the prefetch
    // pipeline. Parameterized dispatch stays inline: each rescan returns a
    // handful of rows, so a producer thread per rescan would cost more
    // than the latency it hides.
    if (op_->remote_param_names.empty()) {
      rowset_ = MaybePrefetch(std::move(rowset_), ctx_, profile_);
    }
    return Status::OK();
  }

  Result<bool> Next(Row* out) override {
    DHQP_ASSIGN_OR_RETURN(bool has, rowset_->Next(out));
    if (has) ctx_->stats.rows_from_remote++;
    return has;
  }

  Result<bool> NextBatch(RowBatch* out, int max_rows) override {
    // Forwards the remote stream's block fetch instead of unbatching it
    // into single rows only to re-batch above. Only the prefetched (bulk)
    // path may block-fetch: its producer fixes the wire granularity at
    // remote_batch_rows in both modes. Inline streams (parameterized
    // dispatch, prefetch disabled) keep the provider's own settle cadence
    // via row-at-a-time pulls, so fault ordinals are batch-size-invariant.
    if (!op_->remote_param_names.empty() ||
        !ctx_->options.enable_remote_prefetch) {
      return ExecNode::NextBatch(out, max_rows);
    }
    max_rows = ClampRemoteBatch(max_rows, ctx_->options);
    DHQP_ASSIGN_OR_RETURN(bool has, rowset_->NextBatch(out, max_rows));
    if (has) ctx_->stats.rows_from_remote += static_cast<int64_t>(out->rows.size());
    return has;
  }

  Status Restart() override { return Open(); }  // Re-binds current params.

 private:
  ExecContext* ctx_;
  std::unique_ptr<Rowset> rowset_;
};

// ---------------------------------------------------------------------------
// Filters / projection / top.
// ---------------------------------------------------------------------------

class FilterNode : public ExecNode {
 public:
  FilterNode(PhysicalOpPtr op, std::unique_ptr<ExecNode> child,
             ExecContext* ctx)
      : ExecNode(std::move(op)), child_(std::move(child)), ctx_(ctx) {}

  Status Open() override { return child_->Open(); }

  Result<bool> Next(Row* out) override {
    EvalEnv env;
    env.col_pos = &child_->col_pos();
    env.params = &ctx_->params;
    env.current_date = ctx_->current_date;
    while (true) {
      DHQP_ASSIGN_OR_RETURN(bool has, child_->Next(out));
      if (!has) return false;
      env.row = out;
      DHQP_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*op_->predicate, env));
      if (pass) return true;
    }
  }

  Result<bool> NextBatch(RowBatch* out, int max_rows) override {
    out->clear();
    if (max_rows <= 0) return false;
    EvalEnv env;
    env.col_pos = &child_->col_pos();
    env.params = &ctx_->params;
    env.current_date = ctx_->current_date;
    // Qualify whole child batches through the batched predicate (selection
    // vector); loop until at least one row survives — an empty batch may
    // only mean end of data.
    while (out->rows.empty()) {
      DHQP_ASSIGN_OR_RETURN(bool has, child_->NextBatch(&in_batch_, max_rows));
      if (!has) return false;
      DHQP_RETURN_NOT_OK(
          EvalPredicateBatch(*op_->predicate, env, in_batch_, &sel_));
      out->rows.reserve(sel_.size());
      for (int idx : sel_) {
        out->rows.push_back(std::move(in_batch_.rows[static_cast<size_t>(idx)]));
      }
    }
    return true;
  }

  Status Restart() override { return child_->Restart(); }

 private:
  std::unique_ptr<ExecNode> child_;
  ExecContext* ctx_;
  RowBatch in_batch_;    ///< Reused (clear-and-refill) across batch pulls.
  SelectionVector sel_;  ///< Reused qualification buffer.
};

// Startup filter (§4.1.5): evaluates its parameter-only predicate before
// opening the child; a false guard skips the entire subtree (runtime
// partition pruning).
class StartupFilterNode : public ExecNode {
 public:
  StartupFilterNode(PhysicalOpPtr op, std::unique_ptr<ExecNode> child,
                    ExecContext* ctx)
      : ExecNode(std::move(op)), child_(std::move(child)), ctx_(ctx) {}

  Status Open() override {
    EvalEnv env;
    env.params = &ctx_->params;
    env.current_date = ctx_->current_date;
    DHQP_ASSIGN_OR_RETURN(active_, EvalPredicate(*op_->predicate, env));
    if (!active_) {
      ctx_->stats.startup_skips++;
      return Status::OK();
    }
    if (!child_opened_) {
      child_opened_ = true;
      return child_->Open();
    }
    return child_->Restart();
  }

  Result<bool> Next(Row* out) override {
    if (!active_) return false;
    return child_->Next(out);
  }

  Result<bool> NextBatch(RowBatch* out, int max_rows) override {
    if (!active_) {
      out->clear();
      return false;
    }
    return child_->NextBatch(out, max_rows);
  }

  Status Restart() override { return Open(); }

 private:
  std::unique_ptr<ExecNode> child_;
  ExecContext* ctx_;
  bool active_ = false;
  bool child_opened_ = false;
};

class ProjectNode : public ExecNode {
 public:
  ProjectNode(PhysicalOpPtr op, std::unique_ptr<ExecNode> child,
              ExecContext* ctx)
      : ExecNode(std::move(op)), child_(std::move(child)), ctx_(ctx) {}

  Status Open() override { return child_->Open(); }

  Result<bool> Next(Row* out) override {
    Row in;
    DHQP_ASSIGN_OR_RETURN(bool has, child_->Next(&in));
    if (!has) return false;
    EvalEnv env;
    env.col_pos = &child_->col_pos();
    env.row = &in;
    env.params = &ctx_->params;
    env.current_date = ctx_->current_date;
    out->clear();
    out->reserve(op_->exprs.size());
    for (const ScalarExprPtr& e : op_->exprs) {
      DHQP_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, env));
      out->push_back(std::move(v));
    }
    return true;
  }

  Result<bool> NextBatch(RowBatch* out, int max_rows) override {
    out->clear();
    if (max_rows <= 0) return false;
    DHQP_ASSIGN_OR_RETURN(bool has, child_->NextBatch(&in_batch_, max_rows));
    if (!has) return false;
    EvalEnv env;
    env.col_pos = &child_->col_pos();
    env.params = &ctx_->params;
    env.current_date = ctx_->current_date;
    // Evaluate column-major — one expression over the whole batch — then
    // assemble output rows; column/literal expressions never re-enter the
    // recursive evaluator.
    const size_t n = in_batch_.rows.size();
    const size_t width = op_->exprs.size();
    col_buf_.clear();
    col_buf_.reserve(n * width);
    for (const ScalarExprPtr& e : op_->exprs) {
      DHQP_RETURN_NOT_OK(
          EvalExprBatch(*e, env, in_batch_, /*sel=*/nullptr, &col_buf_));
    }
    out->rows.resize(n);
    for (size_t r = 0; r < n; ++r) {
      Row& row = out->rows[r];
      row.clear();
      row.reserve(width);
      for (size_t c = 0; c < width; ++c) {
        row.push_back(std::move(col_buf_[c * n + r]));
      }
    }
    return true;
  }

  Status Restart() override { return child_->Restart(); }

 private:
  std::unique_ptr<ExecNode> child_;
  ExecContext* ctx_;
  RowBatch in_batch_;           ///< Reused across batch pulls.
  std::vector<Value> col_buf_;  ///< Column-major eval scratch, reused.
};

class TopNode : public ExecNode {
 public:
  TopNode(PhysicalOpPtr op, std::unique_ptr<ExecNode> child)
      : ExecNode(std::move(op)), child_(std::move(child)) {}

  Status Open() override {
    emitted_ = 0;
    return child_->Open();
  }

  Result<bool> Next(Row* out) override {
    if (emitted_ >= op_->limit) return false;
    DHQP_ASSIGN_OR_RETURN(bool has, child_->Next(out));
    if (!has) return false;
    ++emitted_;
    return true;
  }

  Result<bool> NextBatch(RowBatch* out, int max_rows) override {
    out->clear();
    const int64_t left = op_->limit - emitted_;
    if (left <= 0 || max_rows <= 0) return false;
    const int ask = static_cast<int>(
        std::min<int64_t>(left, static_cast<int64_t>(max_rows)));
    DHQP_ASSIGN_OR_RETURN(bool has, child_->NextBatch(out, ask));
    if (!has) return false;
    // Defensive: a child handing out buffered batches wholesale could
    // over-deliver; never emit past the limit.
    if (static_cast<int64_t>(out->rows.size()) > left) {
      out->rows.resize(static_cast<size_t>(left));
    }
    emitted_ += static_cast<int64_t>(out->rows.size());
    return true;
  }

  Status Restart() override {
    emitted_ = 0;
    return child_->Restart();
  }

 private:
  std::unique_ptr<ExecNode> child_;
  int64_t emitted_ = 0;
};

// ---------------------------------------------------------------------------
// Sort / spool / concat.
// ---------------------------------------------------------------------------

class SortNode : public ExecNode {
 public:
  SortNode(PhysicalOpPtr op, std::unique_ptr<ExecNode> child, ExecContext* ctx)
      : ExecNode(std::move(op)), child_(std::move(child)), ctx_(ctx) {}

  Status Open() override {
    DHQP_RETURN_NOT_OK(child_->Open());
    return Materialize();
  }

  Result<bool> Next(Row* out) override {
    if (spilled_) return MergeNext(out);
    if (pos_ >= rows_.size()) return false;
    *out = rows_[pos_++];
    return true;
  }

  Result<bool> NextBatch(RowBatch* out, int max_rows) override {
    if (spilled_) return ExecNode::NextBatch(out, max_rows);
    return SliceRows(rows_, &pos_, max_rows, out);
  }

  Status Restart() override {
    DHQP_RETURN_NOT_OK(child_->Restart());
    return Materialize();
  }

 private:
  Status ResolveKeys() {
    keys_.clear();
    const auto& positions = child_->col_pos();
    for (const auto& [col, asc] : op_->sort_keys) {
      auto it = positions.find(col);
      if (it == positions.end()) {
        return Status::Internal("sort key column not in input");
      }
      keys_.emplace_back(it->second, asc);
    }
    return Status::OK();
  }

  bool RowLess(const Row& a, const Row& b) const {
    for (const auto& [pos, asc] : keys_) {
      int c = a[static_cast<size_t>(pos)].Compare(b[static_cast<size_t>(pos)]);
      if (c != 0) return asc ? c < 0 : c > 0;
    }
    return false;
  }

  void SortRows() {
    std::stable_sort(
        rows_.begin(), rows_.end(),
        [this](const Row& a, const Row& b) { return RowLess(a, b); });
  }

  /// Sorts the buffered rows and writes them out as one external run,
  /// releasing their memory.
  Status SpillRun() {
    SortRows();
    DHQP_ASSIGN_OR_RETURN(
        auto run, spill::SpillFile::Create(ctx_->spill_dir,
                                           SpillTally(profile_)));
    for (const Row& r : rows_) DHQP_RETURN_NOT_OK(run->Append(r));
    DHQP_RETURN_NOT_OK(run->FinishWrite());
    RecordSpill(ctx_, profile_, *run);
    runs_.push_back(std::move(run));
    rows_.clear();
    mem_.ReleaseAll();
    return Status::OK();
  }

  Status Materialize() {
    rows_.clear();
    pos_ = 0;
    runs_.clear();
    heap_.clear();
    spilled_ = false;
    mem_.ReleaseAll();
    mem_.Bind(profile_, ctx_->memory);
    DHQP_RETURN_NOT_OK(ResolveKeys());
    auto take = [&](Row& r) -> Status {
      const int64_t rb = RowMemBytes(r);
      if (!rows_.empty() && GrantExceeded(ctx_, mem_.pending(), rb)) {
        DHQP_RETURN_NOT_OK(SpillRun());
      }
      mem_.Add(rb);
      rows_.push_back(std::move(r));
      return Status::OK();
    };
    const int bs = ctx_->options.exec_batch_rows;
    if (bs > 0) {
      RowBatch batch;
      while (true) {
        DHQP_ASSIGN_OR_RETURN(bool has, child_->NextBatch(&batch, bs));
        if (!has) break;
        for (Row& r : batch.rows) DHQP_RETURN_NOT_OK(take(r));
      }
    } else {
      Row row;
      while (true) {
        DHQP_ASSIGN_OR_RETURN(bool has, child_->Next(&row));
        if (!has) break;
        Row copy = row;
        DHQP_RETURN_NOT_OK(take(copy));
      }
    }
    mem_.Flush();
    if (runs_.empty()) {
      SortRows();
      return Status::OK();
    }
    // External path: the tail becomes the final run, then a k-way merge
    // streams the runs back in order.
    if (!rows_.empty()) DHQP_RETURN_NOT_OK(SpillRun());
    spilled_ = true;
    return OpenMerge();
  }

  struct MergeEntry {
    Row row;
    size_t run;
  };

  /// Heap order: true when `a` must come after `b`. Equal keys break by run
  /// index — runs were written in arrival order and stable_sort'ed, so this
  /// reproduces the in-memory stable sort exactly.
  bool MergeAfter(const MergeEntry& a, const MergeEntry& b) const {
    if (RowLess(b.row, a.row)) return true;
    if (RowLess(a.row, b.row)) return false;
    return a.run > b.run;
  }

  Status OpenMerge() {
    heap_.clear();
    Row row;
    for (size_t i = 0; i < runs_.size(); ++i) {
      DHQP_RETURN_NOT_OK(runs_[i]->Rewind());
      DHQP_ASSIGN_OR_RETURN(bool has, runs_[i]->Next(&row));
      if (has) heap_.push_back(MergeEntry{std::move(row), i});
    }
    auto after = [this](const MergeEntry& a, const MergeEntry& b) {
      return MergeAfter(a, b);
    };
    std::make_heap(heap_.begin(), heap_.end(), after);
    return Status::OK();
  }

  Result<bool> MergeNext(Row* out) {
    if (heap_.empty()) return false;
    auto after = [this](const MergeEntry& a, const MergeEntry& b) {
      return MergeAfter(a, b);
    };
    std::pop_heap(heap_.begin(), heap_.end(), after);
    MergeEntry e = std::move(heap_.back());
    heap_.pop_back();
    *out = std::move(e.row);
    DHQP_ASSIGN_OR_RETURN(bool has, runs_[e.run]->Next(&e.row));
    if (has) {
      heap_.push_back(std::move(e));
      std::push_heap(heap_.begin(), heap_.end(), after);
    }
    return true;
  }

  std::unique_ptr<ExecNode> child_;
  ExecContext* ctx_;
  std::vector<Row> rows_;
  std::vector<std::pair<int, bool>> keys_;  ///< (position, ascending).
  OperatorMem mem_;
  size_t pos_ = 0;
  // External-merge state (grant-enforced spill).
  bool spilled_ = false;
  std::vector<std::unique_ptr<spill::SpillFile>> runs_;
  std::vector<MergeEntry> heap_;
};

// Spool (§4.1.4): materializes the child once; rescans are served from the
// copy "without having to request the data from the remote sources again".
class SpoolNode : public ExecNode {
 public:
  SpoolNode(PhysicalOpPtr op, std::unique_ptr<ExecNode> child,
            ExecContext* ctx)
      : ExecNode(std::move(op)), child_(std::move(child)), ctx_(ctx) {}

  Status Open() override {
    DHQP_RETURN_NOT_OK(child_->Open());
    rows_.clear();
    mem_.ReleaseAll();
    file_.reset();
    filled_ = false;
    pos_ = 0;
    return Status::OK();
  }

  Result<bool> Next(Row* out) override {
    DHQP_RETURN_NOT_OK(Fill());
    if (file_ != nullptr) return file_->Next(out);
    if (pos_ >= rows_.size()) return false;
    *out = rows_[pos_++];
    return true;
  }

  Result<bool> NextBatch(RowBatch* out, int max_rows) override {
    DHQP_RETURN_NOT_OK(Fill());
    if (file_ != nullptr) return ExecNode::NextBatch(out, max_rows);
    return SliceRows(rows_, &pos_, max_rows, out);
  }

  Status Restart() override {
    if (filled_) {
      ctx_->stats.spool_rescans++;
      pos_ = 0;
      if (file_ != nullptr) return file_->Rewind();
      return Status::OK();
    }
    return Open();
  }

 private:
  /// Moves the buffered rows to a spill file; later rows append directly.
  /// Spool rescans reread the file (Rewind) instead of re-executing.
  Status StartSpill() {
    DHQP_ASSIGN_OR_RETURN(
        file_, spill::SpillFile::Create(ctx_->spill_dir,
                                        SpillTally(profile_)));
    for (const Row& r : rows_) DHQP_RETURN_NOT_OK(file_->Append(r));
    rows_.clear();
    mem_.ReleaseAll();
    return Status::OK();
  }

  Status Fill() {
    if (filled_) return Status::OK();
    mem_.Bind(profile_, ctx_->memory);
    auto take = [&](Row& r) -> Status {
      if (file_ != nullptr) return file_->Append(r);
      const int64_t rb = RowMemBytes(r);
      if (!rows_.empty() && GrantExceeded(ctx_, mem_.pending(), rb)) {
        DHQP_RETURN_NOT_OK(StartSpill());
        return file_->Append(r);
      }
      mem_.Add(rb);
      rows_.push_back(std::move(r));
      return Status::OK();
    };
    const int bs = ctx_->options.exec_batch_rows;
    if (bs > 0) {
      RowBatch batch;
      while (true) {
        DHQP_ASSIGN_OR_RETURN(bool has, child_->NextBatch(&batch, bs));
        if (!has) break;
        for (Row& r : batch.rows) DHQP_RETURN_NOT_OK(take(r));
      }
    } else {
      Row row;
      while (true) {
        DHQP_ASSIGN_OR_RETURN(bool has, child_->Next(&row));
        if (!has) break;
        Row copy = row;
        DHQP_RETURN_NOT_OK(take(copy));
      }
    }
    mem_.Flush();
    if (file_ != nullptr) {
      DHQP_RETURN_NOT_OK(file_->FinishWrite());
      RecordSpill(ctx_, profile_, *file_);
      DHQP_RETURN_NOT_OK(file_->Rewind());
    }
    filled_ = true;
    return Status::OK();
  }

  std::unique_ptr<ExecNode> child_;
  ExecContext* ctx_;
  std::vector<Row> rows_;
  OperatorMem mem_;
  std::unique_ptr<spill::SpillFile> file_;  ///< Set once the grant overflows.
  bool filled_ = false;
  size_t pos_ = 0;
};

// What a Concat branch touches, for deciding whether branches may be
// drained concurrently (partitioned views over multiple linked servers,
// §4.2 / Fig 4): branches must not write shared context (correlation
// parameters) and must not share a provider session with another branch.
struct BranchProfile {
  bool safe = true;        ///< No ctx->params writes, no full-text service.
  bool has_remote = false;
  std::set<int> sources;   ///< Source ids (kLocalSource for local tables).
};

void ProfileSubtree(const PhysicalOp& op, BranchProfile* profile) {
  if (!op.remote_params.empty()) profile->safe = false;
  switch (op.kind) {
    case PhysicalOpKind::kRemoteQuery:
      profile->has_remote = true;
      profile->sources.insert(op.source_id);
      break;
    case PhysicalOpKind::kRemoteScan:
    case PhysicalOpKind::kRemoteRange:
    case PhysicalOpKind::kRemoteFetch:
      profile->has_remote = true;
      profile->sources.insert(op.table.source_id);
      break;
    case PhysicalOpKind::kTableScan:
    case PhysicalOpKind::kIndexRange:
      profile->sources.insert(kLocalSource);
      break;
    case PhysicalOpKind::kFullTextLookup:
      profile->safe = false;  // Service is not vetted for concurrent use.
      break;
    default:
      break;
  }
  for (const PhysicalOpPtr& child : op.children) {
    ProfileSubtree(*child, profile);
  }
}

// UNION ALL / partitioned-view concatenation. Remote branches over distinct
// linked servers are opened and drained concurrently up to
// ExecOptions::concat_dop (the paper's multi-member fan-out, §4.1.5), so
// member links pay their latency in parallel; otherwise branches run
// strictly sequentially as before.
class ConcatNode : public ExecNode {
 public:
  ConcatNode(PhysicalOpPtr op, std::vector<std::unique_ptr<ExecNode>> children,
             ExecContext* ctx)
      : ExecNode(std::move(op)),
        children_(std::move(children)),
        ctx_(ctx),
        queue_(static_cast<size_t>(ctx->options.prefetch_queue_depth > 0
                                       ? ctx->options.prefetch_queue_depth
                                       : 2)) {}

  ~ConcatNode() override { StopWorkers(); }

  Status Open() override {
    StopWorkers();
    current_ = 0;
    opened_current_ = false;
    launched_ = false;
    batch_.clear();
    batch_pos_ = 0;
    parallel_ = DecideParallel();
    return Status::OK();
  }

  Result<bool> Next(Row* out) override {
    if (parallel_) return ParallelNext(out);
    while (current_ < children_.size()) {
      if (!opened_current_) {
        if (children_[current_]->op().kind != PhysicalOpKind::kEmptyTable) {
          ctx_->stats.partitions_opened++;
        }
        Status st = children_[current_]->Open();
        if (!st.ok()) {
          if (MaybeSkipMember(*children_[current_], st, /*rows_emitted=*/0)) {
            ++current_;
            continue;
          }
          return st;
        }
        opened_current_ = true;
        current_rows_ = 0;
      }
      Row in;
      Result<bool> has = children_[current_]->Next(&in);
      if (!has.ok()) {
        if (MaybeSkipMember(*children_[current_], has.status(),
                            current_rows_)) {
          ++current_;
          opened_current_ = false;
          continue;
        }
        return has.status();
      }
      if (*has) {
        // Align branch columns to the concat's output positionally.
        ++current_rows_;
        *out = std::move(in);
        return true;
      }
      ++current_;
      opened_current_ = false;
    }
    return false;
  }

  Result<bool> NextBatch(RowBatch* out, int max_rows) override {
    if (parallel_) return ParallelNextBatch(out, max_rows);
    out->clear();
    if (max_rows <= 0) return false;
    while (current_ < children_.size()) {
      if (!opened_current_) {
        if (children_[current_]->op().kind != PhysicalOpKind::kEmptyTable) {
          ctx_->stats.partitions_opened++;
        }
        Status st = children_[current_]->Open();
        if (!st.ok()) {
          if (MaybeSkipMember(*children_[current_], st, /*rows_emitted=*/0)) {
            ++current_;
            continue;
          }
          return st;
        }
        opened_current_ = true;
        current_rows_ = 0;
      }
      Result<bool> has = children_[current_]->NextBatch(out, max_rows);
      if (!has.ok()) {
        // A failing NextBatch surfaces no rows (mid-batch errors are
        // deferred behind their rows), so the member-skip accounting sees
        // exactly the rows already handed out.
        if (MaybeSkipMember(*children_[current_], has.status(),
                            current_rows_)) {
          ++current_;
          opened_current_ = false;
          out->clear();
          continue;
        }
        return has.status();
      }
      if (*has) {
        current_rows_ += static_cast<int64_t>(out->rows.size());
        return true;
      }
      ++current_;
      opened_current_ = false;
    }
    return false;
  }

  Status Restart() override { return Open(); }

 private:
  /// Rows a worker buffers locally before publishing, to keep queue
  /// synchronization off the per-row path
  /// (ExecOptions::concat_worker_batch_rows guards against <= 0).
  size_t WorkerBatchRows() const {
    return ctx_->options.concat_worker_batch_rows > 0
               ? static_cast<size_t>(ctx_->options.concat_worker_batch_rows)
               : 64;
  }

  bool DecideParallel() const {
    int dop = ctx_->options.concat_dop;
    if (dop <= 1 || children_.size() < 2) return false;
    size_t total_sources = 0;
    std::set<int> all_sources;
    int remote_branches = 0;
    for (const auto& child : children_) {
      BranchProfile profile;
      ProfileSubtree(child->op(), &profile);
      if (!profile.safe) return false;
      if (profile.has_remote) ++remote_branches;
      total_sources += profile.sources.size();
      all_sources.insert(profile.sources.begin(), profile.sources.end());
    }
    // Two branches hitting the same source would share one provider
    // session across threads; keep those sequential.
    if (all_sources.size() != total_sources) return false;
    return remote_branches >= 2;
  }

  void LaunchWorkers() {
    launched_ = true;
    next_branch_.store(0);
    first_error_ = Status::OK();
    queue_.Reset();
    size_t dop = std::min<size_t>(
        static_cast<size_t>(ctx_->options.concat_dop), children_.size());
    active_workers_.store(static_cast<int>(dop));
    workers_.reserve(dop);
    // Workers inherit the launching query's wait tally and activity id
    // (both thread-local on the consumer thread running this).
    for (size_t i = 0; i < dop; ++i) {
      workers_.emplace_back([this, i, query_waits = waits::CurrentQueryTally(),
                             aid = activity::Current(),
                             etag = trace::CurrentEngineTag()] {
        trace::Tracer::SetCurrentThreadName("concat.worker" +
                                            std::to_string(i));
        waits::ScopedQueryTally tally(query_waits);
        activity::Scope act(aid);
        trace::EngineTagScope engine_tag(etag);
        WorkerLoop();
      });
    }
  }

  /// Charges one blocked Concat-queue interval to the query and this
  /// operator.
  void ChargeQueueWait(int64_t ticks) {
    waits::RecordWait(waits::WaitType::kConcatQueue, ticks,
                      profile_ != nullptr ? &profile_->wait_tally : nullptr);
  }

  void WorkerLoop() {
    size_t i;
    bool aborted = false;
    while (!aborted &&
           (i = next_branch_.fetch_add(1)) < children_.size()) {
      ExecNode* child = children_[i].get();
      if (child->op().kind != PhysicalOpKind::kEmptyTable) {
        ctx_->stats.partitions_opened++;
      }
      ctx_->stats.parallel_branches++;
      Status st = child->Open();
      if (!st.ok()) {
        if (MaybeSkipMember(*child, st, /*rows_emitted=*/0)) continue;
        RecordError(st);
        break;
      }
      const size_t worker_batch = WorkerBatchRows();
      const bool batched = ctx_->options.exec_batch_rows > 0;
      RowBatch batch;
      bool pushed_any = false;
      RowBatch pull;
      while (true) {
        Result<bool> has(false);
        if (batched) {
          // Pull whole worker batches through the branch's batch path,
          // accumulating to the same publish cadence row-at-a-time uses —
          // so whether rows have been published when an error arrives (the
          // member-skip decision below) does not depend on the mode.
          has = child->NextBatch(&pull, static_cast<int>(worker_batch));
          if (has.ok() && *has) {
            if (batch.rows.empty()) {
              std::swap(batch, pull);
            } else {
              std::move(pull.rows.begin(), pull.rows.end(),
                        std::back_inserter(batch.rows));
            }
            pull.clear();
          }
        } else {
          Row row;
          has = child->Next(&row);
          if (has.ok() && *has) batch.rows.push_back(std::move(row));
        }
        if (!has.ok()) {
          // Skippable only while the branch's rows are all still local to
          // this worker: once a batch is published it cannot be retracted,
          // so a partially-consumed member must fail the whole query.
          if (!pushed_any &&
              MaybeSkipMember(*child, has.status(), /*rows_emitted=*/0)) {
            batch.clear();
            break;
          }
          RecordError(has.status());
          aborted = true;
          break;
        }
        if (!*has) break;
        if (batch.rows.size() >= worker_batch) {
          if (!queue_.Push(std::move(batch),
                           [this](int64_t t) { ChargeQueueWait(t); })) {
            aborted = true;
            break;
          }
          pushed_any = true;
          batch = RowBatch{};
        }
      }
      if (!aborted && !batch.empty() &&
          !queue_.Push(std::move(batch),
                       [this](int64_t t) { ChargeQueueWait(t); })) {
        aborted = true;
      }
    }
    if (active_workers_.fetch_sub(1) == 1) queue_.Close();
  }

  void RecordError(Status st) {
    {
      std::lock_guard<std::mutex> lock(error_mu_);
      if (first_error_.ok()) first_error_ = std::move(st);
    }
    queue_.Close();  // Fail fast: wake the consumer and the other workers.
  }

  /// Graceful degradation (ExecOptions::skip_unreachable_members): returns
  /// true when a member's network failure should drop the member instead of
  /// failing the query — only if the member has not surfaced any row yet.
  bool MaybeSkipMember(const ExecNode& child, const Status& st,
                       int64_t rows_emitted) {
    if (!ctx_->options.skip_unreachable_members) return false;
    if (st.code() != StatusCode::kNetworkError) return false;
    if (rows_emitted > 0) return false;
    ctx_->stats.members_skipped++;
    BranchProfile profile;
    ProfileSubtree(child.op(), &profile);
    std::string member = "local";
    for (int source : profile.sources) {
      if (source != kLocalSource && ctx_->catalog != nullptr) {
        member = "server '" + ctx_->catalog->ServerName(source) + "'";
        break;
      }
    }
    std::lock_guard<std::mutex> lock(ctx_->warnings_mu);
    ctx_->warnings.push_back("partitioned view: skipped unreachable member on " +
                             member + ": " + st.message());
    return true;
  }

  Result<bool> ParallelNext(Row* out) {
    if (!launched_) LaunchWorkers();
    if (batch_pos_ >= batch_.rows.size()) {
      RowBatch batch;
      bool got = queue_.TryPop(&batch);
      if (!got) {
        got = queue_.Pop(&batch, [this](int64_t t) { ChargeQueueWait(t); });
        if (got) ctx_->stats.prefetch_stalls++;
      }
      if (!got) {
        JoinWorkers();
        std::lock_guard<std::mutex> lock(error_mu_);
        if (!first_error_.ok()) return first_error_;
        return false;
      }
      batch_ = std::move(batch);
      batch_pos_ = 0;
    }
    *out = std::move(batch_.rows[batch_pos_++]);
    return true;
  }

  Result<bool> ParallelNextBatch(RowBatch* out, int max_rows) {
    if (!launched_) LaunchWorkers();
    out->clear();
    if (max_rows <= 0) return false;
    while (batch_pos_ >= batch_.rows.size()) {
      RowBatch batch;
      bool got = queue_.TryPop(&batch);
      if (!got) {
        got = queue_.Pop(&batch, [this](int64_t t) { ChargeQueueWait(t); });
        if (got) ctx_->stats.prefetch_stalls++;
      }
      if (!got) {
        JoinWorkers();
        std::lock_guard<std::mutex> lock(error_mu_);
        if (!first_error_.ok()) return first_error_;
        return false;
      }
      batch_ = std::move(batch);
      batch_pos_ = 0;
    }
    if (batch_pos_ == 0 &&
        batch_.rows.size() <= static_cast<size_t>(max_rows)) {
      // Hand the worker's buffer out wholesale — no per-row copies.
      *out = std::move(batch_);
      batch_ = RowBatch{};
      return true;
    }
    const size_t take = std::min(batch_.rows.size() - batch_pos_,
                                 static_cast<size_t>(max_rows));
    out->rows.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      out->rows.push_back(std::move(batch_.rows[batch_pos_ + i]));
    }
    batch_pos_ += take;
    return true;
  }

  void JoinWorkers() {
    for (std::thread& t : workers_) {
      if (t.joinable()) t.join();
    }
    workers_.clear();
  }

  void StopWorkers() {
    if (workers_.empty()) return;
    queue_.Close();
    JoinWorkers();
  }

  std::vector<std::unique_ptr<ExecNode>> children_;
  ExecContext* ctx_;

  // Sequential mode.
  size_t current_ = 0;
  bool opened_current_ = false;
  int64_t current_rows_ = 0;  ///< Rows the current branch has emitted.

  // Parallel mode.
  bool parallel_ = false;
  bool launched_ = false;
  BoundedQueue<RowBatch> queue_;
  std::vector<std::thread> workers_;
  std::atomic<size_t> next_branch_{0};
  std::atomic<int> active_workers_{0};
  std::mutex error_mu_;
  Status first_error_;
  RowBatch batch_;
  size_t batch_pos_ = 0;
};

// ---------------------------------------------------------------------------
// Joins.
// ---------------------------------------------------------------------------

class HashJoinNode : public ExecNode {
 public:
  HashJoinNode(PhysicalOpPtr op, std::unique_ptr<ExecNode> left,
               std::unique_ptr<ExecNode> right, ExecContext* ctx)
      : ExecNode(std::move(op)),
        left_(std::move(left)),
        right_(std::move(right)),
        ctx_(ctx) {}

  Status Open() override {
    DHQP_RETURN_NOT_OK(left_->Open());
    DHQP_RETURN_NOT_OK(right_->Open());
    return Build();
  }

  Result<bool> Next(Row* out) override {
    EvalEnv env;
    env.col_pos = &left_->col_pos();
    env.col_pos2 = &right_->col_pos();
    env.params = &ctx_->params;
    env.current_date = ctx_->current_date;
    return Step(env, out, /*batched=*/false);
  }

  Result<bool> NextBatch(RowBatch* out, int max_rows) override {
    out->clear();
    if (max_rows <= 0) return false;
    // One env setup per batch; probe input arrives through the batch path
    // (Step refills probe_batch_ as needed).
    EvalEnv env;
    env.col_pos = &left_->col_pos();
    env.col_pos2 = &right_->col_pos();
    env.params = &ctx_->params;
    env.current_date = ctx_->current_date;
    Row row;
    for (int i = 0; i < max_rows; ++i) {
      DHQP_ASSIGN_OR_RETURN(bool has, Step(env, &row, /*batched=*/true));
      if (!has) break;
      out->rows.push_back(std::move(row));
    }
    return !out->rows.empty();
  }

  Result<bool> Step(EvalEnv& env, Row* out, bool batched) {
    while (true) {
      if (have_probe_) {
        env.row = &probe_;
        if (op_->join_type == JoinType::kSemi ||
            op_->join_type == JoinType::kAnti) {
          bool any = false;
          for (const Row& build_row : *matches_) {
            env.row2 = &build_row;
            bool pass = true;
            if (op_->predicate != nullptr) {
              DHQP_ASSIGN_OR_RETURN(pass, EvalPredicate(*op_->predicate, env));
            }
            if (pass) {
              any = true;
              break;
            }
          }
          have_probe_ = false;
          if (any == (op_->join_type == JoinType::kSemi)) {
            *out = probe_;
            return true;
          }
          continue;
        }
        // Inner / left outer: emit every passing combination.
        while (match_pos_ < matches_->size()) {
          const Row& build_row = (*matches_)[match_pos_++];
          env.row2 = &build_row;
          bool pass = true;
          if (op_->predicate != nullptr) {
            DHQP_ASSIGN_OR_RETURN(pass, EvalPredicate(*op_->predicate, env));
          }
          if (!pass) continue;
          any_emitted_ = true;
          *out = probe_;
          out->insert(out->end(), build_row.begin(), build_row.end());
          return true;
        }
        have_probe_ = false;
        if (op_->join_type == JoinType::kLeftOuter && !any_emitted_) {
          *out = probe_;
          for (size_t i = 0; i < right_->op().output_cols.size(); ++i) {
            out->push_back(Value::Null(right_->op().output_types[i]));
          }
          return true;
        }
        continue;
      }
      // Advance to the next probe row. Once the build side spilled, probe
      // input comes from the Grace partition files instead of left_ (which
      // was fully drained into them).
      if (probe_from_file_) {
        DHQP_ASSIGN_OR_RETURN(bool has, NextSpilledProbe(&probe_));
        if (!has) return false;
      } else if (batched) {
        if (probe_pos_ >= probe_batch_.rows.size()) {
          DHQP_ASSIGN_OR_RETURN(
              bool more,
              left_->NextBatch(&probe_batch_, ctx_->options.exec_batch_rows));
          if (!more) return false;
          probe_pos_ = 0;
        }
        probe_ = std::move(probe_batch_.rows[probe_pos_++]);
      } else {
        DHQP_ASSIGN_OR_RETURN(bool has, left_->Next(&probe_));
        if (!has) return false;
      }
      have_probe_ = true;
      any_emitted_ = false;
      match_pos_ = 0;
      IndexKey key;
      bool null_key = false;
      env.row = &probe_;
      env.row2 = nullptr;
      for (const auto& [l, r] : op_->key_pairs) {
        DHQP_ASSIGN_OR_RETURN(Value v, EvalExpr(*l, env));
        if (v.is_null()) {
          null_key = true;
          break;
        }
        key.push_back(std::move(v));
      }
      static const std::vector<Row>& kNoMatches = *new std::vector<Row>();
      if (null_key) {
        matches_ = &kNoMatches;
      } else {
        auto it = table_.find(key);
        matches_ = it == table_.end() ? &kNoMatches : &it->second;
      }
    }
  }

  Status Restart() override {
    DHQP_RETURN_NOT_OK(left_->Restart());
    DHQP_RETURN_NOT_OK(right_->Restart());
    return Build();
  }

 private:
  Status Build() {
    table_.clear();
    mem_.ReleaseAll();
    mem_.Bind(profile_, ctx_->memory);
    match_pos_ = 0;
    static const std::vector<Row>& kNone = *new std::vector<Row>();
    matches_ = &kNone;
    have_probe_ = false;
    any_emitted_ = false;
    probe_batch_.clear();
    probe_pos_ = 0;
    spilling_ = false;
    probe_from_file_ = false;
    build_parts_.clear();
    worklist_.clear();
    probe_reader_.reset();
    EvalEnv env;
    env.col_pos = &right_->col_pos();
    env.params = &ctx_->params;
    env.current_date = ctx_->current_date;
    auto insert = [&](Row& row) -> Status {
      env.row = &row;
      IndexKey key;
      bool null_key = false;
      for (const auto& [l, r] : op_->key_pairs) {
        DHQP_ASSIGN_OR_RETURN(Value v, EvalExpr(*r, env));
        if (v.is_null()) {
          null_key = true;
          break;
        }
        key.push_back(std::move(v));
      }
      if (null_key) return Status::OK();  // Build nulls never match.
      // Key values duplicate row values; RowMemBytes(key) covers the
      // map-node side of the entry well enough for accounting.
      const int64_t add = RowMemBytes(row) + RowMemBytes(key);
      if (!spilling_ && !table_.empty() &&
          GrantExceeded(ctx_, mem_.pending(), add)) {
        DHQP_RETURN_NOT_OK(StartBuildSpill());
      }
      if (spilling_) {
        return build_parts_[static_cast<size_t>(SpillPartOf(key, 0))]->Append(
            row);
      }
      mem_.Add(add);
      table_[key].push_back(std::move(row));
      return Status::OK();
    };
    const int bs = ctx_->options.exec_batch_rows;
    if (bs > 0) {
      RowBatch batch;
      while (true) {
        DHQP_ASSIGN_OR_RETURN(bool has, right_->NextBatch(&batch, bs));
        if (!has) break;
        for (Row& r : batch.rows) DHQP_RETURN_NOT_OK(insert(r));
      }
    } else {
      Row row;
      while (true) {
        DHQP_ASSIGN_OR_RETURN(bool has, right_->Next(&row));
        if (!has) break;
        DHQP_RETURN_NOT_OK(insert(row));
      }
    }
    mem_.Flush();
    if (spilling_) return PartitionProbeInput();
    return Status::OK();
  }

  // -- Grace hash join (grant-enforced spill) ------------------------------
  //
  // When the build table breaches the grant, it is flushed to kSpillFanout
  // partition files keyed by a hash of the join key; the probe input is
  // then drained and partitioned the same way, and each (build, probe) pair
  // is processed independently — load the build partition into table_,
  // stream the probe partition through the normal Step logic. A build
  // partition that still exceeds the grant is recursively repartitioned
  // (disjoint hash bits per level) up to ctx_->spill_depth_cap, past which
  // it loads regardless: correctness over enforcement.

  struct PartPair {
    std::unique_ptr<spill::SpillFile> build;
    std::unique_ptr<spill::SpillFile> probe;
    int depth = 0;
  };

  Status MakeParts(std::vector<std::unique_ptr<spill::SpillFile>>* parts) {
    return MakeSpillParts(ctx_, profile_, parts);
  }

  /// Flushes the in-memory build table to depth-0 partition files;
  /// subsequent build rows append straight to their partition.
  Status StartBuildSpill() {
    DHQP_RETURN_NOT_OK(MakeParts(&build_parts_));
    for (const auto& [key, rows] : table_) {
      auto* f = build_parts_[static_cast<size_t>(SpillPartOf(key, 0))].get();
      for (const Row& r : rows) DHQP_RETURN_NOT_OK(f->Append(r));
    }
    table_.clear();
    mem_.ReleaseAll();
    spilling_ = true;
    return Status::OK();
  }

  /// Evaluates this row's probe key (left side of each key pair). A NULL
  /// component leaves the key partial — such rows never match, but anti /
  /// left-outer joins must still emit them, so they are routed by the hash
  /// of the prefix (deterministic at every recursion depth) rather than
  /// dropped.
  Status ProbeKeyOf(EvalEnv& env, const Row& row, IndexKey* key) {
    key->clear();
    env.row = &row;
    for (const auto& [l, r] : op_->key_pairs) {
      DHQP_ASSIGN_OR_RETURN(Value v, EvalExpr(*l, env));
      if (v.is_null()) break;
      key->push_back(std::move(v));
    }
    return Status::OK();
  }

  /// Drains left_ entirely into depth-0 probe partition files and queues
  /// the (build, probe) pairs that can produce output.
  Status PartitionProbeInput() {
    for (auto& f : build_parts_) DHQP_RETURN_NOT_OK(f->FinishWrite());
    std::vector<std::unique_ptr<spill::SpillFile>> probe_parts;
    DHQP_RETURN_NOT_OK(MakeParts(&probe_parts));
    EvalEnv env;
    env.col_pos = &left_->col_pos();
    env.params = &ctx_->params;
    env.current_date = ctx_->current_date;
    IndexKey key;
    auto route = [&](const Row& row) -> Status {
      DHQP_RETURN_NOT_OK(ProbeKeyOf(env, row, &key));
      return probe_parts[static_cast<size_t>(SpillPartOf(key, 0))]->Append(
          row);
    };
    const int bs = ctx_->options.exec_batch_rows;
    if (bs > 0) {
      RowBatch batch;
      while (true) {
        DHQP_ASSIGN_OR_RETURN(bool has, left_->NextBatch(&batch, bs));
        if (!has) break;
        for (const Row& r : batch.rows) DHQP_RETURN_NOT_OK(route(r));
      }
    } else {
      Row row;
      while (true) {
        DHQP_ASSIGN_OR_RETURN(bool has, left_->Next(&row));
        if (!has) break;
        DHQP_RETURN_NOT_OK(route(row));
      }
    }
    for (int i = 0; i < kSpillFanout; ++i) {
      DHQP_RETURN_NOT_OK(probe_parts[static_cast<size_t>(i)]->FinishWrite());
      auto& bp = build_parts_[static_cast<size_t>(i)];
      auto& pp = probe_parts[static_cast<size_t>(i)];
      if (bp->rows() > 0) RecordSpill(ctx_, profile_, *bp);
      if (pp->rows() > 0) RecordSpill(ctx_, profile_, *pp);
      // Probe rows drive all supported join types (inner/semi/anti/left
      // outer emit at most per probe row), so an empty probe partition
      // produces nothing; drop the pair (files delete themselves).
      if (pp->rows() > 0) {
        worklist_.push_back(PartPair{std::move(bp), std::move(pp), 0});
      }
    }
    build_parts_.clear();
    probe_from_file_ = true;
    return Status::OK();
  }

  /// Splits a partition whose build side still exceeds the grant into
  /// kSpillFanout sub-pairs at depth+1. table_ holds the partial load (and
  /// `key`/`row` the entry that overflowed); pair.build is mid-read.
  Status Repartition(PartPair pair, IndexKey key, Row row) {
    const int depth = pair.depth + 1;
    std::vector<std::unique_ptr<spill::SpillFile>> subs_b, subs_p;
    DHQP_RETURN_NOT_OK(MakeParts(&subs_b));
    DHQP_RETURN_NOT_OK(MakeParts(&subs_p));
    for (const auto& [k, rows] : table_) {
      auto* f = subs_b[static_cast<size_t>(SpillPartOf(k, depth))].get();
      for (const Row& r : rows) DHQP_RETURN_NOT_OK(f->Append(r));
    }
    table_.clear();
    mem_.ReleaseAll();
    DHQP_RETURN_NOT_OK(
        subs_b[static_cast<size_t>(SpillPartOf(key, depth))]->Append(row));
    EvalEnv env;
    env.col_pos = &right_->col_pos();
    env.params = &ctx_->params;
    env.current_date = ctx_->current_date;
    Row r;
    while (true) {
      DHQP_ASSIGN_OR_RETURN(bool has, pair.build->Next(&r));
      if (!has) break;
      env.row = &r;
      IndexKey k;
      bool null_key = false;
      for (const auto& [l, rt] : op_->key_pairs) {
        DHQP_ASSIGN_OR_RETURN(Value v, EvalExpr(*rt, env));
        if (v.is_null()) {
          null_key = true;
          break;
        }
        k.push_back(std::move(v));
      }
      if (null_key) continue;
      DHQP_RETURN_NOT_OK(
          subs_b[static_cast<size_t>(SpillPartOf(k, depth))]->Append(r));
    }
    DHQP_RETURN_NOT_OK(pair.probe->Rewind());
    EvalEnv penv;
    penv.col_pos = &left_->col_pos();
    penv.params = &ctx_->params;
    penv.current_date = ctx_->current_date;
    IndexKey pk;
    while (true) {
      DHQP_ASSIGN_OR_RETURN(bool has, pair.probe->Next(&r));
      if (!has) break;
      DHQP_RETURN_NOT_OK(ProbeKeyOf(penv, r, &pk));
      DHQP_RETURN_NOT_OK(
          subs_p[static_cast<size_t>(SpillPartOf(pk, depth))]->Append(r));
    }
    for (int i = 0; i < kSpillFanout; ++i) {
      auto& bp = subs_b[static_cast<size_t>(i)];
      auto& pp = subs_p[static_cast<size_t>(i)];
      DHQP_RETURN_NOT_OK(bp->FinishWrite());
      DHQP_RETURN_NOT_OK(pp->FinishWrite());
      if (bp->rows() > 0) RecordSpill(ctx_, profile_, *bp);
      if (pp->rows() > 0) RecordSpill(ctx_, profile_, *pp);
      if (pp->rows() > 0) {
        worklist_.push_back(PartPair{std::move(bp), std::move(pp), depth});
      }
    }
    return Status::OK();
  }

  /// Loads the next worklist partition's build side into table_ and leaves
  /// its probe file in probe_reader_ (null when the worklist is exhausted).
  /// Repartitions instead when the build side overflows below the depth
  /// cap; at the cap it loads regardless.
  Status LoadNextPartition() {
    while (!worklist_.empty()) {
      PartPair pair = std::move(worklist_.front());
      worklist_.pop_front();
      table_.clear();
      mem_.ReleaseAll();
      DHQP_RETURN_NOT_OK(pair.build->Rewind());
      EvalEnv env;
      env.col_pos = &right_->col_pos();
      env.params = &ctx_->params;
      env.current_date = ctx_->current_date;
      bool repartitioned = false;
      Row row;
      while (true) {
        DHQP_ASSIGN_OR_RETURN(bool has, pair.build->Next(&row));
        if (!has) break;
        env.row = &row;
        IndexKey key;
        bool null_key = false;
        for (const auto& [l, r] : op_->key_pairs) {
          DHQP_ASSIGN_OR_RETURN(Value v, EvalExpr(*r, env));
          if (v.is_null()) {
            null_key = true;
            break;
          }
          key.push_back(std::move(v));
        }
        if (null_key) continue;
        const int64_t add = RowMemBytes(row) + RowMemBytes(key);
        if (!table_.empty() && pair.depth < ctx_->spill_depth_cap &&
            GrantExceeded(ctx_, mem_.pending(), add)) {
          DHQP_RETURN_NOT_OK(
              Repartition(std::move(pair), std::move(key), std::move(row)));
          repartitioned = true;
          break;
        }
        mem_.Add(add);
        table_[std::move(key)].push_back(std::move(row));
      }
      if (repartitioned) continue;
      mem_.Flush();
      DHQP_RETURN_NOT_OK(pair.probe->Rewind());
      probe_reader_ = std::move(pair.probe);
      return Status::OK();
    }
    probe_reader_.reset();
    return Status::OK();
  }

  /// Next probe row across partition files; advances to the next partition
  /// (swapping in its build table) as each probe file drains.
  Result<bool> NextSpilledProbe(Row* out) {
    while (true) {
      if (probe_reader_ != nullptr) {
        DHQP_ASSIGN_OR_RETURN(bool has, probe_reader_->Next(out));
        if (has) return true;
        probe_reader_.reset();
      }
      if (worklist_.empty()) return false;
      DHQP_RETURN_NOT_OK(LoadNextPartition());
      if (probe_reader_ == nullptr) return false;
    }
  }

  struct KeyLess {
    bool operator()(const IndexKey& a, const IndexKey& b) const {
      return CompareKeys(a, b) < 0;
    }
  };

  std::unique_ptr<ExecNode> left_, right_;
  ExecContext* ctx_;
  std::map<IndexKey, std::vector<Row>, KeyLess> table_;
  OperatorMem mem_;
  Row probe_;
  RowBatch probe_batch_;  ///< Batched probe input, reused across pulls.
  size_t probe_pos_ = 0;
  const std::vector<Row>* matches_ = nullptr;
  size_t match_pos_ = 0;
  bool have_probe_ = false;
  bool any_emitted_ = false;
  // Grace-spill state.
  bool spilling_ = false;         ///< Build side overflowed the grant.
  bool probe_from_file_ = false;  ///< left_ drained into partition files.
  std::vector<std::unique_ptr<spill::SpillFile>> build_parts_;
  std::deque<PartPair> worklist_;
  std::unique_ptr<spill::SpillFile> probe_reader_;
};

class NestedLoopsJoinNode : public ExecNode {
 public:
  NestedLoopsJoinNode(PhysicalOpPtr op, std::unique_ptr<ExecNode> outer,
                      std::unique_ptr<ExecNode> inner, ExecContext* ctx)
      : ExecNode(std::move(op)),
        outer_(std::move(outer)),
        inner_(std::move(inner)),
        ctx_(ctx) {}

  Status Open() override {
    DHQP_RETURN_NOT_OK(outer_->Open());
    inner_opened_ = false;
    have_outer_ = false;
    return Status::OK();
  }

  Result<bool> Next(Row* out) override {
    EvalEnv env;
    env.col_pos = &outer_->col_pos();
    env.col_pos2 = &inner_->col_pos();
    env.params = &ctx_->params;
    env.current_date = ctx_->current_date;
    while (true) {
      if (!have_outer_) {
        DHQP_ASSIGN_OR_RETURN(bool has, outer_->Next(&outer_row_));
        if (!has) return false;
        have_outer_ = true;
        matched_ = false;
        // Correlation bindings (parameterized remote queries, §4.1.2):
        // evaluate outer-row expressions into the parameter map before
        // (re)starting the inner side.
        env.row = &outer_row_;
        for (const auto& [name, expr] : op_->remote_params) {
          DHQP_ASSIGN_OR_RETURN(Value v, EvalExpr(*expr, env));
          ctx_->params[name] = std::move(v);
        }
        if (!inner_opened_) {
          DHQP_RETURN_NOT_OK(inner_->Open());
          inner_opened_ = true;
        } else {
          DHQP_RETURN_NOT_OK(inner_->Restart());
        }
      }
      Row inner_row;
      DHQP_ASSIGN_OR_RETURN(bool has_inner, inner_->Next(&inner_row));
      if (!has_inner) {
        bool was_matched = matched_;
        have_outer_ = false;
        if (op_->join_type == JoinType::kAnti && !was_matched) {
          *out = outer_row_;
          return true;
        }
        if (op_->join_type == JoinType::kLeftOuter && !was_matched) {
          *out = outer_row_;
          for (size_t i = 0; i < inner_->op().output_cols.size(); ++i) {
            out->push_back(Value::Null(inner_->op().output_types[i]));
          }
          return true;
        }
        continue;
      }
      env.row = &outer_row_;
      env.row2 = &inner_row;
      bool pass = true;
      if (op_->predicate != nullptr) {
        DHQP_ASSIGN_OR_RETURN(pass, EvalPredicate(*op_->predicate, env));
      }
      if (!pass) continue;
      matched_ = true;
      switch (op_->join_type) {
        case JoinType::kSemi:
          have_outer_ = false;  // One match suffices.
          *out = outer_row_;
          return true;
        case JoinType::kAnti:
          have_outer_ = false;  // Outer row disqualified.
          continue;
        default:
          *out = outer_row_;
          out->insert(out->end(), inner_row.begin(), inner_row.end());
          return true;
      }
    }
  }

  Status Restart() override {
    DHQP_RETURN_NOT_OK(outer_->Restart());
    have_outer_ = false;
    return Status::OK();
  }

 private:
  std::unique_ptr<ExecNode> outer_, inner_;
  ExecContext* ctx_;
  Row outer_row_;
  bool have_outer_ = false;
  bool matched_ = false;
  bool inner_opened_ = false;
};

// Merge join over sorted inputs (inner equi-join).
class MergeJoinNode : public ExecNode {
 public:
  MergeJoinNode(PhysicalOpPtr op, std::unique_ptr<ExecNode> left,
                std::unique_ptr<ExecNode> right, ExecContext* ctx)
      : ExecNode(std::move(op)),
        left_(std::move(left)),
        right_(std::move(right)),
        ctx_(ctx) {}

  Status Open() override {
    DHQP_RETURN_NOT_OK(left_->Open());
    DHQP_RETURN_NOT_OK(right_->Open());
    left_done_ = right_done_ = false;
    done_ = false;
    have_left_ = false;
    group_.clear();
    group_pos_ = 0;
    right_ahead_ = false;
    return Status::OK();
  }

  Result<bool> Next(Row* out) override {
    // Sticky end-of-stream: merge join can terminate while one side still
    // has rows (the other ran out), so a post-EOF call must not advance
    // the surviving child — batched callers probe once past the end.
    if (done_) return false;
    EvalEnv env;
    env.col_pos = &left_->col_pos();
    env.col_pos2 = &right_->col_pos();
    env.params = &ctx_->params;
    env.current_date = ctx_->current_date;
    while (true) {
      // Emit pending (left row x buffered right group) combinations.
      while (have_left_ && group_pos_ < group_.size()) {
        const Row& r = group_[group_pos_++];
        env.row = &left_row_;
        env.row2 = &r;
        bool pass = true;
        if (op_->predicate != nullptr) {
          DHQP_ASSIGN_OR_RETURN(pass, EvalPredicate(*op_->predicate, env));
        }
        if (!pass) continue;
        *out = left_row_;
        out->insert(out->end(), r.begin(), r.end());
        return true;
      }
      // Advance left.
      DHQP_ASSIGN_OR_RETURN(bool has, left_->Next(&left_row_));
      if (!has) {
        done_ = true;
        return false;
      }
      have_left_ = true;
      group_pos_ = 0;
      DHQP_ASSIGN_OR_RETURN(IndexKey lkey, KeyOf(left_row_, true, env));
      // If the buffered group matches, reuse it (duplicate left keys).
      if (!group_.empty() && CompareKeys(lkey, group_key_) == 0) continue;
      // Otherwise advance right until its key >= left key, buffering the
      // equal-key run.
      group_.clear();
      group_pos_ = 0;
      while (true) {
        if (!right_ahead_) {
          DHQP_ASSIGN_OR_RETURN(bool rhas, right_->Next(&right_row_));
          if (!rhas) {
            right_done_ = true;
            break;
          }
          right_ahead_ = true;
        }
        DHQP_ASSIGN_OR_RETURN(IndexKey rkey, KeyOf(right_row_, false, env));
        int c = CompareKeys(rkey, lkey);
        if (c < 0) {
          right_ahead_ = false;  // Skip this right row.
          continue;
        }
        if (c == 0) {
          group_.push_back(right_row_);
          group_key_ = rkey;
          right_ahead_ = false;
          continue;
        }
        break;  // Right is ahead; left must advance.
      }
      if (group_.empty()) {
        have_left_ = false;  // No right match for this left key.
        if (right_done_ && !right_ahead_) {
          // Right exhausted: remaining left rows cannot match.
          done_ = true;
          return false;
        }
        have_left_ = false;
        continue;
      }
      group_key_ = lkey;
    }
  }

  Status Restart() override {
    DHQP_RETURN_NOT_OK(left_->Restart());
    DHQP_RETURN_NOT_OK(right_->Restart());
    left_done_ = right_done_ = false;
    done_ = false;
    have_left_ = false;
    group_.clear();
    group_pos_ = 0;
    right_ahead_ = false;
    return Status::OK();
  }

 private:
  Result<IndexKey> KeyOf(const Row& row, bool left, EvalEnv env) {
    env.row = left ? &row : nullptr;
    env.row2 = left ? nullptr : &row;
    IndexKey key;
    for (const auto& [l, r] : op_->key_pairs) {
      DHQP_ASSIGN_OR_RETURN(Value v, EvalExpr(left ? *l : *r, env));
      key.push_back(std::move(v));
    }
    return key;
  }

  std::unique_ptr<ExecNode> left_, right_;
  ExecContext* ctx_;
  Row left_row_, right_row_;
  bool have_left_ = false, right_ahead_ = false;
  bool left_done_ = false, right_done_ = false;
  bool done_ = false;  ///< Sticky EOF; post-EOF Next must not touch children.
  std::vector<Row> group_;
  IndexKey group_key_;
  size_t group_pos_ = 0;
};

// ---------------------------------------------------------------------------
// Aggregation.
// ---------------------------------------------------------------------------

struct Accumulator {
  int64_t count = 0;
  double sum_d = 0;
  int64_t sum_i = 0;
  bool any = false;
  Value min, max;
  std::set<std::string> distinct;  ///< Fingerprints for DISTINCT.
};

Status Accumulate(const AggregateItem& item, const Value& v,
                  Accumulator* acc) {
  if (item.func != "COUNT*" && v.is_null()) return Status::OK();
  if (item.distinct) {
    std::string fp = DataTypeName(v.type()) + v.ToString();
    if (!acc->distinct.insert(fp).second) return Status::OK();
  }
  acc->count++;
  if (item.func == "SUM" || item.func == "AVG") {
    if (v.type() == DataType::kDouble) {
      acc->sum_d += v.double_value();
    } else {
      acc->sum_i += v.int64_value();
      acc->sum_d += static_cast<double>(v.int64_value());
    }
  } else if (item.func == "MIN") {
    if (!acc->any || v.Compare(acc->min) < 0) acc->min = v;
  } else if (item.func == "MAX") {
    if (!acc->any || v.Compare(acc->max) > 0) acc->max = v;
  }
  acc->any = true;
  return Status::OK();
}

Value Finalize(const AggregateItem& item, const Accumulator& acc) {
  if (item.func == "COUNT" || item.func == "COUNT*") {
    return Value::Int64(acc.count);
  }
  if (!acc.any) return Value::Null(item.type);
  if (item.func == "SUM") {
    return item.type == DataType::kDouble ? Value::Double(acc.sum_d)
                                          : Value::Int64(acc.sum_i);
  }
  if (item.func == "AVG") {
    return Value::Double(acc.sum_d / static_cast<double>(acc.count));
  }
  if (item.func == "MIN") return acc.min;
  return acc.max;  // MAX
}

class HashAggregateNode : public ExecNode {
 public:
  HashAggregateNode(PhysicalOpPtr op, std::unique_ptr<ExecNode> child,
                    ExecContext* ctx)
      : ExecNode(std::move(op)), child_(std::move(child)), ctx_(ctx) {}

  Status Open() override {
    DHQP_RETURN_NOT_OK(child_->Open());
    return Aggregate();
  }

  Result<bool> Next(Row* out) override {
    while (true) {
      if (pos_ < results_.size()) {
        *out = results_[pos_++];
        return true;
      }
      if (pending_.empty()) return false;
      DHQP_RETURN_NOT_OK(ProcessPendingPartition());
    }
  }

  Result<bool> NextBatch(RowBatch* out, int max_rows) override {
    if (spilled_) return ExecNode::NextBatch(out, max_rows);
    return SliceRows(results_, &pos_, max_rows, out);
  }

  Status Restart() override {
    DHQP_RETURN_NOT_OK(child_->Restart());
    return Aggregate();
  }

 private:
  struct KeyLess {
    bool operator()(const IndexKey& a, const IndexKey& b) const {
      return CompareKeys(a, b) < 0;
    }
  };

  using GroupMap = std::map<IndexKey, std::vector<Accumulator>, KeyLess>;

  struct PendingPart {
    std::unique_ptr<spill::SpillFile> file;
    int depth = 0;
  };

  Status Aggregate() {
    results_.clear();
    pos_ = 0;
    spilled_ = false;
    pending_.clear();
    mem_.ReleaseAll();
    mem_.Bind(profile_, ctx_->memory);
    const int64_t acc_bytes = static_cast<int64_t>(
        sizeof(Accumulator) * op_->aggregates.size());
    GroupMap groups;
    // Grace-spill partitions for group keys first seen after the grant
    // filled up. Keys already resident keep accumulating in memory, so a
    // key lives either in `groups` or in exactly one partition file — the
    // partitions need no accumulator merging, just a fresh aggregation
    // pass each (ProcessPendingPartition).
    std::vector<std::unique_ptr<spill::SpillFile>> parts;
    EvalEnv env;
    env.col_pos = &child_->col_pos();
    env.params = &ctx_->params;
    env.current_date = ctx_->current_date;
    // Finds or creates the accumulator group for `key`; leaves *accs null
    // after routing the row to a spill partition instead. Spill mode is
    // STICKY: once the first partition file exists, every key missing from
    // `groups` routes to a file even if the grant pressure has receded —
    // the query-wide tracker moves under concurrent workers, and admitting
    // a key to memory after some of its rows already went to a file would
    // emit that group twice (once from memory, once from the partition's
    // re-aggregation pass).
    auto accs_for = [&](IndexKey& key, const Row& row,
                        std::vector<Accumulator>** accs) -> Status {
      *accs = nullptr;
      auto it = groups.find(key);
      if (it != groups.end()) {
        *accs = &it->second;
        return Status::OK();
      }
      const int64_t add = RowMemBytes(key) + acc_bytes;
      if (parts.empty() &&
          (groups.empty() || !GrantExceeded(ctx_, mem_.pending(), add))) {
        auto [it2, inserted] = groups.try_emplace(std::move(key));
        it2->second.resize(op_->aggregates.size());
        mem_.Add(add);
        *accs = &it2->second;
        return Status::OK();
      }
      if (parts.empty()) {
        DHQP_RETURN_NOT_OK(MakeSpillParts(ctx_, profile_, &parts));
      }
      return parts[static_cast<size_t>(SpillPartOf(key, 0))]->Append(row);
    };
    const int bs = ctx_->options.exec_batch_rows;
    if (bs > 0) {
      // Batched input: group positions are resolved once (the row loop pays
      // a map lookup per group column per row), aggregate arguments are
      // evaluated column-at-a-time, and the scalar (no GROUP BY) case keeps
      // a direct pointer to its single accumulator group.
      std::vector<int> gpos;
      gpos.reserve(op_->group_by.size());
      for (int g : op_->group_by) gpos.push_back(child_->col_pos().at(g));
      std::vector<Accumulator>* scalar_accs = nullptr;
      if (op_->group_by.empty()) {
        auto [it, inserted] = groups.try_emplace(IndexKey{});
        it->second.resize(op_->aggregates.size());
        scalar_accs = &it->second;
      }
      const Value one = Value::Int64(1);  // Placeholder for COUNT(*).
      RowBatch batch;
      std::vector<std::vector<Value>> arg_cols(op_->aggregates.size());
      IndexKey key;
      while (true) {
        DHQP_ASSIGN_OR_RETURN(bool has, child_->NextBatch(&batch, bs));
        if (!has) break;
        for (size_t i = 0; i < op_->aggregates.size(); ++i) {
          if (op_->aggregates[i].arg == nullptr) continue;
          arg_cols[i].clear();
          DHQP_RETURN_NOT_OK(EvalExprBatch(*op_->aggregates[i].arg, env,
                                           batch, /*sel=*/nullptr,
                                           &arg_cols[i]));
        }
        for (size_t r = 0; r < batch.rows.size(); ++r) {
          std::vector<Accumulator>* accs = scalar_accs;
          if (accs == nullptr) {
            const Row& row = batch.rows[r];
            key.clear();
            for (int p : gpos) key.push_back(row[static_cast<size_t>(p)]);
            DHQP_RETURN_NOT_OK(accs_for(key, row, &accs));
            if (accs == nullptr) continue;  // Routed to a spill partition.
          }
          for (size_t i = 0; i < op_->aggregates.size(); ++i) {
            const AggregateItem& item = op_->aggregates[i];
            const Value& v = item.arg != nullptr ? arg_cols[i][r] : one;
            DHQP_RETURN_NOT_OK(Accumulate(item, v, &(*accs)[i]));
          }
        }
      }
    } else {
      Row row;
      while (true) {
        DHQP_ASSIGN_OR_RETURN(bool has, child_->Next(&row));
        if (!has) break;
        env.row = &row;
        IndexKey key;
        for (int g : op_->group_by) {
          key.push_back(row[static_cast<size_t>(child_->col_pos().at(g))]);
        }
        std::vector<Accumulator>* accs = nullptr;
        DHQP_RETURN_NOT_OK(accs_for(key, row, &accs));
        if (accs == nullptr) continue;  // Routed to a spill partition.
        for (size_t i = 0; i < op_->aggregates.size(); ++i) {
          const AggregateItem& item = op_->aggregates[i];
          Value v = Value::Int64(1);  // Placeholder for COUNT(*).
          if (item.arg != nullptr) {
            DHQP_ASSIGN_OR_RETURN(v, EvalExpr(*item.arg, env));
          }
          DHQP_RETURN_NOT_OK(Accumulate(item, v, &(*accs)[i]));
        }
      }
    }
    // Scalar aggregate over an empty input still yields one row.
    if (groups.empty() && op_->group_by.empty()) {
      groups.try_emplace(IndexKey{});
      groups.begin()->second.resize(op_->aggregates.size());
    }
    FinalizeGroups(&groups);
    for (auto& p : parts) {
      DHQP_RETURN_NOT_OK(p->FinishWrite());
      if (p->rows() > 0) {
        RecordSpill(ctx_, profile_, *p);
        spilled_ = true;
        pending_.push_back(PendingPart{std::move(p), 0});
      }
    }
    return Status::OK();
  }

  /// Converts a group map into served rows, swapping the memory accounting
  /// over to results_ (the map dies in the caller).
  void FinalizeGroups(GroupMap* groups) {
    for (auto& [key, accs] : *groups) {
      Row out = key;
      for (size_t i = 0; i < op_->aggregates.size(); ++i) {
        out.push_back(Finalize(op_->aggregates[i], accs[i]));
      }
      results_.push_back(std::move(out));
    }
    mem_.ReleaseAll();
    for (const Row& r : results_) mem_.Add(RowMemBytes(r));
    mem_.Flush();
  }

  /// Re-aggregates one spilled partition into results_ (its keys are
  /// disjoint from everything already served). A partition still too big
  /// for the grant sheds its overflow keys into sub-partitions at the next
  /// depth; at the depth cap it aggregates in memory regardless —
  /// correctness over enforcement.
  Status ProcessPendingPartition() {
    PendingPart part = std::move(pending_.front());
    pending_.pop_front();
    results_.clear();
    pos_ = 0;
    mem_.ReleaseAll();
    const int64_t acc_bytes = static_cast<int64_t>(
        sizeof(Accumulator) * op_->aggregates.size());
    GroupMap groups;
    std::vector<std::unique_ptr<spill::SpillFile>> subs;
    std::vector<int> gpos;
    gpos.reserve(op_->group_by.size());
    for (int g : op_->group_by) gpos.push_back(child_->col_pos().at(g));
    EvalEnv env;
    env.col_pos = &child_->col_pos();
    env.params = &ctx_->params;
    env.current_date = ctx_->current_date;
    DHQP_RETURN_NOT_OK(part.file->Rewind());
    Row row;
    while (true) {
      DHQP_ASSIGN_OR_RETURN(bool has, part.file->Next(&row));
      if (!has) break;
      env.row = &row;
      IndexKey key;
      for (int p : gpos) key.push_back(row[static_cast<size_t>(p)]);
      std::vector<Accumulator>* accs = nullptr;
      auto it = groups.find(key);
      if (it != groups.end()) {
        accs = &it->second;
      } else {
        // Sticky spill mode, as in Aggregate(): once sub-partitions exist,
        // every missing key routes to them — never back into memory.
        const int64_t add = RowMemBytes(key) + acc_bytes;
        const bool can_shed = part.depth < ctx_->spill_depth_cap;
        if (can_shed &&
            (!subs.empty() ||
             (!groups.empty() && GrantExceeded(ctx_, mem_.pending(), add)))) {
          if (subs.empty()) {
            DHQP_RETURN_NOT_OK(MakeSpillParts(ctx_, profile_, &subs));
          }
          DHQP_RETURN_NOT_OK(
              subs[static_cast<size_t>(SpillPartOf(key, part.depth + 1))]
                  ->Append(row));
          continue;
        }
        auto [it2, inserted] = groups.try_emplace(std::move(key));
        it2->second.resize(op_->aggregates.size());
        mem_.Add(add);
        accs = &it2->second;
      }
      for (size_t i = 0; i < op_->aggregates.size(); ++i) {
        const AggregateItem& item = op_->aggregates[i];
        Value v = Value::Int64(1);  // Placeholder for COUNT(*).
        if (item.arg != nullptr) {
          DHQP_ASSIGN_OR_RETURN(v, EvalExpr(*item.arg, env));
        }
        DHQP_RETURN_NOT_OK(Accumulate(item, v, &(*accs)[i]));
      }
    }
    FinalizeGroups(&groups);
    for (auto& s : subs) {
      DHQP_RETURN_NOT_OK(s->FinishWrite());
      if (s->rows() > 0) {
        RecordSpill(ctx_, profile_, *s);
        pending_.push_back(PendingPart{std::move(s), part.depth + 1});
      }
    }
    return Status::OK();
  }

  std::unique_ptr<ExecNode> child_;
  ExecContext* ctx_;
  std::vector<Row> results_;
  OperatorMem mem_;
  size_t pos_ = 0;
  // Grace-spill state.
  bool spilled_ = false;
  std::deque<PendingPart> pending_;
};

// Stream aggregation over input sorted by the group columns.
class StreamAggregateNode : public ExecNode {
 public:
  StreamAggregateNode(PhysicalOpPtr op, std::unique_ptr<ExecNode> child,
                      ExecContext* ctx)
      : ExecNode(std::move(op)), child_(std::move(child)), ctx_(ctx) {}

  Status Open() override {
    DHQP_RETURN_NOT_OK(child_->Open());
    done_ = false;
    have_pending_ = false;
    emitted_scalar_ = false;
    in_batch_.clear();
    in_pos_ = 0;
    return Status::OK();
  }

  Result<bool> Next(Row* out) override {
    if (done_) return false;
    EvalEnv env;
    env.col_pos = &child_->col_pos();
    env.params = &ctx_->params;
    env.current_date = ctx_->current_date;

    IndexKey current_key;
    std::vector<Accumulator> accs(op_->aggregates.size());
    bool have_group = false;

    auto accumulate_row = [&](const Row& row) -> Status {
      env.row = &row;
      for (size_t i = 0; i < op_->aggregates.size(); ++i) {
        const AggregateItem& item = op_->aggregates[i];
        Value v = Value::Int64(1);
        if (item.arg != nullptr) {
          DHQP_ASSIGN_OR_RETURN(Value ev, EvalExpr(*item.arg, env));
          v = std::move(ev);
        }
        DHQP_RETURN_NOT_OK(Accumulate(item, v, &accs[i]));
      }
      return Status::OK();
    };

    if (have_pending_) {
      current_key = KeyOf(pending_);
      DHQP_RETURN_NOT_OK(accumulate_row(pending_));
      have_pending_ = false;
      have_group = true;
    }
    Row row;
    while (true) {
      DHQP_ASSIGN_OR_RETURN(bool has, NextInputRow(&row));
      if (!has) {
        done_ = true;
        break;
      }
      IndexKey key = KeyOf(row);
      if (!have_group) {
        current_key = key;
        have_group = true;
        DHQP_RETURN_NOT_OK(accumulate_row(row));
        continue;
      }
      if (CompareKeys(key, current_key) == 0) {
        DHQP_RETURN_NOT_OK(accumulate_row(row));
        continue;
      }
      pending_ = row;
      have_pending_ = true;
      break;
    }
    if (!have_group) {
      // Empty input: scalar aggregates still produce one row.
      if (op_->group_by.empty() && !emitted_scalar_) {
        emitted_scalar_ = true;
        out->clear();
        for (size_t i = 0; i < op_->aggregates.size(); ++i) {
          out->push_back(Finalize(op_->aggregates[i], Accumulator{}));
        }
        return true;
      }
      return false;
    }
    emitted_scalar_ = true;
    *out = current_key;
    for (size_t i = 0; i < op_->aggregates.size(); ++i) {
      out->push_back(Finalize(op_->aggregates[i], accs[i]));
    }
    return true;
  }

  Status Restart() override {
    DHQP_RETURN_NOT_OK(child_->Restart());
    done_ = false;
    have_pending_ = false;
    emitted_scalar_ = false;
    in_batch_.clear();
    in_pos_ = 0;
    return Status::OK();
  }

 private:
  IndexKey KeyOf(const Row& row) const {
    IndexKey key;
    for (int g : op_->group_by) {
      key.push_back(row[static_cast<size_t>(child_->col_pos().at(g))]);
    }
    return key;
  }

  /// Input pull: batched through in_batch_ when exec_batch_rows > 0 (one
  /// child NextBatch per batch instead of one virtual Next per row),
  /// otherwise the classic row pull.
  Result<bool> NextInputRow(Row* out) {
    const int bs = ctx_->options.exec_batch_rows;
    if (bs > 0) {
      if (in_pos_ >= in_batch_.rows.size()) {
        DHQP_ASSIGN_OR_RETURN(bool has, child_->NextBatch(&in_batch_, bs));
        if (!has) return false;
        in_pos_ = 0;
      }
      *out = std::move(in_batch_.rows[in_pos_++]);
      return true;
    }
    return child_->Next(out);
  }

  std::unique_ptr<ExecNode> child_;
  ExecContext* ctx_;
  Row pending_;
  RowBatch in_batch_;  ///< Batched input buffer, reused across pulls.
  size_t in_pos_ = 0;
  bool have_pending_ = false;
  bool done_ = false;
  bool emitted_scalar_ = false;
};

// ---------------------------------------------------------------------------
// Operator profiling (STATISTICS PROFILE analog).
// ---------------------------------------------------------------------------

bool IsRemoteOp(PhysicalOpKind kind) {
  switch (kind) {
    case PhysicalOpKind::kRemoteScan:
    case PhysicalOpKind::kRemoteRange:
    case PhysicalOpKind::kRemoteFetch:
    case PhysicalOpKind::kRemoteQuery:
      return true;
    default:
      return false;
  }
}

// Decorator recording actual execution stats for one operator occurrence.
// Wrapping (instead of instrumenting every node class) keeps the ~20 node
// implementations untouched and guarantees uniform accounting. Timing is
// inclusive (children are timed inside the parent's interval) and uses
// fastclock ticks so the per-row cost stays within the observability
// bench's overhead budget. For remote operators the wrapper also installs
// the profile's charge sink on the calling thread, so link traffic —
// including retries and injected faults — lands on exactly this operator.
//
// The per-row path samples: Next is timed on 1 of every
// ExecOptions::profile_sample_every calls (rounded down to a power of two)
// and the estimate is scaled up at flush time (like SQL Server's sampled
// actual-plan CPU timing) — two RDTSC reads per row per operator would
// alone blow the <=5% overhead budget on deep plans. The batch path times
// every NextBatch call instead: the batch amortizes the two clock reads, so
// timing is exact there, not sampled. Row counts are always exact. Counts
// accumulate in plain members (each exec node is driven by one thread at a
// time; parallel Concat branches are distinct nodes) and flush into the
// shared profile atomics periodically — every NextBatch call, every 64th
// Next call — so dm_exec_requests reads live, monotonically non-decreasing
// row counts mid-query; the destructor flushes the remainder plus the
// sampled-time estimate, which the executor joins/happens-before the
// profile being rendered.
class ProfiledNode : public ExecNode {
 public:
  ProfiledNode(std::unique_ptr<ExecNode> inner, OperatorProfile* profile,
               int sample_every)
      : ExecNode(inner->op_ptr()),
        inner_(std::move(inner)),
        prof_(profile),
        sink_(IsRemoteOp(op_->kind) ? &profile->link_charges : nullptr),
        wait_sink_(IsRemoteOp(op_->kind) ? &profile->wait_tally : nullptr),
        sample_mask_(FloorPow2(sample_every) - 1) {}

  ~ProfiledNode() override {
    // The profile tree (owned by ExecContext) outlives the exec tree, so
    // recording teardown time here is safe.
    const int64_t t0 = fastclock::Ticks();
    inner_.reset();
    prof_->close_ticks.fetch_add(fastclock::Ticks() - t0,
                                 std::memory_order_relaxed);
    FlushLiveCounts();
    if (timed_calls_ > 0) {
      // Scale the sampled interval sum to the full call count.
      prof_->next_ticks.fetch_add(
          sampled_ticks_ * static_cast<int64_t>(next_calls_) /
              static_cast<int64_t>(timed_calls_),
          std::memory_order_relaxed);
    }
  }

  Status Open() override {
    prof_->opens.fetch_add(1, std::memory_order_relaxed);
    net::ScopedChargeSink charge(sink_);
    waits::ScopedOperatorTally waits(wait_sink_);
    const int64_t t0 = fastclock::Ticks();
    Status st = inner_->Open();
    prof_->open_ticks.fetch_add(fastclock::Ticks() - t0,
                                std::memory_order_relaxed);
    return st;
  }

  Result<bool> Next(Row* out) override {
    net::ScopedChargeSink charge(sink_);
    waits::ScopedOperatorTally waits(wait_sink_);
    if ((next_calls_++ & sample_mask_) == 0) {
      const int64_t t0 = fastclock::Ticks();
      Result<bool> result = inner_->Next(out);
      sampled_ticks_ += fastclock::Ticks() - t0;
      ++timed_calls_;
      if (result.ok() && result.value()) ++rows_;
      if ((next_calls_ & kLiveFlushMask) == 0) FlushLiveCounts();
      return result;
    }
    Result<bool> result = inner_->Next(out);
    if (result.ok() && result.value()) ++rows_;
    if ((next_calls_ & kLiveFlushMask) == 0) FlushLiveCounts();
    return result;
  }

  Result<bool> NextBatch(RowBatch* out, int max_rows) override {
    net::ScopedChargeSink charge(sink_);
    waits::ScopedOperatorTally waits(wait_sink_);
    // Every batch call is timed (no sampling): the clock reads amortize
    // over the whole batch. next_calls_/timed_calls_ feed the same flush
    // arithmetic, which degenerates to "sum of all intervals" here.
    const int64_t t0 = fastclock::Ticks();
    Result<bool> result = inner_->NextBatch(out, max_rows);
    sampled_ticks_ += fastclock::Ticks() - t0;
    ++next_calls_;
    ++timed_calls_;
    ++exec_batches_;
    if (result.ok() && result.value()) {
      rows_ += static_cast<int64_t>(out->rows.size());
    }
    FlushLiveCounts();
    return result;
  }

  Status Restart() override {
    prof_->restarts.fetch_add(1, std::memory_order_relaxed);
    net::ScopedChargeSink charge(sink_);
    waits::ScopedOperatorTally waits(wait_sink_);
    const int64_t t0 = fastclock::Ticks();
    Status st = inner_->Restart();
    prof_->open_ticks.fetch_add(fastclock::Ticks() - t0,
                                std::memory_order_relaxed);
    return st;
  }

 private:
  /// Live-monitoring flush cadence for the row-at-a-time path: one pair of
  /// fetch_adds per 64 rows keeps dm_exec_requests at most 64 rows stale
  /// per operator without measurable per-row cost.
  static constexpr uint32_t kLiveFlushMask = 63;

  void FlushLiveCounts() {
    if (rows_ != 0) {
      prof_->rows_out.fetch_add(rows_, std::memory_order_relaxed);
      rows_ = 0;
    }
    if (exec_batches_ != 0) {
      prof_->exec_batches.fetch_add(exec_batches_, std::memory_order_relaxed);
      exec_batches_ = 0;
    }
  }

  /// Largest power of two <= n (1 for n <= 1): sampling uses a bitmask.
  static uint32_t FloorPow2(int n) {
    uint32_t p = 1;
    while (n >= 2) {
      n >>= 1;
      p <<= 1;
    }
    return p;
  }

  std::unique_ptr<ExecNode> inner_;
  OperatorProfile* prof_;
  net::LinkChargeSink* sink_;  ///< Non-null only for remote operators.
  waits::WaitTally* wait_sink_;  ///< Ditto: link waits land on this operator.
  uint32_t sample_mask_;       ///< Row-mode Next timing: 1-in-(mask+1).
  int64_t rows_ = 0;
  int64_t exec_batches_ = 0;  ///< NextBatch calls served to the consumer.
  uint32_t next_calls_ = 0;
  uint32_t timed_calls_ = 0;
  int64_t sampled_ticks_ = 0;
};

// Constructs the bare node for `plan` from already-built children (the
// former BuildExecTree switch). `frag` is non-null when building one
// worker's instance of an exchange fragment: a parallel table scan then
// reads only this worker's block-cyclic slice.
Result<std::unique_ptr<ExecNode>> BuildNode(
    const PhysicalOpPtr& plan, std::vector<std::unique_ptr<ExecNode>> children,
    ExecContext* ctx, const FragmentContext* frag) {
  switch (plan->kind) {
    case PhysicalOpKind::kTableScan:
      if (frag != nullptr && frag->dop > 1 && plan->dop > 1) {
        return std::unique_ptr<ExecNode>(
            new ScanNode(plan, ctx, frag->partition, frag->dop));
      }
      return std::unique_ptr<ExecNode>(new ScanNode(plan, ctx));
    case PhysicalOpKind::kRemoteScan:
      return std::unique_ptr<ExecNode>(new ScanNode(plan, ctx));
    case PhysicalOpKind::kIndexRange:
    case PhysicalOpKind::kRemoteRange:
      return std::unique_ptr<ExecNode>(new IndexRangeNode(plan, ctx));
    case PhysicalOpKind::kRemoteFetch:
      return std::unique_ptr<ExecNode>(new RemoteFetchNode(plan, ctx));
    case PhysicalOpKind::kConstTable:
      return std::unique_ptr<ExecNode>(new ConstTableNode(plan));
    case PhysicalOpKind::kEmptyTable:
      return std::unique_ptr<ExecNode>(new EmptyNode(plan));
    case PhysicalOpKind::kFullTextLookup:
      return std::unique_ptr<ExecNode>(new FullTextLookupNode(plan, ctx));
    case PhysicalOpKind::kRemoteQuery:
      return std::unique_ptr<ExecNode>(new RemoteQueryNode(plan, ctx));
    case PhysicalOpKind::kFilter:
      return std::unique_ptr<ExecNode>(
          new FilterNode(plan, std::move(children[0]), ctx));
    case PhysicalOpKind::kStartupFilter:
      return std::unique_ptr<ExecNode>(
          new StartupFilterNode(plan, std::move(children[0]), ctx));
    case PhysicalOpKind::kProject:
      return std::unique_ptr<ExecNode>(
          new ProjectNode(plan, std::move(children[0]), ctx));
    case PhysicalOpKind::kTop:
      return std::unique_ptr<ExecNode>(
          new TopNode(plan, std::move(children[0])));
    case PhysicalOpKind::kSort:
      return std::unique_ptr<ExecNode>(
          new SortNode(plan, std::move(children[0]), ctx));
    case PhysicalOpKind::kSpool:
      return std::unique_ptr<ExecNode>(
          new SpoolNode(plan, std::move(children[0]), ctx));
    case PhysicalOpKind::kConcat:
      return std::unique_ptr<ExecNode>(
          new ConcatNode(plan, std::move(children), ctx));
    case PhysicalOpKind::kHashJoin:
      return std::unique_ptr<ExecNode>(new HashJoinNode(
          plan, std::move(children[0]), std::move(children[1]), ctx));
    case PhysicalOpKind::kNestedLoopsJoin:
      return std::unique_ptr<ExecNode>(new NestedLoopsJoinNode(
          plan, std::move(children[0]), std::move(children[1]), ctx));
    case PhysicalOpKind::kMergeJoin:
      return std::unique_ptr<ExecNode>(new MergeJoinNode(
          plan, std::move(children[0]), std::move(children[1]), ctx));
    case PhysicalOpKind::kHashAggregate:
      return std::unique_ptr<ExecNode>(
          new HashAggregateNode(plan, std::move(children[0]), ctx));
    case PhysicalOpKind::kStreamAggregate:
      return std::unique_ptr<ExecNode>(
          new StreamAggregateNode(plan, std::move(children[0]), ctx));
    case PhysicalOpKind::kExchange:
      // Exchanges are built by the tree walkers below (they need the child
      // subtree NOT built — it runs on producer threads instead).
      return Status::Internal("exchange reached BuildNode");
  }
  return Status::Internal("unknown physical operator");
}

/// Allocates a profile slot for one operator occurrence, assigning the next
/// pre-order id (matching the EXPLAIN rendering).
std::unique_ptr<OperatorProfile> MakeProfileSlot(const PhysicalOpPtr& plan,
                                                 int* next_id) {
  auto p = std::make_unique<OperatorProfile>();
  p->id = (*next_id)++;
  p->name = plan->Describe();
  p->estimated_rows = plan->estimated_rows;
  p->estimated_cost = plan->estimated_cost;
  if (IsRemoteOp(plan->kind)) p->link = plan->table.server_name;
  return p;
}

// Grows profile slots (pre-order ids matching EXPLAIN) for a whole subtree
// WITHOUT building exec nodes: the consumer-side pass over an exchange's
// child, whose exec instances are created later — one per producer thread —
// against these same shared slots.
void BuildProfileRec(const PhysicalOpPtr& plan, int* next_id,
                     std::unique_ptr<OperatorProfile>* slot) {
  *slot = MakeProfileSlot(plan, next_id);
  OperatorProfile* prof = slot->get();
  for (const PhysicalOpPtr& child : plan->children) {
    prof->children.emplace_back();
    BuildProfileRec(child, next_id, &prof->children.back());
  }
}

// Recursive builder: assigns pre-order operator ids (matching the EXPLAIN
// rendering), grows the profile tree in `slot` when profiling is on, and
// wraps every node in a ProfiledNode. Runs in the serial region of the
// plan; an exchange ends the recursion — its child subtree gets profile
// slots only (BuildProfileRec) and executes on the segment's producers.
Result<std::unique_ptr<ExecNode>> BuildTreeRec(
    const PhysicalOpPtr& plan, ExecContext* ctx, int* next_id,
    std::unique_ptr<OperatorProfile>* slot) {
  OperatorProfile* prof = nullptr;
  if (slot != nullptr) {
    *slot = MakeProfileSlot(plan, next_id);
    prof = slot->get();
  }
  if (plan->kind == PhysicalOpKind::kExchange) {
    if (plan->dop > 1) {
      // A multi-consumer exchange only makes sense inside a fragment where
      // every partition has a worker draining it; the serial region drains
      // partition 0 only and the rest would wedge the producers.
      return Status::Internal("multi-consumer exchange in serial plan region");
    }
    OperatorProfile* child_prof = nullptr;
    if (prof != nullptr) {
      prof->children.emplace_back();
      BuildProfileRec(plan->children[0], next_id, &prof->children.back());
      child_prof = prof->children.back().get();
    }
    std::unique_ptr<ExecNode> node(new ExchangeNode(
        plan, ctx, child_prof, /*registry=*/nullptr, /*ordinal=*/0,
        /*partition=*/0));
    if (prof != nullptr) {
      node->set_profile(prof);
      return std::unique_ptr<ExecNode>(new ProfiledNode(
          std::move(node), prof, ctx->options.profile_sample_every));
    }
    return node;
  }
  std::vector<std::unique_ptr<ExecNode>> children;
  for (const PhysicalOpPtr& child : plan->children) {
    std::unique_ptr<OperatorProfile>* child_slot = nullptr;
    if (prof != nullptr) {
      prof->children.emplace_back();
      child_slot = &prof->children.back();
    }
    // child_slot is used only within this call, before the next
    // emplace_back can invalidate it.
    DHQP_ASSIGN_OR_RETURN(auto node,
                          BuildTreeRec(child, ctx, next_id, child_slot));
    children.push_back(std::move(node));
  }
  DHQP_ASSIGN_OR_RETURN(
      auto node, BuildNode(plan, std::move(children), ctx, /*frag=*/nullptr));
  if (prof != nullptr) {
    node->set_profile(prof);
    return std::unique_ptr<ExecNode>(new ProfiledNode(
        std::move(node), prof, ctx->options.profile_sample_every));
  }
  return node;
}

// Builds one worker's exec-node instance of a fragment subtree, walking the
// plan and the consumer-built profile tree (BuildProfileRec) in lockstep so
// every worker's instance of an operator attaches to that operator's ONE
// shared profile slot — per-instance counters flush additively, and each
// instance scales its own sampled Next timings by its own call counts
// before flushing, so the merge never double-counts. `next_exchange`
// numbers kExchange occurrences in walk order: the registry key under
// which sibling workers attach to one shared nested segment (every worker
// walks the same plan in the same order, so ordinals agree). The walk does
// NOT descend through a nested exchange — its child belongs to that
// segment's own producers, which number their exchanges from zero again.
Result<std::unique_ptr<ExecNode>> BuildWorkerRec(
    const PhysicalOpPtr& plan, ExecContext* ctx, OperatorProfile* prof,
    const FragmentContext& frag, int* next_exchange) {
  std::unique_ptr<ExecNode> node;
  if (plan->kind == PhysicalOpKind::kExchange) {
    const int ordinal = (*next_exchange)++;
    OperatorProfile* child_prof =
        prof != nullptr ? prof->children[0].get() : nullptr;
    node.reset(new ExchangeNode(plan, ctx, child_prof, frag.exchanges,
                                ordinal, frag.partition));
  } else {
    std::vector<std::unique_ptr<ExecNode>> children;
    for (size_t i = 0; i < plan->children.size(); ++i) {
      OperatorProfile* child_prof =
          prof != nullptr ? prof->children[i].get() : nullptr;
      DHQP_ASSIGN_OR_RETURN(
          auto child, BuildWorkerRec(plan->children[i], ctx, child_prof, frag,
                                     next_exchange));
      children.push_back(std::move(child));
    }
    DHQP_ASSIGN_OR_RETURN(node,
                          BuildNode(plan, std::move(children), ctx, &frag));
  }
  if (prof != nullptr) {
    node->set_profile(prof);
    return std::unique_ptr<ExecNode>(new ProfiledNode(
        std::move(node), prof, ctx->options.profile_sample_every));
  }
  return node;
}

}  // namespace

// ---------------------------------------------------------------------------
// Tree construction.
// ---------------------------------------------------------------------------

Result<std::unique_ptr<ExecNode>> BuildExecTree(const PhysicalOpPtr& plan,
                                                ExecContext* ctx) {
  int next_id = 1;
  if (!ctx->options.collect_operator_stats) {
    return BuildTreeRec(plan, ctx, &next_id, nullptr);
  }
  std::unique_ptr<OperatorProfile> root;
  DHQP_ASSIGN_OR_RETURN(auto tree, BuildTreeRec(plan, ctx, &next_id, &root));
  ctx->profile = std::shared_ptr<OperatorProfile>(std::move(root));
  return tree;
}

Result<std::unique_ptr<ExecNode>> BuildFragmentTree(
    const PhysicalOpPtr& plan, ExecContext* ctx, OperatorProfile* profile,
    const FragmentContext& frag) {
  int next_exchange = 0;
  return BuildWorkerRec(plan, ctx, profile, frag, &next_exchange);
}

Result<std::unique_ptr<VectorRowset>> ExecutePlan(const PhysicalOpPtr& plan,
                                                  ExecContext* ctx) {
  DHQP_ASSIGN_OR_RETURN(auto root, BuildExecTree(plan, ctx));
  // Publish the profile tree to the in-flight request *before* Open so
  // dm_exec_requests sees live row counts from the first batch onward.
  if (ctx->profile != nullptr) {
    sysview::PublishCurrentRequestProfile(ctx->profile);
  }
  DHQP_RETURN_NOT_OK(root->Open());
  Schema schema;
  for (size_t i = 0; i < plan->output_cols.size(); ++i) {
    schema.AddColumn(ColumnDef{plan->output_names[i], plan->output_types[i],
                               true});
  }
  std::vector<Row> rows;
  const int bs = ctx->options.exec_batch_rows;
  if (bs > 0) {
    // Batch sink: one virtual call per batch; the buffer is reused
    // (clear-and-refill) across pulls, rows move out of it.
    RowBatch batch;
    while (true) {
      DHQP_ASSIGN_OR_RETURN(bool has, root->NextBatch(&batch, bs));
      if (!has) break;
      ctx->stats.exec_batches++;
      ctx->stats.exec_batch_rows += static_cast<int64_t>(batch.rows.size());
      ctx->stats.rows_output += static_cast<int64_t>(batch.rows.size());
      for (Row& r : batch.rows) rows.push_back(std::move(r));
    }
  } else {
    Row row;
    while (true) {
      DHQP_ASSIGN_OR_RETURN(bool has, root->Next(&row));
      if (!has) break;
      rows.push_back(row);
      ctx->stats.rows_output++;
    }
  }
  return std::make_unique<VectorRowset>(std::move(schema), std::move(rows));
}

}  // namespace dhqp
