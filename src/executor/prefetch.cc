#include "src/executor/prefetch.h"

#include <atomic>

#include "src/common/activity.h"
#include "src/common/metrics.h"
#include "src/common/trace.h"
#include "src/common/waits.h"

namespace dhqp {

namespace {
// Incremented for the lifetime of each ProducerLoop; see live_producers().
std::atomic<int64_t> g_live_producers{0};

int64_t BatchMemBytes(const RowBatch& batch) {
  int64_t bytes = 0;
  for (const Row& row : batch.rows) bytes += RowMemBytes(row);
  return bytes;
}
}  // namespace

int64_t PrefetchingRowset::live_producers() {
  return g_live_producers.load(std::memory_order_acquire);
}

PrefetchingRowset::PrefetchingRowset(std::unique_ptr<Rowset> inner,
                                     const ExecOptions& options,
                                     ExecStats* stats,
                                     OperatorProfile* profile,
                                     MemTracker* query_mem)
    : inner_(std::move(inner)),
      schema_(inner_->schema()),
      batch_rows_(options.remote_batch_rows > 0 ? options.remote_batch_rows
                                                : 256),
      stats_(stats),
      profile_(profile),
      query_mem_(query_mem),
      queue_(static_cast<size_t>(
          options.prefetch_queue_depth > 0 ? options.prefetch_queue_depth
                                           : 2)) {
  Start();
}

PrefetchingRowset::~PrefetchingRowset() { Stop(); }

void PrefetchingRowset::Start() {
  // Counts launched-but-not-yet-joined producers; the decrement is tied to
  // the join itself so a leaked thread stays visible to live_producers().
  g_live_producers.fetch_add(1, std::memory_order_acq_rel);
  // The producer works on the launching query's behalf: capture its wait
  // tally and activity id here (the consumer thread has them installed)
  // and re-install both inside the loop.
  producer_ = std::thread([this, query_waits = waits::CurrentQueryTally(),
                           aid = activity::Current(),
                           etag = trace::CurrentEngineTag()] {
    waits::ScopedQueryTally tally(query_waits);
    activity::Scope act(aid);
    trace::EngineTagScope engine_tag(etag);
    ProducerLoop();
  });
}

void PrefetchingRowset::ChargeQueueMem(int64_t bytes) {
  if (bytes <= 0) return;
  queued_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  if (profile_ != nullptr) profile_->mem.Add(bytes);
  if (query_mem_ != nullptr) query_mem_->Add(bytes);
}

void PrefetchingRowset::ReleaseQueueMem(int64_t bytes) {
  if (bytes <= 0) return;
  queued_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
  if (profile_ != nullptr) profile_->mem.Release(bytes);
  if (query_mem_ != nullptr) query_mem_->Release(bytes);
}

void PrefetchingRowset::Stop() {
  // Closing the queue wakes a producer blocked in Push(); a producer blocked
  // inside inner_->NextBatch() finishes that (bounded) call, sees the closed
  // queue and exits. Either way the join below terminates: this is the path
  // that makes abandoning a rowset early (consumer error before drain) safe.
  queue_.Close();
  if (producer_.joinable()) {
    producer_.join();
    g_live_producers.fetch_sub(1, std::memory_order_acq_rel);
  }
  // Batches still parked in the closed queue will never be popped (early
  // abandon or restart discards them) — settle their charge.
  ReleaseQueueMem(queued_bytes_.load(std::memory_order_relaxed));
}

void PrefetchingRowset::ProducerLoop() {
  trace::Tracer::SetCurrentThreadName("prefetch");
  // Link traffic on this thread belongs to the operator that owns the
  // prefetching rowset; the consumer thread's sink cannot see it. Same for
  // link waits (wire time, retry backoff) paid inside inner_->NextBatch.
  net::ScopedChargeSink charge(
      profile_ != nullptr ? &profile_->link_charges : nullptr);
  waits::ScopedOperatorTally op_tally(
      profile_ != nullptr ? &profile_->wait_tally : nullptr);
  metrics::Histogram* depth =
      metrics::Registry::Global().GetHistogram("exec.prefetch.queue_depth");
  while (true) {
    RowBatch batch = TakeRecycled();
    Result<bool> has = inner_->NextBatch(&batch, batch_rows_);
    if (!has.ok()) {
      {
        std::lock_guard<std::mutex> lock(status_mu_);
        producer_status_ = has.status();
      }
      break;
    }
    if (!*has) break;
    if (stats_ != nullptr) stats_->remote_batches++;
    if (profile_ != nullptr) profile_->batches++;
    depth->Observe(static_cast<int64_t>(queue_.size()));
    // Charged before the push so the consumer's release never observes an
    // uncharged batch.
    const int64_t bytes = BatchMemBytes(batch);
    ChargeQueueMem(bytes);
    const bool pushed = queue_.Push(std::move(batch), [this](int64_t ticks) {
      // Producer outran the consumer: the remote stream is ahead and the
      // bounded buffer is what applied backpressure.
      waits::RecordWait(waits::WaitType::kPrefetchQueue, ticks,
                        profile_ != nullptr ? &profile_->wait_tally : nullptr);
    });
    if (!pushed) {
      ReleaseQueueMem(bytes);
      break;  // Consumer went away.
    }
  }
  queue_.Close();
}

Result<bool> PrefetchingRowset::Advance() {
  if (done_) {
    // Sticky: repeated Next() after an error keeps reporting it.
    std::lock_guard<std::mutex> lock(status_mu_);
    if (!producer_status_.ok()) return producer_status_;
    return false;
  }
  RowBatch batch;
  bool got = queue_.TryPop(&batch);
  if (!got) {
    got = queue_.Pop(&batch, [this](int64_t ticks) {
      waits::RecordWait(waits::WaitType::kPrefetchQueue, ticks,
                        profile_ != nullptr ? &profile_->wait_tally : nullptr);
    });
    // A blocking wait that produced a batch means the consumer outran the
    // producer — the pipeline stalled on the network.
    if (got && stats_ != nullptr) stats_->prefetch_stalls++;
  }
  if (!got) {
    done_ = true;
    std::lock_guard<std::mutex> lock(status_mu_);
    if (!producer_status_.ok()) return producer_status_;
    return false;
  }
  ReleaseQueueMem(BatchMemBytes(batch));
  Recycle(std::move(current_));  // Drained buffer re-enters the cycle.
  current_ = std::move(batch);
  pos_ = 0;
  return true;
}

void PrefetchingRowset::Recycle(RowBatch&& batch) {
  batch.clear();  // Keeps the row vector's capacity for the refill.
  std::lock_guard<std::mutex> lock(recycle_mu_);
  // Bounded: queue depth + in-flight covers the steady state; anything
  // beyond that would just pin memory.
  if (recycle_.size() < 8) recycle_.push_back(std::move(batch));
}

RowBatch PrefetchingRowset::TakeRecycled() {
  std::lock_guard<std::mutex> lock(recycle_mu_);
  if (recycle_.empty()) return RowBatch{};
  RowBatch batch = std::move(recycle_.back());
  recycle_.pop_back();
  return batch;
}

Result<bool> PrefetchingRowset::Next(Row* out) {
  if (pos_ >= current_.rows.size()) {
    DHQP_ASSIGN_OR_RETURN(bool has, Advance());
    if (!has) return false;
  }
  *out = std::move(current_.rows[pos_++]);
  return true;
}

Result<bool> PrefetchingRowset::NextBatch(RowBatch* out, int max_rows) {
  out->clear();
  if (max_rows <= 0) return false;
  if (pos_ >= current_.rows.size()) {
    DHQP_ASSIGN_OR_RETURN(bool has, Advance());
    if (!has) return false;
  }
  const size_t avail = current_.rows.size() - pos_;
  if (pos_ == 0 && avail <= static_cast<size_t>(max_rows)) {
    // Wholesale handoff — swapped, not moved, so the caller's (cleared)
    // buffer enters the recycle cycle on the next Advance().
    std::swap(*out, current_);
    current_.clear();
    return true;
  }
  // The consumer asked for less than is buffered (or resumes mid-batch
  // after a row-mode pull): hand out exactly max_rows and keep the tail.
  const size_t take = std::min(avail, static_cast<size_t>(max_rows));
  out->rows.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    out->rows.push_back(std::move(current_.rows[pos_ + i]));
  }
  pos_ += take;
  return true;
}

Status PrefetchingRowset::Restart() {
  Stop();
  Status st = inner_->Restart();
  if (!st.ok()) return st;  // Caller reopens the source instead.
  {
    std::lock_guard<std::mutex> lock(status_mu_);
    producer_status_ = Status::OK();
  }
  queue_.Reset();
  current_.clear();
  pos_ = 0;
  done_ = false;
  Start();
  return Status::OK();
}

}  // namespace dhqp
