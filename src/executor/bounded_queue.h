#ifndef DHQP_EXECUTOR_BOUNDED_QUEUE_H_
#define DHQP_EXECUTOR_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

namespace dhqp {

/// A bounded blocking queue connecting asynchronous rowset producers
/// (prefetch threads, parallel partitioned-view branches) to the Volcano
/// consumer. Closing wakes everyone: producers see Push fail and stop;
/// consumers drain the remaining items and then see Pop fail.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity ? capacity : 1) {}

  /// Blocks while full. Returns false (item dropped) if the queue closed.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while empty and open. Returns false once closed and drained.
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return true;
  }

  /// Non-blocking Pop; false when nothing is immediately available.
  bool TryPop(T* out) {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return true;
  }

  /// No more Pushes will succeed; Pops drain what is buffered.
  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  /// Buffered item count — an instantaneous reading for metrics (queue
  /// depth histograms); it can be stale by the time the caller uses it.
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  /// Reopens an empty state. Callers must have joined all producers and
  /// consumers first; this is single-threaded by contract.
  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    items_.clear();
    closed_ = false;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_full_, not_empty_;
  std::deque<T> items_;
  size_t capacity_;
  bool closed_ = false;
};

}  // namespace dhqp

#endif  // DHQP_EXECUTOR_BOUNDED_QUEUE_H_
