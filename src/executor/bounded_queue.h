#ifndef DHQP_EXECUTOR_BOUNDED_QUEUE_H_
#define DHQP_EXECUTOR_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <utility>

#include "src/common/fastclock.h"

namespace dhqp {

/// A bounded blocking queue connecting asynchronous rowset producers
/// (prefetch threads, parallel partitioned-view branches) to the Volcano
/// consumer. Closing wakes everyone: producers see Push fail and stop;
/// consumers drain the remaining items and then see Pop fail.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity ? capacity : 1) {}

  /// Blocks while full. Returns false (item dropped) if the queue closed.
  bool Push(T item) {
    return Push(std::move(item), [](int64_t) {});
  }

  /// As Push, but reports blocking: when the caller finds the queue full
  /// and open, `blocked(elapsed_ticks)` is invoked once — after the lock is
  /// released — with the fastclock ticks spent waiting for space (or for
  /// close). Fast-path pushes never invoke the hook, so wait accounting
  /// counts only genuinely blocked intervals. The hook keeps this header
  /// free of any instrumentation dependency (callers bind it to the waits::
  /// taxonomy).
  template <typename Hook>
  bool Push(T item, Hook&& blocked) {
    int64_t waited = -1;
    bool pushed = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (!closed_ && items_.size() >= capacity_) {
        const int64_t start = fastclock::Ticks();
        not_full_.wait(
            lock, [this] { return closed_ || items_.size() < capacity_; });
        waited = fastclock::Ticks() - start;
      }
      if (!closed_) {
        items_.push_back(std::move(item));
        not_empty_.notify_one();
        pushed = true;
      }
    }
    if (waited >= 0) blocked(waited);
    return pushed;
  }

  /// Blocks while empty and open. Returns false once closed and drained.
  bool Pop(T* out) {
    return Pop(out, [](int64_t) {});
  }

  /// As Pop, but invokes `blocked(elapsed_ticks)` once (lock released) when
  /// the caller had to wait for an item or for close. See the Push hook.
  template <typename Hook>
  bool Pop(T* out, Hook&& blocked) {
    int64_t waited = -1;
    bool popped = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (!closed_ && items_.empty()) {
        const int64_t start = fastclock::Ticks();
        not_empty_.wait(lock,
                        [this] { return closed_ || !items_.empty(); });
        waited = fastclock::Ticks() - start;
      }
      if (!items_.empty()) {
        *out = std::move(items_.front());
        items_.pop_front();
        not_full_.notify_one();
        popped = true;
      }
    }
    if (waited >= 0) blocked(waited);
    return popped;
  }

  /// Non-blocking Pop; false when nothing is immediately available.
  bool TryPop(T* out) {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return true;
  }

  /// No more Pushes will succeed; Pops drain what is buffered.
  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  /// Buffered item count — an instantaneous reading for metrics (queue
  /// depth histograms); it can be stale by the time the caller uses it.
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  /// Reopens an empty state. Callers must have joined all producers and
  /// consumers first; this is single-threaded by contract.
  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    items_.clear();
    closed_ = false;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_full_, not_empty_;
  std::deque<T> items_;
  size_t capacity_;
  bool closed_ = false;
};

}  // namespace dhqp

#endif  // DHQP_EXECUTOR_BOUNDED_QUEUE_H_
