#ifndef DHQP_EXECUTOR_PROFILE_H_
#define DHQP_EXECUTOR_PROFILE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/fastclock.h"
#include "src/common/row.h"
#include "src/common/waits.h"
#include "src/net/network.h"

namespace dhqp {

/// Memory accounting for bytes a component is currently holding: buffering
/// operators (hash-join tables, aggregate hash tables, sort/spool buffers)
/// and queue stashes (exchange, prefetch) charge on materialization and
/// release on teardown. `current` is live-readable (dm_exec_requests shows
/// in-flight footprint); `peak` is the high-water mark that survives the
/// query (dm_exec_operator_stats, EXPLAIN ANALYZE `mem=`). Atomic because
/// exchange producers and prefetch threads charge concurrently with the
/// consumer, and DMV scans read mid-flight.
struct MemTracker {
  std::atomic<int64_t> current_{0};
  std::atomic<int64_t> peak_{0};

  void Add(int64_t bytes) {
    const int64_t now =
        current_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    int64_t prev = peak_.load(std::memory_order_relaxed);
    while (now > prev &&
           !peak_.compare_exchange_weak(prev, now, std::memory_order_relaxed)) {
    }
  }
  void Release(int64_t bytes) {
    current_.fetch_sub(bytes, std::memory_order_relaxed);
  }
  int64_t current() const { return current_.load(std::memory_order_relaxed); }
  int64_t peak() const { return peak_.load(std::memory_order_relaxed); }
};

/// Cheap estimate of the heap footprint of one materialized row: the value
/// vector's capacity plus owned string payloads. An accounting estimate (no
/// allocator introspection), consistent across operators so relative sizes
/// compare.
inline int64_t RowMemBytes(const Row& row) {
  int64_t bytes = static_cast<int64_t>(sizeof(Row)) +
                  static_cast<int64_t>(row.capacity() * sizeof(Value));
  for (const Value& v : row) {
    if (!v.is_null() && v.type() == DataType::kString) {
      bytes += static_cast<int64_t>(v.string_value().capacity());
    }
  }
  return bytes;
}

/// Actual execution statistics for one operator occurrence in an exec tree
/// — the SET STATISTICS PROFILE analog. The tree mirrors the physical plan
/// (one node per operator occurrence; memo winners can share PhysicalOp
/// subplans, so profiles hang off the exec tree, not the plan). Counters
/// are atomic: parallel Concat branches and prefetch producer threads
/// update an operator's profile concurrently with the consumer. Times are
/// accumulated in fastclock ticks (cheap per-row) and converted to ns on
/// read; they are *inclusive* — a parent's Next time contains its
/// children's, like Showplan subtree costs. Next-call time is *sampled*
/// (1-in-N calls timed, scaled back up at flush), so `next_ticks` is an
/// estimate; row/open/restart counts are always exact.
struct OperatorProfile {
  int id = 0;                ///< Pre-order operator id; matches EXPLAIN.
  std::string name;          ///< PhysicalOp::Describe() snapshot.
  std::string link;          ///< Linked-server name for remote ops.
  double estimated_rows = 0;
  double estimated_cost = 0;

  std::atomic<int64_t> rows_out{0};
  std::atomic<int64_t> batches{0};   ///< Remote block fetches delivered here.
  std::atomic<int64_t> exec_batches{0};  ///< Local executor NextBatch calls
                                         ///< served (0 in row-at-a-time
                                         ///< mode); distinct from `batches`,
                                         ///< which counts remote wire
                                         ///< blocks.
  std::atomic<int64_t> opens{0};
  std::atomic<int64_t> restarts{0};  ///< Rescans (rewinds) of this operator.
  std::atomic<int64_t> open_ticks{0};
  std::atomic<int64_t> next_ticks{0};
  std::atomic<int64_t> close_ticks{0};

  /// Link traffic attributed to this operator (installed as the calling
  /// thread's charge sink around remote operator calls).
  net::LinkChargeSink link_charges;

  /// Blocked time attributed to this operator, per wait type: queue stalls
  /// inside this operator's Next/producer threads, link wire time + retry
  /// backoff of its remote calls. Unlike open/next/close ticks these are
  /// *exclusive* — one blocked interval lands in exactly one operator — so
  /// summing wait_tally across the tree never double-counts.
  waits::WaitTally wait_tally;

  /// Bytes this operator is holding (hash tables, sort buffers, queue
  /// stashes). `mem.current()` is the live footprint dm_exec_requests sums;
  /// `mem.peak()` survives completion for dm_exec_operator_stats and the
  /// EXPLAIN ANALYZE `mem=` annotation.
  MemTracker mem;

  /// Spill activity under a memory grant: files this operator wrote (sort
  /// runs, Grace partitions, spooled results) and the serialized bytes they
  /// received. Surfaces as the EXPLAIN ANALYZE `spill=` annotation and the
  /// dm_exec_operator_stats spill columns.
  std::atomic<int64_t> spills{0};
  std::atomic<int64_t> spill_bytes{0};

  std::vector<std::unique_ptr<OperatorProfile>> children;

  int64_t open_ns() const { return fastclock::ToNs(open_ticks.load()); }
  int64_t next_ns() const { return fastclock::ToNs(next_ticks.load()); }
  int64_t close_ns() const { return fastclock::ToNs(close_ticks.load()); }
  /// Inclusive wall time across open + next + close.
  int64_t total_ns() const {
    return fastclock::ToNs(open_ticks.load() + next_ticks.load() +
                           close_ticks.load());
  }
};

/// EXPLAIN ANALYZE rendering: one line per operator,
///   `#<id> <name>  [est_rows=.. act_rows=.. time_ms=.. opens=..]`
/// plus restart, remote-link (link=/msgs=/batches=/retries=/timeouts=),
/// wire-row, peak-memory (mem=) and wait annotations where they apply.
std::string RenderOperatorProfile(const OperatorProfile& profile);

/// One operator occurrence of a flattened profile tree: the node plus its
/// parent's pre-order id (0 for the root). The profile must outlive the
/// flattened view (dm_exec_operator_stats flattens profiles it holds via
/// shared_ptr, so this is guaranteed there).
struct FlatOperator {
  const OperatorProfile* op = nullptr;
  int parent_id = 0;
};

/// Flattens a profile tree in pre-order — the same visit order that assigns
/// the ids EXPLAIN prints, so row i of the result carries id matching the
/// EXPLAIN line i.
std::vector<FlatOperator> FlattenOperatorProfile(const OperatorProfile& root);

}  // namespace dhqp

#endif  // DHQP_EXECUTOR_PROFILE_H_
