#ifndef DHQP_EXECUTOR_EXCHANGE_H_
#define DHQP_EXECUTOR_EXCHANGE_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/executor/bounded_queue.h"
#include "src/executor/exec.h"

namespace dhqp {

class ExchangeSegment;

/// Shares nested exchange segments between the sibling workers of one
/// fragment: all consumers of a repartition exchange must pop from ONE set
/// of producer threads, so the first worker to open the exchange creates
/// the segment and the rest attach. Keyed by the exchange's occurrence
/// ordinal within the fragment plan — every worker builds the same plan in
/// the same order, so ordinals agree across workers (and, unlike the plan
/// node pointer, distinguish two occurrences of a shared subplan).
class ExchangeSegmentRegistry {
 public:
  std::shared_ptr<ExchangeSegment> GetOrCreate(
      int ordinal,
      const std::function<std::shared_ptr<ExchangeSegment>()>& factory);

  /// Drops all references. Segments no consumer kept alive stop here.
  void Clear();

 private:
  std::mutex mu_;
  std::map<int, std::shared_ptr<ExchangeSegment>> segments_;
};

/// The shared half of one exchange operator occurrence: P producer threads
/// each run their own fragment instance (built via BuildFragmentTree) and
/// route whole RowBatches into C bounded queues — queue index 0 for gather,
/// round-robin for distribute, HashRowKeys % C for repartition. Buffers
/// recycle through a bounded stash so the steady state allocates nothing.
/// The last producer out closes every queue; a producer error closes them
/// early (fail-fast) and surfaces to consumers after the queues drain —
/// the same rows-then-error order a serial consumer observes.
class ExchangeSegment {
 public:
  /// `op` is the kExchange plan node; `child_profile` is the profile slot
  /// of op->children[0] (null when stats collection is off), shared by
  /// every producer's tree so per-worker stats merge additively.
  /// `exchange_profile` is the exchange operator's own slot: queue waits on
  /// either side of the segment (producer full-stalls, consumer
  /// empty-stalls) are attributed to the exchange itself.
  ExchangeSegment(PhysicalOpPtr op, ExecContext* ctx,
                  OperatorProfile* child_profile,
                  OperatorProfile* exchange_profile = nullptr);
  ~ExchangeSegment();

  ExchangeSegment(const ExchangeSegment&) = delete;
  ExchangeSegment& operator=(const ExchangeSegment&) = delete;

  /// Launches the producer threads. Idempotent — every consumer calls it
  /// from Open and the first one wins.
  void Start();

  /// Blocking pop for consumer stream `partition`. True with a batch;
  /// false at end of data; the first producer error after the drain.
  Result<bool> Pop(int partition, RowBatch* out);

  /// Returns a drained buffer to the recycle stash (capacity preserved).
  void Recycle(RowBatch&& batch);

  /// Closes all queues and joins the producers. Safe to call repeatedly;
  /// runs in the destructor for early-abandoned segments (e.g. under Top).
  void Stop();

  int producers() const { return producers_; }
  int consumers() const { return consumers_; }

 private:
  void ProducerLoop(int p);
  Status RunProducer(int p);
  Status PumpGatherOrDistribute(ExecNode* tree, int p, bool batched,
                                int cadence);
  Status PumpRepartition(ExecNode* tree, bool batched, int cadence);
  /// Pulls the next worker batch from the fragment tree (NextBatch in
  /// batch mode, a Next() loop in row mode — preserving each mode's
  /// operator-driving contract). False at end of data.
  Result<bool> PullBatch(ExecNode* tree, bool batched, int cadence,
                         RowBatch* batch);
  void RecordError(const Status& status);
  void CloseAll();
  void JoinAll();
  RowBatch TakeRecycled();
  /// False when the queue closed (consumer gone or a peer errored).
  bool PushBatch(int queue, RowBatch&& batch);
  /// Memory accounting for rows parked in the queues: producers charge on
  /// push, consumers release on pop, the destructor releases whatever a
  /// closed queue still held. Charged to the exchange operator's profile
  /// slot and the query tracker.
  void ChargeQueueMem(int64_t bytes);
  void ReleaseQueueMem(int64_t bytes);

  PhysicalOpPtr op_;
  ExecContext* ctx_;
  OperatorProfile* child_profile_;
  OperatorProfile* exchange_profile_;
  int producers_;
  int consumers_;
  std::vector<int> key_pos_;  ///< exchange_keys positions in child output.
  std::vector<std::unique_ptr<BoundedQueue<RowBatch>>> queues_;
  ExchangeSegmentRegistry nested_;  ///< Exchanges inside the fragment.
  std::vector<std::thread> threads_;
  std::mutex start_mu_;
  bool started_ = false;
  std::atomic<int> active_{0};
  std::mutex error_mu_;
  Status first_error_;
  std::mutex join_mu_;
  bool joined_ = false;
  std::mutex recycle_mu_;
  std::vector<RowBatch> recycle_;
  size_t recycle_cap_;
  /// Bytes currently parked in the queues (not yet popped); what the
  /// destructor must release for abandoned segments.
  std::atomic<int64_t> queued_bytes_{0};
};

/// Consumer-side exchange operator: one instance per consumer stream,
/// bound to its partition's queue. The top-level instance (in the serial
/// region of the plan) owns its segment privately; instances inside a
/// fragment share the segment through the enclosing registry. Restart is
/// unsupported by design — the optimizer marks exchanges non-rescannable,
/// so a Spool enforcer sits above when rescans are required.
class ExchangeNode : public ExecNode {
 public:
  ExchangeNode(PhysicalOpPtr op, ExecContext* ctx,
               OperatorProfile* child_profile,
               ExchangeSegmentRegistry* registry, int ordinal, int partition);

  Status Open() override;
  Result<bool> Next(Row* out) override;
  Result<bool> NextBatch(RowBatch* out, int max_rows) override;
  Status Restart() override {
    return Status::NotSupported("exchange does not support Restart");
  }

 private:
  /// Ensures current_ has unserved rows; sets done_ at end of data.
  Result<bool> FillCurrent();

  ExecContext* ctx_;
  OperatorProfile* child_profile_;
  ExchangeSegmentRegistry* registry_;
  int ordinal_;
  int partition_;
  std::shared_ptr<ExchangeSegment> segment_;
  RowBatch current_;
  size_t pos_ = 0;
  bool done_ = false;
};

}  // namespace dhqp

#endif  // DHQP_EXECUTOR_EXCHANGE_H_
