#ifndef DHQP_EXECUTOR_SPILL_H_
#define DHQP_EXECUTOR_SPILL_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>

#include "src/common/row.h"
#include "src/common/status.h"
#include "src/common/waits.h"

namespace dhqp {
namespace spill {

/// The spill-file directory used when EngineOptions::spill_directory is
/// empty: the platform temp directory.
std::string DefaultSpillDir();

/// One temp file of serialized rows — the unit the grant-enforced operators
/// spill in: a sorted run of an external sort, one Grace partition of a
/// hash join build/probe side or a hash aggregate's input, or an entire
/// spooled result. Write-then-read: Append rows, FinishWrite once, then
/// Rewind/Next any number of times (spools reread per rescan). The file is
/// process-private (host byte order, no versioning) and deleted on
/// destruction, so an abandoned spill — fault abort mid-query — leaves
/// nothing behind.
///
/// I/O is buffered in kIoChunkBytes chunks; each physical read/write is
/// charged as a SPILL_IO wait to the global histograms, the calling
/// thread's query tally, and `op_tally` when provided (the owning
/// operator's slot), so spill time shows up in dm_os_wait_stats and
/// EXPLAIN ANALYZE like any other blocked interval.
class SpillFile {
 public:
  /// Creates a uniquely named file under `dir` (empty = DefaultSpillDir()).
  static Result<std::unique_ptr<SpillFile>> Create(
      const std::string& dir, waits::WaitTally* op_tally = nullptr);
  ~SpillFile();

  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;

  Status Append(const Row& row);
  /// Flushes buffered writes; the file becomes readable. Append is invalid
  /// afterwards.
  Status FinishWrite();
  /// (Re)starts reading from the first row. Requires FinishWrite.
  Status Rewind();
  /// Sequential read; false at end of data.
  Result<bool> Next(Row* out);

  int64_t rows() const { return rows_; }
  /// Serialized bytes written (the exec.spill_bytes currency).
  int64_t bytes() const { return bytes_; }

 private:
  SpillFile(std::FILE* file, std::string path, waits::WaitTally* op_tally)
      : file_(file), path_(std::move(path)), op_tally_(op_tally) {}

  Status FlushWriteBuffer();
  /// Ensures >= `n` unread bytes are buffered; false (with OK status) at
  /// clean end of file when zero bytes remain.
  Result<bool> EnsureReadable(size_t n);
  /// Like EnsureReadable, but mid-row: anything short of `n` bytes —
  /// including a clean end of file — is a truncation error.
  Status Need(size_t n);

  static constexpr size_t kIoChunkBytes = 256 * 1024;

  std::FILE* file_ = nullptr;
  std::string path_;
  waits::WaitTally* op_tally_ = nullptr;
  std::string wbuf_;
  std::string rbuf_;
  size_t rpos_ = 0;
  int64_t rows_ = 0;
  int64_t bytes_ = 0;
  bool finished_ = false;
};

}  // namespace spill
}  // namespace dhqp

#endif  // DHQP_EXECUTOR_SPILL_H_
