#ifndef DHQP_EXECUTOR_EVAL_H_
#define DHQP_EXECUTOR_EVAL_H_

#include <map>
#include <string>
#include <vector>

#include "src/common/row.h"
#include "src/provider/provider.h"
#include "src/sql/bound_expr.h"

namespace dhqp {

namespace fulltext {
class FullTextService;
}  // namespace fulltext

/// Evaluation environment: up to two input rows (join operands) with their
/// column-id -> position maps, the query's parameter bindings, the engine's
/// notion of "today" (deterministic TODAY()), and the full-text matcher used
/// when CONTAINS is evaluated directly against text.
struct EvalEnv {
  const std::map<int, int>* col_pos = nullptr;
  const Row* row = nullptr;
  const std::map<int, int>* col_pos2 = nullptr;
  const Row* row2 = nullptr;
  const std::map<std::string, Value>* params = nullptr;
  int64_t current_date = 0;
};

/// Evaluates a bound scalar expression; SQL three-valued semantics for
/// comparisons and AND/OR/NOT (NULL-yielding operands propagate).
Result<Value> EvalExpr(const ScalarExpr& expr, const EvalEnv& env);

/// Predicate truth: non-NULL boolean true.
Result<bool> EvalPredicate(const ScalarExpr& expr, const EvalEnv& env);

/// Indices of selected rows within a RowBatch, ascending. The batch
/// executor's qualification currency: filters produce one, downstream
/// batch evaluation consumes one.
using SelectionVector = std::vector<int>;

/// Evaluates `expr` as a predicate over every row of `batch`, appending the
/// indices of qualifying rows (non-NULL boolean true, exactly
/// EvalPredicate's truth) to `sel`, which is cleared first. `env.row` is
/// rebound internally; error semantics match the row loop — evaluation
/// stops at the first failing row, in row order.
///
/// The batch entry amortizes what EvalPredicate pays per row: env setup,
/// the operator-loop call overhead, and — for the common shapes
/// (column-vs-literal comparisons and AND conjunctions of them) — the whole
/// recursive expression walk, which collapses into a tight compare loop.
Status EvalPredicateBatch(const ScalarExpr& expr, EvalEnv env,
                          const RowBatch& batch, SelectionVector* sel);

/// Evaluates a scalar over the rows of `batch` selected by `sel` (all rows
/// when `sel` is null), appending one Value per selected row to `out` (not
/// cleared: callers accumulate columns). Column and literal expressions
/// skip the recursive walk entirely.
Status EvalExprBatch(const ScalarExpr& expr, EvalEnv env,
                     const RowBatch& batch, const SelectionVector* sel,
                     std::vector<Value>* out);

}  // namespace dhqp

#endif  // DHQP_EXECUTOR_EVAL_H_
