#ifndef DHQP_EXECUTOR_EVAL_H_
#define DHQP_EXECUTOR_EVAL_H_

#include <map>
#include <string>

#include "src/common/row.h"
#include "src/sql/bound_expr.h"

namespace dhqp {

namespace fulltext {
class FullTextService;
}  // namespace fulltext

/// Evaluation environment: up to two input rows (join operands) with their
/// column-id -> position maps, the query's parameter bindings, the engine's
/// notion of "today" (deterministic TODAY()), and the full-text matcher used
/// when CONTAINS is evaluated directly against text.
struct EvalEnv {
  const std::map<int, int>* col_pos = nullptr;
  const Row* row = nullptr;
  const std::map<int, int>* col_pos2 = nullptr;
  const Row* row2 = nullptr;
  const std::map<std::string, Value>* params = nullptr;
  int64_t current_date = 0;
};

/// Evaluates a bound scalar expression; SQL three-valued semantics for
/// comparisons and AND/OR/NOT (NULL-yielding operands propagate).
Result<Value> EvalExpr(const ScalarExpr& expr, const EvalEnv& env);

/// Predicate truth: non-NULL boolean true.
Result<bool> EvalPredicate(const ScalarExpr& expr, const EvalEnv& env);

}  // namespace dhqp

#endif  // DHQP_EXECUTOR_EVAL_H_
