#ifndef DHQP_EXECUTOR_PREFETCH_H_
#define DHQP_EXECUTOR_PREFETCH_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/executor/bounded_queue.h"
#include "src/executor/exec.h"
#include "src/provider/provider.h"

namespace dhqp {

/// Asynchronous block-fetch pipeline over a (remote) rowset: a background
/// producer thread drains the inner rowset through NextBatch() into a
/// bounded queue while the consumer processes earlier batches — so the
/// link's per-message latency overlaps with local join/aggregate work
/// instead of being paid inline (§4.1.3's network-cost story, executed).
///
/// Threading contract: Next/NextBatch/Restart are called by one consumer
/// thread; the inner rowset is touched only by the producer thread while it
/// runs (Restart joins the producer before rewinding the inner rowset).
/// Producer errors are carried across the queue and surface as the
/// consumer's Result<> once buffered batches are drained.
class PrefetchingRowset : public Rowset {
 public:
  /// `stats` and `profile` may be null (no counter reporting / no operator
  /// attribution). When `profile` is set, the producer thread installs its
  /// link-charge sink — so remote traffic paid on the producer's behalf is
  /// attributed to the owning operator — and counts batches into it;
  /// batches parked in the queue charge the profile's memory tracker and
  /// `query_mem` (the query-wide tracker, also nullable). Starts the
  /// producer immediately; the first batches are usually in flight before
  /// the consumer asks for the first row.
  PrefetchingRowset(std::unique_ptr<Rowset> inner, const ExecOptions& options,
                    ExecStats* stats, OperatorProfile* profile = nullptr,
                    MemTracker* query_mem = nullptr);
  ~PrefetchingRowset() override;

  PrefetchingRowset(const PrefetchingRowset&) = delete;
  PrefetchingRowset& operator=(const PrefetchingRowset&) = delete;

  const Schema& schema() const override { return schema_; }

  Result<bool> Next(Row* out) override;
  Result<bool> NextBatch(RowBatch* out, int max_rows) override;

  /// Tears the producer down, rewinds the inner rowset and relaunches —
  /// the rescan path for prefetching nodes. Fails (NotSupported) when the
  /// inner rowset cannot rewind; callers fall back to reopening. Works after
  /// a transient producer fault: the sticky error is cleared and the new
  /// producer re-drains from the start.
  Status Restart() override;

  /// Number of producer threads currently alive across all instances. The
  /// chaos suite asserts this returns to zero after every query: a consumer
  /// abandoning a rowset mid-stream (error, LIMIT, cancelled sibling) must
  /// never leak its producer.
  static int64_t live_producers();

 private:
  void Start();
  void Stop();
  void ProducerLoop();
  /// Pops the next batch into `current_`; false at end of stream or error.
  Result<bool> Advance();
  /// Returns a drained batch's storage to the producer (bounded stash), so
  /// the pipeline cycles a fixed set of RowBatch buffers instead of
  /// allocating one per batch: consumer -> recycle stash -> producer ->
  /// queue -> consumer.
  void Recycle(RowBatch&& batch);
  /// Producer side of the cycle: a recycled buffer, or a fresh one while
  /// the cycle is still filling.
  RowBatch TakeRecycled();
  /// Queue-residency memory accounting: the producer charges each batch
  /// before pushing, the consumer releases on pop, Stop() settles whatever
  /// a torn-down pipeline still held.
  void ChargeQueueMem(int64_t bytes);
  void ReleaseQueueMem(int64_t bytes);

  std::unique_ptr<Rowset> inner_;
  Schema schema_;  ///< Copied: schema() must not race with the producer.
  int batch_rows_;
  ExecStats* stats_;
  OperatorProfile* profile_;
  MemTracker* query_mem_;
  /// Bytes currently parked in the queue; settled by Stop() for batches no
  /// consumer will pop.
  std::atomic<int64_t> queued_bytes_{0};

  BoundedQueue<RowBatch> queue_;
  std::thread producer_;

  std::mutex status_mu_;
  Status producer_status_;  ///< First producer error; guarded by status_mu_.

  std::mutex recycle_mu_;
  std::vector<RowBatch> recycle_;  ///< Guarded by recycle_mu_.

  RowBatch current_;
  size_t pos_ = 0;
  bool done_ = false;
};

}  // namespace dhqp

#endif  // DHQP_EXECUTOR_PREFETCH_H_
