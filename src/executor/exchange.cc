#include "src/executor/exchange.h"

#include <algorithm>
#include <utility>

#include "src/common/activity.h"
#include "src/common/row.h"
#include "src/common/trace.h"
#include "src/common/waits.h"

namespace dhqp {

namespace {

int64_t BatchMemBytes(const RowBatch& batch) {
  int64_t bytes = 0;
  for (const Row& row : batch.rows) bytes += RowMemBytes(row);
  return bytes;
}

}  // namespace

// ---------------------------------------------------------------------------
// ExchangeSegmentRegistry.
// ---------------------------------------------------------------------------

std::shared_ptr<ExchangeSegment> ExchangeSegmentRegistry::GetOrCreate(
    int ordinal,
    const std::function<std::shared_ptr<ExchangeSegment>()>& factory) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = segments_.find(ordinal);
  if (it != segments_.end()) return it->second;
  auto segment = factory();
  segments_[ordinal] = segment;
  return segment;
}

void ExchangeSegmentRegistry::Clear() {
  std::map<int, std::shared_ptr<ExchangeSegment>> dropped;
  {
    std::lock_guard<std::mutex> lock(mu_);
    dropped.swap(segments_);
  }
  // Destructors (→ Stop) run outside the registry lock.
}

// ---------------------------------------------------------------------------
// ExchangeSegment.
// ---------------------------------------------------------------------------

ExchangeSegment::ExchangeSegment(PhysicalOpPtr op, ExecContext* ctx,
                                 OperatorProfile* child_profile,
                                 OperatorProfile* exchange_profile)
    : op_(std::move(op)),
      ctx_(ctx),
      child_profile_(child_profile),
      exchange_profile_(exchange_profile) {
  const PhysicalOp& child = *op_->children[0];
  producers_ = std::max(child.dop, 1);
  consumers_ = std::max(op_->dop, 1);
  for (int key : op_->exchange_keys) {
    auto it = std::find(child.output_cols.begin(), child.output_cols.end(),
                        key);
    key_pos_.push_back(it == child.output_cols.end()
                           ? 0
                           : static_cast<int>(it - child.output_cols.begin()));
  }
  size_t depth = static_cast<size_t>(
      std::max(ctx_->options.prefetch_queue_depth, 1));
  queues_.reserve(static_cast<size_t>(consumers_));
  for (int c = 0; c < consumers_; ++c) {
    queues_.push_back(std::make_unique<BoundedQueue<RowBatch>>(depth));
  }
  recycle_cap_ = static_cast<size_t>(producers_ + consumers_) +
                 depth * static_cast<size_t>(consumers_);
}

ExchangeSegment::~ExchangeSegment() {
  Stop();
  // Batches still parked in closed queues (early-abandoned segment, e.g.
  // under Top) die with the queues — settle their charge.
  const int64_t leftover = queued_bytes_.exchange(0, std::memory_order_relaxed);
  if (leftover > 0) {
    if (exchange_profile_ != nullptr) exchange_profile_->mem.Release(leftover);
    if (ctx_->memory != nullptr) ctx_->memory->Release(leftover);
  }
}

void ExchangeSegment::ChargeQueueMem(int64_t bytes) {
  if (bytes <= 0) return;
  queued_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  if (exchange_profile_ != nullptr) exchange_profile_->mem.Add(bytes);
  if (ctx_->memory != nullptr) ctx_->memory->Add(bytes);
}

void ExchangeSegment::ReleaseQueueMem(int64_t bytes) {
  if (bytes <= 0) return;
  queued_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
  if (exchange_profile_ != nullptr) exchange_profile_->mem.Release(bytes);
  if (ctx_->memory != nullptr) ctx_->memory->Release(bytes);
}

void ExchangeSegment::Start() {
  std::lock_guard<std::mutex> lock(start_mu_);
  if (started_) return;
  started_ = true;
  active_.store(producers_);
  threads_.reserve(static_cast<size_t>(producers_));
  // Producers run on the launching query's behalf: its wait tally and
  // activity id (installed on the thread calling Start — the consumer, or
  // an enclosing fragment's producer for nested segments) transfer to each
  // worker.
  for (int p = 0; p < producers_; ++p) {
    threads_.emplace_back([this, p, query_waits = waits::CurrentQueryTally(),
                           aid = activity::Current(),
                           etag = trace::CurrentEngineTag()] {
      trace::Tracer::SetCurrentThreadName("exchange.worker" +
                                          std::to_string(p));
      waits::ScopedQueryTally tally(query_waits);
      activity::Scope act(aid);
      trace::EngineTagScope engine_tag(etag);
      ProducerLoop(p);
    });
  }
}

void ExchangeSegment::ProducerLoop(int p) {
  Status status = RunProducer(p);
  if (!status.ok()) {
    RecordError(status);
    CloseAll();  // Fail fast: peers stop at their next Push.
  }
  if (active_.fetch_sub(1) == 1) CloseAll();  // Last producer out.
}

Status ExchangeSegment::RunProducer(int p) {
  FragmentContext frag;
  frag.partition = p;
  frag.dop = producers_;
  frag.exchanges = &nested_;
  DHQP_ASSIGN_OR_RETURN(
      std::unique_ptr<ExecNode> tree,
      BuildFragmentTree(op_->children[0], ctx_, child_profile_, frag));
  // Exchange workers count as parallel branches (parallel_workers()).
  ctx_->stats.parallel_branches.fetch_add(1, std::memory_order_relaxed);
  DHQP_RETURN_NOT_OK(tree->Open());
  bool batched = ctx_->options.exec_batch_rows > 0;
  int cadence = batched ? ctx_->options.exec_batch_rows
                        : (ctx_->options.concat_worker_batch_rows > 0
                               ? ctx_->options.concat_worker_batch_rows
                               : 64);
  if (op_->exchange == ExchangeKind::kRepartitionHash) {
    return PumpRepartition(tree.get(), batched, cadence);
  }
  return PumpGatherOrDistribute(tree.get(), p, batched, cadence);
}

Result<bool> ExchangeSegment::PullBatch(ExecNode* tree, bool batched,
                                        int cadence, RowBatch* batch) {
  if (batched) return tree->NextBatch(batch, cadence);
  batch->clear();
  Row row;
  while (static_cast<int>(batch->rows.size()) < cadence) {
    DHQP_ASSIGN_OR_RETURN(bool has, tree->Next(&row));
    if (!has) break;
    batch->rows.push_back(std::move(row));
  }
  return !batch->rows.empty();
}

Status ExchangeSegment::PumpGatherOrDistribute(ExecNode* tree, int p,
                                               bool batched, int cadence) {
  // Gather funnels into queue 0; distribute rotates whole batches, each
  // producer starting at its own offset to spread load.
  int target = op_->exchange == ExchangeKind::kGather ? 0 : p % consumers_;
  for (;;) {
    RowBatch batch = TakeRecycled();
    DHQP_ASSIGN_OR_RETURN(bool has, PullBatch(tree, batched, cadence, &batch));
    if (!has) return Status::OK();
    if (!PushBatch(target, std::move(batch))) return Status::OK();
    if (op_->exchange == ExchangeKind::kDistribute) {
      target = (target + 1) % consumers_;
    }
  }
}

Status ExchangeSegment::PumpRepartition(ExecNode* tree, bool batched,
                                        int cadence) {
  std::vector<RowBatch> accum(static_cast<size_t>(consumers_));
  RowBatch pulled;
  for (;;) {
    DHQP_ASSIGN_OR_RETURN(bool has, PullBatch(tree, batched, cadence, &pulled));
    if (!has) break;
    for (Row& row : pulled.rows) {
      size_t c = HashRowKeys(row, key_pos_) % static_cast<size_t>(consumers_);
      accum[c].rows.push_back(std::move(row));
      if (static_cast<int>(accum[c].rows.size()) >= cadence) {
        RowBatch full = std::move(accum[c]);
        accum[c] = TakeRecycled();
        if (!PushBatch(static_cast<int>(c), std::move(full))) {
          return Status::OK();
        }
      }
    }
    pulled.clear();
  }
  for (size_t c = 0; c < accum.size(); ++c) {
    if (accum[c].rows.empty()) continue;
    if (!PushBatch(static_cast<int>(c), std::move(accum[c]))) {
      return Status::OK();
    }
  }
  return Status::OK();
}

Result<bool> ExchangeSegment::Pop(int partition, RowBatch* out) {
  BoundedQueue<RowBatch>& queue = *queues_[static_cast<size_t>(partition)];
  bool got = queue.TryPop(out);
  if (!got) {
    ctx_->stats.prefetch_stalls.fetch_add(1, std::memory_order_relaxed);
    got = queue.Pop(out, [this](int64_t ticks) {
      waits::RecordWait(waits::WaitType::kExchangeQueuePop, ticks,
                        exchange_profile_ != nullptr
                            ? &exchange_profile_->wait_tally
                            : nullptr);
    });
  }
  if (got) {
    ReleaseQueueMem(BatchMemBytes(*out));
    return true;
  }
  // Closed and drained: settle the producers, then surface any error —
  // after the buffered rows, exactly where a serial consumer sees it.
  JoinAll();
  std::lock_guard<std::mutex> lock(error_mu_);
  if (!first_error_.ok()) return first_error_;
  return false;
}

void ExchangeSegment::Recycle(RowBatch&& batch) {
  batch.clear();
  std::lock_guard<std::mutex> lock(recycle_mu_);
  if (recycle_.size() < recycle_cap_) recycle_.push_back(std::move(batch));
}

RowBatch ExchangeSegment::TakeRecycled() {
  std::lock_guard<std::mutex> lock(recycle_mu_);
  if (recycle_.empty()) return RowBatch{};
  RowBatch batch = std::move(recycle_.back());
  recycle_.pop_back();
  return batch;
}

bool ExchangeSegment::PushBatch(int queue, RowBatch&& batch) {
  // Charge before the push so the consumer's release (which may run the
  // instant the push lands) never observes an uncharged batch.
  const int64_t bytes = BatchMemBytes(batch);
  ChargeQueueMem(bytes);
  const bool pushed = queues_[static_cast<size_t>(queue)]->Push(
      std::move(batch), [this](int64_t ticks) {
        waits::RecordWait(waits::WaitType::kExchangeQueuePush, ticks,
                          exchange_profile_ != nullptr
                              ? &exchange_profile_->wait_tally
                              : nullptr);
      });
  if (!pushed) {
    ReleaseQueueMem(bytes);
    return false;
  }
  ctx_->stats.exchange_batches.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void ExchangeSegment::RecordError(const Status& status) {
  std::lock_guard<std::mutex> lock(error_mu_);
  if (first_error_.ok()) first_error_ = status;
}

void ExchangeSegment::CloseAll() {
  for (auto& queue : queues_) queue->Close();
}

void ExchangeSegment::JoinAll() {
  std::lock_guard<std::mutex> lock(join_mu_);
  if (joined_) return;
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  joined_ = true;
}

void ExchangeSegment::Stop() {
  CloseAll();
  JoinAll();
  // Producers have exited, so their trees released the nested segments;
  // any the registry still holds stop in their destructors here.
  nested_.Clear();
}

// ---------------------------------------------------------------------------
// ExchangeNode.
// ---------------------------------------------------------------------------

ExchangeNode::ExchangeNode(PhysicalOpPtr op, ExecContext* ctx,
                           OperatorProfile* child_profile,
                           ExchangeSegmentRegistry* registry, int ordinal,
                           int partition)
    : ExecNode(std::move(op)),
      ctx_(ctx),
      child_profile_(child_profile),
      registry_(registry),
      ordinal_(ordinal),
      partition_(partition) {}

Status ExchangeNode::Open() {
  if (segment_ == nullptr) {
    auto factory = [this] {
      return std::make_shared<ExchangeSegment>(op_, ctx_, child_profile_,
                                               profile());
    };
    segment_ =
        registry_ != nullptr ? registry_->GetOrCreate(ordinal_, factory)
                             : factory();
  }
  if (partition_ < 0 || partition_ >= segment_->consumers()) {
    return Status::Internal("exchange consumer partition " +
                            std::to_string(partition_) + " out of range");
  }
  segment_->Start();
  current_.clear();
  pos_ = 0;
  done_ = false;
  return Status::OK();
}

Result<bool> ExchangeNode::FillCurrent() {
  while (pos_ >= current_.rows.size()) {
    if (!current_.rows.empty()) {
      segment_->Recycle(std::move(current_));
      current_ = RowBatch{};
    }
    pos_ = 0;
    DHQP_ASSIGN_OR_RETURN(bool has, segment_->Pop(partition_, &current_));
    if (!has) {
      done_ = true;
      return false;
    }
  }
  return true;
}

Result<bool> ExchangeNode::Next(Row* out) {
  if (done_) return false;
  DHQP_ASSIGN_OR_RETURN(bool has, FillCurrent());
  if (!has) return false;
  *out = std::move(current_.rows[pos_++]);
  return true;
}

Result<bool> ExchangeNode::NextBatch(RowBatch* out, int max_rows) {
  out->clear();
  if (done_ || max_rows <= 0) return false;
  DHQP_ASSIGN_OR_RETURN(bool has, FillCurrent());
  if (!has) return false;
  if (pos_ == 0 && static_cast<int>(current_.rows.size()) <= max_rows) {
    // Wholesale handoff: the batch crosses without a row copy (the buffer
    // leaves the recycle cycle with it).
    *out = std::move(current_);
    current_ = RowBatch{};
    return true;
  }
  size_t n = current_.rows.size() - pos_;
  if (n > static_cast<size_t>(max_rows)) n = static_cast<size_t>(max_rows);
  out->rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out->rows.push_back(std::move(current_.rows[pos_ + i]));
  }
  pos_ += n;
  if (pos_ >= current_.rows.size()) {
    segment_->Recycle(std::move(current_));
    current_ = RowBatch{};
    pos_ = 0;
  }
  return true;
}

}  // namespace dhqp
