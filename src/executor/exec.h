#ifndef DHQP_EXECUTOR_EXEC_H_
#define DHQP_EXECUTOR_EXEC_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/catalog/catalog.h"
#include "src/executor/eval.h"
#include "src/executor/profile.h"
#include "src/fulltext/service.h"
#include "src/optimizer/physical.h"

namespace dhqp {

/// Runtime counters surfaced to benches and EXPLAIN ANALYZE-style output.
/// Fields are atomic because prefetch threads and parallel partitioned-view
/// branches update them concurrently with the consumer; reads convert
/// implicitly to int64_t.
struct ExecStats {
  std::atomic<int64_t> remote_commands{0};   ///< Remote ICommand executions.
  std::atomic<int64_t> remote_opens{0};      ///< Remote rowset/index opens.
  std::atomic<int64_t> remote_fetches{0};    ///< Remote bookmark fetches.
  std::atomic<int64_t> rows_from_remote{0};  ///< Rows from linked servers.
  std::atomic<int64_t> remote_batches{0};    ///< Block fetches from remotes.
  std::atomic<int64_t> prefetch_stalls{0};   ///< Consumer waits on an async
                                             ///< producer (empty queue).
  std::atomic<int64_t> startup_skips{0};     ///< Subtrees skipped by startup
                                             ///< filters.
  std::atomic<int64_t> partitions_opened{0};  ///< Concat branches executed.
  std::atomic<int64_t> parallel_branches{0};  ///< Subtrees drained on worker
                                              ///< threads: parallel Concat
                                              ///< branches AND exchange
                                              ///< workers (see
                                              ///< parallel_workers()).
  std::atomic<int64_t> exchange_batches{0};   ///< RowBatches moved through
                                              ///< exchange queues.
  std::atomic<int64_t> spool_rescans{0};  ///< Rescans served from spools.
  std::atomic<int64_t> rows_output{0};
  std::atomic<int64_t> exec_batches{0};    ///< Batches the top-level sink
                                           ///< pulled (0 in row-at-a-time
                                           ///< mode).
  std::atomic<int64_t> exec_batch_rows{0};  ///< Rows delivered through those
                                            ///< batches; ratio to
                                            ///< exec_batches gives the
                                            ///< effective batch size.
  std::atomic<int64_t> remote_retries{0};   ///< Link message resends.
  std::atomic<int64_t> remote_timeouts{0};  ///< Per-message deadline misses.
  std::atomic<int64_t> faults_injected{0};  ///< Attempts failed by the fault
                                            ///< injector (tests/chaos only).
  std::atomic<int64_t> members_skipped{0};  ///< Unreachable partitioned-view
                                            ///< members skipped by the
                                            ///< degradation knob.
  std::atomic<int64_t> spills{0};       ///< Spill files written under a
                                        ///< memory grant (sort runs, Grace
                                        ///< partitions, spooled results).
  std::atomic<int64_t> spill_bytes{0};  ///< Serialized bytes those files
                                        ///< received.

  ExecStats() = default;
  ExecStats(const ExecStats& other) { *this = other; }
  ExecStats& operator=(const ExecStats& other) {
    remote_commands = other.remote_commands.load();
    remote_opens = other.remote_opens.load();
    remote_fetches = other.remote_fetches.load();
    rows_from_remote = other.rows_from_remote.load();
    remote_batches = other.remote_batches.load();
    prefetch_stalls = other.prefetch_stalls.load();
    startup_skips = other.startup_skips.load();
    partitions_opened = other.partitions_opened.load();
    parallel_branches = other.parallel_branches.load();
    exchange_batches = other.exchange_batches.load();
    spool_rescans = other.spool_rescans.load();
    rows_output = other.rows_output.load();
    exec_batches = other.exec_batches.load();
    exec_batch_rows = other.exec_batch_rows.load();
    remote_retries = other.remote_retries.load();
    remote_timeouts = other.remote_timeouts.load();
    faults_injected = other.faults_injected.load();
    members_skipped = other.members_skipped.load();
    spills = other.spills.load();
    spill_bytes = other.spill_bytes.load();
    return *this;
  }

  /// Total subtrees drained on worker threads this execution — parallel
  /// Concat branches plus exchange producer workers. Historically named
  /// parallel_branches (kept for compatibility); this accessor is the
  /// preferred spelling now that exchange workers count too.
  int64_t parallel_workers() const { return parallel_branches.load(); }
};

// ExecStats is copied field by field above because atomics are not
// copyable. When adding or removing a counter, update BOTH the copy
// ctor/operator= and the expected field count here — this guard is what
// keeps a new counter from silently reading as zero in QueryResult
// snapshots.
static_assert(sizeof(ExecStats) == 20 * sizeof(std::atomic<int64_t>),
              "ExecStats field list changed: update the hand-written copy "
              "routine and this assert together");

/// Runtime knobs for remote data movement. Independent of plan choice —
/// and so excluded from the plan-cache key — with one exception: `dop`
/// feeds the optimizer (OptimizerOptions::max_dop) and is part of the key.
struct ExecOptions {
  /// Max degree of intra-query parallelism: worker threads a parallel
  /// region (between exchange operators) may use. 1 = serial plans only
  /// (exact pre-PR behavior). The optimizer decides per query whether
  /// parallelism pays (exchange startup + per-row transfer vs divided
  /// operator work); remote subtrees always stay serial.
  int dop = 1;
  /// Drain remote scans / remote queries through a background prefetch
  /// thread so link latency overlaps with local processing.
  bool enable_remote_prefetch = true;
  /// Rows per block fetch (Rowset::NextBatch) on remote streams — the
  /// IRowset::GetNextRows cRows argument.
  int remote_batch_rows = 512;
  /// Rows per batch in the *local* executor: when > 0 every operator with a
  /// native batch path streams RowBatches through ExecNode::NextBatch and
  /// predicates/scalars evaluate over whole batches (selection vectors),
  /// amortizing the per-row virtual dispatch the Volcano model pays.
  /// 0 = classic row-at-a-time Next(), preserved bit-for-bit for A/B runs.
  /// Results are identical either way (the batch differential suite holds
  /// this); remote block-fetch granularity stays remote_batch_rows.
  int exec_batch_rows = 1024;
  /// Rows a parallel Concat worker buffers locally before publishing to the
  /// consumer queue, keeping queue synchronization off the per-row path.
  int concat_worker_batch_rows = 64;
  /// Sample rate for per-operator Next()-call timing in row-at-a-time mode
  /// (1 of every N calls is RDTSC-timed and scaled back up); rounded down
  /// to a power of two. Batch mode times every NextBatch call instead —
  /// the batch amortizes the clock reads. Must be >= 1.
  int profile_sample_every = 16;
  /// Batches buffered ahead of the consumer (double buffering and beyond).
  int prefetch_queue_depth = 4;
  /// Max Concat branches (partitioned-view members) drained concurrently;
  /// <= 1 keeps the strictly sequential executor.
  int concat_dop = 4;
  /// Graceful degradation for partitioned views: when a member fails with a
  /// network error *before contributing any row*, drop that member from the
  /// result (counted in ExecStats::members_skipped, reported through
  /// ExecContext::warnings) instead of failing the query. A member that
  /// already emitted rows still fails the query — never a silent partial
  /// member. Off by default: partial answers must be opted into.
  bool skip_unreachable_members = false;
  /// Collect per-operator actual execution stats (rows, wall time, remote
  /// traffic) into an OperatorProfile tree — the STATISTICS PROFILE analog
  /// behind EXPLAIN ANALYZE. Cheap (RDTSC-based timing, relaxed atomics)
  /// but not free; the observability bench measures the overhead.
  bool collect_operator_stats = true;
};

/// Shared execution state for one query. Not copyable (warnings_mu);
/// constructed per execution and outlives the exec tree.
struct ExecContext {
  Catalog* catalog = nullptr;
  fulltext::FullTextService* fulltext = nullptr;
  std::map<std::string, Value> params;  ///< User + correlation parameters.
  int64_t current_date = 0;
  ExecOptions options;
  ExecStats stats;
  /// Non-fatal execution notices (e.g. members skipped by
  /// skip_unreachable_members). Guarded by warnings_mu: parallel Concat
  /// workers append concurrently.
  std::mutex warnings_mu;
  std::vector<std::string> warnings;
  /// Per-operator actual stats tree, populated by BuildExecTree when
  /// options.collect_operator_stats is set. Shared so QueryResult can keep
  /// it after the context dies; MUST outlive the exec tree (close times are
  /// recorded as nodes destruct).
  std::shared_ptr<OperatorProfile> profile;
  /// Query-wide memory tracker (the current request's, wired by
  /// RunCachedPlan; null when monitoring is off). Buffering operators and
  /// queue stashes charge it alongside their per-operator slot so
  /// dm_exec_requests can report one live memory_bytes per query. Must
  /// outlive the exec tree — releases happen as nodes destruct.
  MemTracker* memory = nullptr;
  /// Workload-governor memory grant: when > 0, buffering operators spill
  /// (Grace partitions, external merge runs) instead of letting `memory`
  /// grow past this many bytes. Enforcement needs a non-null `memory`
  /// tracker — RunCachedPlan wires a query-local fallback when request
  /// monitoring is off. 0 = unlimited (exact pre-governor behavior).
  int64_t grant_bytes = 0;
  /// Directory for spill temp files; empty = the platform temp dir.
  std::string spill_dir;
  /// Max recursive Grace-repartition depth. A partition that still exceeds
  /// the grant at the cap is processed in memory regardless — correctness
  /// over enforcement (the classic hash-recursion bailout).
  int spill_depth_cap = 4;
};

/// A Volcano-style executor node: Open() prepares, Next() streams rows,
/// Restart() rewinds (re-evaluating correlation parameters — the mechanism
/// behind parameterized remote queries).
class ExecNode {
 public:
  explicit ExecNode(PhysicalOpPtr op) : op_(std::move(op)) {
    for (size_t i = 0; i < op_->output_cols.size(); ++i) {
      col_pos_[op_->output_cols[i]] = static_cast<int>(i);
    }
  }
  virtual ~ExecNode() = default;

  virtual Status Open() = 0;
  virtual Result<bool> Next(Row* out) = 0;
  virtual Status Restart() = 0;

  /// Batch-at-a-time pull: fills `out` (cleared first) with up to `max_rows`
  /// rows. Same contract as Rowset::NextBatch — false only at end of data
  /// (out left empty); a partial batch returns true. The default loops
  /// Next(), so every operator works unmodified under a batching consumer;
  /// hot operators override it with native batch paths. A consumer must
  /// drive a given child through either Next or NextBatch between rewinds,
  /// not both interleaved (Open/Restart reset any internal batch buffers).
  /// A mid-batch error from Next() is deferred: the rows collected so far
  /// are returned and the error surfaces on the following call — exactly
  /// the order a row-at-a-time consumer observes it in, which is what keeps
  /// error-handling decisions (e.g. Concat's member-skip rule) independent
  /// of the batch size.
  virtual Result<bool> NextBatch(RowBatch* out, int max_rows);

  const PhysicalOp& op() const { return *op_; }
  /// Shared plan node (the profiling wrapper shares its inner node's op).
  const PhysicalOpPtr& op_ptr() const { return op_; }
  /// Column-id -> output position.
  const std::map<int, int>& col_pos() const { return col_pos_; }

  /// Attaches this operator occurrence's profile (owned by the context's
  /// profile tree); remote nodes attribute their link traffic through it.
  void set_profile(OperatorProfile* profile) { profile_ = profile; }
  OperatorProfile* profile() const { return profile_; }

 protected:
  PhysicalOpPtr op_;
  std::map<int, int> col_pos_;
  OperatorProfile* profile_ = nullptr;

 private:
  /// Error raised by Next() mid-way through a default NextBatch fill,
  /// surfaced on the following call (see NextBatch).
  Status deferred_batch_status_;
};

/// Builds an executable tree from a physical plan.
Result<std::unique_ptr<ExecNode>> BuildExecTree(const PhysicalOpPtr& plan,
                                                ExecContext* ctx);

class ExchangeSegmentRegistry;  // exchange.h

/// Per-worker context for building one exchange-fragment instance: which
/// partition this worker owns, the fragment's total worker count, and the
/// registry that lets sibling workers share nested exchange segments.
struct FragmentContext {
  int partition = 0;
  int dop = 1;
  ExchangeSegmentRegistry* exchanges = nullptr;
};

/// Builds an executable tree for one worker of an exchange fragment.
/// Unlike BuildExecTree, exec nodes attach to the EXISTING profile subtree
/// `profile` (created by the consumer-side build; may be null when stats
/// collection is off) instead of creating new slots — per-worker instances
/// of an operator aggregate additively into one shared OperatorProfile, so
/// EXPLAIN ANALYZE totals stay truthful at any dop. Called by
/// ExchangeSegment from its producer threads.
Result<std::unique_ptr<ExecNode>> BuildFragmentTree(
    const PhysicalOpPtr& plan, ExecContext* ctx, OperatorProfile* profile,
    const FragmentContext& frag);

/// Runs a plan to completion, returning the materialized result with a
/// schema derived from the plan's output names/types.
Result<std::unique_ptr<VectorRowset>> ExecutePlan(const PhysicalOpPtr& plan,
                                                  ExecContext* ctx);

}  // namespace dhqp

#endif  // DHQP_EXECUTOR_EXEC_H_
