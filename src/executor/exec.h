#ifndef DHQP_EXECUTOR_EXEC_H_
#define DHQP_EXECUTOR_EXEC_H_

#include <map>
#include <memory>
#include <string>

#include "src/catalog/catalog.h"
#include "src/executor/eval.h"
#include "src/fulltext/service.h"
#include "src/optimizer/physical.h"

namespace dhqp {

/// Runtime counters surfaced to benches and EXPLAIN ANALYZE-style output.
struct ExecStats {
  int64_t remote_commands = 0;    ///< Remote ICommand executions.
  int64_t remote_opens = 0;       ///< Remote rowset/index opens.
  int64_t remote_fetches = 0;     ///< Remote bookmark fetches.
  int64_t rows_from_remote = 0;   ///< Rows received from linked servers.
  int64_t startup_skips = 0;      ///< Subtrees skipped by startup filters.
  int64_t partitions_opened = 0;  ///< Concat branches actually executed.
  int64_t spool_rescans = 0;      ///< Rescans served from spools.
  int64_t rows_output = 0;
};

/// Shared execution state for one query.
struct ExecContext {
  Catalog* catalog = nullptr;
  fulltext::FullTextService* fulltext = nullptr;
  std::map<std::string, Value> params;  ///< User + correlation parameters.
  int64_t current_date = 0;
  ExecStats stats;
};

/// A Volcano-style executor node: Open() prepares, Next() streams rows,
/// Restart() rewinds (re-evaluating correlation parameters — the mechanism
/// behind parameterized remote queries).
class ExecNode {
 public:
  explicit ExecNode(PhysicalOpPtr op) : op_(std::move(op)) {
    for (size_t i = 0; i < op_->output_cols.size(); ++i) {
      col_pos_[op_->output_cols[i]] = static_cast<int>(i);
    }
  }
  virtual ~ExecNode() = default;

  virtual Status Open() = 0;
  virtual Result<bool> Next(Row* out) = 0;
  virtual Status Restart() = 0;

  const PhysicalOp& op() const { return *op_; }
  /// Column-id -> output position.
  const std::map<int, int>& col_pos() const { return col_pos_; }

 protected:
  PhysicalOpPtr op_;
  std::map<int, int> col_pos_;
};

/// Builds an executable tree from a physical plan.
Result<std::unique_ptr<ExecNode>> BuildExecTree(const PhysicalOpPtr& plan,
                                                ExecContext* ctx);

/// Runs a plan to completion, returning the materialized result with a
/// schema derived from the plan's output names/types.
Result<std::unique_ptr<VectorRowset>> ExecutePlan(const PhysicalOpPtr& plan,
                                                  ExecContext* ctx);

}  // namespace dhqp

#endif  // DHQP_EXECUTOR_EXEC_H_
