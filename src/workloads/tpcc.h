#ifndef DHQP_WORKLOADS_TPCC_H_
#define DHQP_WORKLOADS_TPCC_H_

#include <memory>
#include <vector>

#include "src/core/engine.h"
#include "src/net/network.h"
#include "src/txn/dtc.h"

namespace dhqp {
namespace workloads {

/// A TPC-C-style federation (the world-record configuration of [17],
/// §4.1.5, at miniature scale): `num_members` engines, customers hash-
/// partitioned by warehouse across members via CHECK constraints, fronted by
/// a coordinator engine with a distributed partitioned view.
struct TpccFederation {
  std::unique_ptr<Engine> coordinator;
  std::vector<std::unique_ptr<Engine>> members;
  std::vector<std::unique_ptr<net::Link>> links;  // One per member.
  int warehouses_per_member = 0;

  /// Runs one new-order-style transaction for (warehouse, customer): reads
  /// the customer through the partitioned view, then inserts an order row
  /// into the owning member under a 2PC transaction.
  Result<int64_t> NewOrder(TransactionCoordinator* dtc, int64_t warehouse,
                           int64_t customer_id, int64_t order_id);
};

struct TpccOptions {
  int num_members = 4;
  int warehouses_per_member = 2;
  int customers_per_warehouse = 100;
  uint64_t seed = 11;
  /// Per-member link latency in microseconds (0 = counting only).
  double link_latency_us = 0;
};

/// Builds the federation: member tables with warehouse-range CHECKs, the
/// coordinator's linked servers and the distributed partitioned views
/// `customers_all` and `orders_all`.
Result<std::unique_ptr<TpccFederation>> BuildTpccFederation(
    const TpccOptions& options);

}  // namespace workloads
}  // namespace dhqp

#endif  // DHQP_WORKLOADS_TPCC_H_
