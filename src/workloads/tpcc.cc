#include "src/workloads/tpcc.h"

#include "src/common/rng.h"
#include "src/connectors/engine_provider.h"
#include "src/connectors/linked_provider.h"

namespace dhqp {
namespace workloads {

Result<std::unique_ptr<TpccFederation>> BuildTpccFederation(
    const TpccOptions& options) {
  auto fed = std::make_unique<TpccFederation>();
  fed->warehouses_per_member = options.warehouses_per_member;
  EngineOptions copt;
  copt.name = "coordinator";
  fed->coordinator = std::make_unique<Engine>(copt);

  Rng rng(options.seed);
  std::string customers_view = "CREATE VIEW customers_all AS ";
  std::string orders_view = "CREATE VIEW orders_all AS ";
  for (int m = 0; m < options.num_members; ++m) {
    EngineOptions mopt;
    mopt.name = "member" + std::to_string(m);
    auto member = std::make_unique<Engine>(mopt);
    int64_t w_lo = static_cast<int64_t>(m) * options.warehouses_per_member + 1;
    int64_t w_hi = w_lo + options.warehouses_per_member - 1;

    DHQP_RETURN_NOT_OK(
        member
            ->Execute("CREATE TABLE customers (w_id INT NOT NULL CHECK "
                      "(w_id BETWEEN " +
                      std::to_string(w_lo) + " AND " + std::to_string(w_hi) +
                      "), c_id INT NOT NULL, c_name VARCHAR(24), "
                      "c_balance FLOAT)")
            .status());
    DHQP_RETURN_NOT_OK(
        member
            ->Execute("CREATE INDEX idx_cust ON customers (w_id, c_id)")
            .status());
    DHQP_RETURN_NOT_OK(
        member
            ->Execute("CREATE TABLE orders (o_id INT NOT NULL, w_id INT NOT "
                      "NULL CHECK (w_id BETWEEN " +
                      std::to_string(w_lo) + " AND " + std::to_string(w_hi) +
                      "), c_id INT, amount FLOAT)")
            .status());
    for (int64_t w = w_lo; w <= w_hi; ++w) {
      for (int c = 1; c <= options.customers_per_warehouse; ++c) {
        DHQP_ASSIGN_OR_RETURN(
            int64_t id,
            member->storage()->InsertRow(
                -1, "customers",
                {Value::Int64(w), Value::Int64(c),
                 Value::String("cust-" + rng.Word(8)),
                 Value::Double(static_cast<double>(rng.Uniform(0, 100000)) /
                               100.0)}));
        (void)id;
      }
    }

    std::string server = "member" + std::to_string(m);
    auto link = std::make_unique<net::Link>(server, options.link_latency_us,
                                            0.5, options.link_latency_us > 0);
    auto provider = std::make_shared<LinkedDataSource>(
        std::make_shared<EngineDataSource>(member.get()), link.get());
    DHQP_RETURN_NOT_OK(fed->coordinator->AddLinkedServer(server, provider));

    if (m > 0) {
      customers_view += " UNION ALL ";
      orders_view += " UNION ALL ";
    }
    customers_view += "SELECT * FROM " + server + ".tpcc.dbo.customers";
    orders_view += "SELECT * FROM " + server + ".tpcc.dbo.orders";

    fed->members.push_back(std::move(member));
    fed->links.push_back(std::move(link));
  }
  DHQP_RETURN_NOT_OK(fed->coordinator->Execute(customers_view).status());
  DHQP_RETURN_NOT_OK(fed->coordinator->Execute(orders_view).status());
  return std::move(fed);
}

Result<int64_t> TpccFederation::NewOrder(TransactionCoordinator* dtc,
                                         int64_t warehouse,
                                         int64_t customer_id,
                                         int64_t order_id) {
  // Read the customer through the partitioned view: startup filters prune
  // all but the owning member.
  DHQP_ASSIGN_OR_RETURN(
      QueryResult lookup,
      coordinator->Execute(
          "SELECT c_balance FROM customers_all WHERE w_id = @w AND c_id = @c",
          {{"@w", Value::Int64(warehouse)}, {"@c", Value::Int64(customer_id)}}));
  if (lookup.rowset->rows().empty()) {
    return Status::NotFound("customer not found");
  }
  double balance = lookup.rowset->rows()[0][0].AsDouble();

  // Insert the order on the owning member under a distributed transaction.
  int member_idx =
      static_cast<int>((warehouse - 1) / warehouses_per_member);
  DHQP_ASSIGN_OR_RETURN(int source_id, coordinator->catalog()->GetLinkedServerId(
                                           "member" + std::to_string(member_idx)));
  DHQP_ASSIGN_OR_RETURN(Session * session,
                        coordinator->catalog()->GetSession(source_id));
  int64_t txn = dtc->Begin();
  DHQP_RETURN_NOT_OK(dtc->Enlist(txn, session, "member" +
                                                   std::to_string(member_idx)));
  Status insert = session
                      ->InsertRows("orders", {{Value::Int64(order_id),
                                               Value::Int64(warehouse),
                                               Value::Int64(customer_id),
                                               Value::Double(balance / 10)}})
                      .status();
  if (!insert.ok()) {
    (void)dtc->Abort(txn);
    return insert;
  }
  DHQP_RETURN_NOT_OK(dtc->Commit(txn));
  return order_id;
}

}  // namespace workloads
}  // namespace dhqp
