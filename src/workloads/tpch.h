#ifndef DHQP_WORKLOADS_TPCH_H_
#define DHQP_WORKLOADS_TPCH_H_

#include "src/core/engine.h"

namespace dhqp {
namespace workloads {

/// Options for the TPC-H-style generator. Scale factor 1.0 corresponds to
/// the classic row counts (customer 150k, supplier 10k, orders 1.5M); the
/// benches run at 0.001-0.1. Distributions (keys, dates, nations) follow the
/// spec shapes closely enough that the paper's Example 1 plan choice (Fig 4)
/// reproduces: |customer ⋈ supplier on nationkey| is enormous relative to
/// |supplier ⋈ nation|.
struct TpchOptions {
  double scale_factor = 0.01;
  uint64_t seed = 42;
  bool with_indexes = true;      ///< Primary-key and FK indexes.
  bool include_orders = true;    ///< orders + lineitem tables.
};

/// Creates and fills nation/region/customer/supplier (+ orders/lineitem)
/// on `engine`'s local storage.
Status PopulateTpch(Engine* engine, const TpchOptions& options);

/// Creates and fills only the `lineitem` table, with rows restricted to
/// commit dates within [year_lo, year_hi] (for partitioned-view members per
/// §4.1.5's lineitem-by-year example). Adds the CHECK constraint on
/// l_commitdate.
Status PopulateLineitemPartition(Engine* engine, const TpchOptions& options,
                                 const std::string& table_name, int year_lo,
                                 int year_hi);

}  // namespace workloads
}  // namespace dhqp

#endif  // DHQP_WORKLOADS_TPCH_H_
