#include "src/workloads/tpch.h"

#include <algorithm>

#include "src/common/rng.h"

namespace dhqp {
namespace workloads {

namespace {

const char* kNations[] = {
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE",
    "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN",
    "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA",
    "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES"};
const char* kRegions[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                          "MIDDLE EAST"};
const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY",
                           "HOUSEHOLD"};

int64_t Count(double base, double sf) {
  return std::max<int64_t>(1, static_cast<int64_t>(base * sf));
}

Status InsertDirect(Engine* engine, const std::string& table, Row row) {
  DHQP_ASSIGN_OR_RETURN(int64_t id,
                        engine->storage()->InsertRow(-1, table, row));
  (void)id;
  return Status::OK();
}

Status FillLineitem(Engine* engine, const std::string& table, int64_t orders,
                    int64_t suppliers, uint64_t seed, int year_lo,
                    int year_hi) {
  Rng rng(seed);
  int64_t lo_days = CivilToDays(year_lo, 1, 1);
  int64_t hi_days = CivilToDays(year_hi, 12, 31);
  for (int64_t o = 1; o <= orders; ++o) {
    int lines = static_cast<int>(rng.Uniform(1, 7));
    for (int l = 1; l <= lines; ++l) {
      int64_t commit = rng.Uniform(lo_days, hi_days);
      Row row{Value::Int64(o),
              Value::Int64(l),
              Value::Int64(rng.Uniform(1, std::max<int64_t>(suppliers, 1))),
              Value::Int64(rng.Uniform(1, 50)),
              Value::Double(static_cast<double>(rng.Uniform(1000, 100000)) /
                            100.0),
              Value::Date(commit),
              Value::Date(commit + rng.Uniform(-30, 30))};
      DHQP_RETURN_NOT_OK(InsertDirect(engine, table, std::move(row)));
    }
  }
  return Status::OK();
}

}  // namespace

Status PopulateTpch(Engine* engine, const TpchOptions& options) {
  Rng rng(options.seed);
  const double sf = options.scale_factor;
  int64_t customers = Count(150000, sf);
  int64_t suppliers = Count(10000, sf);
  int64_t orders = Count(150000, sf) * 10;

  DHQP_RETURN_NOT_OK(
      engine
          ->Execute("CREATE TABLE region (r_regionkey INT PRIMARY KEY, "
                    "r_name VARCHAR(25))")
          .status());
  DHQP_RETURN_NOT_OK(
      engine
          ->Execute("CREATE TABLE nation (n_nationkey INT PRIMARY KEY, "
                    "n_name VARCHAR(25), n_regionkey INT)")
          .status());
  DHQP_RETURN_NOT_OK(
      engine
          ->Execute("CREATE TABLE supplier (s_suppkey INT PRIMARY KEY, "
                    "s_name VARCHAR(25), s_nationkey INT, s_acctbal FLOAT)")
          .status());
  DHQP_RETURN_NOT_OK(
      engine
          ->Execute(
              "CREATE TABLE customer (c_custkey INT PRIMARY KEY, "
              "c_name VARCHAR(25), c_address VARCHAR(40), "
              "c_phone VARCHAR(15), c_nationkey INT, c_acctbal FLOAT, "
              "c_mktsegment VARCHAR(10))")
          .status());

  for (int r = 0; r < 5; ++r) {
    DHQP_RETURN_NOT_OK(InsertDirect(
        engine, "region", {Value::Int64(r), Value::String(kRegions[r])}));
  }
  for (int n = 0; n < 25; ++n) {
    DHQP_RETURN_NOT_OK(InsertDirect(engine, "nation",
                                    {Value::Int64(n), Value::String(kNations[n]),
                                     Value::Int64(n % 5)}));
  }
  for (int64_t s = 1; s <= suppliers; ++s) {
    DHQP_RETURN_NOT_OK(InsertDirect(
        engine, "supplier",
        {Value::Int64(s), Value::String("Supplier#" + std::to_string(s)),
         Value::Int64(rng.Uniform(0, 24)),
         Value::Double(static_cast<double>(rng.Uniform(-99999, 999999)) /
                       100.0)}));
  }
  for (int64_t c = 1; c <= customers; ++c) {
    int64_t nation = rng.Uniform(0, 24);
    DHQP_RETURN_NOT_OK(InsertDirect(
        engine, "customer",
        {Value::Int64(c), Value::String("Customer#" + std::to_string(c)),
         Value::String("addr-" + rng.Word(12)),
         Value::String("phone-" + std::to_string(rng.Uniform(1000000, 9999999))),
         Value::Int64(nation),
         Value::Double(static_cast<double>(rng.Uniform(-99999, 999999)) /
                       100.0),
         Value::String(kSegments[rng.Uniform(0, 4)])}));
  }
  if (options.with_indexes) {
    DHQP_RETURN_NOT_OK(
        engine->Execute("CREATE INDEX idx_customer_nation ON customer "
                        "(c_nationkey)")
            .status());
    DHQP_RETURN_NOT_OK(
        engine->Execute("CREATE INDEX idx_supplier_nation ON supplier "
                        "(s_nationkey)")
            .status());
  }

  if (options.include_orders) {
    DHQP_RETURN_NOT_OK(
        engine
            ->Execute("CREATE TABLE orders (o_orderkey INT PRIMARY KEY, "
                      "o_custkey INT, o_orderdate DATE, o_totalprice FLOAT)")
            .status());
    DHQP_RETURN_NOT_OK(
        engine
            ->Execute("CREATE TABLE lineitem (l_orderkey INT, "
                      "l_linenumber INT, l_suppkey INT, l_quantity INT, "
                      "l_extendedprice FLOAT, l_commitdate DATE, "
                      "l_shipdate DATE)")
            .status());
    int64_t date_lo = CivilToDays(1992, 1, 1);
    int64_t date_hi = CivilToDays(1998, 12, 31);
    for (int64_t o = 1; o <= orders; ++o) {
      DHQP_RETURN_NOT_OK(InsertDirect(
          engine, "orders",
          {Value::Int64(o), Value::Int64(rng.Uniform(1, customers)),
           Value::Date(rng.Uniform(date_lo, date_hi)),
           Value::Double(static_cast<double>(rng.Uniform(10000, 50000000)) /
                         100.0)}));
    }
    DHQP_RETURN_NOT_OK(FillLineitem(engine, "lineitem", orders, suppliers,
                                    options.seed + 1, 1992, 1998));
    if (options.with_indexes) {
      DHQP_RETURN_NOT_OK(
          engine->Execute("CREATE INDEX idx_orders_cust ON orders (o_custkey)")
              .status());
      DHQP_RETURN_NOT_OK(
          engine
              ->Execute(
                  "CREATE INDEX idx_lineitem_order ON lineitem (l_orderkey)")
              .status());
    }
  }
  return Status::OK();
}

Status PopulateLineitemPartition(Engine* engine, const TpchOptions& options,
                                 const std::string& table_name, int year_lo,
                                 int year_hi) {
  std::string ddl =
      "CREATE TABLE " + table_name +
      " (l_orderkey INT, l_linenumber INT, l_suppkey INT, l_quantity INT, "
      "l_extendedprice FLOAT, l_commitdate DATE NOT NULL CHECK "
      "(l_commitdate BETWEEN '" +
      std::to_string(year_lo) + "-01-01' AND '" + std::to_string(year_hi) +
      "-12-31'), l_shipdate DATE)";
  DHQP_RETURN_NOT_OK(engine->Execute(ddl).status());
  int64_t orders = Count(150000, options.scale_factor);
  int64_t suppliers = Count(10000, options.scale_factor);
  DHQP_RETURN_NOT_OK(FillLineitem(engine, table_name, orders, suppliers,
                                  options.seed + static_cast<uint64_t>(year_lo),
                                  year_lo, year_hi));
  if (options.with_indexes) {
    DHQP_RETURN_NOT_OK(engine
                           ->Execute("CREATE INDEX idx_" + table_name +
                                     "_date ON " + table_name +
                                     " (l_commitdate)")
                           .status());
  }
  return Status::OK();
}

}  // namespace workloads
}  // namespace dhqp
