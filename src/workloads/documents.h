#ifndef DHQP_WORKLOADS_DOCUMENTS_H_
#define DHQP_WORKLOADS_DOCUMENTS_H_

#include <string>
#include <vector>

#include "src/connectors/mail_provider.h"
#include "src/fulltext/ifilter.h"

namespace dhqp {
namespace workloads {

/// Options for the synthetic document corpus (substitute for the paper's
/// NTFS document repository, §2.2). Documents mix formats (txt/html/doc/pdf
/// plus an un-filterable "zip") and draw words from topic vocabularies so
/// full-text queries have meaningful selectivity.
struct CorpusOptions {
  int num_documents = 1000;
  int words_per_document = 120;
  uint64_t seed = 7;
  /// Fraction of documents about "database systems" topics — these match
  /// the paper's example query ("parallel database" OR "heterogeneous
  /// query").
  double database_topic_fraction = 0.15;
};

/// Generates the corpus.
std::vector<fulltext::Document> GenerateCorpus(const CorpusOptions& options);

/// Generates a synthetic mailbox for the §2.4 salesman scenario: customers
/// from `cities` write in; some threads get replies. Message dates fall in
/// the `days` days before `today`.
std::vector<MailMessage> GenerateMailbox(int num_messages, int64_t today,
                                         int days, uint64_t seed);

}  // namespace workloads
}  // namespace dhqp

#endif  // DHQP_WORKLOADS_DOCUMENTS_H_
