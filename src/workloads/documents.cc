#include "src/workloads/documents.h"

#include "src/common/date.h"
#include "src/common/rng.h"

namespace dhqp {
namespace workloads {

namespace {

const char* kDatabaseWords[] = {
    "parallel",  "database", "heterogeneous", "query",     "optimizer",
    "transaction", "index",  "distributed",   "rowset",    "provider",
    "join",      "histogram", "partition",    "federated", "replication"};

const char* kGeneralWords[] = {
    "meeting",  "project", "budget",  "report",   "launch",  "schedule",
    "customer", "invoice", "running", "quarterly", "travel", "office",
    "planning", "review",  "deadline", "holiday",  "training", "coffee",
    "summary",  "forecast", "revenue", "contract", "design",  "testing"};

const char* kExtensions[] = {"txt", "html", "doc", "pdf", "zip"};

std::string MakeText(Rng* rng, int words, bool database_topic) {
  std::string text;
  for (int w = 0; w < words; ++w) {
    if (!text.empty()) text += ' ';
    bool db_word = database_topic ? rng->Uniform(0, 9) < 4
                                  : rng->Uniform(0, 99) < 2;
    if (db_word) {
      text += kDatabaseWords[rng->Uniform(
          0, static_cast<int64_t>(std::size(kDatabaseWords)) - 1)];
    } else {
      text += kGeneralWords[rng->Uniform(
          0, static_cast<int64_t>(std::size(kGeneralWords)) - 1)];
    }
  }
  return text;
}

}  // namespace

std::vector<fulltext::Document> GenerateCorpus(const CorpusOptions& options) {
  Rng rng(options.seed);
  std::vector<fulltext::Document> docs;
  docs.reserve(static_cast<size_t>(options.num_documents));
  for (int i = 0; i < options.num_documents; ++i) {
    bool db_topic =
        rng.NextDouble() < options.database_topic_fraction;
    std::string text = MakeText(&rng, options.words_per_document, db_topic);
    fulltext::Document doc;
    doc.extension = kExtensions[rng.Uniform(
        0, static_cast<int64_t>(std::size(kExtensions)) - 1)];
    doc.path = "d:\\docs\\file" + std::to_string(i) + "." + doc.extension;
    doc.create_days = CivilToDays(2003, 1, 1) + rng.Uniform(0, 600);
    if (doc.extension == "txt") {
      doc.raw = text;
    } else if (doc.extension == "html") {
      doc.raw = fulltext::EncodeHtml(text);
    } else if (doc.extension == "doc") {
      doc.raw = fulltext::EncodeDoc(text);
    } else if (doc.extension == "pdf") {
      doc.raw = fulltext::EncodePdf(text);
    } else {
      doc.raw = "PK\x03\x04 compressed " + text;  // No IFilter for zip.
    }
    doc.size = static_cast<int64_t>(doc.raw.size());
    docs.push_back(std::move(doc));
  }
  return docs;
}

std::vector<MailMessage> GenerateMailbox(int num_messages, int64_t today,
                                         int days, uint64_t seed) {
  Rng rng(seed);
  const char* kSenders[] = {"ann@contoso.com",   "li@fabrikam.com",
                            "omar@northwind.com", "kate@adventure.com",
                            "raj@tailspin.com",   "sue@wingtip.com"};
  std::vector<MailMessage> messages;
  for (int i = 0; i < num_messages; ++i) {
    MailMessage m;
    m.msg_id = i + 1;
    m.from = kSenders[rng.Uniform(
        0, static_cast<int64_t>(std::size(kSenders)) - 1)];
    m.to = "smith@example.com";
    m.subject = "subject " + rng.Word(6);
    m.body = MakeText(&rng, 40, false);
    m.date_days = today - rng.Uniform(0, days);
    m.in_reply_to = -1;
    messages.push_back(std::move(m));
  }
  // The salesman replies to roughly half the messages: a reply is a message
  // whose InReplyTo names the original.
  int replies = num_messages / 2;
  for (int i = 0; i < replies; ++i) {
    MailMessage reply;
    reply.msg_id = num_messages + i + 1;
    reply.from = "smith@example.com";
    int64_t target = rng.Uniform(1, num_messages);
    reply.to = messages[static_cast<size_t>(target - 1)].from;
    reply.subject = "re: " + messages[static_cast<size_t>(target - 1)].subject;
    reply.body = MakeText(&rng, 20, false);
    reply.date_days = messages[static_cast<size_t>(target - 1)].date_days;
    reply.in_reply_to = target;
    messages.push_back(std::move(reply));
  }
  return messages;
}

}  // namespace workloads
}  // namespace dhqp
