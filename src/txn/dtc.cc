#include "src/txn/dtc.h"

namespace dhqp {

int64_t TransactionCoordinator::Begin() {
  int64_t id = next_id_++;
  txns_[id] = Txn{};
  return id;
}

Result<TransactionCoordinator::Txn*> TransactionCoordinator::Find(
    int64_t txn_id) {
  auto it = txns_.find(txn_id);
  if (it == txns_.end()) {
    return Status::NotFound("distributed transaction " +
                            std::to_string(txn_id) + " unknown");
  }
  return &it->second;
}

Status TransactionCoordinator::Enlist(int64_t txn_id, Session* session,
                                      const std::string& name) {
  DHQP_ASSIGN_OR_RETURN(Txn * txn, Find(txn_id));
  if (txn->outcome != TxnOutcome::kActive) {
    return Status::TransactionAborted("transaction already decided");
  }
  DHQP_RETURN_NOT_OK(session->BeginTransaction(txn_id));
  txn->participants.push_back(Participant{session, name});
  return Status::OK();
}

Status TransactionCoordinator::Commit(int64_t txn_id) {
  DHQP_ASSIGN_OR_RETURN(Txn * txn, Find(txn_id));
  if (txn->outcome != TxnOutcome::kActive) {
    return Status::TransactionAborted("transaction already decided");
  }
  // Phase 1: prepare — collect votes.
  for (const Participant& p : txn->participants) {
    Status vote = p.session->PrepareTransaction(txn_id);
    if (!vote.ok()) {
      // Unilateral abort: roll back everyone (including the naysayer).
      txn->outcome = TxnOutcome::kAborted;
      for (const Participant& q : txn->participants) {
        (void)q.session->AbortTransaction(txn_id);
      }
      return Status::TransactionAborted("participant '" + p.name +
                                        "' voted no: " + vote.message());
    }
  }
  // Decision point: the outcome is now logged as committed; phase-2
  // failures are retried, never reversed.
  txn->outcome = TxnOutcome::kCommitted;
  for (const Participant& p : txn->participants) {
    Status st = p.session->CommitTransaction(txn_id);
    int attempts = 0;
    while (!st.ok() && attempts++ < 3) {
      ++commit_retries_;
      st = p.session->CommitTransaction(txn_id);
    }
    if (!st.ok()) {
      // In a real system the commit record stays queued for recovery; here
      // we surface the inconsistency to the caller.
      return Status::NetworkError("participant '" + p.name +
                                  "' unreachable in commit phase (decision "
                                  "logged as committed): " +
                                  st.message());
    }
  }
  return Status::OK();
}

Status TransactionCoordinator::Abort(int64_t txn_id) {
  DHQP_ASSIGN_OR_RETURN(Txn * txn, Find(txn_id));
  if (txn->outcome == TxnOutcome::kCommitted) {
    return Status::TransactionAborted("cannot abort a committed transaction");
  }
  txn->outcome = TxnOutcome::kAborted;
  Status first_error;
  for (const Participant& p : txn->participants) {
    Status st = p.session->AbortTransaction(txn_id);
    if (!st.ok() && first_error.ok()) first_error = st;
  }
  return first_error;
}

TxnOutcome TransactionCoordinator::Outcome(int64_t txn_id) const {
  auto it = txns_.find(txn_id);
  return it == txns_.end() ? TxnOutcome::kAborted : it->second.outcome;
}

}  // namespace dhqp
