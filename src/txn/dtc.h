#ifndef DHQP_TXN_DTC_H_
#define DHQP_TXN_DTC_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/provider/provider.h"

namespace dhqp {

/// Final decision recorded for a distributed transaction.
enum class TxnOutcome { kActive, kCommitted, kAborted };

/// The Microsoft-DTC stand-in (§2): a two-phase-commit coordinator that
/// "ensures atomicity of transactions across data sources". Participants are
/// provider sessions that implement the transaction enlistment surface
/// (ITransactionJoin in OLE DB terms).
///
/// Protocol: Begin -> Enlist* -> Commit (prepare all, then commit all) or
/// Abort. A 'no' vote or failure during prepare aborts every participant; a
/// failure during the commit phase after a unanimous 'yes' is retried
/// against that participant (presumed-commit: the decision is durable in the
/// coordinator's log).
class TransactionCoordinator {
 public:
  /// Starts a new distributed transaction and returns its id.
  int64_t Begin();

  /// Enlists a participant; calls BeginTransaction on the session.
  Status Enlist(int64_t txn_id, Session* session, const std::string& name);

  /// Runs two-phase commit. On any prepare failure the transaction is
  /// aborted everywhere and TransactionAborted is returned.
  Status Commit(int64_t txn_id);

  /// Aborts everywhere.
  Status Abort(int64_t txn_id);

  /// Recorded outcome (the coordinator's log).
  TxnOutcome Outcome(int64_t txn_id) const;

  /// Commit-phase retries performed (observability for failure-injection
  /// tests).
  int64_t commit_retries() const { return commit_retries_; }

 private:
  struct Participant {
    Session* session;
    std::string name;
  };
  struct Txn {
    std::vector<Participant> participants;
    TxnOutcome outcome = TxnOutcome::kActive;
  };

  Result<Txn*> Find(int64_t txn_id);

  int64_t next_id_ = 1;
  std::map<int64_t, Txn> txns_;
  int64_t commit_retries_ = 0;
};

}  // namespace dhqp

#endif  // DHQP_TXN_DTC_H_
