#include "src/sql/lexer.h"

#include <cctype>
#include <unordered_set>

namespace dhqp {

namespace {

// Reserved words of the supported Transact-SQL subset. Anything else
// alphanumeric is an identifier.
const std::unordered_set<std::string>& Keywords() {
  static const auto* kKeywords = new std::unordered_set<std::string>{
      "SELECT", "FROM",     "WHERE",    "GROUP",    "BY",       "HAVING",
      "ORDER",  "ASC",      "DESC",     "TOP",      "DISTINCT", "AS",
      "JOIN",   "INNER",    "LEFT",     "RIGHT",    "OUTER",    "ON",
      "AND",    "OR",       "NOT",      "IN",       "EXISTS",   "BETWEEN",
      "LIKE",   "IS",       "NULL",     "TRUE",     "FALSE",    "UNION",
      "ALL",    "CREATE",   "TABLE",    "VIEW",     "INDEX",    "UNIQUE",
      "INSERT", "INTO",     "VALUES",   "CHECK",    "PRIMARY",  "KEY",
      "INT",    "INTEGER",  "BIGINT",   "FLOAT",    "DOUBLE",   "VARCHAR",
      "TEXT",   "DATE",     "DATETIME", "BOOLEAN",  "BIT",      "CONTAINS",
      "COUNT",  "SUM",      "AVG",      "MIN",      "MAX",      "CASE",
      "WHEN",   "THEN",     "ELSE",     "END",      "CAST",     "CROSS",
      "OPENQUERY", "DELETE", "UPDATE",  "SET",      "DROP",     "SEMI",
      "EXPLAIN", "ANALYZE",
      "ANTI",
  };
  return *kKeywords;
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    Token tok;
    tok.position = i;
    // Identifier or keyword.
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '_')) {
        ++i;
      }
      std::string word = sql.substr(start, i - start);
      std::string upper = word;
      for (char& ch : upper) {
        ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
      }
      if (Keywords().count(upper) > 0) {
        tok.type = TokenType::kKeyword;
        tok.text = upper;
      } else {
        tok.type = TokenType::kIdentifier;
        tok.text = word;
      }
      tokens.push_back(std::move(tok));
      continue;
    }
    // Bracketed identifier [name].
    if (c == '[') {
      size_t end = sql.find(']', i + 1);
      if (end == std::string::npos) {
        return Status::InvalidArgument("unterminated [identifier] at offset " +
                                       std::to_string(i));
      }
      tok.type = TokenType::kIdentifier;
      tok.text = sql.substr(i + 1, end - i - 1);
      i = end + 1;
      tokens.push_back(std::move(tok));
      continue;
    }
    // Double-quoted identifier.
    if (c == '"') {
      size_t end = sql.find('"', i + 1);
      if (end == std::string::npos) {
        return Status::InvalidArgument("unterminated \"identifier\"");
      }
      tok.type = TokenType::kIdentifier;
      tok.text = sql.substr(i + 1, end - i - 1);
      i = end + 1;
      tokens.push_back(std::move(tok));
      continue;
    }
    // Access-style #date# literal: lexed as a string; comparisons against
    // date columns coerce it (the decoder emits this form for providers
    // with DateLiteralStyle::kHashDelimited).
    if (c == '#') {
      size_t end = sql.find('#', i + 1);
      if (end == std::string::npos) {
        return Status::InvalidArgument("unterminated #date# literal");
      }
      tok.type = TokenType::kString;
      tok.text = sql.substr(i + 1, end - i - 1);
      i = end + 1;
      tokens.push_back(std::move(tok));
      continue;
    }
    // String literal with '' escaping.
    if (c == '\'') {
      std::string text;
      ++i;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {
            text += '\'';
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        text += sql[i++];
      }
      if (!closed) {
        return Status::InvalidArgument("unterminated string literal");
      }
      tok.type = TokenType::kString;
      tok.text = std::move(text);
      tokens.push_back(std::move(tok));
      continue;
    }
    // Number.
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      bool is_float = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      if (i < n && sql[i] == '.' && i + 1 < n &&
          std::isdigit(static_cast<unsigned char>(sql[i + 1]))) {
        is_float = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      if (i < n && (sql[i] == 'e' || sql[i] == 'E')) {
        size_t j = i + 1;
        if (j < n && (sql[j] == '+' || sql[j] == '-')) ++j;
        if (j < n && std::isdigit(static_cast<unsigned char>(sql[j]))) {
          is_float = true;
          i = j;
          while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
        }
      }
      tok.type = is_float ? TokenType::kFloat : TokenType::kInteger;
      tok.text = sql.substr(start, i - start);
      tokens.push_back(std::move(tok));
      continue;
    }
    // Parameter.
    if (c == '@') {
      size_t start = i++;
      while (i < n && (std::isalnum(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '_')) {
        ++i;
      }
      if (i == start + 1) {
        return Status::InvalidArgument("bare '@' at offset " +
                                       std::to_string(start));
      }
      tok.type = TokenType::kParameter;
      tok.text = sql.substr(start, i - start);
      tokens.push_back(std::move(tok));
      continue;
    }
    // Operators and punctuation.
    switch (c) {
      case ',':
        tok.type = TokenType::kComma;
        tok.text = ",";
        ++i;
        break;
      case '.':
        tok.type = TokenType::kDot;
        tok.text = ".";
        ++i;
        break;
      case '(':
        tok.type = TokenType::kLParen;
        tok.text = "(";
        ++i;
        break;
      case ')':
        tok.type = TokenType::kRParen;
        tok.text = ")";
        ++i;
        break;
      case ';':
        tok.type = TokenType::kSemicolon;
        tok.text = ";";
        ++i;
        break;
      case '<':
        tok.type = TokenType::kOperator;
        if (i + 1 < n && sql[i + 1] == '=') {
          tok.text = "<=";
          i += 2;
        } else if (i + 1 < n && sql[i + 1] == '>') {
          tok.text = "<>";
          i += 2;
        } else {
          tok.text = "<";
          ++i;
        }
        break;
      case '>':
        tok.type = TokenType::kOperator;
        if (i + 1 < n && sql[i + 1] == '=') {
          tok.text = ">=";
          i += 2;
        } else {
          tok.text = ">";
          ++i;
        }
        break;
      case '!':
        if (i + 1 < n && sql[i + 1] == '=') {
          tok.type = TokenType::kOperator;
          tok.text = "<>";
          i += 2;
        } else {
          return Status::InvalidArgument("unexpected '!' at offset " +
                                         std::to_string(i));
        }
        break;
      case '=':
      case '+':
      case '-':
      case '*':
      case '/':
      case '%':
        tok.type = TokenType::kOperator;
        tok.text = std::string(1, c);
        ++i;
        break;
      default:
        return Status::InvalidArgument(std::string("unexpected character '") +
                                       c + "' at offset " + std::to_string(i));
    }
    tokens.push_back(std::move(tok));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.position = n;
  tokens.push_back(end);
  return tokens;
}

}  // namespace dhqp
