#ifndef DHQP_SQL_BOUND_EXPR_H_
#define DHQP_SQL_BOUND_EXPR_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/common/value.h"

namespace dhqp {

/// Kinds of bound (name-resolved, typed) scalar expressions. These flow
/// through logical trees, physical plans, the decoder and the runtime
/// expression evaluator.
enum class ScalarKind {
  kColumn,   ///< Reference to a column by global column id.
  kLiteral,  ///< Constant.
  kParam,    ///< Named query parameter (@name), bound at execution/startup.
  kUnary,    ///< NOT / unary minus.
  kBinary,   ///< Arithmetic, comparison, AND/OR.
  kFunc,     ///< Scalar function (UPPER, LOWER, ABS, YEAR, ...).
  kIsNull,   ///< x IS [NOT] NULL.
  kLike,     ///< x [NOT] LIKE pattern.
  kInList,   ///< x [NOT] IN (v1, ..., vn).
  kCase,     ///< Searched CASE.
  kCast,     ///< CAST(x AS type).
};

struct ScalarExpr;
/// Expressions are immutable and freely shared between plan alternatives.
using ScalarExprPtr = std::shared_ptr<const ScalarExpr>;

/// A bound scalar expression node.
struct ScalarExpr {
  ScalarKind kind;
  DataType type = DataType::kNull;  ///< Result type.

  int column_id = -1;       ///< kColumn: global column id.
  std::string column_name;  ///< kColumn: display name ("c.c_name").
  Value literal;            ///< kLiteral.
  std::string op;           ///< Operator / function / parameter name.
  bool negated = false;     ///< kIsNull / kLike / kInList negation.
  DataType cast_type = DataType::kNull;
  std::vector<ScalarExprPtr> args;

  /// Canonical rendering; doubles as the structural fingerprint used for
  /// memo deduplication.
  std::string ToString() const;

  /// Collects referenced column ids into `out`.
  void CollectColumns(std::set<int>* out) const;

  /// Collects referenced parameter names into `out`.
  void CollectParams(std::set<std::string>* out) const;

  /// True if the expression references no columns (literals/params only) —
  /// the eligibility test for startup filters (§4.1.5: "A startup filter
  /// predicate can not contain any references to columns ... in its input
  /// tree").
  bool IsColumnFree() const;
};

/// @name Constructors.
///@{
ScalarExprPtr MakeColumn(int column_id, DataType type, std::string name);
ScalarExprPtr MakeLiteral(Value v);
ScalarExprPtr MakeParam(std::string name, DataType type = DataType::kNull);
ScalarExprPtr MakeUnary(std::string op, ScalarExprPtr arg, DataType type);
ScalarExprPtr MakeBinary(std::string op, ScalarExprPtr lhs, ScalarExprPtr rhs,
                         DataType type);
/// AND of comparisons etc. — convenience producing a bool-typed binary.
ScalarExprPtr MakeComparison(std::string op, ScalarExprPtr lhs,
                             ScalarExprPtr rhs);
ScalarExprPtr MakeAnd(ScalarExprPtr lhs, ScalarExprPtr rhs);
ScalarExprPtr MakeOr(ScalarExprPtr lhs, ScalarExprPtr rhs);
///@}

/// Splits a predicate into its top-level conjuncts ("splitting predicates",
/// §4.1.2). The inverse, MergeConjuncts, ANDs them back together.
void SplitConjuncts(const ScalarExprPtr& pred,
                    std::vector<ScalarExprPtr>* out);
ScalarExprPtr MergeConjuncts(const std::vector<ScalarExprPtr>& conjuncts);

/// SQL LIKE matching with % and _ wildcards.
bool LikeMatch(const std::string& text, const std::string& pattern);

}  // namespace dhqp

#endif  // DHQP_SQL_BOUND_EXPR_H_
