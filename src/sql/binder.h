#ifndef DHQP_SQL_BINDER_H_
#define DHQP_SQL_BINDER_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/catalog/catalog.h"
#include "src/optimizer/logical.h"
#include "src/sql/ast.h"
#include "src/sql/bound_expr.h"

namespace dhqp {

/// Metadata for one globally-numbered column produced during binding.
struct ColumnInfo {
  std::string table_alias;  ///< Alias of the producing table ("" = computed).
  std::string name;
  DataType type = DataType::kNull;
};

/// Issues global column ids; every bound expression and logical operator
/// references columns through these ids, which is what lets transformation
/// rules move operators freely without positional re-mapping.
class ColumnRegistry {
 public:
  int Add(std::string alias, std::string name, DataType type) {
    cols_.push_back(ColumnInfo{std::move(alias), std::move(name), type});
    return static_cast<int>(cols_.size()) - 1;
  }
  const ColumnInfo& Get(int id) const { return cols_[static_cast<size_t>(id)]; }
  DataType TypeOf(int id) const { return cols_[static_cast<size_t>(id)].type; }
  size_t size() const { return cols_.size(); }

 private:
  std::vector<ColumnInfo> cols_;
};

/// Result of binding a SELECT: an executable logical tree plus the output
/// shape and any required ordering (ORDER BY becomes a required physical
/// property handed to the optimizer, not a logical operator).
struct BoundStatement {
  LogicalOpPtr root;
  std::vector<int> output_cols;
  std::vector<std::string> output_names;
  std::vector<std::pair<int, bool>> order_by;  ///< (column id, ascending).
  std::set<std::string> parameters;            ///< Referenced @params.
  std::shared_ptr<ColumnRegistry> registry;
};

/// The algebrizer (§4.1.3: "both local and distributed queries are
/// algebrized in the same way"): resolves names against the catalog (local
/// tables, linked servers, views — including partitioned views), types every
/// expression, unrolls EXISTS/IN subqueries into semi/anti joins, extracts
/// aggregates, and emits a logical operator tree over global column ids.
class Binder {
 public:
  explicit Binder(Catalog* catalog);

  /// Binds a full SELECT statement (UNION ALL chains + ORDER BY).
  Result<BoundStatement> BindSelect(const SelectStatement& stmt);

  /// Binds a scalar expression with no tables in scope (VALUES rows:
  /// literals, parameters, scalar functions).
  Result<ScalarExprPtr> BindValueExpr(const Expr& expr);

  /// Binds a scalar expression with exactly one table visible (DML WHERE /
  /// SET clauses). On first use, fresh column ids are issued for the table's
  /// columns and returned through `column_ids` (aligned with the schema).
  Result<ScalarExprPtr> BindSingleTableExpr(const Expr& expr,
                                            const Schema& schema,
                                            const std::string& alias,
                                            std::vector<int>* column_ids);

  /// Converts a parsed CHECK expression into a column-domain constraint;
  /// used by CREATE TABLE handling. Supports comparisons, BETWEEN, IN
  /// lists, AND/OR over a single column.
  static Result<CheckConstraint> BindCheckConstraint(const Expr& expr,
                                                     const Schema& schema);

 private:
  /// One visible table (or view expansion) in a FROM scope.
  struct TableScope {
    std::string alias;
    Schema schema;                ///< Column names/types, for lookup.
    std::vector<int> column_ids;  ///< Global ids aligned with schema.
  };
  struct Scope {
    std::vector<TableScope> tables;
    const Scope* outer = nullptr;  ///< For correlated subqueries.
  };

  /// Binding one SELECT core yields a tree plus its select-list outputs.
  struct CoreResult {
    LogicalOpPtr root;
    std::vector<int> output_cols;
    std::vector<std::string> output_names;
    /// Scope of the core's FROM clause, kept for ORDER BY binding.
    Scope scope;
  };

  /// Binds one core. When `order_items` is non-null (single-core statement),
  /// ORDER BY expressions are resolved here so columns absent from the
  /// select list can be carried as hidden projection outputs; resolved sort
  /// keys are appended to `order_cols`.
  Result<CoreResult> BindCore(const SelectCore& core, const Scope* outer,
                              const std::vector<OrderItem>* order_items,
                              std::vector<std::pair<int, bool>>* order_cols);
  Result<LogicalOpPtr> BindTableRef(const TableRef& ref, Scope* scope);
  Result<LogicalOpPtr> BindNamedTable(const ObjectName& name,
                                      const std::string& alias, Scope* scope);

  /// Binds a scalar AST expression in `scope`. Subquery predicates
  /// (EXISTS / IN (SELECT ...)) are not allowed here; they are peeled off
  /// the WHERE conjunction by BindCore first.
  Result<ScalarExprPtr> BindExpr(const Expr& expr, const Scope& scope);

  /// Resolves a (possibly qualified) column path. Searches the local scope
  /// first, then outer scopes (correlation).
  Result<ScalarExprPtr> BindColumnRef(const Expr& expr, const Scope& scope);

  /// Applies one EXISTS / IN-subquery conjunct as a semi or anti join on
  /// top of `tree`.
  Result<LogicalOpPtr> ApplySubqueryPredicate(LogicalOpPtr tree,
                                              const Expr& pred,
                                              const Scope& scope);

  /// True if every column referenced by `expr` is produced by `tree`.
  static bool CoveredBy(const ScalarExprPtr& expr, const LogicalOpPtr& tree);

  Result<DataType> InferBinaryType(const std::string& op, DataType lhs,
                                   DataType rhs) const;

  Catalog* catalog_;
  std::shared_ptr<ColumnRegistry> registry_;
  std::set<std::string> parameters_;
  int view_depth_ = 0;  ///< Guards against recursive view definitions.
};

}  // namespace dhqp

#endif  // DHQP_SQL_BINDER_H_
