#ifndef DHQP_SQL_AST_H_
#define DHQP_SQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/catalog/catalog.h"
#include "src/common/value.h"

namespace dhqp {

struct SelectStatement;

/// Kinds of parsed scalar expressions.
enum class ExprKind {
  kLiteral,      ///< Constant Value.
  kColumnRef,    ///< Possibly-qualified column path (a.b.c).
  kParameter,    ///< @name.
  kStar,         ///< `*` or `alias.*` (select list / COUNT(*) only).
  kUnary,        ///< NOT x, -x.
  kBinary,       ///< x op y (arithmetic, comparison, AND/OR).
  kFunctionCall, ///< fn(args...) incl. aggregates.
  kInList,       ///< x [NOT] IN (e1, e2, ...).
  kInSubquery,   ///< x [NOT] IN (SELECT ...).
  kExists,       ///< [NOT] EXISTS (SELECT ...).
  kBetween,      ///< x BETWEEN lo AND hi  (args: x, lo, hi).
  kLike,         ///< x [NOT] LIKE pattern.
  kIsNull,       ///< x IS [NOT] NULL.
  kCast,         ///< CAST(x AS type).
  kCase,         ///< CASE WHEN c THEN v ... [ELSE e] END.
  kContains,     ///< CONTAINS(column, 'full-text query') (§2.3).
};

/// A parsed (unbound) scalar expression node.
struct Expr {
  ExprKind kind;
  Value literal;                        ///< kLiteral.
  std::vector<std::string> column_path; ///< kColumnRef / kStar qualifier.
  std::string name;                     ///< Operator text, function or @param.
  bool negated = false;                 ///< NOT IN/EXISTS/LIKE, IS NOT NULL.
  bool distinct = false;                ///< COUNT(DISTINCT x) etc.
  DataType cast_type = DataType::kNull; ///< kCast target.
  std::vector<std::unique_ptr<Expr>> args;
  std::unique_ptr<SelectStatement> subquery;  ///< kInSubquery / kExists.

  /// Debug rendering (not dialect-aware; the decoder handles remoting).
  std::string ToString() const;
};

using ExprPtr = std::unique_ptr<Expr>;

/// Join variants in the FROM clause. Semi/anti never appear in source text;
/// they exist for completeness of the algebra.
enum class JoinKind { kInner, kLeftOuter, kCross };

/// A FROM-clause item: either a named table (with optional alias) or a join
/// of two items, or an OPENQUERY pass-through (§3.3).
struct TableRef {
  enum class Kind { kNamed, kJoin, kOpenQuery } kind = Kind::kNamed;

  // kNamed.
  ObjectName name;
  std::string alias;

  // kJoin.
  std::unique_ptr<TableRef> left;
  std::unique_ptr<TableRef> right;
  JoinKind join_kind = JoinKind::kInner;
  ExprPtr on;

  // kOpenQuery: pass-through text sent verbatim to the linked server.
  std::string server;
  std::string pass_through_query;
};

/// One item of the SELECT list.
struct SelectItem {
  ExprPtr expr;          ///< Null when this item is `*` / `alias.*`.
  std::string alias;
  bool star = false;
  std::vector<std::string> star_qualifier;  ///< Alias path before `.*`.
};

struct OrderItem {
  ExprPtr expr;
  bool ascending = true;
};

/// One SELECT core (no set operations): the unit UNION ALL combines.
struct SelectCore {
  bool distinct = false;
  std::optional<int64_t> top;
  std::vector<SelectItem> items;
  std::unique_ptr<TableRef> from;  ///< Null for FROM-less SELECT.
  ExprPtr where;
  std::vector<ExprPtr> group_by;
  ExprPtr having;
};

/// A full query: one or more cores combined with UNION ALL, plus an optional
/// global ORDER BY.
struct SelectStatement {
  std::vector<std::unique_ptr<SelectCore>> cores;
  std::vector<OrderItem> order_by;
};

/// Column definition inside CREATE TABLE.
struct ColumnDefAst {
  std::string name;
  DataType type = DataType::kNull;
  bool not_null = false;
  bool primary_key = false;
};

struct CreateTableStatement {
  std::string name;
  std::vector<ColumnDefAst> columns;
  /// CHECK (...) expressions (table-level or column-level).
  std::vector<ExprPtr> checks;
};

struct CreateIndexStatement {
  bool unique = false;
  std::string name;
  std::string table;
  std::vector<std::string> columns;
};

struct CreateViewStatement {
  std::string name;
  std::string body_sql;  ///< The SELECT text, stored for deferred binding.
};

struct InsertStatement {
  ObjectName table;
  std::vector<std::string> columns;  ///< Empty = positional.
  std::vector<std::vector<ExprPtr>> rows;  ///< VALUES rows (const exprs).
};

struct DropStatement {
  enum class Target { kTable, kView };
  Target target = Target::kTable;
  std::string name;
};

struct DeleteStatement {
  ObjectName table;
  ExprPtr where;  ///< Null = delete all rows.
};

struct UpdateStatement {
  ObjectName table;
  std::vector<std::pair<std::string, ExprPtr>> assignments;
  ExprPtr where;  ///< Null = update all rows.
};

/// Any parsed statement.
struct Statement {
  enum class Kind {
    kSelect,
    kCreateTable,
    kCreateIndex,
    kCreateView,
    kInsert,
    kDelete,
    kUpdate,
    kDrop,
  };
  Kind kind;
  std::unique_ptr<SelectStatement> select;
  std::unique_ptr<CreateTableStatement> create_table;
  std::unique_ptr<CreateIndexStatement> create_index;
  std::unique_ptr<CreateViewStatement> create_view;
  std::unique_ptr<InsertStatement> insert;
  std::unique_ptr<DeleteStatement> delete_stmt;
  std::unique_ptr<UpdateStatement> update;
  std::unique_ptr<DropStatement> drop;
  /// EXPLAIN prefix: compile the SELECT and return its plan as text.
  bool explain = false;
  /// EXPLAIN ANALYZE: execute the SELECT and return the plan annotated
  /// with per-operator actual stats (estimated vs actual rows, wall time,
  /// remote traffic). Implies `explain`.
  bool explain_analyze = false;
};

}  // namespace dhqp

#endif  // DHQP_SQL_AST_H_
