#ifndef DHQP_SQL_PARSER_H_
#define DHQP_SQL_PARSER_H_

#include <memory>
#include <string>

#include "src/sql/ast.h"
#include "src/sql/lexer.h"

namespace dhqp {

/// Recursive-descent parser for the supported Transact-SQL subset: SELECT
/// (joins, WHERE, GROUP BY/HAVING, ORDER BY, TOP, DISTINCT, UNION ALL,
/// EXISTS/IN subqueries, CONTAINS, OPENQUERY, four-part names, @parameters),
/// CREATE TABLE (with CHECK constraints), CREATE [UNIQUE] INDEX, CREATE
/// VIEW, and INSERT ... VALUES.
class Parser {
 public:
  /// Parses exactly one statement (a trailing ';' is allowed).
  static Result<std::unique_ptr<Statement>> Parse(const std::string& sql);

  /// Parses a SELECT statement only (used when expanding view definitions).
  static Result<std::unique_ptr<SelectStatement>> ParseSelect(
      const std::string& sql);

 private:
  explicit Parser(std::string sql) : sql_(std::move(sql)) {}

  const Token& Peek(int ahead = 0) const;
  const Token& Advance();
  bool MatchKeyword(const char* kw);
  bool MatchOperator(const char* op);
  bool Match(TokenType type);
  Status Expect(TokenType type, const char* what);
  Status ExpectKeyword(const char* kw);
  Status ErrorHere(const std::string& message) const;

  Result<std::unique_ptr<Statement>> ParseStatement();
  Result<std::unique_ptr<SelectStatement>> ParseSelectStatement();
  Result<std::unique_ptr<SelectCore>> ParseSelectCore();
  Result<std::unique_ptr<TableRef>> ParseTableRef();
  Result<std::unique_ptr<TableRef>> ParseTablePrimary();
  Result<ObjectName> ParseObjectName();
  Result<ExprPtr> ParseExpr();
  Result<ExprPtr> ParseOr();
  Result<ExprPtr> ParseAnd();
  Result<ExprPtr> ParseNot();
  Result<ExprPtr> ParsePredicate();
  Result<ExprPtr> ParseAdditive();
  Result<ExprPtr> ParseMultiplicative();
  Result<ExprPtr> ParseUnary();
  Result<ExprPtr> ParsePrimary();
  Result<ExprPtr> ParseFunctionCall(const std::string& name);
  Result<DataType> ParseTypeName();
  Result<std::unique_ptr<Statement>> ParseCreate();
  Result<std::unique_ptr<Statement>> ParseInsert();
  Result<std::unique_ptr<Statement>> ParseDelete();
  Result<std::unique_ptr<Statement>> ParseUpdate();

  std::string sql_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace dhqp

#endif  // DHQP_SQL_PARSER_H_
