#ifndef DHQP_SQL_LEXER_H_
#define DHQP_SQL_LEXER_H_

#include <string>
#include <vector>

#include "src/common/status.h"

namespace dhqp {

/// Kinds of lexical tokens in the Transact-SQL subset.
enum class TokenType {
  kEnd = 0,
  kIdentifier,   ///< Bare, "quoted" or [bracketed] identifier.
  kKeyword,      ///< Reserved word; text is upper-cased.
  kInteger,
  kFloat,
  kString,       ///< 'single-quoted', quotes stripped, '' unescaped.
  kParameter,    ///< @name (text includes the '@').
  kOperator,     ///< = <> != < <= > >= + - * / %
  kComma,
  kDot,
  kLParen,
  kRParen,
  kSemicolon,
};

/// A lexical token with source position for error messages.
struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;
  size_t position = 0;

  bool IsKeyword(const char* kw) const {
    return type == TokenType::kKeyword && text == kw;
  }
};

/// Splits SQL text into tokens. Comments (`-- ...`) are skipped. Keywords
/// are recognized case-insensitively and normalized to upper case.
Result<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace dhqp

#endif  // DHQP_SQL_LEXER_H_
