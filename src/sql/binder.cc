#include "src/sql/binder.h"

#include <algorithm>
#include <functional>

#include "src/common/date.h"
#include "src/sql/parser.h"

namespace dhqp {

namespace {

bool IsAggregateName(const std::string& name) {
  return name == "COUNT" || name == "SUM" || name == "AVG" || name == "MIN" ||
         name == "MAX";
}

// Walks an AST expression tree collecting aggregate function calls.
void CollectAggregates(const Expr& expr, std::vector<const Expr*>* out) {
  if (expr.kind == ExprKind::kFunctionCall && IsAggregateName(expr.name)) {
    out->push_back(&expr);
    return;  // No nested aggregates.
  }
  for (const ExprPtr& arg : expr.args) CollectAggregates(*arg, out);
}

// Splits an AST predicate into top-level AND conjuncts.
void SplitAstConjuncts(const Expr* expr, std::vector<const Expr*>* out) {
  if (expr == nullptr) return;
  if (expr->kind == ExprKind::kBinary && expr->name == "AND") {
    SplitAstConjuncts(expr->args[0].get(), out);
    SplitAstConjuncts(expr->args[1].get(), out);
    return;
  }
  out->push_back(expr);
}

bool IsSubqueryPredicate(const Expr& expr) {
  return expr.kind == ExprKind::kExists || expr.kind == ExprKind::kInSubquery;
}

bool IsNumeric(DataType t) {
  return t == DataType::kInt64 || t == DataType::kDouble;
}

// Re-types an untyped parameter/NULL literal to `type` (expressions are
// immutable; returns a fresh node).
ScalarExprPtr Retype(const ScalarExprPtr& e, DataType type) {
  if (e->kind == ScalarKind::kParam && e->type == DataType::kNull) {
    return MakeParam(e->op, type);
  }
  return e;
}

// If `e` is a string literal and `target` is kDate, converts the literal to
// a date value so date comparisons are typed consistently.
Result<ScalarExprPtr> CoerceLiteral(const ScalarExprPtr& e, DataType target) {
  if (e->kind == ScalarKind::kLiteral && !e->literal.is_null() &&
      e->literal.type() == DataType::kString && target == DataType::kDate) {
    DHQP_ASSIGN_OR_RETURN(int64_t days, ParseIsoDate(e->literal.string_value()));
    return MakeLiteral(Value::Date(days));
  }
  return e;
}

}  // namespace

Binder::Binder(Catalog* catalog) : catalog_(catalog) {}

Result<BoundStatement> Binder::BindSelect(const SelectStatement& stmt) {
  if (registry_ == nullptr) registry_ = std::make_shared<ColumnRegistry>();

  BoundStatement out;
  out.registry = registry_;

  std::vector<CoreResult> cores;
  bool single_core = stmt.cores.size() == 1;
  for (const auto& core : stmt.cores) {
    DHQP_ASSIGN_OR_RETURN(
        CoreResult result,
        BindCore(*core, nullptr, single_core ? &stmt.order_by : nullptr,
                 single_core ? &out.order_by : nullptr));
    cores.push_back(std::move(result));
  }

  if (cores.size() == 1) {
    out.root = cores[0].root;
    out.output_cols = cores[0].output_cols;
    out.output_names = cores[0].output_names;
    out.parameters = parameters_;
    return out;
  }
  {
    // UNION ALL: all cores must agree in arity; output shape comes from the
    // first branch.
    for (size_t i = 1; i < cores.size(); ++i) {
      if (cores[i].output_cols.size() != cores[0].output_cols.size()) {
        return Status::InvalidArgument(
            "UNION ALL branches have different column counts");
      }
    }
    std::vector<LogicalOpPtr> children;
    children.reserve(cores.size());
    for (CoreResult& c : cores) children.push_back(std::move(c.root));
    out.root = MakeUnionAll(std::move(children));
    out.output_cols = cores[0].output_cols;
    out.output_names = cores[0].output_names;
  }

  // ORDER BY over UNION ALL: match by output ordinal or output name (the
  // single-core path resolves arbitrary columns inside BindCore).
  for (const OrderItem& item : stmt.order_by) {
    const Expr& e = *item.expr;
    int col = -1;
    if (e.kind == ExprKind::kLiteral && !e.literal.is_null() &&
        e.literal.type() == DataType::kInt64) {
      int64_t ordinal = e.literal.int64_value();
      if (ordinal < 1 ||
          ordinal > static_cast<int64_t>(out.output_cols.size())) {
        return Status::InvalidArgument("ORDER BY ordinal out of range");
      }
      col = out.output_cols[static_cast<size_t>(ordinal - 1)];
    } else if (e.kind == ExprKind::kColumnRef) {
      const std::string& name = e.column_path.back();
      for (size_t i = 0; i < out.output_names.size(); ++i) {
        if (EqualsIgnoreCase(out.output_names[i], name)) {
          col = out.output_cols[i];
          break;
        }
      }
    }
    if (col < 0) {
      return Status::NotSupported(
          "ORDER BY over UNION ALL supports output columns and ordinals");
    }
    out.order_by.emplace_back(col, item.ascending);
  }

  out.parameters = parameters_;
  return out;
}

Result<ScalarExprPtr> Binder::BindValueExpr(const Expr& expr) {
  if (registry_ == nullptr) registry_ = std::make_shared<ColumnRegistry>();
  Scope empty;
  return BindExpr(expr, empty);
}

Result<ScalarExprPtr> Binder::BindSingleTableExpr(
    const Expr& expr, const Schema& schema, const std::string& alias,
    std::vector<int>* column_ids) {
  if (registry_ == nullptr) registry_ = std::make_shared<ColumnRegistry>();
  if (column_ids->empty()) {
    for (size_t i = 0; i < schema.num_columns(); ++i) {
      column_ids->push_back(
          registry_->Add(alias, schema.column(i).name, schema.column(i).type));
    }
  }
  Scope scope;
  scope.tables.push_back(TableScope{alias, schema, *column_ids});
  return BindExpr(expr, scope);
}

Result<Binder::CoreResult> Binder::BindCore(
    const SelectCore& core, const Scope* outer,
    const std::vector<OrderItem>* order_items,
    std::vector<std::pair<int, bool>>* order_cols) {
  Scope scope;
  scope.outer = outer;

  LogicalOpPtr tree;
  if (core.from != nullptr) {
    DHQP_ASSIGN_OR_RETURN(tree, BindTableRef(*core.from, &scope));
  } else {
    tree = MakeConstTable({Row{}}, {}, {});
  }

  // WHERE: bind plain conjuncts into one filter; EXISTS / IN-subquery
  // conjuncts become semi/anti joins on top.
  std::vector<const Expr*> conjuncts;
  SplitAstConjuncts(core.where.get(), &conjuncts);
  std::vector<ScalarExprPtr> plain;
  std::vector<const Expr*> subquery_preds;
  for (const Expr* c : conjuncts) {
    if (IsSubqueryPredicate(*c)) {
      subquery_preds.push_back(c);
    } else {
      DHQP_ASSIGN_OR_RETURN(ScalarExprPtr bound, BindExpr(*c, scope));
      plain.push_back(std::move(bound));
    }
  }
  if (!plain.empty()) tree = MakeFilter(tree, MergeConjuncts(plain));
  for (const Expr* pred : subquery_preds) {
    DHQP_ASSIGN_OR_RETURN(tree, ApplySubqueryPredicate(tree, *pred, scope));
  }

  // Aggregation.
  std::vector<const Expr*> agg_calls;
  for (const SelectItem& item : core.items) {
    if (item.expr != nullptr) CollectAggregates(*item.expr, &agg_calls);
  }
  if (core.having != nullptr) CollectAggregates(*core.having, &agg_calls);

  std::map<std::string, std::pair<int, DataType>> agg_map;  // AST fp -> col.
  std::map<std::string, std::pair<int, DataType>> group_map;
  std::vector<int> group_ids;

  bool has_aggregation = !agg_calls.empty() || !core.group_by.empty();
  if (has_aggregation) {
    // Group-by expressions: bare columns keep their ids; computed ones are
    // pre-projected to fresh columns.
    std::vector<ScalarExprPtr> computed;
    std::vector<int> computed_ids;
    for (const ExprPtr& g : core.group_by) {
      DHQP_ASSIGN_OR_RETURN(ScalarExprPtr bound, BindExpr(*g, scope));
      if (bound->kind == ScalarKind::kColumn) {
        group_ids.push_back(bound->column_id);
      } else {
        int id = registry_->Add("", "group" + std::to_string(group_ids.size()),
                                bound->type);
        computed.push_back(bound);
        computed_ids.push_back(id);
        group_ids.push_back(id);
        group_map[g->ToString()] = {id, bound->type};
      }
    }
    if (!computed.empty()) {
      // Pass through existing columns plus the computed group keys.
      std::vector<ScalarExprPtr> exprs;
      std::vector<int> out_cols;
      for (int c : tree->OutputColumns()) {
        exprs.push_back(MakeColumn(c, registry_->TypeOf(c),
                                   registry_->Get(c).name));
        out_cols.push_back(c);
      }
      for (size_t i = 0; i < computed.size(); ++i) {
        exprs.push_back(computed[i]);
        out_cols.push_back(computed_ids[i]);
      }
      tree = MakeProject(tree, std::move(exprs), std::move(out_cols));
    }

    // Bind aggregates.
    std::vector<AggregateItem> items;
    for (const Expr* call : agg_calls) {
      std::string fp = call->ToString();
      if (agg_map.count(fp) > 0) continue;
      AggregateItem item;
      item.func = call->name;
      item.distinct = call->distinct;
      if (call->args.size() == 1 && call->args[0]->kind == ExprKind::kStar) {
        if (item.func != "COUNT") {
          return Status::InvalidArgument("'*' argument only valid in COUNT");
        }
        item.func = "COUNT*";
        item.type = DataType::kInt64;
      } else {
        if (call->args.size() != 1) {
          return Status::InvalidArgument("aggregate takes one argument");
        }
        DHQP_ASSIGN_OR_RETURN(item.arg, BindExpr(*call->args[0], scope));
        if (item.func == "COUNT") {
          item.type = DataType::kInt64;
        } else if (item.func == "AVG") {
          item.type = DataType::kDouble;
        } else {
          item.type = item.arg->type;
        }
      }
      item.output_col = registry_->Add("", ToLowerCopy(item.func), item.type);
      agg_map[fp] = {item.output_col, item.type};
      items.push_back(std::move(item));
    }
    tree = MakeAggregate(tree, group_ids, std::move(items));
  }

  // Binds a select/having expression, substituting aggregate calls and
  // computed group keys with their output columns; composite expressions
  // over aggregates (e.g. SUM(x)*2) are rebuilt by recursive descent.
  std::function<Result<ScalarExprPtr>(const Expr&)> bind_with_aggs =
      [&](const Expr& e) -> Result<ScalarExprPtr> {
    if (has_aggregation) {
      std::string fp = e.ToString();
      auto it = agg_map.find(fp);
      if (it != agg_map.end()) {
        return MakeColumn(it->second.first, it->second.second, fp);
      }
      auto git = group_map.find(fp);
      if (git != group_map.end()) {
        return MakeColumn(git->second.first, git->second.second, fp);
      }
      if (e.kind == ExprKind::kBinary && e.args.size() == 2) {
        DHQP_ASSIGN_OR_RETURN(auto lhs, bind_with_aggs(*e.args[0]));
        DHQP_ASSIGN_OR_RETURN(auto rhs, bind_with_aggs(*e.args[1]));
        DHQP_ASSIGN_OR_RETURN(DataType t,
                              InferBinaryType(e.name, lhs->type, rhs->type));
        return MakeBinary(e.name, std::move(lhs), std::move(rhs), t);
      }
      if (e.kind == ExprKind::kUnary && e.args.size() == 1) {
        DHQP_ASSIGN_OR_RETURN(auto arg, bind_with_aggs(*e.args[0]));
        DataType t = e.name == "NOT" ? DataType::kBool : arg->type;
        return MakeUnary(e.name, std::move(arg), t);
      }
    }
    return BindExpr(e, scope);
  };

  // HAVING: filter above the aggregate.
  if (core.having != nullptr) {
    DHQP_ASSIGN_OR_RETURN(ScalarExprPtr having, bind_with_aggs(*core.having));
    tree = MakeFilter(tree, std::move(having));
  }

  // Select list: expand stars, bind expressions, project.
  CoreResult result;
  std::vector<ScalarExprPtr> out_exprs;
  for (const SelectItem& item : core.items) {
    if (item.star) {
      for (const TableScope& t : scope.tables) {
        if (!item.star_qualifier.empty() &&
            !EqualsIgnoreCase(item.star_qualifier.back(), t.alias)) {
          continue;
        }
        for (size_t i = 0; i < t.schema.num_columns(); ++i) {
          int id = t.column_ids[i];
          out_exprs.push_back(MakeColumn(id, t.schema.column(i).type,
                                         t.alias + "." +
                                             t.schema.column(i).name));
          result.output_cols.push_back(id);
          result.output_names.push_back(t.schema.column(i).name);
        }
      }
      if (result.output_cols.empty()) {
        return Status::InvalidArgument("'*' matched no tables");
      }
      continue;
    }
    DHQP_ASSIGN_OR_RETURN(ScalarExprPtr bound, bind_with_aggs(*item.expr));
    std::string name = item.alias;
    if (name.empty()) {
      name = item.expr->kind == ExprKind::kColumnRef
                 ? item.expr->column_path.back()
                 : "col" + std::to_string(result.output_cols.size() + 1);
    }
    int id;
    if (bound->kind == ScalarKind::kColumn) {
      id = bound->column_id;  // Pass-through keeps the column's identity.
    } else {
      id = registry_->Add("", name, bound->type);
    }
    out_exprs.push_back(std::move(bound));
    result.output_cols.push_back(id);
    result.output_names.push_back(std::move(name));
  }

  // ORDER BY resolution (single-core statements): output ordinals, output
  // names, then arbitrary expressions carried as hidden projection columns.
  std::vector<int> project_cols = result.output_cols;
  if (order_items != nullptr) {
    for (const OrderItem& item : *order_items) {
      const Expr& e = *item.expr;
      int col = -1;
      if (e.kind == ExprKind::kLiteral && !e.literal.is_null() &&
          e.literal.type() == DataType::kInt64) {
        int64_t ordinal = e.literal.int64_value();
        if (ordinal < 1 ||
            ordinal > static_cast<int64_t>(result.output_cols.size())) {
          return Status::InvalidArgument("ORDER BY ordinal out of range");
        }
        col = result.output_cols[static_cast<size_t>(ordinal - 1)];
      }
      if (col < 0 && e.kind == ExprKind::kColumnRef &&
          e.column_path.size() == 1) {
        for (size_t i = 0; i < result.output_names.size(); ++i) {
          if (EqualsIgnoreCase(result.output_names[i], e.column_path[0])) {
            col = result.output_cols[i];
            break;
          }
        }
      }
      if (col < 0) {
        DHQP_ASSIGN_OR_RETURN(ScalarExprPtr bound, bind_with_aggs(e));
        if (bound->kind == ScalarKind::kColumn) {
          col = bound->column_id;
        } else {
          col = registry_->Add("", "__orderby", bound->type);
        }
        bool visible = std::find(project_cols.begin(), project_cols.end(),
                                 col) != project_cols.end();
        if (!visible) {
          if (core.distinct) {
            return Status::NotSupported(
                "ORDER BY column must appear in the select list when "
                "DISTINCT is used");
          }
          out_exprs.push_back(bound);
          project_cols.push_back(col);
        }
      }
      order_cols->emplace_back(col, item.ascending);
    }
  }
  tree = MakeProject(tree, std::move(out_exprs), project_cols);

  if (core.distinct) {
    tree = MakeAggregate(tree, result.output_cols, {});
  }
  if (core.top.has_value()) {
    tree = MakeTop(tree, *core.top);
  }

  result.root = std::move(tree);
  result.scope = scope;
  result.scope.outer = nullptr;  // The copy must not dangle.
  return std::move(result);
}

Result<LogicalOpPtr> Binder::BindTableRef(const TableRef& ref, Scope* scope) {
  switch (ref.kind) {
    case TableRef::Kind::kNamed: {
      std::string alias = ref.alias.empty() ? ref.name.table : ref.alias;
      for (const TableScope& t : scope->tables) {
        if (EqualsIgnoreCase(t.alias, alias)) {
          return Status::InvalidArgument("duplicate table alias '" + alias +
                                         "'");
        }
      }
      return BindNamedTable(ref.name, alias, scope);
    }
    case TableRef::Kind::kJoin: {
      DHQP_ASSIGN_OR_RETURN(LogicalOpPtr left, BindTableRef(*ref.left, scope));
      DHQP_ASSIGN_OR_RETURN(LogicalOpPtr right,
                            BindTableRef(*ref.right, scope));
      ScalarExprPtr on;
      JoinType type = JoinType::kInner;
      if (ref.join_kind == JoinKind::kCross) {
        type = JoinType::kCross;
      } else if (ref.join_kind == JoinKind::kLeftOuter) {
        type = JoinType::kLeftOuter;
      }
      if (ref.on != nullptr) {
        DHQP_ASSIGN_OR_RETURN(on, BindExpr(*ref.on, *scope));
      }
      return MakeJoin(type, std::move(left), std::move(right), std::move(on));
    }
    case TableRef::Kind::kOpenQuery:
      return Status::NotSupported(
          "OPENQUERY pass-through must be executed via "
          "Connection::ExecutePassThrough");
  }
  return Status::Internal("unknown table ref kind");
}

Result<LogicalOpPtr> Binder::BindNamedTable(const ObjectName& name,
                                            const std::string& alias,
                                            Scope* scope) {
  // Views take precedence for unqualified single-part names.
  if (!name.has_server()) {
    const ViewDef* view = catalog_->FindView(name.table);
    if (view != nullptr) {
      if (++view_depth_ > 8) {
        --view_depth_;
        return Status::InvalidArgument("view nesting too deep (cycle?)");
      }
      auto parsed = Parser::ParseSelect(view->sql);
      if (!parsed.ok()) {
        --view_depth_;
        return Status::InvalidArgument("view '" + view->name +
                                       "' failed to parse: " +
                                       parsed.status().message());
      }
      auto bound = BindSelect(**parsed);
      --view_depth_;
      if (!bound.ok()) return bound.status();
      Schema view_schema;
      for (size_t i = 0; i < bound->output_cols.size(); ++i) {
        view_schema.AddColumn(ColumnDef{
            bound->output_names[i],
            registry_->TypeOf(bound->output_cols[i]), true});
      }
      scope->tables.push_back(
          TableScope{alias, std::move(view_schema), bound->output_cols});
      return bound->root;
    }
  }
  DHQP_ASSIGN_OR_RETURN(ResolvedTable table, catalog_->ResolveTable(name));
  std::vector<int> ids;
  ids.reserve(table.metadata.schema.num_columns());
  for (size_t i = 0; i < table.metadata.schema.num_columns(); ++i) {
    const ColumnDef& col = table.metadata.schema.column(i);
    ids.push_back(registry_->Add(alias, col.name, col.type));
  }
  scope->tables.push_back(TableScope{alias, table.metadata.schema, ids});
  return MakeGet(std::move(table), alias, std::move(ids));
}

Result<ScalarExprPtr> Binder::BindColumnRef(const Expr& expr,
                                            const Scope& scope) {
  const std::string& col_name = expr.column_path.back();
  const std::string* qualifier =
      expr.column_path.size() >= 2
          ? &expr.column_path[expr.column_path.size() - 2]
          : nullptr;
  for (const Scope* s = &scope; s != nullptr; s = s->outer) {
    const TableScope* found_table = nullptr;
    int found_ord = -1;
    for (const TableScope& t : s->tables) {
      if (qualifier != nullptr && !EqualsIgnoreCase(*qualifier, t.alias)) {
        continue;
      }
      int ord = t.schema.FindColumn(col_name);
      if (ord < 0) continue;
      if (found_table != nullptr) {
        return Status::InvalidArgument("ambiguous column '" + col_name + "'");
      }
      found_table = &t;
      found_ord = ord;
    }
    if (found_table != nullptr) {
      int id = found_table->column_ids[static_cast<size_t>(found_ord)];
      return MakeColumn(
          id, found_table->schema.column(static_cast<size_t>(found_ord)).type,
          found_table->alias + "." + col_name);
    }
  }
  return Status::NotFound("column '" + expr.ToString() + "' not found");
}

Result<DataType> Binder::InferBinaryType(const std::string& op, DataType lhs,
                                         DataType rhs) const {
  if (op == "AND" || op == "OR" || op == "=" || op == "<>" || op == "<" ||
      op == "<=" || op == ">" || op == ">=") {
    return DataType::kBool;
  }
  // Arithmetic.
  if (lhs == DataType::kDate && (rhs == DataType::kInt64 || rhs == DataType::kNull)) {
    if (op == "+" || op == "-") return DataType::kDate;
  }
  if (lhs == DataType::kDate && rhs == DataType::kDate && op == "-") {
    return DataType::kInt64;
  }
  if (lhs == DataType::kDouble || rhs == DataType::kDouble) {
    return DataType::kDouble;
  }
  if ((IsNumeric(lhs) || lhs == DataType::kNull) &&
      (IsNumeric(rhs) || rhs == DataType::kNull)) {
    return DataType::kInt64;
  }
  if (lhs == DataType::kString && rhs == DataType::kString && op == "+") {
    return DataType::kString;  // Concatenation.
  }
  return Status::InvalidArgument("operator '" + op +
                                 "' not defined for types " +
                                 DataTypeName(lhs) + ", " + DataTypeName(rhs));
}

Result<ScalarExprPtr> Binder::BindExpr(const Expr& expr, const Scope& scope) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return MakeLiteral(expr.literal);
    case ExprKind::kColumnRef:
      return BindColumnRef(expr, scope);
    case ExprKind::kParameter:
      parameters_.insert(expr.name);
      return MakeParam(expr.name);
    case ExprKind::kStar:
      return Status::InvalidArgument("'*' not valid in this context");
    case ExprKind::kUnary: {
      DHQP_ASSIGN_OR_RETURN(ScalarExprPtr arg, BindExpr(*expr.args[0], scope));
      DataType t = expr.name == "NOT" ? DataType::kBool : arg->type;
      return MakeUnary(expr.name, std::move(arg), t);
    }
    case ExprKind::kBinary: {
      DHQP_ASSIGN_OR_RETURN(ScalarExprPtr lhs, BindExpr(*expr.args[0], scope));
      DHQP_ASSIGN_OR_RETURN(ScalarExprPtr rhs, BindExpr(*expr.args[1], scope));
      // Type coordination: untyped params and date-vs-string literals.
      if (lhs->type != DataType::kNull) {
        rhs = Retype(rhs, lhs->type);
        DHQP_ASSIGN_OR_RETURN(rhs, CoerceLiteral(rhs, lhs->type));
      }
      if (rhs->type != DataType::kNull) {
        lhs = Retype(lhs, rhs->type);
        DHQP_ASSIGN_OR_RETURN(lhs, CoerceLiteral(lhs, rhs->type));
      }
      DHQP_ASSIGN_OR_RETURN(DataType t,
                            InferBinaryType(expr.name, lhs->type, rhs->type));
      return MakeBinary(expr.name, std::move(lhs), std::move(rhs), t);
    }
    case ExprKind::kFunctionCall: {
      if (IsAggregateName(expr.name)) {
        return Status::InvalidArgument("aggregate '" + expr.name +
                                       "' not allowed here");
      }
      auto out = std::make_shared<ScalarExpr>();
      out->kind = ScalarKind::kFunc;
      out->op = expr.name;
      for (const ExprPtr& arg : expr.args) {
        DHQP_ASSIGN_OR_RETURN(ScalarExprPtr bound, BindExpr(*arg, scope));
        out->args.push_back(std::move(bound));
      }
      const std::string& fn = out->op;
      auto arity = [&](size_t n) -> Status {
        if (out->args.size() != n) {
          return Status::InvalidArgument(fn + " takes " + std::to_string(n) +
                                         " argument(s)");
        }
        return Status::OK();
      };
      if (fn == "UPPER" || fn == "LOWER") {
        DHQP_RETURN_NOT_OK(arity(1));
        out->type = DataType::kString;
      } else if (fn == "LEN" || fn == "LENGTH") {
        DHQP_RETURN_NOT_OK(arity(1));
        out->type = DataType::kInt64;
      } else if (fn == "ABS") {
        DHQP_RETURN_NOT_OK(arity(1));
        out->type = out->args[0]->type;
      } else if (fn == "YEAR" || fn == "MONTH" || fn == "DAY") {
        DHQP_RETURN_NOT_OK(arity(1));
        out->type = DataType::kInt64;
      } else if (fn == "TODAY") {
        DHQP_RETURN_NOT_OK(arity(0));
        out->type = DataType::kDate;
      } else if (fn == "DATEADD" || fn == "DATE") {
        // DATE(d, n) / DATEADD(d, n): date plus n days (§2.4's date()).
        DHQP_RETURN_NOT_OK(arity(2));
        out->type = DataType::kDate;
      } else {
        return Status::NotFound("unknown function '" + fn + "'");
      }
      return ScalarExprPtr(out);
    }
    case ExprKind::kInList: {
      auto out = std::make_shared<ScalarExpr>();
      out->kind = ScalarKind::kInList;
      out->negated = expr.negated;
      out->type = DataType::kBool;
      DHQP_ASSIGN_OR_RETURN(ScalarExprPtr probe, BindExpr(*expr.args[0], scope));
      DataType probe_type = probe->type;
      out->args.push_back(std::move(probe));
      for (size_t i = 1; i < expr.args.size(); ++i) {
        DHQP_ASSIGN_OR_RETURN(ScalarExprPtr item, BindExpr(*expr.args[i], scope));
        DHQP_ASSIGN_OR_RETURN(item, CoerceLiteral(item, probe_type));
        out->args.push_back(std::move(item));
      }
      return ScalarExprPtr(out);
    }
    case ExprKind::kBetween: {
      // x BETWEEN lo AND hi  ==>  x >= lo AND x <= hi.
      DHQP_ASSIGN_OR_RETURN(ScalarExprPtr x, BindExpr(*expr.args[0], scope));
      DHQP_ASSIGN_OR_RETURN(ScalarExprPtr lo, BindExpr(*expr.args[1], scope));
      DHQP_ASSIGN_OR_RETURN(ScalarExprPtr hi, BindExpr(*expr.args[2], scope));
      DHQP_ASSIGN_OR_RETURN(lo, CoerceLiteral(lo, x->type));
      DHQP_ASSIGN_OR_RETURN(hi, CoerceLiteral(hi, x->type));
      lo = Retype(lo, x->type);
      hi = Retype(hi, x->type);
      ScalarExprPtr range = MakeAnd(MakeComparison(">=", x, std::move(lo)),
                                    MakeComparison("<=", x, std::move(hi)));
      if (expr.negated) return MakeUnary("NOT", std::move(range), DataType::kBool);
      return range;
    }
    case ExprKind::kLike: {
      auto out = std::make_shared<ScalarExpr>();
      out->kind = ScalarKind::kLike;
      out->negated = expr.negated;
      out->type = DataType::kBool;
      DHQP_ASSIGN_OR_RETURN(ScalarExprPtr x, BindExpr(*expr.args[0], scope));
      DHQP_ASSIGN_OR_RETURN(ScalarExprPtr p, BindExpr(*expr.args[1], scope));
      out->args.push_back(std::move(x));
      out->args.push_back(std::move(p));
      return ScalarExprPtr(out);
    }
    case ExprKind::kIsNull: {
      auto out = std::make_shared<ScalarExpr>();
      out->kind = ScalarKind::kIsNull;
      out->negated = expr.negated;
      out->type = DataType::kBool;
      DHQP_ASSIGN_OR_RETURN(ScalarExprPtr x, BindExpr(*expr.args[0], scope));
      out->args.push_back(std::move(x));
      return ScalarExprPtr(out);
    }
    case ExprKind::kCast: {
      auto out = std::make_shared<ScalarExpr>();
      out->kind = ScalarKind::kCast;
      out->cast_type = expr.cast_type;
      out->type = expr.cast_type;
      DHQP_ASSIGN_OR_RETURN(ScalarExprPtr x, BindExpr(*expr.args[0], scope));
      out->args.push_back(std::move(x));
      return ScalarExprPtr(out);
    }
    case ExprKind::kCase: {
      auto out = std::make_shared<ScalarExpr>();
      out->kind = ScalarKind::kCase;
      DataType result_type = DataType::kNull;
      for (size_t i = 0; i < expr.args.size(); ++i) {
        DHQP_ASSIGN_OR_RETURN(ScalarExprPtr a, BindExpr(*expr.args[i], scope));
        bool is_value = (i % 2 == 1) || (i + 1 == expr.args.size() &&
                                         expr.args.size() % 2 == 1);
        if (is_value && result_type == DataType::kNull) result_type = a->type;
        out->args.push_back(std::move(a));
      }
      out->type = result_type;
      return ScalarExprPtr(out);
    }
    case ExprKind::kContains: {
      // CONTAINS(col, 'query') binds to a CONTAINS function; the optimizer
      // may replace it with a full-text index join (§2.3), otherwise the
      // executor evaluates it directly against the text.
      auto out = std::make_shared<ScalarExpr>();
      out->kind = ScalarKind::kFunc;
      out->op = "CONTAINS";
      out->type = DataType::kBool;
      DHQP_ASSIGN_OR_RETURN(ScalarExprPtr col, BindExpr(*expr.args[0], scope));
      if (col->kind != ScalarKind::kColumn) {
        return Status::InvalidArgument("CONTAINS requires a column argument");
      }
      out->args.push_back(std::move(col));
      out->args.push_back(MakeLiteral(Value::String(expr.name)));
      return ScalarExprPtr(out);
    }
    case ExprKind::kExists:
    case ExprKind::kInSubquery:
      return Status::NotSupported(
          "subquery predicates are only supported as top-level WHERE "
          "conjuncts");
  }
  return Status::Internal("unknown expression kind");
}

Result<LogicalOpPtr> Binder::ApplySubqueryPredicate(LogicalOpPtr tree,
                                                    const Expr& pred,
                                                    const Scope& scope) {
  const SelectStatement& sub = *pred.subquery;
  if (sub.cores.size() != 1) {
    return Status::NotSupported("UNION ALL not supported in subqueries");
  }
  const SelectCore& core = *sub.cores[0];
  if (!core.group_by.empty() || core.having != nullptr || core.distinct) {
    return Status::NotSupported(
        "aggregation in correlated subqueries is not supported");
  }

  // Bind the subquery's FROM with the outer scope visible (correlation).
  Scope sub_scope;
  sub_scope.outer = &scope;
  if (core.from == nullptr) {
    return Status::NotSupported("subquery requires a FROM clause");
  }
  DHQP_ASSIGN_OR_RETURN(LogicalOpPtr sub_tree,
                        BindTableRef(*core.from, &sub_scope));

  // Split WHERE into correlated conjuncts (referencing outer columns) and
  // local ones. Correlated conjuncts become part of the join predicate —
  // the subquery "un-rolling" of §4.1.4.
  std::vector<const Expr*> conjuncts;
  SplitAstConjuncts(core.where.get(), &conjuncts);
  std::vector<ScalarExprPtr> local, correlated;
  for (const Expr* c : conjuncts) {
    if (IsSubqueryPredicate(*c)) {
      DHQP_ASSIGN_OR_RETURN(sub_tree,
                            ApplySubqueryPredicate(sub_tree, *c, sub_scope));
      continue;
    }
    DHQP_ASSIGN_OR_RETURN(ScalarExprPtr bound, BindExpr(*c, sub_scope));
    if (CoveredBy(bound, sub_tree)) {
      local.push_back(std::move(bound));
    } else {
      correlated.push_back(std::move(bound));
    }
  }
  if (!local.empty()) sub_tree = MakeFilter(sub_tree, MergeConjuncts(local));

  ScalarExprPtr join_pred = MergeConjuncts(correlated);
  bool anti = pred.negated;

  if (pred.kind == ExprKind::kInSubquery) {
    // probe IN (SELECT item FROM ...) adds probe = item to the join
    // predicate.
    if (core.items.size() != 1 || core.items[0].star ||
        core.items[0].expr == nullptr) {
      return Status::InvalidArgument(
          "IN subquery must select exactly one expression");
    }
    DHQP_ASSIGN_OR_RETURN(ScalarExprPtr item,
                          BindExpr(*core.items[0].expr, sub_scope));
    if (item->kind != ScalarKind::kColumn) {
      int id = registry_->Add("", "subq", item->type);
      std::vector<int> in_cols;
      std::vector<ScalarExprPtr> exprs{item};
      in_cols.push_back(id);
      sub_tree = MakeProject(sub_tree, std::move(exprs), in_cols);
      item = MakeColumn(id, registry_->TypeOf(id), "subq");
    }
    DHQP_ASSIGN_OR_RETURN(ScalarExprPtr probe, BindExpr(*pred.args[0], scope));
    join_pred = MakeAnd(std::move(join_pred),
                        MakeComparison("=", std::move(probe), std::move(item)));
  }
  if (join_pred == nullptr) join_pred = MakeLiteral(Value::Bool(true));

  return MakeJoin(anti ? JoinType::kAnti : JoinType::kSemi, std::move(tree),
                  std::move(sub_tree), std::move(join_pred));
}

bool Binder::CoveredBy(const ScalarExprPtr& expr, const LogicalOpPtr& tree) {
  std::set<int> used;
  expr->CollectColumns(&used);
  std::vector<int> produced = tree->OutputColumns();
  for (int c : used) {
    if (std::find(produced.begin(), produced.end(), c) == produced.end()) {
      return false;
    }
  }
  return true;
}

Result<CheckConstraint> Binder::BindCheckConstraint(const Expr& expr,
                                                    const Schema& schema) {
  // Recursively evaluates the CHECK expression into (column, domain).
  struct Walker {
    const Schema& schema;
    std::string column;

    Result<IntervalSet> Walk(const Expr& e) {
      if (e.kind == ExprKind::kBinary && (e.name == "AND" || e.name == "OR")) {
        DHQP_ASSIGN_OR_RETURN(IntervalSet lhs, Walk(*e.args[0]));
        DHQP_ASSIGN_OR_RETURN(IntervalSet rhs, Walk(*e.args[1]));
        return e.name == "AND" ? lhs.Intersect(rhs) : lhs.Union(rhs);
      }
      if (e.kind == ExprKind::kBetween) {
        DHQP_RETURN_NOT_OK(NoteColumn(*e.args[0]));
        DHQP_ASSIGN_OR_RETURN(Value lo, LiteralValue(*e.args[1]));
        DHQP_ASSIGN_OR_RETURN(Value hi, LiteralValue(*e.args[2]));
        return IntervalSet::Range(Bound{lo, true}, Bound{hi, true});
      }
      if (e.kind == ExprKind::kInList) {
        DHQP_RETURN_NOT_OK(NoteColumn(*e.args[0]));
        IntervalSet set = IntervalSet::None();
        for (size_t i = 1; i < e.args.size(); ++i) {
          DHQP_ASSIGN_OR_RETURN(Value v, LiteralValue(*e.args[i]));
          set = set.Union(IntervalSet::Point(v));
        }
        return set;
      }
      if (e.kind == ExprKind::kBinary) {
        // col op literal  or  literal op col.
        const Expr* col = e.args[0].get();
        const Expr* lit = e.args[1].get();
        std::string op = e.name;
        if (col->kind == ExprKind::kLiteral) {
          std::swap(col, lit);
          // Mirror the operator.
          if (op == "<") op = ">";
          else if (op == "<=") op = ">=";
          else if (op == ">") op = "<";
          else if (op == ">=") op = "<=";
        }
        DHQP_RETURN_NOT_OK(NoteColumn(*col));
        DHQP_ASSIGN_OR_RETURN(Value v, LiteralValue(*lit));
        return IntervalSet::FromComparison(op, v);
      }
      return Status::NotSupported(
          "unsupported CHECK constraint form: " + e.ToString());
    }

    Status NoteColumn(const Expr& e) {
      if (e.kind != ExprKind::kColumnRef) {
        return Status::NotSupported("CHECK must compare a column: " +
                                    e.ToString());
      }
      const std::string& name = e.column_path.back();
      if (schema.FindColumn(name) < 0) {
        return Status::NotFound("CHECK references unknown column '" + name +
                                "'");
      }
      if (!column.empty() && !EqualsIgnoreCase(column, name)) {
        return Status::NotSupported(
            "CHECK constraints over multiple columns are not supported");
      }
      column = name;
      return Status::OK();
    }

    Result<Value> LiteralValue(const Expr& e) {
      if (e.kind != ExprKind::kLiteral) {
        return Status::NotSupported("CHECK requires literal bounds: " +
                                    e.ToString());
      }
      // Date columns accept ISO strings.
      int ord = schema.FindColumn(column);
      if (ord >= 0 &&
          schema.column(static_cast<size_t>(ord)).type == DataType::kDate &&
          !e.literal.is_null() && e.literal.type() == DataType::kString) {
        return e.literal.CastTo(DataType::kDate);
      }
      return e.literal;
    }
  };

  Walker walker{schema, ""};
  DHQP_ASSIGN_OR_RETURN(IntervalSet domain, walker.Walk(expr));
  if (walker.column.empty()) {
    return Status::NotSupported("CHECK constraint references no column");
  }
  return CheckConstraint{walker.column, std::move(domain), expr.ToString()};
}

}  // namespace dhqp
