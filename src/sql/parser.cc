#include "src/sql/parser.h"

#include <cctype>
#include <cstdlib>

#include "src/common/date.h"

namespace dhqp {

namespace {

ExprPtr MakeExpr(ExprKind kind) {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  return e;
}

ExprPtr MakeBinary(std::string op, ExprPtr lhs, ExprPtr rhs) {
  ExprPtr e = MakeExpr(ExprKind::kBinary);
  e->name = std::move(op);
  e->args.push_back(std::move(lhs));
  e->args.push_back(std::move(rhs));
  return e;
}

bool IsAggregateKeyword(const Token& tok) {
  return tok.type == TokenType::kKeyword &&
         (tok.text == "COUNT" || tok.text == "SUM" || tok.text == "AVG" ||
          tok.text == "MIN" || tok.text == "MAX");
}

}  // namespace

Result<std::unique_ptr<Statement>> Parser::Parse(const std::string& sql) {
  Parser parser(sql);
  DHQP_ASSIGN_OR_RETURN(parser.tokens_, Tokenize(parser.sql_));
  DHQP_ASSIGN_OR_RETURN(auto stmt, parser.ParseStatement());
  parser.Match(TokenType::kSemicolon);
  if (parser.Peek().type != TokenType::kEnd) {
    return parser.ErrorHere("unexpected trailing input");
  }
  return std::move(stmt);
}

Result<std::unique_ptr<SelectStatement>> Parser::ParseSelect(
    const std::string& sql) {
  Parser parser(sql);
  DHQP_ASSIGN_OR_RETURN(parser.tokens_, Tokenize(parser.sql_));
  DHQP_ASSIGN_OR_RETURN(auto stmt, parser.ParseSelectStatement());
  parser.Match(TokenType::kSemicolon);
  if (parser.Peek().type != TokenType::kEnd) {
    return parser.ErrorHere("unexpected trailing input in SELECT");
  }
  return std::move(stmt);
}

const Token& Parser::Peek(int ahead) const {
  size_t i = pos_ + static_cast<size_t>(ahead);
  if (i >= tokens_.size()) return tokens_.back();
  return tokens_[i];
}

const Token& Parser::Advance() {
  const Token& tok = Peek();
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return tok;
}

bool Parser::MatchKeyword(const char* kw) {
  if (Peek().IsKeyword(kw)) {
    Advance();
    return true;
  }
  return false;
}

bool Parser::MatchOperator(const char* op) {
  if (Peek().type == TokenType::kOperator && Peek().text == op) {
    Advance();
    return true;
  }
  return false;
}

bool Parser::Match(TokenType type) {
  if (Peek().type == type) {
    Advance();
    return true;
  }
  return false;
}

Status Parser::Expect(TokenType type, const char* what) {
  if (Peek().type != type) {
    return ErrorHere(std::string("expected ") + what);
  }
  Advance();
  return Status::OK();
}

Status Parser::ExpectKeyword(const char* kw) {
  if (!Peek().IsKeyword(kw)) {
    return ErrorHere(std::string("expected ") + kw);
  }
  Advance();
  return Status::OK();
}

Status Parser::ErrorHere(const std::string& message) const {
  const Token& tok = Peek();
  std::string near = tok.type == TokenType::kEnd ? "end of input"
                                                 : "'" + tok.text + "'";
  return Status::InvalidArgument(message + " near " + near + " (offset " +
                                 std::to_string(tok.position) + ")");
}

Result<std::unique_ptr<Statement>> Parser::ParseStatement() {
  if (Peek().IsKeyword("EXPLAIN")) {
    Advance();
    const bool analyze = MatchKeyword("ANALYZE");
    if (!Peek().IsKeyword("SELECT")) {
      return ErrorHere(analyze ? "EXPLAIN ANALYZE supports SELECT statements"
                               : "EXPLAIN supports SELECT statements");
    }
    auto stmt = std::make_unique<Statement>();
    stmt->kind = Statement::Kind::kSelect;
    stmt->explain = true;
    stmt->explain_analyze = analyze;
    DHQP_ASSIGN_OR_RETURN(stmt->select, ParseSelectStatement());
    return std::move(stmt);
  }
  if (Peek().IsKeyword("DROP")) {
    Advance();
    auto stmt = std::make_unique<Statement>();
    stmt->kind = Statement::Kind::kDrop;
    stmt->drop = std::make_unique<DropStatement>();
    if (MatchKeyword("TABLE")) {
      stmt->drop->target = DropStatement::Target::kTable;
    } else if (MatchKeyword("VIEW")) {
      stmt->drop->target = DropStatement::Target::kView;
    } else {
      return ErrorHere("expected TABLE or VIEW after DROP");
    }
    if (Peek().type != TokenType::kIdentifier) {
      return ErrorHere("expected object name");
    }
    stmt->drop->name = Advance().text;
    return std::move(stmt);
  }
  if (Peek().IsKeyword("SELECT")) {
    auto stmt = std::make_unique<Statement>();
    stmt->kind = Statement::Kind::kSelect;
    DHQP_ASSIGN_OR_RETURN(stmt->select, ParseSelectStatement());
    return std::move(stmt);
  }
  if (Peek().IsKeyword("CREATE")) return ParseCreate();
  if (Peek().IsKeyword("INSERT")) return ParseInsert();
  if (Peek().IsKeyword("DELETE")) return ParseDelete();
  if (Peek().IsKeyword("UPDATE")) return ParseUpdate();
  return ErrorHere("expected SELECT, CREATE, INSERT, DELETE or UPDATE");
}

Result<std::unique_ptr<SelectStatement>> Parser::ParseSelectStatement() {
  auto stmt = std::make_unique<SelectStatement>();
  DHQP_ASSIGN_OR_RETURN(auto core, ParseSelectCore());
  stmt->cores.push_back(std::move(core));
  while (Peek().IsKeyword("UNION")) {
    Advance();
    DHQP_RETURN_NOT_OK(ExpectKeyword("ALL"));
    DHQP_ASSIGN_OR_RETURN(auto next, ParseSelectCore());
    stmt->cores.push_back(std::move(next));
  }
  if (MatchKeyword("ORDER")) {
    DHQP_RETURN_NOT_OK(ExpectKeyword("BY"));
    while (true) {
      OrderItem item;
      DHQP_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (MatchKeyword("DESC")) {
        item.ascending = false;
      } else {
        MatchKeyword("ASC");
      }
      stmt->order_by.push_back(std::move(item));
      if (!Match(TokenType::kComma)) break;
    }
  }
  return std::move(stmt);
}

Result<std::unique_ptr<SelectCore>> Parser::ParseSelectCore() {
  DHQP_RETURN_NOT_OK(ExpectKeyword("SELECT"));
  auto core = std::make_unique<SelectCore>();
  if (MatchKeyword("DISTINCT")) core->distinct = true;
  if (MatchKeyword("TOP")) {
    if (Peek().type != TokenType::kInteger) {
      return ErrorHere("expected integer after TOP");
    }
    core->top = std::strtoll(Advance().text.c_str(), nullptr, 10);
  }
  // Select list.
  while (true) {
    SelectItem item;
    if (Peek().type == TokenType::kOperator && Peek().text == "*") {
      Advance();
      item.star = true;
    } else if (Peek().type == TokenType::kIdentifier) {
      // Lookahead for `alias(.part)*.*`.
      size_t save = pos_;
      std::vector<std::string> path;
      path.push_back(Advance().text);
      bool star = false;
      while (Peek().type == TokenType::kDot) {
        Advance();
        if (Peek().type == TokenType::kOperator && Peek().text == "*") {
          Advance();
          star = true;
          break;
        }
        if (Peek().type != TokenType::kIdentifier) break;
        path.push_back(Advance().text);
      }
      if (star) {
        item.star = true;
        item.star_qualifier = std::move(path);
      } else {
        pos_ = save;
        DHQP_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      }
    } else {
      DHQP_ASSIGN_OR_RETURN(item.expr, ParseExpr());
    }
    if (!item.star) {
      if (MatchKeyword("AS")) {
        if (Peek().type != TokenType::kIdentifier) {
          return ErrorHere("expected alias after AS");
        }
        item.alias = Advance().text;
      } else if (Peek().type == TokenType::kIdentifier) {
        item.alias = Advance().text;
      }
    }
    core->items.push_back(std::move(item));
    if (!Match(TokenType::kComma)) break;
  }
  if (MatchKeyword("FROM")) {
    DHQP_ASSIGN_OR_RETURN(core->from, ParseTableRef());
  }
  if (MatchKeyword("WHERE")) {
    DHQP_ASSIGN_OR_RETURN(core->where, ParseExpr());
  }
  if (MatchKeyword("GROUP")) {
    DHQP_RETURN_NOT_OK(ExpectKeyword("BY"));
    while (true) {
      DHQP_ASSIGN_OR_RETURN(auto g, ParseExpr());
      core->group_by.push_back(std::move(g));
      if (!Match(TokenType::kComma)) break;
    }
  }
  if (MatchKeyword("HAVING")) {
    DHQP_ASSIGN_OR_RETURN(core->having, ParseExpr());
  }
  return std::move(core);
}

Result<std::unique_ptr<TableRef>> Parser::ParseTableRef() {
  DHQP_ASSIGN_OR_RETURN(auto left, ParseTablePrimary());
  while (true) {
    JoinKind kind = JoinKind::kInner;
    bool has_on = true;
    if (Match(TokenType::kComma)) {
      kind = JoinKind::kCross;
      has_on = false;
    } else if (Peek().IsKeyword("JOIN") || Peek().IsKeyword("INNER")) {
      MatchKeyword("INNER");
      DHQP_RETURN_NOT_OK(ExpectKeyword("JOIN"));
    } else if (Peek().IsKeyword("LEFT")) {
      Advance();
      MatchKeyword("OUTER");
      DHQP_RETURN_NOT_OK(ExpectKeyword("JOIN"));
      kind = JoinKind::kLeftOuter;
    } else if (Peek().IsKeyword("RIGHT")) {
      // RIGHT [OUTER] JOIN parses as a LEFT join with swapped operands.
      Advance();
      MatchKeyword("OUTER");
      DHQP_RETURN_NOT_OK(ExpectKeyword("JOIN"));
      DHQP_ASSIGN_OR_RETURN(auto preserved, ParseTablePrimary());
      DHQP_RETURN_NOT_OK(ExpectKeyword("ON"));
      auto join = std::make_unique<TableRef>();
      join->kind = TableRef::Kind::kJoin;
      join->join_kind = JoinKind::kLeftOuter;
      join->left = std::move(preserved);
      join->right = std::move(left);
      DHQP_ASSIGN_OR_RETURN(join->on, ParseExpr());
      left = std::move(join);
      continue;
    } else if (Peek().IsKeyword("CROSS")) {
      Advance();
      DHQP_RETURN_NOT_OK(ExpectKeyword("JOIN"));
      kind = JoinKind::kCross;
      has_on = false;
    } else {
      break;
    }
    DHQP_ASSIGN_OR_RETURN(auto right, ParseTablePrimary());
    auto join = std::make_unique<TableRef>();
    join->kind = TableRef::Kind::kJoin;
    join->join_kind = kind;
    join->left = std::move(left);
    join->right = std::move(right);
    if (has_on && kind != JoinKind::kCross) {
      DHQP_RETURN_NOT_OK(ExpectKeyword("ON"));
      DHQP_ASSIGN_OR_RETURN(join->on, ParseExpr());
    }
    left = std::move(join);
  }
  return std::move(left);
}

Result<std::unique_ptr<TableRef>> Parser::ParseTablePrimary() {
  if (Match(TokenType::kLParen)) {
    DHQP_ASSIGN_OR_RETURN(auto inner, ParseTableRef());
    DHQP_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
    return std::move(inner);
  }
  if (MatchKeyword("OPENQUERY")) {
    DHQP_RETURN_NOT_OK(Expect(TokenType::kLParen, "'(' after OPENQUERY"));
    if (Peek().type != TokenType::kIdentifier) {
      return ErrorHere("expected linked server name in OPENQUERY");
    }
    auto ref = std::make_unique<TableRef>();
    ref->kind = TableRef::Kind::kOpenQuery;
    ref->server = Advance().text;
    DHQP_RETURN_NOT_OK(Expect(TokenType::kComma, "','"));
    if (Peek().type != TokenType::kString) {
      return ErrorHere("expected query string in OPENQUERY");
    }
    ref->pass_through_query = Advance().text;
    DHQP_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
    if (MatchKeyword("AS")) {
      if (Peek().type != TokenType::kIdentifier) {
        return ErrorHere("expected alias after AS");
      }
      ref->alias = Advance().text;
    } else if (Peek().type == TokenType::kIdentifier) {
      ref->alias = Advance().text;
    }
    return std::move(ref);
  }
  auto ref = std::make_unique<TableRef>();
  ref->kind = TableRef::Kind::kNamed;
  DHQP_ASSIGN_OR_RETURN(ref->name, ParseObjectName());
  if (MatchKeyword("AS")) {
    if (Peek().type != TokenType::kIdentifier) {
      return ErrorHere("expected alias after AS");
    }
    ref->alias = Advance().text;
  } else if (Peek().type == TokenType::kIdentifier) {
    ref->alias = Advance().text;
  }
  return std::move(ref);
}

Result<ObjectName> Parser::ParseObjectName() {
  if (Peek().type != TokenType::kIdentifier) {
    return ErrorHere("expected table name");
  }
  std::vector<std::string> parts;
  parts.push_back(Advance().text);
  while (Peek().type == TokenType::kDot) {
    Advance();
    // T-SQL allows omitted middle parts: `sys..dm_x`, `server..t`. A dot
    // (or end of name) right after a dot contributes an empty part.
    if (Peek().type == TokenType::kDot) {
      parts.push_back("");
    } else if (Peek().type == TokenType::kIdentifier) {
      parts.push_back(Advance().text);
    } else {
      return ErrorHere("expected identifier after '.'");
    }
    if (parts.size() > 4) return ErrorHere("too many name parts (max 4)");
  }
  if (parts.back().empty()) {
    return ErrorHere("expected identifier after '.'");
  }
  ObjectName name;
  // Right-align: table is always last; four-part = server.catalog.schema.table.
  name.table = parts.back();
  if (parts.size() == 2) {
    name.schema = parts[0];
  } else if (parts.size() == 3) {
    name.catalog = parts[0];
    name.schema = parts[1];
  } else if (parts.size() == 4) {
    name.server = parts[0];
    name.catalog = parts[1];
    name.schema = parts[2];
  }
  return name;
}

Result<ExprPtr> Parser::ParseExpr() { return ParseOr(); }

Result<ExprPtr> Parser::ParseOr() {
  DHQP_ASSIGN_OR_RETURN(auto lhs, ParseAnd());
  while (MatchKeyword("OR")) {
    DHQP_ASSIGN_OR_RETURN(auto rhs, ParseAnd());
    lhs = MakeBinary("OR", std::move(lhs), std::move(rhs));
  }
  return std::move(lhs);
}

Result<ExprPtr> Parser::ParseAnd() {
  DHQP_ASSIGN_OR_RETURN(auto lhs, ParseNot());
  while (MatchKeyword("AND")) {
    DHQP_ASSIGN_OR_RETURN(auto rhs, ParseNot());
    lhs = MakeBinary("AND", std::move(lhs), std::move(rhs));
  }
  return std::move(lhs);
}

Result<ExprPtr> Parser::ParseNot() {
  if (MatchKeyword("NOT")) {
    // NOT EXISTS folds into the exists node itself.
    if (Peek().IsKeyword("EXISTS")) {
      DHQP_ASSIGN_OR_RETURN(auto e, ParsePredicate());
      e->negated = !e->negated;
      return std::move(e);
    }
    DHQP_ASSIGN_OR_RETURN(auto inner, ParseNot());
    ExprPtr e = MakeExpr(ExprKind::kUnary);
    e->name = "NOT";
    e->args.push_back(std::move(inner));
    return std::move(e);
  }
  return ParsePredicate();
}

Result<ExprPtr> Parser::ParsePredicate() {
  if (MatchKeyword("EXISTS")) {
    DHQP_RETURN_NOT_OK(Expect(TokenType::kLParen, "'(' after EXISTS"));
    ExprPtr e = MakeExpr(ExprKind::kExists);
    DHQP_ASSIGN_OR_RETURN(e->subquery, ParseSelectStatement());
    DHQP_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
    return std::move(e);
  }
  DHQP_ASSIGN_OR_RETURN(auto lhs, ParseAdditive());
  // Comparison.
  if (Peek().type == TokenType::kOperator &&
      (Peek().text == "=" || Peek().text == "<>" || Peek().text == "<" ||
       Peek().text == "<=" || Peek().text == ">" || Peek().text == ">=")) {
    std::string op = Advance().text;
    DHQP_ASSIGN_OR_RETURN(auto rhs, ParseAdditive());
    return MakeBinary(std::move(op), std::move(lhs), std::move(rhs));
  }
  if (Peek().IsKeyword("IS")) {
    Advance();
    bool negated = MatchKeyword("NOT");
    DHQP_RETURN_NOT_OK(ExpectKeyword("NULL"));
    ExprPtr e = MakeExpr(ExprKind::kIsNull);
    e->negated = negated;
    e->args.push_back(std::move(lhs));
    return std::move(e);
  }
  bool negated = false;
  if (Peek().IsKeyword("NOT") &&
      (Peek(1).IsKeyword("IN") || Peek(1).IsKeyword("BETWEEN") ||
       Peek(1).IsKeyword("LIKE"))) {
    Advance();
    negated = true;
  }
  if (MatchKeyword("BETWEEN")) {
    DHQP_ASSIGN_OR_RETURN(auto lo, ParseAdditive());
    DHQP_RETURN_NOT_OK(ExpectKeyword("AND"));
    DHQP_ASSIGN_OR_RETURN(auto hi, ParseAdditive());
    ExprPtr e = MakeExpr(ExprKind::kBetween);
    e->negated = negated;
    e->args.push_back(std::move(lhs));
    e->args.push_back(std::move(lo));
    e->args.push_back(std::move(hi));
    return std::move(e);
  }
  if (MatchKeyword("LIKE")) {
    DHQP_ASSIGN_OR_RETURN(auto pattern, ParseAdditive());
    ExprPtr e = MakeExpr(ExprKind::kLike);
    e->negated = negated;
    e->args.push_back(std::move(lhs));
    e->args.push_back(std::move(pattern));
    return std::move(e);
  }
  if (MatchKeyword("IN")) {
    DHQP_RETURN_NOT_OK(Expect(TokenType::kLParen, "'(' after IN"));
    if (Peek().IsKeyword("SELECT")) {
      ExprPtr e = MakeExpr(ExprKind::kInSubquery);
      e->negated = negated;
      e->args.push_back(std::move(lhs));
      DHQP_ASSIGN_OR_RETURN(e->subquery, ParseSelectStatement());
      DHQP_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
      return std::move(e);
    }
    ExprPtr e = MakeExpr(ExprKind::kInList);
    e->negated = negated;
    e->args.push_back(std::move(lhs));
    while (true) {
      DHQP_ASSIGN_OR_RETURN(auto item, ParseExpr());
      e->args.push_back(std::move(item));
      if (!Match(TokenType::kComma)) break;
    }
    DHQP_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
    return std::move(e);
  }
  return std::move(lhs);
}

Result<ExprPtr> Parser::ParseAdditive() {
  DHQP_ASSIGN_OR_RETURN(auto lhs, ParseMultiplicative());
  while (Peek().type == TokenType::kOperator &&
         (Peek().text == "+" || Peek().text == "-")) {
    std::string op = Advance().text;
    DHQP_ASSIGN_OR_RETURN(auto rhs, ParseMultiplicative());
    lhs = MakeBinary(std::move(op), std::move(lhs), std::move(rhs));
  }
  return std::move(lhs);
}

Result<ExprPtr> Parser::ParseMultiplicative() {
  DHQP_ASSIGN_OR_RETURN(auto lhs, ParseUnary());
  while (Peek().type == TokenType::kOperator &&
         (Peek().text == "*" || Peek().text == "/" || Peek().text == "%")) {
    std::string op = Advance().text;
    DHQP_ASSIGN_OR_RETURN(auto rhs, ParseUnary());
    lhs = MakeBinary(std::move(op), std::move(lhs), std::move(rhs));
  }
  return std::move(lhs);
}

Result<ExprPtr> Parser::ParseUnary() {
  if (Peek().type == TokenType::kOperator && Peek().text == "-") {
    Advance();
    DHQP_ASSIGN_OR_RETURN(auto inner, ParseUnary());
    // Fold negative literals immediately.
    if (inner->kind == ExprKind::kLiteral &&
        inner->literal.type() == DataType::kInt64) {
      inner->literal = Value::Int64(-inner->literal.int64_value());
      return std::move(inner);
    }
    if (inner->kind == ExprKind::kLiteral &&
        inner->literal.type() == DataType::kDouble) {
      inner->literal = Value::Double(-inner->literal.double_value());
      return std::move(inner);
    }
    ExprPtr e = MakeExpr(ExprKind::kUnary);
    e->name = "-";
    e->args.push_back(std::move(inner));
    return std::move(e);
  }
  return ParsePrimary();
}

Result<ExprPtr> Parser::ParsePrimary() {
  const Token& tok = Peek();
  switch (tok.type) {
    case TokenType::kInteger: {
      ExprPtr e = MakeExpr(ExprKind::kLiteral);
      e->literal = Value::Int64(std::strtoll(Advance().text.c_str(), nullptr, 10));
      return std::move(e);
    }
    case TokenType::kFloat: {
      ExprPtr e = MakeExpr(ExprKind::kLiteral);
      e->literal = Value::Double(std::strtod(Advance().text.c_str(), nullptr));
      return std::move(e);
    }
    case TokenType::kString: {
      ExprPtr e = MakeExpr(ExprKind::kLiteral);
      e->literal = Value::String(Advance().text);
      return std::move(e);
    }
    case TokenType::kParameter: {
      ExprPtr e = MakeExpr(ExprKind::kParameter);
      e->name = Advance().text;
      return std::move(e);
    }
    case TokenType::kLParen: {
      Advance();
      DHQP_ASSIGN_OR_RETURN(auto inner, ParseExpr());
      DHQP_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
      return std::move(inner);
    }
    case TokenType::kKeyword: {
      if (tok.text == "NULL") {
        Advance();
        return MakeExpr(ExprKind::kLiteral);  // Literal defaults to NULL.
      }
      if (tok.text == "TRUE" || tok.text == "FALSE") {
        ExprPtr e = MakeExpr(ExprKind::kLiteral);
        e->literal = Value::Bool(Advance().text == "TRUE");
        return std::move(e);
      }
      if (tok.text == "DATE" && Peek(1).type == TokenType::kLParen) {
        // DATE(d, n): date arithmetic function (§2.4's date()).
        Advance();
        return ParseFunctionCall("DATE");
      }
      if (tok.text == "DATE" && Peek(1).type == TokenType::kString) {
        Advance();
        DHQP_ASSIGN_OR_RETURN(int64_t days, ParseIsoDate(Advance().text));
        ExprPtr e = MakeExpr(ExprKind::kLiteral);
        e->literal = Value::Date(days);
        return std::move(e);
      }
      if (tok.text == "CAST") {
        Advance();
        DHQP_RETURN_NOT_OK(Expect(TokenType::kLParen, "'(' after CAST"));
        ExprPtr e = MakeExpr(ExprKind::kCast);
        DHQP_ASSIGN_OR_RETURN(auto inner, ParseExpr());
        e->args.push_back(std::move(inner));
        DHQP_RETURN_NOT_OK(ExpectKeyword("AS"));
        DHQP_ASSIGN_OR_RETURN(e->cast_type, ParseTypeName());
        DHQP_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
        return std::move(e);
      }
      if (tok.text == "CASE") {
        Advance();
        // Searched CASE only: CASE WHEN c THEN v [WHEN..]* [ELSE e] END.
        // args laid out as [c1, v1, c2, v2, ..., (else)].
        ExprPtr e = MakeExpr(ExprKind::kCase);
        while (MatchKeyword("WHEN")) {
          DHQP_ASSIGN_OR_RETURN(auto cond, ParseExpr());
          DHQP_RETURN_NOT_OK(ExpectKeyword("THEN"));
          DHQP_ASSIGN_OR_RETURN(auto val, ParseExpr());
          e->args.push_back(std::move(cond));
          e->args.push_back(std::move(val));
        }
        if (e->args.empty()) return ErrorHere("CASE requires WHEN");
        if (MatchKeyword("ELSE")) {
          DHQP_ASSIGN_OR_RETURN(auto val, ParseExpr());
          e->args.push_back(std::move(val));
        }
        DHQP_RETURN_NOT_OK(ExpectKeyword("END"));
        return std::move(e);
      }
      if (tok.text == "CONTAINS") {
        Advance();
        DHQP_RETURN_NOT_OK(Expect(TokenType::kLParen, "'(' after CONTAINS"));
        ExprPtr e = MakeExpr(ExprKind::kContains);
        DHQP_ASSIGN_OR_RETURN(auto col, ParseExpr());
        e->args.push_back(std::move(col));
        DHQP_RETURN_NOT_OK(Expect(TokenType::kComma, "','"));
        if (Peek().type != TokenType::kString) {
          return ErrorHere("expected full-text query string in CONTAINS");
        }
        e->name = Advance().text;  // The full-text query.
        DHQP_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
        return std::move(e);
      }
      if (IsAggregateKeyword(tok)) {
        std::string name = Advance().text;
        return ParseFunctionCall(name);
      }
      return ErrorHere("unexpected keyword in expression");
    }
    case TokenType::kIdentifier: {
      // Function call?
      if (Peek(1).type == TokenType::kLParen) {
        std::string name = Advance().text;
        return ParseFunctionCall(name);
      }
      // Column reference path.
      ExprPtr e = MakeExpr(ExprKind::kColumnRef);
      e->column_path.push_back(Advance().text);
      while (Peek().type == TokenType::kDot &&
             Peek(1).type == TokenType::kIdentifier) {
        Advance();
        e->column_path.push_back(Advance().text);
      }
      return std::move(e);
    }
    default:
      return ErrorHere("expected expression");
  }
}

Result<ExprPtr> Parser::ParseFunctionCall(const std::string& name) {
  DHQP_RETURN_NOT_OK(Expect(TokenType::kLParen, "'(' in function call"));
  ExprPtr e = MakeExpr(ExprKind::kFunctionCall);
  e->name = name;
  for (char& c : e->name) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  if (MatchKeyword("DISTINCT")) e->distinct = true;
  if (Peek().type == TokenType::kOperator && Peek().text == "*") {
    Advance();
    ExprPtr star = MakeExpr(ExprKind::kStar);
    e->args.push_back(std::move(star));
  } else if (Peek().type != TokenType::kRParen) {
    while (true) {
      DHQP_ASSIGN_OR_RETURN(auto arg, ParseExpr());
      e->args.push_back(std::move(arg));
      if (!Match(TokenType::kComma)) break;
    }
  }
  DHQP_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
  return std::move(e);
}

Result<DataType> Parser::ParseTypeName() {
  const Token& tok = Peek();
  if (tok.type != TokenType::kKeyword && tok.type != TokenType::kIdentifier) {
    return ErrorHere("expected type name");
  }
  std::string name = Advance().text;
  for (char& c : name) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  DataType type;
  if (name == "INT" || name == "INTEGER" || name == "BIGINT") {
    type = DataType::kInt64;
  } else if (name == "FLOAT" || name == "DOUBLE" || name == "REAL") {
    type = DataType::kDouble;
  } else if (name == "VARCHAR" || name == "TEXT" || name == "CHAR" ||
             name == "NVARCHAR") {
    type = DataType::kString;
  } else if (name == "DATE" || name == "DATETIME") {
    type = DataType::kDate;
  } else if (name == "BOOLEAN" || name == "BIT" || name == "BOOL") {
    type = DataType::kBool;
  } else {
    return ErrorHere("unknown type '" + name + "'");
  }
  // Optional length, e.g. VARCHAR(40): parsed and ignored.
  if (Match(TokenType::kLParen)) {
    if (Peek().type != TokenType::kInteger) {
      return ErrorHere("expected length in type");
    }
    Advance();
    DHQP_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
  }
  return type;
}

Result<std::unique_ptr<Statement>> Parser::ParseCreate() {
  DHQP_RETURN_NOT_OK(ExpectKeyword("CREATE"));
  bool unique = MatchKeyword("UNIQUE");
  if (MatchKeyword("TABLE")) {
    if (unique) return ErrorHere("UNIQUE not valid on CREATE TABLE");
    auto stmt = std::make_unique<Statement>();
    stmt->kind = Statement::Kind::kCreateTable;
    stmt->create_table = std::make_unique<CreateTableStatement>();
    if (Peek().type != TokenType::kIdentifier) {
      return ErrorHere("expected table name");
    }
    stmt->create_table->name = Advance().text;
    DHQP_RETURN_NOT_OK(Expect(TokenType::kLParen, "'('"));
    while (true) {
      if (MatchKeyword("CHECK")) {
        DHQP_RETURN_NOT_OK(Expect(TokenType::kLParen, "'(' after CHECK"));
        DHQP_ASSIGN_OR_RETURN(auto check, ParseExpr());
        stmt->create_table->checks.push_back(std::move(check));
        DHQP_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
      } else {
        if (Peek().type != TokenType::kIdentifier) {
          return ErrorHere("expected column name");
        }
        ColumnDefAst col;
        col.name = Advance().text;
        DHQP_ASSIGN_OR_RETURN(col.type, ParseTypeName());
        while (true) {
          if (Peek().IsKeyword("NOT") && Peek(1).IsKeyword("NULL")) {
            Advance();
            Advance();
            col.not_null = true;
          } else if (Peek().IsKeyword("PRIMARY")) {
            Advance();
            DHQP_RETURN_NOT_OK(ExpectKeyword("KEY"));
            col.primary_key = true;
            col.not_null = true;
          } else if (Peek().IsKeyword("CHECK")) {
            Advance();
            DHQP_RETURN_NOT_OK(Expect(TokenType::kLParen, "'(' after CHECK"));
            DHQP_ASSIGN_OR_RETURN(auto check, ParseExpr());
            stmt->create_table->checks.push_back(std::move(check));
            DHQP_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
          } else {
            break;
          }
        }
        stmt->create_table->columns.push_back(std::move(col));
      }
      if (!Match(TokenType::kComma)) break;
    }
    DHQP_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
    return std::move(stmt);
  }
  if (MatchKeyword("INDEX")) {
    auto stmt = std::make_unique<Statement>();
    stmt->kind = Statement::Kind::kCreateIndex;
    stmt->create_index = std::make_unique<CreateIndexStatement>();
    stmt->create_index->unique = unique;
    if (Peek().type != TokenType::kIdentifier) {
      return ErrorHere("expected index name");
    }
    stmt->create_index->name = Advance().text;
    if (!MatchKeyword("ON")) {
      // 'ON' is not a dedicated keyword path here; accept it via keyword set.
      return ErrorHere("expected ON");
    }
    if (Peek().type != TokenType::kIdentifier) {
      return ErrorHere("expected table name");
    }
    stmt->create_index->table = Advance().text;
    DHQP_RETURN_NOT_OK(Expect(TokenType::kLParen, "'('"));
    while (true) {
      if (Peek().type != TokenType::kIdentifier) {
        return ErrorHere("expected column name");
      }
      stmt->create_index->columns.push_back(Advance().text);
      if (!Match(TokenType::kComma)) break;
    }
    DHQP_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
    return std::move(stmt);
  }
  if (MatchKeyword("VIEW")) {
    if (unique) return ErrorHere("UNIQUE not valid on CREATE VIEW");
    auto stmt = std::make_unique<Statement>();
    stmt->kind = Statement::Kind::kCreateView;
    stmt->create_view = std::make_unique<CreateViewStatement>();
    if (Peek().type != TokenType::kIdentifier) {
      return ErrorHere("expected view name");
    }
    stmt->create_view->name = Advance().text;
    DHQP_RETURN_NOT_OK(ExpectKeyword("AS"));
    // Capture the remaining source text as the view body and validate that
    // it parses as a SELECT.
    size_t body_start = Peek().position;
    stmt->create_view->body_sql = sql_.substr(body_start);
    DHQP_ASSIGN_OR_RETURN(auto body, ParseSelectStatement());
    (void)body;
    return std::move(stmt);
  }
  return ErrorHere("expected TABLE, INDEX or VIEW after CREATE");
}

Result<std::unique_ptr<Statement>> Parser::ParseInsert() {
  DHQP_RETURN_NOT_OK(ExpectKeyword("INSERT"));
  DHQP_RETURN_NOT_OK(ExpectKeyword("INTO"));
  auto stmt = std::make_unique<Statement>();
  stmt->kind = Statement::Kind::kInsert;
  stmt->insert = std::make_unique<InsertStatement>();
  DHQP_ASSIGN_OR_RETURN(stmt->insert->table, ParseObjectName());
  if (Match(TokenType::kLParen)) {
    while (true) {
      if (Peek().type != TokenType::kIdentifier) {
        return ErrorHere("expected column name");
      }
      stmt->insert->columns.push_back(Advance().text);
      if (!Match(TokenType::kComma)) break;
    }
    DHQP_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
  }
  DHQP_RETURN_NOT_OK(ExpectKeyword("VALUES"));
  while (true) {
    DHQP_RETURN_NOT_OK(Expect(TokenType::kLParen, "'('"));
    std::vector<ExprPtr> row;
    while (true) {
      DHQP_ASSIGN_OR_RETURN(auto e, ParseExpr());
      row.push_back(std::move(e));
      if (!Match(TokenType::kComma)) break;
    }
    DHQP_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
    stmt->insert->rows.push_back(std::move(row));
    if (!Match(TokenType::kComma)) break;
  }
  return std::move(stmt);
}

Result<std::unique_ptr<Statement>> Parser::ParseDelete() {
  DHQP_RETURN_NOT_OK(ExpectKeyword("DELETE"));
  DHQP_RETURN_NOT_OK(ExpectKeyword("FROM"));
  auto stmt = std::make_unique<Statement>();
  stmt->kind = Statement::Kind::kDelete;
  stmt->delete_stmt = std::make_unique<DeleteStatement>();
  DHQP_ASSIGN_OR_RETURN(stmt->delete_stmt->table, ParseObjectName());
  if (MatchKeyword("WHERE")) {
    DHQP_ASSIGN_OR_RETURN(stmt->delete_stmt->where, ParseExpr());
  }
  return std::move(stmt);
}

Result<std::unique_ptr<Statement>> Parser::ParseUpdate() {
  DHQP_RETURN_NOT_OK(ExpectKeyword("UPDATE"));
  auto stmt = std::make_unique<Statement>();
  stmt->kind = Statement::Kind::kUpdate;
  stmt->update = std::make_unique<UpdateStatement>();
  DHQP_ASSIGN_OR_RETURN(stmt->update->table, ParseObjectName());
  DHQP_RETURN_NOT_OK(ExpectKeyword("SET"));
  while (true) {
    if (Peek().type != TokenType::kIdentifier) {
      return ErrorHere("expected column name in SET");
    }
    std::string column = Advance().text;
    if (!MatchOperator("=")) return ErrorHere("expected '=' in SET");
    DHQP_ASSIGN_OR_RETURN(auto value, ParseExpr());
    stmt->update->assignments.emplace_back(std::move(column),
                                           std::move(value));
    if (!Match(TokenType::kComma)) break;
  }
  if (MatchKeyword("WHERE")) {
    DHQP_ASSIGN_OR_RETURN(stmt->update->where, ParseExpr());
  }
  return std::move(stmt);
}

}  // namespace dhqp
