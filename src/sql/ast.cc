#include "src/sql/ast.h"

namespace dhqp {

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kLiteral:
      if (literal.type() == DataType::kString) {
        return "'" + literal.ToString() + "'";
      }
      return literal.ToString();
    case ExprKind::kColumnRef: {
      std::string out;
      for (size_t i = 0; i < column_path.size(); ++i) {
        if (i) out += ".";
        out += column_path[i];
      }
      return out;
    }
    case ExprKind::kParameter:
      return name;
    case ExprKind::kStar:
      return "*";
    case ExprKind::kUnary:
      return name + "(" + args[0]->ToString() + ")";
    case ExprKind::kBinary:
      return "(" + args[0]->ToString() + " " + name + " " +
             args[1]->ToString() + ")";
    case ExprKind::kFunctionCall: {
      std::string out = name + "(";
      if (distinct) out += "DISTINCT ";
      for (size_t i = 0; i < args.size(); ++i) {
        if (i) out += ", ";
        out += args[i]->ToString();
      }
      return out + ")";
    }
    case ExprKind::kInList: {
      std::string out = args[0]->ToString();
      out += negated ? " NOT IN (" : " IN (";
      for (size_t i = 1; i < args.size(); ++i) {
        if (i > 1) out += ", ";
        out += args[i]->ToString();
      }
      return out + ")";
    }
    case ExprKind::kInSubquery:
      return args[0]->ToString() + (negated ? " NOT IN (<subquery>)"
                                            : " IN (<subquery>)");
    case ExprKind::kExists:
      return negated ? "NOT EXISTS(<subquery>)" : "EXISTS(<subquery>)";
    case ExprKind::kBetween:
      return args[0]->ToString() + (negated ? " NOT BETWEEN " : " BETWEEN ") +
             args[1]->ToString() + " AND " + args[2]->ToString();
    case ExprKind::kLike:
      return args[0]->ToString() + (negated ? " NOT LIKE " : " LIKE ") +
             args[1]->ToString();
    case ExprKind::kIsNull:
      return args[0]->ToString() + (negated ? " IS NOT NULL" : " IS NULL");
    case ExprKind::kCast:
      return "CAST(" + args[0]->ToString() + " AS " +
             DataTypeName(cast_type) + ")";
    case ExprKind::kCase: {
      std::string out = "CASE";
      size_t i = 0;
      for (; i + 1 < args.size(); i += 2) {
        out += " WHEN " + args[i]->ToString() + " THEN " +
               args[i + 1]->ToString();
      }
      if (i < args.size()) out += " ELSE " + args[i]->ToString();
      return out + " END";
    }
    case ExprKind::kContains:
      return "CONTAINS(" + args[0]->ToString() + ", '" + name + "')";
  }
  return "?";
}

}  // namespace dhqp
