#include "src/sql/bound_expr.h"

namespace dhqp {

namespace {

std::shared_ptr<ScalarExpr> NewExpr(ScalarKind kind, DataType type) {
  auto e = std::make_shared<ScalarExpr>();
  e->kind = kind;
  e->type = type;
  return e;
}

}  // namespace

std::string ScalarExpr::ToString() const {
  switch (kind) {
    case ScalarKind::kColumn:
      return column_name.empty() ? "#" + std::to_string(column_id)
                                 : column_name;
    case ScalarKind::kLiteral:
      if (!literal.is_null() && literal.type() == DataType::kString) {
        return "'" + literal.ToString() + "'";
      }
      return literal.ToString();
    case ScalarKind::kParam:
      return op;
    case ScalarKind::kUnary:
      return op + "(" + args[0]->ToString() + ")";
    case ScalarKind::kBinary:
      return "(" + args[0]->ToString() + " " + op + " " + args[1]->ToString() +
             ")";
    case ScalarKind::kFunc: {
      std::string out = op + "(";
      for (size_t i = 0; i < args.size(); ++i) {
        if (i) out += ", ";
        out += args[i]->ToString();
      }
      return out + ")";
    }
    case ScalarKind::kIsNull:
      return args[0]->ToString() + (negated ? " IS NOT NULL" : " IS NULL");
    case ScalarKind::kLike:
      return args[0]->ToString() + (negated ? " NOT LIKE " : " LIKE ") +
             args[1]->ToString();
    case ScalarKind::kInList: {
      std::string out = args[0]->ToString();
      out += negated ? " NOT IN (" : " IN (";
      for (size_t i = 1; i < args.size(); ++i) {
        if (i > 1) out += ", ";
        out += args[i]->ToString();
      }
      return out + ")";
    }
    case ScalarKind::kCase: {
      std::string out = "CASE";
      size_t i = 0;
      for (; i + 1 < args.size(); i += 2) {
        out += " WHEN " + args[i]->ToString() + " THEN " +
               args[i + 1]->ToString();
      }
      if (i < args.size()) out += " ELSE " + args[i]->ToString();
      return out + " END";
    }
    case ScalarKind::kCast:
      return "CAST(" + args[0]->ToString() + " AS " + DataTypeName(cast_type) +
             ")";
  }
  return "?";
}

void ScalarExpr::CollectColumns(std::set<int>* out) const {
  if (kind == ScalarKind::kColumn) out->insert(column_id);
  for (const ScalarExprPtr& arg : args) arg->CollectColumns(out);
}

void ScalarExpr::CollectParams(std::set<std::string>* out) const {
  if (kind == ScalarKind::kParam) out->insert(op);
  for (const ScalarExprPtr& arg : args) arg->CollectParams(out);
}

bool ScalarExpr::IsColumnFree() const {
  if (kind == ScalarKind::kColumn) return false;
  for (const ScalarExprPtr& arg : args) {
    if (!arg->IsColumnFree()) return false;
  }
  return true;
}

ScalarExprPtr MakeColumn(int column_id, DataType type, std::string name) {
  auto e = NewExpr(ScalarKind::kColumn, type);
  e->column_id = column_id;
  e->column_name = std::move(name);
  return e;
}

ScalarExprPtr MakeLiteral(Value v) {
  auto e = NewExpr(ScalarKind::kLiteral, v.type());
  e->literal = std::move(v);
  return e;
}

ScalarExprPtr MakeParam(std::string name, DataType type) {
  auto e = NewExpr(ScalarKind::kParam, type);
  e->op = std::move(name);
  return e;
}

ScalarExprPtr MakeUnary(std::string op, ScalarExprPtr arg, DataType type) {
  auto e = NewExpr(ScalarKind::kUnary, type);
  e->op = std::move(op);
  e->args.push_back(std::move(arg));
  return e;
}

ScalarExprPtr MakeBinary(std::string op, ScalarExprPtr lhs, ScalarExprPtr rhs,
                         DataType type) {
  auto e = NewExpr(ScalarKind::kBinary, type);
  e->op = std::move(op);
  e->args.push_back(std::move(lhs));
  e->args.push_back(std::move(rhs));
  return e;
}

ScalarExprPtr MakeComparison(std::string op, ScalarExprPtr lhs,
                             ScalarExprPtr rhs) {
  return MakeBinary(std::move(op), std::move(lhs), std::move(rhs),
                    DataType::kBool);
}

ScalarExprPtr MakeAnd(ScalarExprPtr lhs, ScalarExprPtr rhs) {
  if (lhs == nullptr) return rhs;
  if (rhs == nullptr) return lhs;
  return MakeBinary("AND", std::move(lhs), std::move(rhs), DataType::kBool);
}

ScalarExprPtr MakeOr(ScalarExprPtr lhs, ScalarExprPtr rhs) {
  if (lhs == nullptr || rhs == nullptr) return nullptr;
  return MakeBinary("OR", std::move(lhs), std::move(rhs), DataType::kBool);
}

void SplitConjuncts(const ScalarExprPtr& pred,
                    std::vector<ScalarExprPtr>* out) {
  if (pred == nullptr) return;
  if (pred->kind == ScalarKind::kBinary && pred->op == "AND") {
    SplitConjuncts(pred->args[0], out);
    SplitConjuncts(pred->args[1], out);
    return;
  }
  out->push_back(pred);
}

ScalarExprPtr MergeConjuncts(const std::vector<ScalarExprPtr>& conjuncts) {
  ScalarExprPtr out;
  for (const ScalarExprPtr& c : conjuncts) out = MakeAnd(out, c);
  return out;
}

bool LikeMatch(const std::string& text, const std::string& pattern) {
  // Iterative wildcard match: % = any run, _ = any single char.
  size_t t = 0, p = 0;
  size_t star_p = std::string::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

}  // namespace dhqp
