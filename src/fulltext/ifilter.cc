#include "src/fulltext/ifilter.h"

namespace dhqp {
namespace fulltext {

namespace {

class TxtFilter : public IFilter {
 public:
  const char* extension() const override { return "txt"; }
  Result<std::string> ExtractText(const std::string& raw) const override {
    return raw;
  }
};

// HTML: strip <tags> and decode nothing else.
class HtmlFilter : public IFilter {
 public:
  const char* extension() const override { return "html"; }
  Result<std::string> ExtractText(const std::string& raw) const override {
    std::string out;
    bool in_tag = false;
    for (char c : raw) {
      if (c == '<') {
        in_tag = true;
      } else if (c == '>') {
        in_tag = false;
        out += ' ';
      } else if (!in_tag) {
        out += c;
      }
    }
    return out;
  }
};

// Simulated binary container: "MAGIC|len|text" runs separated by \x01.
Result<std::string> ExtractRuns(const std::string& raw,
                                const std::string& magic) {
  if (raw.compare(0, magic.size(), magic) != 0) {
    return Status::InvalidArgument("corrupt container: bad magic");
  }
  std::string out;
  size_t i = magic.size();
  while (i < raw.size()) {
    if (raw[i] == '\x01') {
      ++i;
      size_t end = raw.find('\x01', i);
      if (end == std::string::npos) end = raw.size();
      out += raw.substr(i, end - i);
      out += ' ';
      i = end;
    } else {
      ++i;  // Skip "binary" filler.
    }
  }
  return out;
}

class DocFilter : public IFilter {
 public:
  const char* extension() const override { return "doc"; }
  Result<std::string> ExtractText(const std::string& raw) const override {
    return ExtractRuns(raw, "DOCBIN1");
  }
};

class PdfFilter : public IFilter {
 public:
  const char* extension() const override { return "pdf"; }
  Result<std::string> ExtractText(const std::string& raw) const override {
    return ExtractRuns(raw, "%PDF-1.4");
  }
};

std::string EncodeRuns(const std::string& text, const std::string& magic) {
  std::string out = magic;
  out += "\x02\x03\x04";  // Binary filler.
  out += '\x01';
  out += text;
  out += '\x01';
  out += "\x05\x06";
  return out;
}

}  // namespace

std::string EncodeHtml(const std::string& text) {
  return "<html><body><p>" + text + "</p></body></html>";
}

std::string EncodeDoc(const std::string& text) {
  return EncodeRuns(text, "DOCBIN1");
}

std::string EncodePdf(const std::string& text) {
  return EncodeRuns(text, "%PDF-1.4");
}

IFilterRegistry::IFilterRegistry() {
  Register(std::make_unique<TxtFilter>());
  Register(std::make_unique<HtmlFilter>());
  Register(std::make_unique<DocFilter>());
  Register(std::make_unique<PdfFilter>());
}

void IFilterRegistry::Register(std::unique_ptr<IFilter> filter) {
  filters_[filter->extension()] = std::move(filter);
}

const IFilter* IFilterRegistry::Find(const std::string& extension) const {
  auto it = filters_.find(extension);
  return it == filters_.end() ? nullptr : it->second.get();
}

Result<std::string> IFilterRegistry::Extract(const Document& doc) const {
  const IFilter* filter = Find(doc.extension);
  if (filter == nullptr) {
    return Status::NotSupported("no IFilter installed for ." + doc.extension);
  }
  return filter->ExtractText(doc.raw);
}

}  // namespace fulltext
}  // namespace dhqp
