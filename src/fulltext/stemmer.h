#ifndef DHQP_FULLTEXT_STEMMER_H_
#define DHQP_FULLTEXT_STEMMER_H_

#include <string>
#include <vector>

namespace dhqp {
namespace fulltext {

/// Reduces an English word to a crude stem (suffix stripping in the spirit
/// of Porter's algorithm, much simplified). This powers the paper's
/// inflectional matching: "'runner', 'run', and 'ran' can all be equivalent
/// in full-text searches" (§2.3) — irregular forms are handled by a small
/// exception table.
std::string Stem(const std::string& word);

/// Lower-cases and splits text into word tokens (letters/digits runs).
std::vector<std::string> TokenizeText(const std::string& text);

}  // namespace fulltext
}  // namespace dhqp

#endif  // DHQP_FULLTEXT_STEMMER_H_
