#ifndef DHQP_FULLTEXT_IFILTER_H_
#define DHQP_FULLTEXT_IFILTER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace dhqp {
namespace fulltext {

/// A stored "file" in the simulated file system: path, format extension,
/// and raw content in that format. Stands in for the NTFS documents the
/// paper's Index Server crawls (§2.2).
struct Document {
  std::string path;
  std::string extension;  ///< "txt", "doc", "html", "pdf", ...
  std::string raw;        ///< Format-specific encoding of the text.
  int64_t size = 0;
  int64_t create_days = 0;  ///< Creation date (days since epoch).
};

/// The IFilter interface (§2.2): "an interface for retrieving text and
/// properties out of documents ... the foundation for building higher-level
/// applications such as document indexers". One filter per document format.
class IFilter {
 public:
  virtual ~IFilter() = default;
  virtual const char* extension() const = 0;
  /// Extracts the plain text from `raw` content of this format.
  virtual Result<std::string> ExtractText(const std::string& raw) const = 0;
};

/// Registry dispatching documents to the IFilter for their format. Ships
/// with filters for txt (identity), html (tag stripping), doc and pdf
/// (simulated binary containers with embedded text runs).
class IFilterRegistry {
 public:
  IFilterRegistry();  ///< Registers the built-in filters.

  void Register(std::unique_ptr<IFilter> filter);
  const IFilter* Find(const std::string& extension) const;

  /// Extracts text from a document; NotSupported if no filter handles its
  /// format (such documents are skipped by indexers, as in the paper:
  /// "one needs to install necessary IFilters").
  Result<std::string> Extract(const Document& doc) const;

 private:
  std::map<std::string, std::unique_ptr<IFilter>> filters_;
};

/// @name Format encoders used by the synthetic corpus generator: they wrap
/// plain text into the corresponding fake format so the filters have real
/// work to do.
///@{
std::string EncodeHtml(const std::string& text);
std::string EncodeDoc(const std::string& text);
std::string EncodePdf(const std::string& text);
///@}

}  // namespace fulltext
}  // namespace dhqp

#endif  // DHQP_FULLTEXT_IFILTER_H_
