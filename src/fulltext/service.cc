#include "src/fulltext/service.h"

#include "src/common/schema.h"

namespace dhqp {
namespace fulltext {

Status FullTextService::CreateCatalog(const std::string& catalog_name,
                                      const std::string& table,
                                      const std::string& key_column,
                                      const std::string& text_column) {
  std::string key = ToLowerCopy(catalog_name);
  if (catalogs_.count(key) > 0) {
    return Status::AlreadyExists("full-text catalog '" + catalog_name +
                                 "' already exists");
  }
  auto entry = std::make_unique<CatalogEntry>();
  entry->name = catalog_name;
  entry->table = table;
  entry->key_column = key_column;
  entry->text_column = text_column;
  catalogs_[key] = std::move(entry);
  table_to_catalog_[ToLowerCopy(table)] = key;
  return Status::OK();
}

Status FullTextService::IndexEntry(const std::string& catalog_name,
                                   const Value& key, const std::string& text) {
  auto it = catalogs_.find(ToLowerCopy(catalog_name));
  if (it == catalogs_.end()) {
    return Status::NotFound("full-text catalog '" + catalog_name +
                            "' not found");
  }
  CatalogEntry& cat = *it->second;
  int64_t doc_id = static_cast<int64_t>(cat.keys.size());
  cat.keys.push_back(key);
  cat.index.AddDocument(doc_id, text);
  return Status::OK();
}

Status FullTextService::IndexDocuments(const std::string& catalog_name,
                                       const std::vector<Document>& docs,
                                       int* skipped) {
  if (skipped != nullptr) *skipped = 0;
  for (const Document& doc : docs) {
    Result<std::string> text = filters_.Extract(doc);
    if (!text.ok()) {
      if (skipped != nullptr) ++*skipped;
      continue;  // No IFilter installed for this format.
    }
    DHQP_RETURN_NOT_OK(
        IndexEntry(catalog_name, Value::String(doc.path), *text));
  }
  return Status::OK();
}

Result<const FullTextService::CatalogEntry*> FullTextService::FindByTable(
    const std::string& table) const {
  auto it = table_to_catalog_.find(ToLowerCopy(table));
  if (it == table_to_catalog_.end()) {
    return Status::NotFound("no full-text catalog for table '" + table + "'");
  }
  return catalogs_.at(it->second).get();
}

bool FullTextService::HasCatalogForTable(const std::string& table) const {
  return table_to_catalog_.count(ToLowerCopy(table)) > 0;
}

Result<std::vector<std::pair<Value, double>>> FullTextService::Query(
    const std::string& table, const std::string& query) const {
  DHQP_ASSIGN_OR_RETURN(const CatalogEntry* cat, FindByTable(table));
  DHQP_ASSIGN_OR_RETURN(auto parsed, ParseContainsQuery(query));
  std::vector<std::pair<Value, double>> out;
  for (const FtMatch& m : cat->index.Query(*parsed)) {
    out.emplace_back(cat->keys[static_cast<size_t>(m.doc_id)], m.rank);
  }
  return out;
}

Result<std::vector<std::pair<Value, double>>> FullTextService::QueryCatalog(
    const std::string& catalog_name, const std::string& query) const {
  auto it = catalogs_.find(ToLowerCopy(catalog_name));
  if (it == catalogs_.end()) {
    return Status::NotFound("full-text catalog '" + catalog_name +
                            "' not found");
  }
  DHQP_ASSIGN_OR_RETURN(auto parsed, ParseContainsQuery(query));
  std::vector<std::pair<Value, double>> out;
  for (const FtMatch& m : it->second->index.Query(*parsed)) {
    out.emplace_back(it->second->keys[static_cast<size_t>(m.doc_id)], m.rank);
  }
  return out;
}

}  // namespace fulltext
}  // namespace dhqp
