#ifndef DHQP_FULLTEXT_INVERTED_INDEX_H_
#define DHQP_FULLTEXT_INVERTED_INDEX_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/fulltext/contains_query.h"

namespace dhqp {
namespace fulltext {

/// A scored full-text match.
struct FtMatch {
  int64_t doc_id;
  double rank;
};

/// Positional inverted index over stemmed terms — the "index engine" half of
/// the search service (Fig 2). Supports term, phrase, proximity and boolean
/// evaluation with tf-idf ranking.
class InvertedIndex {
 public:
  /// Indexes a document's text under `doc_id` (ids must be unique).
  void AddDocument(int64_t doc_id, const std::string& text);

  size_t num_documents() const { return doc_lengths_.size(); }
  size_t num_terms() const { return postings_.size(); }

  /// Evaluates a parsed CONTAINS query; returns matches sorted by
  /// descending rank.
  std::vector<FtMatch> Query(const ContainsNode& query) const;

 private:
  /// doc -> positions of a term in that doc.
  using Postings = std::map<int64_t, std::vector<int>>;

  /// Evaluates to (doc -> score); NOT is handled by the caller via
  /// AND NOT / NOT semantics against the full document set.
  std::map<int64_t, double> Eval(const ContainsNode& q) const;

  double Idf(const Postings& postings) const;

  std::map<std::string, Postings> postings_;
  std::map<int64_t, int> doc_lengths_;
};

}  // namespace fulltext
}  // namespace dhqp

#endif  // DHQP_FULLTEXT_INVERTED_INDEX_H_
