#include "src/fulltext/contains_query.h"

#include <cctype>
#include <cstdlib>

#include "src/fulltext/stemmer.h"

namespace dhqp {
namespace fulltext {

namespace {

struct QueryToken {
  enum class Kind { kWord, kPhrase, kAnd, kOr, kNot, kNear, kLParen, kRParen,
                    kComma, kEnd };
  Kind kind;
  std::string text;
};

Result<std::vector<QueryToken>> TokenizeQuery(const std::string& query) {
  std::vector<QueryToken> tokens;
  size_t i = 0;
  while (i < query.size()) {
    char c = query[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '"') {
      size_t end = query.find('"', i + 1);
      if (end == std::string::npos) {
        return Status::InvalidArgument("unterminated phrase in CONTAINS");
      }
      tokens.push_back(
          {QueryToken::Kind::kPhrase, query.substr(i + 1, end - i - 1)});
      i = end + 1;
      continue;
    }
    if (c == '(') {
      tokens.push_back({QueryToken::Kind::kLParen, "("});
      ++i;
      continue;
    }
    if (c == ')') {
      tokens.push_back({QueryToken::Kind::kRParen, ")"});
      ++i;
      continue;
    }
    if (c == ',') {
      tokens.push_back({QueryToken::Kind::kComma, ","});
      ++i;
      continue;
    }
    if (std::isalnum(static_cast<unsigned char>(c))) {
      size_t start = i;
      while (i < query.size() &&
             std::isalnum(static_cast<unsigned char>(query[i]))) {
        ++i;
      }
      std::string word = query.substr(start, i - start);
      std::string upper = word;
      for (char& ch : upper) {
        ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
      }
      if (upper == "AND") {
        tokens.push_back({QueryToken::Kind::kAnd, upper});
      } else if (upper == "OR") {
        tokens.push_back({QueryToken::Kind::kOr, upper});
      } else if (upper == "NOT") {
        tokens.push_back({QueryToken::Kind::kNot, upper});
      } else if (upper == "NEAR") {
        tokens.push_back({QueryToken::Kind::kNear, upper});
      } else {
        tokens.push_back({QueryToken::Kind::kWord, word});
      }
      continue;
    }
    return Status::InvalidArgument(std::string("bad character '") + c +
                                   "' in CONTAINS query");
  }
  tokens.push_back({QueryToken::Kind::kEnd, ""});
  return tokens;
}

class QueryParser {
 public:
  explicit QueryParser(std::vector<QueryToken> tokens)
      : tokens_(std::move(tokens)) {}

  Result<std::unique_ptr<ContainsNode>> Parse() {
    DHQP_ASSIGN_OR_RETURN(auto node, ParseOr());
    if (Peek().kind != QueryToken::Kind::kEnd) {
      return Status::InvalidArgument("trailing tokens in CONTAINS query");
    }
    return std::move(node);
  }

 private:
  const QueryToken& Peek() const { return tokens_[pos_]; }
  const QueryToken& Advance() { return tokens_[pos_++]; }
  bool Match(QueryToken::Kind kind) {
    if (Peek().kind == kind) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<std::unique_ptr<ContainsNode>> ParseOr() {
    DHQP_ASSIGN_OR_RETURN(auto lhs, ParseAnd());
    while (Match(QueryToken::Kind::kOr)) {
      DHQP_ASSIGN_OR_RETURN(auto rhs, ParseAnd());
      auto node = std::make_unique<ContainsNode>();
      node->kind = ContainsNode::Kind::kOr;
      node->left = std::move(lhs);
      node->right = std::move(rhs);
      lhs = std::move(node);
    }
    return std::move(lhs);
  }

  Result<std::unique_ptr<ContainsNode>> ParseAnd() {
    DHQP_ASSIGN_OR_RETURN(auto lhs, ParseNear());
    while (true) {
      bool is_not = false;
      if (Peek().kind == QueryToken::Kind::kAnd) {
        Advance();
        is_not = Match(QueryToken::Kind::kNot);
      } else if (Peek().kind == QueryToken::Kind::kWord ||
                 Peek().kind == QueryToken::Kind::kPhrase ||
                 Peek().kind == QueryToken::Kind::kLParen) {
        // Implicit AND between adjacent items.
      } else {
        break;
      }
      DHQP_ASSIGN_OR_RETURN(auto rhs, ParseNear());
      auto node = std::make_unique<ContainsNode>();
      node->kind = ContainsNode::Kind::kAnd;
      node->left = std::move(lhs);
      if (is_not) {
        auto neg = std::make_unique<ContainsNode>();
        neg->kind = ContainsNode::Kind::kNot;
        neg->left = std::move(rhs);
        node->right = std::move(neg);
      } else {
        node->right = std::move(rhs);
      }
      lhs = std::move(node);
    }
    return std::move(lhs);
  }

  Result<std::unique_ptr<ContainsNode>> ParseNear() {
    DHQP_ASSIGN_OR_RETURN(auto lhs, ParsePrimary());
    while (Match(QueryToken::Kind::kNear)) {
      DHQP_ASSIGN_OR_RETURN(auto rhs, ParsePrimary());
      auto node = std::make_unique<ContainsNode>();
      node->kind = ContainsNode::Kind::kNear;
      node->left = std::move(lhs);
      node->right = std::move(rhs);
      lhs = std::move(node);
    }
    return std::move(lhs);
  }

  Result<std::unique_ptr<ContainsNode>> ParsePrimary() {
    if (Match(QueryToken::Kind::kLParen)) {
      DHQP_ASSIGN_OR_RETURN(auto inner, ParseOr());
      if (!Match(QueryToken::Kind::kRParen)) {
        return Status::InvalidArgument("missing ')' in CONTAINS query");
      }
      return std::move(inner);
    }
    if (Peek().kind == QueryToken::Kind::kPhrase) {
      auto node = std::make_unique<ContainsNode>();
      std::vector<std::string> words = TokenizeText(Advance().text);
      if (words.size() == 1) {
        node->kind = ContainsNode::Kind::kTerm;
        node->term = Stem(words[0]);
        return std::move(node);
      }
      node->kind = ContainsNode::Kind::kPhrase;
      for (const std::string& w : words) node->phrase.push_back(Stem(w));
      return std::move(node);
    }
    if (Peek().kind == QueryToken::Kind::kWord) {
      std::string word = Advance().text;
      // FORMSOF(INFLECTIONAL, word): matching is stem-based anyway, so this
      // resolves to a plain (stemmed) term.
      std::string upper = word;
      for (char& c : upper) {
        c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
      }
      if (upper == "FORMSOF" && Peek().kind == QueryToken::Kind::kLParen) {
        Advance();                            // (
        if (Peek().kind == QueryToken::Kind::kWord) Advance();  // INFLECTIONAL
        Match(QueryToken::Kind::kComma);
        if (Peek().kind != QueryToken::Kind::kWord) {
          return Status::InvalidArgument("FORMSOF requires a word");
        }
        word = Advance().text;
        if (!Match(QueryToken::Kind::kRParen)) {
          return Status::InvalidArgument("missing ')' after FORMSOF");
        }
      }
      auto node = std::make_unique<ContainsNode>();
      node->kind = ContainsNode::Kind::kTerm;
      node->term = Stem(word);
      return std::move(node);
    }
    return Status::InvalidArgument("expected term in CONTAINS query");
  }

  std::vector<QueryToken> tokens_;
  size_t pos_ = 0;
};

// Positions of `stem` in a tokenized+stemmed document.
std::vector<int> StemPositions(const std::vector<std::string>& stems,
                               const std::string& stem) {
  std::vector<int> out;
  for (size_t i = 0; i < stems.size(); ++i) {
    if (stems[i] == stem) out.push_back(static_cast<int>(i));
  }
  return out;
}

bool MatchesStems(const std::vector<std::string>& stems,
                  const ContainsNode& q) {
  switch (q.kind) {
    case ContainsNode::Kind::kTerm:
      return !StemPositions(stems, q.term).empty();
    case ContainsNode::Kind::kPhrase: {
      if (q.phrase.empty()) return false;
      std::vector<int> starts = StemPositions(stems, q.phrase[0]);
      for (int s : starts) {
        bool all = true;
        for (size_t k = 1; k < q.phrase.size(); ++k) {
          size_t pos = static_cast<size_t>(s) + k;
          if (pos >= stems.size() || stems[pos] != q.phrase[k]) {
            all = false;
            break;
          }
        }
        if (all) return true;
      }
      return false;
    }
    case ContainsNode::Kind::kAnd:
      return MatchesStems(stems, *q.left) && MatchesStems(stems, *q.right);
    case ContainsNode::Kind::kOr:
      return MatchesStems(stems, *q.left) || MatchesStems(stems, *q.right);
    case ContainsNode::Kind::kNot:
      return !MatchesStems(stems, *q.left);
    case ContainsNode::Kind::kNear: {
      // Both sides must be terms within a 10-token window.
      if (q.left->kind != ContainsNode::Kind::kTerm ||
          q.right->kind != ContainsNode::Kind::kTerm) {
        return MatchesStems(stems, *q.left) && MatchesStems(stems, *q.right);
      }
      std::vector<int> a = StemPositions(stems, q.left->term);
      std::vector<int> b = StemPositions(stems, q.right->term);
      for (int pa : a) {
        for (int pb : b) {
          if (std::abs(pa - pb) <= 10) return true;
        }
      }
      return false;
    }
  }
  return false;
}

}  // namespace

std::string ContainsNode::ToString() const {
  switch (kind) {
    case Kind::kTerm:
      return term;
    case Kind::kPhrase: {
      std::string out = "\"";
      for (size_t i = 0; i < phrase.size(); ++i) {
        if (i) out += " ";
        out += phrase[i];
      }
      return out + "\"";
    }
    case Kind::kAnd:
      return "(" + left->ToString() + " AND " + right->ToString() + ")";
    case Kind::kOr:
      return "(" + left->ToString() + " OR " + right->ToString() + ")";
    case Kind::kNot:
      return "NOT " + left->ToString();
    case Kind::kNear:
      return "(" + left->ToString() + " NEAR " + right->ToString() + ")";
  }
  return "?";
}

Result<std::unique_ptr<ContainsNode>> ParseContainsQuery(
    const std::string& query) {
  DHQP_ASSIGN_OR_RETURN(auto tokens, TokenizeQuery(query));
  QueryParser parser(std::move(tokens));
  return parser.Parse();
}

bool MatchesText(const std::string& text, const ContainsNode& query) {
  std::vector<std::string> tokens = TokenizeText(text);
  std::vector<std::string> stems;
  stems.reserve(tokens.size());
  for (const std::string& t : tokens) stems.push_back(Stem(t));
  return MatchesStems(stems, query);
}

bool MatchesTextQuery(const std::string& text, const std::string& query) {
  auto parsed = ParseContainsQuery(query);
  if (!parsed.ok()) return false;
  return MatchesText(text, **parsed);
}

}  // namespace fulltext
}  // namespace dhqp
