#ifndef DHQP_FULLTEXT_CONTAINS_QUERY_H_
#define DHQP_FULLTEXT_CONTAINS_QUERY_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace dhqp {
namespace fulltext {

/// Parsed CONTAINS query tree. The supported language covers the paper's
/// §2.3 examples: words, "phrases", AND / OR / AND NOT combinations, NEAR
/// proximity, and FORMSOF(INFLECTIONAL, word) — plain terms also match
/// inflectional forms via stemming.
struct ContainsNode {
  enum class Kind { kTerm, kPhrase, kAnd, kOr, kNot, kNear };
  Kind kind;
  std::string term;                     ///< kTerm (already stemmed).
  std::vector<std::string> phrase;      ///< kPhrase (stemmed words).
  std::unique_ptr<ContainsNode> left;   ///< kAnd/kOr/kNot/kNear.
  std::unique_ptr<ContainsNode> right;

  std::string ToString() const;
};

/// Parses the text of a CONTAINS(...) search condition.
Result<std::unique_ptr<ContainsNode>> ParseContainsQuery(
    const std::string& query);

/// Evaluates a query directly against a single document's text — the
/// executor's fallback when no full-text index is available (naive scan).
bool MatchesText(const std::string& text, const ContainsNode& query);

/// Convenience: parse + match; returns false on parse error.
bool MatchesTextQuery(const std::string& text, const std::string& query);

}  // namespace fulltext
}  // namespace dhqp

#endif  // DHQP_FULLTEXT_CONTAINS_QUERY_H_
