#ifndef DHQP_FULLTEXT_SERVICE_H_
#define DHQP_FULLTEXT_SERVICE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/value.h"
#include "src/fulltext/ifilter.h"
#include "src/fulltext/inverted_index.h"

namespace dhqp {
namespace fulltext {

/// The Microsoft-Search-Service stand-in (Fig 2): maintains full-text
/// catalogs — each an inverted index over either the text column of a
/// relational table (§2.3) or a document directory crawled through IFilters
/// (§2.2) — and answers CONTAINS queries with (key, rank) results that the
/// relational engine consumes as rowsets.
class FullTextService {
 public:
  /// Creates an empty catalog. `table` names the owning object (a table
  /// name, or a virtual name like "SCOPE()" for file-system catalogs).
  Status CreateCatalog(const std::string& catalog_name,
                       const std::string& table,
                       const std::string& key_column,
                       const std::string& text_column);

  /// Adds one entry (row or document) to a catalog.
  Status IndexEntry(const std::string& catalog_name, const Value& key,
                    const std::string& text);

  /// Crawls a document collection through the IFilter registry into a
  /// catalog keyed by document path; documents with no installed IFilter
  /// are skipped and counted in `skipped`.
  Status IndexDocuments(const std::string& catalog_name,
                        const std::vector<Document>& docs, int* skipped);

  /// Answers a CONTAINS query against the catalog covering `table`;
  /// results are (key, rank), rank-descending — the rowset of Fig 2.
  Result<std::vector<std::pair<Value, double>>> Query(
      const std::string& table, const std::string& query) const;

  /// Same, addressed by catalog name (the OpenRowset('MSIDXS', ...) path of
  /// §2.2).
  Result<std::vector<std::pair<Value, double>>> QueryCatalog(
      const std::string& catalog_name, const std::string& query) const;

  bool HasCatalogForTable(const std::string& table) const;

  const IFilterRegistry& filters() const { return filters_; }

 private:
  struct CatalogEntry {
    std::string name;
    std::string table;
    std::string key_column;
    std::string text_column;
    InvertedIndex index;
    std::vector<Value> keys;  ///< doc id -> key value.
  };

  Result<const CatalogEntry*> FindByTable(const std::string& table) const;

  std::map<std::string, std::unique_ptr<CatalogEntry>> catalogs_;
  std::map<std::string, std::string> table_to_catalog_;  ///< Lower-cased.
  IFilterRegistry filters_;
};

}  // namespace fulltext
}  // namespace dhqp

#endif  // DHQP_FULLTEXT_SERVICE_H_
