#include "src/fulltext/stemmer.h"

#include <cctype>
#include <unordered_map>

namespace dhqp {
namespace fulltext {

namespace {

// Irregular inflections mapped to their stems.
const std::unordered_map<std::string, std::string>& Irregulars() {
  static const auto* kMap = new std::unordered_map<std::string, std::string>{
      {"ran", "run"},       {"went", "go"},     {"gone", "go"},
      {"made", "make"},     {"wrote", "write"}, {"written", "write"},
      {"sent", "send"},     {"bought", "buy"},  {"sold", "sell"},
      {"found", "find"},    {"better", "good"}, {"best", "good"},
      {"children", "child"}, {"men", "man"},    {"women", "woman"},
      {"mice", "mouse"},    {"feet", "foot"},   {"databases", "database"},
  };
  return *kMap;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

std::string Stem(const std::string& word) {
  std::string w;
  w.reserve(word.size());
  for (char c : word) {
    w += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  auto it = Irregulars().find(w);
  if (it != Irregulars().end()) return it->second;
  if (w.size() <= 3) return w;

  // Order matters: longest suffixes first.
  if (EndsWith(w, "iveness") || EndsWith(w, "fulness")) {
    return w.substr(0, w.size() - 4);
  }
  if (EndsWith(w, "ational")) return w.substr(0, w.size() - 5) + "e";
  if (EndsWith(w, "ization")) return w.substr(0, w.size() - 5) + "e";
  if (EndsWith(w, "ingly") && w.size() > 6) return w.substr(0, w.size() - 5);
  if (EndsWith(w, "edly") && w.size() > 5) return w.substr(0, w.size() - 4);
  if (EndsWith(w, "ies")) return w.substr(0, w.size() - 3) + "y";
  if (EndsWith(w, "sses")) return w.substr(0, w.size() - 2);
  if (EndsWith(w, "ing") && w.size() > 5) {
    std::string stem = w.substr(0, w.size() - 3);
    // Doubled consonant: "running" -> "run".
    if (stem.size() >= 2 && stem[stem.size() - 1] == stem[stem.size() - 2]) {
      stem.pop_back();
    }
    return stem;
  }
  if (EndsWith(w, "ed") && w.size() > 4) {
    std::string stem = w.substr(0, w.size() - 2);
    if (stem.size() >= 2 && stem[stem.size() - 1] == stem[stem.size() - 2]) {
      stem.pop_back();
    }
    return stem;
  }
  if (EndsWith(w, "er") && w.size() > 4) {
    std::string stem = w.substr(0, w.size() - 2);
    // "runner" -> "run".
    if (stem.size() >= 2 && stem[stem.size() - 1] == stem[stem.size() - 2]) {
      stem.pop_back();
    }
    return stem;
  }
  if (EndsWith(w, "ly") && w.size() > 4) return w.substr(0, w.size() - 2);
  if (EndsWith(w, "s") && !EndsWith(w, "ss") && !EndsWith(w, "us")) {
    return w.substr(0, w.size() - 1);
  }
  return w;
}

std::vector<std::string> TokenizeText(const std::string& text) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      current += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

}  // namespace fulltext
}  // namespace dhqp
