#include "src/fulltext/inverted_index.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "src/fulltext/stemmer.h"

namespace dhqp {
namespace fulltext {

void InvertedIndex::AddDocument(int64_t doc_id, const std::string& text) {
  std::vector<std::string> tokens = TokenizeText(text);
  int pos = 0;
  for (const std::string& token : tokens) {
    postings_[Stem(token)][doc_id].push_back(pos++);
  }
  doc_lengths_[doc_id] = pos;
}

double InvertedIndex::Idf(const Postings& postings) const {
  double n = static_cast<double>(doc_lengths_.size());
  double df = static_cast<double>(postings.size());
  return std::log(1.0 + n / std::max(df, 1.0));
}

std::map<int64_t, double> InvertedIndex::Eval(const ContainsNode& q) const {
  std::map<int64_t, double> out;
  switch (q.kind) {
    case ContainsNode::Kind::kTerm: {
      auto it = postings_.find(q.term);
      if (it == postings_.end()) return out;
      double idf = Idf(it->second);
      for (const auto& [doc, positions] : it->second) {
        double tf = static_cast<double>(positions.size());
        double len = std::max(1.0, static_cast<double>(doc_lengths_.at(doc)));
        out[doc] = idf * tf / std::sqrt(len);
      }
      return out;
    }
    case ContainsNode::Kind::kPhrase: {
      if (q.phrase.empty()) return out;
      auto first = postings_.find(q.phrase[0]);
      if (first == postings_.end()) return out;
      for (const auto& [doc, starts] : first->second) {
        int hits = 0;
        for (int s : starts) {
          bool all = true;
          for (size_t k = 1; k < q.phrase.size(); ++k) {
            auto pk = postings_.find(q.phrase[k]);
            if (pk == postings_.end()) {
              all = false;
              break;
            }
            auto dk = pk->second.find(doc);
            if (dk == pk->second.end() ||
                !std::binary_search(dk->second.begin(), dk->second.end(),
                                    s + static_cast<int>(k))) {
              all = false;
              break;
            }
          }
          if (all) ++hits;
        }
        if (hits > 0) {
          double len = std::max(1.0, static_cast<double>(doc_lengths_.at(doc)));
          out[doc] = 2.0 * Idf(first->second) * hits / std::sqrt(len);
        }
      }
      return out;
    }
    case ContainsNode::Kind::kAnd: {
      // AND NOT: subtract the right side's matches.
      if (q.right->kind == ContainsNode::Kind::kNot) {
        std::map<int64_t, double> left = Eval(*q.left);
        std::map<int64_t, double> neg = Eval(*q.right->left);
        for (const auto& [doc, score] : left) {
          if (neg.count(doc) == 0) out[doc] = score;
        }
        return out;
      }
      std::map<int64_t, double> left = Eval(*q.left);
      std::map<int64_t, double> right = Eval(*q.right);
      for (const auto& [doc, score] : left) {
        auto it = right.find(doc);
        if (it != right.end()) out[doc] = score + it->second;
      }
      return out;
    }
    case ContainsNode::Kind::kOr: {
      out = Eval(*q.left);
      for (const auto& [doc, score] : Eval(*q.right)) {
        out[doc] += score;
      }
      return out;
    }
    case ContainsNode::Kind::kNot: {
      // Bare NOT: all documents minus matches (rank 1.0 — no tf signal).
      std::map<int64_t, double> matches = Eval(*q.left);
      for (const auto& [doc, len] : doc_lengths_) {
        if (matches.count(doc) == 0) out[doc] = 1.0;
      }
      return out;
    }
    case ContainsNode::Kind::kNear: {
      if (q.left->kind != ContainsNode::Kind::kTerm ||
          q.right->kind != ContainsNode::Kind::kTerm) {
        // Fall back to AND semantics for non-term operands.
        std::map<int64_t, double> left = Eval(*q.left);
        std::map<int64_t, double> right = Eval(*q.right);
        for (const auto& [doc, score] : left) {
          auto it = right.find(doc);
          if (it != right.end()) out[doc] = score + it->second;
        }
        return out;
      }
      auto pa = postings_.find(q.left->term);
      auto pb = postings_.find(q.right->term);
      if (pa == postings_.end() || pb == postings_.end()) return out;
      for (const auto& [doc, a_positions] : pa->second) {
        auto it = pb->second.find(doc);
        if (it == pb->second.end()) continue;
        int best = 1 << 30;
        for (int a : a_positions) {
          for (int b : it->second) {
            best = std::min(best, std::abs(a - b));
          }
        }
        if (best <= 10) {
          out[doc] = (Idf(pa->second) + Idf(pb->second)) /
                     (1.0 + static_cast<double>(best));
        }
      }
      return out;
    }
  }
  return out;
}

std::vector<FtMatch> InvertedIndex::Query(const ContainsNode& query) const {
  std::map<int64_t, double> scores = Eval(query);
  std::vector<FtMatch> out;
  out.reserve(scores.size());
  for (const auto& [doc, score] : scores) {
    out.push_back(FtMatch{doc, score});
  }
  std::sort(out.begin(), out.end(), [](const FtMatch& a, const FtMatch& b) {
    if (a.rank != b.rank) return a.rank > b.rank;
    return a.doc_id < b.doc_id;
  });
  return out;
}

}  // namespace fulltext
}  // namespace dhqp
