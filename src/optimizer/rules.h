#ifndef DHQP_OPTIMIZER_RULES_H_
#define DHQP_OPTIMIZER_RULES_H_

#include <memory>
#include <vector>

#include "src/optimizer/memo.h"

namespace dhqp {

/// Optimization phases (§4.1.1): "transaction processing, quick plan and
/// full optimization. ... Early phases have a restricted set of rules
/// enabled to attempt to find a good plan quickly."
enum class OptPhase { kTransactionProcessing = 0, kQuickPlan = 1, kFull = 2 };

const char* OptPhaseName(OptPhase phase);

/// An exploration rule: matches a logical pattern and inserts equivalent
/// logical alternatives into the memo (§4.1.1). Implementation rules are
/// realized in the optimizer's implementation step; enforcers (sort, spool)
/// in its property machinery.
class Rule {
 public:
  virtual ~Rule() = default;

  virtual const char* name() const = 0;

  /// The Promise mechanism: rules are applied in descending promise order;
  /// cheap, high-value rewrites come first.
  virtual int promise() const { return 1; }

  /// Earliest phase in which this rule runs.
  virtual OptPhase min_phase() const { return OptPhase::kTransactionProcessing; }

  /// The Guidance mechanism: a cheap payload test that avoids running rules
  /// that can never match this operator.
  virtual bool Matches(const LogicalOp& op) const = 0;

  /// Applies the rule to `expr` (payload + child groups) living in group
  /// `gid`; inserts alternatives into the memo. Returns the number of new
  /// expressions created.
  virtual int Apply(Memo* memo, int gid, const GroupExpr& expr,
                    OptimizerContext* ctx) const = 0;
};

/// All exploration rules in promise order.
const std::vector<std::unique_ptr<Rule>>& ExplorationRules();

}  // namespace dhqp

#endif  // DHQP_OPTIMIZER_RULES_H_
