#include "src/optimizer/decoder.h"

#include "src/common/date.h"

namespace dhqp {

namespace {

bool LevelAtLeast(const ProviderCapabilities& caps, SqlSupportLevel level) {
  return caps.SupportsSqlLevel(level);
}

}  // namespace

std::string Decoder::QuoteIdentifier(const std::string& name,
                                     const ProviderCapabilities& caps) const {
  std::string out;
  out += caps.identifier_quote_open;
  out += name;
  out += caps.identifier_quote_close;
  return out;
}

Result<std::string> Decoder::RenderLiteral(
    const Value& v, const ProviderCapabilities& caps) const {
  if (v.is_null()) return std::string("NULL");
  switch (v.type()) {
    case DataType::kBool:
      return std::string(v.bool_value() ? "(1=1)" : "(1=0)");
    case DataType::kInt64:
    case DataType::kDouble:
      return v.ToString();
    case DataType::kString: {
      std::string out = "'";
      for (char c : v.string_value()) {
        out += c;
        if (c == '\'') out += '\'';  // Double the quote.
      }
      out += "'";
      return out;
    }
    case DataType::kDate: {
      std::string iso = DaysToIsoDate(v.date_value());
      switch (caps.date_literal_style) {
        case DateLiteralStyle::kIsoQuoted:
          return "'" + iso + "'";
        case DateLiteralStyle::kDateKeyword:
          return "DATE '" + iso + "'";
        case DateLiteralStyle::kHashDelimited:
          return "#" + iso + "#";
      }
      return "'" + iso + "'";
    }
    default:
      return Status::NotSupported("cannot render literal of type " +
                                  std::string(DataTypeName(v.type())));
  }
}

bool Decoder::ExprRemotable(const ScalarExprPtr& expr,
                            const ProviderCapabilities& caps) const {
  switch (expr->kind) {
    case ScalarKind::kColumn:
    case ScalarKind::kLiteral:
      break;
    case ScalarKind::kParam:
      if (!caps.supports_parameters) return false;
      break;
    case ScalarKind::kBinary: {
      const std::string& op = expr->op;
      bool comparison = op == "=" || op == "<>" || op == "<" || op == "<=" ||
                        op == ">" || op == ">=";
      if (op == "OR" && !LevelAtLeast(caps, SqlSupportLevel::kOdbcCore)) {
        return false;
      }
      bool arithmetic = op == "+" || op == "-" || op == "*" || op == "/" ||
                        op == "%";
      if (arithmetic && !LevelAtLeast(caps, SqlSupportLevel::kOdbcCore)) {
        return false;
      }
      if (!comparison && !arithmetic && op != "AND" && op != "OR") {
        return false;
      }
      break;
    }
    case ScalarKind::kUnary:
      if (expr->op == "NOT" &&
          !LevelAtLeast(caps, SqlSupportLevel::kOdbcCore)) {
        return false;
      }
      break;
    case ScalarKind::kInList:
    case ScalarKind::kLike:
      if (!LevelAtLeast(caps, SqlSupportLevel::kOdbcCore)) return false;
      break;
    case ScalarKind::kIsNull:
      break;
    case ScalarKind::kFunc:
      // CONTAINS is SQL Server-specific full-text syntax; never remoted to
      // generic SQL providers.
      if (expr->op == "CONTAINS") return false;
      if (!LevelAtLeast(caps, SqlSupportLevel::kSql92Entry)) return false;
      break;
    case ScalarKind::kCast:
    case ScalarKind::kCase:
      if (!LevelAtLeast(caps, SqlSupportLevel::kSql92Full)) return false;
      break;
  }
  for (const ScalarExprPtr& arg : expr->args) {
    if (!ExprRemotable(arg, caps)) return false;
  }
  return true;
}

bool Decoder::IsRemotable(const LogicalOpPtr& tree,
                          const ProviderCapabilities& caps) const {
  if (!caps.supports_command ||
      !LevelAtLeast(caps, SqlSupportLevel::kMinimum)) {
    return false;
  }
  switch (tree->kind) {
    case LogicalOpKind::kGet:
      return tree->table.source_id != kLocalSource;
    case LogicalOpKind::kFilter:
      if (tree->predicate && !ExprRemotable(tree->predicate, caps)) {
        return false;
      }
      // A column-free (startup) guard exists precisely to skip dispatching
      // the remote work; shipping it inside the remote statement would
      // defeat runtime pruning (§4.1.5).
      if (tree->predicate && tree->predicate->IsColumnFree()) return false;
      // Filter above an aggregate needs HAVING (SQL-92 Entry).
      return IsRemotable(tree->children[0], caps);
    case LogicalOpKind::kProject:
      for (const ScalarExprPtr& e : tree->exprs) {
        if (!ExprRemotable(e, caps)) return false;
      }
      return IsRemotable(tree->children[0], caps);
    case LogicalOpKind::kJoin:
      if (tree->join_type != JoinType::kInner &&
          tree->join_type != JoinType::kCross) {
        // Semi/anti joins have "no direct SQL corollary" (§4.1.4); outer
        // joins are not decoded by this implementation.
        return false;
      }
      if (!LevelAtLeast(caps, SqlSupportLevel::kOdbcCore)) return false;
      if (tree->predicate && !ExprRemotable(tree->predicate, caps)) {
        return false;
      }
      return IsRemotable(tree->children[0], caps) &&
             IsRemotable(tree->children[1], caps);
    case LogicalOpKind::kAggregate:
      if (!LevelAtLeast(caps, SqlSupportLevel::kSql92Entry)) return false;
      if (!tree->aggregates.empty()) {
        for (const AggregateItem& a : tree->aggregates) {
          if (a.arg && !ExprRemotable(a.arg, caps)) return false;
        }
      }
      return IsRemotable(tree->children[0], caps);
    default:
      return false;
  }
}

Result<std::string> Decoder::DecodeExpr(
    const ScalarExprPtr& expr, const std::map<int, std::string>& col_sql,
    const ProviderCapabilities& caps, std::vector<std::string>* params) const {
  switch (expr->kind) {
    case ScalarKind::kColumn: {
      auto it = col_sql.find(expr->column_id);
      if (it == col_sql.end()) {
        return Status::Internal("decoder: column #" +
                                std::to_string(expr->column_id) +
                                " not in scope");
      }
      return it->second;
    }
    case ScalarKind::kLiteral:
      return RenderLiteral(expr->literal, caps);
    case ScalarKind::kParam:
      params->push_back(expr->op);
      return expr->op;
    case ScalarKind::kUnary: {
      DHQP_ASSIGN_OR_RETURN(std::string arg,
                            DecodeExpr(expr->args[0], col_sql, caps, params));
      if (expr->op == "NOT") return "NOT (" + arg + ")";
      return "(" + expr->op + arg + ")";
    }
    case ScalarKind::kBinary: {
      DHQP_ASSIGN_OR_RETURN(std::string lhs,
                            DecodeExpr(expr->args[0], col_sql, caps, params));
      DHQP_ASSIGN_OR_RETURN(std::string rhs,
                            DecodeExpr(expr->args[1], col_sql, caps, params));
      return "(" + lhs + " " + expr->op + " " + rhs + ")";
    }
    case ScalarKind::kFunc: {
      std::string out = expr->op + "(";
      for (size_t i = 0; i < expr->args.size(); ++i) {
        if (i) out += ", ";
        DHQP_ASSIGN_OR_RETURN(std::string a,
                              DecodeExpr(expr->args[i], col_sql, caps, params));
        out += a;
      }
      return out + ")";
    }
    case ScalarKind::kIsNull: {
      DHQP_ASSIGN_OR_RETURN(std::string arg,
                            DecodeExpr(expr->args[0], col_sql, caps, params));
      return arg + (expr->negated ? " IS NOT NULL" : " IS NULL");
    }
    case ScalarKind::kLike: {
      DHQP_ASSIGN_OR_RETURN(std::string lhs,
                            DecodeExpr(expr->args[0], col_sql, caps, params));
      DHQP_ASSIGN_OR_RETURN(std::string rhs,
                            DecodeExpr(expr->args[1], col_sql, caps, params));
      return lhs + (expr->negated ? " NOT LIKE " : " LIKE ") + rhs;
    }
    case ScalarKind::kInList: {
      DHQP_ASSIGN_OR_RETURN(std::string probe,
                            DecodeExpr(expr->args[0], col_sql, caps, params));
      std::string out = probe + (expr->negated ? " NOT IN (" : " IN (");
      for (size_t i = 1; i < expr->args.size(); ++i) {
        if (i > 1) out += ", ";
        DHQP_ASSIGN_OR_RETURN(std::string item,
                              DecodeExpr(expr->args[i], col_sql, caps, params));
        out += item;
      }
      return out + ")";
    }
    case ScalarKind::kCast: {
      DHQP_ASSIGN_OR_RETURN(std::string arg,
                            DecodeExpr(expr->args[0], col_sql, caps, params));
      std::string type_name;
      switch (expr->cast_type) {
        case DataType::kInt64:
          type_name = "BIGINT";
          break;
        case DataType::kDouble:
          type_name = "FLOAT";
          break;
        case DataType::kString:
          type_name = "VARCHAR";
          break;
        case DataType::kDate:
          type_name = "DATE";
          break;
        case DataType::kBool:
          type_name = "BIT";
          break;
        default:
          return Status::NotSupported("cannot decode CAST target");
      }
      return "CAST(" + arg + " AS " + type_name + ")";
    }
    case ScalarKind::kCase: {
      std::string out = "CASE";
      size_t i = 0;
      for (; i + 1 < expr->args.size(); i += 2) {
        DHQP_ASSIGN_OR_RETURN(std::string c,
                              DecodeExpr(expr->args[i], col_sql, caps, params));
        DHQP_ASSIGN_OR_RETURN(
            std::string v, DecodeExpr(expr->args[i + 1], col_sql, caps, params));
        out += " WHEN " + c + " THEN " + v;
      }
      if (i < expr->args.size()) {
        DHQP_ASSIGN_OR_RETURN(std::string e,
                              DecodeExpr(expr->args[i], col_sql, caps, params));
        out += " ELSE " + e;
      }
      return out + " END";
    }
  }
  return Status::NotSupported("cannot decode expression " + expr->ToString());
}

Result<Decoder::Shape> Decoder::DecodeNode(
    const LogicalOpPtr& tree, const ProviderCapabilities& caps) const {
  switch (tree->kind) {
    case LogicalOpKind::kGet: {
      Shape shape;
      std::string alias = QuoteIdentifier(tree->alias, caps);
      shape.from_items.push_back(
          QuoteIdentifier(tree->table.metadata.name, caps) + " AS " + alias);
      const Schema& schema = tree->table.metadata.schema;
      for (size_t i = 0; i < schema.num_columns(); ++i) {
        std::string sql =
            alias + "." + QuoteIdentifier(schema.column(i).name, caps);
        shape.col_sql[tree->columns[i]] = sql;
        shape.select_items.push_back(sql);
        shape.select_cols.push_back(tree->columns[i]);
      }
      return shape;
    }
    case LogicalOpKind::kFilter: {
      DHQP_ASSIGN_OR_RETURN(Shape shape, DecodeNode(tree->children[0], caps));
      std::vector<ScalarExprPtr> conjuncts;
      SplitConjuncts(tree->predicate, &conjuncts);
      for (const ScalarExprPtr& c : conjuncts) {
        DHQP_ASSIGN_OR_RETURN(std::string sql,
                              DecodeExpr(c, shape.col_sql, caps, &shape.params));
        if (shape.has_aggregate) {
          shape.having.push_back(std::move(sql));
        } else {
          shape.where.push_back(std::move(sql));
        }
      }
      return shape;
    }
    case LogicalOpKind::kJoin: {
      DHQP_ASSIGN_OR_RETURN(Shape left, DecodeNode(tree->children[0], caps));
      DHQP_ASSIGN_OR_RETURN(Shape right, DecodeNode(tree->children[1], caps));
      if (left.has_aggregate || right.has_aggregate) {
        return Status::NotSupported(
            "decoder: join over aggregate requires nested selects");
      }
      Shape shape = std::move(left);
      for (auto& f : right.from_items) shape.from_items.push_back(std::move(f));
      for (auto& w : right.where) shape.where.push_back(std::move(w));
      shape.col_sql.insert(right.col_sql.begin(), right.col_sql.end());
      shape.select_items.insert(shape.select_items.end(),
                                right.select_items.begin(),
                                right.select_items.end());
      shape.select_cols.insert(shape.select_cols.end(),
                               right.select_cols.begin(),
                               right.select_cols.end());
      for (auto& p : right.params) shape.params.push_back(std::move(p));
      if (tree->predicate != nullptr) {
        std::vector<ScalarExprPtr> conjuncts;
        SplitConjuncts(tree->predicate, &conjuncts);
        for (const ScalarExprPtr& c : conjuncts) {
          DHQP_ASSIGN_OR_RETURN(
              std::string sql, DecodeExpr(c, shape.col_sql, caps, &shape.params));
          shape.where.push_back(std::move(sql));
        }
      }
      return shape;
    }
    case LogicalOpKind::kProject: {
      DHQP_ASSIGN_OR_RETURN(Shape shape, DecodeNode(tree->children[0], caps));
      std::vector<std::string> items;
      std::map<int, std::string> new_cols;
      for (size_t i = 0; i < tree->exprs.size(); ++i) {
        DHQP_ASSIGN_OR_RETURN(
            std::string sql,
            DecodeExpr(tree->exprs[i], shape.col_sql, caps, &shape.params));
        items.push_back(sql);
        new_cols[tree->project_cols[i]] = sql;
      }
      shape.select_items = std::move(items);
      shape.select_cols = tree->project_cols;
      // Keep old columns visible for enclosing filters plus the new ones.
      for (auto& [id, sql] : new_cols) shape.col_sql[id] = sql;
      return shape;
    }
    case LogicalOpKind::kAggregate: {
      DHQP_ASSIGN_OR_RETURN(Shape shape, DecodeNode(tree->children[0], caps));
      if (shape.has_aggregate) {
        return Status::NotSupported("decoder: nested aggregation");
      }
      shape.has_aggregate = true;
      std::vector<std::string> items;
      std::vector<int> cols;
      for (int g : tree->group_by) {
        auto it = shape.col_sql.find(g);
        if (it == shape.col_sql.end()) {
          return Status::Internal("decoder: group column not in scope");
        }
        shape.group_by.push_back(it->second);
        items.push_back(it->second);
        cols.push_back(g);
      }
      for (const AggregateItem& a : tree->aggregates) {
        std::string inner = "*";
        if (a.arg != nullptr) {
          DHQP_ASSIGN_OR_RETURN(inner,
                                DecodeExpr(a.arg, shape.col_sql, caps,
                                           &shape.params));
        }
        std::string fn = a.func == "COUNT*" ? "COUNT" : a.func;
        std::string sql =
            fn + "(" + (a.distinct ? "DISTINCT " : "") + inner + ")";
        items.push_back(sql);
        cols.push_back(a.output_col);
        shape.col_sql[a.output_col] = sql;
      }
      shape.select_items = std::move(items);
      shape.select_cols = std::move(cols);
      return shape;
    }
    default:
      return Status::NotSupported(std::string("decoder: cannot decode ") +
                                  LogicalOpKindName(tree->kind));
  }
}

Result<DecodedQuery> Decoder::Decode(
    const LogicalOpPtr& tree, const ProviderCapabilities& caps,
    const std::vector<std::pair<int, bool>>& order_by) const {
  if (!IsRemotable(tree, caps)) {
    return Status::NotSupported("tree is not remotable for provider " +
                                caps.provider_name);
  }
  // ORDER BY needs at least ODBC Core.
  if (!order_by.empty() && !LevelAtLeast(caps, SqlSupportLevel::kOdbcCore)) {
    return Status::NotSupported("provider cannot remote ORDER BY");
  }
  DHQP_ASSIGN_OR_RETURN(Shape shape, DecodeNode(tree, caps));
  std::string sql = "SELECT ";
  for (size_t i = 0; i < shape.select_items.size(); ++i) {
    if (i) sql += ", ";
    sql += shape.select_items[i] + " AS " +
           QuoteIdentifier("c" + std::to_string(i), caps);
  }
  sql += " FROM ";
  for (size_t i = 0; i < shape.from_items.size(); ++i) {
    if (i) sql += ", ";
    sql += shape.from_items[i];
  }
  if (!shape.where.empty()) {
    sql += " WHERE ";
    for (size_t i = 0; i < shape.where.size(); ++i) {
      if (i) sql += " AND ";
      sql += shape.where[i];
    }
  }
  if (!shape.group_by.empty()) {
    sql += " GROUP BY ";
    for (size_t i = 0; i < shape.group_by.size(); ++i) {
      if (i) sql += ", ";
      sql += shape.group_by[i];
    }
  }
  if (!shape.having.empty()) {
    sql += " HAVING ";
    for (size_t i = 0; i < shape.having.size(); ++i) {
      if (i) sql += " AND ";
      sql += shape.having[i];
    }
  }
  if (!order_by.empty()) {
    sql += " ORDER BY ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      auto it = shape.col_sql.find(order_by[i].first);
      if (it == shape.col_sql.end()) {
        return Status::NotSupported(
            "ORDER BY column not visible in the remote statement");
      }
      if (i) sql += ", ";
      sql += it->second;
      if (!order_by[i].second) sql += " DESC";
    }
  }
  DecodedQuery out;
  out.sql = std::move(sql);
  out.output_cols = std::move(shape.select_cols);
  out.params = std::move(shape.params);
  return out;
}

}  // namespace dhqp
