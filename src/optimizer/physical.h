#ifndef DHQP_OPTIMIZER_PHYSICAL_H_
#define DHQP_OPTIMIZER_PHYSICAL_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/catalog/catalog.h"
#include "src/optimizer/logical.h"
#include "src/sql/bound_expr.h"

namespace dhqp {

/// Physical operators — the executable algebra the optimizer's
/// implementation rules produce and the Volcano executor runs (§4.1.1:
/// "hash join", "loop join", ... are physical counterparts of logical ops;
/// §4.1.2 adds the remote access paths).
enum class PhysicalOpKind {
  kTableScan,        ///< Sequential scan of a local table.
  kIndexRange,       ///< Local B+-tree seek/range.
  kFilter,           ///< Predicate evaluation.
  kStartupFilter,    ///< Parameter-only predicate evaluated before opening
                     ///< the child (§4.1.5 runtime pruning).
  kProject,          ///< Compute scalar expressions.
  kHashJoin,         ///< Build/probe equi-join.
  kNestedLoopsJoin,  ///< Rescanning join for arbitrary predicates and
                     ///< semi/anti/outer variants.
  kMergeJoin,        ///< Equi-join over sorted inputs.
  kHashAggregate,    ///< Hash-based grouping.
  kStreamAggregate,  ///< Grouping over sorted input.
  kSort,             ///< Order enforcer.
  kTop,              ///< First-n.
  kConcat,           ///< UNION ALL / partitioned-view concatenation.
  kConstTable,       ///< Literal rows.
  kEmptyTable,       ///< Statically pruned to empty.
  kSpool,            ///< Materialize child for cheap rescans (§4.1.4).
  kRemoteQuery,      ///< Decoded SQL pushed to a linked server ("build
                     ///< remote query").
  kRemoteScan,       ///< Full remote table via IOpenRowset.
  kRemoteRange,      ///< Remote index range via IRowsetIndex.
  kRemoteFetch,      ///< Remote bookmark lookups via IRowsetLocate.
  kFullTextLookup,   ///< (key, rank) rowset from the full-text service.
  kExchange,         ///< Parallelism enforcer: moves RowBatches between
                     ///< producer and consumer partition streams (gather /
                     ///< repartition-by-hash / round-robin distribute).
};

const char* PhysicalOpKindName(PhysicalOpKind kind);

/// Data-movement flavor of a kExchange operator.
enum class ExchangeKind {
  kGather,           ///< N producer streams -> 1 consumer stream.
  kRepartitionHash,  ///< N (or 1) streams -> N streams hashed on
                     ///< exchange_keys.
  kDistribute,       ///< 1 stream -> N streams, round-robin batches.
};

const char* ExchangeKindName(ExchangeKind kind);

struct PhysicalOp;
using PhysicalOpPtr = std::shared_ptr<const PhysicalOp>;

/// An index-range specification whose bounds may be runtime expressions
/// (parameters or outer-row columns), evaluated when the operator opens.
struct RangeSpec {
  std::vector<ScalarExprPtr> eq_prefix;
  ScalarExprPtr lo;  ///< Null = unbounded.
  bool lo_inclusive = true;
  ScalarExprPtr hi;
  bool hi_inclusive = true;
};

/// One physical operator node with cost/cardinality annotations. The tree is
/// immutable after construction so memo winners can share subplans.
struct PhysicalOp {
  PhysicalOpKind kind;
  std::vector<PhysicalOpPtr> children;

  /// @name Plan annotations.
  ///@{
  double estimated_rows = 0;
  double estimated_cost = 0;   ///< Cumulative (includes children).
  std::vector<int> output_cols;
  std::vector<DataType> output_types;
  std::vector<std::string> output_names;
  ///@}

  // Scans (local + remote).
  ResolvedTable table;
  std::string alias;
  std::string index_name;
  RangeSpec range;

  // kFilter / kStartupFilter / join residual predicate.
  ScalarExprPtr predicate;

  // kProject.
  std::vector<ScalarExprPtr> exprs;

  // Joins.
  JoinType join_type = JoinType::kInner;
  /// Equi-join key pairs (left expr, right expr) for hash/merge join.
  std::vector<std::pair<ScalarExprPtr, ScalarExprPtr>> key_pairs;

  // Aggregates.
  std::vector<int> group_by;
  std::vector<AggregateItem> aggregates;

  // kSort (and delivered order of any operator).
  std::vector<std::pair<int, bool>> sort_keys;  ///< (column id, ascending).

  // kTop.
  int64_t limit = 0;

  // kConstTable.
  std::vector<Row> const_rows;

  // kRemoteQuery.
  int source_id = kLocalSource;
  std::string remote_sql;
  /// Parameter names the remote statement references; bound from the
  /// execution context at dispatch.
  std::vector<std::string> remote_param_names;
  /// On kNestedLoopsJoin: correlation bindings @name -> expression over the
  /// outer row, re-evaluated per iteration (the parameterization rule,
  /// §4.1.2).
  std::vector<std::pair<std::string, ScalarExprPtr>> remote_params;

  // kFullTextLookup.
  std::string ft_table;
  std::string ft_query;

  /// @name Parallelism (see PhysicalProps::dop).
  ///@{
  /// Instances of this operator that run concurrently (= partition streams
  /// it produces). For kExchange this is the *consumer* side; the producer
  /// side is children[0]->dop.
  int dop = 1;
  /// Column ids the delivered streams are hash-partitioned on (empty =
  /// arbitrary partitioning). Meaningful when dop > 1.
  std::vector<int> partition_cols;
  // kExchange only.
  ExchangeKind exchange = ExchangeKind::kGather;
  std::vector<int> exchange_keys;  ///< Hash columns for kRepartitionHash.
  ///@}

  /// Indented EXPLAIN-style rendering with row/cost annotations.
  std::string ToString(int indent = 0) const;

  /// Like ToString, prefixed with stable pre-order operator ids ("#1 ...")
  /// that match the ids EXPLAIN ANALYZE assigns to its profile tree, so
  /// estimated and actual renderings line up operator by operator.
  /// `next_id` is advanced in pre-order (pass an int initialized to 1).
  std::string ToStringWithIds(int indent, int* next_id) const;

  /// Single-line operator description (payload summary).
  std::string Describe() const;
};

/// Mutable builder alias used while implementation rules assemble nodes.
using PhysicalOpBuilder = std::shared_ptr<PhysicalOp>;

/// Allocates a node of `kind`.
PhysicalOpBuilder NewPhysicalOp(PhysicalOpKind kind);

}  // namespace dhqp

#endif  // DHQP_OPTIMIZER_PHYSICAL_H_
