#ifndef DHQP_OPTIMIZER_MEMO_H_
#define DHQP_OPTIMIZER_MEMO_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/optimizer/context.h"
#include "src/optimizer/logical.h"
#include "src/optimizer/physical.h"
#include "src/optimizer/properties.h"

namespace dhqp {

/// One logical alternative inside a group: an operator payload plus child
/// *group* references ("a query tree is represented using connections
/// between groups instead of operators", §4.1.1).
struct GroupExpr {
  LogicalOpPtr op;            ///< Payload; its own children are ignored.
  std::vector<int> children;  ///< Child group ids.
  /// Exploration rules already fired on this expr (bitmask by rule index),
  /// so fixpoint iteration does not re-apply.
  uint64_t rules_fired = 0;
};

/// The best known physical plan of a group for one required-property set.
struct Winner {
  PhysicalOpPtr plan;
  double cost = 0;
  bool valid = false;
};

/// A memo group: the set of logically equivalent alternatives, their shared
/// group properties, and per-required-property winners.
struct Group {
  std::vector<GroupExpr> exprs;
  LogicalProps props;
  std::map<std::string, Winner> winners;  ///< Keyed by props fingerprint.
  int explored_in_phase = -1;  ///< Last phase whose exploration completed.
};

/// The Memo (§4.1.1): stores equivalent alternatives in groups, dedupes
/// structurally identical expressions ("no extra work is required to
/// re-search this portion of the possible query space").
class Memo {
 public:
  explicit Memo(OptimizerContext* ctx) : ctx_(ctx) {}

  /// Recursively inserts a logical tree; returns its group id.
  int InsertTree(const LogicalOpPtr& tree);

  /// Inserts one expression (payload + child groups). If an identical
  /// expression already exists, returns its group. Otherwise adds it to
  /// `target_group` (or a fresh group when -1). `added` reports whether a
  /// new expression was created.
  int InsertExpr(const LogicalOpPtr& payload, std::vector<int> children,
                 int target_group, bool* added);

  Group& group(int id) { return *groups_[static_cast<size_t>(id)]; }
  const Group& group(int id) const { return *groups_[static_cast<size_t>(id)]; }
  int num_groups() const { return static_cast<int>(groups_.size()); }
  int num_exprs() const { return num_exprs_; }

  /// Extracts one representative logical tree from a group (first
  /// expression, recursively).
  LogicalOpPtr ExtractTree(int group_id) const;

  /// Renders the memo contents for debugging.
  std::string ToString() const;

 private:
  LogicalProps ComputeProps(const LogicalOp& payload,
                            const std::vector<int>& children) const;

  OptimizerContext* ctx_;
  std::vector<std::unique_ptr<Group>> groups_;
  std::map<std::string, int> index_;  ///< Expr fingerprint -> group id.
  int num_exprs_ = 0;
};

}  // namespace dhqp

#endif  // DHQP_OPTIMIZER_MEMO_H_
