#ifndef DHQP_OPTIMIZER_COST_H_
#define DHQP_OPTIMIZER_COST_H_

#include "src/optimizer/physical.h"

namespace dhqp {

/// Cost-model constants, in abstract "row units". The remote constants
/// implement the paper's model (§4.1.3): a remote operator is costed by its
/// output cardinality, with per-row network cost dominating local per-row
/// work, so minimizing cost minimizes network traffic. Remote execution work
/// is deliberately *not* modeled — "in heterogeneous, autonomous
/// environments, it is sometimes impossible to reason about the detailed
/// implementation of the remote operator".
struct CostParams {
  double seq_row = 1.0;            ///< Sequential scan, per row.
  double index_row = 1.5;          ///< Index traversal, per qualifying row.
  double index_seek = 8.0;         ///< Per seek (log factor flattened).
  double filter_row = 0.2;
  double project_row = 0.1;
  double hash_build_row = 2.0;
  double hash_probe_row = 1.2;
  double nl_rescan = 1.0;          ///< Inner rescan multiplier baseline.
  double sort_row_log = 0.3;       ///< n * log2(n) coefficient.
  double agg_row = 1.5;
  double spool_write_row = 0.6;
  double spool_read_row = 0.2;

  double remote_request = 1000.0;  ///< Per remote command / open (latency).
  double remote_row = 8.0;         ///< Per row shipped over the network.
  double remote_fetch = 60.0;      ///< Per bookmark fetch round trip.

  /// Exchange (intra-query parallelism): per-stream thread startup/teardown
  /// plus per-row queue transfer. These are what keep small queries serial —
  /// a parallel plan only wins when the per-row work it divides across
  /// workers outweighs startup + data movement (break-even lands around a
  /// few thousand rows for a scan-filter pipeline).
  double exchange_startup = 500.0;  ///< Per producer + per consumer stream.
  double exchange_row = 0.3;        ///< Per row moved through the exchange.
};

/// Local (non-cumulative) cost of `op`, given children already annotated
/// with estimated_rows/estimated_cost. `op.estimated_rows` must be set.
double LocalCost(const PhysicalOp& op, const CostParams& params);

}  // namespace dhqp

#endif  // DHQP_OPTIMIZER_COST_H_
