#include "src/optimizer/physical.h"

#include <cstdio>

namespace dhqp {

const char* PhysicalOpKindName(PhysicalOpKind kind) {
  switch (kind) {
    case PhysicalOpKind::kTableScan:
      return "TableScan";
    case PhysicalOpKind::kIndexRange:
      return "IndexRange";
    case PhysicalOpKind::kFilter:
      return "Filter";
    case PhysicalOpKind::kStartupFilter:
      return "StartupFilter";
    case PhysicalOpKind::kProject:
      return "Project";
    case PhysicalOpKind::kHashJoin:
      return "HashJoin";
    case PhysicalOpKind::kNestedLoopsJoin:
      return "NestedLoopsJoin";
    case PhysicalOpKind::kMergeJoin:
      return "MergeJoin";
    case PhysicalOpKind::kHashAggregate:
      return "HashAggregate";
    case PhysicalOpKind::kStreamAggregate:
      return "StreamAggregate";
    case PhysicalOpKind::kSort:
      return "Sort";
    case PhysicalOpKind::kTop:
      return "Top";
    case PhysicalOpKind::kConcat:
      return "Concat";
    case PhysicalOpKind::kConstTable:
      return "ConstTable";
    case PhysicalOpKind::kEmptyTable:
      return "EmptyTable";
    case PhysicalOpKind::kSpool:
      return "Spool";
    case PhysicalOpKind::kRemoteQuery:
      return "RemoteQuery";
    case PhysicalOpKind::kRemoteScan:
      return "RemoteScan";
    case PhysicalOpKind::kRemoteRange:
      return "RemoteRange";
    case PhysicalOpKind::kRemoteFetch:
      return "RemoteFetch";
    case PhysicalOpKind::kFullTextLookup:
      return "FullTextLookup";
    case PhysicalOpKind::kExchange:
      return "Exchange";
  }
  return "?";
}

const char* ExchangeKindName(ExchangeKind kind) {
  switch (kind) {
    case ExchangeKind::kGather:
      return "gather";
    case ExchangeKind::kRepartitionHash:
      return "repartition";
    case ExchangeKind::kDistribute:
      return "distribute";
  }
  return "?";
}

std::string PhysicalOp::Describe() const {
  std::string out = PhysicalOpKindName(kind);
  switch (kind) {
    case PhysicalOpKind::kTableScan:
    case PhysicalOpKind::kRemoteScan:
      out += "(" + table.metadata.name;
      if (!table.server_name.empty()) out = out + " @" + table.server_name;
      out += ")";
      break;
    case PhysicalOpKind::kIndexRange:
    case PhysicalOpKind::kRemoteRange:
    case PhysicalOpKind::kRemoteFetch:
      out += "(" + table.metadata.name + "." + index_name;
      if (!table.server_name.empty()) out += " @" + table.server_name;
      out += ")";
      break;
    case PhysicalOpKind::kFilter:
    case PhysicalOpKind::kStartupFilter:
      if (predicate) out += "[" + predicate->ToString() + "]";
      break;
    case PhysicalOpKind::kHashJoin:
    case PhysicalOpKind::kNestedLoopsJoin:
    case PhysicalOpKind::kMergeJoin: {
      out += std::string("(") + JoinTypeName(join_type);
      if (!key_pairs.empty()) {
        out += ", keys:";
        for (size_t i = 0; i < key_pairs.size(); ++i) {
          if (i) out += ",";
          out += key_pairs[i].first->ToString() + "=" +
                 key_pairs[i].second->ToString();
        }
      }
      if (predicate) out += ", residual:" + predicate->ToString();
      out += ")";
      break;
    }
    case PhysicalOpKind::kSort: {
      out += "(";
      for (size_t i = 0; i < sort_keys.size(); ++i) {
        if (i) out += ",";
        out += "#" + std::to_string(sort_keys[i].first) +
               (sort_keys[i].second ? " asc" : " desc");
      }
      out += ")";
      break;
    }
    case PhysicalOpKind::kTop:
      out += "(" + std::to_string(limit) + ")";
      break;
    case PhysicalOpKind::kRemoteQuery:
      out += "(@" + table.server_name + ": " + remote_sql + ")";
      break;
    case PhysicalOpKind::kFullTextLookup:
      out += "(" + ft_table + ": '" + ft_query + "')";
      break;
    case PhysicalOpKind::kExchange: {
      out += std::string("(") + ExchangeKindName(exchange);
      int producers = children.empty() ? 1 : children[0]->dop;
      out += ", " + std::to_string(producers > 0 ? producers : 1) + "->" +
             std::to_string(dop > 0 ? dop : 1);
      if (!exchange_keys.empty()) {
        out += ", keys:";
        for (size_t i = 0; i < exchange_keys.size(); ++i) {
          if (i) out += ",";
          out += "#" + std::to_string(exchange_keys[i]);
        }
      }
      out += ")";
      break;
    }
    default:
      break;
  }
  if (dop > 1 && kind != PhysicalOpKind::kExchange) {
    out += " [dop=" + std::to_string(dop) + "]";
  }
  return out;
}

std::string PhysicalOp::ToString(int indent) const {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  char annot[64];
  std::snprintf(annot, sizeof(annot), "  [rows=%.1f cost=%.1f]",
                estimated_rows, estimated_cost);
  std::string out = pad + Describe() + annot + "\n";
  for (const PhysicalOpPtr& child : children) {
    out += child->ToString(indent + 1);
  }
  return out;
}

std::string PhysicalOp::ToStringWithIds(int indent, int* next_id) const {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  char buf[64];
  std::snprintf(buf, sizeof(buf), "#%d ", (*next_id)++);
  std::string out = pad + buf + Describe();
  std::snprintf(buf, sizeof(buf), "  [rows=%.1f cost=%.1f]", estimated_rows,
                estimated_cost);
  out += buf;
  out += "\n";
  // Pre-order ids: a shared subplan (memo winner reused under two parents)
  // gets a distinct id per occurrence, matching the exec-tree profiles.
  for (const PhysicalOpPtr& child : children) {
    out += child->ToStringWithIds(indent + 1, next_id);
  }
  return out;
}

PhysicalOpBuilder NewPhysicalOp(PhysicalOpKind kind) {
  auto op = std::make_shared<PhysicalOp>();
  op->kind = kind;
  return op;
}

}  // namespace dhqp
