#include "src/optimizer/cost.h"

#include <algorithm>
#include <cmath>

namespace dhqp {

namespace {

double ChildRows(const PhysicalOp& op, size_t i) {
  return std::max(op.children[i]->estimated_rows, 0.0);
}

// Per-row evaluation weight of a predicate. Simple comparisons are cheap;
// LIKE scans the string; CONTAINS tokenizes + stems + matches the whole
// text, which is what makes a full-text index plan attractive (§2.3).
double PredicateWeight(const ScalarExprPtr& pred) {
  if (pred == nullptr) return 1.0;
  double w = 0;
  if (pred->kind == ScalarKind::kFunc && pred->op == "CONTAINS") {
    w += 100.0;
  } else if (pred->kind == ScalarKind::kLike) {
    w += 5.0;
  }
  for (const ScalarExprPtr& arg : pred->args) w += PredicateWeight(arg);
  return std::max(w, 1.0);
}

}  // namespace

double LocalCost(const PhysicalOp& op, const CostParams& p) {
  double out = std::max(op.estimated_rows, 0.0);
  switch (op.kind) {
    case PhysicalOpKind::kTableScan:
      return std::max(op.table.metadata.cardinality, 1.0) * p.seq_row;
    case PhysicalOpKind::kIndexRange:
      return p.index_seek + out * p.index_row;
    case PhysicalOpKind::kFilter:
      return ChildRows(op, 0) * p.filter_row * PredicateWeight(op.predicate);
    case PhysicalOpKind::kStartupFilter:
      // Evaluated once; may skip the whole child, but costing assumes it
      // runs (conservative).
      return 1.0;
    case PhysicalOpKind::kProject:
      return ChildRows(op, 0) * p.project_row *
             std::max<size_t>(op.exprs.size(), 1);
    case PhysicalOpKind::kHashJoin:
      return ChildRows(op, 1) * p.hash_build_row +
             ChildRows(op, 0) * p.hash_probe_row + out * 0.1;
    case PhysicalOpKind::kMergeJoin:
      return (ChildRows(op, 0) + ChildRows(op, 1)) * 1.0 + out * 0.1;
    case PhysicalOpKind::kNestedLoopsJoin: {
      // Outer rows drive rescans of the inner subtree. A rescannable inner
      // (spool, materialized scan) re-reads cheaply; otherwise the inner's
      // full cost recurs per outer row — which is what makes un-spooled
      // remote inners catastrophically expensive (§4.1.4).
      double outer = ChildRows(op, 0);
      const PhysicalOp& inner = *op.children[1];
      double inner_rescan_cost;
      if (inner.kind == PhysicalOpKind::kSpool) {
        inner_rescan_cost = inner.estimated_rows * p.spool_read_row;
      } else if (inner.kind == PhysicalOpKind::kConstTable ||
                 inner.kind == PhysicalOpKind::kEmptyTable) {
        inner_rescan_cost = inner.estimated_rows * p.spool_read_row;
      } else {
        inner_rescan_cost = inner.estimated_cost;
      }
      return std::max(outer - 1.0, 0.0) * inner_rescan_cost * p.nl_rescan +
             outer * p.filter_row + out * 0.1;
    }
    case PhysicalOpKind::kHashAggregate:
      return ChildRows(op, 0) * p.agg_row;
    case PhysicalOpKind::kStreamAggregate:
      return ChildRows(op, 0) * p.agg_row * 0.5;
    case PhysicalOpKind::kSort: {
      double n = std::max(ChildRows(op, 0), 2.0);
      return n * std::log2(n) * p.sort_row_log;
    }
    case PhysicalOpKind::kTop:
      return out * 0.1;
    case PhysicalOpKind::kConcat:
      return out * 0.05;
    case PhysicalOpKind::kConstTable:
    case PhysicalOpKind::kEmptyTable:
      return 0.5;
    case PhysicalOpKind::kSpool:
      return ChildRows(op, 0) * p.spool_write_row;
    case PhysicalOpKind::kRemoteQuery:
      // The paper's model: a remote request plus its output shipped back.
      return p.remote_request + out * p.remote_row;
    case PhysicalOpKind::kRemoteScan:
      return p.remote_request +
             std::max(op.table.metadata.cardinality, 1.0) * p.remote_row;
    case PhysicalOpKind::kRemoteRange:
      return p.remote_request + out * p.remote_row;
    case PhysicalOpKind::kRemoteFetch:
      // One round trip per bookmark.
      return p.remote_request + out * p.remote_fetch;
    case PhysicalOpKind::kFullTextLookup:
      return p.remote_request * 0.2 + out * 2.0;
    case PhysicalOpKind::kExchange: {
      // Startup per stream on both sides plus every row crossing a queue.
      // Not divided by dop (see Optimizer::CostNode): the transfer itself is
      // the serialization point.
      double producers =
          op.children.empty() ? 1.0 : std::max(op.children[0]->dop, 1);
      double consumers = std::max(op.dop, 1);
      return p.exchange_startup * (producers + consumers) +
             ChildRows(op, 0) * p.exchange_row;
    }
  }
  return out;
}

}  // namespace dhqp
