#ifndef DHQP_OPTIMIZER_LOGICAL_H_
#define DHQP_OPTIMIZER_LOGICAL_H_

#include <memory>
#include <string>
#include <vector>

#include "src/catalog/catalog.h"
#include "src/common/row.h"
#include "src/sql/bound_expr.h"

namespace dhqp {

/// Logical join variants. Semi/anti joins come from EXISTS / NOT EXISTS /
/// IN-subquery unrolling (§4.1.4 notes semi-join is "an abstract operator
/// with no direct SQL corollary", which matters to the decoder).
enum class JoinType { kInner, kLeftOuter, kSemi, kAnti, kCross };

const char* JoinTypeName(JoinType type);

/// Logical (declarative) operators. Each operator is "a unique node in a
/// query tree" (§4.1.1): joins are binary, n-way joins are nested.
enum class LogicalOpKind {
  kGet,         ///< Base table access (local or remote; §4.1.3: same logical
                ///< operator either way, tagged with its source).
  kFilter,      ///< Relational selection.
  kProject,     ///< Scalar projection.
  kJoin,        ///< Binary join with predicate.
  kAggregate,   ///< GROUP BY + aggregate functions.
  kUnionAll,    ///< N-ary bag union (partitioned views).
  kTop,         ///< TOP n.
  kConstTable,  ///< Literal rows (VALUES / FROM-less SELECT).
  kEmpty,       ///< Provably-empty relation (static pruning result).
  kFullTextGet, ///< (key, rank) rowset from the full-text search service
                ///< for a CONTAINS query (§2.3, Fig 2).
};

const char* LogicalOpKindName(LogicalOpKind kind);

/// One aggregate computation in a kAggregate operator.
struct AggregateItem {
  std::string func;        ///< COUNT / SUM / AVG / MIN / MAX ("COUNT*" for *).
  ScalarExprPtr arg;       ///< Null for COUNT(*).
  bool distinct = false;
  int output_col = -1;     ///< Column id of the aggregate's result.
  DataType type = DataType::kNull;
};

struct LogicalOp;
using LogicalOpPtr = std::shared_ptr<const LogicalOp>;

/// A logical operator node. Immutable once built; plan alternatives share
/// subtrees freely.
struct LogicalOp {
  LogicalOpKind kind;
  std::vector<LogicalOpPtr> children;

  // kGet.
  ResolvedTable table;
  std::string alias;
  std::vector<int> columns;  ///< Output column ids, one per schema column.

  // kFilter predicate / kJoin condition.
  ScalarExprPtr predicate;

  // kProject.
  std::vector<ScalarExprPtr> exprs;
  std::vector<int> project_cols;  ///< Output column id per expression.

  // kJoin.
  JoinType join_type = JoinType::kInner;

  // kAggregate.
  std::vector<int> group_by;  ///< Input column ids to group on.
  std::vector<AggregateItem> aggregates;

  // kTop.
  int64_t limit = 0;

  // kConstTable / kEmpty.
  std::vector<Row> const_rows;
  std::vector<int> const_cols;           ///< Output column ids.
  std::vector<DataType> const_types;

  // kFullTextGet.
  std::string ft_table;   ///< Base table whose full-text catalog is used.
  std::string ft_query;   ///< The CONTAINS query string.
  int ft_key_col = -1;    ///< Output column id: matched row's key.
  int ft_rank_col = -1;   ///< Output column id: relevance rank.

  /// Output column ids of this operator (depends on children for most ops).
  std::vector<int> OutputColumns() const;

  /// Structural fingerprint of this node *excluding children* — memo
  /// deduplication keys on (fingerprint, child group ids).
  std::string LocalFingerprint() const;

  /// Multi-line indented tree rendering for EXPLAIN/tests.
  std::string ToString(int indent = 0) const;
};

/// @name Construction helpers.
///@{
LogicalOpPtr MakeGet(ResolvedTable table, std::string alias,
                     std::vector<int> columns);
LogicalOpPtr MakeFilter(LogicalOpPtr child, ScalarExprPtr predicate);
LogicalOpPtr MakeProject(LogicalOpPtr child, std::vector<ScalarExprPtr> exprs,
                         std::vector<int> out_cols);
LogicalOpPtr MakeJoin(JoinType type, LogicalOpPtr left, LogicalOpPtr right,
                      ScalarExprPtr predicate);
LogicalOpPtr MakeAggregate(LogicalOpPtr child, std::vector<int> group_by,
                           std::vector<AggregateItem> aggregates);
LogicalOpPtr MakeUnionAll(std::vector<LogicalOpPtr> children);
LogicalOpPtr MakeTop(LogicalOpPtr child, int64_t limit);
LogicalOpPtr MakeConstTable(std::vector<Row> rows, std::vector<int> cols,
                            std::vector<DataType> types);
LogicalOpPtr MakeEmpty(std::vector<int> cols, std::vector<DataType> types);
LogicalOpPtr MakeFullTextGet(std::string table, std::string query,
                             int key_col, int rank_col);
///@}

}  // namespace dhqp

#endif  // DHQP_OPTIMIZER_LOGICAL_H_
