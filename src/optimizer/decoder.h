#ifndef DHQP_OPTIMIZER_DECODER_H_
#define DHQP_OPTIMIZER_DECODER_H_

#include <map>
#include <string>
#include <vector>

#include "src/optimizer/context.h"
#include "src/optimizer/logical.h"
#include "src/provider/capabilities.h"

namespace dhqp {

/// Result of decoding a logical tree into remote SQL.
struct DecodedQuery {
  std::string sql;
  /// Column ids corresponding positionally to the SELECT list.
  std::vector<int> output_cols;
  /// Parameters referenced by the statement (to be bound at dispatch).
  std::vector<std::string> params;
};

/// The decoder (§4.1.3): "takes a logical query tree as its input and
/// decodes it into an equivalent SQL statement", responding to the
/// provider's dialect — SQL support level, identifier quoting, date literal
/// syntax, parameter support, nested-select support. Part of the "build
/// remote query" implementation rule.
class Decoder {
 public:
  explicit Decoder(OptimizerContext* ctx) : ctx_(ctx) {}

  /// True if `tree` (a logical tree with real children, e.g. extracted from
  /// a memo group) can be rendered as a single SQL statement the provider
  /// accepts. Cheap pre-check used as the rule's guidance.
  bool IsRemotable(const LogicalOpPtr& tree,
                   const ProviderCapabilities& caps) const;

  /// Decodes `tree` into SQL for a provider with `caps`. Fails with
  /// NotSupported when the tree needs capabilities the provider lacks — the
  /// caller (the build-remote-query rule) then tries another alternative
  /// from the memo group (§4.1.4). A non-empty `order_by` (column id,
  /// ascending) appends an ORDER BY clause so sorts are remoted too (§2.1);
  /// the columns must be visible in the decoded SELECT list.
  Result<DecodedQuery> Decode(
      const LogicalOpPtr& tree, const ProviderCapabilities& caps,
      const std::vector<std::pair<int, bool>>& order_by = {}) const;

 private:
  /// Flat SELECT block under assembly.
  struct Shape {
    std::vector<std::string> select_items;
    std::vector<int> select_cols;
    std::vector<std::string> from_items;
    std::vector<std::string> where;
    std::vector<std::string> group_by;
    std::vector<std::string> having;
    bool has_aggregate = false;
    std::map<int, std::string> col_sql;  ///< Column id -> SQL text.
    std::vector<std::string> params;
  };

  Result<Shape> DecodeNode(const LogicalOpPtr& tree,
                           const ProviderCapabilities& caps) const;
  Result<std::string> DecodeExpr(const ScalarExprPtr& expr,
                                 const std::map<int, std::string>& col_sql,
                                 const ProviderCapabilities& caps,
                                 std::vector<std::string>* params) const;
  std::string QuoteIdentifier(const std::string& name,
                              const ProviderCapabilities& caps) const;
  Result<std::string> RenderLiteral(const Value& v,
                                    const ProviderCapabilities& caps) const;

  /// True if the expression only uses features available at the provider's
  /// SQL level (§3.3: "fully used while not overshooting its limitations").
  bool ExprRemotable(const ScalarExprPtr& expr,
                     const ProviderCapabilities& caps) const;

  OptimizerContext* ctx_;
};

}  // namespace dhqp

#endif  // DHQP_OPTIMIZER_DECODER_H_
