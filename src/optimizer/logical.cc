#include "src/optimizer/logical.h"

namespace dhqp {

const char* JoinTypeName(JoinType type) {
  switch (type) {
    case JoinType::kInner:
      return "Inner";
    case JoinType::kLeftOuter:
      return "LeftOuter";
    case JoinType::kSemi:
      return "Semi";
    case JoinType::kAnti:
      return "Anti";
    case JoinType::kCross:
      return "Cross";
  }
  return "?";
}

const char* LogicalOpKindName(LogicalOpKind kind) {
  switch (kind) {
    case LogicalOpKind::kGet:
      return "Get";
    case LogicalOpKind::kFilter:
      return "Filter";
    case LogicalOpKind::kProject:
      return "Project";
    case LogicalOpKind::kJoin:
      return "Join";
    case LogicalOpKind::kAggregate:
      return "Aggregate";
    case LogicalOpKind::kUnionAll:
      return "UnionAll";
    case LogicalOpKind::kTop:
      return "Top";
    case LogicalOpKind::kConstTable:
      return "ConstTable";
    case LogicalOpKind::kEmpty:
      return "Empty";
    case LogicalOpKind::kFullTextGet:
      return "FullTextGet";
  }
  return "?";
}

std::vector<int> LogicalOp::OutputColumns() const {
  switch (kind) {
    case LogicalOpKind::kGet:
      return columns;
    case LogicalOpKind::kFilter:
    case LogicalOpKind::kTop:
      return children[0]->OutputColumns();
    case LogicalOpKind::kProject:
      return project_cols;
    case LogicalOpKind::kJoin: {
      if (join_type == JoinType::kSemi || join_type == JoinType::kAnti) {
        return children[0]->OutputColumns();
      }
      std::vector<int> out = children[0]->OutputColumns();
      std::vector<int> right = children[1]->OutputColumns();
      out.insert(out.end(), right.begin(), right.end());
      return out;
    }
    case LogicalOpKind::kAggregate: {
      std::vector<int> out = group_by;
      for (const AggregateItem& agg : aggregates) {
        out.push_back(agg.output_col);
      }
      return out;
    }
    case LogicalOpKind::kUnionAll:
      // All branches are aligned to the first branch's column ids.
      return children[0]->OutputColumns();
    case LogicalOpKind::kConstTable:
    case LogicalOpKind::kEmpty:
      return const_cols;
    case LogicalOpKind::kFullTextGet:
      return {ft_key_col, ft_rank_col};
  }
  return {};
}

std::string LogicalOp::LocalFingerprint() const {
  std::string fp = LogicalOpKindName(kind);
  switch (kind) {
    case LogicalOpKind::kGet:
      // Column ids identify the table *instance*: two references to the same
      // table (self-join, UNION ALL branches) must not share a group.
      fp += ":" + std::to_string(table.source_id) + ":" + table.metadata.name +
            ":" + alias;
      for (int c : columns) fp += "," + std::to_string(c);
      break;
    case LogicalOpKind::kFilter:
      fp += ":" + (predicate ? predicate->ToString() : "");
      break;
    case LogicalOpKind::kProject:
      for (size_t i = 0; i < exprs.size(); ++i) {
        fp += ":" + std::to_string(project_cols[i]) + "=" +
              exprs[i]->ToString();
      }
      break;
    case LogicalOpKind::kJoin:
      fp += std::string(":") + JoinTypeName(join_type) + ":" +
            (predicate ? predicate->ToString() : "true");
      break;
    case LogicalOpKind::kAggregate:
      fp += ":g";
      for (int g : group_by) fp += "," + std::to_string(g);
      for (const AggregateItem& a : aggregates) {
        fp += ":" + a.func + (a.distinct ? "D" : "") + "(" +
              (a.arg ? a.arg->ToString() : "*") + ")->" +
              std::to_string(a.output_col);
      }
      break;
    case LogicalOpKind::kTop:
      fp += ":" + std::to_string(limit);
      break;
    case LogicalOpKind::kConstTable:
    case LogicalOpKind::kEmpty:
      fp += ":" + std::to_string(const_rows.size()) + "rows";
      for (int c : const_cols) fp += "," + std::to_string(c);
      break;
    case LogicalOpKind::kUnionAll:
      break;
    case LogicalOpKind::kFullTextGet:
      fp += ":" + ft_table + ":" + ft_query;
      break;
  }
  return fp;
}

std::string LogicalOp::ToString(int indent) const {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  std::string out = pad + LocalFingerprint() + "\n";
  for (const LogicalOpPtr& child : children) {
    out += child->ToString(indent + 1);
  }
  return out;
}

namespace {

std::shared_ptr<LogicalOp> NewOp(LogicalOpKind kind) {
  auto op = std::make_shared<LogicalOp>();
  op->kind = kind;
  return op;
}

}  // namespace

LogicalOpPtr MakeGet(ResolvedTable table, std::string alias,
                     std::vector<int> columns) {
  auto op = NewOp(LogicalOpKind::kGet);
  op->table = std::move(table);
  op->alias = std::move(alias);
  op->columns = std::move(columns);
  return op;
}

LogicalOpPtr MakeFilter(LogicalOpPtr child, ScalarExprPtr predicate) {
  auto op = NewOp(LogicalOpKind::kFilter);
  op->children.push_back(std::move(child));
  op->predicate = std::move(predicate);
  return op;
}

LogicalOpPtr MakeProject(LogicalOpPtr child, std::vector<ScalarExprPtr> exprs,
                         std::vector<int> out_cols) {
  auto op = NewOp(LogicalOpKind::kProject);
  op->children.push_back(std::move(child));
  op->exprs = std::move(exprs);
  op->project_cols = std::move(out_cols);
  return op;
}

LogicalOpPtr MakeJoin(JoinType type, LogicalOpPtr left, LogicalOpPtr right,
                      ScalarExprPtr predicate) {
  auto op = NewOp(LogicalOpKind::kJoin);
  op->join_type = type;
  op->children.push_back(std::move(left));
  op->children.push_back(std::move(right));
  op->predicate = std::move(predicate);
  return op;
}

LogicalOpPtr MakeAggregate(LogicalOpPtr child, std::vector<int> group_by,
                           std::vector<AggregateItem> aggregates) {
  auto op = NewOp(LogicalOpKind::kAggregate);
  op->children.push_back(std::move(child));
  op->group_by = std::move(group_by);
  op->aggregates = std::move(aggregates);
  return op;
}

LogicalOpPtr MakeUnionAll(std::vector<LogicalOpPtr> children) {
  auto op = NewOp(LogicalOpKind::kUnionAll);
  op->children = std::move(children);
  return op;
}

LogicalOpPtr MakeTop(LogicalOpPtr child, int64_t limit) {
  auto op = NewOp(LogicalOpKind::kTop);
  op->children.push_back(std::move(child));
  op->limit = limit;
  return op;
}

LogicalOpPtr MakeConstTable(std::vector<Row> rows, std::vector<int> cols,
                            std::vector<DataType> types) {
  auto op = NewOp(LogicalOpKind::kConstTable);
  op->const_rows = std::move(rows);
  op->const_cols = std::move(cols);
  op->const_types = std::move(types);
  return op;
}

LogicalOpPtr MakeEmpty(std::vector<int> cols, std::vector<DataType> types) {
  auto op = NewOp(LogicalOpKind::kEmpty);
  op->const_cols = std::move(cols);
  op->const_types = std::move(types);
  return op;
}

LogicalOpPtr MakeFullTextGet(std::string table, std::string query,
                             int key_col, int rank_col) {
  auto op = NewOp(LogicalOpKind::kFullTextGet);
  op->ft_table = std::move(table);
  op->ft_query = std::move(query);
  op->ft_key_col = key_col;
  op->ft_rank_col = rank_col;
  return op;
}

}  // namespace dhqp
