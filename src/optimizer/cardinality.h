#ifndef DHQP_OPTIMIZER_CARDINALITY_H_
#define DHQP_OPTIMIZER_CARDINALITY_H_

#include <vector>

#include "src/optimizer/context.h"
#include "src/optimizer/logical.h"
#include "src/optimizer/properties.h"

namespace dhqp {

/// Estimates the output cardinality of one logical operator given its
/// children's group properties. Uses histograms (local or shipped from
/// remote providers, §3.2.4) when available, falling back to textbook
/// selectivity guesses otherwise — the gap between the two is what the
/// statistics experiment (E3) measures.
double EstimateCardinality(const LogicalOp& op,
                           const std::vector<const LogicalProps*>& children,
                           OptimizerContext* ctx);

/// Estimated selectivity in [0, 1] of a predicate against a child relation.
double EstimateSelectivity(const ScalarExprPtr& pred,
                           const LogicalProps& child, OptimizerContext* ctx);

}  // namespace dhqp

#endif  // DHQP_OPTIMIZER_CARDINALITY_H_
