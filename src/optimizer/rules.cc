#include "src/optimizer/rules.h"

#include <algorithm>
#include <set>

namespace dhqp {

const char* OptPhaseName(OptPhase phase) {
  switch (phase) {
    case OptPhase::kTransactionProcessing:
      return "transaction-processing";
    case OptPhase::kQuickPlan:
      return "quick-plan";
    case OptPhase::kFull:
      return "full-optimization";
  }
  return "?";
}

namespace {

bool IsReorderableJoin(const LogicalOp& op) {
  return op.kind == LogicalOpKind::kJoin &&
         (op.join_type == JoinType::kInner ||
          op.join_type == JoinType::kCross);
}

bool CoveredByCols(const ScalarExprPtr& expr, const std::set<int>& cols) {
  std::set<int> used;
  expr->CollectColumns(&used);
  for (int c : used) {
    if (cols.count(c) == 0) return false;
  }
  return true;
}

/// Join commutativity: A ⋈ B ≡ B ⋈ A (§4.1.1's example exploration rule).
/// Memo deduplication guarantees applying it twice costs nothing.
class JoinCommuteRule : public Rule {
 public:
  const char* name() const override { return "JoinCommute"; }
  int promise() const override { return 2; }
  OptPhase min_phase() const override { return OptPhase::kFull; }
  bool Matches(const LogicalOp& op) const override {
    return IsReorderableJoin(op);
  }
  int Apply(Memo* memo, int gid, const GroupExpr& expr,
            OptimizerContext* ctx) const override {
    if (!ctx->options().enable_join_reorder) return 0;
    bool added = false;
    memo->InsertExpr(expr.op, {expr.children[1], expr.children[0]}, gid,
                     &added);
    return added ? 1 : 0;
  }
};

/// Left associativity: (A ⋈ B) ⋈ C  ≡  A ⋈ (B ⋈ C), redistributing the
/// combined conjuncts to the lowest covering join. Together with commute
/// this spans the bushy join space.
class JoinAssocRule : public Rule {
 public:
  const char* name() const override { return "JoinAssociate"; }
  int promise() const override { return 1; }
  OptPhase min_phase() const override { return OptPhase::kFull; }
  bool Matches(const LogicalOp& op) const override {
    return IsReorderableJoin(op);
  }
  int Apply(Memo* memo, int gid, const GroupExpr& expr,
            OptimizerContext* ctx) const override {
    if (!ctx->options().enable_join_reorder) return 0;
    int added_count = 0;
    int left_gid = expr.children[0];
    int c_gid = expr.children[1];
    // Enumerate join alternatives in the left group (memo pattern binding).
    // Copy the expr list shallowly: Apply may append to the group.
    size_t n = memo->group(left_gid).exprs.size();
    for (size_t i = 0; i < n; ++i) {
      GroupExpr left = memo->group(left_gid).exprs[i];
      if (!IsReorderableJoin(*left.op)) continue;
      int a_gid = left.children[0];
      int b_gid = left.children[1];

      std::vector<ScalarExprPtr> conjuncts;
      SplitConjuncts(left.op->predicate, &conjuncts);
      SplitConjuncts(expr.op->predicate, &conjuncts);

      std::set<int> bc_cols;
      for (int c : memo->group(b_gid).props.output_cols) bc_cols.insert(c);
      for (int c : memo->group(c_gid).props.output_cols) bc_cols.insert(c);

      std::vector<ScalarExprPtr> inner_preds, outer_preds;
      for (const ScalarExprPtr& c : conjuncts) {
        if (CoveredByCols(c, bc_cols)) {
          inner_preds.push_back(c);
        } else {
          outer_preds.push_back(c);
        }
      }
      LogicalOpPtr bc = MakeJoin(
          inner_preds.empty() ? JoinType::kCross : JoinType::kInner, nullptr,
          nullptr, MergeConjuncts(inner_preds));
      bool added = false;
      int bc_gid = memo->InsertExpr(bc, {b_gid, c_gid}, -1, &added);
      LogicalOpPtr outer = MakeJoin(
          outer_preds.empty() ? JoinType::kCross : JoinType::kInner, nullptr,
          nullptr, MergeConjuncts(outer_preds));
      bool added2 = false;
      memo->InsertExpr(outer, {a_gid, bc_gid}, gid, &added2);
      added_count += (added ? 1 : 0) + (added2 ? 1 : 0);
    }
    return added_count;
  }
};

/// CONTAINS-to-full-text-index rewrite (§2.3, Fig 2): a filter whose
/// predicate includes CONTAINS(col, 'q') over a column with a full-text
/// catalog becomes a semi join against the search service's (key, rank)
/// rowset, joined back to the base table on the key column.
class ContainsToFullTextRule : public Rule {
 public:
  const char* name() const override { return "ContainsToFullTextJoin"; }
  int promise() const override { return 3; }
  OptPhase min_phase() const override { return OptPhase::kQuickPlan; }
  bool Matches(const LogicalOp& op) const override {
    return op.kind == LogicalOpKind::kFilter && op.predicate != nullptr;
  }
  int Apply(Memo* memo, int gid, const GroupExpr& expr,
            OptimizerContext* ctx) const override {
    if (!ctx->options().enable_fulltext_index) return 0;
    std::vector<ScalarExprPtr> conjuncts;
    SplitConjuncts(expr.op->predicate, &conjuncts);
    for (size_t i = 0; i < conjuncts.size(); ++i) {
      const ScalarExprPtr& c = conjuncts[i];
      if (c->kind != ScalarKind::kFunc || c->op != "CONTAINS") continue;
      int text_col = c->args[0]->column_id;
      const ColumnOrigin* origin = ctx->FindOrigin(text_col);
      if (origin == nullptr) continue;
      const FullTextCatalogInfo* ft =
          ctx->FindFullTextCatalog(origin->table, origin->column);
      if (ft == nullptr) continue;
      // The base table's key column must flow out of the child.
      int key_col = -1;
      for (int col : memo->group(expr.children[0]).props.output_cols) {
        const ColumnOrigin* o = ctx->FindOrigin(col);
        if (o != nullptr && o->source_id == origin->source_id &&
            EqualsIgnoreCase(o->table, origin->table) &&
            EqualsIgnoreCase(o->column, ft->key_column)) {
          key_col = col;
          break;
        }
      }
      if (key_col < 0) continue;
      DataType key_type = ctx->registry()->TypeOf(key_col);
      int ft_key = ctx->registry()->Add("", "ft_key", key_type);
      int ft_rank = ctx->registry()->Add("", "ft_rank", DataType::kDouble);
      const std::string& query = c->args[1]->literal.string_value();

      LogicalOpPtr ft_get =
          MakeFullTextGet(ft->table, query, ft_key, ft_rank);
      bool added = false;
      int ft_gid = memo->InsertExpr(ft_get, {}, -1, &added);

      ScalarExprPtr join_pred = MakeComparison(
          "=", MakeColumn(key_col, key_type, "key"),
          MakeColumn(ft_key, key_type, "ft_key"));
      LogicalOpPtr semi =
          MakeJoin(JoinType::kSemi, nullptr, nullptr, std::move(join_pred));

      // Remaining conjuncts stay as a filter above the semi join.
      std::vector<ScalarExprPtr> rest;
      for (size_t k = 0; k < conjuncts.size(); ++k) {
        if (k != i) rest.push_back(conjuncts[k]);
      }
      int count = added ? 1 : 0;
      if (rest.empty()) {
        bool a2 = false;
        memo->InsertExpr(semi, {expr.children[0], ft_gid}, gid, &a2);
        count += a2 ? 1 : 0;
      } else {
        bool a2 = false;
        int semi_gid =
            memo->InsertExpr(semi, {expr.children[0], ft_gid}, -1, &a2);
        LogicalOpPtr filter = MakeFilter(nullptr, MergeConjuncts(rest));
        bool a3 = false;
        memo->InsertExpr(filter, {semi_gid}, gid, &a3);
        count += (a2 ? 1 : 0) + (a3 ? 1 : 0);
      }
      return count;  // One CONTAINS conjunct per application is enough.
    }
    return 0;
  }
};

}  // namespace

const std::vector<std::unique_ptr<Rule>>& ExplorationRules() {
  static const auto* kRules = [] {
    auto* rules = new std::vector<std::unique_ptr<Rule>>();
    rules->push_back(std::make_unique<ContainsToFullTextRule>());
    rules->push_back(std::make_unique<JoinCommuteRule>());
    rules->push_back(std::make_unique<JoinAssocRule>());
    std::stable_sort(rules->begin(), rules->end(),
                     [](const auto& a, const auto& b) {
                       return a->promise() > b->promise();
                     });
    return rules;
  }();
  return *kRules;
}

}  // namespace dhqp
