#include "src/optimizer/memo.h"

#include "src/optimizer/cardinality.h"
#include "src/optimizer/constraint.h"

namespace dhqp {

namespace {

/// Locality lattice: kAnyLocality joins with anything (constant tables),
/// two different concrete sources combine to kMixedLocality.
constexpr int kAnyLocality = -3;

int CombineLocality(int a, int b) {
  if (a == kAnyLocality) return b;
  if (b == kAnyLocality) return a;
  if (a == b) return a;
  return kMixedLocality;
}

}  // namespace

int Memo::InsertTree(const LogicalOpPtr& tree) {
  std::vector<int> children;
  children.reserve(tree->children.size());
  for (const LogicalOpPtr& child : tree->children) {
    children.push_back(InsertTree(child));
  }
  bool added = false;
  return InsertExpr(tree, std::move(children), -1, &added);
}

int Memo::InsertExpr(const LogicalOpPtr& payload, std::vector<int> children,
                     int target_group, bool* added) {
  std::string fp = payload->LocalFingerprint();
  for (int c : children) fp += "|" + std::to_string(c);
  auto it = index_.find(fp);
  if (it != index_.end()) {
    *added = false;
    return it->second;
  }
  int gid;
  if (target_group >= 0) {
    gid = target_group;
  } else {
    groups_.push_back(std::make_unique<Group>());
    gid = static_cast<int>(groups_.size()) - 1;
    groups_.back()->props = ComputeProps(*payload, children);
  }
  index_[fp] = gid;
  group(gid).exprs.push_back(GroupExpr{payload, std::move(children), 0});
  ++num_exprs_;
  *added = true;
  return gid;
}

LogicalProps Memo::ComputeProps(const LogicalOp& payload,
                                const std::vector<int>& children) const {
  LogicalProps props;
  std::vector<const LogicalProps*> child_props;
  child_props.reserve(children.size());
  for (int c : children) child_props.push_back(&group(c).props);

  // Output columns.
  switch (payload.kind) {
    case LogicalOpKind::kGet:
      props.output_cols = payload.columns;
      break;
    case LogicalOpKind::kFilter:
    case LogicalOpKind::kTop:
      props.output_cols = child_props[0]->output_cols;
      break;
    case LogicalOpKind::kProject:
      props.output_cols = payload.project_cols;
      break;
    case LogicalOpKind::kJoin:
      if (payload.join_type == JoinType::kSemi ||
          payload.join_type == JoinType::kAnti) {
        props.output_cols = child_props[0]->output_cols;
      } else {
        props.output_cols = child_props[0]->output_cols;
        props.output_cols.insert(props.output_cols.end(),
                                 child_props[1]->output_cols.begin(),
                                 child_props[1]->output_cols.end());
      }
      break;
    case LogicalOpKind::kAggregate:
      props.output_cols = payload.group_by;
      for (const AggregateItem& a : payload.aggregates) {
        props.output_cols.push_back(a.output_col);
      }
      break;
    case LogicalOpKind::kUnionAll:
      props.output_cols = child_props[0]->output_cols;
      break;
    case LogicalOpKind::kConstTable:
    case LogicalOpKind::kEmpty:
      props.output_cols = payload.const_cols;
      break;
    case LogicalOpKind::kFullTextGet:
      props.output_cols = {payload.ft_key_col, payload.ft_rank_col};
      break;
  }

  // Locality (§4.1.2): the basis of the join-locality grouping and the
  // build-remote-query rule.
  switch (payload.kind) {
    case LogicalOpKind::kGet:
      props.locality = payload.table.source_id;
      break;
    case LogicalOpKind::kConstTable:
    case LogicalOpKind::kEmpty:
      props.locality = kAnyLocality;
      break;
    case LogicalOpKind::kFullTextGet:
      props.locality = kMixedLocality;  // Never decoded into remote SQL.
      break;
    default: {
      int loc = kAnyLocality;
      for (const LogicalProps* c : child_props) {
        loc = CombineLocality(loc, c->locality);
      }
      props.locality = loc == kAnyLocality ? kLocalSource : loc;
      break;
    }
  }

  // Constraint property framework (§4.1.5).
  switch (payload.kind) {
    case LogicalOpKind::kGet: {
      for (const CheckConstraint& check : payload.table.checks) {
        int ord = payload.table.metadata.schema.FindColumn(check.column);
        if (ord >= 0) {
          int col = payload.columns[static_cast<size_t>(ord)];
          auto it = props.domains.find(col);
          if (it == props.domains.end()) {
            props.domains[col] = check.domain;
          } else {
            it->second = it->second.Intersect(check.domain);
          }
        }
      }
      break;
    }
    case LogicalOpKind::kFilter: {
      props.domains = child_props[0]->domains;
      IntersectDomains(&props.domains,
                       ExtractPredicateDomains(payload.predicate));
      break;
    }
    case LogicalOpKind::kProject: {
      for (size_t i = 0; i < payload.exprs.size(); ++i) {
        if (payload.exprs[i]->kind == ScalarKind::kColumn) {
          auto it =
              child_props[0]->domains.find(payload.exprs[i]->column_id);
          if (it != child_props[0]->domains.end()) {
            props.domains[payload.project_cols[i]] = it->second;
          }
        }
      }
      break;
    }
    case LogicalOpKind::kJoin: {
      props.domains = child_props[0]->domains;
      if (payload.join_type != JoinType::kSemi &&
          payload.join_type != JoinType::kAnti) {
        for (const auto& [col, dom] : child_props[1]->domains) {
          props.domains[col] = dom;
        }
      }
      if (payload.join_type == JoinType::kInner ||
          payload.join_type == JoinType::kSemi) {
        IntersectDomains(&props.domains,
                         ExtractPredicateDomains(payload.predicate));
      }
      break;
    }
    case LogicalOpKind::kAggregate: {
      for (int g : payload.group_by) {
        auto it = child_props[0]->domains.find(g);
        if (it != child_props[0]->domains.end()) props.domains[g] = it->second;
      }
      break;
    }
    case LogicalOpKind::kUnionAll: {
      // Positional union across branches; a column is restricted only if
      // every branch restricts its positional counterpart.
      const std::vector<int>& out = child_props[0]->output_cols;
      for (size_t i = 0; i < out.size(); ++i) {
        IntervalSet merged = IntervalSet::None();
        bool all_known = true;
        for (size_t k = 0; k < child_props.size(); ++k) {
          const std::vector<int>& cols = child_props[k]->output_cols;
          if (i >= cols.size()) {
            all_known = false;
            break;
          }
          auto it = child_props[k]->domains.find(cols[i]);
          if (it == child_props[k]->domains.end()) {
            all_known = false;
            break;
          }
          merged = merged.Union(it->second);
        }
        if (all_known) props.domains[out[i]] = std::move(merged);
      }
      break;
    }
    case LogicalOpKind::kTop:
      props.domains = child_props[0]->domains;
      break;
    default:
      break;
  }

  // Contradictions: empty domain, the Empty operator, or a contradicted
  // input (except UnionAll, which only dies when all branches do).
  props.contradiction =
      payload.kind == LogicalOpKind::kEmpty || HasContradiction(props.domains);
  if (payload.kind == LogicalOpKind::kAggregate && payload.group_by.empty()) {
    // A scalar aggregate over an empty input still produces one row
    // (COUNT(*) = 0), so contradictions do not propagate through it.
    props.contradiction = false;
    props.cardinality = 1.0;
    return props;
  }
  if (!props.contradiction && !child_props.empty()) {
    if (payload.kind == LogicalOpKind::kUnionAll) {
      bool all = true;
      for (const LogicalProps* c : child_props) all &= c->contradiction;
      props.contradiction = all;
    } else if (payload.kind == LogicalOpKind::kJoin &&
               (payload.join_type == JoinType::kLeftOuter ||
                payload.join_type == JoinType::kAnti)) {
      // Outer/anti joins survive an empty right side.
      props.contradiction = child_props[0]->contradiction;
    } else {
      for (const LogicalProps* c : child_props) {
        props.contradiction |= c->contradiction;
      }
    }
  }

  props.cardinality =
      props.contradiction
          ? 0.0
          : EstimateCardinality(payload, child_props, ctx_);
  return props;
}

LogicalOpPtr Memo::ExtractTree(int group_id) const {
  const GroupExpr& expr = group(group_id).exprs.front();
  auto copy = std::make_shared<LogicalOp>(*expr.op);
  copy->children.clear();
  for (int c : expr.children) copy->children.push_back(ExtractTree(c));
  return copy;
}

std::string Memo::ToString() const {
  std::string out;
  for (size_t g = 0; g < groups_.size(); ++g) {
    out += "group " + std::to_string(g) +
           " (card=" + std::to_string(groups_[g]->props.cardinality) +
           ", loc=" + std::to_string(groups_[g]->props.locality) + ")\n";
    for (const GroupExpr& e : groups_[g]->exprs) {
      out += "  " + e.op->LocalFingerprint() + " [";
      for (size_t i = 0; i < e.children.size(); ++i) {
        if (i) out += ",";
        out += std::to_string(e.children[i]);
      }
      out += "]\n";
    }
  }
  return out;
}

}  // namespace dhqp
