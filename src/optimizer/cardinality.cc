#include "src/optimizer/cardinality.h"

#include <algorithm>
#include <cmath>

namespace dhqp {

namespace {

// Textbook default selectivities when no statistics apply.
constexpr double kDefaultEqualitySel = 0.01;
constexpr double kDefaultRangeSel = 0.33;
constexpr double kDefaultLikeSel = 0.1;
constexpr double kDefaultContainsSel = 0.02;
constexpr double kDefaultSemiJoinSel = 0.5;

double Clamp01(double x) { return std::min(1.0, std::max(0.0, x)); }

// Selectivity of a single (non-AND) conjunct.
double ConjunctSelectivity(const ScalarExprPtr& pred, const LogicalProps& child,
                           OptimizerContext* ctx) {
  double rows = std::max(child.cardinality, 1.0);
  if (pred->kind == ScalarKind::kLiteral) {
    if (pred->literal.is_null()) return 0.0;
    if (pred->literal.type() == DataType::kBool) {
      return pred->literal.bool_value() ? 1.0 : 0.0;
    }
    return 1.0;
  }
  if (pred->kind == ScalarKind::kBinary && pred->op == "OR") {
    double a = ConjunctSelectivity(pred->args[0], child, ctx);
    double b = ConjunctSelectivity(pred->args[1], child, ctx);
    return Clamp01(a + b - a * b);
  }
  if (pred->kind == ScalarKind::kUnary && pred->op == "NOT") {
    return Clamp01(1.0 - ConjunctSelectivity(pred->args[0], child, ctx));
  }
  if (pred->kind == ScalarKind::kLike) {
    return kDefaultLikeSel;
  }
  if (pred->kind == ScalarKind::kIsNull) {
    if (pred->args[0]->kind == ScalarKind::kColumn) {
      const ColumnStatistics* stats = ctx->StatsFor(pred->args[0]->column_id);
      if (stats != nullptr && stats->row_count > 0) {
        double frac = stats->null_count / stats->row_count;
        return pred->negated ? Clamp01(1 - frac) : Clamp01(frac);
      }
    }
    return pred->negated ? 0.9 : 0.1;
  }
  if (pred->kind == ScalarKind::kFunc && pred->op == "CONTAINS") {
    return kDefaultContainsSel;
  }
  if (pred->kind == ScalarKind::kInList &&
      pred->args[0]->kind == ScalarKind::kColumn) {
    const ColumnStatistics* stats = ctx->StatsFor(pred->args[0]->column_id);
    double total = 0;
    for (size_t i = 1; i < pred->args.size(); ++i) {
      if (stats != nullptr && pred->args[i]->kind == ScalarKind::kLiteral) {
        total += stats->EstimateEquals(pred->args[i]->literal) /
                 std::max(stats->row_count, 1.0);
      } else {
        total += kDefaultEqualitySel;
      }
    }
    double sel = Clamp01(total);
    return pred->negated ? Clamp01(1 - sel) : sel;
  }
  if (pred->kind == ScalarKind::kBinary) {
    const std::string& op = pred->op;
    bool is_cmp = op == "=" || op == "<>" || op == "<" || op == "<=" ||
                  op == ">" || op == ">=";
    if (!is_cmp) return 1.0;
    // Normalize to column-on-left.
    ScalarExprPtr col = pred->args[0];
    ScalarExprPtr other = pred->args[1];
    std::string norm_op = op;
    if (col->kind != ScalarKind::kColumn &&
        other->kind == ScalarKind::kColumn) {
      std::swap(col, other);
      if (norm_op == "<") norm_op = ">";
      else if (norm_op == "<=") norm_op = ">=";
      else if (norm_op == ">") norm_op = "<";
      else if (norm_op == ">=") norm_op = "<=";
    }
    if (col->kind != ScalarKind::kColumn) return kDefaultRangeSel;

    // Column vs column within one relation.
    if (other->kind == ScalarKind::kColumn) {
      return norm_op == "=" ? kDefaultEqualitySel : kDefaultRangeSel;
    }

    const ColumnStatistics* stats = ctx->StatsFor(col->column_id);
    if (other->kind == ScalarKind::kLiteral && !other->literal.is_null() &&
        stats != nullptr && stats->row_count > 0) {
      const Value& v = other->literal;
      double est;
      if (norm_op == "=") {
        est = stats->EstimateEquals(v);
      } else if (norm_op == "<>") {
        est = stats->row_count - stats->EstimateEquals(v);
      } else if (norm_op == "<") {
        est = stats->EstimateRange(nullptr, false, &v, false);
      } else if (norm_op == "<=") {
        est = stats->EstimateRange(nullptr, false, &v, true);
      } else if (norm_op == ">") {
        est = stats->EstimateRange(&v, false, nullptr, false);
      } else {  // >=
        est = stats->EstimateRange(&v, true, nullptr, false);
      }
      return Clamp01(est / stats->row_count);
    }
    // No usable histogram: distinct-count model for equality, defaults
    // otherwise.
    if (norm_op == "=") {
      if (stats != nullptr && stats->distinct_count > 0) {
        return Clamp01(1.0 / stats->distinct_count);
      }
      return std::min(kDefaultEqualitySel, 10.0 / rows);
    }
    if (norm_op == "<>") return 0.9;
    return kDefaultRangeSel;
  }
  return 1.0;
}

// Distinct count of a column, from statistics or a fallback guess.
double DistinctOf(int col_id, double default_rows, OptimizerContext* ctx) {
  const ColumnStatistics* stats = ctx->StatsFor(col_id);
  if (stats != nullptr && stats->distinct_count > 0) {
    return stats->distinct_count;
  }
  return std::max(1.0, default_rows * 0.1);
}

}  // namespace

double EstimateSelectivity(const ScalarExprPtr& pred,
                           const LogicalProps& child, OptimizerContext* ctx) {
  if (pred == nullptr) return 1.0;
  std::vector<ScalarExprPtr> conjuncts;
  SplitConjuncts(pred, &conjuncts);
  double sel = 1.0;
  for (const ScalarExprPtr& c : conjuncts) {
    sel *= ConjunctSelectivity(c, child, ctx);
  }
  return Clamp01(sel);
}

double EstimateCardinality(const LogicalOp& op,
                           const std::vector<const LogicalProps*>& children,
                           OptimizerContext* ctx) {
  switch (op.kind) {
    case LogicalOpKind::kGet:
      return std::max(op.table.metadata.cardinality, 0.0);
    case LogicalOpKind::kFilter:
      return children[0]->cardinality *
             EstimateSelectivity(op.predicate, *children[0], ctx);
    case LogicalOpKind::kProject:
      return children[0]->cardinality;
    case LogicalOpKind::kTop:
      return std::min(static_cast<double>(op.limit),
                      children[0]->cardinality);
    case LogicalOpKind::kJoin: {
      double left = std::max(children[0]->cardinality, 0.0);
      double right = std::max(children[1]->cardinality, 0.0);
      if (op.join_type == JoinType::kSemi || op.join_type == JoinType::kAnti) {
        return left * kDefaultSemiJoinSel;
      }
      if (op.join_type == JoinType::kCross || op.predicate == nullptr) {
        return left * right;
      }
      // Equi-join selectivity 1/max(ndv_l, ndv_r) per equi key pair;
      // other conjuncts use generic selectivities against the cross product.
      std::vector<ScalarExprPtr> conjuncts;
      SplitConjuncts(op.predicate, &conjuncts);
      double card = left * right;
      LogicalProps cross;
      cross.cardinality = card;
      for (const ScalarExprPtr& c : conjuncts) {
        if (c->kind == ScalarKind::kBinary && c->op == "=" &&
            c->args[0]->kind == ScalarKind::kColumn &&
            c->args[1]->kind == ScalarKind::kColumn) {
          double ndv_l = DistinctOf(c->args[0]->column_id, left, ctx);
          double ndv_r = DistinctOf(c->args[1]->column_id, right, ctx);
          card /= std::max(1.0, std::max(ndv_l, ndv_r));
        } else {
          card *= ConjunctSelectivity(c, cross, ctx);
        }
      }
      double floor = op.join_type == JoinType::kLeftOuter ? left : 0.0;
      return std::max(card, floor);
    }
    case LogicalOpKind::kAggregate: {
      double in = std::max(children[0]->cardinality, 0.0);
      if (op.group_by.empty()) return 1.0;
      double groups = 1.0;
      for (int g : op.group_by) {
        groups *= DistinctOf(g, in, ctx);
        if (groups > in) break;
      }
      return std::max(1.0, std::min(groups, in));
    }
    case LogicalOpKind::kUnionAll: {
      double total = 0;
      for (const LogicalProps* c : children) total += c->cardinality;
      return total;
    }
    case LogicalOpKind::kConstTable:
      return static_cast<double>(op.const_rows.size());
    case LogicalOpKind::kEmpty:
      return 0.0;
    case LogicalOpKind::kFullTextGet: {
      // The search service returns the matching keys; rough guess scaled by
      // the base table size when known.
      return 100.0;
    }
  }
  return 1.0;
}

}  // namespace dhqp
