#include "src/optimizer/context.h"

namespace dhqp {

const ColumnStatistics* OptimizerContext::StatsFor(int col_id) {
  auto cached = stats_cache_.find(col_id);
  if (cached != stats_cache_.end()) {
    return cached->second.has_value() ? &*cached->second : nullptr;
  }
  const ColumnOrigin* origin = FindOrigin(col_id);
  if (origin == nullptr) {
    stats_cache_[col_id] = std::nullopt;
    return nullptr;
  }
  if (origin->source_id != kLocalSource && !options_.enable_remote_statistics) {
    // Ablation E3: pretend the provider exposes no histogram rowsets.
    stats_cache_[col_id] = std::nullopt;
    return nullptr;
  }
  auto stats =
      catalog_->GetStatistics(origin->source_id, origin->table, origin->column);
  if (!stats.ok()) {
    stats_cache_[col_id] = std::nullopt;
    return nullptr;
  }
  stats_cache_[col_id] = std::move(stats).value();
  return &*stats_cache_[col_id];
}

void OptimizerContext::AddFullTextCatalog(FullTextCatalogInfo info) {
  std::string key =
      ToLowerCopy(info.table) + "." + ToLowerCopy(info.text_column);
  fulltext_[key] = std::move(info);
}

const FullTextCatalogInfo* OptimizerContext::FindFullTextCatalog(
    const std::string& table, const std::string& column) const {
  auto it = fulltext_.find(ToLowerCopy(table) + "." + ToLowerCopy(column));
  return it == fulltext_.end() ? nullptr : &it->second;
}

}  // namespace dhqp
