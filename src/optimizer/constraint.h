#ifndef DHQP_OPTIMIZER_CONSTRAINT_H_
#define DHQP_OPTIMIZER_CONSTRAINT_H_

#include <map>

#include "src/common/interval.h"
#include "src/sql/bound_expr.h"

namespace dhqp {

/// The constraint property framework (§4.1.5): derives column-domain
/// restrictions from predicates and CHECK constraints, powering static
/// pruning ("infer if a plan sub-tree could produce any results") and
/// startup-filter synthesis for parameterized queries.

/// Extracts the domain restrictions a predicate imposes on columns it
/// compares against literals. Handles comparisons (either operand order),
/// IN lists, IS NULL (no restriction), AND (intersection) and OR (union
/// when both sides restrict; otherwise no restriction). Parameterized
/// comparisons impose nothing (their pruning happens at startup time).
/// Domains for unrestricted columns are absent from the result.
std::map<int, IntervalSet> ExtractPredicateDomains(const ScalarExprPtr& pred);

/// Intersects `update` into `domains` in place.
void IntersectDomains(std::map<int, IntervalSet>* domains,
                      const std::map<int, IntervalSet>& update);

/// True if any domain is empty — the subtree provably yields no rows and
/// can be reduced to a logical empty table (static pruning).
bool HasContradiction(const std::map<int, IntervalSet>& domains);

/// Builds a column-free startup predicate from one parameterized conjunct
/// (`col op @param` in either operand order) against the known domain of
/// `col`. Returns null when the conjunct cannot prune (not of that shape, or
/// the domain is unbounded on the relevant side). Example (§4.1.5): column
/// domain (50, +inf] and predicate `CustomerId = @customerId` yield
/// `STARTUP(@customerId > 50)`.
ScalarExprPtr BuildStartupPredicate(const ScalarExprPtr& conjunct,
                                    const std::map<int, IntervalSet>& domains);

/// Renders `value_expr ∈ set` as a boolean expression (OR over intervals).
/// Returns null for the full domain (always true has no useful predicate).
ScalarExprPtr IntervalSetToPredicate(const ScalarExprPtr& value_expr,
                                     const IntervalSet& set);

}  // namespace dhqp

#endif  // DHQP_OPTIMIZER_CONSTRAINT_H_
