#ifndef DHQP_OPTIMIZER_CONTEXT_H_
#define DHQP_OPTIMIZER_CONTEXT_H_

#include <map>
#include <optional>
#include <string>

#include "src/catalog/catalog.h"
#include "src/sql/binder.h"

namespace dhqp {

/// Where a column id came from: used to fetch statistics and to decode
/// remote SQL.
struct ColumnOrigin {
  int source_id = kLocalSource;
  std::string table;
  std::string column;
};

/// A registered full-text catalog: CONTAINS over (table, text_column) can be
/// answered by the search service, returning (key_column, rank) rowsets
/// (§2.3).
struct FullTextCatalogInfo {
  std::string table;
  std::string key_column;
  std::string text_column;
  std::string catalog_name;
};

/// Optimizer feature toggles and phase thresholds. The defaults reproduce
/// the paper's system; the toggles exist so benches can ablate individual
/// design choices (remote statistics, spools, parameterization, ...).
struct OptimizerOptions {
  bool enable_join_reorder = true;      ///< Commutativity/associativity rules.
  bool enable_remote_pushdown = true;   ///< "Build remote query" rule.
  bool enable_parameterization = true;  ///< Remote parameterization rule.
  bool enable_spool_enforcer = true;    ///< Spool over remote ops (§4.1.4).
  bool enable_remote_statistics = true; ///< Use remote histograms (§3.2.4).
  bool enable_startup_filters = true;   ///< Runtime pruning (§4.1.5).
  bool enable_static_pruning = true;    ///< Compile-time contradiction prune.
  bool enable_locality_grouping = true; ///< Join grouping by locality (§4.1.2).
  bool enable_index_paths = true;       ///< Local/remote index access paths.
  bool enable_fulltext_index = true;    ///< CONTAINS via the search service.

  /// Multi-phase search (§4.1.1): transaction-processing, quick plan, full
  /// optimization. When false, a single full pass runs.
  bool multi_phase = true;
  double tp_phase_cost_threshold = 500;
  double quick_phase_cost_threshold = 100000;

  int max_exploration_rounds = 12;  ///< Fixpoint guard per group.

  /// Maximum degree of parallelism for intra-query parallel plans. The
  /// engine plumbs ExecOptions::dop here (making dop part of the plan-cache
  /// key); <= 1 disables the exchange enforcer entirely. Only fully-local
  /// subtrees parallelize — remote subtrees stay serial so wire-message
  /// ordering (and fault ordinals) are identical at every dop.
  int max_dop = 1;

  /// Hard cap on memo size: once the memo holds this many expressions,
  /// exploration stops adding alternatives (implementation still covers
  /// everything present). Guards the full phase against combinatorial
  /// blow-up on wide join graphs.
  int max_memo_exprs = 20000;
};

/// Statistics the optimizer gathered about its own run, reported by EXPLAIN
/// and the optimizer-phase bench (E7).
struct OptimizerRunStats {
  int phases_run = 0;
  int groups = 0;
  int group_exprs = 0;
  int rules_applied = 0;
  double best_cost = 0;
  std::string phase_name;
};

/// Shared state for one optimization: catalog access, column metadata,
/// options, and memoized statistics lookups.
class OptimizerContext {
 public:
  OptimizerContext(Catalog* catalog, ColumnRegistry* registry,
                   OptimizerOptions options)
      : catalog_(catalog), registry_(registry), options_(std::move(options)) {}

  Catalog* catalog() const { return catalog_; }
  ColumnRegistry* registry() const { return registry_; }
  const OptimizerOptions& options() const { return options_; }

  /// Registers the origin of a Get column (called while seeding the memo).
  void AddOrigin(int col_id, ColumnOrigin origin) {
    origins_[col_id] = std::move(origin);
  }
  const ColumnOrigin* FindOrigin(int col_id) const {
    auto it = origins_.find(col_id);
    return it == origins_.end() ? nullptr : &it->second;
  }

  /// Column statistics for estimation; respects the remote-statistics
  /// ablation toggle. Returns nullptr when unavailable.
  const ColumnStatistics* StatsFor(int col_id);

  /// Full-text catalog registration and lookup (keyed by lower-cased
  /// "table.column" of the text column).
  void AddFullTextCatalog(FullTextCatalogInfo info);
  const FullTextCatalogInfo* FindFullTextCatalog(
      const std::string& table, const std::string& column) const;

  OptimizerRunStats* run_stats() { return &run_stats_; }

 private:
  Catalog* catalog_;
  ColumnRegistry* registry_;
  OptimizerOptions options_;
  std::map<int, ColumnOrigin> origins_;
  std::map<int, std::optional<ColumnStatistics>> stats_cache_;
  std::map<std::string, FullTextCatalogInfo> fulltext_;
  OptimizerRunStats run_stats_;
};

}  // namespace dhqp

#endif  // DHQP_OPTIMIZER_CONTEXT_H_
