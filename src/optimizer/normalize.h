#ifndef DHQP_OPTIMIZER_NORMALIZE_H_
#define DHQP_OPTIMIZER_NORMALIZE_H_

#include "src/optimizer/context.h"
#include "src/optimizer/logical.h"

namespace dhqp {

/// Normalization: the Simplification-rule phase (§4.1.1 — "heuristic tree
/// rewrites, generally early in the optimization process"). Rewrites applied
/// here run once on the algebrized tree before memo insertion:
///
///  - filter collapse and conjunct pushdown (predicates move to the lowest
///    covering operator; conjuncts spanning a join become join predicates);
///  - predicate pushdown into UNION ALL branches (partitioned views), with
///    column re-mapping per branch;
///  - startup-filter synthesis: parameterized conjuncts pushed into a branch
///    whose CHECK-constraint domain can contradict them gain a column-free
///    guard filter, which the implementation phase turns into a physical
///    startup filter (§4.1.5 runtime pruning);
///  - locality join grouping (§4.1.2): inner-join components are reordered
///    so same-source tables are adjacent, exposing maximal remote subtrees
///    without full join reordering (important for the cheap phases).
LogicalOpPtr Normalize(const LogicalOpPtr& root, OptimizerContext* ctx);

}  // namespace dhqp

#endif  // DHQP_OPTIMIZER_NORMALIZE_H_
