#include "src/optimizer/optimizer.h"

#include <algorithm>
#include <optional>
#include <set>

#include "src/common/trace.h"
#include "src/optimizer/cardinality.h"

namespace dhqp {

namespace {

// Registers column origins for every Get in the tree (needed by cardinality
// estimation and the decoder before memo insertion).
void RegisterOrigins(const LogicalOpPtr& tree, OptimizerContext* ctx) {
  if (tree == nullptr) return;
  if (tree->kind == LogicalOpKind::kGet) {
    const Schema& schema = tree->table.metadata.schema;
    for (size_t i = 0; i < schema.num_columns(); ++i) {
      ctx->AddOrigin(tree->columns[i],
                     ColumnOrigin{tree->table.source_id,
                                  tree->table.metadata.name,
                                  schema.column(i).name});
    }
  }
  for (const LogicalOpPtr& child : tree->children) RegisterOrigins(child, ctx);
}

bool ExprCoveredBy(const ScalarExprPtr& expr, const std::vector<int>& cols) {
  std::set<int> used;
  expr->CollectColumns(&used);
  for (int c : used) {
    if (std::find(cols.begin(), cols.end(), c) == cols.end()) return false;
  }
  return true;
}

// Splits a join predicate into equi-key pairs (left expr, right expr) and a
// residual conjunction.
void SplitJoinPredicate(
    const ScalarExprPtr& pred, const std::vector<int>& left_cols,
    const std::vector<int>& right_cols,
    std::vector<std::pair<ScalarExprPtr, ScalarExprPtr>>* pairs,
    std::vector<ScalarExprPtr>* residual) {
  std::vector<ScalarExprPtr> conjuncts;
  SplitConjuncts(pred, &conjuncts);
  for (const ScalarExprPtr& c : conjuncts) {
    if (c->kind == ScalarKind::kBinary && c->op == "=") {
      const ScalarExprPtr& a = c->args[0];
      const ScalarExprPtr& b = c->args[1];
      if (ExprCoveredBy(a, left_cols) && ExprCoveredBy(b, right_cols)) {
        pairs->emplace_back(a, b);
        continue;
      }
      if (ExprCoveredBy(b, left_cols) && ExprCoveredBy(a, right_cols)) {
        pairs->emplace_back(b, a);
        continue;
      }
    }
    residual->push_back(c);
  }
}

// Matches index-sargable conjuncts against an index's key columns:
// an equality prefix plus optional bounds on the next key column.
struct SargMatch {
  RangeSpec spec;
  std::vector<ScalarExprPtr> consumed;
  std::vector<ScalarExprPtr> residual;
  bool usable = false;
};

bool IsConstOrParam(const ScalarExprPtr& e) {
  return e->kind == ScalarKind::kLiteral || e->kind == ScalarKind::kParam;
}

SargMatch MatchIndex(const std::vector<ScalarExprPtr>& conjuncts,
                     const std::vector<int>& key_col_ids) {
  SargMatch match;
  std::vector<bool> used(conjuncts.size(), false);
  for (size_t k = 0; k < key_col_ids.size(); ++k) {
    int key = key_col_ids[k];
    // Equality on this key column?
    bool eq_found = false;
    for (size_t i = 0; i < conjuncts.size() && !eq_found; ++i) {
      if (used[i]) continue;
      const ScalarExprPtr& c = conjuncts[i];
      if (c->kind != ScalarKind::kBinary || c->op != "=") continue;
      for (int side = 0; side < 2; ++side) {
        const ScalarExprPtr& col = c->args[static_cast<size_t>(side)];
        const ScalarExprPtr& val = c->args[static_cast<size_t>(1 - side)];
        if (col->kind == ScalarKind::kColumn && col->column_id == key &&
            IsConstOrParam(val)) {
          match.spec.eq_prefix.push_back(val);
          match.consumed.push_back(c);
          used[i] = true;
          eq_found = true;
          break;
        }
      }
    }
    if (eq_found) continue;
    // Range bounds on this key column, then stop.
    for (size_t i = 0; i < conjuncts.size(); ++i) {
      if (used[i]) continue;
      const ScalarExprPtr& c = conjuncts[i];
      if (c->kind != ScalarKind::kBinary) continue;
      std::string op = c->op;
      if (op != "<" && op != "<=" && op != ">" && op != ">=") continue;
      const ScalarExprPtr* col = &c->args[0];
      const ScalarExprPtr* val = &c->args[1];
      if ((*col)->kind != ScalarKind::kColumn) {
        std::swap(col, val);
        if (op == "<") op = ">";
        else if (op == "<=") op = ">=";
        else if (op == ">") op = "<";
        else op = "<=";
      }
      if ((*col)->kind != ScalarKind::kColumn ||
          (*col)->column_id != key || !IsConstOrParam(*val)) {
        continue;
      }
      if (op == ">" || op == ">=") {
        if (match.spec.lo == nullptr) {
          match.spec.lo = *val;
          match.spec.lo_inclusive = op == ">=";
          match.consumed.push_back(c);
          used[i] = true;
        }
      } else {
        if (match.spec.hi == nullptr) {
          match.spec.hi = *val;
          match.spec.hi_inclusive = op == "<=";
          match.consumed.push_back(c);
          used[i] = true;
        }
      }
    }
    break;  // No equality on this key column: stop extending the prefix.
  }
  for (size_t i = 0; i < conjuncts.size(); ++i) {
    if (!used[i]) match.residual.push_back(conjuncts[i]);
  }
  match.usable = !match.consumed.empty();
  return match;
}

}  // namespace

Optimizer::Optimizer(OptimizerContext* ctx)
    : ctx_(ctx), memo_(ctx), decoder_(ctx) {}

Result<OptimizeResult> Optimizer::Optimize(
    const LogicalOpPtr& root,
    const std::vector<std::pair<int, bool>>& required_order) {
  RegisterOrigins(root, ctx_);
  int root_gid = memo_.InsertTree(root);

  PhysicalProps required;
  required.sort = required_order;

  std::vector<OptPhase> phases;
  if (ctx_->options().multi_phase) {
    phases = {OptPhase::kTransactionProcessing, OptPhase::kQuickPlan,
              OptPhase::kFull};
  } else {
    phases = {OptPhase::kFull};
  }

  OptimizeResult result;
  Winner final;
  for (OptPhase phase : phases) {
    // Per-phase span (OptPhaseName returns static storage, safe to keep).
    trace::Span phase_span("optimizer.phase", OptPhaseName(phase));
    phase_ = phase;
    remotable_cache_.clear();
    // Winners found with a smaller rule set are re-derived so new
    // alternatives compete ("additional phases may be run in an attempt to
    // find a better solution", §4.1.1).
    for (int g = 0; g < memo_.num_groups(); ++g) {
      memo_.group(g).winners.clear();
    }
    DHQP_ASSIGN_OR_RETURN(final, OptimizeGroup(root_gid, required));
    ctx_->run_stats()->phases_run++;
    ctx_->run_stats()->phase_name = OptPhaseName(phase);
    double threshold =
        phase == OptPhase::kTransactionProcessing
            ? ctx_->options().tp_phase_cost_threshold
            : phase == OptPhase::kQuickPlan
                  ? ctx_->options().quick_phase_cost_threshold
                  : -1;
    if (threshold >= 0 && final.cost <= threshold) break;
    if (phase == OptPhase::kFull) break;
  }

  ctx_->run_stats()->groups = memo_.num_groups();
  ctx_->run_stats()->group_exprs = memo_.num_exprs();
  ctx_->run_stats()->best_cost = final.cost;
  result.plan = final.plan;
  result.stats = *ctx_->run_stats();
  return result;
}

void Optimizer::ExploreGroup(int gid) {
  Group& g = memo_.group(gid);
  if (g.explored_in_phase >= static_cast<int>(phase_)) return;
  g.explored_in_phase = static_cast<int>(phase_);

  const auto& rules = ExplorationRules();
  int rounds = 0;
  bool changed = true;
  while (changed && rounds++ < ctx_->options().max_exploration_rounds &&
         memo_.num_exprs() < ctx_->options().max_memo_exprs) {
    changed = false;
    for (size_t i = 0; i < memo_.group(gid).exprs.size(); ++i) {
      if (memo_.num_exprs() >= ctx_->options().max_memo_exprs) break;
      // Children first, so pattern binding sees their alternatives.
      {
        GroupExpr snapshot = memo_.group(gid).exprs[i];
        for (int c : snapshot.children) ExploreGroup(c);
      }
      for (size_t r = 0; r < rules.size(); ++r) {
        const Rule* rule = rules[r].get();
        if (static_cast<int>(rule->min_phase()) > static_cast<int>(phase_)) {
          continue;
        }
        GroupExpr snapshot = memo_.group(gid).exprs[i];
        if (!rule->Matches(*snapshot.op)) continue;
        uint64_t bit = 1ull << r;
        // Commute-style rules fire once per expr; associativity re-fires as
        // child groups grow (the memo dedupes repeats cheaply).
        bool once = std::string(rule->name()) != "JoinAssociate";
        if (once && (snapshot.rules_fired & bit)) continue;
        memo_.group(gid).exprs[i].rules_fired |= bit;
        int added = rule->Apply(&memo_, gid, snapshot, ctx_);
        ctx_->run_stats()->rules_applied++;
        if (added > 0) changed = true;
      }
    }
  }
}

Result<Winner> Optimizer::OptimizeGroup(int gid,
                                        const PhysicalProps& required) {
  // Cycle guard for parallel requirements: the serial-fallback and gather
  // paths can re-enter this (group, requirement); failing the re-entrant
  // call (treated as "no parallel plan") breaks the loop.
  struct CycleGuard {
    std::set<std::string>* set = nullptr;
    std::string key;
    ~CycleGuard() {
      if (set != nullptr) set->erase(key);
    }
  } cycle_guard;
  if (required.dop > 1) {
    std::string key = std::to_string(gid) + "|" + required.Fingerprint();
    if (parallel_in_progress_.count(key) > 0) {
      return Status::Internal("optimizer: parallel plan search cycle");
    }
    parallel_in_progress_.insert(key);
    cycle_guard.set = &parallel_in_progress_;
    cycle_guard.key = std::move(key);
  }

  {
    Group& g = memo_.group(gid);
    auto it = g.winners.find(required.Fingerprint());
    if (it != g.winners.end() && it->second.valid) return it->second;

    // Static pruning (§4.1.5): a contradicted group reduces to an empty
    // table regardless of requirements.
    if (g.props.contradiction && ctx_->options().enable_static_pruning) {
      auto op = NewPhysicalOp(PhysicalOpKind::kEmptyTable);
      AnnotateFromGroup(op, gid);
      op->estimated_rows = 0;
      op->sort_keys = required.sort;  // Vacuously ordered.
      CostNode(op);
      Winner w{op, op->estimated_cost, true};
      g.winners[required.Fingerprint()] = w;
      return w;
    }
  }

  ExploreGroup(gid);

  Winner best;
  size_t n = memo_.group(gid).exprs.size();
  for (size_t i = 0; i < n; ++i) {
    GroupExpr expr = memo_.group(gid).exprs[i];  // Copy: vector may grow.
    DHQP_RETURN_NOT_OK(ImplementExpr(gid, expr, required, &best));
  }
  DHQP_RETURN_NOT_OK(TryBuildRemoteQuery(gid, required, &best));

  // Serial fallback under a parallel requirement: operators without a
  // native parallel implementation run once and fan out through a
  // Distribute (or hash-repartition, when alignment is demanded) exchange.
  if (required.dop > 1) {
    // Strip ONLY the parallel fields: a sort (or any future semantic
    // requirement) must keep flowing down — a Top group's meaning depends
    // on the sort requirement it receives (see TryParallelPlan).
    PhysicalProps serial_req = required;
    serial_req.dop = 1;
    serial_req.partition_cols.clear();
    auto serial = OptimizeGroup(gid, serial_req);
    if (serial.ok() && ParallelSafe(serial->plan)) {
      auto ex = NewPhysicalOp(PhysicalOpKind::kExchange);
      ex->exchange = required.partition_cols.empty()
                         ? ExchangeKind::kDistribute
                         : ExchangeKind::kRepartitionHash;
      ex->exchange_keys = required.partition_cols;
      ex->dop = required.dop;
      ex->partition_cols = required.partition_cols;
      ex->children.push_back(serial->plan);
      ex->estimated_rows = serial->plan->estimated_rows;
      AnnotateColumns(ex, serial->plan->output_cols);
      Consider(ex, gid, required, &best);
    }
  }

  if (!best.valid) {
    return Status::Internal(
        "optimizer: no physical plan for group rooted at " +
        memo_.group(gid).exprs.front().op->LocalFingerprint());
  }
  memo_.group(gid).winners[required.Fingerprint()] = best;

  // The parallelism enforcer: a serial requirement may be answered by
  // Gather over a parallel subplan; cheaper alternative replaces the
  // cached winner.
  DHQP_RETURN_NOT_OK(TryParallelPlan(gid, required, &best));
  memo_.group(gid).winners[required.Fingerprint()] = best;
  return best;
}

// ---------------------------------------------------------------------------
// Annotation / costing / properties.
// ---------------------------------------------------------------------------

void Optimizer::AnnotateFromGroup(PhysicalOpBuilder& op, int gid) {
  const Group& g = memo_.group(gid);
  op->estimated_rows = g.props.cardinality;
  AnnotateColumns(op, g.props.output_cols);
}

void Optimizer::AnnotateFromChild(PhysicalOpBuilder& op, int gid) {
  op->estimated_rows = memo_.group(gid).props.cardinality;
  AnnotateColumns(op, op->children.front()->output_cols);
}

void Optimizer::AnnotateColumns(PhysicalOpBuilder& op,
                                const std::vector<int>& cols) {
  op->output_cols = cols;
  op->output_types.clear();
  op->output_names.clear();
  for (int c : cols) {
    op->output_types.push_back(ctx_->registry()->TypeOf(c));
    const ColumnInfo& info = ctx_->registry()->Get(c);
    op->output_names.push_back(info.table_alias.empty()
                                   ? info.name
                                   : info.table_alias + "." + info.name);
  }
}

void Optimizer::CostNode(PhysicalOpBuilder& op) {
  double local = LocalCost(*op, costs_);
  // Parallel instances divide the operator's work across dop streams; the
  // exchange itself is excluded — the transfer is the serialization point
  // and its LocalCost already models both sides.
  if (op->dop > 1 && op->kind != PhysicalOpKind::kExchange) {
    local /= op->dop;
  }
  double cost = local;
  for (const PhysicalOpPtr& c : op->children) cost += c->estimated_cost;
  op->estimated_cost = cost;
}

bool Optimizer::IsRescannable(const PhysicalOpPtr& plan) {
  switch (plan->kind) {
    case PhysicalOpKind::kRemoteQuery:
    case PhysicalOpKind::kRemoteScan:
    case PhysicalOpKind::kRemoteRange:
    case PhysicalOpKind::kRemoteFetch:
      return false;
    case PhysicalOpKind::kExchange:
      return false;  // Worker threads run once; Restart is unsupported.
    case PhysicalOpKind::kSpool:
      return true;  // Materialized: rescans never reach the child (§4.1.4).
    default:
      break;
  }
  for (const PhysicalOpPtr& c : plan->children) {
    if (!IsRescannable(c)) return false;
  }
  return true;
}

PhysicalProps Optimizer::Delivered(const PhysicalOpPtr& plan) {
  PhysicalProps props;
  props.sort = plan->sort_keys;
  props.rescannable = IsRescannable(plan);
  props.dop = std::max(plan->dop, 1);
  props.partition_cols = plan->partition_cols;
  return props;
}

bool Optimizer::ParallelSafe(const PhysicalOpPtr& plan) {
  switch (plan->kind) {
    case PhysicalOpKind::kRemoteQuery:
    case PhysicalOpKind::kRemoteScan:
    case PhysicalOpKind::kRemoteRange:
    case PhysicalOpKind::kRemoteFetch:
    case PhysicalOpKind::kFullTextLookup:
      return false;
    default:
      break;
  }
  if (!plan->remote_params.empty()) return false;
  for (const PhysicalOpPtr& c : plan->children) {
    if (!ParallelSafe(c)) return false;
  }
  return true;
}

namespace {

// Sets op->sort_keys for order-preserving operators from their children.
void PropagateOrder(PhysicalOpBuilder& op) {
  if (!op->sort_keys.empty()) return;
  auto keep_covered = [&](const std::vector<std::pair<int, bool>>& sort) {
    std::vector<std::pair<int, bool>> out;
    for (const auto& key : sort) {
      if (std::find(op->output_cols.begin(), op->output_cols.end(),
                    key.first) == op->output_cols.end()) {
        break;  // Order is only meaningful as a prefix.
      }
      out.push_back(key);
    }
    return out;
  };
  switch (op->kind) {
    case PhysicalOpKind::kFilter:
    case PhysicalOpKind::kStartupFilter:
    case PhysicalOpKind::kProject:
    case PhysicalOpKind::kTop:
    case PhysicalOpKind::kSpool:
    case PhysicalOpKind::kStreamAggregate:
      if (!op->children.empty()) {
        op->sort_keys = keep_covered(op->children[0]->sort_keys);
      }
      break;
    case PhysicalOpKind::kHashJoin:
    case PhysicalOpKind::kNestedLoopsJoin:
    case PhysicalOpKind::kMergeJoin:
      // Streamed outer/probe side preserves its order.
      if (!op->children.empty()) {
        op->sort_keys = keep_covered(op->children[0]->sort_keys);
      }
      break;
    default:
      break;
  }
}

}  // namespace

void Optimizer::Consider(PhysicalOpBuilder plan, int gid,
                         const PhysicalProps& required, Winner* best) {
  PropagateOrder(plan);
  CostNode(plan);
  PhysicalOpPtr final = plan;

  PhysicalProps delivered = Delivered(final);
  if (!delivered.Satisfies(required)) {
    // Partitioning enforcer: a dop requirement the plan misses is delivered
    // by an exchange — Distribute fans a serial stream out round-robin;
    // RepartitionHash aligns streams on the required hash columns (what
    // partition-local hash join / aggregate need). Only ParallelSafe
    // subtrees qualify: remote subtrees stay serial (fault-ordinal
    // invariance across dop).
    if (required.dop > 1 &&
        (delivered.dop == 1 || delivered.dop == required.dop) &&
        ParallelSafe(final)) {
      bool dop_miss = delivered.dop != required.dop;
      bool cols_miss = !required.partition_cols.empty() &&
                       delivered.partition_cols != required.partition_cols;
      if (dop_miss || cols_miss) {
        auto ex = NewPhysicalOp(PhysicalOpKind::kExchange);
        ex->exchange = required.partition_cols.empty()
                           ? ExchangeKind::kDistribute
                           : ExchangeKind::kRepartitionHash;
        ex->exchange_keys = required.partition_cols;
        ex->dop = required.dop;
        ex->partition_cols = required.partition_cols;
        ex->children.push_back(final);
        ex->estimated_rows = final->estimated_rows;
        AnnotateColumns(ex, final->output_cols);
        CostNode(ex);
        final = ex;
        delivered = Delivered(final);
      }
    }
    // Enforcer rules (§4.1.1: "for sort, an enforcer can insert a physical
    // sort operation"; §4.1.4 adds the remote spool).
    PhysicalProps sort_only;
    sort_only.sort = required.sort;
    if (required.HasSort() && !delivered.Satisfies(sort_only)) {
      auto sort = NewPhysicalOp(PhysicalOpKind::kSort);
      sort->sort_keys = required.sort;
      sort->children.push_back(final);
      sort->estimated_rows = final->estimated_rows;
      AnnotateColumns(sort, final->output_cols);
      CostNode(sort);
      final = sort;
      delivered = Delivered(final);
    }
    if (required.rescannable && !delivered.rescannable) {
      auto spool = NewPhysicalOp(PhysicalOpKind::kSpool);
      spool->children.push_back(final);
      spool->estimated_rows = final->estimated_rows;
      spool->sort_keys = final->sort_keys;
      AnnotateColumns(spool, final->output_cols);
      CostNode(spool);
      final = spool;
      delivered = Delivered(final);
    }
    if (!delivered.Satisfies(required)) return;  // Candidate unusable.
  }
  (void)gid;
  if (!best->valid || final->estimated_cost < best->cost) {
    best->plan = final;
    best->cost = final->estimated_cost;
    best->valid = true;
  }
}

// ---------------------------------------------------------------------------
// Implementation rules.
// ---------------------------------------------------------------------------

Status Optimizer::ImplementExpr(int gid, const GroupExpr& expr,
                                const PhysicalProps& required, Winner* best) {
  // Parallel requirements use the dedicated (narrower) implementation set;
  // everything it cannot cover falls back to Distribute(serial winner) at
  // the group level.
  if (required.dop > 1) return ImplementParallel(gid, expr, required, best);
  switch (expr.op->kind) {
    case LogicalOpKind::kGet:
      return ImplementGet(gid, expr, required, best);
    case LogicalOpKind::kFilter:
      return ImplementFilter(gid, expr, required, best);
    case LogicalOpKind::kJoin:
      return ImplementJoin(gid, expr, required, best);
    case LogicalOpKind::kAggregate:
      return ImplementAggregate(gid, expr, required, best);
    case LogicalOpKind::kProject: {
      // Variant A: optimize the child unconstrained and enforce above.
      auto child = OptimizeGroup(expr.children[0], PhysicalProps{});
      if (child.ok()) {
        auto op = NewPhysicalOp(PhysicalOpKind::kProject);
        op->exprs = expr.op->exprs;
        op->children.push_back(child->plan);
        AnnotateFromGroup(op, gid);
        Consider(op, gid, required, best);
      }
      // Variant B: pass a sort requirement down when the projection keeps
      // the sort columns.
      if (required.HasSort()) {
        bool covered = true;
        for (const auto& [col, asc] : required.sort) {
          if (std::find(expr.op->project_cols.begin(),
                        expr.op->project_cols.end(),
                        col) == expr.op->project_cols.end()) {
            covered = false;
            break;
          }
        }
        if (covered) {
          PhysicalProps child_req;
          child_req.sort = required.sort;
          auto sorted_child = OptimizeGroup(expr.children[0], child_req);
          if (sorted_child.ok()) {
            auto op = NewPhysicalOp(PhysicalOpKind::kProject);
            op->exprs = expr.op->exprs;
            op->children.push_back(sorted_child->plan);
            AnnotateFromGroup(op, gid);
            Consider(op, gid, required, best);
          }
        }
      }
      return Status::OK();
    }
    case LogicalOpKind::kTop: {
      PhysicalProps child_req;
      child_req.sort = required.sort;
      auto child = OptimizeGroup(expr.children[0], child_req);
      if (child.ok()) {
        auto op = NewPhysicalOp(PhysicalOpKind::kTop);
        op->limit = expr.op->limit;
        op->children.push_back(child->plan);
        AnnotateFromChild(op, gid);
        Consider(op, gid, required, best);
      }
      return Status::OK();
    }
    case LogicalOpKind::kUnionAll: {
      std::vector<PhysicalOpPtr> children;
      for (int c : expr.children) {
        auto child = OptimizeGroup(c, PhysicalProps{});
        if (!child.ok()) return Status::OK();
        children.push_back(child->plan);
      }
      auto op = NewPhysicalOp(PhysicalOpKind::kConcat);
      op->children = std::move(children);
      AnnotateFromChild(op, gid);
      Consider(op, gid, required, best);
      return Status::OK();
    }
    case LogicalOpKind::kConstTable: {
      auto op = NewPhysicalOp(PhysicalOpKind::kConstTable);
      op->const_rows = expr.op->const_rows;
      AnnotateFromGroup(op, gid);
      Consider(op, gid, required, best);
      return Status::OK();
    }
    case LogicalOpKind::kEmpty: {
      auto op = NewPhysicalOp(PhysicalOpKind::kEmptyTable);
      AnnotateFromGroup(op, gid);
      Consider(op, gid, required, best);
      return Status::OK();
    }
    case LogicalOpKind::kFullTextGet: {
      auto op = NewPhysicalOp(PhysicalOpKind::kFullTextLookup);
      op->ft_table = expr.op->ft_table;
      op->ft_query = expr.op->ft_query;
      AnnotateFromGroup(op, gid);
      Consider(op, gid, required, best);
      return Status::OK();
    }
  }
  return Status::OK();
}

Status Optimizer::ImplementParallel(int gid, const GroupExpr& expr,
                                    const PhysicalProps& required,
                                    Winner* best) {
  const int dop = required.dop;
  switch (expr.op->kind) {
    case LogicalOpKind::kGet: {
      const LogicalOp& get = *expr.op;
      if (get.table.source_id != kLocalSource) return Status::OK();
      // Partitioned scan: dop instances share the table block-cyclically.
      // Delivered partitioning is arbitrary (no hash columns); a
      // repartition enforcer aligns it when the parent demands keys.
      auto scan = NewPhysicalOp(PhysicalOpKind::kTableScan);
      scan->table = get.table;
      scan->alias = get.alias;
      scan->dop = dop;
      AnnotateFromGroup(scan, gid);
      scan->estimated_rows = std::max(get.table.metadata.cardinality, 0.0);
      Consider(scan, gid, required, best);
      return Status::OK();
    }
    case LogicalOpKind::kFilter: {
      const LogicalOp& filter = *expr.op;
      bool column_free =
          filter.predicate != nullptr && filter.predicate->IsColumnFree();
      auto make = [&](const Winner& child) {
        auto op = NewPhysicalOp(column_free ? PhysicalOpKind::kStartupFilter
                                            : PhysicalOpKind::kFilter);
        op->predicate = filter.predicate;
        op->dop = dop;
        op->children.push_back(child.plan);
        op->partition_cols = child.plan->partition_cols;
        AnnotateFromChild(op, gid);
        Consider(op, gid, required, best);
      };
      PhysicalProps child_req;
      child_req.dop = dop;
      child_req.partition_cols = required.partition_cols;
      auto aligned = OptimizeGroup(expr.children[0], child_req);
      if (aligned.ok()) make(*aligned);
      if (!required.partition_cols.empty()) {
        // Repartitioning *above* the filter moves only surviving rows.
        child_req.partition_cols.clear();
        auto any = OptimizeGroup(expr.children[0], child_req);
        if (any.ok()) make(*any);
      }
      return Status::OK();
    }
    case LogicalOpKind::kProject: {
      const std::vector<int>& child_cols =
          memo_.group(expr.children[0]).props.output_cols;
      auto in_child = [&](int col) {
        return std::find(child_cols.begin(), child_cols.end(), col) !=
               child_cols.end();
      };
      PhysicalProps child_req;
      child_req.dop = dop;
      bool covered = !required.partition_cols.empty();
      for (int col : required.partition_cols) {
        if (!in_child(col)) {
          covered = false;
          break;
        }
      }
      if (covered) child_req.partition_cols = required.partition_cols;
      auto child = OptimizeGroup(expr.children[0], child_req);
      if (child.ok()) {
        auto op = NewPhysicalOp(PhysicalOpKind::kProject);
        op->exprs = expr.op->exprs;
        op->dop = dop;
        op->children.push_back(child->plan);
        // Partitioning survives projection only when every hash column is
        // still in the output.
        const std::vector<int>& out_cols = memo_.group(gid).props.output_cols;
        bool kept = !child->plan->partition_cols.empty();
        for (int col : child->plan->partition_cols) {
          if (std::find(out_cols.begin(), out_cols.end(), col) ==
              out_cols.end()) {
            kept = false;
            break;
          }
        }
        if (kept) op->partition_cols = child->plan->partition_cols;
        AnnotateFromGroup(op, gid);
        Consider(op, gid, required, best);
      }
      return Status::OK();
    }
    case LogicalOpKind::kJoin: {
      const LogicalOp& join = *expr.op;
      int left_gid = expr.children[0];
      int right_gid = expr.children[1];
      std::vector<std::pair<ScalarExprPtr, ScalarExprPtr>> pairs;
      std::vector<ScalarExprPtr> residual;
      SplitJoinPredicate(join.predicate,
                         memo_.group(left_gid).props.output_cols,
                         memo_.group(right_gid).props.output_cols, &pairs,
                         &residual);
      if (pairs.empty()) return Status::OK();
      // Hash-aligned partitioned hash join: both inputs repartitioned on
      // the (column-only, same-type) equi keys, so every key group is
      // complete within one partition-local build/probe table. Same-type
      // keys keep hash(left) == hash(right) for matching values.
      PhysicalProps lreq, rreq;
      lreq.dop = rreq.dop = dop;
      for (const auto& [l, r] : pairs) {
        if (l->kind != ScalarKind::kColumn || r->kind != ScalarKind::kColumn ||
            l->type != r->type) {
          return Status::OK();
        }
        lreq.partition_cols.push_back(l->column_id);
        rreq.partition_cols.push_back(r->column_id);
      }
      auto left = OptimizeGroup(left_gid, lreq);
      auto right = OptimizeGroup(right_gid, rreq);
      if (left.ok() && right.ok()) {
        auto op = NewPhysicalOp(PhysicalOpKind::kHashJoin);
        op->join_type = join.join_type;
        op->key_pairs = pairs;
        op->predicate = MergeConjuncts(residual);
        op->dop = dop;
        op->children.push_back(left->plan);
        op->children.push_back(right->plan);
        // Output rows carry genuine left-key values (hence the left-key
        // partitioning) for every type whose output preserves left rows.
        if (join.join_type == JoinType::kInner ||
            join.join_type == JoinType::kLeftOuter ||
            join.join_type == JoinType::kSemi ||
            join.join_type == JoinType::kAnti) {
          op->partition_cols = lreq.partition_cols;
        }
        std::vector<int> cols = op->children[0]->output_cols;
        if (join.join_type != JoinType::kSemi &&
            join.join_type != JoinType::kAnti) {
          cols.insert(cols.end(), op->children[1]->output_cols.begin(),
                      op->children[1]->output_cols.end());
        }
        op->estimated_rows = memo_.group(gid).props.cardinality;
        AnnotateColumns(op, cols);
        Consider(op, gid, required, best);
      }
      return Status::OK();
    }
    case LogicalOpKind::kAggregate: {
      const LogicalOp& agg = *expr.op;
      // Scalar aggregates need a global merge; they stay serial. Grouped
      // hash aggregation partitioned on the full group-by key set sees
      // complete groups per partition — the gather above is the merge
      // phase, a pure concatenation of disjoint partial results.
      if (agg.group_by.empty()) return Status::OK();
      PhysicalProps child_req;
      child_req.dop = dop;
      child_req.partition_cols = agg.group_by;
      auto child = OptimizeGroup(expr.children[0], child_req);
      if (child.ok()) {
        auto op = NewPhysicalOp(PhysicalOpKind::kHashAggregate);
        op->group_by = agg.group_by;
        op->aggregates = agg.aggregates;
        op->dop = dop;
        op->partition_cols = agg.group_by;
        op->children.push_back(child->plan);
        AnnotateFromGroup(op, gid);
        Consider(op, gid, required, best);
      }
      return Status::OK();
    }
    default:
      return Status::OK();
  }
}

Status Optimizer::TryParallelPlan(int gid, const PhysicalProps& required,
                                  Winner* best) {
  int dop = ctx_->options().max_dop;
  if (dop <= 1 || required.dop != 1) return Status::OK();
  // An ordering requirement never crosses a gather: arrival order is
  // nondeterministic, and re-sorting above it is only equivalent when the
  // group's RESULT is order-independent — which a Top inside the group
  // breaks (TOP n ORDER BY means truncate-after-sort; the sort requirement
  // reaching the Top group is what carries that semantics). So
  // sort-requiring groups stay serial; parallelism applies below ordering
  // boundaries, where the requirement is empty.
  if (required.HasSort()) return Status::OK();
  const Group& g = memo_.group(gid);
  // Serial-remote-subtree rule: only fully-local groups parallelize.
  if (g.props.locality != kLocalSource) return Status::OK();
  if (g.props.contradiction && ctx_->options().enable_static_pruning) {
    return Status::OK();
  }
  PhysicalProps preq;
  preq.dop = dop;
  auto par = OptimizeGroup(gid, preq);
  if (!par.ok()) return Status::OK();  // No parallel implementation.
  if (!ParallelSafe(par->plan)) return Status::OK();
  auto gather = NewPhysicalOp(PhysicalOpKind::kExchange);
  gather->exchange = ExchangeKind::kGather;
  gather->dop = 1;
  gather->children.push_back(par->plan);
  gather->estimated_rows = par->plan->estimated_rows;
  AnnotateColumns(gather, par->plan->output_cols);
  Consider(gather, gid, required, best);
  return Status::OK();
}

Status Optimizer::ImplementGet(int gid, const GroupExpr& expr,
                               const PhysicalProps& required, Winner* best) {
  const LogicalOp& get = *expr.op;
  bool remote = get.table.source_id != kLocalSource;

  auto scan = NewPhysicalOp(remote ? PhysicalOpKind::kRemoteScan
                                   : PhysicalOpKind::kTableScan);
  scan->table = get.table;
  scan->alias = get.alias;
  AnnotateFromGroup(scan, gid);
  scan->estimated_rows = std::max(get.table.metadata.cardinality, 0.0);
  Consider(scan, gid, required, best);

  // Ordered full-index scans when the requirement asks for a sort the index
  // delivers (and the provider supports index navigation, §3.2.2).
  if (ctx_->options().enable_index_paths && required.HasSort() &&
      (!remote || get.table.caps.supports_indexes)) {
    for (const IndexMetadata& idx : get.table.metadata.indexes) {
      std::vector<std::pair<int, bool>> order;
      for (const std::string& key : idx.key_columns) {
        int ord = get.table.metadata.schema.FindColumn(key);
        if (ord < 0) break;
        order.emplace_back(get.columns[static_cast<size_t>(ord)], true);
      }
      // The index must deliver the required sort as a prefix.
      if (order.size() < required.sort.size()) continue;
      bool match = true;
      for (size_t i = 0; i < required.sort.size(); ++i) {
        if (order[i] != required.sort[i]) {
          match = false;
          break;
        }
      }
      if (!match) continue;
      auto range = NewPhysicalOp(remote ? PhysicalOpKind::kRemoteRange
                                        : PhysicalOpKind::kIndexRange);
      range->table = get.table;
      range->alias = get.alias;
      range->index_name = idx.name;
      range->sort_keys = order;
      AnnotateFromGroup(range, gid);
      range->estimated_rows = std::max(get.table.metadata.cardinality, 0.0);
      Consider(range, gid, required, best);
    }
  }
  return Status::OK();
}

Status Optimizer::ImplementFilter(int gid, const GroupExpr& expr,
                                  const PhysicalProps& required,
                                  Winner* best) {
  const LogicalOp& filter = *expr.op;
  int child_gid = expr.children[0];
  bool column_free =
      filter.predicate != nullptr && filter.predicate->IsColumnFree();

  // Plain filter over the unconstrained child (enforcers above as needed).
  {
    auto child = OptimizeGroup(child_gid, PhysicalProps{});
    if (child.ok()) {
      auto op = NewPhysicalOp(column_free ? PhysicalOpKind::kStartupFilter
                                          : PhysicalOpKind::kFilter);
      op->predicate = filter.predicate;
      op->children.push_back(child->plan);
      AnnotateFromChild(op, gid);
      Consider(op, gid, required, best);
    }
  }
  // Sort-passing variant.
  if (required.HasSort()) {
    PhysicalProps child_req;
    child_req.sort = required.sort;
    auto child = OptimizeGroup(child_gid, child_req);
    if (child.ok()) {
      auto op = NewPhysicalOp(column_free ? PhysicalOpKind::kStartupFilter
                                          : PhysicalOpKind::kFilter);
      op->predicate = filter.predicate;
      op->children.push_back(child->plan);
      AnnotateFromChild(op, gid);
      Consider(op, gid, required, best);
    }
  }

  // Index access paths for Filter(Get): local index range, remote range
  // (IRowsetIndex), remote fetch (IRowsetLocate bookmarks) — §3.3, §4.1.2.
  if (!ctx_->options().enable_index_paths || filter.predicate == nullptr) {
    return Status::OK();
  }
  std::vector<ScalarExprPtr> conjuncts;
  SplitConjuncts(filter.predicate, &conjuncts);

  const Group& child_group = memo_.group(child_gid);
  for (const GroupExpr& child_expr : child_group.exprs) {
    if (child_expr.op->kind != LogicalOpKind::kGet) continue;
    const LogicalOp& get = *child_expr.op;
    bool remote = get.table.source_id != kLocalSource;
    if (remote && !get.table.caps.supports_indexes) continue;

    for (const IndexMetadata& idx : get.table.metadata.indexes) {
      std::vector<int> key_ids;
      for (const std::string& key : idx.key_columns) {
        int ord = get.table.metadata.schema.FindColumn(key);
        if (ord >= 0) key_ids.push_back(get.columns[static_cast<size_t>(ord)]);
      }
      SargMatch match = MatchIndex(conjuncts, key_ids);
      if (!match.usable) continue;

      double sel = EstimateSelectivity(MergeConjuncts(match.consumed),
                                       child_group.props, ctx_);
      double range_rows =
          std::max(1.0, child_group.props.cardinality * sel);

      std::vector<PhysicalOpKind> kinds;
      if (remote) {
        kinds.push_back(PhysicalOpKind::kRemoteRange);
        if (get.table.caps.supports_bookmarks) {
          kinds.push_back(PhysicalOpKind::kRemoteFetch);
        }
      } else {
        kinds.push_back(PhysicalOpKind::kIndexRange);
      }
      for (PhysicalOpKind kind : kinds) {
        auto range = NewPhysicalOp(kind);
        range->table = get.table;
        range->alias = get.alias;
        range->index_name = idx.name;
        range->range = match.spec;
        AnnotateColumns(range, get.columns);
        range->estimated_rows = range_rows;
        // A fully-equal prefix still yields key order on the remainder.
        for (int key_id : key_ids) range->sort_keys.emplace_back(key_id, true);

        PhysicalOpBuilder top = range;
        if (!match.residual.empty()) {
          CostNode(range);
          auto res = NewPhysicalOp(PhysicalOpKind::kFilter);
          res->predicate = MergeConjuncts(match.residual);
          res->children.push_back(range);
          AnnotateFromChild(res, gid);
          top = res;
        } else {
          range->estimated_rows = memo_.group(gid).props.cardinality;
        }
        Consider(top, gid, required, best);
      }
    }
  }
  return Status::OK();
}

Status Optimizer::ImplementJoin(int gid, const GroupExpr& expr,
                                const PhysicalProps& required, Winner* best) {
  const LogicalOp& join = *expr.op;
  // Joins stream their own children's columns: annotate with the actual
  // child orders (which differ from the group's canonical order for plans
  // built from commuted alternatives).
  auto annotate_join = [&](PhysicalOpBuilder& op) {
    std::vector<int> cols = op->children[0]->output_cols;
    if (join.join_type != JoinType::kSemi &&
        join.join_type != JoinType::kAnti) {
      cols.insert(cols.end(), op->children[1]->output_cols.begin(),
                  op->children[1]->output_cols.end());
    }
    op->estimated_rows = memo_.group(gid).props.cardinality;
    AnnotateColumns(op, cols);
  };
  int left_gid = expr.children[0];
  int right_gid = expr.children[1];
  const std::vector<int>& left_cols = memo_.group(left_gid).props.output_cols;
  const std::vector<int>& right_cols =
      memo_.group(right_gid).props.output_cols;

  std::vector<std::pair<ScalarExprPtr, ScalarExprPtr>> pairs;
  std::vector<ScalarExprPtr> residual;
  SplitJoinPredicate(join.predicate, left_cols, right_cols, &pairs, &residual);

  // Hash join: equi keys required.
  if (!pairs.empty()) {
    auto left = OptimizeGroup(left_gid, PhysicalProps{});
    auto right = OptimizeGroup(right_gid, PhysicalProps{});
    if (left.ok() && right.ok()) {
      auto op = NewPhysicalOp(PhysicalOpKind::kHashJoin);
      op->join_type = join.join_type;
      op->key_pairs = pairs;
      op->predicate = MergeConjuncts(residual);
      op->children.push_back(left->plan);
      op->children.push_back(right->plan);
      annotate_join(op);
      Consider(op, gid, required, best);
    }
  }

  // Merge join: column-only equi keys, both sides sorted (via enforcers).
  if (!pairs.empty() && join.join_type == JoinType::kInner) {
    bool all_columns = true;
    PhysicalProps lreq, rreq;
    for (const auto& [l, r] : pairs) {
      if (l->kind != ScalarKind::kColumn || r->kind != ScalarKind::kColumn) {
        all_columns = false;
        break;
      }
      lreq.sort.emplace_back(l->column_id, true);
      rreq.sort.emplace_back(r->column_id, true);
    }
    if (all_columns) {
      auto left = OptimizeGroup(left_gid, lreq);
      auto right = OptimizeGroup(right_gid, rreq);
      if (left.ok() && right.ok()) {
        auto op = NewPhysicalOp(PhysicalOpKind::kMergeJoin);
        op->join_type = join.join_type;
        op->key_pairs = pairs;
        op->predicate = MergeConjuncts(residual);
        op->children.push_back(left->plan);
        op->children.push_back(right->plan);
        annotate_join(op);
        Consider(op, gid, required, best);
      }
    }
  }

  // Nested loops join: any predicate and all join types. The inner side is
  // required to be rescannable; the Spool enforcer delivers it over remote
  // streams (§4.1.4).
  {
    PhysicalProps inner_req;
    inner_req.rescannable = ctx_->options().enable_spool_enforcer;
    auto left = OptimizeGroup(left_gid, PhysicalProps{});
    auto right = OptimizeGroup(right_gid, inner_req);
    if (left.ok() && right.ok()) {
      auto op = NewPhysicalOp(PhysicalOpKind::kNestedLoopsJoin);
      op->join_type = join.join_type;
      op->predicate = join.predicate;
      op->children.push_back(left->plan);
      op->children.push_back(right->plan);
      annotate_join(op);
      Consider(op, gid, required, best);
    }
  }

  // Parameterized remote join (§4.1.2: "parameterization enables pushing
  // parameters into the remote sources"): drive a remote query per outer
  // row, binding the join keys as parameters. Wins when the outer side is
  // small and the remote side is large but indexed/selective.
  if (ctx_->options().enable_parameterization && !pairs.empty() &&
      (join.join_type == JoinType::kInner ||
       join.join_type == JoinType::kSemi)) {
    int loc = memo_.group(right_gid).props.locality;
    if (loc >= 0) {
      const ProviderCapabilities& caps =
          ctx_->catalog()->ServerSource(loc)->capabilities();
      if (caps.supports_command && caps.supports_parameters &&
          caps.SupportsSqlLevel(SqlSupportLevel::kMinimum)) {
        LogicalOpPtr tree = ExtractRemotableTree(right_gid, caps);
        if (tree != nullptr) {
          std::vector<ScalarExprPtr> param_preds;
          std::vector<std::pair<std::string, ScalarExprPtr>> bindings;
          for (const auto& [l, r] : pairs) {
            std::string name =
                "@__corr" + std::to_string(correlation_counter_++);
            param_preds.push_back(
                MakeComparison("=", r, MakeParam(name, r->type)));
            bindings.emplace_back(name, l);
          }
          LogicalOpPtr filtered =
              MakeFilter(tree, MergeConjuncts(param_preds));
          auto decoded = decoder_.Decode(filtered, caps);
          if (decoded.ok()) {
            auto left = OptimizeGroup(left_gid, PhysicalProps{});
            if (left.ok()) {
              auto inner = NewPhysicalOp(PhysicalOpKind::kRemoteQuery);
              inner->source_id = loc;
              inner->table.server_name = ctx_->catalog()->ServerName(loc);
              inner->remote_sql = decoded->sql;
              inner->remote_param_names = decoded->params;
              AnnotateColumns(inner, decoded->output_cols);
              // Expected matches per probe: right rows / join key ndv.
              double right_card = memo_.group(right_gid).props.cardinality;
              double ndv = std::max(1.0, right_card * 0.1);
              if (pairs[0].second->kind == ScalarKind::kColumn) {
                const ColumnStatistics* stats =
                    ctx_->StatsFor(pairs[0].second->column_id);
                if (stats != nullptr && stats->distinct_count > 0) {
                  ndv = stats->distinct_count;
                }
              }
              inner->estimated_rows = std::max(1.0, right_card / ndv);
              CostNode(inner);

              auto op = NewPhysicalOp(PhysicalOpKind::kNestedLoopsJoin);
              op->join_type = join.join_type;
              op->predicate = MergeConjuncts(residual);
              op->remote_params = bindings;
              op->children.push_back(left->plan);
              op->children.push_back(inner);
              annotate_join(op);
              Consider(op, gid, required, best);
            }
          }
        }
      }
    }
  }
  return Status::OK();
}

Status Optimizer::ImplementAggregate(int gid, const GroupExpr& expr,
                                     const PhysicalProps& required,
                                     Winner* best) {
  const LogicalOp& agg = *expr.op;
  int child_gid = expr.children[0];

  // Hash aggregation (or a trivial stream for scalar aggregates).
  {
    auto child = OptimizeGroup(child_gid, PhysicalProps{});
    if (child.ok()) {
      auto op = NewPhysicalOp(agg.group_by.empty()
                                  ? PhysicalOpKind::kStreamAggregate
                                  : PhysicalOpKind::kHashAggregate);
      op->group_by = agg.group_by;
      op->aggregates = agg.aggregates;
      op->children.push_back(child->plan);
      AnnotateFromGroup(op, gid);
      Consider(op, gid, required, best);
    }
  }
  // Stream aggregation over sorted input.
  if (!agg.group_by.empty()) {
    PhysicalProps child_req;
    for (int g : agg.group_by) child_req.sort.emplace_back(g, true);
    auto child = OptimizeGroup(child_gid, child_req);
    if (child.ok()) {
      auto op = NewPhysicalOp(PhysicalOpKind::kStreamAggregate);
      op->group_by = agg.group_by;
      op->aggregates = agg.aggregates;
      op->children.push_back(child->plan);
      AnnotateFromGroup(op, gid);
      Consider(op, gid, required, best);
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Build remote query (§4.1.2) with the §4.1.4 framework extension.
// ---------------------------------------------------------------------------

LogicalOpPtr Optimizer::ExtractRemotableTree(
    int gid, const ProviderCapabilities& caps) {
  auto it = remotable_cache_.find(gid);
  if (it != remotable_cache_.end()) return it->second;
  remotable_cache_[gid] = nullptr;  // Cycle guard.

  const Group& g = memo_.group(gid);
  for (const GroupExpr& expr : g.exprs) {
    switch (expr.op->kind) {
      case LogicalOpKind::kGet:
      case LogicalOpKind::kFilter:
      case LogicalOpKind::kProject:
      case LogicalOpKind::kJoin:
      case LogicalOpKind::kAggregate:
        break;
      default:
        continue;
    }
    auto tree = std::make_shared<LogicalOp>(*expr.op);
    tree->children.clear();
    bool ok = true;
    for (int c : expr.children) {
      LogicalOpPtr child = ExtractRemotableTree(c, caps);
      if (child == nullptr) {
        ok = false;
        break;
      }
      tree->children.push_back(std::move(child));
    }
    if (!ok) continue;
    if (decoder_.IsRemotable(tree, caps)) {
      remotable_cache_[gid] = tree;
      return tree;
    }
  }
  return nullptr;
}

Status Optimizer::TryBuildRemoteQuery(int gid, const PhysicalProps& required,
                                      Winner* best) {
  if (!ctx_->options().enable_remote_pushdown) return Status::OK();
  const Group& g = memo_.group(gid);
  int loc = g.props.locality;
  if (loc < 0) return Status::OK();
  const ProviderCapabilities& caps =
      ctx_->catalog()->ServerSource(loc)->capabilities();
  if (!caps.supports_command ||
      !caps.SupportsSqlLevel(SqlSupportLevel::kMinimum)) {
    return Status::OK();
  }
  LogicalOpPtr tree = ExtractRemotableTree(gid, caps);
  if (tree == nullptr) return Status::OK();

  auto emit = [&](const std::vector<std::pair<int, bool>>& order) {
    auto decoded = decoder_.Decode(tree, caps, order);
    if (!decoded.ok()) return;
    auto op = NewPhysicalOp(PhysicalOpKind::kRemoteQuery);
    op->source_id = loc;
    op->table.server_name = ctx_->catalog()->ServerName(loc);
    op->remote_sql = decoded->sql;
    op->remote_param_names = decoded->params;
    op->sort_keys = order;  // Delivered order, if any.
    AnnotateColumns(op, decoded->output_cols);
    op->estimated_rows = g.props.cardinality;
    Consider(op, gid, required, best);
  };
  emit({});
  // Sorts are remotable too (§2.1): a variant with the required order
  // pushed into the remote statement competes with local Sort enforcement.
  if (required.HasSort()) emit(required.sort);
  return Status::OK();
}

}  // namespace dhqp
