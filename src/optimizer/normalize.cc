#include "src/optimizer/normalize.h"

#include <algorithm>
#include <map>
#include <set>

#include "src/optimizer/constraint.h"
#include "src/optimizer/properties.h"

namespace dhqp {

namespace {

bool ExprCoveredBy(const ScalarExprPtr& expr, const std::vector<int>& cols) {
  std::set<int> used;
  expr->CollectColumns(&used);
  for (int c : used) {
    if (std::find(cols.begin(), cols.end(), c) == cols.end()) return false;
  }
  return true;
}

bool ExprHasParams(const ScalarExprPtr& expr) {
  std::set<std::string> params;
  expr->CollectParams(&params);
  return !params.empty();
}

// Clones an expression substituting column ids (used when pushing a
// predicate through UNION ALL into a branch with different column ids).
ScalarExprPtr RewriteColumns(const ScalarExprPtr& expr,
                             const std::map<int, int>& mapping) {
  if (expr->kind == ScalarKind::kColumn) {
    auto it = mapping.find(expr->column_id);
    if (it == mapping.end()) return expr;
    return MakeColumn(it->second, expr->type, expr->column_name);
  }
  if (expr->args.empty()) return expr;
  auto copy = std::make_shared<ScalarExpr>(*expr);
  copy->args.clear();
  for (const ScalarExprPtr& arg : expr->args) {
    copy->args.push_back(RewriteColumns(arg, mapping));
  }
  return copy;
}

// Lightweight domain derivation over a real tree (Get/Filter/Project
// shapes — the forms partitioned-view members take). Mirrors the memo's
// constraint property computation.
std::map<int, IntervalSet> DeriveTreeDomains(const LogicalOpPtr& tree) {
  std::map<int, IntervalSet> domains;
  switch (tree->kind) {
    case LogicalOpKind::kGet:
      for (const CheckConstraint& check : tree->table.checks) {
        int ord = tree->table.metadata.schema.FindColumn(check.column);
        if (ord >= 0) {
          domains[tree->columns[static_cast<size_t>(ord)]] = check.domain;
        }
      }
      return domains;
    case LogicalOpKind::kFilter: {
      domains = DeriveTreeDomains(tree->children[0]);
      IntersectDomains(&domains, ExtractPredicateDomains(tree->predicate));
      return domains;
    }
    case LogicalOpKind::kProject: {
      std::map<int, IntervalSet> child = DeriveTreeDomains(tree->children[0]);
      for (size_t i = 0; i < tree->exprs.size(); ++i) {
        if (tree->exprs[i]->kind == ScalarKind::kColumn) {
          auto it = child.find(tree->exprs[i]->column_id);
          if (it != child.end()) {
            domains[tree->project_cols[i]] = it->second;
          }
        }
      }
      return domains;
    }
    case LogicalOpKind::kJoin: {
      domains = DeriveTreeDomains(tree->children[0]);
      if (tree->join_type != JoinType::kSemi &&
          tree->join_type != JoinType::kAnti) {
        auto right = DeriveTreeDomains(tree->children[1]);
        for (auto& [col, dom] : right) domains[col] = dom;
      }
      return domains;
    }
    default:
      return domains;
  }
}

// Locality of a whole subtree (kLocalSource / server id / kMixedLocality).
int TreeLocality(const LogicalOpPtr& tree) {
  if (tree->kind == LogicalOpKind::kGet) return tree->table.source_id;
  if (tree->kind == LogicalOpKind::kConstTable ||
      tree->kind == LogicalOpKind::kEmpty) {
    return kLocalSource;
  }
  if (tree->kind == LogicalOpKind::kFullTextGet) return kMixedLocality;
  int loc = -100;  // Sentinel "unset".
  for (const LogicalOpPtr& c : tree->children) {
    int l = TreeLocality(c);
    if (loc == -100) {
      loc = l;
    } else if (loc != l) {
      return kMixedLocality;
    }
  }
  return loc == -100 ? kLocalSource : loc;
}

class Normalizer {
 public:
  explicit Normalizer(OptimizerContext* ctx) : ctx_(ctx) {}

  LogicalOpPtr Run(const LogicalOpPtr& root) {
    LogicalOpPtr tree = NormalizeNode(root);
    if (!ctx_->options().enable_locality_grouping) return tree;
    return GroupByLocality(tree, /*parent_is_join=*/false);
  }

 private:
  // Bottom-up: recurse, then collapse/push filters at this node.
  LogicalOpPtr NormalizeNode(const LogicalOpPtr& op) {
    auto copy = std::make_shared<LogicalOp>(*op);
    copy->children.clear();
    for (const LogicalOpPtr& c : op->children) {
      copy->children.push_back(NormalizeNode(c));
    }
    LogicalOpPtr node = copy;
    if (node->kind == LogicalOpKind::kFilter) {
      std::vector<ScalarExprPtr> conjuncts;
      SplitConjuncts(node->predicate, &conjuncts);
      LogicalOpPtr child = node->children[0];
      // Collapse stacked filters.
      while (child->kind == LogicalOpKind::kFilter) {
        SplitConjuncts(child->predicate, &conjuncts);
        child = child->children[0];
      }
      return PushConjuncts(child, std::move(conjuncts));
    }
    return node;
  }

  // Pushes conjuncts as deep as possible over `tree`; returns the rewritten
  // tree with any unconsumed conjuncts in a Filter on top.
  LogicalOpPtr PushConjuncts(LogicalOpPtr tree,
                             std::vector<ScalarExprPtr> conjuncts) {
    if (conjuncts.empty()) return tree;
    switch (tree->kind) {
      case LogicalOpKind::kJoin: {
        const LogicalOpPtr& left = tree->children[0];
        const LogicalOpPtr& right = tree->children[1];
        std::vector<int> lcols = left->OutputColumns();
        std::vector<int> rcols = right->OutputColumns();
        std::vector<ScalarExprPtr> to_left, to_right, to_join, keep;
        bool can_push_right = tree->join_type == JoinType::kInner ||
                              tree->join_type == JoinType::kCross ||
                              tree->join_type == JoinType::kSemi ||
                              tree->join_type == JoinType::kAnti;
        // (For semi/anti the right side is not visible above, so no
        // conjunct will target it; inner/cross may.)
        bool can_merge_pred = tree->join_type == JoinType::kInner ||
                              tree->join_type == JoinType::kCross;
        for (ScalarExprPtr& c : conjuncts) {
          if (ExprCoveredBy(c, lcols)) {
            to_left.push_back(std::move(c));
          } else if (can_push_right && ExprCoveredBy(c, rcols)) {
            to_right.push_back(std::move(c));
          } else if (can_merge_pred) {
            to_join.push_back(std::move(c));
          } else {
            keep.push_back(std::move(c));
          }
        }
        auto join = std::make_shared<LogicalOp>(*tree);
        join->children.clear();
        join->children.push_back(PushConjuncts(left, std::move(to_left)));
        join->children.push_back(PushConjuncts(right, std::move(to_right)));
        if (!to_join.empty()) {
          if (join->predicate != nullptr) to_join.push_back(join->predicate);
          join->predicate = MergeConjuncts(to_join);
          if (join->join_type == JoinType::kCross) {
            join->join_type = JoinType::kInner;
          }
        }
        // Also sink the join's own single-side predicate conjuncts.
        if (join->predicate != nullptr &&
            (join->join_type == JoinType::kInner ||
             join->join_type == JoinType::kSemi ||
             join->join_type == JoinType::kAnti)) {
          std::vector<ScalarExprPtr> jc;
          SplitConjuncts(join->predicate, &jc);
          std::vector<ScalarExprPtr> stay;
          std::vector<int> lc = join->children[0]->OutputColumns();
          std::vector<int> rc = join->children[1]->OutputColumns();
          std::vector<ScalarExprPtr> sink_l, sink_r;
          for (ScalarExprPtr& c : jc) {
            if (ExprCoveredBy(c, lc) && join->join_type == JoinType::kInner) {
              sink_l.push_back(std::move(c));
            } else if (ExprCoveredBy(c, rc) &&
                       (join->join_type == JoinType::kInner ||
                        join->join_type == JoinType::kSemi ||
                        join->join_type == JoinType::kAnti)) {
              sink_r.push_back(std::move(c));
            } else {
              stay.push_back(std::move(c));
            }
          }
          if (!sink_l.empty() || !sink_r.empty()) {
            auto j2 = std::make_shared<LogicalOp>(*join);
            j2->children[0] =
                PushConjuncts(join->children[0], std::move(sink_l));
            j2->children[1] =
                PushConjuncts(join->children[1], std::move(sink_r));
            j2->predicate = MergeConjuncts(stay);
            if (j2->predicate == nullptr &&
                j2->join_type == JoinType::kInner) {
              j2->join_type = JoinType::kCross;
            }
            join = j2;
          }
        }
        return WrapFilter(join, std::move(keep));
      }
      case LogicalOpKind::kUnionAll: {
        // Push every conjunct into every branch, remapping columns. Branch
        // CHECK domains then prune statically (contradiction -> Empty in the
        // memo) or at startup (parameterized conjuncts).
        std::vector<int> out_cols = tree->OutputColumns();
        std::vector<LogicalOpPtr> new_children;
        for (const LogicalOpPtr& branch : tree->children) {
          std::vector<int> branch_cols = branch->OutputColumns();
          std::map<int, int> mapping;
          for (size_t i = 0; i < out_cols.size() && i < branch_cols.size();
               ++i) {
            mapping[out_cols[i]] = branch_cols[i];
          }
          std::vector<ScalarExprPtr> remapped;
          LogicalOpPtr new_branch = branch;
          std::map<int, IntervalSet> branch_domains =
              DeriveTreeDomains(branch);
          std::vector<ScalarExprPtr> startup_preds;
          for (const ScalarExprPtr& c : conjuncts) {
            ScalarExprPtr rc = RewriteColumns(c, mapping);
            remapped.push_back(rc);
            if (ctx_->options().enable_startup_filters && ExprHasParams(rc)) {
              ScalarExprPtr sp = BuildStartupPredicate(rc, branch_domains);
              if (sp != nullptr) startup_preds.push_back(std::move(sp));
            }
          }
          new_branch = PushConjuncts(new_branch, std::move(remapped));
          if (!startup_preds.empty()) {
            // Column-free filters become physical startup filters.
            new_branch =
                MakeFilter(new_branch, MergeConjuncts(startup_preds));
          }
          new_children.push_back(std::move(new_branch));
        }
        return MakeUnionAll(std::move(new_children));
      }
      case LogicalOpKind::kAggregate: {
        std::vector<ScalarExprPtr> below, keep;
        for (ScalarExprPtr& c : conjuncts) {
          if (ExprCoveredBy(c, tree->group_by)) {
            below.push_back(std::move(c));
          } else {
            keep.push_back(std::move(c));
          }
        }
        if (!below.empty()) {
          auto agg = std::make_shared<LogicalOp>(*tree);
          agg->children[0] =
              PushConjuncts(tree->children[0], std::move(below));
          return WrapFilter(agg, std::move(keep));
        }
        return WrapFilter(tree, std::move(keep));
      }
      case LogicalOpKind::kProject: {
        // Substitute the projected expressions into the conjuncts and push
        // below when the result only references child columns.
        std::map<int, ScalarExprPtr> subst;
        for (size_t i = 0; i < tree->exprs.size(); ++i) {
          subst[tree->project_cols[i]] = tree->exprs[i];
        }
        std::vector<int> child_cols = tree->children[0]->OutputColumns();
        std::vector<ScalarExprPtr> below, keep;
        for (ScalarExprPtr& c : conjuncts) {
          ScalarExprPtr rewritten = SubstituteColumns(c, subst);
          if (ExprCoveredBy(rewritten, child_cols)) {
            below.push_back(std::move(rewritten));
          } else {
            keep.push_back(std::move(c));
          }
        }
        if (!below.empty()) {
          auto proj = std::make_shared<LogicalOp>(*tree);
          proj->children[0] =
              PushConjuncts(tree->children[0], std::move(below));
          return WrapFilter(proj, std::move(keep));
        }
        return WrapFilter(tree, std::move(keep));
      }
      case LogicalOpKind::kFilter: {
        SplitConjuncts(tree->predicate, &conjuncts);
        return PushConjuncts(tree->children[0], std::move(conjuncts));
      }
      default:
        return WrapFilter(tree, std::move(conjuncts));
    }
  }

  static ScalarExprPtr SubstituteColumns(
      const ScalarExprPtr& expr, const std::map<int, ScalarExprPtr>& subst) {
    if (expr->kind == ScalarKind::kColumn) {
      auto it = subst.find(expr->column_id);
      return it == subst.end() ? expr : it->second;
    }
    if (expr->args.empty()) return expr;
    auto copy = std::make_shared<ScalarExpr>(*expr);
    copy->args.clear();
    for (const ScalarExprPtr& arg : expr->args) {
      copy->args.push_back(SubstituteColumns(arg, subst));
    }
    return copy;
  }

  static LogicalOpPtr WrapFilter(LogicalOpPtr tree,
                                 std::vector<ScalarExprPtr> conjuncts) {
    if (conjuncts.empty()) return tree;
    return MakeFilter(std::move(tree), MergeConjuncts(conjuncts));
  }

  // ---------------------------------------------------------------------
  // Locality join grouping (§4.1.2): flattens a maximal inner-join region
  // and rebuilds it with same-source leaves adjacent, so the largest
  // possible subtree per source is exposed to the build-remote-query rule.
  // ---------------------------------------------------------------------
  LogicalOpPtr GroupByLocality(const LogicalOpPtr& tree, bool parent_is_join) {
    bool is_inner_join =
        tree->kind == LogicalOpKind::kJoin &&
        (tree->join_type == JoinType::kInner ||
         tree->join_type == JoinType::kCross);
    if (!is_inner_join) {
      auto copy = std::make_shared<LogicalOp>(*tree);
      copy->children.clear();
      for (const LogicalOpPtr& c : tree->children) {
        copy->children.push_back(GroupByLocality(c, false));
      }
      return copy;
    }
    if (parent_is_join) {
      // Handled by the topmost join of this region.
      return tree;
    }
    // Flatten the region.
    std::vector<LogicalOpPtr> leaves;
    std::vector<ScalarExprPtr> conjuncts;
    Flatten(tree, &leaves, &conjuncts);
    for (LogicalOpPtr& leaf : leaves) {
      leaf = GroupByLocality(leaf, false);
    }
    if (leaves.size() <= 2) {
      return Rebuild(std::move(leaves), std::move(conjuncts));
    }
    // Stable-partition leaves into locality buckets, remote sources first
    // (largest pushable subtrees at the bottom-left).
    std::map<int, std::vector<LogicalOpPtr>> buckets;
    std::vector<int> order;
    for (LogicalOpPtr& leaf : leaves) {
      int loc = TreeLocality(leaf);
      if (buckets.count(loc) == 0) order.push_back(loc);
      buckets[loc].push_back(std::move(leaf));
    }
    std::stable_sort(order.begin(), order.end(), [](int a, int b) {
      // Remote ids (>=0) before local/mixed, so remote groups form subtrees.
      auto rank = [](int loc) { return loc >= 0 ? 0 : 1; };
      return rank(a) < rank(b);
    });
    std::vector<LogicalOpPtr> grouped;
    for (int loc : order) {
      for (LogicalOpPtr& leaf : buckets[loc]) {
        grouped.push_back(std::move(leaf));
      }
    }
    return Rebuild(std::move(grouped), std::move(conjuncts));
  }

  static void Flatten(const LogicalOpPtr& tree,
                      std::vector<LogicalOpPtr>* leaves,
                      std::vector<ScalarExprPtr>* conjuncts) {
    if (tree->kind == LogicalOpKind::kJoin &&
        (tree->join_type == JoinType::kInner ||
         tree->join_type == JoinType::kCross)) {
      SplitConjuncts(tree->predicate, conjuncts);
      Flatten(tree->children[0], leaves, conjuncts);
      Flatten(tree->children[1], leaves, conjuncts);
      return;
    }
    leaves->push_back(tree);
  }

  // Left-deep rebuild attaching each conjunct at the first join that covers
  // its columns.
  static LogicalOpPtr Rebuild(std::vector<LogicalOpPtr> leaves,
                              std::vector<ScalarExprPtr> conjuncts) {
    LogicalOpPtr acc = leaves[0];
    std::vector<int> acc_cols = acc->OutputColumns();
    std::vector<bool> used(conjuncts.size(), false);
    // A leaf-level conjunct may already be fully covered by the first leaf.
    std::vector<ScalarExprPtr> first_filter;
    for (size_t ci = 0; ci < conjuncts.size(); ++ci) {
      if (ExprCoveredBy(conjuncts[ci], acc_cols)) {
        first_filter.push_back(conjuncts[ci]);
        used[ci] = true;
      }
    }
    if (!first_filter.empty()) {
      acc = MakeFilter(acc, MergeConjuncts(first_filter));
    }
    for (size_t i = 1; i < leaves.size(); ++i) {
      std::vector<int> leaf_cols = leaves[i]->OutputColumns();
      std::vector<int> joined = acc_cols;
      joined.insert(joined.end(), leaf_cols.begin(), leaf_cols.end());
      std::vector<ScalarExprPtr> preds;
      for (size_t ci = 0; ci < conjuncts.size(); ++ci) {
        if (!used[ci] && ExprCoveredBy(conjuncts[ci], joined)) {
          preds.push_back(conjuncts[ci]);
          used[ci] = true;
        }
      }
      JoinType type = preds.empty() ? JoinType::kCross : JoinType::kInner;
      acc = MakeJoin(type, acc, leaves[i], MergeConjuncts(preds));
      acc_cols = std::move(joined);
    }
    // Any leftover conjuncts (shouldn't happen) stay on top.
    std::vector<ScalarExprPtr> rest;
    for (size_t ci = 0; ci < conjuncts.size(); ++ci) {
      if (!used[ci]) rest.push_back(conjuncts[ci]);
    }
    if (!rest.empty()) acc = MakeFilter(acc, MergeConjuncts(rest));
    return acc;
  }

  OptimizerContext* ctx_;
};

}  // namespace

LogicalOpPtr Normalize(const LogicalOpPtr& root, OptimizerContext* ctx) {
  Normalizer normalizer(ctx);
  return normalizer.Run(root);
}

}  // namespace dhqp
