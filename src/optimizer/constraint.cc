#include "src/optimizer/constraint.h"

namespace dhqp {

namespace {

// Mirrors a comparison operator when operands swap sides.
std::string MirrorOp(const std::string& op) {
  if (op == "<") return ">";
  if (op == "<=") return ">=";
  if (op == ">") return "<";
  if (op == ">=") return "<=";
  return op;  // = and <> are symmetric.
}

// Recognizes `col op literal` (either order); fills col id, op as if the
// column were on the left, and the literal value.
bool MatchColumnComparison(const ScalarExprPtr& e, int* col, std::string* op,
                           Value* literal) {
  if (e->kind != ScalarKind::kBinary) return false;
  const std::string& o = e->op;
  if (o != "=" && o != "<>" && o != "<" && o != "<=" && o != ">" && o != ">=") {
    return false;
  }
  const ScalarExprPtr& lhs = e->args[0];
  const ScalarExprPtr& rhs = e->args[1];
  if (lhs->kind == ScalarKind::kColumn && rhs->kind == ScalarKind::kLiteral &&
      !rhs->literal.is_null()) {
    *col = lhs->column_id;
    *op = o;
    *literal = rhs->literal;
    return true;
  }
  if (rhs->kind == ScalarKind::kColumn && lhs->kind == ScalarKind::kLiteral &&
      !lhs->literal.is_null()) {
    *col = rhs->column_id;
    *op = MirrorOp(o);
    *literal = lhs->literal;
    return true;
  }
  return false;
}

// Recognizes `col op @param` (either order), normalizing the operator as if
// the column were on the left.
bool MatchParamComparison(const ScalarExprPtr& e, int* col, std::string* op,
                          ScalarExprPtr* param) {
  if (e->kind != ScalarKind::kBinary) return false;
  const std::string& o = e->op;
  if (o != "=" && o != "<" && o != "<=" && o != ">" && o != ">=") return false;
  const ScalarExprPtr& lhs = e->args[0];
  const ScalarExprPtr& rhs = e->args[1];
  if (lhs->kind == ScalarKind::kColumn && rhs->kind == ScalarKind::kParam) {
    *col = lhs->column_id;
    *op = o;
    *param = rhs;
    return true;
  }
  if (rhs->kind == ScalarKind::kColumn && lhs->kind == ScalarKind::kParam) {
    *col = rhs->column_id;
    *op = MirrorOp(o);
    *param = lhs;
    return true;
  }
  return false;
}

}  // namespace

std::map<int, IntervalSet> ExtractPredicateDomains(const ScalarExprPtr& pred) {
  std::map<int, IntervalSet> out;
  if (pred == nullptr) return out;

  if (pred->kind == ScalarKind::kBinary && pred->op == "AND") {
    out = ExtractPredicateDomains(pred->args[0]);
    IntersectDomains(&out, ExtractPredicateDomains(pred->args[1]));
    return out;
  }
  if (pred->kind == ScalarKind::kBinary && pred->op == "OR") {
    // A column is restricted by an OR only if both branches restrict it;
    // the result is the union of the branch domains.
    std::map<int, IntervalSet> lhs = ExtractPredicateDomains(pred->args[0]);
    std::map<int, IntervalSet> rhs = ExtractPredicateDomains(pred->args[1]);
    for (const auto& [col, ldom] : lhs) {
      auto it = rhs.find(col);
      if (it != rhs.end()) out[col] = ldom.Union(it->second);
    }
    return out;
  }
  int col;
  std::string op;
  Value literal;
  if (MatchColumnComparison(pred, &col, &op, &literal)) {
    out[col] = IntervalSet::FromComparison(op, literal);
    return out;
  }
  if (pred->kind == ScalarKind::kInList && !pred->negated &&
      pred->args[0]->kind == ScalarKind::kColumn) {
    IntervalSet set = IntervalSet::None();
    for (size_t i = 1; i < pred->args.size(); ++i) {
      if (pred->args[i]->kind != ScalarKind::kLiteral ||
          pred->args[i]->literal.is_null()) {
        return out;  // Non-literal member: no restriction derivable.
      }
      set = set.Union(IntervalSet::Point(pred->args[i]->literal));
    }
    out[pred->args[0]->column_id] = std::move(set);
    return out;
  }
  return out;
}

void IntersectDomains(std::map<int, IntervalSet>* domains,
                      const std::map<int, IntervalSet>& update) {
  for (const auto& [col, dom] : update) {
    auto it = domains->find(col);
    if (it == domains->end()) {
      (*domains)[col] = dom;
    } else {
      it->second = it->second.Intersect(dom);
    }
  }
}

bool HasContradiction(const std::map<int, IntervalSet>& domains) {
  for (const auto& [col, dom] : domains) {
    if (dom.IsEmpty()) return true;
  }
  return false;
}

ScalarExprPtr IntervalSetToPredicate(const ScalarExprPtr& value_expr,
                                     const IntervalSet& set) {
  if (set.IsAll()) return nullptr;
  if (set.IsEmpty()) return MakeLiteral(Value::Bool(false));
  ScalarExprPtr result;
  for (const Interval& iv : set.intervals()) {
    ScalarExprPtr term;
    // Point interval -> equality.
    if (iv.lo.value && iv.hi.value && iv.lo.inclusive && iv.hi.inclusive &&
        iv.lo.value->Compare(*iv.hi.value) == 0) {
      term = MakeComparison("=", value_expr, MakeLiteral(*iv.lo.value));
    } else {
      if (iv.lo.value) {
        term = MakeComparison(iv.lo.inclusive ? ">=" : ">", value_expr,
                              MakeLiteral(*iv.lo.value));
      }
      if (iv.hi.value) {
        ScalarExprPtr hi_term = MakeComparison(
            iv.hi.inclusive ? "<=" : "<", value_expr, MakeLiteral(*iv.hi.value));
        term = term ? MakeAnd(std::move(term), std::move(hi_term))
                    : std::move(hi_term);
      }
      if (term == nullptr) return nullptr;  // (-inf, +inf): no predicate.
    }
    result = result ? MakeOr(std::move(result), std::move(term))
                    : std::move(term);
  }
  return result;
}

ScalarExprPtr BuildStartupPredicate(
    const ScalarExprPtr& conjunct, const std::map<int, IntervalSet>& domains) {
  int col;
  std::string op;
  ScalarExprPtr param;
  if (!MatchParamComparison(conjunct, &col, &op, &param)) return nullptr;
  auto it = domains.find(col);
  if (it == domains.end() || it->second.IsAll()) return nullptr;
  const IntervalSet& dom = it->second;

  if (op == "=") {
    // Member has matching rows only if the parameter lies in the domain.
    return IntervalSetToPredicate(param, dom);
  }
  // For inequalities, compare against the domain's overall extremes.
  const Interval& first = dom.intervals().front();
  const Interval& last = dom.intervals().back();
  if (op == "<" || op == "<=") {
    // col < @p matches iff @p exceeds the domain's minimum.
    if (!first.lo.value) return nullptr;  // Unbounded below: always possible.
    return MakeComparison(op == "<" ? ">" : ">=", param,
                          MakeLiteral(*first.lo.value));
  }
  if (op == ">" || op == ">=") {
    if (!last.hi.value) return nullptr;
    return MakeComparison(op == ">" ? "<" : "<=", param,
                          MakeLiteral(*last.hi.value));
  }
  return nullptr;
}

}  // namespace dhqp
