#ifndef DHQP_OPTIMIZER_PROPERTIES_H_
#define DHQP_OPTIMIZER_PROPERTIES_H_

#include <map>
#include <string>
#include <vector>

#include "src/catalog/catalog.h"
#include "src/common/interval.h"

namespace dhqp {

/// Locality value meaning "inputs from more than one source" — such a group
/// can never be pushed whole to a remote server.
constexpr int kMixedLocality = -2;

/// Group (logical) properties (§4.1.1): facts true of *every* alternative in
/// a memo group — output columns, cardinality estimate, constraint-derived
/// column domains (§4.1.5), and source locality (§4.1.2's "grouping ...
/// based on the locality of the operand tables").
struct LogicalProps {
  std::vector<int> output_cols;
  double cardinality = 0;

  /// kLocalSource, a linked-server id, or kMixedLocality.
  int locality = kLocalSource;

  /// Constraint property framework: known domain of each output column.
  /// Absent entries mean the full domain.
  std::map<int, IntervalSet> domains;

  /// True when the domains prove the relation is empty (static pruning).
  bool contradiction = false;
};

/// Physical plan properties (§4.1.1): delivered/required characteristics of
/// a particular physical plan. Sort order is the classic example; this
/// system adds rescannability, which the nested-loops join requires of its
/// inner side and the Spool enforcer delivers over remote streams (§4.1.4).
struct PhysicalProps {
  std::vector<std::pair<int, bool>> sort;  ///< (column id, ascending).
  bool rescannable = false;

  /// Degree of parallelism: the number of independent partition streams the
  /// plan produces (1 = the classic serial stream). Parallelism is a
  /// *physical* property in the Cascades sense — the exchange enforcer
  /// converts between degrees, exactly like Sort converts between orders.
  int dop = 1;

  /// When dop > 1: column ids the streams are hash-partitioned on. Empty
  /// means "partitioned arbitrarily" (e.g. a block-cyclic parallel scan).
  /// As a *requirement*, empty accepts any partitioning while a non-empty
  /// list demands that exact hash partitioning (what hash join / hash
  /// aggregate need so partition-local tables see complete key groups).
  std::vector<int> partition_cols;

  bool HasSort() const { return !sort.empty(); }
  bool Parallel() const { return dop > 1; }

  /// True if a plan delivering `*this` satisfies `required`.
  bool Satisfies(const PhysicalProps& required) const {
    if (required.dop != dop) return false;
    if (required.dop > 1 && !required.partition_cols.empty() &&
        partition_cols != required.partition_cols) {
      return false;
    }
    if (required.rescannable && !rescannable) return false;
    if (required.sort.size() > sort.size()) return false;
    for (size_t i = 0; i < required.sort.size(); ++i) {
      if (sort[i] != required.sort[i]) return false;
    }
    return true;
  }

  /// Stable key for winner lookup in a memo group.
  std::string Fingerprint() const {
    std::string fp = rescannable ? "R" : "-";
    for (const auto& [col, asc] : sort) {
      fp += ":" + std::to_string(col) + (asc ? "a" : "d");
    }
    if (dop > 1) {
      fp += "|D" + std::to_string(dop);
      for (int col : partition_cols) fp += "." + std::to_string(col);
    }
    return fp;
  }
};

}  // namespace dhqp

#endif  // DHQP_OPTIMIZER_PROPERTIES_H_
