#ifndef DHQP_SYSVIEW_QUERY_STORE_H_
#define DHQP_SYSVIEW_QUERY_STORE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/waits.h"
#include "src/executor/profile.h"

namespace dhqp {
namespace sysview {

/// Normalizes one SQL statement for fingerprinting: lower-cased, whitespace
/// collapsed, numeric and string literals replaced by '?'. Two executions of
/// the same statement shape (differing only in literal values) normalize to
/// the same text — the Query Store's unit of aggregation, mirroring SQL
/// Server's query_hash over the parameterized form.
std::string NormalizeStatement(const std::string& sql);

/// FNV-1a hash of NormalizeStatement(sql).
uint64_t FingerprintStatement(const std::string& sql);

/// Fingerprint rendered the way dm_exec_query_stats exposes it ("0x...").
std::string FingerprintToString(uint64_t fingerprint);

/// One completed statement execution as the Query Store records it. Plain
/// values only (counters are snapshotted at record time), so snapshots are
/// stable copies.
struct ExecutionRecord {
  int64_t execution_id = 0;  ///< Monotonic per store; assigned by Record().
  uint64_t fingerprint = 0;
  std::string statement;       ///< Raw text (truncated to kMaxStatementLen).
  std::string statement_type;  ///< "select", "insert", "update", ...
  int64_t duration_ns = 0;
  int64_t rows = 0;  ///< Result rows for queries, rows affected for DML.
  bool ok = true;
  std::string error;  ///< StatusCodeName when !ok.
  bool plan_cache_hit = false;
  bool plan_cacheable = false;  ///< Went through the plan cache (SELECT).
  int64_t retries = 0;
  int64_t timeouts = 0;
  int64_t faults = 0;
  int64_t warnings = 0;
  /// Correlation id of the distributed request this execution belonged to
  /// (see src/common/activity.h); the join key of
  /// sys..dm_exec_distributed_requests. Empty only for executions recorded
  /// before the id existed.
  std::string activity_id;
  /// Per-type wait accounting snapshotted at record time.
  waits::WaitTotals waits;
  /// Operator profile of the execution when collected; shared with
  /// QueryResult. Quiescent once recorded (the executor joined its threads),
  /// so readers may load its atomics freely.
  std::shared_ptr<OperatorProfile> profile;

  static constexpr size_t kMaxStatementLen = 512;
};

/// Per-fingerprint aggregate over every execution ever recorded (aggregates
/// survive ring eviction, like SQL Server's query_store_runtime_stats).
struct FingerprintStats {
  uint64_t fingerprint = 0;
  std::string sample_statement;  ///< First-seen raw text.
  std::string statement_type;
  int64_t executions = 0;
  int64_t failures = 0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t total_duration_ns = 0;
  int64_t min_duration_ns = 0;
  int64_t max_duration_ns = 0;
  int64_t rows = 0;
  int64_t retries = 0;
  int64_t timeouts = 0;
  int64_t faults = 0;
  int64_t warnings = 0;
  int64_t wait_count = 0;     ///< Blocked intervals across all executions.
  int64_t total_wait_ns = 0;  ///< Blocked time across all executions.
  int64_t last_execution_id = 0;
};

/// The Query Store: a fixed-capacity ring of per-execution records plus
/// per-fingerprint aggregates, populated by Engine::Execute after every
/// statement (DMV queries excluded — see engine.cc — so observing the store
/// does not grow it). Thread-safe: a DMV scan may snapshot concurrently with
/// the engine recording; snapshots are deterministic copies in execution-id
/// order under one mutex hold.
class QueryStore {
 public:
  explicit QueryStore(size_t capacity) : capacity_(capacity ? capacity : 1) {}

  /// Appends one execution record (assigning its execution id) and folds it
  /// into the fingerprint aggregate. Evicts the oldest record beyond
  /// capacity; aggregates are never evicted.
  void Record(ExecutionRecord record);

  /// Ring contents, oldest first.
  std::vector<ExecutionRecord> Snapshot() const;
  /// Aggregates sorted by first-seen order (ascending first execution id).
  std::vector<FingerprintStats> AggregateSnapshot() const;

  size_t capacity() const { return capacity_; }
  size_t size() const;
  /// Executions ever recorded (>= size() once the ring wrapped).
  int64_t total_recorded() const;

  /// Forgets all records and aggregates (tests); the execution-id counter
  /// keeps advancing so ids stay unique across a Clear.
  void Clear();

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  int64_t next_execution_id_ = 1;
  std::deque<ExecutionRecord> ring_;
  std::map<uint64_t, FingerprintStats> aggregates_;
  std::vector<uint64_t> aggregate_order_;  ///< Fingerprints, first-seen order.
};

}  // namespace sysview
}  // namespace dhqp

#endif  // DHQP_SYSVIEW_QUERY_STORE_H_
