#include "src/sysview/query_store.h"

#include <cctype>
#include <cstdio>

namespace dhqp {
namespace sysview {

namespace {

// Locks the store mutex, charging contention as QUERY_STORE_MUTEX wait.
// Uncontended acquisition takes the try_lock fast path and records nothing.
std::unique_lock<std::mutex> LockStore(std::mutex& mu) {
  std::unique_lock<std::mutex> lock(mu, std::try_to_lock);
  if (!lock.owns_lock()) {
    waits::BlockTimer timer;
    lock.lock();
    waits::RecordWait(waits::WaitType::kQueryStoreMutex, timer.Elapsed());
  }
  return lock;
}

}  // namespace

std::string NormalizeStatement(const std::string& sql) {
  std::string out;
  out.reserve(sql.size());
  size_t i = 0;
  const size_t n = sql.size();
  auto last_is_space = [&out] {
    return out.empty() || out.back() == ' ';
  };
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!last_is_space()) out.push_back(' ');
      ++i;
      continue;
    }
    if (c == '\'') {
      // String literal: skip to the closing quote (doubled quotes escape).
      ++i;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {
            i += 2;
            continue;
          }
          ++i;
          break;
        }
        ++i;
      }
      out.push_back('?');
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      // Numeric literal (only when not part of an identifier like "t2").
      char prev = out.empty() ? ' ' : out.back();
      bool in_word = std::isalnum(static_cast<unsigned char>(prev)) ||
                     prev == '_' || prev == '?';
      if (!in_word) {
        while (i < n && (std::isdigit(static_cast<unsigned char>(sql[i])) ||
                         sql[i] == '.')) {
          ++i;
        }
        out.push_back('?');
        continue;
      }
    }
    out.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    ++i;
  }
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

uint64_t FingerprintStatement(const std::string& sql) {
  const std::string normalized = NormalizeStatement(sql);
  uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a offset basis.
  for (char c : normalized) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;  // FNV prime.
  }
  return h;
}

std::string FingerprintToString(uint64_t fingerprint) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(fingerprint));
  return buf;
}

void QueryStore::Record(ExecutionRecord record) {
  if (record.statement.size() > ExecutionRecord::kMaxStatementLen) {
    record.statement.resize(ExecutionRecord::kMaxStatementLen);
  }
  auto lock = LockStore(mu_);
  record.execution_id = next_execution_id_++;

  auto [it, inserted] = aggregates_.try_emplace(record.fingerprint);
  FingerprintStats& agg = it->second;
  if (inserted) {
    agg.fingerprint = record.fingerprint;
    agg.sample_statement = record.statement;
    agg.statement_type = record.statement_type;
    agg.min_duration_ns = record.duration_ns;
    aggregate_order_.push_back(record.fingerprint);
  }
  ++agg.executions;
  if (!record.ok) ++agg.failures;
  if (record.plan_cacheable) {
    if (record.plan_cache_hit) {
      ++agg.cache_hits;
    } else {
      ++agg.cache_misses;
    }
  }
  agg.total_duration_ns += record.duration_ns;
  if (record.duration_ns < agg.min_duration_ns) {
    agg.min_duration_ns = record.duration_ns;
  }
  if (record.duration_ns > agg.max_duration_ns) {
    agg.max_duration_ns = record.duration_ns;
  }
  agg.rows += record.rows;
  agg.retries += record.retries;
  agg.timeouts += record.timeouts;
  agg.faults += record.faults;
  agg.warnings += record.warnings;
  agg.wait_count += record.waits.total_count();
  agg.total_wait_ns += record.waits.total_ns();
  agg.last_execution_id = record.execution_id;

  ring_.push_back(std::move(record));
  while (ring_.size() > capacity_) ring_.pop_front();
}

std::vector<ExecutionRecord> QueryStore::Snapshot() const {
  auto lock = LockStore(mu_);
  return std::vector<ExecutionRecord>(ring_.begin(), ring_.end());
}

std::vector<FingerprintStats> QueryStore::AggregateSnapshot() const {
  auto lock = LockStore(mu_);
  std::vector<FingerprintStats> out;
  out.reserve(aggregate_order_.size());
  for (uint64_t fp : aggregate_order_) {
    out.push_back(aggregates_.at(fp));
  }
  return out;
}

size_t QueryStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

int64_t QueryStore::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_execution_id_ - 1;
}

void QueryStore::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  aggregates_.clear();
  aggregate_order_.clear();
}

}  // namespace sysview
}  // namespace dhqp
