#ifndef DHQP_SYSVIEW_REQUESTS_H_
#define DHQP_SYSVIEW_REQUESTS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/waits.h"
#include "src/executor/profile.h"

namespace dhqp {
namespace sysview {

/// Statement lifecycle stage, in order. dm_exec_requests reports the
/// current one; kFinished only appears to a holder that kept the state
/// alive past unregistration (the registry drops finished requests).
enum class RequestPhase : int {
  kParse = 0,
  kBind,
  kOptimize,
  kQueued,  ///< Waiting in the workload governor for a memory grant.
  kExecute,
  kFinished,
};

const char* PhaseName(RequestPhase phase);

/// Everything dm_exec_requests knows about one in-flight statement. Owned
/// by shared_ptr so a DMV snapshot taken mid-completion stays valid after
/// the request unregisters — readers see the final counter values, never a
/// dangling pointer. All mutable fields are atomics or internally locked;
/// the identity fields (engine, activity_id, statement, dop, start_ns) are
/// set once at registration and read-only afterwards.
struct RequestState {
  int64_t request_id = 0;
  std::string engine;       ///< EngineOptions::name of the executing engine.
  std::string activity_id;  ///< Correlates with query store + trace spans.
  std::string statement;    ///< Leading fragment of the SQL text.
  int dop = 1;
  int64_t start_ns = 0;

  std::atomic<int> phase{static_cast<int>(RequestPhase::kParse)};
  /// Set when the statement touches sys.. (AST gate or post-bind
  /// PlanTouchesSys): a DMV scan must not list itself.
  std::atomic<bool> exclude{false};

  /// Live wait accounting: Engine::Execute installs this tally as the
  /// thread's per-query sink, so exchange/prefetch/link waits accumulate
  /// here while the query runs and dm_exec_requests reads them mid-flight.
  waits::WaitTally waits;

  /// Query-wide memory: every buffering operator and queue stash charges
  /// this tracker (via ExecContext::memory) alongside its per-operator
  /// slot. current() returns to zero once execution tears down.
  MemTracker memory;

  /// Workload-governor grant accounting, written when the statement passes
  /// admission and cleared on release. Zero while the governor is disabled
  /// or before the statement reaches the grant gate; dm_exec_requests and
  /// dm_exec_query_memory_grants read these mid-flight.
  std::atomic<int64_t> requested_grant_bytes{0};
  std::atomic<int64_t> granted_bytes{0};

  RequestPhase Phase() const {
    return static_cast<RequestPhase>(phase.load(std::memory_order_relaxed));
  }

  /// The root of the executing profile tree, published by ExecutePlan just
  /// before Open. Null until execution starts. Shared ownership so a
  /// snapshot outlives the query.
  std::shared_ptr<const OperatorProfile> profile() const;
  void set_profile(std::shared_ptr<const OperatorProfile> p);

 private:
  mutable std::mutex profile_mu_;
  std::shared_ptr<const OperatorProfile> profile_;
};

/// Process-wide table of in-flight statements — the dm_exec_requests
/// backing store. One registry serves every in-process engine (requests
/// carry their engine name). Registration is O(log n) under one mutex;
/// snapshots copy shared_ptrs, so scans never block the queries they
/// observe beyond the map lock.
class RequestRegistry {
 public:
  static RequestRegistry& Global();

  /// Runtime kill switch (on by default): when off, Register returns null
  /// and Engine::Execute falls back to an inline wait tally — the
  /// bench_requests gate compares the two to bound monitoring overhead.
  static void SetEnabled(bool enabled);
  static bool Enabled();

  std::shared_ptr<RequestState> Register(const std::string& engine,
                                         const std::string& activity_id,
                                         const std::string& statement,
                                         int dop);
  void Unregister(int64_t request_id);
  std::vector<std::shared_ptr<RequestState>> Snapshot() const;

 private:
  RequestRegistry() = default;

  mutable std::mutex mu_;
  std::map<int64_t, std::shared_ptr<RequestState>> live_;
  std::atomic<int64_t> next_id_{1};
};

/// RAII registration installed by Engine::Execute for the statement's full
/// lifetime. Also publishes the state as the calling thread's *current
/// request* (innermost wins, like activity::Scope) so deeper layers —
/// phase transitions in the compiler, profile publication in the executor,
/// exclusion marking at the sys gates — reach it without plumbing.
class RequestScope {
 public:
  RequestScope(const std::string& engine, const std::string& activity_id,
               const std::string& statement, int dop);
  ~RequestScope();

  RequestScope(const RequestScope&) = delete;
  RequestScope& operator=(const RequestScope&) = delete;

  RequestState* state() const { return state_.get(); }
  /// The statement's wait sink: the registered state's tally, or an inline
  /// fallback when monitoring is disabled (wait totals still reach
  /// QueryResult either way).
  waits::WaitTally* wait_tally() {
    return state_ != nullptr ? &state_->waits : &fallback_waits_;
  }

 private:
  std::shared_ptr<RequestState> state_;
  RequestState* prev_ = nullptr;
  waits::WaitTally fallback_waits_;
};

/// The calling thread's innermost registered request (null when monitoring
/// is off or no statement is executing).
RequestState* CurrentRequest();

/// Phase transition for the thread's current request; no-op without one.
void SetCurrentPhase(RequestPhase phase);

/// Marks the thread's current request as self-excluded from
/// dm_exec_requests (statement touches sys..).
void MarkCurrentRequestExcluded();

/// Hands the executing profile tree to the thread's current request so
/// dm_exec_requests can read live row counts. Called by ExecutePlan.
void PublishCurrentRequestProfile(
    const std::shared_ptr<const OperatorProfile>& profile);

/// The thread's current request's query-wide memory tracker (null without
/// one) — what RunCachedPlan wires into ExecContext::memory.
MemTracker* CurrentRequestMemory();

/// Live rows produced so far, summed over every operator in the tree.
/// Monotonically non-decreasing while the query runs: profile counters
/// only accumulate and the tree shape is fixed before Open.
int64_t RowsProcessed(const OperatorProfile& root);

/// Live batches (remote wire blocks + local exec batches) over the tree.
int64_t BatchesProcessed(const OperatorProfile& root);

/// Percent-complete estimate: actual vs estimated rows at the profile
/// tree's leaves (the scan frontier — upper operators' estimates inherit
/// optimizer error, leaves track cardinality the closest). Clamped to
/// [0, 100]; 0 when the tree has no leaf estimates.
int PercentComplete(const OperatorProfile& root);

}  // namespace sysview
}  // namespace dhqp

#endif  // DHQP_SYSVIEW_REQUESTS_H_
