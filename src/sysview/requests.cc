#include "src/sysview/requests.h"

#include <algorithm>
#include <utility>

#include "src/common/fastclock.h"

namespace dhqp {
namespace sysview {

namespace {

/// Statement text stored per request is capped so a pathological generated
/// query cannot bloat the registry; dm_exec_requests is a monitoring
/// surface, not a SQL archive (the query store keeps full text).
constexpr size_t kMaxStatementChars = 512;

std::atomic<bool> g_enabled{true};

thread_local RequestState* t_current_request = nullptr;

}  // namespace

const char* PhaseName(RequestPhase phase) {
  switch (phase) {
    case RequestPhase::kParse:
      return "parse";
    case RequestPhase::kBind:
      return "bind";
    case RequestPhase::kOptimize:
      return "optimize";
    case RequestPhase::kQueued:
      return "queued";
    case RequestPhase::kExecute:
      return "execute";
    case RequestPhase::kFinished:
      return "finished";
  }
  return "unknown";
}

std::shared_ptr<const OperatorProfile> RequestState::profile() const {
  std::lock_guard<std::mutex> lock(profile_mu_);
  return profile_;
}

void RequestState::set_profile(std::shared_ptr<const OperatorProfile> p) {
  std::lock_guard<std::mutex> lock(profile_mu_);
  profile_ = std::move(p);
}

RequestRegistry& RequestRegistry::Global() {
  static RequestRegistry* registry = new RequestRegistry();  // Leaked.
  return *registry;
}

void RequestRegistry::SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

bool RequestRegistry::Enabled() {
  return g_enabled.load(std::memory_order_relaxed);
}

std::shared_ptr<RequestState> RequestRegistry::Register(
    const std::string& engine, const std::string& activity_id,
    const std::string& statement, int dop) {
  if (!Enabled()) return nullptr;
  auto state = std::make_shared<RequestState>();
  state->request_id = next_id_.fetch_add(1, std::memory_order_relaxed);
  state->engine = engine;
  state->activity_id = activity_id;
  state->statement = statement.substr(0, kMaxStatementChars);
  state->dop = dop;
  state->start_ns = fastclock::NowNs();
  std::lock_guard<std::mutex> lock(mu_);
  live_.emplace(state->request_id, state);
  return state;
}

void RequestRegistry::Unregister(int64_t request_id) {
  std::lock_guard<std::mutex> lock(mu_);
  live_.erase(request_id);
}

std::vector<std::shared_ptr<RequestState>> RequestRegistry::Snapshot() const {
  std::vector<std::shared_ptr<RequestState>> out;
  std::lock_guard<std::mutex> lock(mu_);
  out.reserve(live_.size());
  for (const auto& [id, state] : live_) out.push_back(state);
  return out;
}

RequestScope::RequestScope(const std::string& engine,
                           const std::string& activity_id,
                           const std::string& statement, int dop)
    : state_(RequestRegistry::Global().Register(engine, activity_id, statement,
                                                dop)),
      prev_(t_current_request) {
  if (state_ != nullptr) t_current_request = state_.get();
}

RequestScope::~RequestScope() {
  if (state_ != nullptr) {
    state_->phase.store(static_cast<int>(RequestPhase::kFinished),
                        std::memory_order_relaxed);
    RequestRegistry::Global().Unregister(state_->request_id);
    t_current_request = prev_;
  }
}

RequestState* CurrentRequest() { return t_current_request; }

void SetCurrentPhase(RequestPhase phase) {
  if (t_current_request == nullptr) return;
  t_current_request->phase.store(static_cast<int>(phase),
                                 std::memory_order_relaxed);
}

void MarkCurrentRequestExcluded() {
  if (t_current_request == nullptr) return;
  t_current_request->exclude.store(true, std::memory_order_relaxed);
}

void PublishCurrentRequestProfile(
    const std::shared_ptr<const OperatorProfile>& profile) {
  if (t_current_request == nullptr) return;
  t_current_request->set_profile(profile);
}

MemTracker* CurrentRequestMemory() {
  return t_current_request != nullptr ? &t_current_request->memory : nullptr;
}

int64_t RowsProcessed(const OperatorProfile& root) {
  int64_t rows = root.rows_out.load(std::memory_order_relaxed);
  for (const auto& child : root.children) rows += RowsProcessed(*child);
  return rows;
}

int64_t BatchesProcessed(const OperatorProfile& root) {
  int64_t batches = root.batches.load(std::memory_order_relaxed) +
                    root.exec_batches.load(std::memory_order_relaxed);
  for (const auto& child : root.children) batches += BatchesProcessed(*child);
  return batches;
}

namespace {

void LeafProgress(const OperatorProfile& p, double* estimated,
                  double* actual) {
  if (p.children.empty()) {
    if (p.estimated_rows > 0) {
      *estimated += p.estimated_rows;
      *actual += static_cast<double>(
          std::min<int64_t>(p.rows_out.load(std::memory_order_relaxed),
                            static_cast<int64_t>(p.estimated_rows)));
    }
    return;
  }
  for (const auto& child : p.children) LeafProgress(*child, estimated, actual);
}

}  // namespace

int PercentComplete(const OperatorProfile& root) {
  double estimated = 0;
  double actual = 0;
  LeafProgress(root, &estimated, &actual);
  if (estimated <= 0) return 0;
  const int pct = static_cast<int>(100.0 * actual / estimated);
  return std::max(0, std::min(100, pct));
}

}  // namespace sysview
}  // namespace dhqp
