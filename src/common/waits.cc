#include "src/common/waits.h"

#include <atomic>
#include <mutex>
#include <string>

#include "src/common/metrics.h"

namespace dhqp {
namespace waits {

namespace {

constexpr const char* kNames[kNumWaitTypes] = {
    "EXCHANGE_QUEUE_PUSH", "EXCHANGE_QUEUE_POP", "PREFETCH_QUEUE",
    "CONCAT_QUEUE",        "LINK_SEND",          "RETRY_BACKOFF",
    "PLAN_CACHE_MUTEX",    "QUERY_STORE_MUTEX",  "RESOURCE_SEMAPHORE",
    "SPILL_IO",
};

std::atomic<bool> g_enabled{true};

thread_local WaitTally* t_query_tally = nullptr;

/// One registry histogram per type, registered once and cached — RecordWait
/// must stay lock-free on the hot path. Histogram units are nanoseconds.
metrics::Histogram** GlobalHistograms() {
  static metrics::Histogram* hists[kNumWaitTypes] = {};
  static std::once_flag once;
  std::call_once(once, [] {
    for (int i = 0; i < kNumWaitTypes; ++i) {
      hists[i] = metrics::Registry::Global().GetHistogram(
          std::string("waits.") + kNames[i] + ".ns");
    }
  });
  return hists;
}

}  // namespace

const char* Name(WaitType type) { return kNames[static_cast<int>(type)]; }

std::string WaitTotals::TopType() const {
  int best = -1;
  int64_t best_ns = 0;
  for (int i = 0; i < kNumWaitTypes; ++i) {
    // Break ticks-ties (all ~0 ns under unenforced links) by event count so
    // the top type is still meaningful in fast test runs.
    if (count[i] > 0 &&
        (best < 0 || ns[i] > best_ns ||
         (ns[i] == best_ns && count[i] > count[best]))) {
      best = i;
      best_ns = ns[i];
    }
  }
  return best < 0 ? "" : kNames[best];
}

WaitTotals Snapshot(const WaitTally& tally) {
  WaitTotals out;
  for (int i = 0; i < kNumWaitTypes; ++i) {
    const WaitType t = static_cast<WaitType>(i);
    out.count[i] = tally.CountFor(t);
    out.ns[i] = tally.NsFor(t);
  }
  return out;
}

void SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

void RecordWait(WaitType type, int64_t elapsed_ticks, WaitTally* op) {
#ifdef DHQP_DISABLE_WAITS
  (void)type;
  (void)elapsed_ticks;
  (void)op;
#else
  if (!Enabled()) return;
  if (elapsed_ticks < 0) elapsed_ticks = 0;
  GlobalHistograms()[static_cast<int>(type)]->Observe(
      fastclock::ToNs(elapsed_ticks));
  if (t_query_tally != nullptr) t_query_tally->Add(type, elapsed_ticks);
  if (op != nullptr) op->Add(type, elapsed_ticks);
#endif
}

ScopedQueryTally::ScopedQueryTally(WaitTally* tally) : prev_(t_query_tally) {
  t_query_tally = tally;
}

ScopedQueryTally::~ScopedQueryTally() { t_query_tally = prev_; }

WaitTally* CurrentQueryTally() { return t_query_tally; }

namespace {
thread_local WaitTally* t_operator_tally = nullptr;
}  // namespace

ScopedOperatorTally::ScopedOperatorTally(WaitTally* tally) {
  if (tally == nullptr) return;
  prev_ = t_operator_tally;
  t_operator_tally = tally;
  installed_ = true;
}

ScopedOperatorTally::~ScopedOperatorTally() {
  if (installed_) t_operator_tally = prev_;
}

WaitTally* CurrentOperatorTally() { return t_operator_tally; }

std::vector<WaitStatRow> GlobalSnapshot() {
  std::vector<WaitStatRow> rows;
  rows.reserve(kNumWaitTypes);
  metrics::Histogram** hists = GlobalHistograms();
  for (int i = 0; i < kNumWaitTypes; ++i) {
    WaitStatRow row;
    row.wait_type = kNames[i];
    row.waiting_tasks_count = hists[i]->Count();
    row.wait_time_ns = hists[i]->Sum();
    const int64_t max = hists[i]->Max();
    row.max_wait_time_ns = row.waiting_tasks_count > 0 ? max : 0;
    rows.push_back(std::move(row));
  }
  return rows;
}

void ResetGlobal() {
  metrics::Histogram** hists = GlobalHistograms();
  for (int i = 0; i < kNumWaitTypes; ++i) hists[i]->Reset();
}

}  // namespace waits
}  // namespace dhqp
