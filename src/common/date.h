#ifndef DHQP_COMMON_DATE_H_
#define DHQP_COMMON_DATE_H_

#include <cstdint>
#include <string>

#include "src/common/status.h"

namespace dhqp {

/// Converts a proleptic Gregorian calendar date to days since 1970-01-01.
/// Months are 1-12, days 1-31; no validation beyond arithmetic.
int64_t CivilToDays(int year, int month, int day);

/// Inverse of CivilToDays.
void DaysToCivil(int64_t days, int* year, int* month, int* day);

/// Parses 'YYYY-MM-DD' (also accepts 'YYYY-M-D') into days since epoch.
Result<int64_t> ParseIsoDate(const std::string& text);

/// Renders days since epoch as 'YYYY-MM-DD'.
std::string DaysToIsoDate(int64_t days);

}  // namespace dhqp

#endif  // DHQP_COMMON_DATE_H_
