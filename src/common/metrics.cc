#include "src/common/metrics.h"

#include <bit>
#include <cinttypes>
#include <cstdio>

namespace dhqp {
namespace metrics {

namespace {

// Bucket index for v: 0 for v < 1, else 1 + floor(log2(v)) clamped to the
// last bucket. bit_width(1)=1 -> bucket 1 (range [1,2)), bit_width(2)=2 ->
// bucket 2 (range [2,4)), etc.
inline int BucketIndex(int64_t v) {
  if (v < 1) return 0;
  int w = std::bit_width(static_cast<uint64_t>(v));
  return w < Histogram::kBuckets ? w : Histogram::kBuckets - 1;
}

template <typename T>
void AtomicStoreMin(std::atomic<T>* a, T v) {
  T cur = a->load(std::memory_order_relaxed);
  while (v < cur &&
         !a->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

template <typename T>
void AtomicStoreMax(std::atomic<T>* a, T v) {
  T cur = a->load(std::memory_order_relaxed);
  while (v > cur &&
         !a->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

void Histogram::Observe(int64_t v) {
  buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  AtomicStoreMin(&min_, v);
  AtomicStoreMax(&max_, v);
}

int64_t Histogram::Min() const {
  int64_t m = min_.load(std::memory_order_relaxed);
  return m == INT64_MAX ? 0 : m;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(INT64_MAX, std::memory_order_relaxed);
  max_.store(INT64_MIN, std::memory_order_relaxed);
}

Registry& Registry::Global() {
  static Registry* registry = new Registry();  // Never destroyed: worker
  return *registry;                            // threads may outlive main.
}

Counter* Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot.reset(new Counter());
  return slot.get();
}

Gauge* Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot.reset(new Gauge());
  return slot.get();
}

Histogram* Registry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot.reset(new Histogram());
  return slot.get();
}

namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) >= 0x20) {
      out->push_back(c);
    }
  }
}

void AppendKey(std::string* out, const std::string& name) {
  out->push_back('"');
  AppendEscaped(out, name);
  out->append("\":");
}

void AppendInt(std::string* out, int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out->append(buf);
}

}  // namespace

std::string Registry::SnapshotJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  out.reserve(1024);
  out += "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ",";
    first = false;
    AppendKey(&out, name);
    AppendInt(&out, c->Value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ",";
    first = false;
    AppendKey(&out, name);
    AppendInt(&out, g->Value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ",";
    first = false;
    AppendKey(&out, name);
    out += "{\"count\":";
    AppendInt(&out, h->Count());
    out += ",\"sum\":";
    AppendInt(&out, h->Sum());
    out += ",\"min\":";
    AppendInt(&out, h->Min());
    out += ",\"max\":";
    AppendInt(&out, h->Max() == INT64_MIN ? 0 : h->Max());
    out += ",\"buckets\":{";
    bool bfirst = true;
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      int64_t n = h->BucketCount(i);
      if (n == 0) continue;
      if (!bfirst) out += ",";
      bfirst = false;
      // Key is the bucket's exclusive upper bound 2^i ("1" for the v<1
      // bucket); the last bucket is open-ended, keyed "inf".
      out.push_back('"');
      if (i == Histogram::kBuckets - 1) {
        out += "inf";
      } else {
        AppendInt(&out, int64_t{1} << i);
      }
      out += "\":";
      AppendInt(&out, n);
    }
    out += "}}";
  }
  out += "}}";
  return out;
}

std::vector<Sample> Registry::Samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Sample> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, c] : counters_) {
    Sample s;
    s.kind = "counter";
    s.name = name;
    s.value = c->Value();
    out.push_back(std::move(s));
  }
  for (const auto& [name, g] : gauges_) {
    Sample s;
    s.kind = "gauge";
    s.name = name;
    s.value = g->Value();
    out.push_back(std::move(s));
  }
  for (const auto& [name, h] : histograms_) {
    Sample s;
    s.kind = "histogram";
    s.name = name;
    s.count = h->Count();
    s.sum = h->Sum();
    s.value = s.sum;
    s.min = h->Min();
    int64_t max = h->Max();
    s.max = max == INT64_MIN ? 0 : max;
    out.push_back(std::move(s));
  }
  return out;
}

void Registry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

}  // namespace metrics
}  // namespace dhqp
