#ifndef DHQP_COMMON_ACTIVITY_H_
#define DHQP_COMMON_ACTIVITY_H_

#include <string>

namespace dhqp {
namespace activity {

/// Distributed-request correlation ids — the paper's coordinator/member
/// split made traceable. The *coordinator* (the engine a client hands a
/// statement to) originates an activity id `<engine>#<seq>` for the
/// statement; every piece of work that statement causes — link messages to
/// providers, pass-through commands, member-engine executions — runs under
/// that id, and each member engine stamps it onto its own QueryStore record
/// and trace spans. sys..dm_exec_distributed_requests joins coordinator
/// executions to member records on it.
///
/// Wire format: the id rides in the (simulated) message envelope — the
/// fixed per-message header already charged by every connector send
/// includes a 16-byte activity slot, so propagating it adds no bytes to the
/// existing link accounting. In-process the envelope slot is realized as a
/// thread-local: a provider command executes on the coordinator's calling
/// thread (or on a worker that re-installed the id captured at launch), so
/// the member engine reads the caller's id directly.

/// The calling thread's current activity id; empty when no distributed
/// request is in flight on this thread.
const std::string& Current();

/// Fresh coordinator-side id, `<engine_name>#<seq>` with a process-wide
/// monotonic sequence (ids stay unique across engines in one process even
/// when engines share a name).
std::string Generate(const std::string& engine_name);

/// Installs `id` as the thread's current activity id for the scope's
/// lifetime; restores the previous id on exit. Engine::Execute originates a
/// Scope when no id is present (it is the coordinator) and leaves an
/// incoming id alone (it is a member serving a coordinator's command);
/// worker threads re-install the id captured at launch.
class Scope {
 public:
  explicit Scope(std::string id);
  ~Scope();

  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  std::string prev_;
};

}  // namespace activity
}  // namespace dhqp

#endif  // DHQP_COMMON_ACTIVITY_H_
