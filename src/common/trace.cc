#include "src/common/trace.h"

#include <cinttypes>
#include <cstdio>
#include <map>

#include "src/common/activity.h"

namespace dhqp {
namespace trace {

namespace {

std::atomic<uint32_t> g_next_tid{0};
thread_local uint32_t t_tid = 0;
thread_local uint32_t t_depth = 0;

// The thread's engine tag lives behind a function-local so first use on a
// worker thread never races static init; empty string = untagged.
std::string& MutableEngineTag() {
  thread_local std::string tag;
  return tag;
}

// Bounded inline copy for SpanRecord's fixed char fields.
void CopyTruncated(char* dst, size_t cap, const char* src) {
  size_t n = 0;
  while (n < cap - 1 && src[n] != '\0') {
    dst[n] = src[n];
    ++n;
  }
  dst[n] = '\0';
}

// tid -> human-readable track name; read only at dump time, so one mutex
// keeps SetCurrentThreadName off the span hot path entirely. Leaked like
// the Tracer: worker threads may name themselves during static teardown.
std::mutex& ThreadNameMu() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

std::map<uint32_t, std::string>& ThreadNameMap() {
  static std::map<uint32_t, std::string>* names =
      new std::map<uint32_t, std::string>();
  return *names;
}

}  // namespace

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();  // Never destroyed: threads may
  return *tracer;                        // record during static teardown.
}

uint32_t Tracer::CurrentThreadId() {
  if (t_tid == 0) {
    t_tid = g_next_tid.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  return t_tid;
}

void Tracer::SetCurrentThreadName(const std::string& name) {
  const uint32_t tid = CurrentThreadId();
  std::lock_guard<std::mutex> lock(ThreadNameMu());
  ThreadNameMap()[tid] = name;
}

std::vector<std::pair<uint32_t, std::string>> Tracer::ThreadNames() {
  std::lock_guard<std::mutex> lock(ThreadNameMu());
  return std::vector<std::pair<uint32_t, std::string>>(ThreadNameMap().begin(),
                                                       ThreadNameMap().end());
}

EngineTagScope::EngineTagScope(std::string tag)
    : prev_(std::move(MutableEngineTag())) {
  MutableEngineTag() = std::move(tag);
}

EngineTagScope::~EngineTagScope() { MutableEngineTag() = std::move(prev_); }

const std::string& CurrentEngineTag() { return MutableEngineTag(); }

uint32_t Tracer::EnterDepth() { return t_depth++; }

void Tracer::LeaveDepth() {
  if (t_depth > 0) --t_depth;
}

void Tracer::Enable(size_t capacity) {
  if (capacity == 0) capacity = kDefaultCapacity;
  if (capacity != capacity_) {
    slots_.reset(new SpanRecord[capacity]);
    committed_.reset(new std::atomic<bool>[capacity]);
    capacity_ = capacity;
  }
  for (size_t i = 0; i < capacity_; ++i) {
    committed_[i].store(false, std::memory_order_relaxed);
  }
  next_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_release);
}

void Tracer::Disable() { enabled_.store(false, std::memory_order_release); }

void Tracer::Record(const char* name, const char* detail, int64_t start_ns,
                    int64_t dur_ns, uint32_t depth) {
  if (capacity_ == 0) return;
  size_t slot = next_.fetch_add(1, std::memory_order_relaxed);
  if (slot >= capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    // Park next_ so it cannot wrap around to a valid slot after ~2^64
    // increments; benign race, every writer stores the same idea.
    if (slot > capacity_ * 2 + 1024) {
      next_.store(capacity_, std::memory_order_relaxed);
    }
    return;
  }
  SpanRecord& rec = slots_[slot];
  rec.name = name;
  CopyTruncated(rec.detail, sizeof(rec.detail),
                detail != nullptr ? detail : "");
  CopyTruncated(rec.engine, sizeof(rec.engine), MutableEngineTag().c_str());
  CopyTruncated(rec.activity, sizeof(rec.activity),
                activity::Current().c_str());
  rec.start_ns = start_ns;
  rec.dur_ns = dur_ns;
  rec.tid = CurrentThreadId();
  rec.depth = depth;
  committed_[slot].store(true, std::memory_order_release);
}

size_t Tracer::size() const {
  size_t claimed = next_.load(std::memory_order_relaxed);
  size_t limit = claimed < capacity_ ? claimed : capacity_;
  size_t n = 0;
  for (size_t i = 0; i < limit; ++i) {
    if (committed_[i].load(std::memory_order_acquire)) ++n;
  }
  return n;
}

std::vector<SpanRecord> Tracer::Snapshot() const {
  std::vector<SpanRecord> out;
  size_t claimed = next_.load(std::memory_order_relaxed);
  size_t limit = claimed < capacity_ ? claimed : capacity_;
  out.reserve(limit);
  for (size_t i = 0; i < limit; ++i) {
    if (committed_[i].load(std::memory_order_acquire)) out.push_back(slots_[i]);
  }
  return out;
}

void Tracer::Clear() {
  for (size_t i = 0; i < capacity_; ++i) {
    committed_[i].store(false, std::memory_order_relaxed);
  }
  next_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
}

namespace {

void AppendEscaped(std::string* out, const char* s) {
  for (; *s != '\0'; ++s) {
    char c = *s;
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) >= 0x20) {
      out->push_back(c);
    }
  }
}

}  // namespace

std::string Tracer::DumpChromeJson() const {
  std::vector<SpanRecord> spans = Snapshot();
  std::string out;
  out.reserve(spans.size() * 128 + 64);
  out += "{\"traceEvents\":[";
  char buf[160];
  bool first = true;
  // Chrome "M" metadata events label each named worker track; emitted
  // first so viewers apply the names before laying out the spans.
  for (const auto& [tid, name] : ThreadNames()) {
    if (!first) out += ",";
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                  "\"tid\":%" PRIu32 ",\"args\":{\"name\":\"",
                  tid);
    out += buf;
    AppendEscaped(&out, name.c_str());
    out += "\"}}";
  }
  for (const SpanRecord& s : spans) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"";
    AppendEscaped(&out, s.name);
    out += "\",\"ph\":\"X\",\"pid\":1,\"tid\":";
    std::snprintf(buf, sizeof(buf),
                  "%" PRIu32 ",\"ts\":%.3f,\"dur\":%.3f", s.tid,
                  s.start_ns / 1000.0, s.dur_ns / 1000.0);
    out += buf;
    if (s.detail[0] != '\0' || s.activity[0] != '\0') {
      out += ",\"args\":{";
      bool first_arg = true;
      if (s.detail[0] != '\0') {
        out += "\"detail\":\"";
        AppendEscaped(&out, s.detail);
        out += "\"";
        first_arg = false;
      }
      if (s.activity[0] != '\0') {
        if (!first_arg) out += ",";
        out += "\"activity\":\"";
        AppendEscaped(&out, s.activity);
        out += "\"";
      }
      out += "}";
    }
    out += "}";
  }
  out += "]}";
  return out;
}

std::string Tracer::DumpMergedChromeTrace(const std::vector<MergedSpan>& spans) {
  // One Chrome pid per engine tag: assign ids in first-appearance order so
  // the coordinator (whose spans arrive first) renders as the top process.
  std::vector<std::string> engines;
  auto pid_of = [&engines](const std::string& engine) -> size_t {
    const std::string& key = engine.empty() ? std::string("(untagged)")
                                            : engine;
    for (size_t i = 0; i < engines.size(); ++i) {
      if (engines[i] == key) return i + 1;
    }
    engines.push_back(key);
    return engines.size();
  };
  for (const MergedSpan& s : spans) pid_of(s.engine);

  std::string out;
  out.reserve(spans.size() * 160 + 64);
  out += "{\"traceEvents\":[";
  char buf[160];
  bool first = true;
  for (size_t i = 0; i < engines.size(); ++i) {
    if (!first) out += ",";
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%zu,"
                  "\"tid\":0,\"args\":{\"name\":\"",
                  i + 1);
    out += buf;
    AppendEscaped(&out, engines[i].c_str());
    out += "\"}}";
  }
  for (const MergedSpan& s : spans) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"";
    AppendEscaped(&out, s.name.c_str());
    std::snprintf(buf, sizeof(buf),
                  "\",\"ph\":\"X\",\"pid\":%zu,\"tid\":%" PRId64
                  ",\"ts\":%.3f,\"dur\":%.3f",
                  pid_of(s.engine), s.tid, s.start_ns / 1000.0,
                  s.dur_ns / 1000.0);
    out += buf;
    out += ",\"args\":{";
    out += "\"activity\":\"";
    AppendEscaped(&out, s.activity_id.c_str());
    out += "\"";
    if (!s.detail.empty()) {
      out += ",\"detail\":\"";
      AppendEscaped(&out, s.detail.c_str());
      out += "\"";
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

}  // namespace trace
}  // namespace dhqp
