#include "src/common/status.h"

namespace dhqp {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kConstraintViolation:
      return "ConstraintViolation";
    case StatusCode::kTransactionAborted:
      return "TransactionAborted";
    case StatusCode::kNetworkError:
      return "NetworkError";
    case StatusCode::kExecutionError:
      return "ExecutionError";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = StatusCodeName(code_);
  s += ": ";
  s += message_;
  return s;
}

}  // namespace dhqp
