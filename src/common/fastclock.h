#ifndef DHQP_COMMON_FASTCLOCK_H_
#define DHQP_COMMON_FASTCLOCK_H_

#include <chrono>
#include <cstdint>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#define DHQP_FASTCLOCK_RDTSC 1
#endif

namespace dhqp {
namespace fastclock {

/// Monotonic wall clock in nanoseconds (steady_clock). Use for span
/// timestamps and anything read rarely.
inline int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Cheap per-call timestamp for hot-path instrumentation (per-row operator
/// timing runs twice per Next() per operator). On x86-64 this is one RDTSC
/// (~7 ns, vs ~20-25 ns for steady_clock); elsewhere it falls back to
/// NowNs(), making ToNs the identity.
inline int64_t Ticks() {
#ifdef DHQP_FASTCLOCK_RDTSC
  return static_cast<int64_t>(__rdtsc());
#else
  return NowNs();
#endif
}

/// Converts an accumulated tick *interval* to nanoseconds. The tick/ns
/// ratio is calibrated lazily against steady_clock over the process's own
/// lifetime (a static anchor captured at startup vs the first ToNs call),
/// so there is no startup stall; the first conversion must happen at least
/// ~100 µs into the process, which any real caller satisfies.
int64_t ToNs(int64_t ticks);

}  // namespace fastclock
}  // namespace dhqp

#endif  // DHQP_COMMON_FASTCLOCK_H_
