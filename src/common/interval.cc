#include "src/common/interval.h"

#include <algorithm>

namespace dhqp {

namespace {

// Compares two lower bounds: which one admits smaller values first.
// -inf < any finite; at equal values, inclusive starts earlier.
int CompareLower(const Bound& a, const Bound& b) {
  if (!a.value && !b.value) return 0;
  if (!a.value) return -1;
  if (!b.value) return 1;
  int c = a.value->Compare(*b.value);
  if (c != 0) return c;
  if (a.inclusive == b.inclusive) return 0;
  return a.inclusive ? -1 : 1;
}

// Compares two upper bounds: which one admits larger values.
// +inf > any finite; at equal values, exclusive ends earlier.
int CompareUpper(const Bound& a, const Bound& b) {
  if (!a.value && !b.value) return 0;
  if (!a.value) return 1;
  if (!b.value) return -1;
  int c = a.value->Compare(*b.value);
  if (c != 0) return c;
  if (a.inclusive == b.inclusive) return 0;
  return a.inclusive ? 1 : -1;
}

// True if an interval with lower bound `lo` and upper bound `hi` is empty.
bool BoundsEmpty(const Bound& lo, const Bound& hi) {
  if (!lo.value || !hi.value) return false;
  int c = lo.value->Compare(*hi.value);
  if (c > 0) return true;
  if (c == 0) return !(lo.inclusive && hi.inclusive);
  return false;
}

// True if interval a's upper touches or overlaps interval b's lower so the
// two can be merged into one contiguous interval.
bool TouchesOrOverlaps(const Interval& a, const Interval& b) {
  // b starts after a ends?
  if (!a.hi.value || !b.lo.value) return true;  // infinite sides always meet
  int c = b.lo.value->Compare(*a.hi.value);
  if (c < 0) return true;
  if (c > 0) return false;
  // Equal boundary value: they connect if at least one side includes it.
  return a.hi.inclusive || b.lo.inclusive;
}

}  // namespace

bool Interval::Empty() const { return BoundsEmpty(lo, hi); }

bool Interval::Contains(const Value& v) const {
  if (lo.value) {
    int c = v.Compare(*lo.value);
    if (c < 0 || (c == 0 && !lo.inclusive)) return false;
  }
  if (hi.value) {
    int c = v.Compare(*hi.value);
    if (c > 0 || (c == 0 && !hi.inclusive)) return false;
  }
  return true;
}

std::string Interval::ToString() const {
  std::string out = lo.inclusive && lo.value ? "[" : "(";
  out += lo.value ? lo.value->ToString() : "-inf";
  out += ", ";
  out += hi.value ? hi.value->ToString() : "+inf";
  out += hi.inclusive && hi.value ? "]" : ")";
  return out;
}

IntervalSet IntervalSet::All() {
  IntervalSet s;
  s.intervals_.push_back(Interval{});
  return s;
}

IntervalSet IntervalSet::None() { return IntervalSet(); }

IntervalSet IntervalSet::Point(const Value& v) {
  return Range(Bound{v, true}, Bound{v, true});
}

IntervalSet IntervalSet::Range(Bound lo, Bound hi) {
  IntervalSet s;
  Interval iv{std::move(lo), std::move(hi)};
  if (!iv.Empty()) s.intervals_.push_back(std::move(iv));
  return s;
}

IntervalSet IntervalSet::FromComparison(const std::string& op,
                                        const Value& v) {
  if (op == "=") return Point(v);
  if (op == "<") return Range(Bound{}, Bound{v, false});
  if (op == "<=") return Range(Bound{}, Bound{v, true});
  if (op == ">") return Range(Bound{v, false}, Bound{});
  if (op == ">=") return Range(Bound{v, true}, Bound{});
  if (op == "<>" || op == "!=") {
    IntervalSet s = Range(Bound{}, Bound{v, false});
    s.Add(Interval{Bound{v, false}, Bound{}});
    return s;
  }
  return All();
}

bool IntervalSet::IsAll() const {
  return intervals_.size() == 1 && !intervals_[0].lo.value &&
         !intervals_[0].hi.value;
}

bool IntervalSet::Contains(const Value& v) const {
  for (const Interval& iv : intervals_) {
    if (iv.Contains(v)) return true;
  }
  return false;
}

void IntervalSet::Add(Interval iv) {
  if (iv.Empty()) return;
  intervals_.push_back(std::move(iv));
  Normalize();
}

void IntervalSet::Normalize() {
  if (intervals_.empty()) return;
  std::sort(intervals_.begin(), intervals_.end(),
            [](const Interval& a, const Interval& b) {
              int c = CompareLower(a.lo, b.lo);
              if (c != 0) return c < 0;
              return CompareUpper(a.hi, b.hi) < 0;
            });
  std::vector<Interval> merged;
  merged.push_back(intervals_[0]);
  for (size_t i = 1; i < intervals_.size(); ++i) {
    Interval& last = merged.back();
    const Interval& cur = intervals_[i];
    if (TouchesOrOverlaps(last, cur)) {
      if (CompareUpper(cur.hi, last.hi) > 0) last.hi = cur.hi;
    } else {
      merged.push_back(cur);
    }
  }
  intervals_ = std::move(merged);
}

IntervalSet IntervalSet::Intersect(const IntervalSet& other) const {
  IntervalSet out;
  for (const Interval& a : intervals_) {
    for (const Interval& b : other.intervals_) {
      Interval iv;
      iv.lo = CompareLower(a.lo, b.lo) >= 0 ? a.lo : b.lo;
      iv.hi = CompareUpper(a.hi, b.hi) <= 0 ? a.hi : b.hi;
      if (!iv.Empty()) out.intervals_.push_back(iv);
    }
  }
  out.Normalize();
  return out;
}

IntervalSet IntervalSet::Union(const IntervalSet& other) const {
  IntervalSet out = *this;
  for (const Interval& b : other.intervals_) out.intervals_.push_back(b);
  out.Normalize();
  return out;
}

bool IntervalSet::Intersects(const IntervalSet& other) const {
  return !Intersect(other).IsEmpty();
}

std::string IntervalSet::ToString() const {
  if (intervals_.empty()) return "{}";
  std::string out;
  for (size_t i = 0; i < intervals_.size(); ++i) {
    if (i) out += " U ";
    out += intervals_[i].ToString();
  }
  return out;
}

}  // namespace dhqp
