#ifndef DHQP_COMMON_SCHEMA_H_
#define DHQP_COMMON_SCHEMA_H_

#include <string>
#include <vector>

#include "src/common/value.h"

namespace dhqp {

/// Definition of one column in a rowset or table schema.
struct ColumnDef {
  std::string name;
  DataType type = DataType::kNull;
  bool nullable = true;
};

/// An ordered list of columns describing the shape of a rowset. This is the
/// schema half of the paper's Rowset abstraction: every provider — base
/// table, query result, full-text rank rowset — describes its output this
/// way.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns)
      : columns_(std::move(columns)) {}

  const std::vector<ColumnDef>& columns() const { return columns_; }
  size_t num_columns() const { return columns_.size(); }
  const ColumnDef& column(size_t i) const { return columns_[i]; }

  /// Case-insensitive lookup; returns -1 if absent.
  int FindColumn(const std::string& name) const;

  /// Appends a column and returns its ordinal.
  int AddColumn(ColumnDef col) {
    columns_.push_back(std::move(col));
    return static_cast<int>(columns_.size()) - 1;
  }

  /// "name:type, name:type, ..." for diagnostics.
  std::string ToString() const;

  bool Equals(const Schema& other) const;

 private:
  std::vector<ColumnDef> columns_;
};

/// Case-insensitive ASCII string equality, the identifier-matching rule used
/// throughout catalogs and binders.
bool EqualsIgnoreCase(const std::string& a, const std::string& b);

/// Lowercases ASCII, for canonical catalog keys.
std::string ToLowerCopy(const std::string& s);

}  // namespace dhqp

#endif  // DHQP_COMMON_SCHEMA_H_
