#ifndef DHQP_COMMON_TRACE_H_
#define DHQP_COMMON_TRACE_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/common/fastclock.h"

namespace dhqp {
namespace trace {

/// One completed span. `name` must point at static-storage text (a string
/// literal or an OptPhaseName-style table entry): recording stores the
/// pointer, never copies it. `detail`, `engine`, and `activity` are
/// truncated inline copies, so the hot path stays allocation-free.
struct SpanRecord {
  const char* name = "";
  char detail[48] = {0};
  char engine[16] = {0};    ///< EngineTagScope tag active at record time.
  char activity[40] = {0};  ///< activity::Current() at record time — keys
                            ///< spans to their owning query in dumps.
  int64_t start_ns = 0;
  int64_t dur_ns = 0;
  uint32_t tid = 0;    ///< Small per-thread id (assigned on first span).
  uint32_t depth = 0;  ///< Nesting depth on that thread (0 = top level).
};

/// One span of a *merged* multi-engine trace, with owned strings: what
/// Engine::MergedChromeTrace assembles from local and remote
/// dm_trace_spans rows before rendering.
struct MergedSpan {
  std::string engine;
  std::string name;
  std::string detail;
  std::string activity_id;
  int64_t start_ns = 0;
  int64_t dur_ns = 0;
  int64_t tid = 0;
  int64_t depth = 0;
};

/// Process-wide structured-trace collector: a fixed-capacity span buffer
/// with a lock-free, zero-allocation record path. Disabled by default; when
/// disabled a Span costs one relaxed atomic load. When the buffer fills,
/// further spans are dropped (and counted) rather than wrapping, so slots
/// are written exactly once — readers can snapshot concurrently with
/// writers (per-slot release/acquire commit flags keep it race-free).
///
/// Enable/Clear re-arm the buffer and must only be called while no spans
/// are in flight (between queries); Snapshot/DumpChromeJson may run any
/// time.
class Tracer {
 public:
  static Tracer& Global();

  /// Allocates (or re-arms) the buffer and starts recording.
  void Enable(size_t capacity = kDefaultCapacity);
  /// Stops recording. The buffer is kept: spans already begun may still
  /// record safely, and Snapshot/Dump keep working.
  void Disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Records one completed span; called by Span's destructor.
  void Record(const char* name, const char* detail, int64_t start_ns,
              int64_t dur_ns, uint32_t depth);

  /// Copies out every committed span (unsorted arrival order).
  std::vector<SpanRecord> Snapshot() const;
  /// Chrome trace_event JSON ("complete" events, ts/dur in microseconds):
  /// load the string into chrome://tracing or Perfetto. Spans carry their
  /// activity id in args, so the viewer's filter box isolates one query
  /// even when concurrent queries interleave on shared worker tracks.
  std::string DumpChromeJson() const;
  /// Renders stitched multi-engine spans as one Chrome trace: each engine
  /// becomes its own process track (pid per distinct engine tag, labeled
  /// with a "process_name" metadata event), so a member's retry storm lines
  /// up on the same timeline as the coordinator's exchange stalls.
  static std::string DumpMergedChromeTrace(
      const std::vector<MergedSpan>& spans);

  int64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  /// Committed span count (may trail in-flight recordings).
  size_t size() const;
  /// Forgets all recorded spans; callers must be quiescent (no in-flight
  /// Span on any thread).
  void Clear();

  /// Small dense id for the calling thread (1-based, assigned on demand).
  static uint32_t CurrentThreadId();
  /// Names the calling thread's track in trace dumps: DumpChromeJson emits
  /// one Chrome "thread_name" metadata event per named tid, so exchange /
  /// prefetch / Concat worker spans render on labeled tracks instead of
  /// anonymous numbered ones. Last write wins for a reused tid; safe to
  /// call whether or not tracing is enabled (names survive Clear()).
  static void SetCurrentThreadName(const std::string& name);
  /// Snapshot of tid -> name assignments, sorted by tid.
  static std::vector<std::pair<uint32_t, std::string>> ThreadNames();
  /// Thread-local nesting depth bookkeeping for Span.
  static uint32_t EnterDepth();
  static void LeaveDepth();

  static constexpr size_t kDefaultCapacity = 1 << 16;

 private:
  std::atomic<bool> enabled_{false};
  std::atomic<int64_t> dropped_{0};
  std::atomic<size_t> next_{0};
  size_t capacity_ = 0;
  std::unique_ptr<SpanRecord[]> slots_;
  std::unique_ptr<std::atomic<bool>[]> committed_;
};

/// Installs `tag` (an engine name) as the calling thread's span engine tag
/// for the scope's lifetime, restoring the previous tag on exit — the same
/// save/restore idiom as activity::Scope. Engine::Execute installs one per
/// statement, so an in-process member engine executing on the
/// coordinator's thread tags its spans with its own name; worker threads
/// (exchange, prefetch, Concat) re-install the tag captured at launch.
class EngineTagScope {
 public:
  explicit EngineTagScope(std::string tag);
  ~EngineTagScope();

  EngineTagScope(const EngineTagScope&) = delete;
  EngineTagScope& operator=(const EngineTagScope&) = delete;

 private:
  std::string prev_;
};

/// The calling thread's installed engine tag ("" when none) — what a
/// thread spawner captures to hand to its workers.
const std::string& CurrentEngineTag();

/// RAII span: construction stamps the start, destruction records the
/// elapsed interval into the global tracer. Near-free when tracing is off.
/// The name must be a string literal (see SpanRecord); detail is optional
/// and copied (truncated) only when tracing is on.
class Span {
 public:
  explicit Span(const char* name) {
    if (Tracer::Global().enabled()) Begin(name, nullptr, 0);
  }
  Span(const char* name, const char* detail) {
    if (Tracer::Global().enabled()) {
      Begin(name, detail, detail == nullptr ? 0 : std::strlen(detail));
    }
  }
  Span(const char* name, const std::string& detail) {
    if (Tracer::Global().enabled()) Begin(name, detail.data(), detail.size());
  }
  ~Span() {
    if (!active_) return;
    Tracer::LeaveDepth();
    Tracer::Global().Record(name_, detail_, start_ns_,
                            fastclock::NowNs() - start_ns_, depth_);
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Renames the span before it records — used to tag an outcome decided
  /// mid-flight (e.g. "link.attempt" -> "link.attempt.fault").
  void set_name(const char* name) {
    if (active_) name_ = name;
  }

 private:
  void Begin(const char* name, const char* detail, size_t len) {
    active_ = true;
    name_ = name;
    size_t n = len < sizeof(detail_) - 1 ? len : sizeof(detail_) - 1;
    if (detail != nullptr && n > 0) std::memcpy(detail_, detail, n);
    detail_[n] = '\0';
    depth_ = Tracer::EnterDepth();
    start_ns_ = fastclock::NowNs();
  }

  bool active_ = false;
  const char* name_ = nullptr;
  char detail_[48];
  int64_t start_ns_ = 0;
  uint32_t depth_ = 0;
};

}  // namespace trace
}  // namespace dhqp

#endif  // DHQP_COMMON_TRACE_H_
