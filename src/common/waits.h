#ifndef DHQP_COMMON_WAITS_H_
#define DHQP_COMMON_WAITS_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/fastclock.h"

namespace dhqp {
namespace waits {

/// The wait taxonomy — every way a thread in this engine can block. The
/// dm_os_wait_stats analog: each type accumulates into a process-wide
/// counter + log2 histogram in metrics::Registry, a per-query tally, and
/// (where a thread is working on behalf of one operator) a per-operator
/// tally on the OperatorProfile tree. Types are disjoint by construction —
/// one blocked interval lands in exactly one type — so per-type totals sum
/// to the query's total wait time with no double counting.
enum class WaitType : int {
  kExchangeQueuePush = 0,  ///< Exchange producer blocked on a full queue.
  kExchangeQueuePop,       ///< Exchange consumer blocked on an empty queue.
  kPrefetchQueue,          ///< Prefetch producer full-stall or consumer
                           ///< empty-stall on the remote block queue.
  kConcatQueue,            ///< Parallel Concat worker/consumer queue stall.
  kLinkSend,               ///< Wire time of link message attempts (send +
                           ///< response, including injected latency), minus
                           ///< retry backoff.
  kRetryBackoff,           ///< Sleeps between link retry attempts.
  kPlanCacheMutex,         ///< Contended acquisition of the plan-cache lock.
  kQueryStoreMutex,        ///< Contended acquisition of the query-store lock.
  kResourceSemaphore,      ///< Statement queued in the workload governor
                           ///< waiting for its memory grant.
  kSpillIo,                ///< Spill file reads/writes (Grace partitions,
                           ///< external sort runs) under a tight grant.
};

constexpr int kNumWaitTypes = 10;

/// Canonical upper-snake name, as dm_os_wait_stats spells it
/// ("EXCHANGE_QUEUE_PUSH", "RETRY_BACKOFF", ...).
const char* Name(WaitType type);

/// Per-query or per-operator wait accounting: one (count, ticks) pair per
/// type. Atomic because exchange producers, prefetch producers, and Concat
/// workers charge the same tally concurrently with the consumer. Quiescent
/// once the execution joined its threads, so readers may load freely.
struct WaitTally {
  std::atomic<int64_t> count[kNumWaitTypes] = {};
  std::atomic<int64_t> ticks[kNumWaitTypes] = {};

  void Add(WaitType type, int64_t elapsed_ticks) {
    const int i = static_cast<int>(type);
    count[i].fetch_add(1, std::memory_order_relaxed);
    ticks[i].fetch_add(elapsed_ticks, std::memory_order_relaxed);
  }
  int64_t CountFor(WaitType type) const {
    return count[static_cast<int>(type)].load(std::memory_order_relaxed);
  }
  int64_t NsFor(WaitType type) const {
    return fastclock::ToNs(
        ticks[static_cast<int>(type)].load(std::memory_order_relaxed));
  }
  int64_t total_count() const {
    int64_t n = 0;
    for (const auto& c : count) n += c.load(std::memory_order_relaxed);
    return n;
  }
  int64_t total_ns() const {
    int64_t t = 0;
    for (const auto& tk : ticks) t += tk.load(std::memory_order_relaxed);
    return fastclock::ToNs(t);
  }
};

/// Plain-value copy of a WaitTally, for surfaces that need value semantics
/// (QueryResult, ExecutionRecord).
struct WaitTotals {
  int64_t count[kNumWaitTypes] = {};
  int64_t ns[kNumWaitTypes] = {};

  int64_t total_count() const {
    int64_t n = 0;
    for (int64_t c : count) n += c;
    return n;
  }
  int64_t total_ns() const {
    int64_t t = 0;
    for (int64_t v : ns) t += v;
    return t;
  }
  /// Name of the type with the most accumulated time; "" when no waits.
  std::string TopType() const;
};

WaitTotals Snapshot(const WaitTally& tally);

/// Runtime kill switch (on by default). When off, RecordWait is a no-op —
/// the bench_waits gate compares enabled vs disabled to bound the
/// instrumentation overhead. Compile out entirely with -DDHQP_DISABLE_WAITS.
void SetEnabled(bool enabled);
bool Enabled();

/// Charges one completed wait of `type` lasting `elapsed_ticks` fastclock
/// ticks to (a) the global per-type histogram in metrics::Registry, (b) the
/// calling thread's installed per-query tally, and (c) `op` when non-null
/// (the owning operator's tally). Zero-duration waits still count — under
/// unenforced links a retry backoff takes no wall time but the *event* is
/// what diagnosis needs.
void RecordWait(WaitType type, int64_t elapsed_ticks,
                WaitTally* op = nullptr);

/// RAII wait timer for scopes that always block (link sends, backoff
/// sleeps): stamps Ticks() on entry and charges the interval on exit.
class WaitScope {
 public:
  explicit WaitScope(WaitType type, WaitTally* op = nullptr)
      : type_(type), op_(op), start_(fastclock::Ticks()) {}
  ~WaitScope() { RecordWait(type_, fastclock::Ticks() - start_, op_); }

  WaitScope(const WaitScope&) = delete;
  WaitScope& operator=(const WaitScope&) = delete;

 private:
  WaitType type_;
  WaitTally* op_;
  int64_t start_;
};

/// Installs `tally` as the calling thread's per-query wait sink for the
/// scope's lifetime (innermost wins; previous sink restored on exit).
/// Engine::Execute installs one per statement; worker threads (prefetch,
/// exchange, Concat) re-install the tally they captured at launch so their
/// waits roll up to the owning query.
class ScopedQueryTally {
 public:
  explicit ScopedQueryTally(WaitTally* tally);
  ~ScopedQueryTally();

  ScopedQueryTally(const ScopedQueryTally&) = delete;
  ScopedQueryTally& operator=(const ScopedQueryTally&) = delete;

 private:
  WaitTally* prev_;
};

/// The calling thread's installed per-query tally (null if none) — what a
/// thread spawner captures to hand to its workers.
WaitTally* CurrentQueryTally();

/// Installs an *operator* wait tally as the thread's attribution target for
/// waits whose call site cannot see the owning operator (link sends deep
/// inside a connector). Innermost wins — the ProfiledNode wrapping the
/// remote operator installs its tally around Open/Next/NextBatch, exactly
/// where ScopedChargeSink is installed. Null `tally` installs nothing.
class ScopedOperatorTally {
 public:
  explicit ScopedOperatorTally(WaitTally* tally);
  ~ScopedOperatorTally();

  ScopedOperatorTally(const ScopedOperatorTally&) = delete;
  ScopedOperatorTally& operator=(const ScopedOperatorTally&) = delete;

 private:
  WaitTally* prev_ = nullptr;
  bool installed_ = false;
};

/// The thread's installed operator tally (null if none).
WaitTally* CurrentOperatorTally();

/// One dm_os_wait_stats row.
struct WaitStatRow {
  std::string wait_type;
  int64_t waiting_tasks_count = 0;
  int64_t wait_time_ns = 0;
  int64_t max_wait_time_ns = 0;
};

/// Global per-type snapshot, one row per taxonomy entry (zeros included),
/// in enum order.
std::vector<WaitStatRow> GlobalSnapshot();

/// Zeroes the global per-type histograms (per-query/operator tallies are
/// untouched). The dm_os_wait_stats "clear" knob.
void ResetGlobal();

/// Times a blocked-queue interval for BoundedQueue hooks: constructed only
/// when the caller observed it must wait; Elapsed() reads the interval.
class BlockTimer {
 public:
  BlockTimer() : start_(fastclock::Ticks()) {}
  int64_t Elapsed() const { return fastclock::Ticks() - start_; }

 private:
  int64_t start_;
};

}  // namespace waits
}  // namespace dhqp

#endif  // DHQP_COMMON_WAITS_H_
