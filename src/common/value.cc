#include "src/common/value.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <functional>

#include "src/common/date.h"

namespace dhqp {

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kNull:
      return "null";
    case DataType::kBool:
      return "bool";
    case DataType::kInt64:
      return "int64";
    case DataType::kDouble:
      return "double";
    case DataType::kString:
      return "string";
    case DataType::kDate:
      return "date";
  }
  return "unknown";
}

namespace {

// Rank used to order values of incomparable types so containers keyed on
// Value still have a total order.
int TypeRank(DataType t) {
  switch (t) {
    case DataType::kNull:
      return 0;
    case DataType::kBool:
      return 1;
    case DataType::kInt64:
    case DataType::kDouble:
    case DataType::kDate:
      return 2;  // All numerics compare in one family.
    case DataType::kString:
      return 3;
  }
  return 4;
}

}  // namespace

double Value::AsDouble() const {
  switch (type_) {
    case DataType::kBool:
      return bool_value() ? 1.0 : 0.0;
    case DataType::kInt64:
      return static_cast<double>(int64_value());
    case DataType::kDouble:
      return double_value();
    case DataType::kDate:
      return static_cast<double>(date_value());
    default:
      return 0.0;
  }
}

int Value::Compare(const Value& other) const {
  if (null_ || other.null_) {
    if (null_ && other.null_) return 0;
    return null_ ? -1 : 1;
  }
  int lr = TypeRank(type_), rr = TypeRank(other.type_);
  if (lr != rr) return lr < rr ? -1 : 1;
  switch (type_) {
    case DataType::kBool: {
      if (other.type_ != DataType::kBool) break;
      bool a = bool_value(), b = other.bool_value();
      return a == b ? 0 : (a < b ? -1 : 1);
    }
    case DataType::kString: {
      int c = string_value().compare(other.string_value());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    default:
      break;
  }
  // Numeric family (int64 / double / date). Compare exactly when both are
  // integral to avoid double rounding on large keys.
  bool both_integral = type_ != DataType::kDouble &&
                       other.type_ != DataType::kDouble;
  if (both_integral) {
    int64_t a = std::get<int64_t>(rep_);
    int64_t b = std::get<int64_t>(other.rep_);
    return a == b ? 0 : (a < b ? -1 : 1);
  }
  double a = AsDouble(), b = other.AsDouble();
  return a == b ? 0 : (a < b ? -1 : 1);
}

size_t Value::Hash() const {
  if (null_) return 0x9e3779b97f4a7c15ULL;
  switch (type_) {
    case DataType::kBool:
      return std::hash<bool>()(bool_value());
    case DataType::kString:
      return std::hash<std::string>()(string_value());
    case DataType::kDouble: {
      double d = double_value();
      // Hash integral doubles like their int64 counterparts so that
      // cross-type join keys (int vs double) collide as they compare equal.
      if (d == std::floor(d) && std::abs(d) < 1e18) {
        return std::hash<int64_t>()(static_cast<int64_t>(d));
      }
      return std::hash<double>()(d);
    }
    case DataType::kInt64:
    case DataType::kDate:
      return std::hash<int64_t>()(std::get<int64_t>(rep_));
    default:
      return 0;
  }
}

std::string Value::ToString() const {
  if (null_) return "NULL";
  switch (type_) {
    case DataType::kBool:
      return bool_value() ? "TRUE" : "FALSE";
    case DataType::kInt64:
      return std::to_string(int64_value());
    case DataType::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", double_value());
      return buf;
    }
    case DataType::kString:
      return string_value();
    case DataType::kDate:
      return DaysToIsoDate(date_value());
    default:
      return "NULL";
  }
}

size_t Value::WireSize() const {
  if (null_) return 1;
  switch (type_) {
    case DataType::kBool:
      return 1;
    case DataType::kInt64:
    case DataType::kDouble:
    case DataType::kDate:
      return 8;
    case DataType::kString:
      return 4 + string_value().size();
    default:
      return 1;
  }
}

Result<Value> Value::CastTo(DataType target) const {
  if (null_) return Value::Null(target);
  if (type_ == target) return *this;
  switch (target) {
    case DataType::kBool:
      switch (type_) {
        case DataType::kInt64:
          return Value::Bool(int64_value() != 0);
        case DataType::kDouble:
          return Value::Bool(double_value() != 0.0);
        default:
          break;
      }
      break;
    case DataType::kInt64:
      switch (type_) {
        case DataType::kBool:
          return Value::Int64(bool_value() ? 1 : 0);
        case DataType::kDouble:
          return Value::Int64(static_cast<int64_t>(double_value()));
        case DataType::kDate:
          return Value::Int64(date_value());
        case DataType::kString: {
          int64_t out = 0;
          const std::string& s = string_value();
          auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
          if (ec == std::errc() && p == s.data() + s.size()) {
            return Value::Int64(out);
          }
          break;
        }
        default:
          break;
      }
      break;
    case DataType::kDouble:
      switch (type_) {
        case DataType::kBool:
          return Value::Double(bool_value() ? 1.0 : 0.0);
        case DataType::kInt64:
          return Value::Double(static_cast<double>(int64_value()));
        case DataType::kDate:
          return Value::Double(static_cast<double>(date_value()));
        case DataType::kString: {
          try {
            size_t pos = 0;
            double d = std::stod(string_value(), &pos);
            if (pos == string_value().size()) return Value::Double(d);
          } catch (...) {
          }
          break;
        }
        default:
          break;
      }
      break;
    case DataType::kString:
      return Value::String(ToString());
    case DataType::kDate:
      switch (type_) {
        case DataType::kInt64:
          return Value::Date(int64_value());
        case DataType::kString: {
          auto days = ParseIsoDate(string_value());
          if (days.ok()) return Value::Date(*days);
          return days.status();
        }
        default:
          break;
      }
      break;
    default:
      break;
  }
  return Status::InvalidArgument(std::string("cannot cast ") +
                                 DataTypeName(type_) + " to " +
                                 DataTypeName(target));
}

}  // namespace dhqp
