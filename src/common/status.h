#ifndef DHQP_COMMON_STATUS_H_
#define DHQP_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace dhqp {

/// Error category for a failed operation. Mirrors the classes of failure the
/// DHQP system distinguishes: user errors (syntax, binding), capability
/// errors (a provider cannot do what was asked), runtime execution errors,
/// and internal invariant violations.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Bad input from the caller (e.g. malformed SQL).
  kNotFound,          ///< Named object (table, server, column) missing.
  kAlreadyExists,     ///< Attempt to create a duplicate object.
  kNotSupported,      ///< Provider/engine lacks the requested capability.
  kConstraintViolation,  ///< CHECK / key constraint rejected a row.
  kTransactionAborted,   ///< Distributed transaction rolled back.
  kNetworkError,      ///< Simulated link failure.
  kExecutionError,    ///< Runtime failure while evaluating a plan.
  kInternal,          ///< Invariant violation: a bug in this library.
};

/// Returns a stable human-readable name for a status code ("NotFound" etc.).
const char* StatusCodeName(StatusCode code);

/// Result of an operation that can fail. Cheap to copy when OK (no message
/// allocation); carries a code plus message otherwise. This library does not
/// throw exceptions across API boundaries; every fallible public function
/// returns Status or Result<T>.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status ConstraintViolation(std::string msg) {
    return Status(StatusCode::kConstraintViolation, std::move(msg));
  }
  static Status TransactionAborted(std::string msg) {
    return Status(StatusCode::kTransactionAborted, std::move(msg));
  }
  static Status NetworkError(std::string msg) {
    return Status(StatusCode::kNetworkError, std::move(msg));
  }
  static Status ExecutionError(std::string msg) {
    return Status(StatusCode::kExecutionError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Analogous to
/// arrow::Result / absl::StatusOr.
template <typename T>
class Result {
 public:
  /// Implicit from value: allows `return value;` in Result-returning code.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status: allows `return Status::NotFound(...);`.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Access the contained value; precondition: ok().
  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace dhqp

/// Propagates a non-OK Status from an expression. Use inside functions that
/// return Status.
#define DHQP_RETURN_NOT_OK(expr)            \
  do {                                      \
    ::dhqp::Status _st = (expr);            \
    if (!_st.ok()) return _st;              \
  } while (0)

/// Evaluates a Result<T> expression, propagating errors, else binding the
/// value into `lhs`. Use inside functions returning Status or Result<U>.
#define DHQP_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value();

#define DHQP_ASSIGN_OR_RETURN_CONCAT_(x, y) x##y
#define DHQP_ASSIGN_OR_RETURN_CONCAT(x, y) DHQP_ASSIGN_OR_RETURN_CONCAT_(x, y)
#define DHQP_ASSIGN_OR_RETURN(lhs, expr) \
  DHQP_ASSIGN_OR_RETURN_IMPL(            \
      DHQP_ASSIGN_OR_RETURN_CONCAT(_dhqp_result_, __LINE__), lhs, expr)

#endif  // DHQP_COMMON_STATUS_H_
