#include "src/common/date.h"

#include <cstdio>

namespace dhqp {

// Howard Hinnant's days_from_civil algorithm.
int64_t CivilToDays(int year, int month, int day) {
  int y = year;
  const int m = month;
  const int d = day;
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);           // [0, 399]
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;  // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;           // [0, 146096]
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

void DaysToCivil(int64_t days, int* year, int* month, int* day) {
  int64_t z = days + 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);  // [0, 146096]
  const unsigned yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;  // [0, 399]
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);  // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                        // [0, 11]
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;                // [1, 31]
  const unsigned m = mp + (mp < 10 ? 3 : -9);                     // [1, 12]
  *year = static_cast<int>(y + (m <= 2));
  *month = static_cast<int>(m);
  *day = static_cast<int>(d);
}

Result<int64_t> ParseIsoDate(const std::string& text) {
  int y = 0, m = 0, d = 0;
  if (std::sscanf(text.c_str(), "%d-%d-%d", &y, &m, &d) != 3 || m < 1 ||
      m > 12 || d < 1 || d > 31) {
    return Status::InvalidArgument("invalid date literal: '" + text + "'");
  }
  return CivilToDays(y, m, d);
}

std::string DaysToIsoDate(int64_t days) {
  int y, m, d;
  DaysToCivil(days, &y, &m, &d);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", y, m, d);
  return buf;
}

}  // namespace dhqp
