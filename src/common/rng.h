#ifndef DHQP_COMMON_RNG_H_
#define DHQP_COMMON_RNG_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

namespace dhqp {

/// Deterministic 64-bit PRNG (splitmix64 core). All workload generators in
/// this repo draw from this so benches and tests are reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed ? seed : 0x853c49e6748fea9bULL) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Uniform(int64_t lo, int64_t hi) {
    if (hi <= lo) return lo;
    return lo + static_cast<int64_t>(Next() %
                                     static_cast<uint64_t>(hi - lo + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Random lowercase word of the given length.
  std::string Word(int len) {
    std::string w(static_cast<size_t>(len), 'a');
    for (char& c : w) c = static_cast<char>('a' + Uniform(0, 25));
    return w;
  }

 private:
  uint64_t state_;
};

/// Zipf-distributed generator over {1..n} with exponent `theta`. Used to
/// build the skewed remote columns for the statistics experiment (E3): a
/// uniform assumption misestimates these by orders of magnitude, which is
/// exactly the effect §3.2.4 claims histograms fix.
class ZipfGenerator {
 public:
  ZipfGenerator(int64_t n, double theta, uint64_t seed)
      : n_(n), theta_(theta), rng_(seed) {
    cdf_.reserve(static_cast<size_t>(n));
    double sum = 0;
    for (int64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(i, theta_);
    double acc = 0;
    for (int64_t i = 1; i <= n; ++i) {
      acc += 1.0 / std::pow(i, theta_) / sum;
      cdf_.push_back(acc);
    }
  }

  /// Draws the next rank in [1, n]; rank 1 is the most frequent.
  int64_t Next() {
    double u = rng_.NextDouble();
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<int64_t>(it - cdf_.begin()) + 1;
  }

 private:
  int64_t n_;
  double theta_;
  Rng rng_;
  std::vector<double> cdf_;
};

}  // namespace dhqp

#endif  // DHQP_COMMON_RNG_H_
