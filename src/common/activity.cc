#include "src/common/activity.h"

#include <atomic>
#include <utility>

namespace dhqp {
namespace activity {

namespace {

thread_local std::string t_activity_id;

std::atomic<int64_t> g_next_seq{1};

}  // namespace

const std::string& Current() { return t_activity_id; }

std::string Generate(const std::string& engine_name) {
  return engine_name + "#" +
         std::to_string(g_next_seq.fetch_add(1, std::memory_order_relaxed));
}

Scope::Scope(std::string id) : prev_(std::move(t_activity_id)) {
  t_activity_id = std::move(id);
}

Scope::~Scope() { t_activity_id = std::move(prev_); }

}  // namespace activity
}  // namespace dhqp
