#include "src/common/schema.h"

#include <cctype>

namespace dhqp {

bool EqualsIgnoreCase(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string ToLowerCopy(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

int Schema::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (EqualsIgnoreCase(columns_[i].name, name)) return static_cast<int>(i);
  }
  return -1;
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i) out += ", ";
    out += columns_[i].name;
    out += ":";
    out += DataTypeName(columns_[i].type);
  }
  return out;
}

bool Schema::Equals(const Schema& other) const {
  if (columns_.size() != other.columns_.size()) return false;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (!EqualsIgnoreCase(columns_[i].name, other.columns_[i].name) ||
        columns_[i].type != other.columns_[i].type) {
      return false;
    }
  }
  return true;
}

}  // namespace dhqp
