#ifndef DHQP_COMMON_VALUE_H_
#define DHQP_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "src/common/status.h"

namespace dhqp {

/// Column/scalar data types supported by the engine and the provider rowset
/// model. Deliberately small: enough for the paper's workloads (TPC-H/TPC-C
/// style relational data, dates, document text).
enum class DataType {
  kNull = 0,  ///< The type of an untyped NULL literal.
  kBool,
  kInt64,
  kDouble,
  kString,
  kDate,  ///< Days since 1970-01-01 (proleptic Gregorian), stored as int32.
};

/// Returns a stable lowercase name ("int64", "string", ...).
const char* DataTypeName(DataType type);

/// A dynamically typed scalar value flowing through rowsets and expression
/// evaluation. SQL NULL is represented by is_null(); a null Value still
/// remembers its declared type when known.
class Value {
 public:
  /// NULL of unknown type.
  Value() : type_(DataType::kNull), null_(true) {}

  static Value Null(DataType type = DataType::kNull) {
    Value v;
    v.type_ = type;
    return v;
  }
  static Value Bool(bool b) { return Value(DataType::kBool, Rep(b)); }
  static Value Int64(int64_t i) { return Value(DataType::kInt64, Rep(i)); }
  static Value Double(double d) { return Value(DataType::kDouble, Rep(d)); }
  static Value String(std::string s) {
    return Value(DataType::kString, Rep(std::move(s)));
  }
  /// A date expressed as days since 1970-01-01.
  static Value Date(int64_t days) {
    Value v(DataType::kDate, Rep(days));
    return v;
  }

  DataType type() const { return type_; }
  bool is_null() const { return null_; }

  bool bool_value() const { return std::get<bool>(rep_); }
  int64_t int64_value() const { return std::get<int64_t>(rep_); }
  double double_value() const { return std::get<double>(rep_); }
  const std::string& string_value() const { return std::get<std::string>(rep_); }
  /// Days since epoch for kDate values.
  int64_t date_value() const { return std::get<int64_t>(rep_); }

  /// Numeric view of an int64/double/date/bool value (for arithmetic and
  /// histogram bucketing). Precondition: !is_null() and numeric-ish type.
  double AsDouble() const;

  /// Total ordering used by sorting, B+-tree keys and interval endpoints.
  /// NULL sorts before all non-NULL values; cross-type numeric comparisons
  /// (int64 vs double) compare numerically. Comparing incompatible types
  /// (e.g. string vs int) orders by type id, which keeps containers total.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }
  bool operator<=(const Value& other) const { return Compare(other) <= 0; }
  bool operator>(const Value& other) const { return Compare(other) > 0; }
  bool operator>=(const Value& other) const { return Compare(other) >= 0; }

  /// Stable hash consistent with operator== for same-typed values.
  size_t Hash() const;

  /// Rendering for diagnostics and for the SQL decoder's literal printing
  /// (strings are NOT quoted here; the decoder handles dialect quoting).
  std::string ToString() const;

  /// Approximate wire size in bytes, used by the network simulator to
  /// account for shipped data volume.
  size_t WireSize() const;

  /// Casts this value to `target`, following SQL semantics for the supported
  /// conversions (numeric widening/narrowing, string parse, date<->int64).
  Result<Value> CastTo(DataType target) const;

 private:
  using Rep = std::variant<bool, int64_t, double, std::string>;
  Value(DataType type, Rep rep)
      : type_(type), null_(false), rep_(std::move(rep)) {}

  DataType type_;
  bool null_;
  Rep rep_;
};

}  // namespace dhqp

#endif  // DHQP_COMMON_VALUE_H_
