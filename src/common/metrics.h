#ifndef DHQP_COMMON_METRICS_H_
#define DHQP_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace dhqp {
namespace metrics {

/// Monotonic counter. Thread-safe; updates are relaxed atomics.
class Counter {
 public:
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Histogram with fixed log2 buckets: bucket i counts observations v with
/// 2^(i-1) <= v < 2^i (bucket 0 takes v <= 0 and v == 1's lower edge, i.e.
/// v < 1). 64 buckets cover the whole int64 range, so there is no overflow
/// bucket. Also tracks count/sum/min/max for cheap summary stats.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void Observe(int64_t v);
  int64_t Count() const { return count_.load(std::memory_order_relaxed); }
  int64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  int64_t Min() const;
  int64_t Max() const { return max_.load(std::memory_order_relaxed); }
  int64_t BucketCount(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  void Reset();

 private:
  std::atomic<int64_t> buckets_[kBuckets] = {};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> min_{INT64_MAX};
  std::atomic<int64_t> max_{INT64_MIN};
};

/// One instrument's state at snapshot time, in row form for the dm_metrics
/// system view. `value` is the counter/gauge reading; histogram rows carry
/// the summary stats instead (value mirrors `sum` there for convenience).
struct Sample {
  std::string kind;  ///< "counter", "gauge" or "histogram".
  std::string name;
  int64_t value = 0;
  int64_t count = 0;  ///< Histograms only; 0 otherwise.
  int64_t sum = 0;
  int64_t min = 0;
  int64_t max = 0;
};

/// Process-wide registry of named metrics. Get* registers on first use and
/// returns a stable pointer (instruments are never deallocated while the
/// registry lives), so hot paths should cache the pointer and touch the
/// instrument lock-free. Names are conventionally dotted lowercase, e.g.
/// "link.rsrv.messages", "engine.plan_cache.hit", "exec.rows_from_remote".
class Registry {
 public:
  static Registry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// JSON object with sorted keys:
  ///   {"counters":{name:value,...},
  ///    "gauges":{name:value,...},
  ///    "histograms":{name:{"count":..,"sum":..,"min":..,"max":..,
  ///                        "buckets":{"<upper>":count,...}},...}}
  /// Deterministic for a deterministic workload (sorted maps, no
  /// timestamps).
  std::string SnapshotJson() const;

  /// Structured snapshot: one Sample per instrument, counters first, then
  /// gauges, then histograms, each group sorted by name (the registry's map
  /// order). Backs the dm_metrics system view.
  std::vector<Sample> Samples() const;

  /// Zeroes every instrument but keeps registrations, so cached pointers
  /// stay valid. For tests/benches that need a clean slate.
  void ResetAll();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace metrics
}  // namespace dhqp

#endif  // DHQP_COMMON_METRICS_H_
