#include "src/common/fastclock.h"

#include <atomic>

namespace dhqp {
namespace fastclock {

#ifdef DHQP_FASTCLOCK_RDTSC

namespace {

struct Anchor {
  int64_t ticks;
  int64_t ns;
  Anchor() : ticks(Ticks()), ns(NowNs()) {}
};

// Captured at static-init time so the calibration window spans the whole
// process lifetime by the first conversion.
const Anchor g_anchor;

// ns-per-tick as a 44.20 fixed-point ratio; 0 = not yet calibrated.
std::atomic<int64_t> g_ratio_fp{0};
constexpr int kFpShift = 20;

}  // namespace

int64_t ToNs(int64_t ticks) {
  if (ticks <= 0) return 0;
  int64_t ratio = g_ratio_fp.load(std::memory_order_relaxed);
  if (ratio == 0) {
    const int64_t dt = Ticks() - g_anchor.ticks;
    const int64_t dns = NowNs() - g_anchor.ns;
    if (dt <= 0 || dns <= 0) return ticks;  // Clock misbehaving; give up.
    ratio = (dns << kFpShift) / dt;
    if (ratio <= 0) ratio = 1;
    // Cache only once the window is wide enough to be accurate; earlier
    // calls recompute (racing stores all write nearly the same value).
    if (dns >= 100000) g_ratio_fp.store(ratio, std::memory_order_relaxed);
  }
  return static_cast<int64_t>(
      (static_cast<__int128>(ticks) * ratio) >> kFpShift);
}

#else  // !DHQP_FASTCLOCK_RDTSC

int64_t ToNs(int64_t ticks) { return ticks; }

#endif

}  // namespace fastclock
}  // namespace dhqp
