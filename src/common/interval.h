#ifndef DHQP_COMMON_INTERVAL_H_
#define DHQP_COMMON_INTERVAL_H_

#include <optional>
#include <string>
#include <vector>

#include "src/common/value.h"

namespace dhqp {

/// One endpoint of an interval: a value plus whether it is included.
/// An absent value means the corresponding infinity.
struct Bound {
  std::optional<Value> value;  ///< nullopt == -inf (lower) / +inf (upper).
  bool inclusive = false;
};

/// A contiguous range [lo, hi] / (lo, hi) / etc. over the Value ordering.
struct Interval {
  Bound lo;  ///< lo.value == nullopt means -infinity.
  Bound hi;  ///< hi.value == nullopt means +infinity.

  /// True if no value can satisfy the interval (e.g. (5,5)).
  bool Empty() const;
  bool Contains(const Value& v) const;
  std::string ToString() const;
};

/// The domain of a scalar expression as a set of disjoint, sorted intervals.
/// This is the representation behind the paper's constraint property
/// framework (§4.1.5): filters like "CustomerId > 50" narrow a column's
/// domain from (-inf,+inf) to (50,+inf); "IN (1,5) OR BETWEEN 50 AND 100"
/// yields [1,1] ∪ [5,5] ∪ [50,100]. The optimizer intersects domains to do
/// static pruning, and the executor's startup filters reuse the same math at
/// run time.
class IntervalSet {
 public:
  /// The full domain (-inf, +inf).
  static IntervalSet All();
  /// The empty domain.
  static IntervalSet None();
  /// A single point [v, v].
  static IntervalSet Point(const Value& v);
  /// A single range with the given bounds.
  static IntervalSet Range(Bound lo, Bound hi);
  /// Domain implied by a comparison `col <op> v`, where op is one of
  /// "=", "<", "<=", ">", ">=", "<>".
  static IntervalSet FromComparison(const std::string& op, const Value& v);

  bool IsEmpty() const { return intervals_.empty(); }
  bool IsAll() const;
  const std::vector<Interval>& intervals() const { return intervals_; }

  bool Contains(const Value& v) const;

  /// Set intersection; result is normalized (disjoint, sorted).
  IntervalSet Intersect(const IntervalSet& other) const;
  /// Set union; result is normalized.
  IntervalSet Union(const IntervalSet& other) const;
  /// True if the two sets share at least one value. Cheaper than
  /// !Intersect(other).IsEmpty() in spirit, implemented via intersect.
  bool Intersects(const IntervalSet& other) const;

  /// Adds an interval and re-normalizes.
  void Add(Interval iv);

  std::string ToString() const;

 private:
  void Normalize();
  std::vector<Interval> intervals_;  // Disjoint, sorted by lower bound.
};

}  // namespace dhqp

#endif  // DHQP_COMMON_INTERVAL_H_
