#ifndef DHQP_COMMON_ROW_H_
#define DHQP_COMMON_ROW_H_

#include <string>
#include <vector>

#include "src/common/value.h"

namespace dhqp {

/// A tuple of scalar values, positionally aligned with some Schema.
using Row = std::vector<Value>;

/// Renders a row as "(v1, v2, ...)" for diagnostics and test expectations.
inline std::string RowToString(const Row& row) {
  std::string out = "(";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i) out += ", ";
    out += row[i].ToString();
  }
  out += ")";
  return out;
}

/// Approximate wire size of a row (sum of value wire sizes), used for
/// network traffic accounting.
inline size_t RowWireSize(const Row& row) {
  size_t n = 4;  // per-row framing
  for (const Value& v : row) n += v.WireSize();
  return n;
}

/// Combined hash of selected key columns; used by hash join/aggregate.
inline size_t HashRowKeys(const Row& row, const std::vector<int>& keys) {
  size_t h = 0x345678;
  for (int k : keys) {
    h = h * 1000003 ^ row[static_cast<size_t>(k)].Hash();
  }
  return h;
}

}  // namespace dhqp

#endif  // DHQP_COMMON_ROW_H_
