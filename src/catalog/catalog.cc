#include "src/catalog/catalog.h"

namespace dhqp {

std::string ObjectName::ToString() const {
  std::string out;
  if (!server.empty()) out += server + ".";
  if (!catalog.empty()) out += catalog + ".";
  if (!schema.empty()) out += schema + ".";
  out += table;
  return out;
}

Catalog::Catalog(StorageEngine* storage) : storage_(storage) {
  local_source_ = std::make_unique<StorageDataSource>(storage);
}

Status Catalog::AddLinkedServer(const std::string& name,
                                std::shared_ptr<DataSource> source,
                                bool reserved) {
  std::string key = ToLowerCopy(name);
  if (!reserved && key == kSysServerName) {
    return Status::InvalidArgument(
        "linked server name 'sys' is reserved for the engine's system views");
  }
  if (server_ids_.count(key) > 0) {
    return Status::AlreadyExists("linked server '" + name +
                                 "' already exists");
  }
  server_ids_[key] = static_cast<int>(servers_.size());
  servers_.push_back(ServerEntry{name, std::move(source), nullptr, reserved});
  return Status::OK();
}

Result<DataSource*> Catalog::GetLinkedServer(const std::string& name) const {
  DHQP_ASSIGN_OR_RETURN(int id, GetLinkedServerId(name));
  return servers_[static_cast<size_t>(id)].source.get();
}

Result<int> Catalog::GetLinkedServerId(const std::string& name) const {
  auto it = server_ids_.find(ToLowerCopy(name));
  if (it == server_ids_.end()) {
    return Status::NotFound("linked server '" + name + "' not defined");
  }
  return it->second;
}

const std::string& Catalog::ServerName(int source_id) const {
  return servers_[static_cast<size_t>(source_id)].name;
}

DataSource* Catalog::ServerSource(int source_id) const {
  return servers_[static_cast<size_t>(source_id)].source.get();
}

std::vector<std::string> Catalog::LinkedServerNames() const {
  std::vector<std::string> names;
  names.reserve(servers_.size());
  for (const ServerEntry& s : servers_) names.push_back(s.name);
  return names;
}

Result<Session*> Catalog::GetSession(int source_id) {
  std::lock_guard<std::mutex> lock(session_mu_);
  if (source_id == kLocalSource) {
    if (local_session_ == nullptr) {
      DHQP_ASSIGN_OR_RETURN(local_session_, local_source_->CreateSession());
    }
    return local_session_.get();
  }
  if (source_id < 0 || static_cast<size_t>(source_id) >= servers_.size()) {
    return Status::InvalidArgument("bad source id " +
                                   std::to_string(source_id));
  }
  ServerEntry& entry = servers_[static_cast<size_t>(source_id)];
  if (entry.session == nullptr) {
    DHQP_ASSIGN_OR_RETURN(entry.session, entry.source->CreateSession());
  }
  return entry.session.get();
}

void Catalog::DropSession(int source_id) {
  std::lock_guard<std::mutex> lock(session_mu_);
  if (source_id < 0 || static_cast<size_t>(source_id) >= servers_.size()) {
    return;
  }
  servers_[static_cast<size_t>(source_id)].session.reset();
}

void Catalog::DropRemoteSessions() {
  std::lock_guard<std::mutex> lock(session_mu_);
  // The reserved system source is in-process (no link to tear down), and a
  // concurrent DMV scan may be holding its session — leave it alone.
  for (ServerEntry& entry : servers_) {
    if (!entry.reserved) entry.session.reset();
  }
}

Result<Session*> Catalog::SystemSession() {
  auto it = server_ids_.find(kSysServerName);
  if (it == server_ids_.end()) {
    return Status::NotFound("no system-view source registered");
  }
  return GetSession(it->second);
}

Status Catalog::CreateView(const std::string& name, const std::string& sql) {
  std::string key = ToLowerCopy(name);
  if (views_.count(key) > 0 || storage_->HasTable(name)) {
    return Status::AlreadyExists("object '" + name + "' already exists");
  }
  views_[key] = ViewDef{name, sql};
  return Status::OK();
}

const ViewDef* Catalog::FindView(const std::string& name) const {
  auto it = views_.find(ToLowerCopy(name));
  return it == views_.end() ? nullptr : &it->second;
}

Status Catalog::DropView(const std::string& name) {
  if (views_.erase(ToLowerCopy(name)) == 0) {
    return Status::NotFound("view '" + name + "' not found");
  }
  return Status::OK();
}

Result<ResolvedTable> Catalog::ResolveTable(const ObjectName& name,
                                            bool refresh) {
  if (!name.has_server()) {
    // `sys..dm_x` / `sys.dm_x`: a catalog or schema part naming the
    // reserved system source routes there directly — SQL Server's sys
    // schema spelled through the provider model.
    const bool sys_qualified = EqualsIgnoreCase(name.catalog, kSysServerName) ||
                               EqualsIgnoreCase(name.schema, kSysServerName);
    if (sys_qualified) return ResolveViaSystemSource(name.table, refresh);
    auto local = storage_->GetTable(name.table);
    if (local.ok()) {
      ResolvedTable out;
      out.source_id = kLocalSource;
      out.metadata = (*local)->Metadata();
      out.caps = local_source_->capabilities();
      out.checks = out.metadata.checks;
      return out;
    }
    // Not a local table: a bare DMV name (the shape decoded remote sys
    // queries arrive in) still resolves if the system source exposes it.
    auto via_sys = ResolveViaSystemSource(name.table, refresh);
    if (via_sys.ok()) return via_sys;
    return local.status();
  }
  return ResolveRemote(name, refresh);
}

Result<ResolvedTable> Catalog::ResolveViaSystemSource(const std::string& table,
                                                      bool refresh) {
  if (server_ids_.count(kSysServerName) == 0) {
    return Status::NotFound("no system-view source registered");
  }
  ObjectName sys_name;
  sys_name.server = kSysServerName;
  sys_name.table = table;
  return ResolveRemote(sys_name, refresh);
}

Result<ResolvedTable> Catalog::ResolveRemote(const ObjectName& name,
                                             bool refresh) {
  ResolvedTable out;
  DHQP_ASSIGN_OR_RETURN(int id, GetLinkedServerId(name.server));
  out.source_id = id;
  out.server_name = ServerName(id);
  out.caps = ServerSource(id)->capabilities();

  std::string cache_key = std::to_string(id) + '\0' + ToLowerCopy(name.table);
  auto it = table_cache_.find(cache_key);
  if (!refresh && it != table_cache_.end()) {
    out.metadata = it->second.metadata;
    out.checks = out.metadata.checks;
    return out;
  }
  DHQP_ASSIGN_OR_RETURN(Session * session, GetSession(id));
  DHQP_ASSIGN_OR_RETURN(out.metadata, session->GetTableMetadata(name.table));
  table_cache_[cache_key] = TableCacheEntry{out.metadata};
  out.checks = out.metadata.checks;
  return out;
}

Result<ColumnStatistics> Catalog::GetStatistics(int source_id,
                                                const std::string& table,
                                                const std::string& column) {
  std::string key = std::to_string(source_id) + '\0' + ToLowerCopy(table) +
                    '\0' + ToLowerCopy(column);
  auto it = stats_cache_.find(key);
  if (it != stats_cache_.end()) return it->second;
  DHQP_ASSIGN_OR_RETURN(Session * session, GetSession(source_id));
  DHQP_ASSIGN_OR_RETURN(ColumnStatistics stats,
                        session->GetStatistics(table, column));
  stats_cache_[key] = stats;
  return stats;
}

void Catalog::InvalidateCaches() {
  table_cache_.clear();
  stats_cache_.clear();
}

}  // namespace dhqp
