#ifndef DHQP_CATALOG_CATALOG_H_
#define DHQP_CATALOG_CATALOG_H_

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/provider/provider.h"
#include "src/storage/storage_engine.h"

namespace dhqp {

/// A possibly-qualified object name from SQL. The paper's four-part
/// convention (§2.1): server.catalog.schema.table — shorter forms omit the
/// leading parts. Catalog/schema parts are carried for display and remoting
/// but resolution keys on (server, table).
struct ObjectName {
  std::string server;
  std::string catalog;
  std::string schema;
  std::string table;

  bool has_server() const { return !server.empty(); }
  std::string ToString() const;
};

/// A named view: its definition is kept as SQL text and re-bound on
/// reference, like deferred name resolution in SQL Server. Partitioned views
/// are ordinary views whose body is a UNION ALL over member tables (§4.1.5).
struct ViewDef {
  std::string name;
  std::string sql;
};

/// Identifies where a table lives: kLocalSource for the local storage
/// engine, otherwise the linked-server ordinal.
constexpr int kLocalSource = -1;

/// Reserved linked-server name under which every Engine auto-registers its
/// system-view (DMV) provider. `sys..dm_link_stats` — or, through a
/// four-part name, `shard1.sys..dm_link_stats` — resolves here; user
/// AddLinkedServer calls may not claim the name.
inline constexpr const char kSysServerName[] = "sys";

/// Everything the binder/optimizer need to know about a resolved table:
/// where it lives, its shape/cardinality/indexes, CHECK-constraint domains,
/// and the owning provider's capabilities.
struct ResolvedTable {
  int source_id = kLocalSource;
  std::string server_name;  ///< Empty for local tables.
  TableMetadata metadata;
  ProviderCapabilities caps;
  /// Column-domain constraints (from CHECK constraints); the constraint
  /// property framework seeds per-column domains from these.
  std::vector<CheckConstraint> checks;
};

/// Metadata hub of one engine instance (Fig 1's "Metadata: Stats, Linked
/// Servers" box): the local storage engine, the linked-server registry
/// binding names to providers, views, and cached remote metadata and
/// statistics.
class Catalog {
 public:
  explicit Catalog(StorageEngine* storage);

  StorageEngine* storage() const { return storage_; }

  /// @name Linked servers (§2.1).
  ///@{
  /// `reserved` is only set by the engine's own system-source registration;
  /// user registrations of reserved names (kSysServerName) are rejected.
  Status AddLinkedServer(const std::string& name,
                         std::shared_ptr<DataSource> source,
                         bool reserved = false);
  Result<DataSource*> GetLinkedServer(const std::string& name) const;
  Result<int> GetLinkedServerId(const std::string& name) const;
  /// Server name for a source id; precondition: valid remote id.
  const std::string& ServerName(int source_id) const;
  DataSource* ServerSource(int source_id) const;
  std::vector<std::string> LinkedServerNames() const;
  ///@}

  /// A reusable session on the given source (lazily created, cached).
  /// Thread-safe: parallel partitioned-view branches create their member
  /// sessions concurrently.
  Result<Session*> GetSession(int source_id);

  /// Session on the reserved `sys` system-view source — the session-state
  /// accessor DMV consumers (including remote EngineSessions answering
  /// four-part sys scans) go through. NotFound when no system source is
  /// registered.
  Result<Session*> SystemSession();

  /// Tears down the cached session for one remote source: the next
  /// GetSession reconnects through the provider. The link-down recovery
  /// path (§4.2) — a session over a dead link is useless even after the
  /// link comes back. Must only be called between queries: executor nodes
  /// hold raw Session pointers while a query runs. No-op for kLocalSource.
  void DropSession(int source_id);
  /// DropSession for every linked server (Engine calls this after an
  /// execution fails with a network error).
  void DropRemoteSessions();

  /// @name Views.
  ///@{
  Status CreateView(const std::string& name, const std::string& sql);
  const ViewDef* FindView(const std::string& name) const;
  Status DropView(const std::string& name);
  ///@}

  /// Resolves a (possibly four-part) table name to its source + metadata.
  /// Remote metadata is fetched through the provider's schema rowset and
  /// cached; `refresh` forces re-fetch (used by delayed schema validation).
  Result<ResolvedTable> ResolveTable(const ObjectName& name,
                                     bool refresh = false);

  /// Column statistics for cardinality estimation. For remote sources this
  /// goes through the provider's histogram rowsets (§3.2.4) when supported;
  /// returns NotSupported otherwise. `allow_remote_fetch=false` simulates an
  /// optimizer configured to ignore remote statistics (ablation E3).
  Result<ColumnStatistics> GetStatistics(int source_id,
                                         const std::string& table,
                                         const std::string& column);

  /// Drops all cached remote metadata/statistics (tests & delayed schema
  /// validation scenarios).
  void InvalidateCaches();

 private:
  StorageEngine* storage_;
  std::unique_ptr<StorageDataSource> local_source_;
  std::unique_ptr<Session> local_session_;

  /// Resolution against a linked server (the name must carry a server part).
  Result<ResolvedTable> ResolveRemote(const ObjectName& name, bool refresh);
  /// Resolution against the reserved system source, if one is registered and
  /// exposes `table`.
  Result<ResolvedTable> ResolveViaSystemSource(const std::string& table,
                                               bool refresh);

  struct ServerEntry {
    std::string name;
    std::shared_ptr<DataSource> source;
    std::unique_ptr<Session> session;  // Lazily created.
    bool reserved = false;  // System source: survives DropRemoteSessions.
  };
  std::vector<ServerEntry> servers_;
  std::map<std::string, int> server_ids_;  // Lower-cased name -> ordinal.
  std::mutex session_mu_;  // Guards lazy session creation in GetSession.

  std::map<std::string, ViewDef> views_;  // Lower-cased name.

  struct TableCacheEntry {
    TableMetadata metadata;
  };
  std::map<std::string, TableCacheEntry> table_cache_;  // "id\0table".
  std::map<std::string, ColumnStatistics> stats_cache_;  // "id\0table\0col".
};

}  // namespace dhqp

#endif  // DHQP_CATALOG_CATALOG_H_
