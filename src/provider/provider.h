#ifndef DHQP_PROVIDER_PROVIDER_H_
#define DHQP_PROVIDER_PROVIDER_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/common/row.h"
#include "src/common/schema.h"
#include "src/common/status.h"
#include "src/provider/capabilities.h"
#include "src/provider/metadata.h"

namespace dhqp {

/// A block of rows fetched in one provider round trip. Models the row-handle
/// arrays that OLE DB's IRowset::GetNextRows returns: consumers that fetch
/// blocks instead of single rows pay one round trip per block.
struct RowBatch {
  std::vector<Row> rows;

  size_t size() const { return rows.size(); }
  bool empty() const { return rows.empty(); }
  void clear() { rows.clear(); }
};

/// Tabular data stream — the paper's Rowset abstraction (§3.1.2): "a
/// unifying abstraction that enables OLE DB data providers to expose data in
/// tabular form". Base tables, query results, index ranges, full-text rank
/// results and metadata all flow through this interface, which is what lets
/// the relational engine consume any source uniformly.
class Rowset {
 public:
  virtual ~Rowset() = default;

  virtual const Schema& schema() const = 0;

  /// Advances to the next row. Returns true and fills `out` when a row is
  /// available, false at end of data.
  virtual Result<bool> Next(Row* out) = 0;

  /// Fetches up to `max_rows` rows into `out` (cleared first) — the OLE DB
  /// IRowset::GetNextRows block-fetch surface. Returns false only at end of
  /// data (out left empty); a partial batch is returned as true and the
  /// following call reports the end. The base implementation loops Next(),
  /// so every rowset supports block fetch; sources with contiguous storage
  /// override it to hand out slices.
  virtual Result<bool> NextBatch(RowBatch* out, int max_rows);

  /// Repositions before the first row, if the rowset supports rewinding.
  /// Streaming rowsets (e.g. remote query results) do not; the executor
  /// inserts a Spool when it needs to rescan them (§4.1.4).
  virtual Status Restart() {
    return Status::NotSupported("rowset does not support Restart");
  }

  /// Skips up to `n` rows, returning the number actually skipped (< n only
  /// at end of data). The base implementation discards rows through Next();
  /// positional rowsets override it to advance without copying — what makes
  /// block-cyclic partitioned scans cheap (each of `dop` workers reads every
  /// dop-th block and skips the rest).
  virtual Result<int64_t> SkipRows(int64_t n);
};

/// A rowset fully materialized in memory. Supports Restart. Also the
/// building block for metadata rowsets and spools.
class VectorRowset : public Rowset {
 public:
  VectorRowset(Schema schema, std::vector<Row> rows)
      : schema_(std::move(schema)), rows_(std::move(rows)) {}

  const Schema& schema() const override { return schema_; }

  Result<bool> Next(Row* out) override {
    if (pos_ >= rows_.size()) return false;
    *out = rows_[pos_++];
    return true;
  }

  Result<bool> NextBatch(RowBatch* out, int max_rows) override {
    out->clear();
    if (pos_ >= rows_.size() || max_rows <= 0) return false;
    size_t n = rows_.size() - pos_;
    if (n > static_cast<size_t>(max_rows)) n = static_cast<size_t>(max_rows);
    out->rows.assign(rows_.begin() + static_cast<ptrdiff_t>(pos_),
                     rows_.begin() + static_cast<ptrdiff_t>(pos_ + n));
    pos_ += n;
    return true;
  }

  Status Restart() override {
    pos_ = 0;
    return Status::OK();
  }

  Result<int64_t> SkipRows(int64_t n) override {
    if (n <= 0 || pos_ >= rows_.size()) return static_cast<int64_t>(0);
    int64_t remaining = static_cast<int64_t>(rows_.size() - pos_);
    int64_t skipped = n < remaining ? n : remaining;
    pos_ += static_cast<size_t>(skipped);
    return skipped;
  }

  const std::vector<Row>& rows() const { return rows_; }

 private:
  Schema schema_;
  std::vector<Row> rows_;
  size_t pos_ = 0;
};

/// Drains a rowset into a vector. Utility shared by tests, spools and the
/// remote bridge.
Result<std::vector<Row>> DrainRowset(Rowset* rowset);

/// A key range over a (possibly composite) index: fixed equality prefix plus
/// optional bounds on the next key column. This models "the ability to seek
/// (or setting a range) on the index for given key values" via IRowsetIndex
/// (§3.3).
struct IndexRange {
  std::vector<Value> eq_prefix;  ///< Equality constraints on leading keys.
  std::optional<Value> lo;       ///< Lower bound on the next key column.
  bool lo_inclusive = true;
  std::optional<Value> hi;       ///< Upper bound on the next key column.
  bool hi_inclusive = true;

  std::string ToString() const;
};

/// The Command object (§3.2.1): "encapsulates the functions that enable a
/// consumer to invoke the execution of data definition or data manipulation
/// statements". Text is in whatever language the provider speaks (Table 1);
/// the DHQP's decoder generates dialect-appropriate SQL for SQL providers.
class Command {
 public:
  virtual ~Command() = default;

  /// Sets the command text (query in the provider's language).
  virtual Status SetText(std::string text) = 0;

  /// Binds a named parameter (e.g. "@p0"). Only on providers whose
  /// capabilities report supports_parameters.
  virtual Status BindParameter(const std::string& name, const Value& value) {
    (void)name;
    (void)value;
    return Status::NotSupported("provider does not support parameters");
  }

  /// Executes and returns the result rowset.
  virtual Result<std::unique_ptr<Rowset>> Execute() = 0;

  /// Executes a statement with no result set; returns rows affected.
  virtual Result<int64_t> ExecuteNonQuery() {
    return Status::NotSupported("provider does not support non-query commands");
  }
};

/// The Session object (§3.1.1): "a transactional scope for multiple
/// concurrent units of work", plus the IOpenRowset / IDBSchemaRowset /
/// histogram surface the DHQP consumes.
class Session {
 public:
  virtual ~Session() = default;

  /// IOpenRowset: opens a named base rowset (table scan).
  virtual Result<std::unique_ptr<Rowset>> OpenRowset(
      const std::string& table) = 0;

  /// IDBCreateCommand: only on query-capable providers.
  virtual Result<std::unique_ptr<Command>> CreateCommand() {
    return Status::NotSupported("provider is not query-capable");
  }

  /// IDBSchemaRowset: table/column/index metadata.
  virtual Result<std::vector<TableMetadata>> ListTables() = 0;
  virtual Result<TableMetadata> GetTableMetadata(const std::string& table);

  /// Histogram/statistics rowsets (§3.2.4). NotSupported unless the
  /// provider's capabilities report supports_histograms.
  virtual Result<ColumnStatistics> GetStatistics(const std::string& table,
                                                 const std::string& column) {
    (void)table;
    (void)column;
    return Status::NotSupported("provider does not expose statistics");
  }

  /// IRowsetIndex: opens base-table rows reachable through `index` within
  /// `range`, in key order ("remote range" access path, §4.1.2).
  virtual Result<std::unique_ptr<Rowset>> OpenIndexRange(
      const std::string& table, const std::string& index,
      const IndexRange& range) {
    (void)table;
    (void)index;
    (void)range;
    return Status::NotSupported("provider does not support indexes");
  }

  /// IRowsetLocate: fetches one base row by bookmark ("remote fetch" access
  /// path). Bookmarks are produced by index rowsets opened with
  /// OpenIndexKeys.
  virtual Result<std::optional<Row>> FetchByBookmark(const std::string& table,
                                                     const Value& bookmark) {
    (void)table;
    (void)bookmark;
    return Status::NotSupported("provider does not support bookmarks");
  }

  /// Opens (key columns..., bookmark) pairs from an index within `range`.
  virtual Result<std::unique_ptr<Rowset>> OpenIndexKeys(
      const std::string& table, const std::string& index,
      const IndexRange& range) {
    (void)table;
    (void)index;
    (void)range;
    return Status::NotSupported("provider does not support indexes");
  }

  /// Row insertion, used by DML routing and the federation tests. Providers
  /// that are read-only keep the default.
  virtual Result<int64_t> InsertRows(const std::string& table,
                                     const std::vector<Row>& rows) {
    (void)table;
    (void)rows;
    return Status::NotSupported("provider is read-only");
  }

  /// @name Two-phase-commit enlistment (ITransactionJoin; used by the DTC).
  /// Providers that cannot enlist keep the defaults and the DTC refuses to
  /// span them.
  ///@{
  virtual Status BeginTransaction(int64_t txn_id) {
    (void)txn_id;
    return Status::NotSupported("provider is not transactional");
  }
  virtual Status PrepareTransaction(int64_t txn_id) {
    (void)txn_id;
    return Status::NotSupported("provider is not transactional");
  }
  virtual Status CommitTransaction(int64_t txn_id) {
    (void)txn_id;
    return Status::NotSupported("provider is not transactional");
  }
  virtual Status AbortTransaction(int64_t txn_id) {
    (void)txn_id;
    return Status::NotSupported("provider is not transactional");
  }
  ///@}
};

/// The Data Source Object (§3.1.1): locate/activate a provider, negotiate
/// capabilities, create sessions. Replaces COM CoCreateInstance +
/// IDBInitialize with plain C++ construction + Initialize().
class DataSource {
 public:
  virtual ~DataSource() = default;

  /// IDBProperties + IDBInitialize: authentication/location properties then
  /// connection establishment. Default accepts anything.
  virtual Status Initialize(
      const std::map<std::string, std::string>& properties) {
    (void)properties;
    return Status::OK();
  }

  /// IDBProperties/IDBInfo: what this source can do (drives optimizer and
  /// decoder decisions).
  virtual const ProviderCapabilities& capabilities() const = 0;

  /// IDBCreateSession.
  virtual Result<std::unique_ptr<Session>> CreateSession() = 0;
};

}  // namespace dhqp

#endif  // DHQP_PROVIDER_PROVIDER_H_
