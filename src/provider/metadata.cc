#include "src/provider/metadata.h"

#include <algorithm>
#include <cmath>

namespace dhqp {

namespace {

bool IsNumericType(DataType t) {
  return t == DataType::kInt64 || t == DataType::kDouble ||
         t == DataType::kDate || t == DataType::kBool;
}

// Fraction of the bucket (lo_bound, upper] that falls inside [range_lo,
// range_hi] (either side may be null = unbounded). Numeric buckets use
// linear interpolation; non-numeric partial overlaps are estimated at 1/2.
double BucketOverlapFraction(const Value* lo_bound, const Value& upper,
                             const Value* range_lo, bool lo_inc,
                             const Value* range_hi, bool hi_inc) {
  // Fully below or above the range?
  if (range_lo != nullptr) {
    int c = upper.Compare(*range_lo);
    if (c < 0 || (c == 0 && !lo_inc)) return 0.0;
  }
  if (range_hi != nullptr && lo_bound != nullptr) {
    int c = lo_bound->Compare(*range_hi);
    if (c > 0 || (c == 0 && !hi_inc)) return 0.0;
  }
  // Fully inside?
  bool lo_inside = range_lo == nullptr ||
                   (lo_bound != nullptr && lo_bound->Compare(*range_lo) >= 0);
  bool hi_inside = range_hi == nullptr || upper.Compare(*range_hi) <= 0;
  if (lo_inside && hi_inside) return 1.0;

  if (!IsNumericType(upper.type()) || lo_bound == nullptr ||
      !IsNumericType(lo_bound->type())) {
    return 0.5;  // Partial overlap of a non-interpolatable bucket.
  }
  double b_lo = lo_bound->AsDouble();
  double b_hi = upper.AsDouble();
  if (b_hi <= b_lo) return 1.0;
  double lo = range_lo != nullptr ? std::max(b_lo, range_lo->AsDouble()) : b_lo;
  double hi = range_hi != nullptr ? std::min(b_hi, range_hi->AsDouble()) : b_hi;
  if (hi <= lo) return 0.0;
  return (hi - lo) / (b_hi - b_lo);
}

}  // namespace

double ColumnStatistics::EstimateEquals(const Value& v) const {
  if (buckets.empty()) {
    // No histogram: fall back to the uniform-distinct model.
    if (distinct_count > 0) return row_count / distinct_count;
    return row_count > 0 ? 1.0 : 0.0;
  }
  const Value* prev_upper = nullptr;
  for (const HistogramBucket& b : buckets) {
    int c = v.Compare(b.upper);
    if (c == 0) return std::max(b.upper_row_count, 1.0);
    if (c < 0) {
      bool above_lower =
          prev_upper == nullptr || v.Compare(*prev_upper) > 0;
      if (above_lower) {
        double in_bucket = b.row_count - b.upper_row_count;
        double distinct = std::max(b.distinct_count - 1.0, 1.0);
        return std::max(in_bucket / distinct, 0.0);
      }
      return 0.0;
    }
    prev_upper = &b.upper;
  }
  return 0.0;  // Above the highest bucket boundary.
}

double ColumnStatistics::EstimateRange(const Value* lo, bool lo_inclusive,
                                       const Value* hi,
                                       bool hi_inclusive) const {
  if (buckets.empty()) {
    // Uniform fallback: standard 1/3 selectivity guess for open ranges.
    return row_count / 3.0;
  }
  double total = 0;
  const Value* prev_upper = nullptr;
  for (const HistogramBucket& b : buckets) {
    total += b.row_count * BucketOverlapFraction(prev_upper, b.upper, lo,
                                                 lo_inclusive, hi,
                                                 hi_inclusive);
    prev_upper = &b.upper;
  }
  return total;
}

}  // namespace dhqp
