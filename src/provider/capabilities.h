#ifndef DHQP_PROVIDER_CAPABILITIES_H_
#define DHQP_PROVIDER_CAPABILITIES_H_

#include <string>
#include <vector>

namespace dhqp {

/// Level of SQL understood by a query provider, mirroring the paper's
/// DBPROP_SQLSUPPORT property (§3.3): "SQL Minimum, ODBC Core or SQL-92
/// Entry/Intermediate/Full". The DHQP constructs remote statements "such
/// that the provider's capabilities are fully used while not overshooting
/// its limitations".
enum class SqlSupportLevel {
  kNone = 0,      ///< Not query-capable (simple provider) or proprietary syntax.
  kMinimum,       ///< Single-table SELECT + conjunctive comparisons only.
  kOdbcCore,      ///< Adds joins and ORDER BY; no subqueries or GROUP BY.
  kSql92Entry,    ///< Adds GROUP BY/aggregates; no nested selects.
  kSql92Full,     ///< Full dialect incl. nested selects and EXISTS.
};

const char* SqlSupportLevelName(SqlSupportLevel level);

/// How the provider's dialect spells a date literal; used by the decoder
/// (§4.1.3: "specific syntactical details about date literals beyond what is
/// defined in SQL").
enum class DateLiteralStyle {
  kIsoQuoted,     ///< '1995-03-15'
  kDateKeyword,   ///< DATE '1995-03-15'
  kHashDelimited, ///< #1995-03-15#  (Access style)
};

/// Everything a data source tells the DHQP about itself at connection time.
/// The optimizer reads these to decide what can be remoted; the decoder
/// reads them to phrase the generated SQL (§3.1.1, §4.1.3).
struct ProviderCapabilities {
  std::string provider_name;    ///< e.g. "SQLOLEDB", "MSIDXS", "CSV".
  std::string source_type;      ///< e.g. "Relational", "Full-text Indexing".
  std::string query_language;   ///< e.g. "Transact-SQL", "none" (Table 1).

  SqlSupportLevel sql_support = SqlSupportLevel::kNone;
  bool supports_command = false;        ///< ICommand present (query provider).
  bool supports_indexes = false;        ///< IRowsetIndex: remote seek/range.
  bool supports_bookmarks = false;      ///< IRowsetLocate: fetch by bookmark.
  bool supports_histograms = false;     ///< Histogram rowsets (§3.2.4).
  bool supports_schema_rowset = false;  ///< IDBSchemaRowset metadata.
  bool supports_transactions = false;   ///< Can enlist in 2PC.
  bool supports_parameters = false;     ///< Parameterized remote queries.
  bool supports_nested_selects = false; ///< Extra property beyond SQL level.

  /// Dialect details for the decoder.
  char identifier_quote_open = '"';
  char identifier_quote_close = '"';
  DateLiteralStyle date_literal_style = DateLiteralStyle::kIsoQuoted;

  /// The "interface" names this provider implements, in OLE DB terms. This
  /// reproduces Table 2's support matrix and is derived from the flags
  /// above.
  std::vector<std::string> SupportedInterfaces() const;

  /// True if a statement needing the given SQL level can be remoted.
  bool SupportsSqlLevel(SqlSupportLevel needed) const {
    return static_cast<int>(sql_support) >= static_cast<int>(needed);
  }
};

}  // namespace dhqp

#endif  // DHQP_PROVIDER_CAPABILITIES_H_
