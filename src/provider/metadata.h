#ifndef DHQP_PROVIDER_METADATA_H_
#define DHQP_PROVIDER_METADATA_H_

#include <string>
#include <vector>

#include "src/common/interval.h"
#include "src/common/schema.h"

namespace dhqp {

/// A single-column range CHECK constraint: `column`'s value must lie in
/// `domain`. This is the constraint form partitioned views are built on
/// (§4.1.5: "The range of values in each member table is enforced by a CHECK
/// constraint on a column designated as the partitioning column"). Providers
/// expose member constraints through their schema rowsets so the host's
/// constraint property framework can prune partitions.
struct CheckConstraint {
  std::string column;
  IntervalSet domain;
  std::string definition;  ///< Original SQL text, for error messages/EXPLAIN.
};

/// Metadata about one index exposed by a provider's schema rowset
/// (IDBSchemaRowset, §3.3: "Index support requires reporting metadata on the
/// indexes").
struct IndexMetadata {
  std::string name;
  std::vector<std::string> key_columns;  ///< In key order.
  bool unique = false;
};

/// One bucket of an equi-depth histogram shipped from a remote source
/// (§3.2.4). `upper` is the inclusive upper boundary of the bucket.
struct HistogramBucket {
  Value upper;
  double row_count = 0;       ///< Rows with value in (prev.upper, upper].
  double distinct_count = 0;  ///< Distinct values in the bucket.
  double upper_row_count = 0; ///< Rows exactly equal to `upper`.
};

/// Column statistics: histogram plus summary counts. Providers that support
/// histograms expose these per column; the optimizer folds them into its
/// cardinality estimates exactly like local statistics.
struct ColumnStatistics {
  std::string column;
  double row_count = 0;
  double distinct_count = 0;
  double null_count = 0;
  std::vector<HistogramBucket> buckets;  ///< Sorted ascending by `upper`.

  /// Estimated number of rows equal to `v`.
  double EstimateEquals(const Value& v) const;
  /// Estimated number of rows in the given (optionally open) range.
  double EstimateRange(const Value* lo, bool lo_inclusive, const Value* hi,
                       bool hi_inclusive) const;
};

/// Metadata about one table/rowset a provider exposes: schema, cardinality
/// (TABLES_INFO in the paper) and any indexes.
struct TableMetadata {
  std::string name;
  Schema schema;
  double cardinality = 0;
  std::vector<IndexMetadata> indexes;
  std::vector<CheckConstraint> checks;
};

}  // namespace dhqp

#endif  // DHQP_PROVIDER_METADATA_H_
