#include "src/provider/capabilities.h"

namespace dhqp {

const char* SqlSupportLevelName(SqlSupportLevel level) {
  switch (level) {
    case SqlSupportLevel::kNone:
      return "None";
    case SqlSupportLevel::kMinimum:
      return "SQL Minimum";
    case SqlSupportLevel::kOdbcCore:
      return "ODBC Core";
    case SqlSupportLevel::kSql92Entry:
      return "SQL-92 Entry";
    case SqlSupportLevel::kSql92Full:
      return "SQL-92 Full";
  }
  return "Unknown";
}

std::vector<std::string> ProviderCapabilities::SupportedInterfaces() const {
  // The mandatory DSO/session interfaces of Table 2 are implemented by every
  // provider in this system; optional ones depend on capability flags.
  std::vector<std::string> ifaces = {"IDBInitialize", "IDBCreateSession",
                                     "IDBProperties", "IOpenRowset"};
  if (supports_schema_rowset) ifaces.push_back("IDBSchemaRowset");
  if (supports_command) ifaces.push_back("IDBCreateCommand");
  if (supports_command) ifaces.push_back("ICommand");
  if (supports_indexes) ifaces.push_back("IRowsetIndex");
  if (supports_bookmarks) ifaces.push_back("IRowsetLocate");
  if (supports_transactions) ifaces.push_back("ITransactionJoin");
  ifaces.push_back("IRowset");
  return ifaces;
}

}  // namespace dhqp
