#include "src/provider/provider.h"

namespace dhqp {

Result<bool> Rowset::NextBatch(RowBatch* out, int max_rows) {
  out->clear();
  Row row;
  while (static_cast<int>(out->rows.size()) < max_rows) {
    DHQP_ASSIGN_OR_RETURN(bool has, Next(&row));
    if (!has) break;
    out->rows.push_back(std::move(row));
  }
  return !out->rows.empty();
}

Result<int64_t> Rowset::SkipRows(int64_t n) {
  Row discard;
  int64_t skipped = 0;
  while (skipped < n) {
    DHQP_ASSIGN_OR_RETURN(bool has, Next(&discard));
    if (!has) break;
    ++skipped;
  }
  return skipped;
}

Result<std::vector<Row>> DrainRowset(Rowset* rowset) {
  std::vector<Row> rows;
  Row row;
  while (true) {
    DHQP_ASSIGN_OR_RETURN(bool has, rowset->Next(&row));
    if (!has) break;
    rows.push_back(row);
  }
  return rows;
}

std::string IndexRange::ToString() const {
  std::string out = "prefix=(";
  for (size_t i = 0; i < eq_prefix.size(); ++i) {
    if (i) out += ",";
    out += eq_prefix[i].ToString();
  }
  out += ")";
  if (lo) {
    out += lo_inclusive ? " [" : " (";
    out += lo->ToString();
  } else {
    out += " (-inf";
  }
  out += ", ";
  if (hi) {
    out += hi->ToString();
    out += hi_inclusive ? "]" : ")";
  } else {
    out += "+inf)";
  }
  return out;
}

Result<TableMetadata> Session::GetTableMetadata(const std::string& table) {
  DHQP_ASSIGN_OR_RETURN(std::vector<TableMetadata> tables, ListTables());
  for (TableMetadata& t : tables) {
    if (EqualsIgnoreCase(t.name, table)) return std::move(t);
  }
  return Status::NotFound("table '" + table + "' not found in provider");
}

}  // namespace dhqp
