#include "src/connectors/linked_provider.h"

namespace dhqp {

namespace {

class LinkedCommand : public Command {
 public:
  LinkedCommand(std::unique_ptr<Command> inner, net::Link* link)
      : inner_(std::move(inner)), link_(link) {}

  Status SetText(std::string text) override {
    text_size_ = text.size();
    return inner_->SetText(std::move(text));
  }

  Status BindParameter(const std::string& name, const Value& value) override {
    return inner_->BindParameter(name, value);
  }

  Result<std::unique_ptr<Rowset>> Execute() override {
    DHQP_RETURN_NOT_OK(link_->SendMessage(64 + text_size_));
    DHQP_ASSIGN_OR_RETURN(auto rowset, inner_->Execute());
    return std::unique_ptr<Rowset>(
        new net::LinkedRowset(std::move(rowset), link_));
  }

  Result<int64_t> ExecuteNonQuery() override {
    DHQP_RETURN_NOT_OK(link_->SendMessage(64 + text_size_));
    return inner_->ExecuteNonQuery();
  }

 private:
  std::unique_ptr<Command> inner_;
  net::Link* link_;
  size_t text_size_ = 0;
};

class LinkedSession : public Session {
 public:
  LinkedSession(std::unique_ptr<Session> inner, net::Link* link)
      : inner_(std::move(inner)), link_(link) {}

  Result<std::unique_ptr<Rowset>> OpenRowset(const std::string& table) override {
    DHQP_RETURN_NOT_OK(link_->SendMessage(64 + table.size()));
    DHQP_ASSIGN_OR_RETURN(auto rowset, inner_->OpenRowset(table));
    return std::unique_ptr<Rowset>(
        new net::LinkedRowset(std::move(rowset), link_));
  }

  Result<std::unique_ptr<Command>> CreateCommand() override {
    DHQP_ASSIGN_OR_RETURN(auto command, inner_->CreateCommand());
    return std::unique_ptr<Command>(
        new LinkedCommand(std::move(command), link_));
  }

  Result<std::vector<TableMetadata>> ListTables() override {
    DHQP_RETURN_NOT_OK(link_->SendMessage(64));
    return inner_->ListTables();
  }

  Result<TableMetadata> GetTableMetadata(const std::string& table) override {
    // Forward to the inner session rather than inheriting the default
    // ListTables scan: providers that resolve names beyond their base-table
    // list (e.g. an engine answering for its system views) must see the
    // request.
    DHQP_RETURN_NOT_OK(link_->SendMessage(64 + table.size()));
    return inner_->GetTableMetadata(table);
  }

  Result<ColumnStatistics> GetStatistics(const std::string& table,
                                         const std::string& column) override {
    // Histogram rowsets are small; one round trip.
    DHQP_RETURN_NOT_OK(link_->SendMessage(256));
    return inner_->GetStatistics(table, column);
  }

  Result<std::unique_ptr<Rowset>> OpenIndexRange(
      const std::string& table, const std::string& index,
      const IndexRange& range) override {
    DHQP_RETURN_NOT_OK(link_->SendMessage(96 + table.size() + index.size()));
    DHQP_ASSIGN_OR_RETURN(auto rowset,
                          inner_->OpenIndexRange(table, index, range));
    return std::unique_ptr<Rowset>(
        new net::LinkedRowset(std::move(rowset), link_));
  }

  Result<std::unique_ptr<Rowset>> OpenIndexKeys(
      const std::string& table, const std::string& index,
      const IndexRange& range) override {
    DHQP_RETURN_NOT_OK(link_->SendMessage(96 + table.size() + index.size()));
    DHQP_ASSIGN_OR_RETURN(auto rowset,
                          inner_->OpenIndexKeys(table, index, range));
    return std::unique_ptr<Rowset>(
        new net::LinkedRowset(std::move(rowset), link_));
  }

  Result<std::optional<Row>> FetchByBookmark(const std::string& table,
                                             const Value& bookmark) override {
    // Each bookmark fetch is its own round trip — what makes "remote fetch"
    // expensive per row and only worthwhile at high selectivity.
    DHQP_RETURN_NOT_OK(link_->SendMessage(48));
    DHQP_ASSIGN_OR_RETURN(auto row, inner_->FetchByBookmark(table, bookmark));
    if (row.has_value()) link_->ChargeRows(1, RowWireSize(*row));
    return row;
  }

  Result<int64_t> InsertRows(const std::string& table,
                             const std::vector<Row>& rows) override {
    // One round trip for the command envelope; the row payload is charged
    // through ChargeRows so bulk inserts pay bandwidth like result streams
    // do (and show up in LinkStats.rows).
    DHQP_RETURN_NOT_OK(link_->SendMessage(64 + table.size()));
    size_t bytes = 0;
    for (const Row& row : rows) bytes += RowWireSize(row);
    link_->ChargeRows(static_cast<int64_t>(rows.size()), bytes);
    return inner_->InsertRows(table, rows);
  }

  Status BeginTransaction(int64_t txn_id) override {
    DHQP_RETURN_NOT_OK(link_->SendMessage(32));
    return inner_->BeginTransaction(txn_id);
  }
  Status PrepareTransaction(int64_t txn_id) override {
    DHQP_RETURN_NOT_OK(link_->SendMessage(32));
    return inner_->PrepareTransaction(txn_id);
  }
  Status CommitTransaction(int64_t txn_id) override {
    DHQP_RETURN_NOT_OK(link_->SendMessage(32));
    return inner_->CommitTransaction(txn_id);
  }
  Status AbortTransaction(int64_t txn_id) override {
    DHQP_RETURN_NOT_OK(link_->SendMessage(32));
    return inner_->AbortTransaction(txn_id);
  }

 private:
  std::unique_ptr<Session> inner_;
  net::Link* link_;
};

}  // namespace

Result<std::unique_ptr<Session>> LinkedDataSource::CreateSession() {
  DHQP_RETURN_NOT_OK(link_->SendMessage(48));
  DHQP_ASSIGN_OR_RETURN(auto session, inner_->CreateSession());
  return std::unique_ptr<Session>(
      new LinkedSession(std::move(session), link_));
}

}  // namespace dhqp
