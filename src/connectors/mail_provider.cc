#include "src/connectors/mail_provider.h"

namespace dhqp {

Schema MailDataSource::MailSchema() {
  Schema schema;
  schema.AddColumn(ColumnDef{"MsgId", DataType::kInt64, false});
  schema.AddColumn(ColumnDef{"FromAddr", DataType::kString, true});
  schema.AddColumn(ColumnDef{"ToAddr", DataType::kString, true});
  schema.AddColumn(ColumnDef{"Subject", DataType::kString, true});
  schema.AddColumn(ColumnDef{"Body", DataType::kString, true});
  schema.AddColumn(ColumnDef{"MsgDate", DataType::kDate, true});
  schema.AddColumn(ColumnDef{"InReplyTo", DataType::kInt64, true});
  return schema;
}

/// Scans/metadata over the mailbox.
class MailSession : public Session {
 public:
  explicit MailSession(MailDataSource* source) : source_(source) {}

  Result<std::unique_ptr<Rowset>> OpenRowset(const std::string& table) override {
    if (!EqualsIgnoreCase(table, "inbox")) {
      return Status::NotFound("mail store exposes only table 'inbox'");
    }
    std::vector<Row> rows;
    rows.reserve(source_->messages_.size());
    for (const MailMessage& m : source_->messages_) {
      Row row;
      row.push_back(Value::Int64(m.msg_id));
      row.push_back(Value::String(m.from));
      row.push_back(Value::String(m.to));
      row.push_back(Value::String(m.subject));
      row.push_back(Value::String(m.body));
      row.push_back(Value::Date(m.date_days));
      row.push_back(m.in_reply_to < 0 ? Value::Null(DataType::kInt64)
                                      : Value::Int64(m.in_reply_to));
      rows.push_back(std::move(row));
    }
    return std::unique_ptr<Rowset>(
        new VectorRowset(MailDataSource::MailSchema(), std::move(rows)));
  }

  Result<std::vector<TableMetadata>> ListTables() override {
    TableMetadata meta;
    meta.name = "inbox";
    meta.schema = MailDataSource::MailSchema();
    meta.cardinality = static_cast<double>(source_->messages_.size());
    return std::vector<TableMetadata>{meta};
  }

 private:
  MailDataSource* source_;
};

MailDataSource::MailDataSource(std::vector<MailMessage> messages)
    : messages_(std::move(messages)) {
  caps_.provider_name = "DHQP.Mail";
  caps_.source_type = "Email";
  caps_.query_language = "none";
  caps_.sql_support = SqlSupportLevel::kNone;
  caps_.supports_schema_rowset = true;
}

Result<std::unique_ptr<Session>> MailDataSource::CreateSession() {
  return std::unique_ptr<Session>(new MailSession(this));
}

}  // namespace dhqp
