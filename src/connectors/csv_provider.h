#ifndef DHQP_CONNECTORS_CSV_PROVIDER_H_
#define DHQP_CONNECTORS_CSV_PROVIDER_H_

#include <map>
#include <string>
#include <vector>

#include "src/provider/provider.h"

namespace dhqp {

/// A "simple provider" in the paper's taxonomy (§3.3): "supports only the
/// mandatory OLE DB interfaces of being able to connect and retrieve named
/// rowsets. In this case, DHQP provides all of the querying functionality on
/// top of this base provider." Tables are in-memory CSV files; column types
/// are sniffed from the first data row (int, float, date, string).
class CsvDataSource : public DataSource {
 public:
  CsvDataSource();

  /// Registers a table from CSV text: first line is the header.
  Status AddTable(const std::string& name, const std::string& csv_text);

  const ProviderCapabilities& capabilities() const override { return caps_; }
  Result<std::unique_ptr<Session>> CreateSession() override;

 private:
  friend class CsvSession;
  struct CsvTable {
    TableMetadata metadata;
    std::vector<Row> rows;
  };
  std::map<std::string, CsvTable> tables_;  ///< Keyed lower-case.
  ProviderCapabilities caps_;
};

}  // namespace dhqp

#endif  // DHQP_CONNECTORS_CSV_PROVIDER_H_
