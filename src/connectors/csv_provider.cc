#include "src/connectors/csv_provider.h"

#include <charconv>

#include "src/common/date.h"

namespace dhqp {

namespace {

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

// Sniffs the type of one field value.
DataType SniffType(const std::string& field) {
  if (field.empty()) return DataType::kString;
  int64_t i;
  auto [pi, eci] = std::from_chars(field.data(), field.data() + field.size(), i);
  if (eci == std::errc() && pi == field.data() + field.size()) {
    return DataType::kInt64;
  }
  try {
    size_t pos = 0;
    (void)std::stod(field, &pos);
    if (pos == field.size()) return DataType::kDouble;
  } catch (...) {
  }
  if (field.size() >= 8 && field[4] == '-' && ParseIsoDate(field).ok()) {
    return DataType::kDate;
  }
  return DataType::kString;
}

Result<Value> ParseField(const std::string& field, DataType type) {
  if (field.empty()) return Value::Null(type);
  return Value::String(field).CastTo(type);
}

}  // namespace

/// Session over an in-memory CSV source: scans and metadata only.
class CsvSession : public Session {
 public:
  explicit CsvSession(CsvDataSource* source) : source_(source) {}

  Result<std::unique_ptr<Rowset>> OpenRowset(const std::string& table) override {
    auto it = source_->tables_.find(ToLowerCopy(table));
    if (it == source_->tables_.end()) {
      return Status::NotFound("csv table '" + table + "' not found");
    }
    return std::unique_ptr<Rowset>(
        new VectorRowset(it->second.metadata.schema, it->second.rows));
  }

  Result<std::vector<TableMetadata>> ListTables() override {
    std::vector<TableMetadata> out;
    for (const auto& [key, table] : source_->tables_) {
      out.push_back(table.metadata);
    }
    return out;
  }

 private:
  CsvDataSource* source_;
};

CsvDataSource::CsvDataSource() {
  caps_.provider_name = "DHQP.CSV";
  caps_.source_type = "Text files";
  caps_.query_language = "none";
  caps_.sql_support = SqlSupportLevel::kNone;
  caps_.supports_command = false;
  caps_.supports_indexes = false;
  caps_.supports_bookmarks = false;
  caps_.supports_histograms = false;
  caps_.supports_schema_rowset = true;
  caps_.supports_transactions = false;
}

Status CsvDataSource::AddTable(const std::string& name,
                               const std::string& csv_text) {
  std::string key = ToLowerCopy(name);
  if (tables_.count(key) > 0) {
    return Status::AlreadyExists("csv table '" + name + "' already exists");
  }
  // Split lines.
  std::vector<std::string> lines;
  std::string current;
  for (char c : csv_text) {
    if (c == '\n') {
      if (!current.empty() && current.back() == '\r') current.pop_back();
      lines.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) lines.push_back(std::move(current));
  if (lines.empty()) {
    return Status::InvalidArgument("csv table '" + name + "' has no header");
  }
  std::vector<std::string> header = SplitCsvLine(lines[0]);

  // Sniff column types from the first data row (string when absent).
  std::vector<DataType> types(header.size(), DataType::kString);
  if (lines.size() > 1) {
    std::vector<std::string> first = SplitCsvLine(lines[1]);
    for (size_t i = 0; i < header.size() && i < first.size(); ++i) {
      types[i] = SniffType(first[i]);
    }
  }
  CsvTable table;
  for (size_t i = 0; i < header.size(); ++i) {
    table.metadata.schema.AddColumn(ColumnDef{header[i], types[i], true});
  }
  table.metadata.name = name;
  for (size_t l = 1; l < lines.size(); ++l) {
    if (lines[l].empty()) continue;
    std::vector<std::string> fields = SplitCsvLine(lines[l]);
    if (fields.size() != header.size()) {
      return Status::InvalidArgument("csv row " + std::to_string(l) +
                                     " has wrong field count");
    }
    Row row;
    for (size_t i = 0; i < fields.size(); ++i) {
      DHQP_ASSIGN_OR_RETURN(Value v, ParseField(fields[i], types[i]));
      row.push_back(std::move(v));
    }
    table.rows.push_back(std::move(row));
  }
  table.metadata.cardinality = static_cast<double>(table.rows.size());
  tables_[key] = std::move(table);
  return Status::OK();
}

Result<std::unique_ptr<Session>> CsvDataSource::CreateSession() {
  return std::unique_ptr<Session>(new CsvSession(this));
}

}  // namespace dhqp
