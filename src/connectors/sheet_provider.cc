#include "src/connectors/sheet_provider.h"

namespace dhqp {

/// Scans/metadata over registered sheets.
class SheetSession : public Session {
 public:
  explicit SheetSession(SheetDataSource* source) : source_(source) {}

  Result<std::unique_ptr<Rowset>> OpenRowset(const std::string& table) override {
    auto it = source_->sheets_.find(ToLowerCopy(table));
    if (it == source_->sheets_.end()) {
      return Status::NotFound("sheet '" + table + "' not found");
    }
    return std::unique_ptr<Rowset>(
        new VectorRowset(it->second.metadata.schema, it->second.rows));
  }

  Result<std::vector<TableMetadata>> ListTables() override {
    std::vector<TableMetadata> out;
    for (const auto& [key, sheet] : source_->sheets_) {
      out.push_back(sheet.metadata);
    }
    return out;
  }

 private:
  SheetDataSource* source_;
};

SheetDataSource::SheetDataSource() {
  caps_.provider_name = "Microsoft.Jet.OLEDB (Excel)";
  caps_.source_type = "Spreadsheet";
  caps_.query_language = "none";
  caps_.sql_support = SqlSupportLevel::kNone;
  caps_.supports_schema_rowset = true;
}

Status SheetDataSource::AddSheet(const std::string& name, Schema schema,
                                 std::vector<Row> rows) {
  std::string key = ToLowerCopy(name);
  if (sheets_.count(key) > 0) {
    return Status::AlreadyExists("sheet '" + name + "' already exists");
  }
  Sheet sheet;
  sheet.metadata.name = name;
  sheet.metadata.schema = std::move(schema);
  sheet.metadata.cardinality = static_cast<double>(rows.size());
  sheet.rows = std::move(rows);
  sheets_[key] = std::move(sheet);
  return Status::OK();
}

Result<std::unique_ptr<Session>> SheetDataSource::CreateSession() {
  return std::unique_ptr<Session>(new SheetSession(this));
}

}  // namespace dhqp
