#ifndef DHQP_CONNECTORS_DMV_PROVIDER_H_
#define DHQP_CONNECTORS_DMV_PROVIDER_H_

#include <memory>

#include "src/provider/provider.h"

namespace dhqp {

class Engine;

/// Capabilities of the system-view provider: a "simple provider" in the
/// paper's §3.3 taxonomy — connect and retrieve named rowsets, nothing more.
/// No SQL, no indexes, no histograms: the DHQP supplies all querying
/// (WHERE/ORDER BY/joins) on top of the scan, exactly as it does for CSV or
/// mail stores.
ProviderCapabilities DmvCapabilities();

/// Dynamic-management-view provider: exposes one Engine's internals —
/// query store, operator profiles, link counters, plan cache, metrics
/// registry, trace spans — as scan-only virtual tables. Every Engine
/// registers one of these as the reserved linked server `sys`, so the
/// observability layer is itself a heterogeneous data source: local queries
/// (`sys..dm_link_stats`) and federation-wide ones
/// (`shard1.sys..dm_link_stats`) both flow through the provider model under
/// study.
///
/// Virtual tables:
///   dm_exec_query_stats     per-fingerprint query-store aggregates
///                           (incl. cumulative wait counts/time)
///   dm_exec_operator_stats  flattened operator profiles of the last-N
///                           executions (pre-order ids match EXPLAIN),
///                           with per-operator wait totals and spill
///                           activity (spills / spill_bytes)
///   dm_exec_requests        live in-flight statements (phase, waits, live
///                           memory, memory grant, spills so far)
///   dm_exec_query_memory_grants
///                           workload-governor resource semaphore: every
///                           statement holding or queued for a memory
///                           grant (requested/granted bytes, queue wait,
///                           degraded flag, live used/peak memory)
///   dm_exec_distributed_requests
///                           cross-engine correlation: this engine's
///                           executions ("coordinator" rows) joined by
///                           activity id to the work linked member engines
///                           recorded on their behalf ("member" rows)
///   dm_link_stats           per-link traffic/retry/timeout/fault counters
///   dm_plan_cache           compiled-plan cache entries with hit counts
///   dm_metrics              process-wide metrics registry snapshot
///   dm_os_wait_stats        process-wide wait statistics by wait type
///                           (waiting_tasks_count / wait_time_ns /
///                           max_wait_time_ns; reset via waits::ResetGlobal)
///   dm_trace_spans          tracer span buffer snapshot
///
/// Rowsets are point-in-time snapshots built at OpenRowset; scans are safe
/// concurrently with query execution on the owning engine (each underlying
/// store is internally synchronized).
class DmvDataSource : public DataSource {
 public:
  explicit DmvDataSource(Engine* engine);

  const ProviderCapabilities& capabilities() const override { return caps_; }
  Result<std::unique_ptr<Session>> CreateSession() override;

  Engine* engine() const { return engine_; }

 private:
  Engine* engine_;
  ProviderCapabilities caps_;
};

}  // namespace dhqp

#endif  // DHQP_CONNECTORS_DMV_PROVIDER_H_
