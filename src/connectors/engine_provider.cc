#include "src/connectors/engine_provider.h"

namespace dhqp {

ProviderCapabilities SqlServerCapabilities() {
  ProviderCapabilities caps;
  caps.provider_name = "SQLOLEDB";
  caps.source_type = "Relational";
  caps.query_language = "Microsoft Transact-SQL";
  caps.sql_support = SqlSupportLevel::kSql92Full;
  caps.supports_command = true;
  caps.supports_indexes = true;
  caps.supports_bookmarks = true;
  caps.supports_histograms = true;
  caps.supports_schema_rowset = true;
  caps.supports_transactions = true;
  caps.supports_parameters = true;
  caps.supports_nested_selects = true;
  caps.identifier_quote_open = '[';
  caps.identifier_quote_close = ']';
  caps.date_literal_style = DateLiteralStyle::kIsoQuoted;
  return caps;
}

ProviderCapabilities OracleCapabilities() {
  ProviderCapabilities caps;
  caps.provider_name = "MSDAORA";
  caps.source_type = "Relational";
  caps.query_language = "Oracle SQL";
  caps.sql_support = SqlSupportLevel::kSql92Full;
  caps.supports_command = true;
  caps.supports_indexes = true;
  caps.supports_bookmarks = false;
  caps.supports_histograms = true;
  caps.supports_schema_rowset = true;
  caps.supports_transactions = true;
  caps.supports_parameters = false;
  caps.supports_nested_selects = true;
  caps.identifier_quote_open = '"';
  caps.identifier_quote_close = '"';
  caps.date_literal_style = DateLiteralStyle::kDateKeyword;
  return caps;
}

ProviderCapabilities Db2Capabilities() {
  ProviderCapabilities caps;
  caps.provider_name = "DB2OLEDB";
  caps.source_type = "Relational";
  caps.query_language = "DB2 SQL";
  caps.sql_support = SqlSupportLevel::kSql92Entry;
  caps.supports_command = true;
  caps.supports_indexes = false;
  caps.supports_bookmarks = false;
  caps.supports_histograms = false;
  caps.supports_schema_rowset = true;
  caps.supports_transactions = true;
  caps.supports_parameters = false;
  caps.supports_nested_selects = false;
  caps.identifier_quote_open = '"';
  caps.identifier_quote_close = '"';
  caps.date_literal_style = DateLiteralStyle::kDateKeyword;
  return caps;
}

ProviderCapabilities AccessCapabilities() {
  ProviderCapabilities caps;
  caps.provider_name = "Microsoft.Jet.OLEDB";
  caps.source_type = "Relational (desktop)";
  caps.query_language = "Jet SQL";
  caps.sql_support = SqlSupportLevel::kOdbcCore;
  caps.supports_command = true;
  caps.supports_indexes = false;
  caps.supports_bookmarks = false;
  caps.supports_histograms = false;
  caps.supports_schema_rowset = true;
  caps.supports_transactions = false;
  caps.supports_parameters = false;
  caps.supports_nested_selects = false;
  caps.identifier_quote_open = '[';
  caps.identifier_quote_close = ']';
  caps.date_literal_style = DateLiteralStyle::kHashDelimited;
  return caps;
}

namespace {

class EngineCommand : public Command {
 public:
  explicit EngineCommand(Engine* engine) : engine_(engine) {}

  Status SetText(std::string text) override {
    text_ = std::move(text);
    return Status::OK();
  }

  Status BindParameter(const std::string& name, const Value& value) override {
    params_[name] = value;
    return Status::OK();
  }

  Result<std::unique_ptr<Rowset>> Execute() override {
    DHQP_ASSIGN_OR_RETURN(QueryResult result, engine_->Execute(text_, params_));
    if (result.rowset == nullptr) {
      return std::unique_ptr<Rowset>(new VectorRowset(Schema{}, {}));
    }
    return std::unique_ptr<Rowset>(result.rowset.release());
  }

  Result<int64_t> ExecuteNonQuery() override {
    DHQP_ASSIGN_OR_RETURN(QueryResult result, engine_->Execute(text_, params_));
    return result.rows_affected;
  }

 private:
  Engine* engine_;
  std::string text_;
  std::map<std::string, Value> params_;
};

// Session over a remote engine: rowset/index/metadata calls are answered by
// the engine's storage; commands run its full SQL stack. The capability
// preset gates what the *caller* may use, enforced here for commands and
// index navigation.
class EngineSession : public Session {
 public:
  EngineSession(Engine* engine, const ProviderCapabilities* caps)
      : engine_(engine), caps_(caps) {
    storage_session_ = std::make_unique<StorageSession>(engine_->storage());
  }

  Result<std::unique_ptr<Rowset>> OpenRowset(const std::string& table) override {
    auto rowset = storage_session_->OpenRowset(table);
    if (!rowset.ok() && rowset.status().code() == StatusCode::kNotFound) {
      // Not a storage table: the name may be one of the engine's system
      // views (a host scanning `shard.sys..dm_x` resolves the bare DMV name
      // through this session). User tables shadow DMV names.
      auto sys = engine_->catalog()->SystemSession();
      if (sys.ok()) {
        auto via_sys = (*sys)->OpenRowset(table);
        if (via_sys.ok()) return via_sys;
      }
    }
    return rowset;
  }

  Result<TableMetadata> GetTableMetadata(const std::string& table) override {
    auto meta = storage_session_->GetTableMetadata(table);
    if (meta.ok() || meta.status().code() != StatusCode::kNotFound) {
      if (meta.ok() && !caps_->supports_indexes) meta.value().indexes.clear();
      return meta;
    }
    auto sys = engine_->catalog()->SystemSession();
    if (sys.ok()) {
      auto via_sys = (*sys)->GetTableMetadata(table);
      if (via_sys.ok()) return via_sys;
    }
    return meta;
  }

  Result<std::unique_ptr<Command>> CreateCommand() override {
    if (!caps_->supports_command) {
      return Status::NotSupported("provider is not query-capable");
    }
    return std::unique_ptr<Command>(new EngineCommand(engine_));
  }

  Result<std::vector<TableMetadata>> ListTables() override {
    DHQP_ASSIGN_OR_RETURN(auto tables, storage_session_->ListTables());
    if (!caps_->supports_indexes) {
      for (TableMetadata& t : tables) t.indexes.clear();
    }
    return std::move(tables);
  }

  Result<ColumnStatistics> GetStatistics(const std::string& table,
                                         const std::string& column) override {
    if (!caps_->supports_histograms) {
      return Status::NotSupported("provider does not expose statistics");
    }
    return storage_session_->GetStatistics(table, column);
  }

  Result<std::unique_ptr<Rowset>> OpenIndexRange(const std::string& table,
                                                 const std::string& index,
                                                 const IndexRange& range) override {
    if (!caps_->supports_indexes) {
      return Status::NotSupported("provider does not support indexes");
    }
    return storage_session_->OpenIndexRange(table, index, range);
  }

  Result<std::unique_ptr<Rowset>> OpenIndexKeys(const std::string& table,
                                                const std::string& index,
                                                const IndexRange& range) override {
    if (!caps_->supports_indexes || !caps_->supports_bookmarks) {
      return Status::NotSupported("provider does not support bookmarks");
    }
    return storage_session_->OpenIndexKeys(table, index, range);
  }

  Result<std::optional<Row>> FetchByBookmark(const std::string& table,
                                             const Value& bookmark) override {
    if (!caps_->supports_bookmarks) {
      return Status::NotSupported("provider does not support bookmarks");
    }
    return storage_session_->FetchByBookmark(table, bookmark);
  }

  Result<int64_t> InsertRows(const std::string& table,
                             const std::vector<Row>& rows) override {
    return storage_session_->InsertRows(table, rows);
  }

  Status BeginTransaction(int64_t txn_id) override {
    if (!caps_->supports_transactions) {
      return Status::NotSupported("provider is not transactional");
    }
    return storage_session_->BeginTransaction(txn_id);
  }
  Status PrepareTransaction(int64_t txn_id) override {
    return storage_session_->PrepareTransaction(txn_id);
  }
  Status CommitTransaction(int64_t txn_id) override {
    return storage_session_->CommitTransaction(txn_id);
  }
  Status AbortTransaction(int64_t txn_id) override {
    return storage_session_->AbortTransaction(txn_id);
  }

 private:
  Engine* engine_;
  const ProviderCapabilities* caps_;
  std::unique_ptr<StorageSession> storage_session_;
};

}  // namespace

Result<std::unique_ptr<Session>> EngineDataSource::CreateSession() {
  return std::unique_ptr<Session>(new EngineSession(engine_, &caps_));
}

}  // namespace dhqp
