#ifndef DHQP_CONNECTORS_MAIL_PROVIDER_H_
#define DHQP_CONNECTORS_MAIL_PROVIDER_H_

#include <string>
#include <vector>

#include "src/provider/provider.h"

namespace dhqp {

/// One message in a simulated mailbox file (the .mmf of §2.4).
struct MailMessage {
  int64_t msg_id = 0;
  std::string from;
  std::string to;
  std::string subject;
  std::string body;
  int64_t date_days = 0;      ///< Received date, days since epoch.
  int64_t in_reply_to = -1;   ///< msg_id this replies to, -1 = none.
};

/// Provider over a mailbox store — the paper's MakeTable(Mail, ...) source
/// (§2.4): each message becomes a row of table "inbox" with columns
/// (MsgId, FromAddr, ToAddr, Subject, Body, MsgDate, InReplyTo). A simple
/// provider: scans and schema only; the DHQP supplies all query capability.
class MailDataSource : public DataSource {
 public:
  explicit MailDataSource(std::vector<MailMessage> messages);

  const ProviderCapabilities& capabilities() const override { return caps_; }
  Result<std::unique_ptr<Session>> CreateSession() override;

  static Schema MailSchema();

 private:
  friend class MailSession;
  std::vector<MailMessage> messages_;
  ProviderCapabilities caps_;
};

}  // namespace dhqp

#endif  // DHQP_CONNECTORS_MAIL_PROVIDER_H_
