#ifndef DHQP_CONNECTORS_LINKED_PROVIDER_H_
#define DHQP_CONNECTORS_LINKED_PROVIDER_H_

#include <memory>

#include "src/net/network.h"
#include "src/provider/provider.h"

namespace dhqp {

/// Decorator placing a provider "across the network": every session call is
/// charged to a net::Link (round trips, rows, bytes), and result rowsets are
/// wrapped so streamed rows are charged in batches. Wrap any DataSource with
/// this to make it a linked server with measurable traffic.
class LinkedDataSource : public DataSource {
 public:
  /// `link` must outlive this object; `inner` is shared with the caller
  /// (e.g. the same engine provider can be linked from several hosts).
  LinkedDataSource(std::shared_ptr<DataSource> inner, net::Link* link)
      : inner_(std::move(inner)), link_(link) {}

  Status Initialize(
      const std::map<std::string, std::string>& properties) override {
    // Connection handshake (fallible: a down link refuses new connections).
    DHQP_RETURN_NOT_OK(link_->SendMessage(64));
    return inner_->Initialize(properties);
  }

  const ProviderCapabilities& capabilities() const override {
    return inner_->capabilities();
  }

  Result<std::unique_ptr<Session>> CreateSession() override;

  net::Link* link() const { return link_; }
  /// The wrapped provider — lets diagnostics (e.g. the distributed-request
  /// DMV) reach through the link decorator to the member engine behind it.
  DataSource* inner() const { return inner_.get(); }

 private:
  std::shared_ptr<DataSource> inner_;
  net::Link* link_;
};

}  // namespace dhqp

#endif  // DHQP_CONNECTORS_LINKED_PROVIDER_H_
