#include "src/connectors/dmv_provider.h"

#include <map>
#include <set>
#include <utility>

#include "src/catalog/catalog.h"
#include "src/common/activity.h"
#include "src/common/fastclock.h"
#include "src/common/metrics.h"
#include "src/common/trace.h"
#include "src/common/waits.h"
#include "src/connectors/engine_provider.h"
#include "src/connectors/linked_provider.h"
#include "src/core/engine.h"
#include "src/core/governor.h"
#include "src/executor/profile.h"
#include "src/sysview/query_store.h"
#include "src/sysview/requests.h"

namespace dhqp {

namespace {

Value I(int64_t v) { return Value::Int64(v); }
Value S(std::string v) { return Value::String(std::move(v)); }
Value D(double v) { return Value::Double(v); }

ColumnDef IntCol(const char* name) {
  return ColumnDef{name, DataType::kInt64, false};
}
ColumnDef StrCol(const char* name) {
  return ColumnDef{name, DataType::kString, false};
}
ColumnDef DblCol(const char* name) {
  return ColumnDef{name, DataType::kDouble, false};
}

Schema QueryStatsSchema() {
  return Schema({StrCol("fingerprint"), StrCol("statement_type"),
                 StrCol("sample_statement"), IntCol("executions"),
                 IntCol("failures"), IntCol("cache_hits"),
                 IntCol("cache_misses"), IntCol("total_duration_ns"),
                 IntCol("min_duration_ns"), IntCol("max_duration_ns"),
                 IntCol("rows"), IntCol("retries"), IntCol("timeouts"),
                 IntCol("faults"), IntCol("warnings"), IntCol("wait_count"),
                 IntCol("total_wait_ns"), IntCol("last_execution_id")});
}

Schema OperatorStatsSchema() {
  return Schema({IntCol("query_id"), IntCol("op_id"), IntCol("parent_op_id"),
                 StrCol("operator"), StrCol("link"), DblCol("est_rows"),
                 IntCol("act_rows"), IntCol("opens"), IntCol("restarts"),
                 IntCol("batches"), IntCol("exec_batches"),
                 IntCol("total_ns"),
                 IntCol("link_messages"), IntCol("wire_rows"),
                 IntCol("link_bytes"), IntCol("retries"), IntCol("timeouts"),
                 IntCol("faults"), IntCol("waits"), IntCol("wait_ns"),
                 IntCol("memory_bytes"), IntCol("spills"),
                 IntCol("spill_bytes")});
}

Schema RequestsSchema() {
  return Schema({IntCol("request_id"), StrCol("engine"), StrCol("activity_id"),
                 StrCol("statement"), StrCol("phase"), IntCol("elapsed_ns"),
                 IntCol("dop"), IntCol("rows_processed"), IntCol("batches"),
                 IntCol("wait_count"), IntCol("wait_ns"),
                 StrCol("top_wait_type"), IntCol("memory_bytes"),
                 IntCol("percent_complete"),
                 IntCol("requested_memory_bytes"),
                 IntCol("granted_memory_bytes"), IntCol("spills")});
}

Schema MemoryGrantsSchema() {
  return Schema({IntCol("grant_id"), StrCol("engine"), StrCol("activity_id"),
                 StrCol("statement"), IntCol("dop"), IntCol("is_queued"),
                 IntCol("requested_bytes"), IntCol("granted_bytes"),
                 IntCol("wait_ns"), IntCol("degraded"), IntCol("used_bytes"),
                 IntCol("peak_bytes")});
}

Schema WaitStatsSchema() {
  return Schema({StrCol("wait_type"), IntCol("waiting_tasks_count"),
                 IntCol("wait_time_ns"), IntCol("max_wait_time_ns")});
}

Schema DistributedRequestsSchema() {
  return Schema({StrCol("activity_id"), StrCol("server"), StrCol("role"),
                 IntCol("execution_id"), StrCol("statement_type"),
                 StrCol("statement"), IntCol("duration_ns"), IntCol("ok"),
                 IntCol("rows"), IntCol("wait_ns"), StrCol("top_wait_type")});
}

Schema LinkStatsSchema() {
  return Schema({StrCol("server"), StrCol("link"), IntCol("messages"),
                 IntCol("wire_rows"), IntCol("bytes"), IntCol("retries"),
                 IntCol("timeouts"), IntCol("faults")});
}

Schema PlanCacheSchema() {
  return Schema({StrCol("statement"), IntCol("schema_version"),
                 IntCol("hits"), DblCol("est_cost"), IntCol("valid")});
}

Schema MetricsSchema() {
  return Schema({StrCol("kind"), StrCol("name"), IntCol("value"),
                 IntCol("count"), IntCol("sum"), IntCol("min"),
                 IntCol("max")});
}

Schema TraceSpansSchema() {
  return Schema({StrCol("engine"), StrCol("activity_id"), StrCol("name"),
                 StrCol("detail"), IntCol("start_ns"), IntCol("dur_ns"),
                 IntCol("tid"), IntCol("depth")});
}

std::vector<Row> FillQueryStats(Engine* engine) {
  std::vector<Row> rows;
  for (const sysview::FingerprintStats& f :
       engine->query_store()->AggregateSnapshot()) {
    rows.push_back(Row{S(sysview::FingerprintToString(f.fingerprint)),
                S(f.statement_type),
                S(f.sample_statement),
                I(f.executions),
                I(f.failures),
                I(f.cache_hits),
                I(f.cache_misses),
                I(f.total_duration_ns),
                I(f.min_duration_ns),
                I(f.max_duration_ns),
                I(f.rows),
                I(f.retries),
                I(f.timeouts),
                I(f.faults),
                I(f.warnings),
                I(f.wait_count),
                I(f.total_wait_ns),
                I(f.last_execution_id)});
  }
  return rows;
}

std::vector<Row> FillOperatorStats(Engine* engine) {
  std::vector<Row> rows;
  for (const sysview::ExecutionRecord& rec :
       engine->query_store()->Snapshot()) {
    if (rec.profile == nullptr) continue;
    // Profiles in the store are quiescent (the executor joined its threads
    // before the record was appended), so relaxed loads read final values.
    for (const FlatOperator& f : FlattenOperatorProfile(*rec.profile)) {
      const OperatorProfile& op = *f.op;
      rows.push_back(Row{I(rec.execution_id),
                  I(op.id),
                  I(f.parent_id),
                  S(op.name),
                  S(op.link),
                  D(op.estimated_rows),
                  I(op.rows_out.load(std::memory_order_relaxed)),
                  I(op.opens.load(std::memory_order_relaxed)),
                  I(op.restarts.load(std::memory_order_relaxed)),
                  I(op.batches.load(std::memory_order_relaxed)),
                  I(op.exec_batches.load(std::memory_order_relaxed)),
                  I(op.total_ns()),
                  I(op.link_charges.messages.load(std::memory_order_relaxed)),
                  I(op.link_charges.rows.load(std::memory_order_relaxed)),
                  I(op.link_charges.bytes.load(std::memory_order_relaxed)),
                  I(op.link_charges.retries.load(std::memory_order_relaxed)),
                  I(op.link_charges.timeouts.load(std::memory_order_relaxed)),
                  I(op.link_charges.faults.load(std::memory_order_relaxed)),
                  I(op.wait_tally.total_count()),
                  I(op.wait_tally.total_ns()),
                  I(op.mem.peak()),
                  I(op.spills.load(std::memory_order_relaxed)),
                  I(op.spill_bytes.load(std::memory_order_relaxed))});
    }
  }
  return rows;
}

std::vector<Row> FillLinkStats(Engine* engine) {
  std::vector<Row> rows;
  Catalog* catalog = engine->catalog();
  for (const std::string& server : catalog->LinkedServerNames()) {
    auto source = catalog->GetLinkedServer(server);
    if (!source.ok()) continue;
    auto* linked = dynamic_cast<LinkedDataSource*>(*source);
    if (linked == nullptr) continue;  // In-process source: no link.
    net::LinkStats s = linked->link()->stats();
    rows.push_back(Row{S(server),     S(linked->link()->name()),
                I(s.messages), I(s.rows),
                I(s.bytes),    I(s.retries),
                I(s.timeouts), I(s.faults)});
  }
  return rows;
}

std::vector<Row> FillPlanCache(Engine* engine) {
  std::vector<Row> rows;
  for (const Engine::PlanCacheEntry& e : engine->PlanCacheSnapshot()) {
    rows.push_back(Row{S(e.statement), I(static_cast<int64_t>(e.schema_version)),
                I(e.hits), D(e.est_cost), I(e.valid ? 1 : 0)});
  }
  return rows;
}

std::vector<Row> FillMetrics() {
  std::vector<Row> rows;
  for (const metrics::Sample& s : metrics::Registry::Global().Samples()) {
    rows.push_back(Row{S(s.kind), S(s.name), I(s.value), I(s.count),
                I(s.sum),  I(s.min),  I(s.max)});
  }
  return rows;
}

std::vector<Row> FillTraceSpans() {
  std::vector<Row> rows;
  for (const trace::SpanRecord& s : trace::Tracer::Global().Snapshot()) {
    rows.push_back(Row{S(s.engine),
                S(s.activity),
                S(s.name),
                S(s.detail),
                I(s.start_ns),
                I(s.dur_ns),
                I(static_cast<int64_t>(s.tid)),
                I(static_cast<int64_t>(s.depth))});
  }
  return rows;
}

/// Total spill files written so far across an operator tree.
int64_t SpillsOf(const OperatorProfile& p) {
  int64_t n = p.spills.load(std::memory_order_relaxed);
  for (const auto& child : p.children) n += SpillsOf(*child);
  return n;
}

/// Live in-flight statements (the sys.dm_exec_requests analog). Snapshots
/// the process-wide registry and filters to this engine's requests,
/// skipping self-excluded (sys-touching) statements and — belt on top of
/// that suspender — anything running under the scanning thread's own
/// activity id, so a DMV scan never lists itself even mid-registration.
/// A request completing mid-snapshot is fine: the shared_ptr keeps its
/// final counters readable.
std::vector<Row> FillRequests(Engine* engine) {
  std::vector<Row> rows;
  const std::string self_activity = activity::Current();
  const int64_t now_ns = fastclock::NowNs();
  for (const std::shared_ptr<sysview::RequestState>& req :
       sysview::RequestRegistry::Global().Snapshot()) {
    if (req->exclude.load(std::memory_order_relaxed)) continue;
    if (!self_activity.empty() && req->activity_id == self_activity) continue;
    if (req->engine != engine->name()) continue;
    int64_t rows_processed = 0;
    int64_t batches = 0;
    int64_t spills = 0;
    int percent = 0;
    if (std::shared_ptr<const OperatorProfile> profile = req->profile()) {
      rows_processed = sysview::RowsProcessed(*profile);
      batches = sysview::BatchesProcessed(*profile);
      spills = SpillsOf(*profile);
      percent = sysview::PercentComplete(*profile);
    }
    const waits::WaitTotals wait_totals = waits::Snapshot(req->waits);
    rows.push_back(Row{I(req->request_id),
                S(req->engine),
                S(req->activity_id),
                S(req->statement),
                S(sysview::PhaseName(req->Phase())),
                I(now_ns - req->start_ns),
                I(req->dop),
                I(rows_processed),
                I(batches),
                I(wait_totals.total_count()),
                I(wait_totals.total_ns()),
                S(wait_totals.TopType()),
                I(req->memory.current()),
                I(percent),
                I(req->requested_grant_bytes.load(std::memory_order_relaxed)),
                I(req->granted_bytes.load(std::memory_order_relaxed)),
                I(spills)});
  }
  return rows;
}

/// Point-in-time memory grants (the sys.dm_exec_query_memory_grants
/// analog): every statement of this engine currently holding a grant or
/// queued in the resource semaphore, with live used/peak memory joined in
/// from the request registry by activity id. The scanning statement itself
/// is excluded (sys scans bypass admission and carry no grant anyway).
std::vector<Row> FillMemoryGrants(Engine* engine) {
  std::vector<Row> rows;
  const std::string self_activity = activity::Current();
  std::map<std::string, std::shared_ptr<sysview::RequestState>> reqs;
  for (const std::shared_ptr<sysview::RequestState>& req :
       sysview::RequestRegistry::Global().Snapshot()) {
    reqs.emplace(req->activity_id, req);
  }
  for (const governor::GrantRow& g : governor::Governor::Global().Snapshot()) {
    if (g.engine != engine->name()) continue;
    if (!self_activity.empty() && g.activity_id == self_activity) continue;
    int64_t used = 0;
    int64_t peak = 0;
    auto it = reqs.find(g.activity_id);
    if (it != reqs.end()) {
      used = it->second->memory.current();
      peak = it->second->memory.peak();
    }
    rows.push_back(Row{I(g.grant_id),
                S(g.engine),
                S(g.activity_id),
                S(g.statement),
                I(g.dop),
                I(g.is_queued ? 1 : 0),
                I(g.requested_bytes),
                I(g.granted_bytes),
                I(g.wait_ns),
                I(g.degraded ? 1 : 0),
                I(used),
                I(peak)});
  }
  return rows;
}

std::vector<Row> FillWaitStats() {
  std::vector<Row> rows;
  for (const waits::WaitStatRow& w : waits::GlobalSnapshot()) {
    rows.push_back(Row{S(w.wait_type), I(w.waiting_tasks_count),
                I(w.wait_time_ns), I(w.max_wait_time_ns)});
  }
  return rows;
}

Row DistributedRequestRow(const sysview::ExecutionRecord& rec,
                          const std::string& server, const char* role) {
  return Row{S(rec.activity_id),
             S(server),
             S(role),
             I(rec.execution_id),
             S(rec.statement_type),
             S(rec.statement),
             I(rec.duration_ns),
             I(rec.ok ? 1 : 0),
             I(rec.rows),
             I(rec.waits.total_ns()),
             S(rec.waits.TopType())};
}

/// The member Engine behind a linked-server source, if there is one:
/// either a bare in-process EngineDataSource or one wrapped by the
/// LinkedDataSource network decorator. Null for foreign providers.
Engine* MemberEngine(DataSource* source) {
  if (auto* linked = dynamic_cast<LinkedDataSource*>(source)) {
    source = linked->inner();
  }
  if (auto* es = dynamic_cast<EngineDataSource*>(source)) {
    return es->engine();
  }
  return nullptr;
}

/// Cross-engine correlation view: one "coordinator" row per execution this
/// engine recorded, plus one "member" row for every execution a linked
/// engine's query store recorded under the same activity id (i.e. work it
/// performed on this engine's behalf). Join key: activity_id.
std::vector<Row> FillDistributedRequests(Engine* engine) {
  std::vector<Row> rows;
  std::set<std::string> activities;
  for (const sysview::ExecutionRecord& rec :
       engine->query_store()->Snapshot()) {
    if (rec.activity_id.empty()) continue;
    activities.insert(rec.activity_id);
    rows.push_back(DistributedRequestRow(rec, "(local)", "coordinator"));
  }
  Catalog* catalog = engine->catalog();
  for (const std::string& server : catalog->LinkedServerNames()) {
    if (server == kSysServerName) continue;  // The DMV source itself.
    auto source = catalog->GetLinkedServer(server);
    if (!source.ok()) continue;
    Engine* member = MemberEngine(*source);
    if (member == nullptr || member == engine) continue;
    for (const sysview::ExecutionRecord& rec :
         member->query_store()->Snapshot()) {
      if (activities.count(rec.activity_id) == 0) continue;
      rows.push_back(DistributedRequestRow(rec, server, "member"));
    }
  }
  return rows;
}

struct DmvTableDef {
  const char* name;
  Schema (*schema)();
};

constexpr int kNumTables = 10;
const DmvTableDef kTables[kNumTables] = {
    {"dm_exec_query_stats", QueryStatsSchema},
    {"dm_exec_operator_stats", OperatorStatsSchema},
    {"dm_exec_requests", RequestsSchema},
    {"dm_exec_query_memory_grants", MemoryGrantsSchema},
    {"dm_exec_distributed_requests", DistributedRequestsSchema},
    {"dm_link_stats", LinkStatsSchema},
    {"dm_plan_cache", PlanCacheSchema},
    {"dm_metrics", MetricsSchema},
    {"dm_os_wait_stats", WaitStatsSchema},
    {"dm_trace_spans", TraceSpansSchema},
};

/// Session over the DMVs. Stateless (every OpenRowset snapshots afresh), so
/// one cached catalog session serves concurrent scans.
class DmvSession : public Session {
 public:
  explicit DmvSession(Engine* engine) : engine_(engine) {}

  Result<std::unique_ptr<Rowset>> OpenRowset(
      const std::string& table) override {
    for (const DmvTableDef& def : kTables) {
      if (!EqualsIgnoreCase(table, def.name)) continue;
      return std::unique_ptr<Rowset>(
          new VectorRowset(def.schema(), FillTable(def.name)));
    }
    return Status::NotFound("system view '" + table + "' not found");
  }

  Result<std::vector<TableMetadata>> ListTables() override {
    std::vector<TableMetadata> out;
    out.reserve(kNumTables);
    for (const DmvTableDef& def : kTables) {
      TableMetadata meta;
      meta.name = def.name;
      meta.schema = def.schema();
      // Snapshot tables have no stable cardinality; a small constant keeps
      // the optimizer's costing sane without claiming precision.
      meta.cardinality = 64;
      out.push_back(std::move(meta));
    }
    return out;
  }

 private:
  std::vector<Row> FillTable(const std::string& name) {
    if (name == "dm_exec_query_stats") return FillQueryStats(engine_);
    if (name == "dm_exec_operator_stats") return FillOperatorStats(engine_);
    if (name == "dm_exec_requests") return FillRequests(engine_);
    if (name == "dm_exec_query_memory_grants") {
      return FillMemoryGrants(engine_);
    }
    if (name == "dm_exec_distributed_requests") {
      return FillDistributedRequests(engine_);
    }
    if (name == "dm_link_stats") return FillLinkStats(engine_);
    if (name == "dm_plan_cache") return FillPlanCache(engine_);
    if (name == "dm_metrics") return FillMetrics();
    if (name == "dm_os_wait_stats") return FillWaitStats();
    return FillTraceSpans();
  }

  Engine* engine_;
};

}  // namespace

ProviderCapabilities DmvCapabilities() {
  ProviderCapabilities caps;
  caps.provider_name = "DHQP-DMV";
  caps.source_type = "System views";
  caps.query_language = "none";
  caps.sql_support = SqlSupportLevel::kNone;
  caps.supports_command = false;
  caps.supports_schema_rowset = true;
  return caps;
}

DmvDataSource::DmvDataSource(Engine* engine)
    : engine_(engine), caps_(DmvCapabilities()) {}

Result<std::unique_ptr<Session>> DmvDataSource::CreateSession() {
  return std::unique_ptr<Session>(new DmvSession(engine_));
}

}  // namespace dhqp
