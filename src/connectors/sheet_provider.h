#ifndef DHQP_CONNECTORS_SHEET_PROVIDER_H_
#define DHQP_CONNECTORS_SHEET_PROVIDER_H_

#include <map>
#include <string>
#include <vector>

#include "src/provider/provider.h"

namespace dhqp {

/// Spreadsheet ("Excel") provider: named sheets exposed as tables — one of
/// the paper's motivating personal-productivity sources (§1, §2.1). A simple
/// provider; sheets are registered programmatically with explicit schemas.
class SheetDataSource : public DataSource {
 public:
  SheetDataSource();

  /// Registers a sheet as a table.
  Status AddSheet(const std::string& name, Schema schema,
                  std::vector<Row> rows);

  const ProviderCapabilities& capabilities() const override { return caps_; }
  Result<std::unique_ptr<Session>> CreateSession() override;

 private:
  friend class SheetSession;
  struct Sheet {
    TableMetadata metadata;
    std::vector<Row> rows;
  };
  std::map<std::string, Sheet> sheets_;
  ProviderCapabilities caps_;
};

}  // namespace dhqp

#endif  // DHQP_CONNECTORS_SHEET_PROVIDER_H_
