#ifndef DHQP_CONNECTORS_ENGINE_PROVIDER_H_
#define DHQP_CONNECTORS_ENGINE_PROVIDER_H_

#include <memory>

#include "src/core/engine.h"
#include "src/provider/provider.h"

namespace dhqp {

/// @name Capability presets for common remote systems: what SQL the DHQP may
/// generate for them and how their dialect spells things (Table 1, §3.3,
/// §4.1.3). The backing store is always a dhqp::Engine; the preset controls
/// how much of it the DHQP is allowed to use.
///@{
ProviderCapabilities SqlServerCapabilities();   ///< SQL-92 Full, params, stats.
ProviderCapabilities OracleCapabilities();      ///< SQL-92 Full, DATE 'x' literals.
ProviderCapabilities Db2Capabilities();         ///< SQL-92 Entry.
ProviderCapabilities AccessCapabilities();      ///< ODBC Core, #date# literals,
                                                ///< no histograms.
///@}

/// Provider exposing a full dhqp::Engine as a linked server — the "OLE DB
/// Provider for SQL Server" of Fig 1 (or, with a clamped capability preset,
/// an Oracle/DB2/Access stand-in). Query-capable (ICommand), with schema
/// rowsets, histograms, index navigation, bookmarks and 2PC enlistment as
/// the preset allows.
class EngineDataSource : public DataSource {
 public:
  EngineDataSource(Engine* engine, ProviderCapabilities caps)
      : engine_(engine), caps_(std::move(caps)) {}

  /// Convenience: full SQL Server preset.
  explicit EngineDataSource(Engine* engine)
      : EngineDataSource(engine, SqlServerCapabilities()) {}

  const ProviderCapabilities& capabilities() const override { return caps_; }
  Result<std::unique_ptr<Session>> CreateSession() override;

  Engine* engine() const { return engine_; }

 private:
  Engine* engine_;
  ProviderCapabilities caps_;
};

}  // namespace dhqp

#endif  // DHQP_CONNECTORS_ENGINE_PROVIDER_H_
