// The paper's §2.4 salesman scenario: "find all email messages he has
// received from Seattle customers, including their addresses, within the
// last two days to which he has not yet replied" — a heterogeneous query
// joining a mailbox provider with an Access-style customer table.

#include <cstdio>

#include "src/connectors/engine_provider.h"
#include "src/connectors/mail_provider.h"
#include "src/core/engine.h"
#include "src/workloads/documents.h"

using namespace dhqp;  // NOLINT — example brevity.

int main() {
  Engine host;
  int64_t today = DefaultCurrentDate();

  // The mailbox file d:\mail\smith.mmf, exposed by the mail provider.
  auto mailbox = workloads::GenerateMailbox(/*num_messages=*/40, today,
                                            /*days=*/10, /*seed=*/3);
  (void)host.AddLinkedServer(
      "mailsrv", std::make_shared<MailDataSource>(std::move(mailbox)));

  // The Access database d:\access\Enterprise.mdb with the Customers table.
  Engine access_db;
  (void)access_db.Execute(
      "CREATE TABLE Customers (Emailaddr VARCHAR(40), City VARCHAR(20), "
      "Address VARCHAR(60))");
  (void)access_db.Execute(
      "INSERT INTO Customers VALUES "
      "('ann@contoso.com','Seattle','1 Pine St'),"
      "('li@fabrikam.com','Seattle','9 Oak Ave'),"
      "('omar@northwind.com','Portland','4 Elm Rd'),"
      "('kate@adventure.com','Seattle','77 Cedar Blvd'),"
      "('raj@tailspin.com','Spokane','5 Birch Ln'),"
      "('sue@wingtip.com','Seattle','12 Fir Way')");
  (void)host.AddLinkedServer(
      "accesssrv",
      std::make_shared<EngineDataSource>(&access_db, AccessCapabilities()));

  // The paper's query, in this engine's T-SQL dialect (MakeTable(...) is
  // expressed as linked-server four-part names).
  const char* query =
      "SELECT m1.MsgId, m1.FromAddr, m1.Subject, c.Address "
      "FROM mailsrv.mmf.dbo.inbox m1, accesssrv.mdb.dbo.Customers c "
      "WHERE m1.MsgDate >= DATE(TODAY(), -2) "
      "AND m1.FromAddr = c.Emailaddr AND c.City = 'Seattle' "
      "AND NOT EXISTS (SELECT * FROM mailsrv.mmf.dbo.inbox m2 "
      "WHERE m1.MsgId = m2.InReplyTo) "
      "ORDER BY m1.MsgId";

  std::printf("query:\n%s\n\n", query);
  auto result = host.Execute(query);
  if (!result.ok()) {
    std::printf("FAILED: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("unanswered recent mail from Seattle customers (%zu):\n",
              result->rowset->rows().size());
  for (const Row& row : result->rowset->rows()) {
    std::printf("  msg %s from %-22s %-16s -> %s\n", row[0].ToString().c_str(),
                row[1].ToString().c_str(), row[2].ToString().c_str(),
                row[3].ToString().c_str());
  }
  std::printf("\nplan:\n%s", result->plan->ToString().c_str());
  return 0;
}
