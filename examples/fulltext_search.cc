// Full-text search over a simulated file system (§2.2) and over relational
// text (§2.3): IFilter-based document indexing, CONTAINS queries with
// ranking, and the relational join-back plan.

#include <cstdio>

#include "src/core/engine.h"
#include "src/workloads/documents.h"

using namespace dhqp;  // NOLINT — example brevity.

int main() {
  // ---- Part 1: the paper's §2.2 scenario — a catalog over documents. ----
  fulltext::FullTextService search_service;
  (void)search_service.CreateCatalog("DQLiterature", "SCOPE()", "Path",
                                     "contents");
  workloads::CorpusOptions corpus_options;
  corpus_options.num_documents = 2000;
  auto docs = workloads::GenerateCorpus(corpus_options);
  int skipped = 0;
  (void)search_service.IndexDocuments("DQLiterature", docs, &skipped);
  std::printf("indexed %zu documents (%d skipped: no IFilter installed)\n",
              docs.size() - static_cast<size_t>(skipped), skipped);

  const char* ft_query = "\"parallel database\" OR \"heterogeneous query\"";
  auto matches = search_service.QueryCatalog("DQLiterature", ft_query);
  if (!matches.ok()) return 1;
  std::printf("\nCONTAINS(%s): %zu matches; top 5 by rank:\n", ft_query,
              matches->size());
  for (size_t i = 0; i < matches->size() && i < 5; ++i) {
    std::printf("  %.3f  %s\n", (*matches)[i].second,
                (*matches)[i].first.ToString().c_str());
  }

  // ---- Part 2: §2.3 — full-text over a relational table. ----
  Engine engine;
  (void)engine.Execute(
      "CREATE TABLE papers (id INT PRIMARY KEY, title VARCHAR(80), "
      "abstract TEXT)");
  int id = 1;
  for (const auto& doc : docs) {
    auto text = search_service.filters().Extract(doc);
    if (!text.ok()) continue;
    std::string safe = text->substr(0, 300);
    for (char& c : safe) {
      if (c == '\'') c = ' ';
    }
    (void)engine.Execute("INSERT INTO papers VALUES (" + std::to_string(id++) +
                         ", 'doc', '" + safe + "')");
    if (id > 500) break;
  }
  if (!engine.CreateFullTextIndex("ft_papers", "papers", "id", "abstract")
           .ok()) {
    return 1;
  }
  auto result = engine.Execute(
      "SELECT TOP 5 id FROM papers WHERE "
      "CONTAINS(abstract, '\"parallel database\"') ORDER BY id");
  if (!result.ok()) {
    std::printf("query failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("\nSQL CONTAINS over %d rows found (top 5):", id - 1);
  for (const Row& row : result->rowset->rows()) {
    std::printf(" %s", row[0].ToString().c_str());
  }
  std::printf("\nplan:\n%s", result->plan->ToString().c_str());
  return 0;
}
