// Quickstart: create an engine, load data, attach a linked server, and run
// local + distributed queries through the public API.

#include <cstdio>

#include "src/connectors/engine_provider.h"
#include "src/connectors/linked_provider.h"
#include "src/core/engine.h"

using namespace dhqp;  // NOLINT — example brevity.

namespace {

void PrintResult(const QueryResult& result) {
  const Schema& schema = result.rowset->schema();
  for (size_t i = 0; i < schema.num_columns(); ++i) {
    std::printf("%s%s", i ? " | " : "", schema.column(i).name.c_str());
  }
  std::printf("\n");
  for (const Row& row : result.rowset->rows()) {
    for (size_t i = 0; i < row.size(); ++i) {
      std::printf("%s%s", i ? " | " : "", row[i].ToString().c_str());
    }
    std::printf("\n");
  }
}

#define CHECK_OK(expr)                                         \
  do {                                                         \
    const auto& _r = (expr);                                   \
    if (!_r.ok()) {                                            \
      std::printf("FAILED: %s\n", _r.status().ToString().c_str()); \
      return 1;                                                \
    }                                                          \
  } while (0)

}  // namespace

int main() {
  // 1. A local engine with a table.
  Engine engine;
  CHECK_OK(engine.Execute(
      "CREATE TABLE products (id INT PRIMARY KEY, name VARCHAR(30), "
      "price FLOAT, category VARCHAR(20))"));
  CHECK_OK(engine.Execute(
      "INSERT INTO products VALUES "
      "(1, 'widget', 9.99, 'tools'), (2, 'gadget', 19.99, 'tools'), "
      "(3, 'gizmo', 4.99, 'toys'), (4, 'doohickey', 14.99, 'toys')"));

  std::printf("== local query ==\n");
  auto local = engine.Execute(
      "SELECT category, COUNT(*) AS n, AVG(price) AS avg_price "
      "FROM products GROUP BY category ORDER BY category");
  CHECK_OK(local);
  PrintResult(*local);

  // 2. A second engine acts as a remote server; attach it as the linked
  //    server "branch" through a traffic-counting network link.
  Engine branch_engine;
  CHECK_OK(branch_engine.Execute(
      "CREATE TABLE sales (product_id INT, qty INT, sold DATE)"));
  CHECK_OK(branch_engine.Execute(
      "INSERT INTO sales VALUES (1, 3, '2004-11-01'), (1, 2, '2004-11-02'), "
      "(3, 7, '2004-11-02'), (2, 1, '2004-11-03'), (4, 4, '2004-11-05')"));

  net::Link link("branch");
  auto provider = std::make_shared<LinkedDataSource>(
      std::make_shared<EngineDataSource>(&branch_engine), &link);
  if (!engine.AddLinkedServer("branch", provider).ok()) return 1;

  // 3. A distributed join through a four-part name (§2.1). The optimizer
  //    pushes what it can to the remote side.
  std::printf("\n== distributed join ==\n");
  auto distributed = engine.Execute(
      "SELECT p.name, SUM(s.qty) AS sold "
      "FROM products p JOIN branch.shop.dbo.sales s ON p.id = s.product_id "
      "WHERE s.sold >= '2004-11-02' "
      "GROUP BY p.name ORDER BY p.name");
  CHECK_OK(distributed);
  PrintResult(*distributed);

  std::printf("\n== chosen plan ==\n%s",
              distributed->plan->ToString().c_str());
  std::printf("network: %lld messages, %lld rows, %lld bytes\n",
              static_cast<long long>(link.stats().messages),
              static_cast<long long>(link.stats().rows),
              static_cast<long long>(link.stats().bytes));
  return 0;
}
