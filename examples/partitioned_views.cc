// Distributed partitioned views (§4.1.5): TPC-H lineitem partitioned by
// commit-date year across member servers, with static pruning, startup
// filters for parameterized queries, and INSERT routing.

#include <cstdio>

#include "src/connectors/engine_provider.h"
#include "src/connectors/linked_provider.h"
#include "src/core/engine.h"
#include "src/workloads/tpch.h"

using namespace dhqp;  // NOLINT — example brevity.

int main() {
  Engine host;
  std::vector<std::unique_ptr<Engine>> members;
  std::vector<std::unique_ptr<net::Link>> links;

  workloads::TpchOptions options;
  options.scale_factor = 0.005;
  std::string view_sql = "CREATE VIEW lineitem AS ";
  for (int year = 1992; year <= 1995; ++year) {
    auto member = std::make_unique<Engine>();
    std::string table = "lineitem_" + std::to_string(year);
    if (!workloads::PopulateLineitemPartition(member.get(), options, table,
                                              year, year)
             .ok()) {
      return 1;
    }
    std::string server = "srv" + std::to_string(year);
    auto link = std::make_unique<net::Link>(server);
    (void)host.AddLinkedServer(
        server, std::make_shared<LinkedDataSource>(
                    std::make_shared<EngineDataSource>(member.get()),
                    link.get()));
    if (year > 1992) view_sql += " UNION ALL ";
    view_sql += "SELECT * FROM " + server + ".tpch.dbo." + table;
    members.push_back(std::move(member));
    links.push_back(std::move(link));
  }
  (void)host.Execute(view_sql);

  auto total = host.Execute("SELECT COUNT(*) FROM lineitem");
  std::printf("total lineitem rows across 4 servers: %s\n",
              total->rowset->rows()[0][0].ToString().c_str());

  // Static pruning: a constant date predicate eliminates 3 of 4 members at
  // compile time.
  auto pruned = host.Execute(
      "SELECT COUNT(*) FROM lineitem "
      "WHERE l_commitdate BETWEEN '1993-03-01' AND '1993-04-30'");
  std::printf("\n== static pruning (constant range) ==\n%s",
              pruned->plan->ToString().c_str());

  // Runtime pruning: with a parameter the plan carries startup filters.
  auto runtime = host.Execute(
      "SELECT COUNT(*) FROM lineitem WHERE l_commitdate = @d",
      {{"@d", Value::Date(CivilToDays(1994, 7, 14))}});
  std::printf("\n== runtime pruning (parameter) ==\n%s",
              runtime->plan->ToString().c_str());
  std::printf("startup filters skipped %lld of 4 member subtrees\n",
              static_cast<long long>(runtime->exec_stats.startup_skips));

  // INSERT routing: the row lands on the member whose CHECK admits it.
  auto inserted = host.Execute(
      "INSERT INTO lineitem VALUES "
      "(424242, 1, 1, 3, 55.0, '1995-05-05', '1995-05-20')");
  if (inserted.ok()) {
    auto check = members[3]->Execute(
        "SELECT COUNT(*) FROM lineitem_1995 WHERE l_orderkey = 424242");
    std::printf("\nINSERT through the view routed to srv1995: %s row(s)\n",
                check->rowset->rows()[0][0].ToString().c_str());
  }
  return 0;
}
