// Federated TPC-H: customer/supplier live on a remote server, nation is
// local — the paper's Example 1 (§4.1.2, Fig 4). Shows the cost-based choice
// between pushing the remote join vs. reordering to minimize network
// traffic, and what each alternative actually ships.

#include <cstdio>

#include "src/connectors/engine_provider.h"
#include "src/connectors/linked_provider.h"
#include "src/core/engine.h"
#include "src/workloads/tpch.h"

using namespace dhqp;  // NOLINT — example brevity.

int main() {
  Engine host;
  Engine remote_engine;
  net::Link link("remote0");
  auto provider = std::make_shared<LinkedDataSource>(
      std::make_shared<EngineDataSource>(&remote_engine), &link);
  if (!host.AddLinkedServer("remote0", provider).ok()) return 1;

  workloads::TpchOptions options;
  options.scale_factor = 0.02;
  options.include_orders = false;
  if (!workloads::PopulateTpch(&remote_engine, options).ok()) return 1;

  // nation is small and lives locally.
  (void)host.Execute(
      "CREATE TABLE nation (n_nationkey INT PRIMARY KEY, n_name VARCHAR(25), "
      "n_regionkey INT)");
  auto nations = remote_engine.Execute("SELECT * FROM nation");
  for (const Row& row : nations->rowset->rows()) {
    (void)host.Execute("INSERT INTO nation VALUES (" + row[0].ToString() +
                       ",'" + row[1].ToString() + "'," + row[2].ToString() +
                       ")");
  }

  const char* query =
      "SELECT c.c_name, c.c_address, c.c_phone "
      "FROM remote0.tpch10g.dbo.customer c, remote0.tpch10g.dbo.supplier s, "
      "nation n "
      "WHERE c.c_nationkey = n.n_nationkey AND n.n_nationkey = s.s_nationkey";

  std::printf("Example 1 query (paper §4.1.2):\n%s\n\n", query);

  // Cost-based plan (the optimizer's pick — Fig 4(b) shape).
  auto chosen = host.Execute(query);
  if (!chosen.ok()) {
    std::printf("FAILED: %s\n", chosen.status().ToString().c_str());
    return 1;
  }
  std::printf("== chosen plan ==\n%s", chosen->plan->ToString().c_str());
  std::printf("result rows: %zu, rows shipped: %lld, link messages: %lld\n\n",
              chosen->rowset->rows().size(),
              static_cast<long long>(chosen->exec_stats.rows_from_remote),
              static_cast<long long>(link.stats().messages));

  // Compare: force the Fig 4(a) shape by disabling join reordering and
  // locality-aware exploration, leaving only whole-subtree pushdown.
  link.ResetStats();
  host.options()->optimizer.enable_join_reorder = false;
  host.options()->optimizer.multi_phase = false;
  auto naive = host.Execute(query);
  if (naive.ok()) {
    std::printf("== restricted optimizer (no join reordering) ==\n%s",
                naive->plan->ToString().c_str());
    std::printf("result rows: %zu, rows shipped: %lld\n",
                naive->rowset->rows().size(),
                static_cast<long long>(naive->exec_stats.rows_from_remote));
  }
  return 0;
}
