// Experiment E11 — fault-injection harness and retry-path overhead. Three
// questions, same remote-scan workload on a latency-enforcing link:
//   1. What does the retry machinery cost when no injector is attached?
//      (`Link::SendMessage` fast path — this is what production pays.)
//   2. What does an attached-but-inert injector add? (The chaos harness's
//      fixed cost; the acceptance bar is <10% over the no-injector run.)
//   3. What does recovering from one transient mid-stream fault cost?
//      (One resend + one backoff sleep amortized over the whole query.)

#include <chrono>

#include "bench/bench_util.h"
#include "src/net/fault.h"

namespace dhqp {

namespace {

struct FaultBenchFixture {
  std::unique_ptr<Engine> host;
  std::unique_ptr<Engine> remote;
  std::unique_ptr<net::Link> link;
  std::unique_ptr<net::FaultInjector> injector;
};

std::unique_ptr<FaultBenchFixture> BuildFaultBench(const std::string&) {
  auto fx = std::make_unique<FaultBenchFixture>();
  fx->host = std::make_unique<Engine>();
  fx->remote = std::make_unique<Engine>();
  // Enforced latency so message delays (and retry backoff) are real time.
  fx->link = std::make_unique<net::Link>("rsrv", /*latency_us=*/40,
                                         /*us_per_kb=*/1.0, /*enforce=*/true);
  fx->injector = std::make_unique<net::FaultInjector>();
  auto provider = std::make_shared<LinkedDataSource>(
      std::make_shared<EngineDataSource>(fx->remote.get(),
                                         SqlServerCapabilities()),
      fx->link.get());
  if (!fx->host->AddLinkedServer("rsrv", provider).ok()) std::abort();
  bench::MustRun(fx->remote.get(), "CREATE TABLE t (id INT PRIMARY KEY, v INT)");
  std::string sql = "INSERT INTO t VALUES ";
  for (int i = 0; i < 5000; ++i) {
    if (i) sql += ",";
    sql += "(" + std::to_string(i) + "," + std::to_string(i % 97) + ")";
  }
  bench::MustRun(fx->remote.get(), sql);
  return fx;
}

// Ships all 5000 rows (a plain scan is not aggregated away by pushdown), so
// the per-message retry fast path runs once per result block.
constexpr const char* kQuery = "SELECT id, v FROM rsrv.d.s.t";

enum class Mode { kNoInjector, kInertInjector, kTransientFault };

void RunFaultBench(benchmark::State& state, Mode mode) {
  auto* fx =
      bench::CachedFixture<FaultBenchFixture>("fault_retry", BuildFaultBench);
  fx->link->set_fault_injector(mode == Mode::kNoInjector ? nullptr
                                                         : fx->injector.get());
  int64_t retries = 0, faults = 0;
  double wall_ms = 0;
  for (auto _ : state) {
    if (mode == Mode::kTransientFault) {
      state.PauseTiming();
      fx->injector->Reset();
      // Ordinal 0 is the remote command; ordinal 1 the first result-block
      // settle — a mid-stream transient the retry loop must absorb.
      fx->injector->FailMessages(/*after=*/1, /*count=*/1);
      state.ResumeTiming();
    }
    fx->link->ResetStats();  // Between queries: no concurrent charger.
    auto start = std::chrono::steady_clock::now();
    QueryResult r = bench::MustRun(fx->host.get(), kQuery);
    wall_ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - start)
                  .count();
    retries = r.exec_stats.remote_retries;
    faults = r.exec_stats.faults_injected;
    benchmark::DoNotOptimize(r);
  }
  state.counters["remote_retries"] = static_cast<double>(retries);
  state.counters["faults_injected"] = static_cast<double>(faults);

  const char* case_name = mode == Mode::kNoInjector      ? "no_injector"
                          : mode == Mode::kInertInjector ? "inert_injector"
                                                         : "transient_fault";
  bench::AppendBenchRecord("fault_retry", case_name, wall_ms,
                           fx->link->stats());
  fx->link->set_fault_injector(nullptr);
  fx->injector->Reset();
}

void BM_FaultRetry_NoInjector(benchmark::State& state) {
  RunFaultBench(state, Mode::kNoInjector);
}
void BM_FaultRetry_InertInjector(benchmark::State& state) {
  RunFaultBench(state, Mode::kInertInjector);
}
void BM_FaultRetry_TransientFault(benchmark::State& state) {
  RunFaultBench(state, Mode::kTransientFault);
}

BENCHMARK(BM_FaultRetry_NoInjector)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FaultRetry_InertInjector)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FaultRetry_TransientFault)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dhqp

BENCHMARK_MAIN();
