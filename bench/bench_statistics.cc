// Experiment E3 — remote statistics (§3.2.4): "commonly provides order of
// magnitude improvements on cardinality estimates". A Zipf-skewed remote
// column is queried for hot and cold keys with histogram shipping enabled vs
// disabled; the bench reports estimation error (est/actual) and the runtime
// consequence (rows shipped under the chosen plan).

#include <cmath>

#include "bench/bench_util.h"
#include "src/common/rng.h"

namespace dhqp {

using bench::HostWithRemote;
using bench::MustRun;

constexpr int kRows = 30000;
constexpr int kDistinct = 500;

std::unique_ptr<HostWithRemote> BuildSkewed(const std::string&) {
  auto pair = bench::MakeHostWithRemote("rsrv");
  MustRun(pair->remote.get(),
          "CREATE TABLE skewed (id INT PRIMARY KEY, z INT, pay INT)");
  ZipfGenerator zipf(kDistinct, 1.1, 99);
  for (int base = 0; base < kRows; base += 1000) {
    std::string sql = "INSERT INTO skewed VALUES ";
    for (int i = 0; i < 1000; ++i) {
      int id = base + i;
      if (i) sql += ",";
      sql += "(" + std::to_string(id) + "," + std::to_string(zipf.Next()) +
             "," + std::to_string(id % 97) + ")";
    }
    MustRun(pair->remote.get(), sql);
  }
  MustRun(pair->remote.get(), "CREATE INDEX idx_z ON skewed (z)");
  return pair;
}

void RunEstimate(benchmark::State& state, bool use_stats) {
  auto* pair = bench::CachedFixture<HostWithRemote>("skewed", BuildSkewed);
  pair->host->options()->optimizer.enable_remote_statistics = use_stats;
  int64_t key = state.range(0);  // Zipf rank: 1 = hottest.
  std::string query =
      "SELECT pay FROM rsrv.d.s.skewed WHERE z = " + std::to_string(key);
  double est = 0, actual = 0, shipped = 0;
  for (auto _ : state) {
    QueryResult r = MustRun(pair->host.get(), query);
    est = r.plan->estimated_rows;
    actual = static_cast<double>(r.rowset->rows().size());
    shipped = static_cast<double>(r.exec_stats.rows_from_remote);
    benchmark::DoNotOptimize(r);
  }
  state.counters["estimated_rows"] = est;
  state.counters["actual_rows"] = actual;
  state.counters["error_factor"] =
      actual > 0 ? std::max(est, actual) / std::max(std::min(est, actual), 1.0)
                 : 0;
  state.counters["rows_shipped"] = shipped;
  pair->host->options()->optimizer = OptimizerOptions{};
  pair->host->catalog()->InvalidateCaches();
}

void BM_Stats_WithHistograms(benchmark::State& state) {
  RunEstimate(state, true);
}
void BM_Stats_WithoutHistograms(benchmark::State& state) {
  RunEstimate(state, false);
}

// Rank 1 = heavy hitter (~thousands of rows); rank 400 = tail (handful).
BENCHMARK(BM_Stats_WithHistograms)->Arg(1)->Arg(10)->Arg(400)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Stats_WithoutHistograms)->Arg(1)->Arg(10)->Arg(400)
    ->Unit(benchmark::kMillisecond);

// Join-order consequence: joining the skewed table against a local probe on
// the hot key — bad estimates push the optimizer toward shipping the wrong
// side.
void BM_Stats_JoinPlanQuality(benchmark::State& state) {
  auto* pair = bench::CachedFixture<HostWithRemote>("skewed", BuildSkewed);
  pair->host->options()->optimizer.enable_remote_statistics =
      state.range(0) != 0;
  if (!pair->host->storage()->HasTable("probe")) {
    MustRun(pair->host.get(), "CREATE TABLE probe (z INT PRIMARY KEY)");
    MustRun(pair->host.get(), "INSERT INTO probe VALUES (1),(2),(3)");
  }
  int64_t shipped = 0;
  for (auto _ : state) {
    QueryResult r = MustRun(pair->host.get(),
                            "SELECT COUNT(*) FROM probe p JOIN "
                            "rsrv.d.s.skewed s ON p.z = s.z");
    shipped = r.exec_stats.rows_from_remote;
    benchmark::DoNotOptimize(r);
  }
  state.counters["rows_shipped"] = static_cast<double>(shipped);
  pair->host->options()->optimizer = OptimizerOptions{};
  pair->host->catalog()->InvalidateCaches();
}
BENCHMARK(BM_Stats_JoinPlanQuality)->Arg(1)->Arg(0)
    ->Unit(benchmark::kMillisecond);

}  // namespace dhqp

BENCHMARK_MAIN();
