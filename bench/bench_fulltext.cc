// Experiment E6 — full-text integration (§2.2/§2.3, Fig 2): CONTAINS
// answered through the search service's (key, rank) rowset joined back to
// the base table, vs the naive scan that evaluates the full-text predicate
// per row. Query mix: single word, phrase, OR, proximity, inflectional.

#include <functional>

#include "bench/bench_util.h"
#include "src/workloads/documents.h"

namespace dhqp {

using bench::MustRun;

struct FtFixture {
  std::unique_ptr<Engine> engine;
};

constexpr const char* kQueries[] = {
    "database",                                       // Single word.
    "\"parallel database\"",                          // Phrase.
    "\"parallel database\" OR \"heterogeneous query\"",  // OR (paper §2.2).
    "parallel NEAR optimizer",                        // Proximity.
    "running",                                        // Inflectional.
};

std::unique_ptr<FtFixture> BuildFt(const std::string&) {
  auto fixture = std::make_unique<FtFixture>();
  fixture->engine = std::make_unique<Engine>();
  MustRun(fixture->engine.get(),
          "CREATE TABLE docs (id INT PRIMARY KEY, body TEXT)");
  workloads::CorpusOptions options;
  options.num_documents = 4000;
  options.words_per_document = 80;
  auto corpus = workloads::GenerateCorpus(options);
  fulltext::IFilterRegistry filters;
  int id = 0;
  for (const auto& doc : corpus) {
    auto text = filters.Extract(doc);
    if (!text.ok()) continue;
    Status st = fixture->engine->storage()
                    ->InsertRow(-1, "docs",
                                {Value::Int64(id++), Value::String(*text)})
                    .status();
    if (!st.ok()) std::abort();
  }
  Status st = fixture->engine->CreateFullTextIndex("ft", "docs", "id", "body");
  if (!st.ok()) std::abort();
  return fixture;
}

void RunContains(benchmark::State& state, bool use_index) {
  auto* fixture = bench::CachedFixture<FtFixture>("ft", BuildFt);
  fixture->engine->options()->optimizer.enable_fulltext_index = use_index;
  const char* ft_query = kQueries[state.range(0)];
  std::string sql = std::string("SELECT COUNT(*) FROM docs WHERE "
                                "CONTAINS(body, '") +
                    ft_query + "')";
  int64_t matches = 0;
  bool used_lookup = false;
  for (auto _ : state) {
    QueryResult r = MustRun(fixture->engine.get(), sql);
    matches = r.rowset->rows()[0][0].int64_value();
    std::function<bool(const PhysicalOpPtr&)> has_lookup =
        [&](const PhysicalOpPtr& plan) {
          if (plan->kind == PhysicalOpKind::kFullTextLookup) return true;
          for (const auto& c : plan->children) {
            if (has_lookup(c)) return true;
          }
          return false;
        };
    used_lookup = has_lookup(r.plan);
    benchmark::DoNotOptimize(r);
  }
  state.counters["matches"] = static_cast<double>(matches);
  state.SetLabel(std::string(ft_query) +
                 (used_lookup ? " [index]" : " [naive scan]"));
  fixture->engine->options()->optimizer = OptimizerOptions{};
}

void BM_Contains_IndexPlan(benchmark::State& state) {
  RunContains(state, true);
}
void BM_Contains_NaiveScan(benchmark::State& state) {
  RunContains(state, false);
}

BENCHMARK(BM_Contains_IndexPlan)->DenseRange(0, 4)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Contains_NaiveScan)->DenseRange(0, 4)
    ->Unit(benchmark::kMillisecond);

// Raw search-service throughput (Fig 2's "query support" half) without the
// relational join-back.
void BM_SearchService_Query(benchmark::State& state) {
  auto* fixture = bench::CachedFixture<FtFixture>("ft", BuildFt);
  const char* ft_query = kQueries[state.range(0)];
  for (auto _ : state) {
    auto matches = fixture->engine->fulltext()->Query("docs", ft_query);
    if (!matches.ok()) std::abort();
    benchmark::DoNotOptimize(*matches);
  }
  state.SetLabel(ft_query);
}
BENCHMARK(BM_SearchService_Query)->DenseRange(0, 4)
    ->Unit(benchmark::kMicrosecond);

}  // namespace dhqp

BENCHMARK_MAIN();
