// Experiment E2 — remote access paths (§3.3 index provider, §4.1.2's
// "remote scan / remote range / remote fetch"). Sweeps predicate selectivity
// over an indexed remote table under three provider configurations:
//   query provider   -> pushed RemoteQuery,
//   index provider   -> RemoteRange / RemoteFetch (no ICommand),
//   simple provider  -> RemoteScan + local filter.
// Expected shape: index paths win at low selectivity; the scan price is flat;
// all converge as selectivity -> 1.

#include "bench/bench_util.h"

namespace dhqp {

using bench::HostWithRemote;
using bench::MustRun;

constexpr int kRows = 20000;

std::unique_ptr<HostWithRemote> BuildPaths(const std::string& kind) {
  ProviderCapabilities caps = SqlServerCapabilities();
  if (kind == "index") {
    caps.supports_command = false;
    caps.sql_support = SqlSupportLevel::kNone;
    caps.provider_name = "DHQP.IndexProvider";
  } else if (kind == "simple") {
    caps.supports_command = false;
    caps.sql_support = SqlSupportLevel::kNone;
    caps.supports_indexes = false;
    caps.supports_bookmarks = false;
    caps.provider_name = "DHQP.SimpleProvider";
  }
  auto pair = bench::MakeHostWithRemote("rsrv", /*latency_us=*/30, caps);
  MustRun(pair->remote.get(), "CREATE TABLE t (k INT PRIMARY KEY, pay VARCHAR(40))");
  for (int base = 0; base < kRows; base += 1000) {
    std::string sql = "INSERT INTO t VALUES ";
    for (int i = 0; i < 1000; ++i) {
      int k = base + i;
      if (i) sql += ",";
      sql += "(" + std::to_string(k) + ",'payload-" + std::to_string(k) + "')";
    }
    MustRun(pair->remote.get(), sql);
  }
  return pair;
}

void RunPath(benchmark::State& state, const std::string& kind) {
  auto* pair = bench::CachedFixture<HostWithRemote>(kind, BuildPaths);
  int64_t cut = state.range(0);  // Rows selected by k < cut.
  std::string query =
      "SELECT COUNT(*) FROM rsrv.d.s.t WHERE k < " + std::to_string(cut);
  int64_t rows_shipped = 0, msgs = 0, fetches = 0;
  for (auto _ : state) {
    pair->link->ResetStats();
    QueryResult r = MustRun(pair->host.get(), query);
    rows_shipped = r.exec_stats.rows_from_remote;
    fetches = r.exec_stats.remote_fetches;
    msgs = pair->link->stats().messages;
    benchmark::DoNotOptimize(r);
  }
  state.counters["rows_shipped"] = static_cast<double>(rows_shipped);
  state.counters["link_messages"] = static_cast<double>(msgs);
  state.counters["bookmark_fetches"] = static_cast<double>(fetches);
}

void BM_Path_QueryProvider(benchmark::State& state) { RunPath(state, "query"); }
void BM_Path_IndexProvider(benchmark::State& state) { RunPath(state, "index"); }
void BM_Path_SimpleProvider(benchmark::State& state) { RunPath(state, "simple"); }

BENCHMARK(BM_Path_QueryProvider)
    ->Arg(10)->Arg(200)->Arg(2000)->Arg(20000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Path_IndexProvider)
    ->Arg(10)->Arg(200)->Arg(2000)->Arg(20000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Path_SimpleProvider)
    ->Arg(10)->Arg(200)->Arg(2000)->Arg(20000)
    ->Unit(benchmark::kMillisecond);

// Point lookups, where "remote fetch" style access shines: one indexed row
// vs shipping anything else.
void BM_Path_PointLookup(benchmark::State& state) {
  std::string kind = state.range(0) == 0   ? "query"
                     : state.range(0) == 1 ? "index"
                                           : "simple";
  auto* pair = bench::CachedFixture<HostWithRemote>(kind, BuildPaths);
  int64_t k = 0;
  for (auto _ : state) {
    QueryResult r = MustRun(
        pair->host.get(),
        "SELECT pay FROM rsrv.d.s.t WHERE k = " + std::to_string(k % kRows));
    k += 7919;
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(kind);
}
BENCHMARK(BM_Path_PointLookup)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMicrosecond);

}  // namespace dhqp

BENCHMARK_MAIN();
