// Experiment E2 — remote access paths (§3.3 index provider, §4.1.2's
// "remote scan / remote range / remote fetch"). Sweeps predicate selectivity
// over an indexed remote table under three provider configurations:
//   query provider   -> pushed RemoteQuery,
//   index provider   -> RemoteRange / RemoteFetch (no ICommand),
//   simple provider  -> RemoteScan + local filter.
// Expected shape: index paths win at low selectivity; the scan price is flat;
// all converge as selectivity -> 1.

#include <chrono>

#include "bench/bench_util.h"

namespace dhqp {

using bench::HostWithRemote;
using bench::MustRun;

constexpr int kRows = 20000;

std::unique_ptr<HostWithRemote> BuildPaths(const std::string& kind) {
  ProviderCapabilities caps = SqlServerCapabilities();
  if (kind == "index") {
    caps.supports_command = false;
    caps.sql_support = SqlSupportLevel::kNone;
    caps.provider_name = "DHQP.IndexProvider";
  } else if (kind == "simple" || kind == "pipeline") {
    caps.supports_command = false;
    caps.sql_support = SqlSupportLevel::kNone;
    caps.supports_indexes = false;
    caps.supports_bookmarks = false;
    caps.provider_name = "DHQP.SimpleProvider";
  }
  // The pipeline experiment runs over a slower (WAN-ish) link, where
  // per-message latency dominates and overlapping it matters most.
  double latency_us = kind == "pipeline" ? 100 : 30;
  auto pair = bench::MakeHostWithRemote("rsrv", latency_us, caps);
  MustRun(pair->remote.get(), "CREATE TABLE t (k INT PRIMARY KEY, pay VARCHAR(40))");
  for (int base = 0; base < kRows; base += 1000) {
    std::string sql = "INSERT INTO t VALUES ";
    for (int i = 0; i < 1000; ++i) {
      int k = base + i;
      if (i) sql += ",";
      sql += "(" + std::to_string(k) + ",'payload-" + std::to_string(k) + "')";
    }
    MustRun(pair->remote.get(), sql);
  }
  return pair;
}

void RunPath(benchmark::State& state, const std::string& kind) {
  auto* pair = bench::CachedFixture<HostWithRemote>(kind, BuildPaths);
  int64_t cut = state.range(0);  // Rows selected by k < cut.
  std::string query =
      "SELECT COUNT(*) FROM rsrv.d.s.t WHERE k < " + std::to_string(cut);
  int64_t rows_shipped = 0, msgs = 0, fetches = 0;
  for (auto _ : state) {
    pair->link->ResetStats();
    QueryResult r = MustRun(pair->host.get(), query);
    rows_shipped = r.exec_stats.rows_from_remote;
    fetches = r.exec_stats.remote_fetches;
    msgs = pair->link->stats().messages;
    benchmark::DoNotOptimize(r);
  }
  state.counters["rows_shipped"] = static_cast<double>(rows_shipped);
  state.counters["link_messages"] = static_cast<double>(msgs);
  state.counters["bookmark_fetches"] = static_cast<double>(fetches);
}

void BM_Path_QueryProvider(benchmark::State& state) { RunPath(state, "query"); }
void BM_Path_IndexProvider(benchmark::State& state) { RunPath(state, "index"); }
void BM_Path_SimpleProvider(benchmark::State& state) { RunPath(state, "simple"); }

BENCHMARK(BM_Path_QueryProvider)
    ->Arg(10)->Arg(200)->Arg(2000)->Arg(20000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Path_IndexProvider)
    ->Arg(10)->Arg(200)->Arg(2000)->Arg(20000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Path_SimpleProvider)
    ->Arg(10)->Arg(200)->Arg(2000)->Arg(20000)
    ->Unit(benchmark::kMillisecond);

// Block fetch vs row-at-a-time at the rowset layer: the same 5000 rows
// drained through a LinkedRowset pacing one message per row (the OLE DB
// consumer that never asks for more than one row) vs through NextBatch.
// Message counts drop by ~the batch size; on an enforced-latency link the
// wall clock follows.
void BM_Path_BlockFetchMicro(benchmark::State& state) {
  constexpr int kMicroRows = 5000;
  const bool block = state.range(0) != 0;
  const int batch_rows = 256;
  Schema schema;
  schema.AddColumn(ColumnDef{"a", DataType::kInt64, false});
  std::vector<Row> rows;
  for (int i = 0; i < kMicroRows; ++i) rows.push_back({Value::Int64(i)});
  net::Link link("micro", /*latency_us=*/30, /*us_per_kb=*/1.0,
                 /*enforce_delays=*/true);
  auto inner = std::make_unique<VectorRowset>(schema, rows);
  VectorRowset* source = inner.get();
  net::LinkedRowset rowset(std::move(inner), &link,
                           /*batch_rows=*/block ? batch_rows : 1);
  double wall_ms = 0;
  for (auto _ : state) {
    if (!source->Restart().ok()) std::abort();
    link.ResetStats();
    auto start = std::chrono::steady_clock::now();
    int64_t n = 0;
    if (block) {
      RowBatch batch;
      while (true) {
        auto has = rowset.NextBatch(&batch, batch_rows);
        if (!has.ok()) std::abort();
        if (!*has) break;
        n += static_cast<int64_t>(batch.size());
      }
    } else {
      Row row;
      while (true) {
        auto has = rowset.Next(&row);
        if (!has.ok()) std::abort();
        if (!*has) break;
        ++n;
      }
    }
    if (n != kMicroRows) std::abort();
    wall_ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - start)
                  .count();
    benchmark::DoNotOptimize(n);
  }
  state.counters["link_messages"] =
      static_cast<double>(link.stats().messages);
  state.SetLabel(block ? "block-fetch-256" : "row-at-a-time");
  bench::AppendBenchRecord("remote_access_paths",
                           block ? "micro_block_fetch" : "micro_row_at_a_time",
                           wall_ms, link.stats());
}
BENCHMARK(BM_Path_BlockFetchMicro)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

// Tentpole experiment: a large remote scan (simple provider -> RemoteScan of
// all 20k rows) with the async block-fetch pipeline off vs on. Off pays the
// link inline per pacing batch; on overlaps the link with local processing
// and ships fewer, bigger messages.
void BM_Path_LargeScanPipeline(benchmark::State& state) {
  auto* pair = bench::CachedFixture<HostWithRemote>("pipeline", BuildPaths);
  const bool prefetch = state.range(0) != 0;
  pair->host->options()->execution.enable_remote_prefetch = prefetch;
  int64_t msgs = 0, batches = 0, stalls = 0, rows_shipped = 0;
  double wall_ms = 0;
  for (auto _ : state) {
    pair->link->ResetStats();
    auto start = std::chrono::steady_clock::now();
    QueryResult r = MustRun(pair->host.get(),
                            "SELECT COUNT(*), SUM(k) FROM rsrv.d.s.t");
    wall_ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - start)
                  .count();
    msgs = pair->link->stats().messages;
    batches = r.exec_stats.remote_batches;
    stalls = r.exec_stats.prefetch_stalls;
    rows_shipped = r.exec_stats.rows_from_remote;
    benchmark::DoNotOptimize(r);
  }
  state.counters["link_messages"] = static_cast<double>(msgs);
  state.counters["remote_batches"] = static_cast<double>(batches);
  state.counters["prefetch_stalls"] = static_cast<double>(stalls);
  state.counters["rows_shipped"] = static_cast<double>(rows_shipped);
  state.SetLabel(prefetch ? "async-prefetch" : "inline");
  bench::AppendBenchRecord("remote_access_paths",
                           prefetch ? "large_scan_prefetch"
                                    : "large_scan_inline",
                           wall_ms, pair->link->stats());
  pair->host->options()->execution = ExecOptions{};
}
BENCHMARK(BM_Path_LargeScanPipeline)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

// Point lookups, where "remote fetch" style access shines: one indexed row
// vs shipping anything else.
void BM_Path_PointLookup(benchmark::State& state) {
  std::string kind = state.range(0) == 0   ? "query"
                     : state.range(0) == 1 ? "index"
                                           : "simple";
  auto* pair = bench::CachedFixture<HostWithRemote>(kind, BuildPaths);
  int64_t k = 0;
  for (auto _ : state) {
    QueryResult r = MustRun(
        pair->host.get(),
        "SELECT pay FROM rsrv.d.s.t WHERE k = " + std::to_string(k % kRows));
    k += 7919;
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(kind);
}
BENCHMARK(BM_Path_PointLookup)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMicrosecond);

}  // namespace dhqp

BENCHMARK_MAIN();
