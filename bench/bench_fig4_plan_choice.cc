// Experiment F4 — Figure 4 / Example 1 (§4.1.2): cost-based choice between
//   (a) pushing "customer JOIN supplier ON nationkey" to the remote server,
//   (b) joining supplier to (local) nation first, involving customer last.
// The bench executes both shapes at several scale factors and reports wall
// time plus rows shipped; the optimizer's own pick is also verified to avoid
// the cross-product-like remote join. Paper claim: (b) wins because it
// "avoids having to send a large intermediate result set of 'customer join
// supplier' over the network".

#include <functional>
#include <set>

#include "bench/bench_util.h"
#include "src/workloads/tpch.h"

namespace dhqp {

using bench::HostWithRemote;
using bench::MustRun;

constexpr const char* kExample1 =
    "SELECT c.c_name, c.c_address, c.c_phone "
    "FROM remote0.tpch10g.dbo.customer c, remote0.tpch10g.dbo.supplier s, "
    "nation n "
    "WHERE c.c_nationkey = n.n_nationkey AND n.n_nationkey = s.s_nationkey";

// The forced Fig 4(a) shape, expressed as pass-through + local join: ship
// the remote join's result, then join nation locally.
constexpr const char* kForcedRemoteJoinInner =
    "SELECT c.c_name, c.c_address, c.c_phone, c.c_nationkey "
    "FROM customer c JOIN supplier s ON c.c_nationkey = s.s_nationkey";

std::unique_ptr<HostWithRemote> BuildFig4(const std::string& key) {
  double sf = std::stod(key);
  auto pair = bench::MakeHostWithRemote("remote0", /*latency_us=*/50);
  workloads::TpchOptions options;
  options.scale_factor = sf;
  options.include_orders = false;
  Status st = workloads::PopulateTpch(pair->remote.get(), options);
  if (!st.ok()) std::abort();
  MustRun(pair->host.get(),
          "CREATE TABLE nation (n_nationkey INT PRIMARY KEY, "
          "n_name VARCHAR(25), n_regionkey INT)");
  QueryResult nations = MustRun(pair->remote.get(), "SELECT * FROM nation");
  for (const Row& row : nations.rowset->rows()) {
    MustRun(pair->host.get(), "INSERT INTO nation VALUES (" +
                                  row[0].ToString() + ",'" +
                                  row[1].ToString() + "'," +
                                  row[2].ToString() + ")");
  }
  return pair;
}

std::string SfKey(const benchmark::State& state) {
  return std::to_string(state.range(0) / 1000.0);
}

// (b)-shaped: whatever the cost-based optimizer picks.
void BM_Fig4_CostBased(benchmark::State& state) {
  auto* pair = bench::CachedFixture<HostWithRemote>(SfKey(state), BuildFig4);
  int64_t rows_shipped = 0, result_rows = 0;
  for (auto _ : state) {
    QueryResult r = MustRun(pair->host.get(), kExample1);
    rows_shipped = r.exec_stats.rows_from_remote;
    result_rows = static_cast<int64_t>(r.rowset->rows().size());
  }
  state.counters["rows_shipped"] = static_cast<double>(rows_shipped);
  state.counters["result_rows"] = static_cast<double>(result_rows);
}
BENCHMARK(BM_Fig4_CostBased)->Arg(5)->Arg(10)->Arg(20)->Unit(benchmark::kMillisecond);

// (a)-shaped: force the remote join via pass-through, then join locally.
void BM_Fig4_ForcedRemoteJoin(benchmark::State& state) {
  auto* pair = bench::CachedFixture<HostWithRemote>(SfKey(state), BuildFig4);
  int64_t rows_shipped = 0;
  for (auto _ : state) {
    pair->link->ResetStats();
    auto rowset = pair->host->ExecutePassThrough("remote0",
                                                 kForcedRemoteJoinInner);
    if (!rowset.ok()) std::abort();
    auto rows = DrainRowset(rowset->get());
    if (!rows.ok()) std::abort();
    // Local hash join with nation (tiny): count matches.
    QueryResult nations = MustRun(pair->host.get(), "SELECT n_nationkey FROM nation");
    std::set<int64_t> keys;
    for (const Row& row : nations.rowset->rows()) {
      keys.insert(row[0].int64_value());
    }
    int64_t matched = 0;
    for (const Row& row : *rows) {
      if (keys.count(row[3].int64_value()) > 0) ++matched;
    }
    benchmark::DoNotOptimize(matched);
    rows_shipped = pair->link->stats().rows;
  }
  state.counters["rows_shipped"] = static_cast<double>(rows_shipped);
}
BENCHMARK(BM_Fig4_ForcedRemoteJoin)
    ->Arg(5)
    ->Arg(10)
    ->Arg(20)
    ->Unit(benchmark::kMillisecond);

void VerifyOptimizerAvoidsRemoteCrossJoin() {
  auto* pair = bench::CachedFixture<HostWithRemote>("0.01", BuildFig4);
  auto prepared = pair->host->Prepare(kExample1);
  if (!prepared.ok()) std::abort();
  std::function<bool(const PhysicalOpPtr&)> pushes_both =
      [&](const PhysicalOpPtr& plan) {
        if (plan->kind == PhysicalOpKind::kRemoteQuery &&
            plan->remote_sql.find("customer") != std::string::npos &&
            plan->remote_sql.find("supplier") != std::string::npos) {
          return true;
        }
        for (const auto& child : plan->children) {
          if (pushes_both(child)) return true;
        }
        return false;
      };
  std::printf(
      "Figure 4 check: optimizer %s the customer-x-supplier remote join "
      "(paper: plan (b) chosen)\n\n",
      pushes_both(prepared->plan) ? "PUSHED (unexpected!)" : "avoided");
}

}  // namespace dhqp

int main(int argc, char** argv) {
  dhqp::VerifyOptimizerAvoidsRemoteCrossJoin();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
