// Experiment E12 companion — what does query-lifecycle observability cost?
// Same large-remote-scan workload (every row ships across the link, so the
// per-batch and per-message instrumentation paths run at full rate), three
// configurations:
//   1. no_instrumentation — collect_operator_stats off, tracing off. The
//      floor: what the executor costs with no profile tree at all.
//   2. operator_stats — the default production shape: per-operator profile
//      decorators on, tracing off. Acceptance bar: <=5% over the floor.
//   3. operator_stats_tracing — tracer enabled on top, spans recorded for
//      every phase and link attempt. The full-diagnosis configuration.
// Each case appends a metrics-snapshot-backed record to
// BENCH_observability.json via the shared bench_util writer.

#include <algorithm>
#include <chrono>

#include "bench/bench_util.h"
#include "src/common/metrics.h"
#include "src/common/trace.h"

namespace dhqp {

namespace {

std::unique_ptr<bench::HostWithRemote> BuildObsBench(const std::string&) {
  // Zero link latency: wall time is pure engine CPU, so the instrumentation
  // overhead percentage is not diluted by simulated network waits.
  auto fx = bench::MakeHostWithRemote("rsrv", /*latency_us=*/0);
  bench::MustRun(fx->remote.get(),
                 "CREATE TABLE t (id INT PRIMARY KEY, v INT)");
  for (int base = 0; base < 20000; base += 5000) {
    std::string sql = "INSERT INTO t VALUES ";
    for (int i = base; i < base + 5000; ++i) {
      if (i != base) sql += ",";
      sql += "(" + std::to_string(i) + "," + std::to_string(i % 97) + ")";
    }
    bench::MustRun(fx->remote.get(), sql);
  }
  return fx;
}

// Ships all 20000 rows: a plain scan is not aggregated away by pushdown.
constexpr const char* kQuery = "SELECT id, v FROM rsrv.d.s.t";

enum class Mode { kNoInstrumentation, kOperatorStats, kOperatorStatsTracing };

void Configure(bench::HostWithRemote* fx, Mode mode) {
  fx->host->options()->execution.collect_operator_stats =
      mode != Mode::kNoInstrumentation;
  if (mode == Mode::kOperatorStatsTracing) {
    trace::Tracer::Global().Enable();
  } else {
    trace::Tracer::Global().Disable();
  }
}

double OneRunMs(Engine* host) {
  auto start = std::chrono::steady_clock::now();
  QueryResult r = bench::MustRun(host, kQuery);
  double ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - start)
                  .count();
  benchmark::DoNotOptimize(r);
  return ms;
}

// Min-of-N wall time with the two configurations interleaved run-by-run, so
// slow machine-load drift hits both sides equally: the overhead comparison
// needs a stable point estimate, and paired minima are the standard
// noise-rejecting choice for CPU-bound loops.
void MeasurePairMs(bench::HostWithRemote* fx, Mode mode, double* mode_ms,
                   double* base_ms, int reps = 20) {
  *mode_ms = 1e300;
  *base_ms = 1e300;
  for (int i = 0; i < reps; ++i) {
    Configure(fx, mode);
    *mode_ms = std::min(*mode_ms, OneRunMs(fx->host.get()));
    Configure(fx, Mode::kNoInstrumentation);
    *base_ms = std::min(*base_ms, OneRunMs(fx->host.get()));
  }
}

void RunObsBench(benchmark::State& state, Mode mode) {
  auto* fx = bench::CachedFixture<bench::HostWithRemote>("observability",
                                                         BuildObsBench);
  Configure(fx, mode);
  for (auto _ : state) {
    QueryResult r = bench::MustRun(fx->host.get(), kQuery);
    benchmark::DoNotOptimize(r);
  }

  // Record: reset the registry so the snapshot covers exactly the measured
  // repetitions, then write one metrics-backed record for this case. The
  // instrumented cases also surface overhead vs. the uninstrumented floor,
  // measured with interleaved runs.
  metrics::Registry::Global().ResetAll();
  double wall_ms, base_ms;
  if (mode == Mode::kNoInstrumentation) {
    MeasurePairMs(fx, mode, &wall_ms, &base_ms);
  } else {
    Configure(fx, mode);
    MeasurePairMs(fx, mode, &wall_ms, &base_ms);
    state.counters["overhead_pct"] =
        base_ms > 0 ? (wall_ms - base_ms) / base_ms * 100.0 : 0.0;
    Configure(fx, mode);  // Snapshot below reflects the instrumented shape.
  }
  const char* case_name = mode == Mode::kNoInstrumentation ? "no_instrumentation"
                          : mode == Mode::kOperatorStats   ? "operator_stats"
                                                           : "operator_stats_tracing";
  bench::AppendMetricsRecord("BENCH_observability.json", "observability",
                             case_name, wall_ms);

  // Restore defaults so cases do not leak configuration into each other.
  trace::Tracer::Global().Disable();
  fx->host->options()->execution.collect_operator_stats = true;
}

void BM_Observability_NoInstrumentation(benchmark::State& state) {
  RunObsBench(state, Mode::kNoInstrumentation);
}
void BM_Observability_OperatorStats(benchmark::State& state) {
  RunObsBench(state, Mode::kOperatorStats);
}
void BM_Observability_OperatorStatsTracing(benchmark::State& state) {
  RunObsBench(state, Mode::kOperatorStatsTracing);
}

BENCHMARK(BM_Observability_NoInstrumentation)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Observability_OperatorStats)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Observability_OperatorStatsTracing)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dhqp

BENCHMARK_MAIN();
