// Experiment E1 — §2.1's pushdown claim: restrictions/joins/group-bys are
// pushed to SQL-capable providers "when it is cost-effective". Sweeps
// predicate selectivity and compares pushdown-enabled vs disabled execution:
// time and rows shipped. Expected shape: pushdown wins everywhere for
// selective predicates and converges to the no-pushdown cost as selectivity
// approaches 1 (everything ships either way).

#include "bench/bench_util.h"

namespace dhqp {

using bench::HostWithRemote;
using bench::MustRun;

constexpr int kRows = 20000;

std::unique_ptr<HostWithRemote> BuildPushdown(const std::string&) {
  auto pair = bench::MakeHostWithRemote("rsrv", /*latency_us=*/30);
  MustRun(pair->remote.get(),
          "CREATE TABLE fact (k INT PRIMARY KEY, v INT, g INT)");
  for (int base = 0; base < kRows; base += 1000) {
    std::string sql = "INSERT INTO fact VALUES ";
    for (int i = 0; i < 1000; ++i) {
      int k = base + i;
      if (i) sql += ",";
      sql += "(" + std::to_string(k) + "," + std::to_string(k % 10000) + "," +
             std::to_string(k % 50) + ")";
    }
    MustRun(pair->remote.get(), sql);
  }
  return pair;
}

// Selectivity in permille via Arg: predicate v < kRows * sel.
void RunSelectivity(benchmark::State& state, bool pushdown) {
  auto* pair =
      bench::CachedFixture<HostWithRemote>("pushdown", BuildPushdown);
  pair->host->options()->optimizer.enable_remote_pushdown = pushdown;
  pair->host->options()->optimizer.enable_index_paths = pushdown;
  pair->host->options()->optimizer.enable_parameterization = pushdown;
  double sel = static_cast<double>(state.range(0)) / 1000.0;
  // v is uniform over [0, 10000): v < cut selects the requested fraction.
  int64_t vcut = static_cast<int64_t>(10000 * sel);
  std::string query = "SELECT COUNT(*), SUM(v) FROM rsrv.d.s.fact WHERE v < " +
                      std::to_string(vcut);
  int64_t rows_shipped = 0;
  for (auto _ : state) {
    QueryResult r = MustRun(pair->host.get(), query);
    rows_shipped = r.exec_stats.rows_from_remote;
    benchmark::DoNotOptimize(r);
  }
  state.counters["rows_shipped"] = static_cast<double>(rows_shipped);
  pair->host->options()->optimizer = OptimizerOptions{};
}

void BM_Pushdown_On(benchmark::State& state) { RunSelectivity(state, true); }
void BM_Pushdown_Off(benchmark::State& state) { RunSelectivity(state, false); }

BENCHMARK(BM_Pushdown_On)
    ->Arg(1)->Arg(10)->Arg(100)->Arg(500)->Arg(1000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Pushdown_Off)
    ->Arg(1)->Arg(10)->Arg(100)->Arg(500)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

// Group-by pushdown (the aggregation variant of the same claim): 50 groups
// ship instead of 20k rows.
void BM_Pushdown_GroupBy(benchmark::State& state) {
  auto* pair =
      bench::CachedFixture<HostWithRemote>("pushdown", BuildPushdown);
  pair->host->options()->optimizer.enable_remote_pushdown = state.range(0) != 0;
  int64_t rows_shipped = 0;
  for (auto _ : state) {
    QueryResult r = MustRun(pair->host.get(),
                            "SELECT g, COUNT(*), AVG(v) FROM rsrv.d.s.fact "
                            "GROUP BY g");
    rows_shipped = r.exec_stats.rows_from_remote;
    benchmark::DoNotOptimize(r);
  }
  state.counters["rows_shipped"] = static_cast<double>(rows_shipped);
  pair->host->options()->optimizer = OptimizerOptions{};
}
BENCHMARK(BM_Pushdown_GroupBy)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

}  // namespace dhqp

BENCHMARK_MAIN();
