#ifndef DHQP_BENCH_BENCH_UTIL_H_
#define DHQP_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <memory>
#include <string>

#include "src/common/metrics.h"
#include "src/connectors/engine_provider.h"
#include "src/connectors/linked_provider.h"
#include "src/core/engine.h"

namespace dhqp {
namespace bench {

/// A host engine plus one remote engine attached as linked server `name`.
struct HostWithRemote {
  std::unique_ptr<Engine> host;
  std::unique_ptr<Engine> remote;
  std::unique_ptr<net::Link> link;
};

/// Builds the pair; `latency_us` > 0 adds real per-message delay so wall
/// time reflects network shape.
inline std::unique_ptr<HostWithRemote> MakeHostWithRemote(
    const std::string& name = "rsrv", double latency_us = 0,
    ProviderCapabilities caps = SqlServerCapabilities()) {
  auto pair = std::make_unique<HostWithRemote>();
  pair->host = std::make_unique<Engine>();
  pair->remote = std::make_unique<Engine>();
  pair->link = std::make_unique<net::Link>(name, latency_us, /*us_per_kb=*/1.0,
                                           latency_us > 0);
  auto provider = std::make_shared<LinkedDataSource>(
      std::make_shared<EngineDataSource>(pair->remote.get(), std::move(caps)),
      pair->link.get());
  Status st = pair->host->AddLinkedServer(name, provider);
  if (!st.ok()) std::abort();
  return pair;
}

/// Runs a query, aborting the bench on failure (benches must not silently
/// measure error paths).
inline QueryResult MustRun(Engine* engine, const std::string& sql,
                           const std::map<std::string, Value>& params = {}) {
  auto result = engine->Execute(sql, params);
  if (!result.ok()) {
    std::fprintf(stderr, "bench query failed: %s\n  %s\n",
                 result.status().ToString().c_str(), sql.c_str());
    std::abort();
  }
  return std::move(result).value();
}

/// Shared JSON-lines record writer: every bench result file is a sequence of
///   {"bench":"...","case":"...","wall_ms":1.23,<extra_json>}
/// records appended to `file` in the working directory, so results survive
/// the run and can be diffed across revisions. `extra_json` is a
/// pre-rendered fragment (e.g. "\"key\":{...}"); empty means no extra field.
inline void AppendJsonRecord(const std::string& file, const std::string& bench,
                             const std::string& case_name, double wall_ms,
                             const std::string& extra_json = "") {
  std::FILE* f = std::fopen(file.c_str(), "a");
  if (f == nullptr) return;
  std::fprintf(f, "{\"bench\":\"%s\",\"case\":\"%s\",\"wall_ms\":%.3f",
               bench.c_str(), case_name.c_str(), wall_ms);
  if (!extra_json.empty()) std::fprintf(f, ",%s", extra_json.c_str());
  std::fprintf(f, "}\n");
  std::fclose(f);
}

/// Link-traffic record (historical shape, kept for cross-revision diffs):
/// appends to BENCH_remote.json with a "link_stats" extra field.
inline void AppendBenchRecord(const std::string& bench,
                              const std::string& case_name, double wall_ms,
                              const net::LinkStats& stats) {
  char extra[160];
  std::snprintf(extra, sizeof(extra),
                "\"link_stats\":{\"messages\":%lld,\"rows\":%lld,"
                "\"bytes\":%lld}",
                static_cast<long long>(stats.messages),
                static_cast<long long>(stats.rows),
                static_cast<long long>(stats.bytes));
  AppendJsonRecord("BENCH_remote.json", bench, case_name, wall_ms, extra);
}

/// Metrics-backed record: embeds a full metrics::Registry snapshot so a
/// bench case's counters/histograms (exec.*, link.*, engine.*) land in the
/// same record as its wall time. Call metrics::Registry::Global().ResetAll()
/// before the measured section for a per-case snapshot.
inline void AppendMetricsRecord(const std::string& file,
                                const std::string& bench,
                                const std::string& case_name, double wall_ms) {
  AppendJsonRecord(file, bench, case_name, wall_ms,
                   "\"metrics\":" + metrics::Registry::Global().SnapshotJson());
}

/// Fixture cache: benchmarks with Args() re-enter the same function; heavy
/// setup is built once per key and reused across iterations.
template <typename T>
T* CachedFixture(const std::string& key,
                 std::unique_ptr<T> (*builder)(const std::string&)) {
  static auto* cache = new std::map<std::string, std::unique_ptr<T>>();
  auto it = cache->find(key);
  if (it == cache->end()) {
    it = cache->emplace(key, builder(key)).first;
  }
  return it->second.get();
}

}  // namespace bench
}  // namespace dhqp

#endif  // DHQP_BENCH_BENCH_UTIL_H_
