// Experiment T1 — reproduces Table 1: "languages supported by various OLE DB
// providers". Registers every connector in this repo and prints its source
// type, query language and negotiated SQL level. Also times capability
// negotiation (reading the ProviderCapabilities during linked-server setup).

#include "bench/bench_util.h"
#include "src/connectors/csv_provider.h"
#include "src/connectors/mail_provider.h"
#include "src/connectors/sheet_provider.h"

namespace dhqp {

struct NamedProvider {
  std::string name;
  ProviderCapabilities caps;
};

std::vector<NamedProvider> AllProviders() {
  std::vector<NamedProvider> out;
  out.push_back({"SQL Server (engine provider)", SqlServerCapabilities()});
  out.push_back({"Oracle preset", OracleCapabilities()});
  out.push_back({"DB2 preset", Db2Capabilities()});
  out.push_back({"Access preset", AccessCapabilities()});
  CsvDataSource csv;
  out.push_back({"Text files (CSV)", csv.capabilities()});
  MailDataSource mail({});
  out.push_back({"Email (mailbox)", mail.capabilities()});
  SheetDataSource sheet;
  out.push_back({"Spreadsheet", sheet.capabilities()});
  // The full-text search service (MSIDXS role): not an OLE DB provider
  // object in this codebase, but reported for the Table 1 row.
  ProviderCapabilities ft;
  ft.provider_name = "MSIDXS (search service)";
  ft.source_type = "Full-text Indexing";
  ft.query_language = "CONTAINS query language";
  out.push_back({"Full-text search", ft});
  return out;
}

void PrintTable1() {
  std::printf("\nTable 1 — query languages supported by registered providers\n");
  std::printf("%-28s | %-22s | %-28s | %s\n", "Provider", "Type of source",
              "Query language", "SQL level");
  std::printf("%s\n", std::string(110, '-').c_str());
  for (const NamedProvider& p : AllProviders()) {
    std::printf("%-28s | %-22s | %-28s | %s\n", p.caps.provider_name.c_str(),
                p.caps.source_type.c_str(), p.caps.query_language.c_str(),
                SqlSupportLevelName(p.caps.sql_support));
  }
  std::printf("\n");
}

// Times the capability negotiation a DHQP host performs when it touches a
// linked server for the first time.
void BM_CapabilityNegotiation(benchmark::State& state) {
  auto remote = std::make_unique<Engine>();
  auto provider = std::make_shared<EngineDataSource>(remote.get());
  for (auto _ : state) {
    const ProviderCapabilities& caps = provider->capabilities();
    auto interfaces = caps.SupportedInterfaces();
    benchmark::DoNotOptimize(interfaces);
  }
}
BENCHMARK(BM_CapabilityNegotiation);

}  // namespace dhqp

int main(int argc, char** argv) {
  dhqp::PrintTable1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
