// Experiment E7 — multi-phase optimization (§4.1.1): "the optimizer will not
// spend too much time on optimizing easy queries, while for complex queries
// it will spend longer time in order to find the optimal plan". Measures
// pure optimization time (Prepare, no execution) for star joins of rising
// width, with the phase ladder on vs a single full-optimization pass, and
// reports memo sizes and which phase the search stopped in.

#include "bench/bench_util.h"

namespace dhqp {

using bench::MustRun;

struct StarFixture {
  std::unique_ptr<Engine> engine;
};

std::unique_ptr<StarFixture> BuildStar(const std::string&) {
  auto fixture = std::make_unique<StarFixture>();
  fixture->engine = std::make_unique<Engine>();
  Engine* engine = fixture->engine.get();
  // A fact table plus 8 dimension tables.
  MustRun(engine,
          "CREATE TABLE fact (id INT PRIMARY KEY, d0 INT, d1 INT, d2 INT, "
          "d3 INT, d4 INT, d5 INT, d6 INT, d7 INT)");
  std::string sql = "INSERT INTO fact VALUES ";
  for (int i = 0; i < 500; ++i) {
    if (i) sql += ",";
    sql += "(" + std::to_string(i);
    for (int d = 0; d < 8; ++d) sql += "," + std::to_string(i % (10 + d));
    sql += ")";
  }
  MustRun(engine, sql);
  for (int d = 0; d < 8; ++d) {
    std::string dim = "dim" + std::to_string(d);
    MustRun(engine, "CREATE TABLE " + dim +
                        " (k INT PRIMARY KEY, label VARCHAR(10))");
    std::string ins = "INSERT INTO " + dim + " VALUES ";
    for (int i = 0; i < 10 + d; ++i) {
      if (i) ins += ",";
      ins += "(" + std::to_string(i) + ",'v" + std::to_string(i) + "')";
    }
    MustRun(engine, ins);
  }
  return fixture;
}

std::string StarQuery(int joins) {
  std::string sql = "SELECT COUNT(*) FROM fact f";
  for (int d = 0; d < joins; ++d) {
    std::string dim = "dim" + std::to_string(d);
    sql += " JOIN " + dim + " ON f.d" + std::to_string(d) + " = " + dim + ".k";
  }
  return sql + " WHERE f.id < 100";
}

void RunPhases(benchmark::State& state, bool multi_phase) {
  auto* fixture = bench::CachedFixture<StarFixture>("star", BuildStar);
  fixture->engine->options()->optimizer.multi_phase = multi_phase;
  int joins = static_cast<int>(state.range(0));
  std::string sql = StarQuery(joins);
  OptimizerRunStats stats;
  for (auto _ : state) {
    auto prepared = fixture->engine->Prepare(sql);
    if (!prepared.ok()) std::abort();
    stats = prepared->opt_stats;
    benchmark::DoNotOptimize(prepared->plan);
  }
  state.counters["memo_groups"] = stats.groups;
  state.counters["memo_exprs"] = stats.group_exprs;
  state.counters["rules_applied"] = stats.rules_applied;
  state.counters["plan_cost"] = stats.best_cost;
  state.SetLabel("stopped: " + stats.phase_name);
  fixture->engine->options()->optimizer = OptimizerOptions{};
}

void BM_Phases_Ladder(benchmark::State& state) { RunPhases(state, true); }
void BM_Phases_FullOnly(benchmark::State& state) { RunPhases(state, false); }

BENCHMARK(BM_Phases_Ladder)->DenseRange(1, 7)
    ->Unit(benchmark::kMicrosecond);
// The full-only pass grows combinatorially with join width (that is the
// point of the experiment); keep the ablation to widths that finish in
// seconds. Beyond width 5 the memo cap (OptimizerOptions::max_memo_exprs)
// bounds the search.
BENCHMARK(BM_Phases_FullOnly)->DenseRange(1, 5)
    ->Unit(benchmark::kMicrosecond);

// An OLTP point query: the transaction-processing phase must answer it
// without ever exploring (the "good plan quickly" claim).
void BM_Phases_PointQuery(benchmark::State& state) {
  auto* fixture = bench::CachedFixture<StarFixture>("star", BuildStar);
  std::string phase;
  for (auto _ : state) {
    auto prepared =
        fixture->engine->Prepare("SELECT d0 FROM fact WHERE id = 123");
    if (!prepared.ok()) std::abort();
    phase = prepared->opt_stats.phase_name;
    benchmark::DoNotOptimize(prepared->plan);
  }
  state.SetLabel("stopped: " + phase);
}
BENCHMARK(BM_Phases_PointQuery)->Unit(benchmark::kMicrosecond);

}  // namespace dhqp

BENCHMARK_MAIN();
